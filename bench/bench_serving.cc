// Closed-loop serving benchmark for blitzd's server core: N pipelining
// client connections each keep a fixed window of requests in flight against
// an in-process BlitzServer over in-memory duplex streams, with
// fuzzer-generated mixed-size queries (n <= 15, pinned seed). Reports
// sustained throughput and client-observed latency percentiles in the
// unified blitz-bench-v1 schema, so BENCH_serving.json feeds the same
// tools/bench_diff gate as the optimizer benches.
//
// The defaults (16 connections x 64-deep windows = 1024 concurrent
// requests) match the acceptance bar for the serving tier; latency is
// measured send-to-receive at the client, so queueing delay under overload
// is part of the number, as it is for a real caller.
//
// Modes:
//   bench_serving                # human-readable summary
//   bench_serving --json <path>  # blitz-bench-v1 JSON (BENCH_serving.json)
//
// Environment knobs: BLITZ_SERVING_SECONDS (per-sample wall clock, default
// 2), BLITZ_SERVING_SAMPLES (min-of-k, default 5), BLITZ_SERVING_CLIENTS
// (default 16), BLITZ_SERVING_WINDOW (default 64), BLITZ_SERVING_WORKERS
// (default: hardware concurrency, clamped to [2, 16]), BLITZ_SERVING_SEED
// (default 20260808).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "benchlib/bench_json.h"
#include "common/check.h"
#include "common/strings.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/stream.h"
#include "serve/wire.h"
#include "testing/fuzzer.h"
#include "textio/bjq.h"

namespace blitz {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return std::atoi(env);
}

struct ServingConfig {
  double seconds = 2.0;
  int samples = 5;
  int clients = 16;
  int window = 64;
  int workers = 8;
  std::uint64_t seed = 20260808;
};

/// One sample's aggregate: completion counts plus every OK request's
/// client-observed latency (seconds).
struct SampleStats {
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  double wall_seconds = 0;
  std::vector<double> latencies;
};

/// Mixed-n request bodies, generated once and cycled by every client. The
/// pool is large enough that neighboring in-flight requests differ but
/// small enough that body generation stays out of the measured loop.
std::vector<std::string> MakeBodyPool(std::uint64_t seed) {
  fuzz::FuzzerOptions options;
  options.seed = seed;
  options.min_relations = 2;
  options.max_relations = 15;
  std::vector<std::string> pool;
  pool.reserve(64);
  for (std::uint64_t index = 0; index < 64; ++index) {
    Result<fuzz::FuzzCase> fuzz_case = fuzz::GenerateCase(options, index);
    BLITZ_CHECK(fuzz_case.ok());
    pool.push_back(WriteBjq(fuzz::ToQuerySpec(*fuzz_case, CostModelKind::kNaive)));
  }
  return pool;
}

/// One client connection's closed loop: fill the window, then send one new
/// request per received response until the deadline, then drain.
void ClientLoop(BlitzServer* server, const std::vector<std::string>& pool,
                const ServingConfig& config, int client_index,
                std::chrono::steady_clock::time_point deadline,
                SampleStats* stats) {
  auto [client_end, server_end] = CreateDuplexPipe();
  std::thread serve_thread([server, stream = server_end.get()] {
    (void)server->Serve(stream);
    stream->Close();
  });

  BlitzClient::Options options;
  options.tenant = "bench-" + std::to_string(client_index);
  BlitzClient client(client_end.get(), std::move(options));

  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point>
      sent_at;
  std::size_t next_body =
      static_cast<std::size_t>(client_index) % pool.size();
  int outstanding = 0;

  const auto send_one = [&]() -> bool {
    const auto now = std::chrono::steady_clock::now();
    Result<std::uint64_t> id = client.Send(pool[next_body]);
    if (!id.ok()) return false;
    next_body = (next_body + 1) % pool.size();
    sent_at[*id] = now;
    ++outstanding;
    return true;
  };

  for (int i = 0; i < config.window; ++i) {
    if (!send_one()) break;
  }
  bool sending = true;
  while (outstanding > 0) {
    Result<std::optional<ResponseFrame>> response = client.Receive();
    if (!response.ok() || !response->has_value()) break;
    const auto now = std::chrono::steady_clock::now();
    --outstanding;
    auto it = sent_at.find((*response)->id);
    if ((*response)->code == StatusCode::kOk) {
      ++stats->ok;
      if (it != sent_at.end()) {
        stats->latencies.push_back(
            std::chrono::duration<double>(now - it->second).count());
      }
    } else {
      ++stats->errors;
    }
    if (it != sent_at.end()) sent_at.erase(it);
    if (sending && now >= deadline) sending = false;
    if (sending && !send_one()) sending = false;
  }

  client_end->CloseWrite();
  serve_thread.join();
  client_end->Close();
}

SampleStats RunSample(const std::vector<std::string>& pool,
                      const ServingConfig& config) {
  ServerOptions options;
  options.num_workers = config.workers;
  // The queue must hold a full burst from every window; admission gives
  // each tenant (connection) headroom above its window so the closed loop
  // is never shed by its own slot accounting.
  options.max_queue = config.clients * config.window + 64;
  options.admission.default_quota.max_in_flight = config.window + 8;
  Result<std::unique_ptr<BlitzServer>> server = BlitzServer::Create(options);
  BLITZ_CHECK(server.ok());

  std::vector<SampleStats> per_client(
      static_cast<std::size_t>(config.clients));
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(config.seconds));
  std::vector<std::thread> threads;
  for (int c = 0; c < config.clients; ++c) {
    threads.emplace_back(ClientLoop, server->get(), std::cref(pool),
                         std::cref(config), c, deadline,
                         &per_client[static_cast<std::size_t>(c)]);
  }
  for (std::thread& t : threads) t.join();
  const auto stop = std::chrono::steady_clock::now();
  (*server)->Shutdown();

  SampleStats total;
  total.wall_seconds = std::chrono::duration<double>(stop - start).count();
  for (SampleStats& s : per_client) {
    total.ok += s.ok;
    total.errors += s.errors;
    total.latencies.insert(total.latencies.end(), s.latencies.begin(),
                           s.latencies.end());
  }
  return total;
}

/// The q-th percentile (0..1) of `values`, by nth_element; 0 when empty.
double Percentile(std::vector<double>* values, double q) {
  if (values->empty()) return 0;
  const std::size_t index = std::min(
      values->size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(values->size())));
  std::nth_element(values->begin(),
                   values->begin() + static_cast<long>(index), values->end());
  return (*values)[index];
}

}  // namespace
}  // namespace blitz

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  blitz::ServingConfig config;
  {
    const char* env = std::getenv("BLITZ_SERVING_SECONDS");
    if (env != nullptr && *env != '\0') config.seconds = std::atof(env);
  }
  config.samples = blitz::EnvInt("BLITZ_SERVING_SAMPLES", config.samples);
  config.clients = blitz::EnvInt("BLITZ_SERVING_CLIENTS", config.clients);
  config.window = blitz::EnvInt("BLITZ_SERVING_WINDOW", config.window);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  config.workers = blitz::EnvInt("BLITZ_SERVING_WORKERS",
                                 std::clamp(hw > 0 ? hw : 4, 2, 16));
  config.seed = static_cast<std::uint64_t>(
      blitz::EnvInt("BLITZ_SERVING_SEED", 20260808));

  const std::vector<std::string> pool = blitz::MakeBodyPool(config.seed);

  // Min-of-k over full samples: each sample is an independent server with
  // cold arena and queue, so the min captures steady-state capability with
  // the least scheduler interference.
  double best_qps = 0;
  double best_p50 = 0, best_p95 = 0, best_p99 = 0;
  std::uint64_t total_ok = 0, total_errors = 0;
  for (int sample = 0; sample < config.samples; ++sample) {
    blitz::SampleStats stats = blitz::RunSample(pool, config);
    const double qps =
        static_cast<double>(stats.ok) /
        (stats.wall_seconds > 0 ? stats.wall_seconds : 1.0);
    const double p50 = blitz::Percentile(&stats.latencies, 0.50) * 1e3;
    const double p95 = blitz::Percentile(&stats.latencies, 0.95) * 1e3;
    const double p99 = blitz::Percentile(&stats.latencies, 0.99) * 1e3;
    std::printf(
        "sample %d: %llu ok, %llu errors, %.0f qps, "
        "p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
        sample, static_cast<unsigned long long>(stats.ok),
        static_cast<unsigned long long>(stats.errors), qps, p50, p95, p99);
    total_ok += stats.ok;
    total_errors += stats.errors;
    if (sample == 0 || qps > best_qps) best_qps = qps;
    if (sample == 0 || p50 < best_p50) best_p50 = p50;
    if (sample == 0 || p95 < best_p95) best_p95 = p95;
    if (sample == 0 || p99 < best_p99) best_p99 = p99;
  }

  std::printf(
      "serving (clients=%d window=%d workers=%d): best %.0f qps, "
      "p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
      config.clients, config.window, config.workers, best_qps, best_p50,
      best_p95, best_p99);

  if (!json_path.empty()) {
    blitz::BenchReport report;
    report.bench = "serving";
    report.AddMeta("clients", blitz::StrFormat("%d", config.clients));
    report.AddMeta("window", blitz::StrFormat("%d", config.window));
    report.AddMeta("workers", blitz::StrFormat("%d", config.workers));
    report.AddMeta("seconds", blitz::StrFormat("%g", config.seconds));
    report.AddMeta("samples", blitz::StrFormat("%d", config.samples));
    report.AddMeta("seed",
                   blitz::StrFormat("%llu",
                                    static_cast<unsigned long long>(
                                        config.seed)));
    const std::string prefix = blitz::StrFormat(
        "mixed/c%d/w%d", config.clients, config.window);
    // Latency points are time-like and regression-gated by bench_diff;
    // throughput and counts ride along as context units.
    report.AddPoint(prefix + "/p50", best_p50, "ms");
    report.AddPoint(prefix + "/p95", best_p95, "ms");
    report.AddPoint(prefix + "/p99", best_p99, "ms");
    report.AddPoint(prefix + "/qps", best_qps, "qps");
    report.AddPoint(prefix + "/ok", static_cast<double>(total_ok), "count");
    report.AddPoint(prefix + "/errors", static_cast<double>(total_errors),
                    "count");
    const blitz::Status status =
        blitz::WriteBenchJsonFile(report, json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu points)\n", json_path.c_str(),
                report.points.size());
  }
  return 0;
}
