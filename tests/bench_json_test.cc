// Unified bench JSON schema ("blitz-bench-v1") and the bench_diff
// perf-regression comparator: round-trip fidelity, parser rejection of
// malformed documents, and the gate semantics CI relies on — zero diff on
// baseline-vs-baseline, non-zero on an injected >=20% slowdown, noise-floor
// and unit filtering.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "benchlib/bench_diff.h"
#include "benchlib/bench_json.h"

namespace blitz {
namespace {

BenchReport SampleReport() {
  BenchReport report;
  report.bench = "fig2_cartesian";
  report.AddMeta("simd_resolved", "avx512");
  report.AddMeta("estimator", "min of 5 adaptive timings");
  report.AddPoint("naive/n13/scalar", 12.5, "ms");
  report.AddPoint("naive/n13/simd", 8.75, "ms");
  report.AddPoint("naive/n13/speedup", 1.428, "ratio");
  report.AddPoint("naive/n13/auto_engages", 1, "bool");
  return report;
}

TEST(BenchJsonTest, RoundTrip) {
  const BenchReport report = SampleReport();
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\":\"blitz-bench-v1\""), std::string::npos);

  Result<BenchReport> parsed = ParseBenchJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bench, "fig2_cartesian");
  EXPECT_EQ(parsed->MetaValue("simd_resolved"), "avx512");
  EXPECT_EQ(parsed->MetaValue("absent"), "");
  ASSERT_EQ(parsed->points.size(), 4u);
  const BenchPoint* scalar = parsed->Find("naive/n13/scalar");
  ASSERT_NE(scalar, nullptr);
  EXPECT_DOUBLE_EQ(scalar->value, 12.5);
  EXPECT_EQ(scalar->unit, "ms");
  EXPECT_EQ(parsed->Find("missing"), nullptr);
  // Re-serialization is stable.
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(BenchJsonTest, EscapesSpecialCharacters) {
  BenchReport report;
  report.bench = "quo\"ted\\bench";
  report.AddMeta("note", "line\nbreak\tand \"quotes\"");
  report.AddPoint("key/with \"quote\"", 1.0, "ms");
  Result<BenchReport> parsed = ParseBenchJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bench, "quo\"ted\\bench");
  EXPECT_EQ(parsed->MetaValue("note"), "line\nbreak\tand \"quotes\"");
  EXPECT_NE(parsed->Find("key/with \"quote\""), nullptr);
}

TEST(BenchJsonTest, ParserToleratesWhitespaceAndUnknownMembers) {
  const std::string json = R"({
    "schema": "blitz-bench-v1",
    "bench": "micro",
    "extra": {"nested": [1, 2, {"deep": true}], "s": "x"},
    "meta": { "machine" : "ci" },
    "points": [
      { "key": "a/b", "value": 3.25, "unit": "ms", "ignored": null }
    ]
  })";
  Result<BenchReport> parsed = ParseBenchJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bench, "micro");
  EXPECT_EQ(parsed->MetaValue("machine"), "ci");
  ASSERT_EQ(parsed->points.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->points[0].value, 3.25);
}

TEST(BenchJsonTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseBenchJson("").ok());
  EXPECT_FALSE(ParseBenchJson("[]").ok());
  EXPECT_FALSE(ParseBenchJson("{\"bench\":\"x\"}").ok());  // no schema
  EXPECT_FALSE(
      ParseBenchJson("{\"schema\":\"blitz-bench-v2\",\"points\":[]}").ok());
  EXPECT_FALSE(
      ParseBenchJson("{\"schema\":\"blitz-bench-v1\",\"points\":[{}]}")
          .ok());  // point without key
  EXPECT_FALSE(
      ParseBenchJson("{\"schema\":\"blitz-bench-v1\"} trailing").ok());
  EXPECT_FALSE(ParseBenchJson("{\"schema\":\"blitz-bench-v1\"").ok());
}

TEST(BenchJsonTest, FileRoundTripAndMissingFile) {
  const BenchReport report = SampleReport();
  const std::string path =
      ::testing::TempDir() + "/bench_json_test_roundtrip.json";
  ASSERT_TRUE(WriteBenchJsonFile(report, path).ok());
  Result<BenchReport> parsed = ReadBenchJsonFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->points.size(), report.points.size());
  std::remove(path.c_str());
  EXPECT_EQ(ReadBenchJsonFile(path).status().code(), StatusCode::kNotFound);
}

TEST(BenchDiffTest, BaselineVersusItselfIsClean) {
  const BenchReport report = SampleReport();
  const BenchDiffResult diff = DiffBenchReports(report, report);
  EXPECT_FALSE(diff.has_regression());
  EXPECT_EQ(diff.regressions, 0);
  EXPECT_EQ(diff.improvements, 0);
  EXPECT_TRUE(diff.missing_keys.empty());
  EXPECT_TRUE(diff.new_keys.empty());
  // Only the two time-like points are compared; ratio/bool ride along.
  EXPECT_EQ(diff.entries.size(), 2u);
}

TEST(BenchDiffTest, InjectedSlowdownIsFlagged) {
  const BenchReport baseline = SampleReport();
  BenchReport slow = baseline;
  // The ISSUE acceptance case: a synthetic >=20% slowdown on one point
  // must trip the default 1.15x gate.
  for (BenchPoint& point : slow.points) {
    if (point.key == "naive/n13/simd") point.value *= 1.20;
  }
  const BenchDiffResult diff = DiffBenchReports(baseline, slow);
  EXPECT_TRUE(diff.has_regression());
  EXPECT_EQ(diff.regressions, 1);
  const std::string text = diff.ToString();
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("naive/n13/simd"), std::string::npos);

  // A looser CI threshold absorbs the same delta.
  BenchDiffOptions loose;
  loose.max_ratio = 3.0;
  EXPECT_FALSE(DiffBenchReports(baseline, slow, loose).has_regression());
}

TEST(BenchDiffTest, ImprovementIsNotedNotFailed) {
  const BenchReport baseline = SampleReport();
  BenchReport fast = baseline;
  for (BenchPoint& point : fast.points) point.value *= 0.5;
  const BenchDiffResult diff = DiffBenchReports(baseline, fast);
  EXPECT_FALSE(diff.has_regression());
  EXPECT_EQ(diff.improvements, 2);
}

TEST(BenchDiffTest, NoiseFloorSuppressesTinyPoints) {
  BenchReport baseline;
  baseline.bench = "micro";
  baseline.AddPoint("tiny/op", 0.004, "ms");  // 4us: pure timer jitter
  BenchReport slow = baseline;
  slow.points[0].value = 0.012;  // "3x regression" within the noise floor
  BenchDiffOptions options;
  options.min_value = 0.05;
  const BenchDiffResult diff = DiffBenchReports(baseline, slow, options);
  EXPECT_FALSE(diff.has_regression());
  ASSERT_EQ(diff.entries.size(), 1u);
  EXPECT_TRUE(diff.entries[0].below_noise_floor);
}

TEST(BenchDiffTest, ShapeChangesAreReportedNotFailed) {
  BenchReport baseline;
  baseline.bench = "micro";
  baseline.AddPoint("gone/op", 1.0, "ms");
  baseline.AddPoint("stays/op", 1.0, "ms");
  baseline.AddPoint("unit_change/op", 1.0, "ms");
  BenchReport candidate;
  candidate.bench = "micro";
  candidate.AddPoint("stays/op", 1.0, "ms");
  candidate.AddPoint("unit_change/op", 1000.0, "us");
  candidate.AddPoint("brand_new/op", 2.0, "ms");
  const BenchDiffResult diff = DiffBenchReports(baseline, candidate);
  EXPECT_FALSE(diff.has_regression());
  ASSERT_EQ(diff.missing_keys.size(), 2u);  // gone + unit mismatch
  ASSERT_EQ(diff.new_keys.size(), 1u);      // brand_new only
  EXPECT_EQ(diff.entries.size(), 1u);
}

}  // namespace
}  // namespace blitz
