// Tests for the blitz-serve-v1 wire format (serve/wire.h) and the
// ByteStream transports underneath it (serve/stream.h).

#include "serve/wire.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/stream.h"

namespace blitz {
namespace {

RequestFrame MakeRequest(std::uint64_t id, std::string body) {
  RequestFrame frame;
  frame.tenant = "tenant-a";
  frame.id = id;
  frame.body = std::move(body);
  return frame;
}

TEST(WireTest, RequestRoundTrip) {
  RequestFrame frame = MakeRequest(42, "relation A 10\n");
  frame.deadline_ms = 250;
  const std::string encoded = EncodeRequestFrame(frame);

  auto [client, server] = CreateDuplexPipe();
  ASSERT_TRUE(client->Write(encoded).ok());
  client->CloseWrite();

  FrameReader reader(server.get(), WireLimits{});
  Result<std::optional<RequestFrame>> read = reader.ReadRequest();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_TRUE(read->has_value());
  EXPECT_EQ((*read)->tenant, "tenant-a");
  EXPECT_EQ((*read)->id, 42u);
  EXPECT_EQ((*read)->deadline_ms, 250);
  EXPECT_EQ((*read)->body, "relation A 10\n");

  // Clean EOF at the frame boundary reads as nullopt, not an error.
  Result<std::optional<RequestFrame>> eof = reader.ReadRequest();
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof->has_value());
}

TEST(WireTest, ResponseRoundTripWithRetryAfter) {
  ResponseFrame frame;
  frame.id = 7;
  frame.code = StatusCode::kResourceExhausted;
  frame.retry_after_ms = 12.5;
  frame.body = "tenant over quota";

  auto [a, b] = CreateDuplexPipe();
  ASSERT_TRUE(a->Write(EncodeResponseFrame(frame)).ok());
  a->CloseWrite();

  FrameReader reader(b.get(), WireLimits{});
  Result<std::optional<ResponseFrame>> read = reader.ReadResponse();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_TRUE(read->has_value());
  EXPECT_EQ((*read)->id, 7u);
  EXPECT_EQ((*read)->code, StatusCode::kResourceExhausted);
  EXPECT_EQ((*read)->retry_after_ms, 12.5);
  EXPECT_EQ((*read)->body, "tenant over quota");
}

TEST(WireTest, PipelinedFramesReadBackToBack) {
  auto [a, b] = CreateDuplexPipe();
  std::string wire;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    wire += EncodeRequestFrame(MakeRequest(id, "body" + std::to_string(id)));
  }
  ASSERT_TRUE(a->Write(wire).ok());
  a->CloseWrite();

  FrameReader reader(b.get(), WireLimits{});
  for (std::uint64_t id = 1; id <= 5; ++id) {
    Result<std::optional<RequestFrame>> read = reader.ReadRequest();
    ASSERT_TRUE(read.ok());
    ASSERT_TRUE(read->has_value());
    EXPECT_EQ((*read)->id, id);
    EXPECT_EQ((*read)->body, "body" + std::to_string(id));
  }
}

TEST(WireTest, MalformedHeadersAreErrors) {
  const std::vector<std::string> bad = {
      "blitzq2 default 1 0\n",              // wrong magic
      "blitzq1 default 1\n",                // missing body length
      "blitzq1 default one 0\n",            // non-numeric id
      "blitzq1 default 1 zero\n",           // non-numeric length
      "blitzq1 bad~tenant 1 0\n",           // invalid tenant character
      "blitzq1 default 1 0 frobnicate=1\n", // unknown optional field
      "blitzq1 default 1 0 deadline_ms=-5\n",
      "blitzq1 default 99999999999999999999999 0\n",  // uint64 overflow
  };
  for (const std::string& header : bad) {
    auto [a, b] = CreateDuplexPipe();
    ASSERT_TRUE(a->Write(header).ok());
    a->CloseWrite();
    FrameReader reader(b.get(), WireLimits{});
    Result<std::optional<RequestFrame>> read = reader.ReadRequest();
    EXPECT_FALSE(read.ok()) << "accepted: " << header;
  }
}

TEST(WireTest, TenantNameValidation) {
  EXPECT_TRUE(IsValidTenantName("default"));
  EXPECT_TRUE(IsValidTenantName("team-7.shard_2"));
  EXPECT_TRUE(IsValidTenantName(std::string(64, 'a')));
  EXPECT_FALSE(IsValidTenantName(""));
  EXPECT_FALSE(IsValidTenantName(std::string(65, 'a')));
  EXPECT_FALSE(IsValidTenantName("has space"));    // Splits the header.
  EXPECT_FALSE(IsValidTenantName("has\nnewline"));  // Ends the header.
  EXPECT_FALSE(IsValidTenantName("bad~tenant"));
}

TEST(WireTest, OversizedDeclaredBodyRejectedBeforeReading) {
  auto [a, b] = CreateDuplexPipe();
  // Declares 1 GiB; only the header is ever sent. The reader must reject
  // from the declared length alone instead of trying to buffer it.
  ASSERT_TRUE(a->Write("blitzq1 default 1 1073741824\n").ok());
  WireLimits limits;
  limits.max_body_bytes = 1 << 20;
  FrameReader reader(b.get(), limits);
  Result<std::optional<RequestFrame>> read = reader.ReadRequest();
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kResourceExhausted);
}

TEST(WireTest, UnterminatedHeaderBoundedByLimit) {
  auto [a, b] = CreateDuplexPipe();
  ASSERT_TRUE(a->Write(std::string(4096, 'x')).ok());
  WireLimits limits;
  limits.max_header_bytes = 256;
  FrameReader reader(b.get(), limits);
  Result<std::optional<RequestFrame>> read = reader.ReadRequest();
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, TruncatedBodyIsAnError) {
  auto [a, b] = CreateDuplexPipe();
  ASSERT_TRUE(a->Write("blitzq1 default 1 100\nshort").ok());
  a->CloseWrite();
  FrameReader reader(b.get(), WireLimits{});
  Result<std::optional<RequestFrame>> read = reader.ReadRequest();
  EXPECT_FALSE(read.ok());
}

TEST(WireTest, StatusCodeNamesRoundTripTheWire) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
        StatusCode::kCancelled, StatusCode::kUnavailable}) {
    ResponseFrame frame;
    frame.id = 1;
    frame.code = code;
    auto [a, b] = CreateDuplexPipe();
    ASSERT_TRUE(a->Write(EncodeResponseFrame(frame)).ok());
    FrameReader reader(b.get(), WireLimits{});
    Result<std::optional<ResponseFrame>> read = reader.ReadResponse();
    ASSERT_TRUE(read.ok());
    EXPECT_EQ((*read)->code, code) << StatusCodeToString(code);
  }
}

TEST(WireTest, ReplyBodyRoundTrip) {
  ServeReply reply;
  reply.plan = "((A x B) x C)";
  reply.cost = 12345.6789;
  reply.tier = "exhaustive";
  reply.passes = 3;
  reply.degradations = 1;
  Result<ServeReply> parsed = ParseReplyBody(EncodeReplyBody(reply));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->plan, reply.plan);
  EXPECT_EQ(parsed->cost, reply.cost);  // %.17g round-trips doubles exactly.
  EXPECT_EQ(parsed->tier, reply.tier);
  EXPECT_EQ(parsed->passes, reply.passes);
  EXPECT_EQ(parsed->degradations, reply.degradations);
}

TEST(WireTest, ReplyBodyIgnoresUnknownKeysButRequiresCore) {
  Result<ServeReply> ok =
      ParseReplyBody("plan (A x B)\ncost 5\ntier greedy\nfuture_field 1\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->plan, "(A x B)");

  EXPECT_FALSE(ParseReplyBody("cost 5\ntier greedy\n").ok());
  EXPECT_FALSE(ParseReplyBody("plan p\ncost nan-ish\ntier greedy\n").ok());
}

TEST(WireTest, ReplyBodyCachedFlagRoundTrips) {
  ServeReply reply;
  reply.plan = "(A x B)";
  reply.cost = 9.5;
  reply.tier = "exhaustive";
  reply.cached = true;
  const std::string body = EncodeReplyBody(reply);
  Result<ServeReply> parsed = ParseReplyBody(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->cached);

  // Fresh answers omit the line entirely (not "cached 0"), so pre-cache
  // readers never see an unfamiliar key on the common path.
  reply.cached = false;
  const std::string fresh = EncodeReplyBody(reply);
  EXPECT_EQ(fresh.find("cached"), std::string::npos) << fresh;
  Result<ServeReply> fresh_parsed = ParseReplyBody(fresh);
  ASSERT_TRUE(fresh_parsed.ok());
  EXPECT_FALSE(fresh_parsed->cached);
}

TEST(AssemblerTest, ByteAtATimeFeedReassemblesPipelinedFrames) {
  RequestFrame first = MakeRequest(1, "relation A 10\n");
  first.deadline_ms = 125;
  const RequestFrame second = MakeRequest(2, "");
  const std::string wire =
      EncodeRequestFrame(first) + EncodeRequestFrame(second);

  RequestFrameAssembler assembler{WireLimits{}};
  std::vector<RequestFrame> frames;
  for (char byte : wire) {
    ASSERT_TRUE(assembler.Feed(std::string_view(&byte, 1), &frames).ok());
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].id, 1u);
  EXPECT_EQ(frames[0].deadline_ms, 125);
  EXPECT_EQ(frames[0].body, "relation A 10\n");
  EXPECT_EQ(frames[1].id, 2u);
  EXPECT_TRUE(frames[1].body.empty());
  EXPECT_FALSE(assembler.mid_frame());
}

TEST(AssemblerTest, SingleFeedYieldsEveryCompleteFrame) {
  std::string wire;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    wire += EncodeRequestFrame(MakeRequest(id, "relation A 10\n"));
  }
  // Plus a trailing partial header, which must stay buffered.
  wire += "blitzq1 tenant-a";

  RequestFrameAssembler assembler{WireLimits{}};
  std::vector<RequestFrame> frames;
  ASSERT_TRUE(assembler.Feed(wire, &frames).ok());
  EXPECT_EQ(frames.size(), 5u);
  EXPECT_TRUE(assembler.mid_frame());
}

TEST(AssemblerTest, OversizedHeaderPoisonsTheAssembler) {
  WireLimits limits;
  limits.max_header_bytes = 32;
  RequestFrameAssembler assembler{limits};
  std::vector<RequestFrame> frames;
  const std::string runaway(64, 'x');  // No '\n' within the limit.
  const Status status = assembler.Feed(runaway, &frames);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(frames.empty());

  // Error stickiness: a valid frame after the poison still fails with the
  // original error — the stream is no longer frame-aligned.
  const Status again =
      assembler.Feed(EncodeRequestFrame(MakeRequest(1, "")), &frames);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), status.code());
  EXPECT_TRUE(frames.empty());
}

TEST(AssemblerTest, OversizedDeclaredBodyRejectedBeforeBuffering) {
  WireLimits limits;
  limits.max_body_bytes = 16;
  RequestFrameAssembler assembler{limits};
  std::vector<RequestFrame> frames;
  // Header declares a body beyond the limit: rejected on the header alone,
  // before a single body byte arrives.
  const Status status =
      assembler.Feed("blitzq1 tenant-a 1 1000\n", &frames);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);

  std::vector<RequestFrame> more;
  EXPECT_FALSE(assembler.Feed("x", &more).ok());
}

TEST(AssemblerTest, MidFrameStateTracksHeaderAndBodyPhases) {
  RequestFrameAssembler assembler{WireLimits{}};
  std::vector<RequestFrame> frames;
  EXPECT_FALSE(assembler.mid_frame());

  ASSERT_TRUE(assembler.Feed("blitzq1 tenant-a 7 4\n", &frames).ok());
  EXPECT_TRUE(assembler.mid_frame());  // Header done, body pending.
  ASSERT_TRUE(assembler.Feed("ab", &frames).ok());
  EXPECT_TRUE(assembler.mid_frame());
  ASSERT_TRUE(assembler.Feed("cd", &frames).ok());
  EXPECT_FALSE(assembler.mid_frame());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].body, "abcd");
}

TEST(AssemblerTest, ResponseAssemblerMatchesTheBlockingReader) {
  ResponseFrame frame;
  frame.id = 9;
  frame.code = StatusCode::kResourceExhausted;
  frame.retry_after_ms = 31.25;
  frame.body = "try later";
  const std::string wire = EncodeResponseFrame(frame);

  ResponseFrameAssembler assembler{WireLimits{}};
  std::vector<ResponseFrame> frames;
  for (std::size_t i = 0; i < wire.size(); i += 3) {
    ASSERT_TRUE(assembler.Feed(wire.substr(i, 3), &frames).ok());
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].id, 9u);
  EXPECT_EQ(frames[0].code, StatusCode::kResourceExhausted);
  EXPECT_EQ(frames[0].retry_after_ms, 31.25);
  EXPECT_EQ(frames[0].body, "try later");
}

TEST(StreamTest, ReadFullAcrossChunkedWrites) {
  auto [a, b] = CreateDuplexPipe(/*buffer_capacity=*/8);
  std::thread writer([&a] {
    // 64 bytes through an 8-byte buffer forces chunked, blocking writes.
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(a->Write("01234567").ok());
    }
    a->CloseWrite();
  });
  char buf[64];
  EXPECT_TRUE(ReadFull(b.get(), buf, sizeof(buf)).ok());
  Result<std::size_t> eof = b->Read(buf, 1);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);
  writer.join();
}

TEST(StreamTest, WriteAfterPeerCloseIsUnavailable) {
  auto [a, b] = CreateDuplexPipe();
  b->Close();
  Status written = a->Write("x");
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.code(), StatusCode::kUnavailable);
}

TEST(StreamTest, FdStreamCarriesFramesOverAPipePair) {
  int to_server[2];
  int to_client[2];
  ASSERT_EQ(::pipe(to_server), 0);
  ASSERT_EQ(::pipe(to_client), 0);
  FdStream client(to_client[0], to_server[1], /*own_fds=*/true);
  FdStream server(to_server[0], to_client[1], /*own_fds=*/true);

  ASSERT_TRUE(client.Write(EncodeRequestFrame(MakeRequest(9, "abc"))).ok());
  FrameReader reader(&server, WireLimits{});
  Result<std::optional<RequestFrame>> read = reader.ReadRequest();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_TRUE(read->has_value());
  EXPECT_EQ((*read)->id, 9u);
  EXPECT_EQ((*read)->body, "abc");

  client.CloseWrite();
  char buf[8];
  Result<std::size_t> eof = server.Read(buf, sizeof(buf));
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);
}

TEST(StreamTest, FdStreamWriteTimesOutOnAStalledPipePeer) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  FdStream writer(/*read_fd=*/-1, fds[1], /*own_fds=*/false, /*wake_fd=*/-1,
                  /*write_timeout_ms=*/50);
  // Nobody reads fds[0]: a write larger than the pipe's buffer must fail
  // with kUnavailable after the timeout instead of blocking forever.
  Status written = writer.Write(std::string(4 << 20, 'x'));
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.code(), StatusCode::kUnavailable);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(StreamTest, FdStreamWriteTimesOutOnAStalledSocketPeer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdStream writer(fds[0], fds[0], /*own_fds=*/true, /*wake_fd=*/-1,
                  /*write_timeout_ms=*/50);
  // The peer never reads: the send buffer fills and the bounded poll for
  // POLLOUT expires — the stalled-client case that must not park a server
  // worker (and the SIGTERM drain behind it) indefinitely.
  Status written = writer.Write(std::string(4 << 20, 'x'));
  ASSERT_FALSE(written.ok());
  EXPECT_EQ(written.code(), StatusCode::kUnavailable);
  ::close(fds[1]);
}

TEST(StreamTest, FdStreamBoundedWriteSucceedsWithAReadingPeer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdStream writer(fds[0], fds[0], /*own_fds=*/true, /*wake_fd=*/-1,
                  /*write_timeout_ms=*/5000);
  const std::string payload(4 << 20, 'y');
  std::thread reader([&] {
    std::size_t total = 0;
    char buf[65536];
    while (total < payload.size()) {
      const ssize_t n = ::read(fds[1], buf, sizeof(buf));
      ASSERT_GT(n, 0);
      total += static_cast<std::size_t>(n);
    }
  });
  // A healthy (if slow) peer never trips the timeout, however large the
  // payload relative to the socket buffer.
  EXPECT_TRUE(writer.Write(payload).ok());
  reader.join();
  ::close(fds[1]);
}

}  // namespace
}  // namespace blitz
