#ifndef BLITZ_CATALOG_CATALOG_H_
#define BLITZ_CATALOG_CATALOG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/relset.h"

namespace blitz {

/// Per-relation statistics needed by the optimizer: this is the paper's
/// rel_data. With the cost models considered here only the cardinality
/// matters; tuple width is carried for the disk-oriented models' optional
/// blocking-factor computation and for the execution engine.
struct RelationStats {
  std::string name;        ///< Human-readable name (e.g. "R0", "orders").
  double cardinality = 0;  ///< Estimated number of tuples (may be fractional).
  int tuple_bytes = 64;    ///< Average tuple width in bytes.
};

/// Canonical validation of one relation's cardinality: positive and finite,
/// rejected with an error that names the offending relation. This is the
/// single source of the error text — Catalog::Create, the workload
/// generators, and the .bjq parser all report an invalid cardinality
/// through it, so callers see identical wording regardless of which
/// construction path tripped.
Status ValidateRelationCardinality(const std::string& name,
                                   double cardinality);

/// An immutable collection of base-relation statistics, indexed 0..n-1.
/// Relation index i corresponds to bit i of a RelSet.
class Catalog {
 public:
  Catalog() = default;

  /// Builds a catalog; fails if there are more than kMaxRelations relations,
  /// any cardinality is non-positive or non-finite, or names collide.
  static Result<Catalog> Create(std::vector<RelationStats> relations);

  /// Convenience: relations named R0..R{n-1} with the given cardinalities.
  static Result<Catalog> FromCardinalities(
      const std::vector<double>& cardinalities);

  int num_relations() const { return static_cast<int>(relations_.size()); }

  const RelationStats& relation(int i) const { return relations_[i]; }

  double cardinality(int i) const { return relations_[i].cardinality; }

  /// All relations as a set: {R0..R{n-1}}.
  RelSet AllRelations() const { return RelSet::FirstN(num_relations()); }

  /// Index of the relation with the given name, or -1.
  int FindByName(const std::string& name) const;

  /// Geometric mean of the base-relation cardinalities (the key workload
  /// parameter identified in Section 6.1).
  double GeometricMeanCardinality() const;

 private:
  std::vector<RelationStats> relations_;
};

}  // namespace blitz

#endif  // BLITZ_CATALOG_CATALOG_H_
