// The three independent oracles of the differential harness, each checked
// against the optimizers they are meant to judge — and against deliberately
// tampered results, because an oracle that cannot fail verifies nothing.

#include "testing/oracles.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baseline/bruteforce.h"
#include "baseline/dpccp.h"
#include "core/optimizer.h"
#include "test_util.h"
#include "testing/fuzzer.h"

namespace blitz {
namespace {

using ::blitz::fuzz::BruteForceAllSubsets;
using ::blitz::fuzz::BruteForceTable;
using ::blitz::fuzz::CheckAgainstDpCcp;
using ::blitz::fuzz::CheckPlanAgainstDpTable;
using ::blitz::fuzz::CompareDpTableToBruteForce;
using ::blitz::fuzz::OracleVerdict;
using ::blitz::fuzz::RecostPlan;
using ::blitz::fuzz::RecostResult;
using ::blitz::fuzz::TablesBitIdentical;
using ::blitz::testing::Figure3Graph;
using ::blitz::testing::MakeRandomInstance;
using ::blitz::testing::Table1Catalog;

OptimizerOptions Options(CostModelKind model) {
  OptimizerOptions options;
  options.cost_model = model;
  return options;
}

constexpr CostModelKind kModels[] = {CostModelKind::kNaive,
                                     CostModelKind::kSortMerge,
                                     CostModelKind::kDiskNestedLoops};

TEST(BruteForceOracleTest, AgreesWithBaselineBruteForceOnRoot) {
  // Two independently written exhaustive optimizers (memoized recursion in
  // baseline/, bottom-up split scan here) must land on the same optimum.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const testing::RandomInstance instance = MakeRandomInstance(7, seed);
    for (const CostModelKind model : kModels) {
      Result<BruteForceResult> baseline =
          OptimizeBruteForce(instance.catalog, instance.graph, model);
      ASSERT_TRUE(baseline.ok());
      Result<BruteForceTable> table =
          BruteForceAllSubsets(instance.catalog, instance.graph, model);
      ASSERT_TRUE(table.ok());
      const std::uint32_t root =
          RelSet::FirstN(instance.catalog.num_relations()).word();
      EXPECT_NEAR(table->cost[root], baseline->cost,
                  1e-9 * (1.0 + std::abs(baseline->cost)))
          << "seed=" << seed << " model=" << static_cast<int>(model);
    }
  }
}

TEST(BruteForceOracleTest, ValidatesBlitzsplitTable) {
  const testing::RandomInstance instance = MakeRandomInstance(8, 17);
  for (const CostModelKind model : kModels) {
    Result<OptimizeOutcome> outcome =
        OptimizeJoin(instance.catalog, instance.graph, Options(model));
    ASSERT_TRUE(outcome.ok());
    Result<BruteForceTable> reference =
        BruteForceAllSubsets(instance.catalog, instance.graph, model);
    ASSERT_TRUE(reference.ok());
    const OracleVerdict verdict =
        CompareDpTableToBruteForce(outcome->table, *reference);
    EXPECT_TRUE(verdict.ok) << verdict.message;
  }
}

TEST(BruteForceOracleTest, DetectsTamperedCost) {
  const testing::RandomInstance instance = MakeRandomInstance(6, 5);
  Result<OptimizeOutcome> outcome = OptimizeJoin(
      instance.catalog, instance.graph, Options(CostModelKind::kNaive));
  ASSERT_TRUE(outcome.ok());
  Result<BruteForceTable> reference = BruteForceAllSubsets(
      instance.catalog, instance.graph, CostModelKind::kNaive);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(CompareDpTableToBruteForce(outcome->table, *reference).ok);
  // Inflate one interior optimum; the oracle must name it.
  const std::uint32_t victim = RelSet::FirstN(3).word();
  outcome->table.cost_data()[victim] *= 2.0f;
  const OracleVerdict verdict =
      CompareDpTableToBruteForce(outcome->table, *reference);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(verdict.message.empty());
}

TEST(BruteForceOracleTest, RespectsSizeCap) {
  const testing::RandomInstance instance = MakeRandomInstance(8, 1);
  EXPECT_EQ(BruteForceAllSubsets(instance.catalog, instance.graph,
                                 CostModelKind::kNaive, /*max_n=*/6)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(BruteForceOracleTest, ThresholdSemanticsRejectedRowsJustified) {
  // Under a biting threshold every rejected DP row's true optimum must be
  // at/above the threshold, and every surviving row must still be exact.
  const testing::RandomInstance instance = MakeRandomInstance(7, 29);
  OptimizerOptions options = Options(CostModelKind::kNaive);
  Result<OptimizeOutcome> unbounded =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_TRUE(unbounded.ok());
  ASSERT_TRUE(unbounded->found_plan());
  const float threshold = std::max(unbounded->cost * 4.0f, 1.0f);
  options.cost_threshold = threshold;
  Result<OptimizeOutcome> bounded =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_TRUE(bounded.ok());
  Result<BruteForceTable> reference = BruteForceAllSubsets(
      instance.catalog, instance.graph, CostModelKind::kNaive);
  ASSERT_TRUE(reference.ok());
  const OracleVerdict verdict =
      CompareDpTableToBruteForce(bounded->table, *reference, threshold);
  EXPECT_TRUE(verdict.ok) << verdict.message;
}

TEST(RecostOracleTest, RecostMatchesCardinalityDefinition) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  const Plan plan = Plan::Join(Plan::Join(Plan::Leaf(0), Plan::Leaf(1)),
                               Plan::Join(Plan::Leaf(2), Plan::Leaf(3)));
  const RecostResult r =
      RecostPlan(plan.root(), catalog, graph, CostModelKind::kNaive);
  const std::vector<double> cards = {10, 20, 30, 40};
  EXPECT_NEAR(r.card, graph.JoinCardinality(RelSet::FirstN(4), cards), 1e-9);
  EXPECT_GT(r.cost, 0.0);
}

TEST(DpCcpOracleTest, AcceptsHonestBlitzsplitResult) {
  const testing::RandomInstance instance = MakeRandomInstance(9, 101);
  for (const CostModelKind model : kModels) {
    Result<OptimizeOutcome> outcome =
        OptimizeJoin(instance.catalog, instance.graph, Options(model));
    ASSERT_TRUE(outcome.ok());
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
    ASSERT_TRUE(plan.ok());
    const OracleVerdict verdict = CheckAgainstDpCcp(
        instance.catalog, instance.graph, model, outcome->cost,
        plan->CountCartesianProducts(instance.graph));
    EXPECT_TRUE(verdict.ok) << verdict.message;
  }
}

TEST(DpCcpOracleTest, RejectsCostAboveDpCcp) {
  // A claimed blitzsplit optimum strictly worse than DPccp's product-free
  // optimum is impossible; the oracle must flag it.
  const testing::RandomInstance instance = MakeRandomInstance(6, 53);
  Result<DpCcpResult> dpccp = OptimizeDpCcp(instance.catalog, instance.graph,
                                            CostModelKind::kNaive);
  ASSERT_TRUE(dpccp.ok());
  const OracleVerdict verdict =
      CheckAgainstDpCcp(instance.catalog, instance.graph,
                        CostModelKind::kNaive, dpccp->cost * 2.0 + 1.0,
                        /*plan_cartesian_products=*/0);
  EXPECT_FALSE(verdict.ok);
}

TEST(DpCcpOracleTest, DisconnectedGraphPassesTrivially) {
  Result<Catalog> catalog =
      Catalog::FromCardinalities({10.0, 20.0, 30.0, 40.0});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(4);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.1).ok());  // {2}, {3} disconnected.
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(*catalog, graph, Options(CostModelKind::kNaive));
  ASSERT_TRUE(outcome.ok());
  const OracleVerdict verdict =
      CheckAgainstDpCcp(*catalog, graph, CostModelKind::kNaive, outcome->cost,
                        /*plan_cartesian_products=*/2);
  EXPECT_TRUE(verdict.ok) << verdict.message;
}

TEST(TableIdentityTest, DetectsSingleLaneDivergence) {
  const testing::RandomInstance instance = MakeRandomInstance(7, 3);
  Result<OptimizeOutcome> a = OptimizeJoin(instance.catalog, instance.graph,
                                           Options(CostModelKind::kNaive));
  Result<OptimizeOutcome> b = OptimizeJoin(instance.catalog, instance.graph,
                                           Options(CostModelKind::kNaive));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(TablesBitIdentical(a->table, b->table).ok);
  b->table.best_lhs_data()[RelSet::FirstN(2).word()] ^= 1u;
  const OracleVerdict verdict = TablesBitIdentical(a->table, b->table);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(verdict.message.empty());
}

}  // namespace
}  // namespace blitz
