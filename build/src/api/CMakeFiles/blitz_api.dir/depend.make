# Empty dependencies file for blitz_api.
# This may be replaced when dependencies are built.
