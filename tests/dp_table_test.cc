#include "core/dp_table.h"

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(DpTableTest, CreateAllocatesRequestedColumns) {
  Result<DpTable> table = DpTable::Create(4, true, true);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_relations(), 4);
  EXPECT_EQ(table->size(), 16u);
  EXPECT_TRUE(table->has_pi_fan());
  EXPECT_TRUE(table->has_aux());
  EXPECT_EQ(table->AllRelations(), RelSet::FirstN(4));
}

TEST(DpTableTest, OptionalColumnsAbsentWhenNotRequested) {
  Result<DpTable> table = DpTable::Create(3, false, false);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->has_pi_fan());
  EXPECT_FALSE(table->has_aux());
}

TEST(DpTableTest, FreshTableHasAllSetsRejected) {
  Result<DpTable> table = DpTable::Create(3, false, false);
  ASSERT_TRUE(table.ok());
  for (std::uint64_t s = 1; s < table->size(); ++s) {
    EXPECT_TRUE(table->rejected(RelSet::FromWord(s)));
  }
}

TEST(DpTableTest, RejectsOutOfRangeN) {
  EXPECT_FALSE(DpTable::Create(0, false, false).ok());
  EXPECT_FALSE(DpTable::Create(-1, false, false).ok());
  EXPECT_FALSE(DpTable::Create(kMaxRelations + 1, false, false).ok());
  EXPECT_EQ(DpTable::Create(99, false, false).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DpTableTest, MemoryEstimateScalesWithColumns) {
  Result<DpTable> small = DpTable::Create(8, false, false);
  Result<DpTable> big = DpTable::Create(8, true, true);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GT(big->MemoryBytes(), small->MemoryBytes());
  // Base columns: cost (4) + card (8) + best_lhs (4) = 16 bytes per row —
  // the paper's Section 4.1 row size.
  EXPECT_EQ(small->MemoryBytes(), 16u * 256u);
}

TEST(DpTableTest, ColumnsAreWritableThroughRawPointers) {
  Result<DpTable> table = DpTable::Create(2, true, true);
  ASSERT_TRUE(table.ok());
  table->cost_data()[3] = 42.0f;
  table->card_data()[3] = 7.0;
  table->best_lhs_data()[3] = 1;
  table->pi_fan_data()[3] = 0.5;
  const RelSet both = RelSet::FirstN(2);
  EXPECT_EQ(table->cost(both), 42.0f);
  EXPECT_DOUBLE_EQ(table->card(both), 7.0);
  EXPECT_EQ(table->best_lhs(both), RelSet::Singleton(0));
  EXPECT_DOUBLE_EQ(table->pi_fan(both), 0.5);
  EXPECT_FALSE(table->rejected(both));
}

TEST(DpTableTest, MoveTransfersOwnership) {
  Result<DpTable> table = DpTable::Create(3, true, false);
  ASSERT_TRUE(table.ok());
  table->cost_data()[5] = 1.5f;
  DpTable moved = std::move(table).value();
  EXPECT_EQ(moved.num_relations(), 3);
  EXPECT_EQ(moved.cost(RelSet::FromWord(5)), 1.5f);
}

}  // namespace
}  // namespace blitz
