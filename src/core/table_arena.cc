#include "core/table_arena.h"

#include <utility>

#include "governor/faultpoints.h"
#include "obs/metrics.h"

namespace blitz {

Result<DpTable> DpTableArena::Acquire(int n, bool with_pi_fan,
                                      bool with_aux) {
  if (std::optional<FaultSpec> fault = FaultHit(kFaultServeArenaAlloc)) {
    switch (fault->kind) {
      case FaultKind::kBadAlloc:
        return Status::ResourceExhausted(
            "injected arena allocation failure");
      case FaultKind::kFailStatus:
        return fault->status;
      case FaultKind::kClockSkew:
      case FaultKind::kCancel:
        break;  // Meaningless at an allocation site; ignore.
    }
  }
  const ShapeKey key{n, with_pi_fan, with_aux};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto bucket = pool_.find(key);
    if (bucket != pool_.end() && !bucket->second.empty()) {
      DpTable table = std::move(bucket->second.back());
      bucket->second.pop_back();
      ++stats_.hits;
      stats_.retained_tables -= 1;
      stats_.retained_bytes -= table.MemoryBytes();
      if (MetricsRegistry* metrics = GlobalMetrics()) {
        metrics->AddCounter("serve.arena.hits");
      }
      return table;
    }
    ++stats_.misses;
  }
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("serve.arena.misses");
  }
  return DpTable::Create(n, with_pi_fan, with_aux);
}

void DpTableArena::Release(DpTable table) {
  const std::uint64_t bytes = table.MemoryBytes();
  if (bytes == 0) return;  // Default-constructed placeholder.
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.retained_bytes + bytes > options_.max_retained_bytes) {
    ++stats_.discarded;
    return;  // Cap reached: `table` frees on return instead of pooling.
  }
  const ShapeKey key{table.num_relations(), table.has_pi_fan(),
                     table.has_aux()};
  pool_[key].push_back(std::move(table));
  stats_.retained_bytes += bytes;
  stats_.retained_tables += 1;
}

void DpTableArena::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  pool_.clear();
  stats_.retained_bytes = 0;
  stats_.retained_tables = 0;
}

DpTableArena::Stats DpTableArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace blitz
