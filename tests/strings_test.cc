#include "common/strings.h"

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("n=%d t=%s", 5, "chain"), "n=5 t=chain");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, HandlesLongOutput) {
  const std::string long_arg(1000, 'x');
  const std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 1002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(StrSplitTest, BasicSplit) {
  EXPECT_EQ(StrSplit("a b c", ' '),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrSplitTest, DropsEmptyFieldsByDefault) {
  EXPECT_EQ(StrSplit("a  b   c ", ' '),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ' '), (std::vector<std::string>{}));
}

TEST(StrSplitTest, KeepsEmptyFieldsWhenAsked) {
  EXPECT_EQ(StrSplit("a,,b", ',', /*keep_empty=*/true),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(StrTrimTest, TrimsBothEnds) {
  EXPECT_EQ(StrTrim("  hello\t "), "hello");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("x"), "x");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("relation A", "relation"));
  EXPECT_FALSE(StartsWith("rel", "relation"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"solo"}, ", "), "solo");
}

TEST(ParseDoubleTest, AcceptsValidNumbers) {
  double value = 0;
  EXPECT_TRUE(ParseDouble("3.5", &value));
  EXPECT_DOUBLE_EQ(value, 3.5);
  EXPECT_TRUE(ParseDouble("-1e9", &value));
  EXPECT_DOUBLE_EQ(value, -1e9);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double value = 0;
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("12x", &value));
  EXPECT_FALSE(ParseDouble("x12", &value));
  EXPECT_FALSE(ParseDouble(std::string(100, '1'), &value));
}

TEST(ParseIntTest, AcceptsValidNumbers) {
  int value = 0;
  EXPECT_TRUE(ParseInt("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt("0", &value));
  EXPECT_EQ(value, 0);
}

TEST(ParseIntTest, RejectsGarbageAndNegatives) {
  int value = 0;
  EXPECT_FALSE(ParseInt("", &value));
  EXPECT_FALSE(ParseInt("4.2", &value));
  EXPECT_FALSE(ParseInt("-3", &value));
  EXPECT_FALSE(ParseInt("99999999999999", &value));
}

}  // namespace
}  // namespace blitz
