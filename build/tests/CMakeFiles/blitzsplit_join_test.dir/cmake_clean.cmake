file(REMOVE_RECURSE
  "CMakeFiles/blitzsplit_join_test.dir/blitzsplit_join_test.cc.o"
  "CMakeFiles/blitzsplit_join_test.dir/blitzsplit_join_test.cc.o.d"
  "blitzsplit_join_test"
  "blitzsplit_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitzsplit_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
