// End-to-end pipeline tests: workload -> optimize -> extract -> attach
// algorithms -> generate data -> execute, with cross-optimizer result
// equivalence as the final arbiter.

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/dpsub.h"
#include "baseline/greedy.h"
#include "baseline/leftdeep.h"
#include "core/optimizer.h"
#include "exec/datagen.h"
#include "exec/executor.h"
#include "plan/algorithm_choice.h"
#include "plan/evaluate.h"
#include "plan/plan.h"
#include "query/workload.h"
#include "test_util.h"
#include "textio/bjq.h"

namespace blitz {
namespace {

using ::blitz::testing::MakeRandomInstance;

/// A small executable instance (cardinalities small enough to materialize
/// every intermediate result).
blitz::testing::RandomInstance SmallInstance(std::uint64_t seed) {
  return MakeRandomInstance(6, seed, /*extra_edge_prob=*/0.4,
                            /*card_max=*/12, /*sel_min=*/0.1);
}

TEST(IntegrationTest, AllOptimizersProduceEquivalentResults) {
  const auto instance = SmallInstance(11);
  Result<std::vector<ExecTable>> tables =
      GenerateTables(instance.catalog, instance.graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok());

  // Gather plans from every optimizer in the library.
  std::vector<Plan> plans;
  {
    Result<OptimizeOutcome> outcome = OptimizeJoin(
        instance.catalog, instance.graph, OptimizerOptions{});
    ASSERT_TRUE(outcome.ok());
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
    ASSERT_TRUE(plan.ok());
    plans.push_back(std::move(plan).value());
  }
  {
    Result<LeftDeepResult> result = OptimizeLeftDeep(
        instance.catalog, instance.graph, CostModelKind::kNaive);
    ASSERT_TRUE(result.ok());
    plans.push_back(std::move(result->plan));
  }
  {
    Result<DpSubResult> result = OptimizeDpSubNoProducts(
        instance.catalog, instance.graph, CostModelKind::kNaive);
    ASSERT_TRUE(result.ok());
    plans.push_back(std::move(result->plan));
  }
  {
    Result<GreedyResult> result = OptimizeGreedy(
        instance.catalog, instance.graph, CostModelKind::kNaive,
        GreedyCriterion::kMinOutputCardinality);
    ASSERT_TRUE(result.ok());
    plans.push_back(std::move(result->plan));
  }

  Result<ExecutionResult> reference =
      ExecutePlan(plans[0], *tables, instance.graph);
  ASSERT_TRUE(reference.ok());
  const auto expected = ResultFingerprint(reference->result);
  for (size_t i = 1; i < plans.size(); ++i) {
    Result<ExecutionResult> result =
        ExecutePlan(plans[i], *tables, instance.graph);
    ASSERT_TRUE(result.ok()) << plans[i].ToString();
    EXPECT_EQ(ResultFingerprint(result->result), expected)
        << "plan " << i << ": " << plans[i].ToString();
  }
}

TEST(IntegrationTest, AttachedAlgorithmsExecuteCorrectly) {
  const auto instance = SmallInstance(23);
  Result<std::vector<ExecTable>> tables =
      GenerateTables(instance.catalog, instance.graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok());

  OptimizerOptions options;
  options.cost_model = CostModelKind::kMinSmDnl;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_TRUE(outcome.ok());
  Result<Plan> annotated = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(annotated.ok());
  ChooseAlgorithms(&annotated.value(), instance.catalog, instance.graph,
                   CostModelKind::kMinSmDnl);

  // The same plan executed with default (unannotated) algorithms must give
  // the same result.
  Result<Plan> unannotated = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(unannotated.ok());

  Result<ExecutionResult> with_algorithms =
      ExecutePlan(*annotated, *tables, instance.graph);
  Result<ExecutionResult> defaults =
      ExecutePlan(*unannotated, *tables, instance.graph);
  ASSERT_TRUE(with_algorithms.ok());
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(ResultFingerprint(with_algorithms->result),
            ResultFingerprint(defaults->result));
}

TEST(IntegrationTest, EstimatedFinalCardinalityPredictsObserved) {
  // Averaged over several seeds the estimate should land within a factor
  // of a few of the observed cardinality (it is a product of independent
  // uniform approximations).
  double total_observed = 0;
  double total_estimated = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    // Mild selectivities so expected result counts are large enough for the
    // law of large numbers to apply.
    const auto instance = MakeRandomInstance(
        6, seed * 100, /*extra_edge_prob=*/0.4, /*card_max=*/12,
        /*sel_min=*/0.3);
    DataGenOptions datagen;
    datagen.seed = seed;
    Result<std::vector<ExecTable>> tables =
        GenerateTables(instance.catalog, instance.graph, datagen);
    ASSERT_TRUE(tables.ok());
    Result<OptimizeOutcome> outcome = OptimizeJoin(
        instance.catalog, instance.graph, OptimizerOptions{});
    ASSERT_TRUE(outcome.ok());
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
    ASSERT_TRUE(plan.ok());
    Result<ExecutionResult> result =
        ExecutePlan(*plan, *tables, instance.graph);
    ASSERT_TRUE(result.ok());

    // Estimate against the *materialized* row counts (cardinalities are
    // rounded when tables are generated).
    std::vector<double> actual_cards(instance.catalog.num_relations());
    for (int i = 0; i < instance.catalog.num_relations(); ++i) {
      actual_cards[i] = static_cast<double>((*tables)[i].num_rows());
    }
    total_estimated += instance.graph.JoinCardinality(
        instance.catalog.AllRelations(), actual_cards);
    total_observed += static_cast<double>(result->result.num_rows());
  }
  ASSERT_GT(total_estimated, 0);
  const double ratio = total_observed / total_estimated;
  EXPECT_GT(ratio, 0.2) << total_observed << " vs " << total_estimated;
  EXPECT_LT(ratio, 5.0) << total_observed << " vs " << total_estimated;
}

TEST(IntegrationTest, BjqPipelineEndToEnd) {
  constexpr char kQuery[] = R"(
costmodel sm
relation fact 200
relation dim_a 20
relation dim_b 10
predicate fact dim_a 0.05
predicate fact dim_b 0.1
)";
  Result<QuerySpec> spec = ParseBjq(kQuery);
  ASSERT_TRUE(spec.ok());
  OptimizerOptions options;
  options.cost_model = spec->cost_model;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(spec->catalog, spec->graph, options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->found_plan());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  ChooseAlgorithms(&plan.value(), spec->catalog, spec->graph,
                   spec->cost_model);

  Result<std::vector<ExecTable>> tables =
      GenerateTables(spec->catalog, spec->graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok());
  Result<ExecutionResult> result =
      ExecutePlan(*plan, *tables, spec->graph);
  ASSERT_TRUE(result.ok());
  // 200 * 20 * 10 * 0.05 * 0.1 = 200 expected output rows (roughly).
  EXPECT_GT(result->result.num_rows(), 20u);
  EXPECT_LT(result->result.num_rows(), 2000u);
}

TEST(IntegrationTest, WorkloadSweepPointOptimizesAndExtracts) {
  // One Figure 4 grid point end to end (small n to keep the test quick).
  WorkloadSpec spec;
  spec.num_relations = 10;
  spec.topology = Topology::kCyclePlus3;
  spec.mean_cardinality = 464;
  spec.variability = 0.5;
  Result<Workload> workload = MakeWorkload(spec);
  ASSERT_TRUE(workload.ok());
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops}) {
    OptimizerOptions options;
    options.cost_model = kind;
    Result<OptimizeOutcome> outcome =
        OptimizeJoin(workload->catalog, workload->graph, options);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->found_plan());
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->NumLeaves(), 10);
    const double evaluated =
        EvaluateCost(*plan, workload->catalog, workload->graph, kind);
    EXPECT_NEAR(evaluated, outcome->cost, 1e-4 * std::max(1.0, evaluated));
  }
}

}  // namespace
}  // namespace blitz
