#include "baseline/bruteforce.h"

#include <bit>
#include <functional>
#include <limits>
#include <vector>

#include "common/check.h"
#include "core/subset_enum.h"

namespace blitz {

Result<BruteForceResult> OptimizeBruteForce(const Catalog& catalog,
                                            const JoinGraph& graph,
                                            CostModelKind cost_model) {
  const int n = catalog.num_relations();
  if (graph.num_relations() != n) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  if (n > 16) {
    return Status::InvalidArgument("brute force limited to n <= 16");
  }
  std::vector<double> base_cards(n);
  for (int i = 0; i < n; ++i) base_cards[i] = catalog.cardinality(i);

  const std::uint64_t table_size = std::uint64_t{1} << n;
  constexpr double kUnset = -1.0;
  std::vector<double> memo_cost(table_size, kUnset);
  std::vector<std::uint64_t> memo_lhs(table_size, 0);

  std::function<double(std::uint64_t)> solve = [&](std::uint64_t s) -> double {
    if ((s & (s - 1)) == 0) return 0.0;
    if (memo_cost[s] != kUnset) return memo_cost[s];
    const double out_card =
        graph.JoinCardinality(RelSet::FromWord(s), base_cards);
    double best = std::numeric_limits<double>::infinity();
    std::uint64_t best_split = 0;
    for (std::uint64_t lhs = s & (~s + 1); lhs != s; lhs = s & (lhs - s)) {
      const std::uint64_t rhs = s ^ lhs;
      const double lhs_card =
          graph.JoinCardinality(RelSet::FromWord(lhs), base_cards);
      const double rhs_card =
          graph.JoinCardinality(RelSet::FromWord(rhs), base_cards);
      const double candidate =
          solve(lhs) + solve(rhs) +
          EvalJoinCost(cost_model, out_card, lhs_card, rhs_card);
      if (candidate < best) {
        best = candidate;
        best_split = lhs;
      }
    }
    memo_cost[s] = best;
    memo_lhs[s] = best_split;
    return best;
  };

  const std::uint64_t full = table_size - 1;
  BruteForceResult result;
  result.cost = solve(full);

  std::function<Plan(std::uint64_t)> extract = [&](std::uint64_t s) {
    if ((s & (s - 1)) == 0) return Plan::Leaf(std::countr_zero(s));
    const std::uint64_t lhs = memo_lhs[s];
    return Plan::Join(extract(lhs), extract(s ^ lhs));
  };
  result.plan = extract(full);
  return result;
}

}  // namespace blitz
