file(REMOVE_RECURSE
  "libblitz_exec.a"
)
