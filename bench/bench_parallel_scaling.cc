// Scaling of the rank-synchronous parallel optimizer: Figure 2's setting
// (pure Cartesian product, equal base cardinalities of 100, naive cost
// model) timed at several thread counts, reporting per-point speedup over
// the sequential driver and emitting the table as JSON for plotting.
//
// Note the speedups are only meaningful on a machine with that many real
// cores — on a single-core box every thread count times out to ~1x (plus
// barrier overhead), which is itself the number to watch for regressions.
//
// Environment knobs: BLITZ_BENCH_MIN_SECONDS (timing floor per point,
// default 0.05), BLITZ_SCALING_MIN_N / BLITZ_SCALING_MAX_N (default 15/18),
// BLITZ_SCALING_JSON (path to also write the JSON to; stdout always gets
// it).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "catalog/catalog.h"
#include "common/check.h"
#include "common/strings.h"
#include "core/optimizer.h"

namespace blitz {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

int Run() {
  const double min_seconds = BenchMinSeconds(0.05);
  const int min_n = BenchEnvInt("BLITZ_SCALING_MIN_N", 15);
  const int max_n = BenchEnvInt("BLITZ_SCALING_MAX_N", 18);

  std::printf(
      "Parallel rank-synchronous blitzsplit scaling (naive cost model,\n"
      "equal base cardinalities of 100, Figure 2 setting)\n\n");

  TextTable out;
  out.SetHeader({"n", "threads", "time/opt (ms)", "speedup", "reps"});
  std::string json = "{\"bench\": \"parallel_scaling\", \"points\": [";
  bool first_point = true;

  for (int n = min_n; n <= max_n; ++n) {
    Result<Catalog> catalog =
        Catalog::FromCardinalities(std::vector<double>(n, 100.0));
    BLITZ_CHECK(catalog.ok());
    double sequential_seconds = 0;
    for (const int threads : kThreadCounts) {
      OptimizerOptions options;
      options.parallel.num_threads = threads;
      float cost = 0;
      const TimingResult timing = TimeIt(
          [&] {
            Result<OptimizeOutcome> outcome =
                OptimizeCartesian(*catalog, options);
            BLITZ_CHECK(outcome.ok());
            cost = outcome->cost;
          },
          min_seconds);
      if (threads == 1) {
        sequential_seconds = timing.seconds_per_run;
      } else {
        // Any thread count must reproduce the sequential optimum exactly.
        OptimizerOptions sequential;
        Result<OptimizeOutcome> check =
            OptimizeCartesian(*catalog, sequential);
        BLITZ_CHECK(check.ok());
        BLITZ_CHECK(check->cost == cost);
      }
      const double speedup = timing.seconds_per_run > 0
                                 ? sequential_seconds / timing.seconds_per_run
                                 : 0;
      out.AddRow({StrFormat("%d", n), StrFormat("%d", threads),
                  StrFormat("%.3f", timing.seconds_per_run * 1e3),
                  StrFormat("%.2f", speedup),
                  StrFormat("%d", timing.repetitions)});
      json += StrFormat(
          "%s{\"n\": %d, \"threads\": %d, \"seconds\": %.6g, "
          "\"speedup\": %.4g}",
          first_point ? "" : ", ", n, threads, timing.seconds_per_run,
          speedup);
      first_point = false;
    }
  }
  json += "]}";

  std::printf("%s\n", out.ToString().c_str());
  std::printf("%s\n", json.c_str());
  if (const char* path = std::getenv("BLITZ_SCALING_JSON")) {
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
      std::printf("json written to %s\n", path);
    } else {
      std::fprintf(stderr, "could not open %s\n", path);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
