# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for blitzsplit_join_test.
