file(REMOVE_RECURSE
  "CMakeFiles/blitz_plan.dir/algorithm_choice.cc.o"
  "CMakeFiles/blitz_plan.dir/algorithm_choice.cc.o.d"
  "CMakeFiles/blitz_plan.dir/evaluate.cc.o"
  "CMakeFiles/blitz_plan.dir/evaluate.cc.o.d"
  "CMakeFiles/blitz_plan.dir/explain.cc.o"
  "CMakeFiles/blitz_plan.dir/explain.cc.o.d"
  "CMakeFiles/blitz_plan.dir/plan.cc.o"
  "CMakeFiles/blitz_plan.dir/plan.cc.o.d"
  "CMakeFiles/blitz_plan.dir/serialize.cc.o"
  "CMakeFiles/blitz_plan.dir/serialize.cc.o.d"
  "libblitz_plan.a"
  "libblitz_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitz_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
