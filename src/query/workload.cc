#include "query/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace blitz {

std::string WorkloadSpec::ToString() const {
  return StrFormat("n=%d %s mean=%g var=%g", num_relations,
                   TopologyToString(topology), mean_cardinality, variability);
}

std::vector<double> MakeCardinalityLadder(int n, double mean_cardinality,
                                          double variability) {
  BLITZ_CHECK(n >= 1);
  std::vector<double> cards(n);
  if (n == 1) {
    cards[0] = mean_cardinality;
    return cards;
  }
  // log|R_i| = (1 - variability) * log(mean) + i * step, with the step such
  // that the average of the log-cardinalities equals log(mean).
  const double log_mean = std::log(mean_cardinality);
  const double log_first = (1.0 - variability) * log_mean;
  const double step = 2.0 * variability * log_mean / (n - 1);
  for (int i = 0; i < n; ++i) {
    cards[i] = std::exp(log_first + step * i);
  }
  return cards;
}

std::vector<double> MeanCardinalityGrid(int count) {
  std::vector<double> grid(count);
  for (int i = 0; i < count; ++i) {
    grid[i] = std::pow(10.0, 2.0 * i / 3.0);
  }
  return grid;
}

std::vector<double> VariabilityGrid(int count) {
  BLITZ_CHECK(count >= 2);
  std::vector<double> grid(count);
  for (int i = 0; i < count; ++i) {
    grid[i] = static_cast<double>(i) / (count - 1);
  }
  return grid;
}

Result<Workload> MakeWorkloadFromEdges(
    int num_relations, double mean_cardinality, double variability,
    const std::vector<std::pair<int, int>>& edges) {
  if (num_relations < 1 || num_relations > kMaxRelations) {
    return Status::InvalidArgument(
        StrFormat("num_relations %d outside [1, %d]", num_relations,
                  kMaxRelations));
  }
  if (!(mean_cardinality >= 1.0) || !std::isfinite(mean_cardinality)) {
    return Status::InvalidArgument(
        StrFormat("mean_cardinality %g must be >= 1", mean_cardinality));
  }
  if (variability < 0.0 || variability > 1.0) {
    return Status::InvalidArgument(
        StrFormat("variability %g outside [0, 1]", variability));
  }

  const int n = num_relations;
  const std::vector<double> cards =
      MakeCardinalityLadder(n, mean_cardinality, variability);
  // Validate the generated ladder with the catalog's canonical checker so an
  // overflowing mean (exp of a huge log) fails here with the same
  // relation-naming error text Catalog::Create would emit.
  for (int i = 0; i < n; ++i) {
    BLITZ_RETURN_IF_ERROR(
        ValidateRelationCardinality("R" + std::to_string(i), cards[i]));
  }
  Result<Catalog> catalog = Catalog::FromCardinalities(cards);
  if (!catalog.ok()) return catalog.status();

  // Predicate degrees (the k_i of the Appendix's selectivity formula).
  std::vector<int> degree(n, 0);
  for (const auto& [a, b] : edges) {
    if (a < 0 || a >= n || b < 0 || b >= n || a == b) {
      return Status::InvalidArgument(
          StrFormat("edge (%d, %d) invalid for n=%d", a, b, n));
    }
    ++degree[a];
    ++degree[b];
  }
  const int k = static_cast<int>(edges.size());

  JoinGraph graph(n);
  for (const auto& [a, b] : edges) {
    double selectivity = std::pow(mean_cardinality, 1.0 / k) *
                         std::pow(cards[a], -1.0 / degree[a]) *
                         std::pow(cards[b], -1.0 / degree[b]);
    // Guard against numeric drift past 1 in degenerate corners (e.g. mean
    // cardinality exactly 1, where the formula gives exactly 1).
    selectivity = std::min(selectivity, 1.0);
    BLITZ_RETURN_IF_ERROR(graph.AddPredicate(a, b, selectivity));
  }
  return Workload{std::move(catalog).value(), std::move(graph)};
}

Result<Workload> MakeWorkload(const WorkloadSpec& spec) {
  // Bounds-check n before MakeTopologyEdges, whose chain-order helper
  // CHECK-fails on n < 1 rather than returning a status.
  if (spec.num_relations < 1 || spec.num_relations > kMaxRelations) {
    return Status::InvalidArgument(
        StrFormat("num_relations %d outside [1, %d]", spec.num_relations,
                  kMaxRelations));
  }
  Result<std::vector<std::pair<int, int>>> edges =
      MakeTopologyEdges(spec.topology, spec.num_relations);
  if (!edges.ok()) return edges.status();
  return MakeWorkloadFromEdges(spec.num_relations, spec.mean_cardinality,
                               spec.variability, *edges);
}

}  // namespace blitz
