#include "catalog/filters.h"

#include <gtest/gtest.h>

#include "textio/bjq.h"

namespace blitz {
namespace {

Catalog ThreeRelations() {
  Result<Catalog> catalog = Catalog::Create({
      {"fact", 1000000, 96},
      {"dim_a", 10000, 64},
      {"dim_b", 500, 64},
  });
  BLITZ_CHECK(catalog.ok());
  return std::move(catalog).value();
}

TEST(FiltersTest, ScalesCardinalities) {
  const Catalog catalog = ThreeRelations();
  Result<Catalog> filtered =
      ApplyFilters(catalog, {{1, 0.01}, {2, 0.5}});
  ASSERT_TRUE(filtered.ok());
  EXPECT_DOUBLE_EQ(filtered->cardinality(0), 1000000);
  EXPECT_DOUBLE_EQ(filtered->cardinality(1), 100);
  EXPECT_DOUBLE_EQ(filtered->cardinality(2), 250);
  // Names and widths preserved.
  EXPECT_EQ(filtered->relation(1).name, "dim_a");
  EXPECT_EQ(filtered->relation(0).tuple_bytes, 96);
}

TEST(FiltersTest, MultipleFiltersOnOneRelationMultiply) {
  const Catalog catalog = ThreeRelations();
  Result<Catalog> filtered = ApplyFilters(catalog, {{0, 0.1}, {0, 0.1}});
  ASSERT_TRUE(filtered.ok());
  EXPECT_DOUBLE_EQ(filtered->cardinality(0), 10000);
}

TEST(FiltersTest, NoFiltersIsIdentity) {
  const Catalog catalog = ThreeRelations();
  Result<Catalog> filtered = ApplyFilters(catalog, {});
  ASSERT_TRUE(filtered.ok());
  for (int i = 0; i < catalog.num_relations(); ++i) {
    EXPECT_DOUBLE_EQ(filtered->cardinality(i), catalog.cardinality(i));
  }
}

TEST(FiltersTest, RejectsBadFilters) {
  const Catalog catalog = ThreeRelations();
  EXPECT_FALSE(ApplyFilters(catalog, {{7, 0.5}}).ok());
  EXPECT_FALSE(ApplyFilters(catalog, {{-1, 0.5}}).ok());
  EXPECT_FALSE(ApplyFilters(catalog, {{0, 0.0}}).ok());
  EXPECT_FALSE(ApplyFilters(catalog, {{0, 1.5}}).ok());
  EXPECT_FALSE(ApplyFilters(catalog, {{0, -0.2}}).ok());
}

TEST(FiltersTest, BjqFilterDirective) {
  Result<QuerySpec> spec = ParseBjq(
      "relation fact 1000000\nrelation dim 10000\n"
      "filter dim 0.001\n"
      "predicate fact dim 0.0001\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec->catalog.cardinality(1), 10);
  EXPECT_DOUBLE_EQ(spec->catalog.cardinality(0), 1000000);
}

TEST(FiltersTest, BjqFilterErrors) {
  EXPECT_FALSE(ParseBjq("relation a 10\nfilter zz 0.5\n").ok());
  EXPECT_FALSE(ParseBjq("relation a 10\nfilter a 2.0\n").ok());
  EXPECT_FALSE(ParseBjq("relation a 10\nfilter a\n").ok());
}

}  // namespace
}  // namespace blitz
