
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/algorithm_choice.cc" "src/plan/CMakeFiles/blitz_plan.dir/algorithm_choice.cc.o" "gcc" "src/plan/CMakeFiles/blitz_plan.dir/algorithm_choice.cc.o.d"
  "/root/repo/src/plan/evaluate.cc" "src/plan/CMakeFiles/blitz_plan.dir/evaluate.cc.o" "gcc" "src/plan/CMakeFiles/blitz_plan.dir/evaluate.cc.o.d"
  "/root/repo/src/plan/explain.cc" "src/plan/CMakeFiles/blitz_plan.dir/explain.cc.o" "gcc" "src/plan/CMakeFiles/blitz_plan.dir/explain.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/plan/CMakeFiles/blitz_plan.dir/plan.cc.o" "gcc" "src/plan/CMakeFiles/blitz_plan.dir/plan.cc.o.d"
  "/root/repo/src/plan/serialize.cc" "src/plan/CMakeFiles/blitz_plan.dir/serialize.cc.o" "gcc" "src/plan/CMakeFiles/blitz_plan.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/blitz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/blitz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/blitz_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/blitz_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/blitz_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
