// Property-based cross-checks: for a sweep of random instances, the
// blitzsplit optimizer must agree with an independent brute-force reference,
// dominate every restricted-space or heuristic baseline, and produce
// internally consistent tables.

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/bruteforce.h"
#include "baseline/dpsub.h"
#include "baseline/greedy.h"
#include "baseline/leftdeep.h"
#include "baseline/random_plans.h"
#include "core/optimizer.h"
#include "plan/evaluate.h"
#include "plan/plan.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::MakeRandomInstance;

constexpr CostModelKind kAllModels[] = {
    CostModelKind::kNaive,     CostModelKind::kSortMerge,
    CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl,
    CostModelKind::kHash,      CostModelKind::kMinAll};

class RandomInstanceTest : public ::testing::TestWithParam<int> {
 protected:
  RandomInstanceTest()
      : instance_(MakeRandomInstance(8, static_cast<std::uint64_t>(
                                            GetParam()))) {}

  const blitz::testing::RandomInstance instance_;
};

TEST_P(RandomInstanceTest, BlitzsplitMatchesBruteForceUnderEveryModel) {
  for (const CostModelKind kind : kAllModels) {
    OptimizerOptions options;
    options.cost_model = kind;
    Result<OptimizeOutcome> outcome =
        OptimizeJoin(instance_.catalog, instance_.graph, options);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->found_plan()) << CostModelKindToString(kind);
    Result<BruteForceResult> brute =
        OptimizeBruteForce(instance_.catalog, instance_.graph, kind);
    ASSERT_TRUE(brute.ok());
    EXPECT_NEAR(outcome->cost, brute->cost,
                1e-4 * std::max(1.0, brute->cost))
        << CostModelKindToString(kind);
  }
}

TEST_P(RandomInstanceTest, ExtractedPlanIsWellFormedAndCostsWhatDpSays) {
  for (const CostModelKind kind : kAllModels) {
    OptimizerOptions options;
    options.cost_model = kind;
    Result<OptimizeOutcome> outcome =
        OptimizeJoin(instance_.catalog, instance_.graph, options);
    ASSERT_TRUE(outcome.ok());
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->relations(), instance_.catalog.AllRelations());
    EXPECT_EQ(plan->NumLeaves(), instance_.catalog.num_relations());
    const double evaluated =
        EvaluateCost(*plan, instance_.catalog, instance_.graph, kind);
    EXPECT_NEAR(evaluated, outcome->cost,
                1e-4 * std::max(1.0, evaluated))
        << CostModelKindToString(kind);
  }
}

TEST_P(RandomInstanceTest, TableCardinalitiesMatchInducedSubgraphs) {
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance_.catalog, instance_.graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  std::vector<double> base_cards(instance_.catalog.num_relations());
  for (int i = 0; i < instance_.catalog.num_relations(); ++i) {
    base_cards[i] = instance_.catalog.cardinality(i);
  }
  for (std::uint64_t s = 1; s < outcome->table.size(); ++s) {
    const RelSet set = RelSet::FromWord(s);
    const double expected =
        instance_.graph.JoinCardinality(set, base_cards);
    EXPECT_NEAR(outcome->table.card(set), expected,
                1e-9 * std::max(1.0, expected))
        << set.ToString();
  }
}

TEST_P(RandomInstanceTest, RestrictedSearchesNeverBeatBushyWithProducts) {
  const CostModelKind kind = CostModelKind::kNaive;
  Result<OptimizeOutcome> bushy =
      OptimizeJoin(instance_.catalog, instance_.graph, OptimizerOptions{});
  ASSERT_TRUE(bushy.ok());
  const double optimum = bushy->cost;

  Result<LeftDeepResult> left_deep =
      OptimizeLeftDeep(instance_.catalog, instance_.graph, kind);
  ASSERT_TRUE(left_deep.ok());
  EXPECT_GE(left_deep->cost, optimum * (1 - 1e-4));

  Result<DpSubResult> dpsub =
      OptimizeDpSubNoProducts(instance_.catalog, instance_.graph, kind);
  if (dpsub.ok()) {  // requires a connected graph; ours always is
    EXPECT_GE(dpsub->cost, optimum * (1 - 1e-4));
  }

  Result<GreedyResult> greedy =
      OptimizeGreedy(instance_.catalog, instance_.graph, kind,
                     GreedyCriterion::kMinOutputCardinality);
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(greedy->cost, optimum * (1 - 1e-4));

  Rng rng(GetParam());
  Result<RandomSamplingResult> sampled = OptimizeByRandomSampling(
      instance_.catalog, instance_.graph, kind, 50, &rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_GE(sampled->cost, optimum * (1 - 1e-4));
}

TEST_P(RandomInstanceTest, ThresholdLadderFindsTheSameOptimum) {
  Result<OptimizeOutcome> reference =
      OptimizeJoin(instance_.catalog, instance_.graph, OptimizerOptions{});
  ASSERT_TRUE(reference.ok());
  ThresholdLadderOptions ladder;
  ladder.initial_threshold = 100.0f;
  ladder.growth_factor = 1000.0f;
  Result<LadderOutcome> outcome = OptimizeJoinWithThresholds(
      instance_.catalog, instance_.graph, OptimizerOptions{}, ladder);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->outcome.cost, reference->cost);
}

TEST_P(RandomInstanceTest, CartesianOptimizerMatchesJoinWithEmptyGraph) {
  const JoinGraph empty(instance_.catalog.num_relations());
  for (const CostModelKind kind : kAllModels) {
    OptimizerOptions options;
    options.cost_model = kind;
    Result<OptimizeOutcome> cartesian =
        OptimizeCartesian(instance_.catalog, options);
    Result<OptimizeOutcome> join =
        OptimizeJoin(instance_.catalog, empty, options);
    ASSERT_TRUE(cartesian.ok());
    ASSERT_TRUE(join.ok());
    EXPECT_EQ(cartesian->cost, join->cost) << CostModelKindToString(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceTest,
                         ::testing::Range(1, 25));

// Sparse-graph variants (more products in the optimum).
class SparseInstanceTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseInstanceTest, BlitzsplitMatchesBruteForceOnSparseGraphs) {
  const auto instance = MakeRandomInstance(
      8, static_cast<std::uint64_t>(GetParam()) + 1000,
      /*extra_edge_prob=*/0.0, /*card_max=*/1e4, /*sel_min=*/1e-3);
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  Result<BruteForceResult> brute = OptimizeBruteForce(
      instance.catalog, instance.graph, CostModelKind::kNaive);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(outcome->cost, brute->cost, 1e-4 * std::max(1.0, brute->cost));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseInstanceTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace blitz
