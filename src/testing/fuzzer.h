#ifndef BLITZ_TESTING_FUZZER_H_
#define BLITZ_TESTING_FUZZER_H_

#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "query/join_graph.h"
#include "textio/bjq.h"

namespace blitz::fuzz {

/// Join-graph shapes the fuzzer samples: the paper's Appendix grid shapes
/// plus random(p) connected graphs (a random spanning tree, then each
/// remaining pair independently with probability p).
enum class FuzzTopology { kChain, kStar, kClique, kRandom };

/// "chain", "star", "clique", "random".
const char* FuzzTopologyName(FuzzTopology t);

/// The full description of one sampled test point. A spec is a pure
/// function of (seed, case_index) — see SampleCaseSpec — and BuildCase is a
/// pure function of the spec, so any case from any run is replayable from
/// the master seed and its index alone.
struct FuzzCaseSpec {
  std::uint64_t seed = 0;        ///< Master seed the spec was sampled under.
  std::uint64_t case_index = 0;  ///< Stream index within that seed.
  int num_relations = 2;
  FuzzTopology topology = FuzzTopology::kChain;
  double extra_edge_prob = 0.0;  ///< random(p) only; 0 otherwise.
  double mean_cardinality = 100.0;
  double variability = 0.0;

  /// Stable case identifier, e.g. "s42-c17-n9-random25-m100-v50"; used for
  /// corpus file names and failure messages.
  std::string Name() const;
};

/// A built optimization problem plus its provenance. `label` starts as
/// spec.Name() and is extended by the minimizer ("-min") so a reduced
/// repro's origin stays visible.
struct FuzzCase {
  FuzzCaseSpec spec;
  Catalog catalog;
  JoinGraph graph;
  std::string label;
};

/// Configuration of the sampling loop — the harness entry point. Validate()
/// is the single n-bounds gate of the whole harness: everything downstream
/// (JoinGraph's constructor, the 2^n DP table) CHECK-aborts on out-of-range
/// n, and DpTable::EstimateBytes signals its range only by returning 0, so
/// a bad bound must be turned into kInvalidArgument here, before any case
/// is built.
struct FuzzerOptions {
  std::uint64_t seed = 1;
  int min_relations = 2;
  int max_relations = 12;

  Status Validate() const;
};

/// Samples the spec of case `case_index` under `options` (which must
/// validate OK). Deterministic and order-independent: case i is the same
/// whether or not cases 0..i-1 were ever sampled.
FuzzCaseSpec SampleCaseSpec(const FuzzerOptions& options,
                            std::uint64_t case_index);

/// Materializes a spec into a catalog + join graph via the Appendix
/// construction (query/workload.h). Validates the spec's bounds with
/// kInvalidArgument (never aborts), so specs from corpus files or manual
/// construction are safe to feed through.
Result<FuzzCase> BuildCase(const FuzzCaseSpec& spec);

/// SampleCaseSpec + BuildCase.
Result<FuzzCase> GenerateCase(const FuzzerOptions& options,
                              std::uint64_t case_index);

/// Adapts a case for .bjq serialization (textio/bjq.h) under the given cost
/// model, for writing replayable corpus files.
QuerySpec ToQuerySpec(const FuzzCase& c, CostModelKind cost_model);

}  // namespace blitz::fuzz

#endif  // BLITZ_TESTING_FUZZER_H_
