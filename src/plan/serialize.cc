#include "plan/serialize.h"

#include <cctype>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace blitz {

namespace {

void SerializeNode(const PlanNode& node, const Catalog* catalog,
                   std::string* out) {
  if (node.is_leaf()) {
    if (catalog != nullptr && node.relation() < catalog->num_relations()) {
      *out += catalog->relation(node.relation()).name;
    } else {
      *out += "R" + std::to_string(node.relation());
    }
    return;
  }
  *out += "(";
  SerializeNode(*node.left, catalog, out);
  *out += " ";
  SerializeNode(*node.right, catalog, out);
  *out += ")";
  if (node.algorithm != JoinAlgorithm::kUnspecified) {
    *out += "@";
    *out += JoinAlgorithmToString(node.algorithm);
  }
}

/// Recursive-descent parser over the s-expression grammar.
class Parser {
 public:
  Parser(std::string_view text, const Catalog* catalog)
      : text_(text), catalog_(catalog) {}

  Result<Plan> Parse() {
    SkipSpace();
    Result<Plan> plan = ParseNode();
    if (!plan.ok()) return plan;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing input after plan");
    }
    return plan;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("plan parse error at offset %zu: %s", pos_,
                  message.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool IsIdentifierChar(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-';
  }

  Result<Plan> ParseNode() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    if (text_[pos_] == '(') return ParseJoin();
    return ParseLeaf();
  }

  Result<Plan> ParseLeaf() {
    const size_t start = pos_;
    while (pos_ < text_.size() && IsIdentifierChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected relation name");
    const std::string name(text_.substr(start, pos_ - start));
    int relation = -1;
    if (catalog_ != nullptr) relation = catalog_->FindByName(name);
    if (relation < 0 && name.size() >= 2 && name[0] == 'R') {
      int index = 0;
      if (ParseInt(std::string_view(name).substr(1), &index)) {
        relation = index;
      }
    }
    if (relation < 0 || relation >= kMaxRelations) {
      return Error("unknown relation: " + name);
    }
    if (seen_.Contains(relation)) {
      return Error("relation appears twice: " + name);
    }
    seen_ = seen_.With(relation);
    return Plan::Leaf(relation);
  }

  Result<Plan> ParseJoin() {
    ++pos_;  // consume '('
    Result<Plan> left = ParseNode();
    if (!left.ok()) return left;
    SkipSpace();
    Result<Plan> right = ParseNode();
    if (!right.ok()) return right;
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != ')') {
      return Error("expected ')'");
    }
    ++pos_;
    Plan join = Plan::Join(std::move(left).value(), std::move(right).value());
    if (pos_ < text_.size() && text_[pos_] == '@') {
      ++pos_;
      const size_t start = pos_;
      while (pos_ < text_.size() && IsIdentifierChar(text_[pos_])) ++pos_;
      const std::string_view name = text_.substr(start, pos_ - start);
      JoinAlgorithm algorithm;
      if (name == "hash") {
        algorithm = JoinAlgorithm::kHash;
      } else if (name == "sort-merge") {
        algorithm = JoinAlgorithm::kSortMerge;
      } else if (name == "nested-loops") {
        algorithm = JoinAlgorithm::kNestedLoops;
      } else if (name == "product") {
        algorithm = JoinAlgorithm::kCartesianProduct;
      } else {
        return Error("unknown algorithm: " + std::string(name));
      }
      join.mutable_root().algorithm = algorithm;
    }
    return join;
  }

  std::string_view text_;
  const Catalog* catalog_;
  size_t pos_ = 0;
  RelSet seen_;
};

}  // namespace

std::string SerializePlan(const Plan& plan, const Catalog* catalog) {
  if (plan.empty()) return "()";
  std::string out;
  SerializeNode(plan.root(), catalog, &out);
  return out;
}

Result<Plan> ParsePlan(std::string_view text, const Catalog* catalog) {
  return Parser(text, catalog).Parse();
}

}  // namespace blitz
