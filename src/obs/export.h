#ifndef BLITZ_OBS_EXPORT_H_
#define BLITZ_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace blitz {

/// Writes `contents` to `path`, overwriting any existing file.
Status WriteTextFile(const std::string& path, std::string_view contents);

/// Writes the recorder's Chrome traceEvents JSON to `path` (open the file
/// in chrome://tracing or https://ui.perfetto.dev).
Status WriteChromeTraceFile(const TraceRecorder& recorder,
                            const std::string& path);

/// Writes the registry's JSON dump to `path`.
Status WriteMetricsJsonFile(const MetricsRegistry& metrics,
                            const std::string& path);

/// If the BLITZ_METRICS_OUT environment variable is set, writes the global
/// metrics registry as JSON to that path (for mechanical capture of bench
/// results, e.g. BENCH_table1.json). Returns true if a file was written;
/// failures are reported on stderr and return false.
bool WriteMetricsJsonIfRequested();

}  // namespace blitz

#endif  // BLITZ_OBS_EXPORT_H_
