#ifndef BLITZ_BENCHLIB_TIMING_H_
#define BLITZ_BENCHLIB_TIMING_H_

#include <chrono>
#include <functional>

namespace blitz {

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// One adaptive timing measurement.
struct TimingResult {
  double seconds_per_run = 0;
  double total_seconds = 0;
  int repetitions = 0;
};

/// Times `fn` adaptively: repeats until at least `min_total_seconds` of wall
/// time and `min_repetitions` runs have accumulated, then reports the mean.
/// This is the paper's protocol ("each timing point t represents an average
/// over k executions ... where k is such that kt >= 30 seconds") with a
/// configurable floor suited to a CI budget.
TimingResult TimeIt(const std::function<void()>& fn, double min_total_seconds,
                    int min_repetitions = 1);

/// Reads the bench time floor from the BLITZ_BENCH_MIN_SECONDS environment
/// variable, defaulting to `fallback`. Lets one `bench/*` binary serve both
/// quick smoke runs and paper-faithful long runs.
double BenchMinSeconds(double fallback);

/// Reads an integer knob from the environment, defaulting to `fallback`.
int BenchEnvInt(const char* name, int fallback);

}  // namespace blitz

#endif  // BLITZ_BENCHLIB_TIMING_H_
