file(REMOVE_RECURSE
  "libblitz_api.a"
)
