#include "core/subset_enum.h"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(DilateContractTest, PaperExamples) {
  // Section 4.2: delta_11001(abc) = ab00c.
  EXPECT_EQ(Dilate(0b11001, 0b101), 0b10001u);
  EXPECT_EQ(Dilate(0b11001, 0b111), 0b11001u);
  EXPECT_EQ(Dilate(0b11001, 0b100), 0b10000u);
  // gamma_11001(abcde) = abe.
  EXPECT_EQ(Contract(0b11001, 0b10001), 0b101u);
  EXPECT_EQ(Contract(0b11001, 0b11001), 0b111u);
}

TEST(DilateContractTest, ContractIsLeftInverseOfDilate) {
  const std::uint64_t s = 0b1011010;
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(Contract(s, Dilate(s, i)), i);
  }
}

TEST(DilateContractTest, Equation5) {
  // delta(gamma(w)) = S & w.
  const std::uint64_t s = 0b110101;
  for (std::uint64_t w = 0; w < 64; ++w) {
    EXPECT_EQ(Dilate(s, Contract(s, w)), s & w);
  }
}

TEST(DilateContractTest, Equation6) {
  // delta(-1) = S, where -1 has all low |S| bits set.
  const std::uint64_t s = 0b10110;
  const int m = 3;
  EXPECT_EQ(Dilate(s, (std::uint64_t{1} << m) - 1), s);
}

TEST(SubsetSuccTest, MatchesDilatedCounting) {
  // succ(delta(i)) == delta(i + 1) for every i.
  const std::uint64_t s = 0b1101001;
  const int m = 4;
  for (std::uint64_t i = 0; i + 1 < (std::uint64_t{1} << m); ++i) {
    EXPECT_EQ(SubsetSucc(s, Dilate(s, i)), Dilate(s, i + 1))
        << "at i=" << i;
  }
}

TEST(SubsetSuccTest, StartsAtLowestBit) {
  const std::uint64_t s = 0b101000;
  EXPECT_EQ(SubsetSucc(s, 0), 0b001000u);  // delta(1) = S & -S
}

TEST(SubsetSuccTest, EndsAtFullSet) {
  const std::uint64_t s = 0b1110;
  std::uint64_t lhs = 0;
  int steps = 0;
  do {
    lhs = SubsetSucc(s, lhs);
    ++steps;
  } while (lhs != s);
  EXPECT_EQ(steps, 7);  // delta(1)..delta(7): 2^3 - 1 values, last is S.
}

TEST(ForEachProperSplitTest, VisitsEverySplitExactlyOnce) {
  const RelSet s = RelSet::FromWord(0b110110);
  std::set<std::uint64_t> seen;
  ForEachProperSplit(s, [&](RelSet lhs, RelSet rhs) {
    EXPECT_FALSE(lhs.empty());
    EXPECT_FALSE(rhs.empty());
    EXPECT_EQ((lhs | rhs), s);
    EXPECT_FALSE(lhs.Intersects(rhs));
    EXPECT_TRUE(seen.insert(lhs.word()).second) << "duplicate split";
  });
  // 2^4 - 2 proper nonempty subsets.
  EXPECT_EQ(seen.size(), 14u);
}

TEST(ForEachProperSubsetTest, CountsMatchForAllSmallSets) {
  for (std::uint64_t word = 1; word < 256; ++word) {
    const RelSet s = RelSet::FromWord(word);
    int count = 0;
    ForEachProperSubset(s, [&](RelSet sub) {
      EXPECT_TRUE(sub.IsProperSubsetOf(s));
      EXPECT_FALSE(sub.empty());
      ++count;
    });
    EXPECT_EQ(count, (1 << s.size()) - 2);
  }
}

TEST(ForEachProperSplitTest, SingletonHasNoSplit) {
  int count = 0;
  ForEachProperSplit(RelSet::Singleton(3), [&](RelSet, RelSet) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(StridedSplitTest, VisitsSameSetForOddStrides) {
  const RelSet s = RelSet::FromWord(0b1011010);
  std::set<std::uint64_t> reference;
  ForEachProperSplit(s, [&](RelSet lhs, RelSet) {
    reference.insert(lhs.word());
  });
  for (const std::uint64_t stride : {1ull, 3ull, 5ull, 7ull, 11ull, 13ull}) {
    std::set<std::uint64_t> seen;
    ForEachProperSplitStrided(s, stride, [&](RelSet lhs, RelSet rhs) {
      EXPECT_EQ((lhs | rhs), s);
      EXPECT_FALSE(lhs.Intersects(rhs));
      EXPECT_TRUE(seen.insert(lhs.word()).second);
    });
    EXPECT_EQ(seen, reference) << "stride " << stride;
  }
}

TEST(StridedSplitTest, StrideThreeVisitsDifferentOrderThanStrideOne) {
  const RelSet s = RelSet::FromWord(0b11110);
  std::vector<std::uint64_t> order1;
  std::vector<std::uint64_t> order3;
  ForEachProperSplitStrided(s, 1, [&](RelSet lhs, RelSet) {
    order1.push_back(lhs.word());
  });
  ForEachProperSplitStrided(s, 3, [&](RelSet lhs, RelSet) {
    order3.push_back(lhs.word());
  });
  EXPECT_EQ(order1.size(), order3.size());
  EXPECT_NE(order1, order3);
}

// The aggregate loop count over all subsets of an n-set is ~3^n (Section
// 3.3): sum over S of (2^|S| - 2) = 3^n - 2*2^n + 1 for subsets |S| >= 2.
TEST(SubsetSuccTest, AggregateLoopCountIsThreeToTheN) {
  const int n = 10;
  std::uint64_t total = 0;
  for (std::uint64_t s = 1; s < (std::uint64_t{1} << n); ++s) {
    if ((s & (s - 1)) == 0) continue;
    std::uint64_t lhs = 0;
    do {
      lhs = SubsetSucc(s, lhs);
      if (lhs != s) ++total;
    } while (lhs != s);
  }
  std::uint64_t expected = 1;  // 3^n
  for (int i = 0; i < n; ++i) expected *= 3;
  expected = expected - 2 * (std::uint64_t{1} << n) + 1;
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace blitz
