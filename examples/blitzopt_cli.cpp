// blitzopt: command-line join-order optimizer over .bjq query files.
//
// Usage:
//   blitzopt <query.bjq> [--execute] [--counts] [--tree] [--explain]
//           [--report] [--deadline-ms=<ms>] [--max-table-mb=<mb>]
//           [--no-degrade] [--exhaustive-limit=<n>] [--threads=<n>]
//           [--simd=<auto|scalar|block|avx2|avx512>]
//           [--estimator=<paper|hist|noest>]
//           [--trace-out=<file>] [--metrics-out=<file>]
//           [--profile=<file>]
//
// Runs the library's front door (OptimizeQuery): exhaustive blitzsplit up
// to --exhaustive-limit relations, the hybrid optimizer beyond, under the
// optional resource budget. When a budget is armed and a tier exhausts it,
// the optimizer degrades exhaustive -> hybrid -> greedy and the output
// names the tier that served the query; --no-degrade surfaces the budget
// error instead.
//
// --estimator selects the cardinality estimator (card/estimator.h); it
// overrides the query file's `estimator` directive. paper is the exact
// Section 5.1 derivation; noest is the Simpli-Squared estimate-free
// signal; hist builds equi-depth histograms over synthetic base tables
// generated from the catalog (exec/datagen.h + exec/stats.h). The printed
// cost is always re-evaluated under the true statistics, so comparing runs
// across estimators measures estimator regret directly.
//
// Exit codes:
//   0  success
//   1  optimizer or execution error
//   2  usage error
//   3  query parse/validation error
//   4  resource budget exhausted (deadline, memory cap, or cancellation)
//
// --trace-out writes a Chrome trace-viewer JSON (open in chrome://tracing
// or https://ui.perfetto.dev) spanning the optimize->plan->execute
// pipeline; --metrics-out writes the metrics registry (counters, gauges,
// latency percentiles) as JSON; --profile writes the performance
// observatory's profile JSON (hardware counters per scope plus the
// per-phase, per-rank DP attribution — see src/obs/profiler/).
//
// The .bjq format (see src/textio/bjq.h):
//   relation <name> <cardinality> [<tuple_bytes>]   (synonym: table)
//   predicate <a> <b> <selectivity>
//   join <a>.<col> = <b>.<col> [<distinct_a> <distinct_b>]
//   costmodel <naive|sm|dnl|min>
//   threshold <initial_plan_cost_threshold>
//   estimator <paper|hist|noest>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/optimize_query.h"
#include "card/histogram.h"
#include "card/no_estimate.h"
#include "common/strings.h"
#include "exec/datagen.h"
#include "exec/executor.h"
#include "exec/stats.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler/profiler.h"
#include "obs/trace.h"
#include "plan/explain.h"
#include "plan/plan.h"
#include "textio/bjq.h"

namespace {

// Exit codes; parse, optimizer, and budget failures are distinguishable so
// scripts can react (e.g. re-queue a budget-exhausted query off-peak).
constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParse = 3;
constexpr int kExitBudget = 4;
constexpr int kExitDeadline = 5;

int Usage() {
  std::fprintf(
      stderr,
      "usage: blitzopt <query.bjq> [--execute] [--counts] [--tree] "
      "[--explain] [--report] [--deadline-ms=<ms>] [--max-table-mb=<mb>] "
      "[--no-degrade] [--exhaustive-limit=<n>] [--threads=<n>] "
      "[--simd=<auto|scalar|block|avx2|avx512>] "
      "[--estimator=<paper|hist|noest>] "
      "[--trace-out=<file>] [--metrics-out=<file>] [--profile=<file>]\n");
  return kExitUsage;
}

int OptimizeExitCode(const blitz::Status& status) {
  switch (status.code()) {
    case blitz::StatusCode::kResourceExhausted:
      // Memory budget: re-queueing unchanged will fail again; re-queue
      // off-peak with a bigger --max-table-mb (or let degradation run).
      return kExitBudget;
    case blitz::StatusCode::kDeadlineExceeded:
    case blitz::StatusCode::kCancelled:
      // Time budget or external cancellation: the same query may well
      // succeed on retry with a fresh deadline.
      return kExitDeadline;
    default:
      return kExitError;
  }
}

/// Installs/uninstalls the global trace recorder, metrics registry, and
/// profiler for the duration of the run and writes the requested files at
/// exit.
class ObsSession {
 public:
  ObsSession(std::string trace_path, std::string metrics_path,
             std::string profile_path)
      : trace_path_(std::move(trace_path)),
        metrics_path_(std::move(metrics_path)),
        profile_path_(std::move(profile_path)) {
    if (!trace_path_.empty()) blitz::SetGlobalTraceRecorder(&recorder_);
    if (!metrics_path_.empty()) blitz::SetGlobalMetrics(&metrics_);
    if (!profile_path_.empty()) blitz::SetGlobalProfiler(&profiler_);
  }

  ~ObsSession() {
    blitz::SetGlobalTraceRecorder(nullptr);
    blitz::SetGlobalMetrics(nullptr);
    blitz::SetGlobalProfiler(nullptr);
    if (!trace_path_.empty()) {
      const blitz::Status status =
          blitz::WriteChromeTraceFile(recorder_, trace_path_);
      if (status.ok()) {
        std::printf("trace written to %s (%zu spans)\n", trace_path_.c_str(),
                    recorder_.num_events());
      } else {
        std::fprintf(stderr, "trace export failed: %s\n",
                     status.ToString().c_str());
      }
    }
    if (!metrics_path_.empty()) {
      const blitz::Status status =
          blitz::WriteMetricsJsonFile(metrics_, metrics_path_);
      if (status.ok()) {
        std::printf("metrics written to %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "metrics export failed: %s\n",
                     status.ToString().c_str());
      }
    }
    if (!profile_path_.empty()) {
      const blitz::Status status =
          blitz::WriteTextFile(profile_path_, profiler_.ToJson() + "\n");
      if (status.ok()) {
        std::printf("profile written to %s (%s backend)\n",
                    profile_path_.c_str(), profiler_.backend());
      } else {
        std::fprintf(stderr, "profile export failed: %s\n",
                     status.ToString().c_str());
      }
    }
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string profile_path_;
  blitz::TraceRecorder recorder_;
  blitz::MetricsRegistry metrics_;
  blitz::Profiler profiler_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace blitz;
  if (argc < 2) return Usage();

  std::string path;
  std::string trace_out;
  std::string metrics_out;
  std::string profile_out;
  bool execute = false;
  bool counts = false;
  bool tree = false;
  bool explain = false;
  bool show_report = false;
  bool degrade = true;
  double deadline_ms = 0;
  double max_table_mb = 0;
  int exhaustive_limit = 16;
  int threads = 1;
  SimdLevel simd = SimdLevel::kAuto;
  std::optional<EstimatorKind> estimator_flag;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of = [&](std::string_view prefix) -> std::string_view {
      return arg.substr(prefix.size());
    };
    if (arg == "--execute") {
      execute = true;
    } else if (arg == "--counts") {
      counts = true;
    } else if (arg == "--tree") {
      tree = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--report") {
      show_report = true;
    } else if (arg == "--no-degrade") {
      degrade = false;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!ParseDouble(value_of("--deadline-ms="), &deadline_ms) ||
          !(deadline_ms > 0)) {
        std::fprintf(stderr, "error: bad --deadline-ms value\n");
        return kExitUsage;
      }
    } else if (arg.rfind("--max-table-mb=", 0) == 0) {
      if (!ParseDouble(value_of("--max-table-mb="), &max_table_mb) ||
          !(max_table_mb > 0)) {
        std::fprintf(stderr, "error: bad --max-table-mb value\n");
        return kExitUsage;
      }
    } else if (arg.rfind("--exhaustive-limit=", 0) == 0) {
      if (!ParseInt(value_of("--exhaustive-limit="), &exhaustive_limit) ||
          exhaustive_limit < 1) {
        std::fprintf(stderr, "error: bad --exhaustive-limit value\n");
        return kExitUsage;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      // 0 = one thread per hardware core (see ParallelOptimizerOptions).
      if (!ParseInt(value_of("--threads="), &threads) || threads < 0) {
        std::fprintf(stderr, "error: bad --threads value\n");
        return kExitUsage;
      }
    } else if (arg.rfind("--simd=", 0) == 0) {
      // auto = cpuid probe + BLITZ_SIMD env override; a forced level is
      // clamped to what this machine supports (see simd/dispatch.h).
      Result<SimdLevel> parsed = ParseSimdLevel(value_of("--simd="));
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     parsed.status().ToString().c_str());
        return kExitUsage;
      }
      simd = *parsed;
    } else if (arg.rfind("--estimator=", 0) == 0) {
      const std::optional<EstimatorKind> kind =
          EstimatorKindFromName(value_of("--estimator="));
      if (!kind.has_value()) {
        std::fprintf(stderr, "error: bad --estimator value (valid: %s)\n",
                     EstimatorKindNames());
        return kExitUsage;
      }
      estimator_flag = kind;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = value_of("--trace-out=");
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = value_of("--metrics-out=");
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile_out = value_of("--profile=");
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();
  if ((!trace_out.empty() && trace_out == metrics_out)) {
    std::fprintf(stderr,
                 "error: --trace-out and --metrics-out must differ\n");
    return kExitUsage;
  }
  ObsSession obs(trace_out, metrics_out, profile_out);

  Result<QuerySpec> spec = LoadBjqFile(path);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    return kExitParse;
  }
  std::printf("%d relations, %d predicates, cost model %s\n",
              spec->catalog.num_relations(), spec->graph.num_predicates(),
              CostModelKindToString(spec->cost_model));

  QueryOptimizerOptions options;
  options.cost_model = spec->cost_model;
  options.exhaustive_limit = exhaustive_limit;
  options.initial_cost_threshold = spec->threshold;
  options.collect_report = true;
  options.count_operations = counts;
  // --profile opts the DP passes into the per-phase attribution pass (the
  // profiled copy also folds into the global Profiler installed above).
  options.collect_profile = !profile_out.empty();
  options.degrade_on_budget = degrade;
  options.parallel.num_threads = threads;
  options.simd = simd;
  if (deadline_ms > 0) options.budget.deadline_seconds = deadline_ms * 1e-3;
  if (max_table_mb > 0) {
    // A positive flag always arms the cap: tiny values must not truncate to
    // 0 bytes, which ResourceBudget treats as "no cap".
    options.budget.max_dp_table_bytes = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(max_table_mb * 1024.0 * 1024.0));
  }

  // The CLI flag overrides the file's `estimator` directive; default paper.
  // Non-paper estimators are owned here and must outlive OptimizeQuery.
  const EstimatorKind estimator_kind = estimator_flag.has_value()
                                           ? *estimator_flag
                                           : spec->estimator.value_or(
                                                 EstimatorKind::kPaperFanout);
  std::optional<NoEstimateEstimator> no_estimate;
  std::unique_ptr<SampleHistogramEstimator> histogram;
  if (estimator_kind == EstimatorKind::kNoEstimate) {
    no_estimate.emplace(spec->graph);
    options.estimator = &*no_estimate;
  } else if (estimator_kind == EstimatorKind::kSampleHistogram) {
    // Histograms are sampled from synthetic base tables realizing the
    // catalog's statistics — the closest a statistics-only front end can
    // get to "scan the data".
    Result<std::vector<ExecTable>> tables =
        GenerateTables(spec->catalog, spec->graph, DataGenOptions{});
    if (!tables.ok()) {
      std::fprintf(stderr, "error: %s\n", tables.status().ToString().c_str());
      return kExitError;
    }
    Result<std::unique_ptr<SampleHistogramEstimator>> built =
        BuildHistogramEstimator(spec->graph, *tables);
    if (!built.ok()) {
      std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
      return kExitError;
    }
    histogram = std::move(*built);
    options.estimator = histogram.get();
  }

  Result<OptimizedQuery> optimized =
      OptimizeQuery(spec->catalog, spec->graph, options);
  if (!optimized.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 optimized.status().ToString().c_str());
    return OptimizeExitCode(optimized.status());
  }

  std::printf("plan: %s\n", optimized->plan.ToString(&spec->catalog).c_str());
  if (tree) {
    std::printf("%s", optimized->plan.ToTreeString(&spec->catalog).c_str());
  }
  if (explain) {
    std::printf("%s", ExplainPlan(optimized->plan, spec->catalog,
                                  spec->graph, spec->cost_model)
                          .c_str());
  }
  std::printf("cost: %g (%d optimizer pass%s, tier %s%s, simd %s, "
              "estimator %s)\n",
              optimized->cost, optimized->passes,
              optimized->passes == 1 ? "" : "es",
              OptimizerTierName(optimized->tier),
              optimized->exact() ? ", exact" : "",
              optimized->report.has_value()
                  ? SimdLevelName(optimized->report->simd_level)
                  : SimdLevelName(EffectivePassSimdLevel(
                        options.Normalized().exhaustive,
                        spec->catalog.num_relations())),
              EstimatorKindName(estimator_kind));
  if (optimized->report.has_value() &&
      !optimized->report->degradations.empty()) {
    for (const std::string& step : optimized->report->degradations) {
      std::printf("degraded: %s\n", step.c_str());
    }
  }
  std::vector<double> base_cards(spec->catalog.num_relations());
  for (int i = 0; i < spec->catalog.num_relations(); ++i) {
    base_cards[i] = spec->catalog.cardinality(i);
  }
  std::printf("estimated result cardinality: %g\n",
              spec->graph.JoinCardinality(spec->catalog.AllRelations(),
                                          base_cards));
  if (counts && optimized->report.has_value()) {
    std::printf("operation counts: %s\n",
                optimized->report->counters.ToString().c_str());
  }
  if (show_report && optimized->report.has_value()) {
    std::printf("report: %s\n", optimized->ReportToString().c_str());
  }

  if (execute) {
    // Refuse to materialize unreasonably large intermediates: the bundled
    // engine is a validator, not a warehouse.
    constexpr double kMaxRows = 5e6;
    double biggest = 0;
    std::function<void(const PlanNode&)> scan = [&](const PlanNode& node) {
      biggest = std::max(biggest,
                         spec->graph.JoinCardinality(node.set, base_cards));
      if (!node.is_leaf()) {
        scan(*node.left);
        scan(*node.right);
      }
    };
    scan(optimized->plan.root());
    if (biggest > kMaxRows) {
      std::printf(
          "skipping --execute: an intermediate result is estimated at %g "
          "rows (limit %g)\n",
          biggest, kMaxRows);
      return kExitOk;
    }
    Result<std::vector<ExecTable>> tables =
        GenerateTables(spec->catalog, spec->graph, DataGenOptions{});
    if (!tables.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   tables.status().ToString().c_str());
      return kExitError;
    }
    Result<ExecutionResult> result =
        ExecutePlan(optimized->plan, *tables, spec->graph);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return kExitError;
    }
    std::printf("executed on synthetic data: %llu result rows\n",
                static_cast<unsigned long long>(result->result.num_rows()));
  }
  return kExitOk;
}
