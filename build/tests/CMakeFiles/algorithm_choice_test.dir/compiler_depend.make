# Empty compiler generated dependencies file for algorithm_choice_test.
# This may be replaced when dependencies are built.
