// Tests for per-tenant admission control (serve/admission.h).

#include "serve/admission.h"

#include <gtest/gtest.h>

#include <string>

namespace blitz {
namespace {

TEST(TenantQuotaTest, Validation) {
  TenantQuota quota;
  EXPECT_TRUE(quota.Validate().ok());
  quota.max_in_flight = 0;
  EXPECT_FALSE(quota.Validate().ok());

  AdmissionOptions options;
  options.tenants["broken"].max_in_flight = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(AdmissionTest, AdmitsUpToCapThenSheds) {
  AdmissionOptions options;
  options.default_quota.max_in_flight = 2;
  AdmissionController controller(options);

  EXPECT_TRUE(controller.Admit("t", 10).status.ok());
  EXPECT_TRUE(controller.Admit("t", 10).status.ok());
  AdmissionController::Decision shed = controller.Admit("t", 10);
  ASSERT_FALSE(shed.status.ok());
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(shed.retry_after_ms, 0);

  controller.Release("t");
  EXPECT_TRUE(controller.Admit("t", 10).status.ok());
}

TEST(AdmissionTest, TenantsAreIsolated) {
  AdmissionOptions options;
  options.default_quota.max_in_flight = 1;
  AdmissionController controller(options);

  EXPECT_TRUE(controller.Admit("noisy", 10).status.ok());
  EXPECT_FALSE(controller.Admit("noisy", 10).status.ok());
  // The noisy tenant at its cap does not consume the quiet tenant's slots.
  EXPECT_TRUE(controller.Admit("quiet", 10).status.ok());
  EXPECT_EQ(controller.in_flight("noisy"), 1);
  EXPECT_EQ(controller.in_flight("quiet"), 1);
}

TEST(AdmissionTest, PerTenantOverridesApply) {
  AdmissionOptions options;
  options.default_quota.max_in_flight = 1;
  options.tenants["vip"].max_in_flight = 3;
  AdmissionController controller(options);

  EXPECT_TRUE(controller.Admit("vip", 10).status.ok());
  EXPECT_TRUE(controller.Admit("vip", 10).status.ok());
  EXPECT_TRUE(controller.Admit("vip", 10).status.ok());
  EXPECT_FALSE(controller.Admit("vip", 10).status.ok());
  EXPECT_TRUE(controller.Admit("anyone-else", 10).status.ok());
  EXPECT_FALSE(controller.Admit("anyone-else", 10).status.ok());
}

TEST(AdmissionTest, OversizedBodyIsAHardRejectWithoutRetryHint) {
  AdmissionOptions options;
  options.default_quota.max_body_bytes = 100;
  AdmissionController controller(options);

  AdmissionController::Decision rejected = controller.Admit("t", 101);
  ASSERT_FALSE(rejected.status.ok());
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected.retry_after_ms, 0);
  // The reject did not consume a slot.
  EXPECT_EQ(controller.in_flight("t"), 0);
  EXPECT_TRUE(controller.Admit("t", 100).status.ok());
}

TEST(AdmissionTest, ReleaseNeverUnderflows) {
  AdmissionController controller(AdmissionOptions{});
  controller.Release("never-admitted");
  EXPECT_EQ(controller.in_flight("never-admitted"), 0);
  EXPECT_EQ(controller.tracked_tenants(), 0u);
}

TEST(AdmissionTest, ReleaseDropsIdleTenantEntries) {
  AdmissionController controller(AdmissionOptions{});
  // Tenant names are unauthenticated client input: a client cycling fresh
  // names must leave no residue behind, or the map grows without bound.
  for (int i = 0; i < 100; ++i) {
    const std::string tenant = "ephemeral-" + std::to_string(i);
    ASSERT_TRUE(controller.Admit(tenant, 1).status.ok());
    EXPECT_EQ(controller.tracked_tenants(), 1u);
    controller.Release(tenant);
    EXPECT_EQ(controller.tracked_tenants(), 0u);
  }
  // A tenant with slots still held stays tracked until its last Release.
  ASSERT_TRUE(controller.Admit("busy", 1).status.ok());
  ASSERT_TRUE(controller.Admit("busy", 1).status.ok());
  controller.Release("busy");
  EXPECT_EQ(controller.tracked_tenants(), 1u);
  EXPECT_EQ(controller.in_flight("busy"), 1);
  controller.Release("busy");
  EXPECT_EQ(controller.tracked_tenants(), 0u);
}

TEST(AdmissionTest, RetryHintGrowsWithPressureButIsBounded) {
  AdmissionOptions options;
  options.default_quota.max_in_flight = 1;
  AdmissionController controller(options);
  ASSERT_TRUE(controller.Admit("t", 1).status.ok());
  const double first_hint = controller.Admit("t", 1).retry_after_ms;
  EXPECT_GT(first_hint, 0);
  EXPECT_LE(first_hint, 1000.0);
}

}  // namespace
}  // namespace blitz
