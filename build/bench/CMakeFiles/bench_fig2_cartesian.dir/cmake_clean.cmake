file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cartesian.dir/bench_fig2_cartesian.cc.o"
  "CMakeFiles/bench_fig2_cartesian.dir/bench_fig2_cartesian.cc.o.d"
  "bench_fig2_cartesian"
  "bench_fig2_cartesian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cartesian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
