#include "obs/export.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace blitz {

Status WriteTextFile(const std::string& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument(
        StrFormat("cannot open %s for writing", path.c_str()));
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != contents.size() || !closed) {
    return Status::Internal(StrFormat("short write to %s", path.c_str()));
  }
  return Status::OK();
}

Status WriteChromeTraceFile(const TraceRecorder& recorder,
                            const std::string& path) {
  return WriteTextFile(path, recorder.ToChromeTraceJson());
}

Status WriteMetricsJsonFile(const MetricsRegistry& metrics,
                            const std::string& path) {
  return WriteTextFile(path, metrics.ToJson());
}

bool WriteMetricsJsonIfRequested() {
  const char* path = std::getenv("BLITZ_METRICS_OUT");
  if (path == nullptr || path[0] == '\0') return false;
  const Status status = WriteTextFile(path, DumpMetricsJson());
  if (!status.ok()) {
    std::fprintf(stderr, "metrics export failed: %s\n",
                 status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace blitz
