// Regenerates Figure 2 of the paper: Cartesian-product optimization time as
// a function of the number of relations n, together with a least-squares fit
// of formula (3),
//     3^n T_loop + (ln2/2) n 2^n T_cond + 2^n T_subset,
// reporting the fitted machine constants (the paper inferred T_loop of about
// 180 ns on a SPARCstation 2 and 50 ns on an HP 9000/755).
//
// Environment knobs: BLITZ_BENCH_MIN_SECONDS (timing floor per point,
// default 0.05), BLITZ_FIG2_MAX_N (default 17).

#include <cstdio>
#include <vector>

#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "catalog/catalog.h"
#include "common/check.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "core/optimizer.h"

namespace blitz {
namespace {

int Run() {
  const double min_seconds = BenchMinSeconds(0.05);
  const int min_n = 5;
  const int max_n = BenchEnvInt("BLITZ_FIG2_MAX_N", 17);

  std::printf(
      "Figure 2: Cartesian product optimization times (naive cost model,\n"
      "equal base cardinalities of 100)\n\n");

  std::vector<int> ns;
  std::vector<double> times;
  std::vector<int> reps;
  TextTable out;
  out.SetHeader({"n", "time/opt (ms)", "reps", "formula(3) fit (ms)"});

  for (int n = min_n; n <= max_n; ++n) {
    Result<Catalog> catalog =
        Catalog::FromCardinalities(std::vector<double>(n, 100.0));
    BLITZ_CHECK(catalog.ok());
    const TimingResult timing = TimeIt(
        [&] {
          Result<OptimizeOutcome> outcome =
              OptimizeCartesian(*catalog, OptimizerOptions{});
          BLITZ_CHECK(outcome.ok());
        },
        min_seconds);
    ns.push_back(n);
    times.push_back(timing.seconds_per_run);
    reps.push_back(timing.repetitions);
  }

  // Fit over n <= 15 only: "Formula (3) ... tracks them closely until
  // n ~ 15 (at which point cache effectiveness declines)".
  int fit_count = 0;
  while (fit_count < static_cast<int>(ns.size()) && ns[fit_count] <= 15) {
    ++fit_count;
  }
  double t_loop = 0;
  double t_cond = 0;
  double t_subset = 0;
  const bool fitted = FitFormula3(ns.data(), times.data(), fit_count,
                                  &t_loop, &t_cond, &t_subset);

  for (size_t i = 0; i < ns.size(); ++i) {
    const double fit =
        fitted ? Formula3(ns[i], t_loop, t_cond, t_subset) : 0.0;
    out.AddRow({StrFormat("%d", ns[i]), StrFormat("%.3f", times[i] * 1e3),
                StrFormat("%d", reps[i]), StrFormat("%.3f", fit * 1e3)});
  }
  std::printf("%s\n", out.ToString().c_str());

  if (fitted) {
    std::printf("Fitted constants of formula (3):\n");
    std::printf("  T_loop   = %8.2f ns  (paper: ~180 ns Sun, ~50 ns HP)\n",
                t_loop * 1e9);
    std::printf("  T_cond   = %8.2f ns\n", t_cond * 1e9);
    std::printf("  T_subset = %8.2f ns\n", t_subset * 1e9);
  } else {
    std::printf("Not enough points to fit formula (3).\n");
  }
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
