#include "query/join_graph.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::Figure3Graph;

TEST(JoinGraphTest, EmptyGraphHasUnitSelectivities) {
  JoinGraph graph(4);
  EXPECT_EQ(graph.num_predicates(), 0);
  EXPECT_DOUBLE_EQ(graph.Selectivity(0, 3), 1.0);
  EXPECT_FALSE(graph.HasEdge(0, 3));
}

TEST(JoinGraphTest, AddPredicateSymmetric) {
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(2, 0, 0.25).ok());
  EXPECT_TRUE(graph.HasEdge(0, 2));
  EXPECT_TRUE(graph.HasEdge(2, 0));
  EXPECT_DOUBLE_EQ(graph.Selectivity(0, 2), 0.25);
  EXPECT_DOUBLE_EQ(graph.Selectivity(2, 0), 0.25);
  // Stored normalized with lhs < rhs.
  EXPECT_EQ(graph.predicates()[0].lhs, 0);
  EXPECT_EQ(graph.predicates()[0].rhs, 2);
}

TEST(JoinGraphTest, RejectsInvalidPredicates) {
  JoinGraph graph(3);
  EXPECT_FALSE(graph.AddPredicate(0, 0, 0.5).ok());   // self edge
  EXPECT_FALSE(graph.AddPredicate(0, 3, 0.5).ok());   // out of range
  EXPECT_FALSE(graph.AddPredicate(-1, 1, 0.5).ok());  // out of range
  EXPECT_FALSE(graph.AddPredicate(0, 1, 0.0).ok());   // zero selectivity
  EXPECT_FALSE(graph.AddPredicate(0, 1, 1.5).ok());   // > 1
  EXPECT_FALSE(graph.AddPredicate(0, 1, -0.1).ok());  // negative
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.5).ok());
  EXPECT_FALSE(graph.AddPredicate(1, 0, 0.5).ok());   // duplicate
}

TEST(JoinGraphTest, DegreesAndNeighbors) {
  const JoinGraph graph = Figure3Graph();
  // Edges: AB, AC, BC, AD (A=0, B=1, C=2, D=3).
  EXPECT_EQ(graph.Degree(0), 3);
  EXPECT_EQ(graph.Degree(1), 2);
  EXPECT_EQ(graph.Degree(2), 2);
  EXPECT_EQ(graph.Degree(3), 1);
  EXPECT_EQ(graph.Neighbors(0), (RelSet::Singleton(1) | RelSet::Singleton(2) |
                                 RelSet::Singleton(3)));
  EXPECT_EQ(graph.Neighbors(3), RelSet::Singleton(0));
}

TEST(JoinGraphTest, PiSpanMultipliesSpanningPredicatesOnly) {
  const JoinGraph graph = Figure3Graph(0.1, 0.05, 0.02, 0.01);
  // Spanning {A} vs {B,C}: predicates AB and AC.
  EXPECT_NEAR(graph.PiSpan(RelSet::Singleton(0),
                           RelSet::Singleton(1) | RelSet::Singleton(2)),
              0.1 * 0.05, 1e-15);
  // Spanning {A,B} vs {C,D}: AC and BC... BC spans? B in lhs, C in rhs: yes.
  EXPECT_NEAR(graph.PiSpan(RelSet::FirstN(2),
                           RelSet::Singleton(2) | RelSet::Singleton(3)),
              0.05 * 0.02 * 0.01, 1e-15);
  // Disjoint halves with no predicates between them.
  EXPECT_DOUBLE_EQ(graph.PiSpan(RelSet::Singleton(1), RelSet::Singleton(3)),
                   1.0);
}

TEST(JoinGraphTest, PiInducedUsesWhollyContainedPredicates) {
  const JoinGraph graph = Figure3Graph(0.1, 0.05, 0.02, 0.01);
  EXPECT_NEAR(graph.PiInduced(RelSet::FirstN(3)), 0.1 * 0.05 * 0.02, 1e-15);
  EXPECT_NEAR(graph.PiInduced(RelSet::FirstN(4)),
              0.1 * 0.05 * 0.02 * 0.01, 1e-18);
  EXPECT_DOUBLE_EQ(graph.PiInduced(RelSet::Singleton(2)), 1.0);
}

TEST(JoinGraphTest, PiSpanTimesInducedHalvesEqualsInducedWhole) {
  // For any split S = U + V: Pi_induced(S) =
  // Pi_induced(U) * Pi_induced(V) * Pi_span(U, V).
  const JoinGraph graph = Figure3Graph(0.3, 0.5, 0.7, 0.9);
  const RelSet s = RelSet::FirstN(4);
  for (std::uint64_t u = 1; u < 15; ++u) {
    const RelSet lhs = RelSet::FromWord(u);
    const RelSet rhs = s - lhs;
    if (rhs.empty()) continue;
    EXPECT_NEAR(graph.PiInduced(s),
                graph.PiInduced(lhs) * graph.PiInduced(rhs) *
                    graph.PiSpan(lhs, rhs),
                1e-15);
  }
}

TEST(JoinGraphTest, JoinCardinality) {
  const JoinGraph graph = Figure3Graph(0.1, 0.05, 0.02, 0.01);
  const std::vector<double> cards = {10, 20, 30, 40};
  EXPECT_NEAR(graph.JoinCardinality(RelSet::FirstN(2), cards),
              10 * 20 * 0.1, 1e-12);
  EXPECT_NEAR(graph.JoinCardinality(RelSet::FirstN(4), cards),
              10 * 20 * 30 * 40 * 0.1 * 0.05 * 0.02 * 0.01, 1e-9);
  EXPECT_NEAR(graph.JoinCardinality(RelSet::Singleton(3), cards), 40, 1e-12);
}

TEST(JoinGraphTest, Connectivity) {
  JoinGraph graph(5);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.5).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 0.5).ok());
  ASSERT_TRUE(graph.AddPredicate(3, 4, 0.5).ok());
  EXPECT_TRUE(graph.IsConnected(RelSet::FirstN(3)));
  EXPECT_TRUE(graph.IsConnected(RelSet::Singleton(0)));
  EXPECT_TRUE(
      graph.IsConnected(RelSet::Singleton(3) | RelSet::Singleton(4)));
  EXPECT_FALSE(graph.IsConnected(RelSet::FirstN(5)));
  EXPECT_FALSE(
      graph.IsConnected(RelSet::Singleton(0) | RelSet::Singleton(2)));
  EXPECT_FALSE(graph.IsConnected(RelSet()));
}

TEST(JoinGraphTest, AnyEdgeSpans) {
  const JoinGraph graph = Figure3Graph();
  EXPECT_TRUE(graph.AnyEdgeSpans(RelSet::Singleton(0), RelSet::Singleton(3)));
  EXPECT_FALSE(graph.AnyEdgeSpans(RelSet::Singleton(1), RelSet::Singleton(3)));
  EXPECT_TRUE(graph.AnyEdgeSpans(RelSet::FirstN(2),
                                 RelSet::Singleton(2) | RelSet::Singleton(3)));
}

TEST(JoinGraphTest, ComputeAllCardinalitiesMatchesDirect) {
  const JoinGraph graph = Figure3Graph(0.2, 0.4, 0.6, 0.8);
  const std::vector<double> base_cards = {3, 5, 7, 11};
  std::vector<double> cards;
  ComputeAllCardinalities(graph, base_cards, &cards);
  ASSERT_EQ(cards.size(), 16u);
  for (std::uint64_t s = 1; s < 16; ++s) {
    const double expected =
        graph.JoinCardinality(RelSet::FromWord(s), base_cards);
    EXPECT_NEAR(cards[s], expected, 1e-12 * expected) << s;
  }
}

TEST(JoinGraphTest, ToStringListsEdges) {
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.5).ok());
  EXPECT_EQ(graph.ToString(), "R0-R1(0.5)");
  EXPECT_EQ(JoinGraph(2).ToString(), "(no predicates)");
}

}  // namespace
}  // namespace blitz
