#ifndef BLITZ_BENCHLIB_SWEEP_H_
#define BLITZ_BENCHLIB_SWEEP_H_

#include <optional>
#include <vector>

#include "benchlib/timing.h"
#include "common/status.h"
#include "core/optimizer.h"
#include "cost/cost_model.h"
#include "query/topology.h"
#include "query/workload.h"

namespace blitz {

/// One measured point of the Section 6 four-dimensional grid.
struct SweepPoint {
  CostModelKind model;
  Topology topology;
  double mean_cardinality;
  double variability;

  double seconds = 0;     ///< Mean optimization time.
  int repetitions = 0;    ///< Timing repetitions behind the mean.
  float plan_cost = 0;    ///< Cost of the chosen plan.
  int passes = 1;         ///< Optimizer passes (> 1 only with thresholds).
};

/// Configuration of a 4-D sweep (Figures 4-6). The grid is the cross
/// product of the four axes; every point is generated deterministically via
/// MakeWorkload.
struct SweepConfig {
  int num_relations = 15;
  std::vector<CostModelKind> models;
  std::vector<Topology> topologies;
  std::vector<double> mean_cardinalities;
  std::vector<double> variabilities;

  /// Adaptive-timing floor per point.
  double min_seconds_per_point = 0.05;

  /// If set, optimize under the Section 6.4 threshold ladder with this
  /// initial threshold.
  std::optional<float> threshold;
  float threshold_growth = 1e4f;
};

/// Runs the sweep, timing one optimization per grid point. Points are
/// ordered with the model axis outermost, then topology, then variability,
/// then mean cardinality (matching the Figure 4 reading order).
Result<std::vector<SweepPoint>> RunSweep(const SweepConfig& config);

}  // namespace blitz

#endif  // BLITZ_BENCHLIB_SWEEP_H_
