#ifndef BLITZ_PLAN_EVALUATE_H_
#define BLITZ_PLAN_EVALUATE_H_

#include "card/estimator.h"
#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Direct (non-DP) plan analysis. These functions recompute cardinalities
/// from the induced-subgraph definition of Section 5.1 and costs from the
/// recursive definition of Equations (1)-(2), entirely independently of the
/// recurrences used inside the optimizer — which makes them the reference
/// implementation the DP is cross-checked against in tests.

/// Estimated output cardinality of the subtree: product of base cardinalities
/// and of the selectivities of all predicates wholly contained in its set.
double EvaluateCardinality(const PlanNode& node, const Catalog& catalog,
                           const JoinGraph& graph);

/// Total plan cost in double precision: cost(R) = 0 for leaves;
/// cost(E x E') = cost(E) + cost(E') + kappa([[E x E']], [[E]], [[E']]).
double EvaluateCost(const PlanNode& node, const Catalog& catalog,
                    const JoinGraph& graph, CostModelKind kind);

/// Plan cost with the exact floating-point behavior of the blitzsplit inner
/// loop (single-precision accumulation, kappa'' and kappa' rounded to float
/// and added in the same order), so extracted plans can be compared for
/// bit-exact equality against the DP table's cost column.
float EvaluateCostFloat(const PlanNode& node, const Catalog& catalog,
                        const JoinGraph& graph, CostModelKind kind);

/// Convenience overloads on Plan.
double EvaluateCost(const Plan& plan, const Catalog& catalog,
                    const JoinGraph& graph, CostModelKind kind);
float EvaluateCostFloat(const Plan& plan, const Catalog& catalog,
                        const JoinGraph& graph, CostModelKind kind);

/// Estimator-resolved variants: every per-subtree cardinality comes from
/// the estimator instead of the Section 5.1 derivation. This is how
/// candidate plans are ranked when optimizing under a non-exact estimator —
/// the optimizer must never peek at true cardinalities it does not have.
/// The standing regret report (bench_estimators) then re-costs the chosen
/// plan with the exact overloads above.
double EvaluateCardinality(const PlanNode& node,
                           const CardinalityEstimator& estimator);
double EvaluateCost(const PlanNode& node,
                    const CardinalityEstimator& estimator, CostModelKind kind);
double EvaluateCost(const Plan& plan, const CardinalityEstimator& estimator,
                    CostModelKind kind);
float EvaluateCostFloat(const PlanNode& node,
                        const CardinalityEstimator& estimator,
                        CostModelKind kind);
float EvaluateCostFloat(const Plan& plan,
                        const CardinalityEstimator& estimator,
                        CostModelKind kind);

}  // namespace blitz

#endif  // BLITZ_PLAN_EVALUATE_H_
