#include "parallel/thread_pool.h"

#include "common/check.h"

namespace blitz {

ThreadPool::ThreadPool(int num_workers) {
  BLITZ_CHECK(num_workers >= 0);
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    // The calling thread is participant 0; workers take 1..num_workers.
    workers_.emplace_back([this, w] { WorkerLoop(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::RunShare(int participant, const std::function<void(int)>* fn,
                         int num_tasks) {
  const int stride = num_participants();
  int done = 0;
  for (int t = participant; t < num_tasks; t += stride) {
    (*fn)(t);
    ++done;
  }
  return done;
}

void ThreadPool::Run(int num_tasks, const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  if (workers_.empty()) {
    for (int t = 0; t < num_tasks; ++t) fn(t);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    completed_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  const int done = RunShare(0, &fn, num_tasks);
  {
    std::unique_lock<std::mutex> lock(mu_);
    completed_ += done;
    done_cv_.wait(lock, [&] { return completed_ == num_tasks_; });
    // Close the generation so a worker that wakes late sees no work.
    fn_ = nullptr;
    num_tasks_ = 0;
  }
}

void ThreadPool::WorkerLoop(int participant) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn;
    int num_tasks;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      fn = fn_;
      num_tasks = num_tasks_;
    }
    // A late wake after the generation already completed (fn_ reset by
    // Run) simply records the generation as seen and sleeps again.
    if (fn == nullptr) continue;
    const int done = RunShare(participant, fn, num_tasks);
    if (done > 0) {
      bool all_done;
      {
        std::lock_guard<std::mutex> lock(mu_);
        completed_ += done;
        all_done = completed_ == num_tasks_;
      }
      if (all_done) done_cv_.notify_one();
    }
  }
}

}  // namespace blitz
