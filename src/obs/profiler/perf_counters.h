#ifndef BLITZ_OBS_PROFILER_PERF_COUNTERS_H_
#define BLITZ_OBS_PROFILER_PERF_COUNTERS_H_

#include <cstdint>

namespace blitz {

/// The hardware-counter set the profiler samples. Order is the wire order
/// of every HwSample and every exported JSON.
enum class HwCounter : int {
  kCycles = 0,
  kInstructions,
  kBranchMisses,
  kL1dMisses,   ///< L1 data-cache read misses.
  kLlcMisses,   ///< Last-level-cache read misses.
};
inline constexpr int kNumHwCounters = 5;

/// Short stable name ("cycles", "instructions", "branch_misses",
/// "l1d_misses", "llc_misses").
const char* HwCounterName(HwCounter counter);

/// One point-in-time reading (or accumulated delta) of the counter set.
/// Counters absent from the open group (see HwCounterGroup::valid_mask)
/// read as 0. Multiplexed counters are scaled by time_enabled/time_running
/// at read time, the standard perf estimate.
struct HwSample {
  std::uint64_t values[kNumHwCounters] = {};

  std::uint64_t operator[](HwCounter c) const {
    return values[static_cast<int>(c)];
  }

  HwSample& operator+=(const HwSample& other) {
    for (int i = 0; i < kNumHwCounters; ++i) values[i] += other.values[i];
    return *this;
  }

  /// Component-wise saturating difference (end - begin of a scope).
  static HwSample Delta(const HwSample& begin, const HwSample& end) {
    HwSample d;
    for (int i = 0; i < kNumHwCounters; ++i) {
      d.values[i] = end.values[i] >= begin.values[i]
                        ? end.values[i] - begin.values[i]
                        : 0;
    }
    return d;
  }

  bool any() const {
    for (const std::uint64_t v : values) {
      if (v != 0) return true;
    }
    return false;
  }
};

/// A per-thread perf_event counter group over perf_event_open(2): cycles,
/// instructions, branch misses, L1d read misses, LLC read misses, opened
/// as one group (leader = cycles) so the members are scheduled — and
/// multiplex-scaled — together.
///
/// Graceful fallback is the contract, not an error path: on non-Linux
/// builds, in containers that mask the syscall (EPERM/ENOSYS), under
/// perf_event_paranoid settings that forbid it, or on VMs whose PMU
/// virtualization rejects individual events, Open() keeps whatever subset
/// of counters the kernel granted (possibly none) and reports it via
/// valid_mask(); Read() returns zeros for the rest. Callers always get the
/// portable wall-clock timings — hardware counters are strictly additive
/// signal.
///
/// Counting scope is the calling thread (pid=0, any CPU, no inherit —
/// inheritance is incompatible with grouped reads), so open and read the
/// group from the thread being measured. Not thread-safe; one group per
/// thread.
class HwCounterGroup {
 public:
  HwCounterGroup() = default;
  ~HwCounterGroup() { Close(); }

  HwCounterGroup(const HwCounterGroup&) = delete;
  HwCounterGroup& operator=(const HwCounterGroup&) = delete;

  /// Opens the group and starts counting. Returns true if at least one
  /// counter opened. Safe to call on an open group (no-op, same result).
  bool Open();

  void Close();

  /// True if at least one counter is open and counting.
  bool available() const { return valid_mask_ != 0; }

  /// Bit i set iff counter i (HwCounter order) is open.
  unsigned valid_mask() const { return valid_mask_; }

  /// Current totals since Open(), multiplex-scaled. All-zero when no
  /// counter is open.
  HwSample Read() const;

  /// "perf_event" when available(), else "timer" — the profiler backend
  /// string surfaced in every profile JSON.
  const char* backend() const { return available() ? "perf_event" : "timer"; }

 private:
  int fds_[kNumHwCounters] = {-1, -1, -1, -1, -1};
  unsigned valid_mask_ = 0;
};

}  // namespace blitz

#endif  // BLITZ_OBS_PROFILER_PERF_COUNTERS_H_
