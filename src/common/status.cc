#include "common/status.h"

namespace blitz {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
        StatusCode::kUnavailable}) {
    if (name == StatusCodeToString(code)) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace blitz
