#ifndef BLITZ_CARD_PAPER_FANOUT_H_
#define BLITZ_CARD_PAPER_FANOUT_H_

#include <vector>

#include "card/estimator.h"
#include "catalog/catalog.h"
#include "query/join_graph.h"

namespace blitz {

/// The paper's own derivation behind the estimator seam: base cardinalities
/// from the catalog, selectivities from the join graph, combined with the
/// Section 5.1 Pi_fan recurrence. exact() is true — EstimateAll reproduces
/// the fused in-DP computation bit-for-bit, so an optimizer handed this
/// estimator (or none at all, the default) produces unchanged DP tables,
/// tie-breaks, and operation counts.
class PaperFanoutEstimator final : public CardinalityEstimator {
 public:
  /// `graph` is borrowed and must outlive the estimator; base cardinalities
  /// are copied out of `catalog`.
  PaperFanoutEstimator(const Catalog& catalog, const JoinGraph& graph);

  /// For call sites that already hold a bare cardinality vector (the thin
  /// JoinGraph wrappers). `graph` is borrowed.
  PaperFanoutEstimator(std::vector<double> base_cards, const JoinGraph& graph);

  EstimatorKind kind() const override { return EstimatorKind::kPaperFanout; }
  int num_relations() const override { return graph_->num_relations(); }
  double BaseCardinality(int i) const override { return base_cards_[i]; }
  double EstimateCardinality(RelSet s) const override;
  void EstimateAll(std::vector<double>* cards) const override;
  bool exact() const override { return true; }

  const JoinGraph& graph() const { return *graph_; }
  const std::vector<double>& base_cards() const { return base_cards_; }

 private:
  const JoinGraph* graph_;
  std::vector<double> base_cards_;
};

}  // namespace blitz

#endif  // BLITZ_CARD_PAPER_FANOUT_H_
