file(REMOVE_RECURSE
  "CMakeFiles/bench_enumerators.dir/bench_enumerators.cc.o"
  "CMakeFiles/bench_enumerators.dir/bench_enumerators.cc.o.d"
  "bench_enumerators"
  "bench_enumerators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enumerators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
