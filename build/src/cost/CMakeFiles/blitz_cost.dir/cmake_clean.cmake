file(REMOVE_RECURSE
  "CMakeFiles/blitz_cost.dir/cost_model.cc.o"
  "CMakeFiles/blitz_cost.dir/cost_model.cc.o.d"
  "libblitz_cost.a"
  "libblitz_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitz_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
