# Empty dependencies file for interesting_orders_test.
# This may be replaced when dependencies are built.
