file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_counts.dir/bench_ablation_counts.cc.o"
  "CMakeFiles/bench_ablation_counts.dir/bench_ablation_counts.cc.o.d"
  "bench_ablation_counts"
  "bench_ablation_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
