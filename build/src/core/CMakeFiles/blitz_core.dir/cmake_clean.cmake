file(REMOVE_RECURSE
  "CMakeFiles/blitz_core.dir/dp_table.cc.o"
  "CMakeFiles/blitz_core.dir/dp_table.cc.o.d"
  "CMakeFiles/blitz_core.dir/instrumentation.cc.o"
  "CMakeFiles/blitz_core.dir/instrumentation.cc.o.d"
  "CMakeFiles/blitz_core.dir/optimizer.cc.o"
  "CMakeFiles/blitz_core.dir/optimizer.cc.o.d"
  "libblitz_core.a"
  "libblitz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
