// Regenerates Table 1 of the paper: the dynamic programming table built by
// Algorithm blitzsplit for the Cartesian product A x B x C x D with
// cardinalities 10, 20, 30, 40 under the naive cost model
// kappa_0(R_out, ...) = |R_out|.

#include <algorithm>
#include <bit>
#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/table_out.h"
#include "catalog/catalog.h"
#include "common/check.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "plan/plan.h"

namespace blitz {
namespace {

std::string SetName(RelSet s, const Catalog& catalog) {
  std::string out = "{";
  bool first = true;
  s.ForEach([&](int i) {
    if (!first) out += ",";
    first = false;
    out += catalog.relation(i).name;
  });
  return out + "}";
}

int Run() {
  // Export the run as JSON when BLITZ_METRICS_OUT is set (e.g.
  // BLITZ_METRICS_OUT=BENCH_table1.json) so result trajectories can be
  // captured mechanically.
  MetricsRegistry metrics;
  SetGlobalMetrics(&metrics);

  Result<Catalog> catalog = Catalog::Create({
      {"A", 10, 64},
      {"B", 20, 64},
      {"C", 30, 64},
      {"D", 40, 64},
  });
  BLITZ_CHECK(catalog.ok());

  OptimizerOptions options;
  options.count_operations = true;
  Result<OptimizeOutcome> outcome = OptimizeCartesian(*catalog, options);
  BLITZ_CHECK(outcome.ok());
  const DpTable& table = outcome->table;

  std::printf("Table 1: Dynamic programming table for A x B x C x D\n");
  std::printf("(cards 10/20/30/40, naive cost model kappa_0 = |R_out|)\n\n");

  // Paper order: by set size, then by integer representation.
  std::vector<std::uint64_t> sets;
  for (std::uint64_t s = 1; s < table.size(); ++s) sets.push_back(s);
  std::sort(sets.begin(), sets.end(), [](std::uint64_t a, std::uint64_t b) {
    const int pa = std::popcount(a);
    const int pb = std::popcount(b);
    return pa != pb ? pa < pb : a < b;
  });

  TextTable out;
  out.SetHeader({"Relation Set", "Cardinality", "Best LHS", "Cost"});
  for (const std::uint64_t word : sets) {
    const RelSet s = RelSet::FromWord(word);
    const RelSet best = table.best_lhs(s);
    out.AddRow({SetName(s, *catalog), StrFormat("%.0f", table.card(s)),
                best.empty() ? "none" : SetName(best, *catalog),
                StrFormat("%.0f", static_cast<double>(table.cost(s)))});
    metrics.SetGauge(StrFormat("table1.cost.%s", SetName(s, *catalog).c_str()),
                     static_cast<double>(table.cost(s)));
    metrics.SetGauge(StrFormat("table1.card.%s", SetName(s, *catalog).c_str()),
                     table.card(s));
  }
  std::printf("%s\n", out.ToString().c_str());

  Result<Plan> plan = Plan::ExtractFromTable(table);
  BLITZ_CHECK(plan.ok());
  std::printf("Extracted optimal expression: %s  (cost %.0f)\n",
              plan->ToString(&catalog.value()).c_str(),
              static_cast<double>(outcome->cost));
  std::printf(
      "Paper reports (A x D) x (B x C) at cost 241000; our enumeration\n"
      "meets the commuted, equal-cost split first.\n");

  metrics.SetGauge("table1.best_cost", static_cast<double>(outcome->cost));
  WriteMetricsJsonIfRequested();
  SetGlobalMetrics(nullptr);
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
