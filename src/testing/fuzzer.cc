#include "testing/fuzzer.h"

#include <cmath>
#include <iterator>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/dp_table.h"
#include "core/relset.h"
#include "query/topology.h"
#include "query/workload.h"

namespace blitz::fuzz {
namespace {

/// Stream salt separating the edge-construction randomness of random(p)
/// cases from the spec-sampling randomness, so adding a sampled dimension
/// never perturbs the graphs of existing seeds.
constexpr std::uint64_t kEdgeStream = 0x45444745;  // "EDGE"

/// The discrete p grid for random(p) topologies: sparse (barely beyond a
/// tree) through dense (close to a clique).
constexpr double kEdgeProbGrid[] = {0.1, 0.25, 0.5, 0.75};

}  // namespace

const char* FuzzTopologyName(FuzzTopology t) {
  switch (t) {
    case FuzzTopology::kChain:
      return "chain";
    case FuzzTopology::kStar:
      return "star";
    case FuzzTopology::kClique:
      return "clique";
    case FuzzTopology::kRandom:
      return "random";
  }
  return "?";
}

std::string FuzzCaseSpec::Name() const {
  std::string topo = FuzzTopologyName(topology);
  if (topology == FuzzTopology::kRandom) {
    topo += StrFormat("%d", static_cast<int>(extra_edge_prob * 100));
  }
  return StrFormat("s%llu-c%llu-n%d-%s-m%g-v%d",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(case_index), num_relations,
                   topo.c_str(), mean_cardinality,
                   static_cast<int>(variability * 100));
}

Status FuzzerOptions::Validate() const {
  if (min_relations < 2) {
    return Status::InvalidArgument(
        StrFormat("min_relations %d < 2 (a join needs two relations)",
                  min_relations));
  }
  if (max_relations < min_relations) {
    return Status::InvalidArgument(
        StrFormat("max_relations %d < min_relations %d", max_relations,
                  min_relations));
  }
  // The single n-bounds gate: the sampled n must admit a 2^n DP table.
  // EstimateBytes returns 0 (not an error, not an assert) for n outside the
  // representable range, and the allocation sites downstream CHECK-abort —
  // turn the condition into a proper status exactly once, here.
  if (max_relations > kMaxRelations ||
      DpTable::EstimateBytes(max_relations, /*with_pi_fan=*/true,
                             /*with_aux=*/true) == 0) {
    return Status::InvalidArgument(
        StrFormat("max_relations %d outside [2, %d] (no DP table that size)",
                  max_relations, kMaxRelations));
  }
  return Status::OK();
}

FuzzCaseSpec SampleCaseSpec(const FuzzerOptions& options,
                            std::uint64_t case_index) {
  Rng rng(DeriveSeed(options.seed, case_index));
  FuzzCaseSpec spec;
  spec.seed = options.seed;
  spec.case_index = case_index;
  spec.num_relations = rng.NextInt(options.min_relations,
                                   options.max_relations);
  switch (rng.NextInt(0, 3)) {
    case 0:
      spec.topology = FuzzTopology::kChain;
      break;
    case 1:
      spec.topology = FuzzTopology::kStar;
      break;
    case 2:
      spec.topology = FuzzTopology::kClique;
      break;
    default:
      spec.topology = FuzzTopology::kRandom;
      spec.extra_edge_prob =
          kEdgeProbGrid[rng.NextInt(
              0, static_cast<int>(std::size(kEdgeProbGrid)) - 1)];
      break;
  }
  // The paper's logarithmic mean-cardinality axis (1 .. 10^6) and evenly
  // spaced variability axis {0, 0.25, 0.5, 0.75, 1} — the Appendix grid.
  spec.mean_cardinality = MeanCardinalityGrid(10)[rng.NextInt(0, 9)];
  spec.variability = VariabilityGrid(5)[rng.NextInt(0, 4)];
  return spec;
}

Result<FuzzCase> BuildCase(const FuzzCaseSpec& spec) {
  if (spec.num_relations < 2 || spec.num_relations > kMaxRelations ||
      DpTable::EstimateBytes(spec.num_relations, true, true) == 0) {
    return Status::InvalidArgument(
        StrFormat("case %s: num_relations %d outside [2, %d]",
                  spec.Name().c_str(), spec.num_relations, kMaxRelations));
  }
  if (spec.extra_edge_prob < 0.0 || spec.extra_edge_prob > 1.0) {
    return Status::InvalidArgument(
        StrFormat("case %s: extra_edge_prob %g outside [0, 1]",
                  spec.Name().c_str(), spec.extra_edge_prob));
  }

  std::vector<std::pair<int, int>> edges;
  switch (spec.topology) {
    case FuzzTopology::kChain:
    case FuzzTopology::kStar:
    case FuzzTopology::kClique: {
      const Topology t = spec.topology == FuzzTopology::kChain
                             ? Topology::kChain
                             : spec.topology == FuzzTopology::kStar
                                   ? Topology::kStar
                                   : Topology::kClique;
      Result<std::vector<std::pair<int, int>>> made =
          MakeTopologyEdges(t, spec.num_relations);
      if (!made.ok()) return made.status();
      edges = std::move(made).value();
      break;
    }
    case FuzzTopology::kRandom: {
      Rng rng(DeriveSeed(DeriveSeed(spec.seed, spec.case_index), kEdgeStream));
      edges = MakeRandomConnectedEdges(spec.num_relations,
                                       spec.extra_edge_prob, &rng);
      break;
    }
  }

  Result<Workload> workload = MakeWorkloadFromEdges(
      spec.num_relations, spec.mean_cardinality, spec.variability, edges);
  if (!workload.ok()) return workload.status();
  return FuzzCase{spec, std::move(workload->catalog),
                  std::move(workload->graph), spec.Name()};
}

Result<FuzzCase> GenerateCase(const FuzzerOptions& options,
                              std::uint64_t case_index) {
  BLITZ_RETURN_IF_ERROR(options.Validate());
  return BuildCase(SampleCaseSpec(options, case_index));
}

QuerySpec ToQuerySpec(const FuzzCase& c, CostModelKind cost_model) {
  QuerySpec spec;
  spec.catalog = c.catalog;
  spec.graph = c.graph;
  spec.cost_model = cost_model;
  return spec;
}

}  // namespace blitz::fuzz
