#include "exec/relation.h"

#include "common/strings.h"

namespace blitz {

Status ExecTable::AddJoinColumn(int predicate_id,
                                std::vector<std::uint32_t> values) {
  if (values.size() != num_rows_) {
    return Status::InvalidArgument(
        StrFormat("column for predicate %d has %zu values, table has %u rows",
                  predicate_id, values.size(), num_rows_));
  }
  if (HasColumn(predicate_id)) {
    return Status::InvalidArgument(
        StrFormat("duplicate column for predicate %d", predicate_id));
  }
  columns_.emplace_back(predicate_id, std::move(values));
  return Status::OK();
}

bool ExecTable::HasColumn(int predicate_id) const {
  for (const auto& [id, values] : columns_) {
    if (id == predicate_id) return true;
  }
  return false;
}

const std::vector<std::uint32_t>& ExecTable::Column(int predicate_id) const {
  for (const auto& [id, values] : columns_) {
    if (id == predicate_id) return values;
  }
  BLITZ_CHECK(false && "missing join column");
  static const std::vector<std::uint32_t> kEmpty;
  return kEmpty;
}

}  // namespace blitz
