#include "baseline/greedy.h"

#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "plan/evaluate.h"

namespace blitz {

Result<GreedyResult> OptimizeGreedy(const Catalog& catalog,
                                    const JoinGraph& graph,
                                    CostModelKind cost_model,
                                    GreedyCriterion criterion,
                                    const CardinalityEstimator* estimator) {
  const int n = catalog.num_relations();
  if (graph.num_relations() != n) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  // Null or exact rides the Section 5.1 derivation below unchanged; only a
  // genuinely non-exact estimator replaces the cardinality arithmetic.
  const CardinalityEstimator* est =
      (estimator != nullptr && !estimator->exact()) ? estimator : nullptr;
  if (est != nullptr && est->num_relations() != n) {
    return Status::InvalidArgument("estimator/catalog relation-count mismatch");
  }

  struct Tree {
    Plan plan;
    double card;
    double cost;
  };
  std::vector<Tree> forest;
  forest.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double card =
        est != nullptr ? est->BaseCardinality(i) : catalog.cardinality(i);
    forest.push_back(Tree{Plan::Leaf(i), card, 0.0});
  }

  while (forest.size() > 1) {
    double best_score = std::numeric_limits<double>::infinity();
    size_t best_a = 0;
    size_t best_b = 1;
    double best_card = 0;
    double best_kappa = 0;
    for (size_t a = 0; a < forest.size(); ++a) {
      for (size_t b = a + 1; b < forest.size(); ++b) {
        double out_card;
        if (est != nullptr) {
          out_card = est->EstimateCardinality(forest[a].plan.relations() |
                                              forest[b].plan.relations());
        } else {
          const double span = graph.PiSpan(forest[a].plan.relations(),
                                           forest[b].plan.relations());
          out_card = forest[a].card * forest[b].card * span;
        }
        const double kappa =
            EvalJoinCost(cost_model, out_card, forest[a].card, forest[b].card);
        const double score =
            criterion == GreedyCriterion::kMinOutputCardinality ? out_card
                                                                : kappa;
        if (score < best_score) {
          best_score = score;
          best_a = a;
          best_b = b;
          best_card = out_card;
          best_kappa = kappa;
        }
      }
    }
    Tree merged{
        Plan::Join(std::move(forest[best_a].plan),
                   std::move(forest[best_b].plan)),
        best_card, forest[best_a].cost + forest[best_b].cost + best_kappa};
    // Remove b first (b > a) to keep indexes valid.
    forest.erase(forest.begin() + static_cast<std::ptrdiff_t>(best_b));
    forest[best_a] = std::move(merged);
  }

  GreedyResult result;
  result.cost = forest[0].cost;
  result.plan = std::move(forest[0].plan);
  return result;
}

}  // namespace blitz
