#ifndef BLITZ_QUERY_WORKLOAD_H_
#define BLITZ_QUERY_WORKLOAD_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "query/join_graph.h"
#include "query/topology.h"

namespace blitz {

/// One deterministic test point of the paper's Appendix parameterization:
/// a topology over n relations, a geometric-mean cardinality, and a
/// variability knob in [0, 1].
///
/// Cardinalities: |R_0| = mean^(1 - variability), successive ratios
/// |R_i|/|R_{i-1}| constant, chosen so the geometric mean is `mean`
/// (hence |R_{n-1}| = mean^(1 + variability)). R_0 gets the lowest
/// cardinality and R_{n-1} the highest, as in the Appendix.
///
/// Selectivities: the predicate (if any) connecting R_i and R_j has
/// selectivity mean^(1/k) * |R_i|^(-1/k_i) * |R_j|^(-1/k_j), where k is the
/// total number of predicates and k_i the number incident on R_i. These
/// yield a final query-result cardinality of exactly `mean`.
struct WorkloadSpec {
  int num_relations = 15;
  Topology topology = Topology::kChain;
  double mean_cardinality = 100.0;  ///< Geometric mean, must be >= 1.
  double variability = 0.0;         ///< In [0, 1].

  std::string ToString() const;
};

/// A generated optimization problem: catalog + join graph.
struct Workload {
  Catalog catalog;
  JoinGraph graph;
};

/// Builds the catalog and join graph for `spec`. Selectivities are clamped
/// to 1.0 in the (rare, degenerate) case the Appendix formula exceeds it.
Result<Workload> MakeWorkload(const WorkloadSpec& spec);

/// Generator hook: the same Appendix construction (cardinality ladder +
/// calibrated selectivities yielding a final result cardinality of `mean`)
/// over a caller-supplied edge list instead of a named topology. This is how
/// the workload fuzzer (testing/fuzzer.h) extends the paper's grid with
/// random(p) connected graphs while keeping every other knob identical to
/// MakeWorkload. Edges must be in-range relation pairs with first != second;
/// duplicates fail via JoinGraph::AddPredicate.
Result<Workload> MakeWorkloadFromEdges(
    int num_relations, double mean_cardinality, double variability,
    const std::vector<std::pair<int, int>>& edges);

/// The base-relation cardinalities of `spec` (without building a graph).
std::vector<double> MakeCardinalityLadder(int n, double mean_cardinality,
                                          double variability);

/// The paper's logarithmic mean-cardinality axis: 1, 4.64, 21.5, 100, 464,
/// ... — successive points a factor 10^(2/3) apart (footnote 6).
std::vector<double> MeanCardinalityGrid(int count);

/// Evenly spaced variability axis over [0, 1] with `count` points
/// (count >= 2), e.g. {0, 0.25, 0.5, 0.75, 1} for count = 5.
std::vector<double> VariabilityGrid(int count);

}  // namespace blitz

#endif  // BLITZ_QUERY_WORKLOAD_H_
