#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "plan/plan.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::Table1Catalog;

// Reproduces Table 1 of the paper exactly: the dynamic programming table for
// A x B x C x D with cardinalities 10, 20, 30, 40 under the naive cost model.
TEST(BlitzsplitCartesianTest, Table1Cardinalities) {
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(Table1Catalog(), OptimizerOptions{});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const DpTable& table = outcome->table;

  const RelSet a = RelSet::Singleton(0);
  const RelSet b = RelSet::Singleton(1);
  const RelSet c = RelSet::Singleton(2);
  const RelSet d = RelSet::Singleton(3);

  EXPECT_DOUBLE_EQ(table.card(a), 10);
  EXPECT_DOUBLE_EQ(table.card(b), 20);
  EXPECT_DOUBLE_EQ(table.card(c), 30);
  EXPECT_DOUBLE_EQ(table.card(d), 40);
  EXPECT_DOUBLE_EQ(table.card(a | b), 200);
  EXPECT_DOUBLE_EQ(table.card(a | c), 300);
  EXPECT_DOUBLE_EQ(table.card(a | d), 400);
  EXPECT_DOUBLE_EQ(table.card(b | c), 600);
  EXPECT_DOUBLE_EQ(table.card(b | d), 800);
  EXPECT_DOUBLE_EQ(table.card(c | d), 1200);
  EXPECT_DOUBLE_EQ(table.card(a | b | c), 6000);
  EXPECT_DOUBLE_EQ(table.card(a | b | d), 8000);
  EXPECT_DOUBLE_EQ(table.card(a | c | d), 12000);
  EXPECT_DOUBLE_EQ(table.card(b | c | d), 24000);
  EXPECT_DOUBLE_EQ(table.card(a | b | c | d), 240000);
}

TEST(BlitzsplitCartesianTest, Table1Costs) {
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(Table1Catalog(), OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  const DpTable& table = outcome->table;

  const RelSet a = RelSet::Singleton(0);
  const RelSet b = RelSet::Singleton(1);
  const RelSet c = RelSet::Singleton(2);
  const RelSet d = RelSet::Singleton(3);

  EXPECT_EQ(table.cost(a), 0);
  EXPECT_EQ(table.cost(a | b), 200);
  EXPECT_EQ(table.cost(a | c), 300);
  EXPECT_EQ(table.cost(a | d), 400);
  EXPECT_EQ(table.cost(b | c), 600);
  EXPECT_EQ(table.cost(b | d), 800);
  EXPECT_EQ(table.cost(c | d), 1200);
  EXPECT_EQ(table.cost(a | b | c), 6200);
  EXPECT_EQ(table.cost(a | b | d), 8200);
  EXPECT_EQ(table.cost(a | c | d), 12300);
  EXPECT_EQ(table.cost(b | c | d), 24600);
  EXPECT_EQ(table.cost(a | b | c | d), 241000);
  EXPECT_EQ(outcome->cost, 241000);
}

TEST(BlitzsplitCartesianTest, Table1BestSplits) {
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(Table1Catalog(), OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  const DpTable& table = outcome->table;

  const RelSet a = RelSet::Singleton(0);
  const RelSet b = RelSet::Singleton(1);
  const RelSet c = RelSet::Singleton(2);
  const RelSet d = RelSet::Singleton(3);

  // Pairs: lowest-cardinality side is recorded first (matches the paper).
  EXPECT_EQ(table.best_lhs(a | b), a);
  EXPECT_EQ(table.best_lhs(a | c), a);
  EXPECT_EQ(table.best_lhs(b | c), b);
  EXPECT_EQ(table.best_lhs(c | d), c);
  // Triples.
  EXPECT_EQ(table.best_lhs(a | b | c), (a | b));
  EXPECT_EQ(table.best_lhs(a | b | d), (a | b));
  EXPECT_EQ(table.best_lhs(a | c | d), (a | c));
  EXPECT_EQ(table.best_lhs(b | c | d), (b | c));
  // Final row: the paper reports {A,D}; our enumeration meets the
  // equal-cost commuted split {B,C} first — both yield the optimal
  // expression (A x D) x (B x C) up to commutation.
  const RelSet best = table.best_lhs(a | b | c | d);
  EXPECT_TRUE(best == (a | d) || best == (b | c)) << best.ToString();
}

TEST(BlitzsplitCartesianTest, Table1ExtractedPlan) {
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(Table1Catalog(), OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->NumJoins(), 3);
  EXPECT_EQ(plan->Depth(), 2);        // the bushy (A x D) x (B x C) shape
  EXPECT_FALSE(plan->IsLeftDeep());
  const Catalog catalog = Table1Catalog();
  const std::string rendered = plan->ToString(&catalog);
  EXPECT_TRUE(rendered == "((B x C) x (A x D))" ||
              rendered == "((A x D) x (B x C))")
      << rendered;
}

TEST(BlitzsplitCartesianTest, SingleRelationHasZeroCost) {
  Result<Catalog> catalog = Catalog::FromCardinalities({123});
  ASSERT_TRUE(catalog.ok());
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(*catalog, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->cost, 0);
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->NumJoins(), 0);
}

TEST(BlitzsplitCartesianTest, TwoRelations) {
  Result<Catalog> catalog = Catalog::FromCardinalities({7, 9});
  ASSERT_TRUE(catalog.ok());
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(*catalog, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->cost, 63);  // kappa_0 = |R_out| = 7 * 9
}

// Optimal Cartesian-product order under kappa_0 multiplies in ascending
// cardinality order in the left-deep case, but bushy can do better; verify
// the bushy optimum is never worse than the sorted left-deep chain.
TEST(BlitzsplitCartesianTest, BushyNeverWorseThanSortedChain) {
  const std::vector<std::vector<double>> cases = {
      {2, 3, 5, 7, 11},
      {100, 100, 100, 100},
      {1, 1000, 2, 500, 3},
      {10, 10, 10, 10, 10, 10},
  };
  for (const auto& cards : cases) {
    Result<Catalog> catalog = Catalog::FromCardinalities(cards);
    ASSERT_TRUE(catalog.ok());
    Result<OptimizeOutcome> outcome =
        OptimizeCartesian(*catalog, OptimizerOptions{});
    ASSERT_TRUE(outcome.ok());

    std::vector<double> sorted = cards;
    std::sort(sorted.begin(), sorted.end());
    double chain_cost = 0;
    double product = sorted[0];
    for (size_t i = 1; i < sorted.size(); ++i) {
      product *= sorted[i];
      chain_cost += product;
    }
    EXPECT_LE(outcome->cost, static_cast<float>(chain_cost) * 1.0001f);
  }
}

TEST(BlitzsplitCartesianTest, CountersMatchClosedForms) {
  OptimizerOptions options;
  options.count_operations = true;
  const int n = 8;
  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(n, 100.0));
  ASSERT_TRUE(catalog.ok());
  Result<OptimizeOutcome> outcome = OptimizeCartesian(*catalog, options);
  ASSERT_TRUE(outcome.ok());
  const CountingInstrumentation& counters = outcome->counters;
  // Non-singleton subsets: 2^n - n - 1.
  EXPECT_EQ(counters.subsets_visited, (1u << n) - n - 1);
  // Aggregate loop iterations: 3^n - 2*2^n + 1.
  std::uint64_t pow3 = 1;
  for (int i = 0; i < n; ++i) pow3 *= 3;
  EXPECT_EQ(counters.loop_iterations, pow3 - 2 * (1u << n) + 1);
  // Every improvement requires a kappa'' evaluation, and every kappa''
  // evaluation requires passing the operand gate.
  EXPECT_LE(counters.improvements, counters.kappa2_evaluations);
  EXPECT_LE(counters.kappa2_evaluations, counters.operand_passes);
  EXPECT_LE(counters.operand_passes, counters.loop_iterations);
  // At least one improvement per subset (the first feasible split).
  EXPECT_GE(counters.improvements, counters.subsets_visited);
}

TEST(BlitzsplitCartesianTest, EqualCardinalitiesGiveBalancedBushyPlan) {
  const int n = 8;
  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(n, 10.0));
  ASSERT_TRUE(catalog.ok());
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(*catalog, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  // With all cardinalities equal, the cheapest kappa_0 shape keeps
  // intermediate results as small as possible; cost is well below that of
  // the left-deep chain.
  double chain_cost = 0;
  double product = 10;
  for (int i = 1; i < n; ++i) {
    product *= 10;
    chain_cost += product;
  }
  EXPECT_LT(outcome->cost, chain_cost);
}

}  // namespace
}  // namespace blitz
