#ifndef BLITZ_API_INTERESTING_ORDERS_H_
#define BLITZ_API_INTERESTING_ORDERS_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Physical-property-aware join-order optimization: the "interesting sort
/// orders" problem Section 6.5 of the paper leaves open ("Although we have
/// a plausible strategy for accommodating physical properties in special
/// cases, we have yet to develop a strategy for the general case").
///
/// This module implements that special case for sort-merge plans: a
/// sort-merge join's output is sorted on its merge key, and a later
/// sort-merge on the *same attribute class* can consume that input with a
/// linear merge scan instead of paying the full x(1 + log x) sort. The DP
/// therefore keeps one table row per (subset, order) pair, where an order
/// is either "unordered" or "sorted on attribute class c".
///
/// Cost model (an order-aware refinement of the Appendix's kappa_sm):
///   * sort-merge on a predicate of class c:
///       per input X:  |X|                 if X is sorted on c,
///                     |X| (1 + log |X|)   otherwise (sort + scan);
///       output sorted on c;
///   * no spanning predicate (Cartesian product): both inputs pay the full
///     x(1 + log x) term — exactly kappa_sm's treatment — and the output is
///     unordered.
/// With no reusable orders this degrades to precisely the plain kappa_sm
/// optimizer, so the order-aware optimum is never worse (and the tests
/// assert both directions).
///
/// Attribute classes: predicates sharing a class id join on the same
/// underlying attribute (as produced by transitively closing column
/// equivalences — see query/equivalence.h). `predicate_classes[p]` gives
/// the class of graph predicate p; ids must be dense in [0, num_classes).
struct InterestingOrdersResult {
  /// Cost of the best plan under the order-aware sort-merge model,
  /// regardless of its final output order.
  float cost = 0;

  /// The winning plan. Join nodes carry kSortMerge/kCartesianProduct
  /// algorithms, and each sort-merge node's PlanNode::sort_class records
  /// the attribute class of its merge key.
  Plan plan;

  /// Human-readable per-node account of sort reuse.
  std::string explain;

  /// Number of sort passes the plan avoided through order reuse.
  int sorts_avoided = 0;
};

/// Limits: at most this many relations / attribute classes (the table has
/// (classes + 1) * 2^n rows).
inline constexpr int kMaxOrderAwareRelations = 18;
inline constexpr int kMaxAttributeClasses = 32;

/// Runs the order-aware DP. `predicate_classes` must have one entry per
/// graph predicate; pass IdentityPredicateClasses(graph) when no two
/// predicates share an attribute.
Result<InterestingOrdersResult> OptimizeWithInterestingOrders(
    const Catalog& catalog, const JoinGraph& graph,
    const std::vector<int>& predicate_classes);

/// The trivial class assignment: every predicate its own class.
std::vector<int> IdentityPredicateClasses(const JoinGraph& graph);

}  // namespace blitz

#endif  // BLITZ_API_INTERESTING_ORDERS_H_
