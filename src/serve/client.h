#ifndef BLITZ_SERVE_CLIENT_H_
#define BLITZ_SERVE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "serve/stream.h"
#include "serve/wire.h"

namespace blitz {

/// Exponential backoff with full-range jitter for retrying shed requests.
/// Attempt k (1-based) sleeps
///
///   min(max_backoff_ms, initial_backoff_ms * multiplier^(k-1)) * U
///
/// where U is uniform in [1 - jitter, 1 + jitter] — the decorrelation that
/// keeps a thundering herd of shed clients from re-arriving in lockstep. A
/// server retry_after_ms hint raises the floor of the computed backoff.
struct RetryPolicy {
  /// Total tries, including the first (1 = no retries).
  int max_attempts = 4;

  double initial_backoff_ms = 25;
  double max_backoff_ms = 2000;
  double multiplier = 2.0;

  /// Jitter half-width as a fraction of the backoff; in [0, 1].
  double jitter = 0.5;

  Status Validate() const;
};

/// Client side of the blitz-serve-v1 protocol over any ByteStream.
///
/// Two usage modes:
///   - Optimize(): one synchronous request/response with automatic retry on
///     overload sheds (kResourceExhausted / kUnavailable responses).
///   - Send()/Receive(): raw pipelining for load generators — many requests
///     in flight on one connection, responses matched by id upstream.
///
/// Not thread-safe; one BlitzClient per thread (the protocol itself
/// supports any number of connections).
class BlitzClient {
 public:
  struct Options {
    std::string tenant = "default";
    WireLimits wire;
    RetryPolicy retry;

    /// Jitter seed — backoff sequences are reproducible per client.
    std::uint64_t seed = 1;

    /// Sleep hook, overridable so tests assert backoff schedules without
    /// real waiting. Defaults to an actual sleep.
    std::function<void(double ms)> sleep_ms;
  };

  BlitzClient(ByteStream* stream, Options options);

  /// One request, synchronously: sends `bjq`, awaits the response, retries
  /// (with backoff) responses whose code says the server shed the request.
  /// Deadline 0 = server default. Returns the parsed reply, the server's
  /// terminal error, or the transport error.
  Result<ServeReply> Optimize(const std::string& bjq, double deadline_ms = 0);

  /// Introspection: sends the /statz request and returns the raw statz
  /// body (the blitz-statz-v1 key/value text; see serve/wire.h). Works
  /// against a draining server — statz is answered before admission.
  Result<std::string> Statz();

  /// Pipelining: frames and sends one request without waiting. Returns the
  /// assigned request id.
  Result<std::uint64_t> Send(const std::string& bjq, double deadline_ms = 0);

  /// Pipelining: next response frame in arrival order (which is completion
  /// order, not send order). nullopt on clean end-of-stream.
  Result<std::optional<ResponseFrame>> Receive();

  /// Half-closes the request direction — tells a draining server this
  /// client is done sending while responses stay readable.
  void CloseSend();

  /// True for response codes that mean "the server did not execute this
  /// request and a later retry may succeed".
  static bool IsRetryable(StatusCode code);

 private:
  double BackoffMs(int attempt, double retry_after_ms);

  ByteStream* stream_;
  Options options_;
  FrameReader reader_;
  Rng rng_;
  std::uint64_t next_id_ = 1;
};

}  // namespace blitz

#endif  // BLITZ_SERVE_CLIENT_H_
