# Empty compiler generated dependencies file for blitz_textio.
# This may be replaced when dependencies are built.
