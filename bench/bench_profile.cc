// Performance-observatory bench: per-phase DP attribution for the SIMD
// split-filter kernel at one problem size, across the three cost models and
// both kernel variants (scalar vs the forced resolved SIMD level). This is
// the bench that diagnoses the kappa-sm / kappa-dnl SIMD regression: for
// those models the batched gate passes nearly every lane, so the survivor
// replay re-runs the whole rank scalar and the filter is pure overhead —
// the recorded survivor rates and phase fractions put numbers on that
// hypothesis (see DESIGN.md section 11 and EXPERIMENTS.md).
//
// Modes:
//   bench_profile                # human-readable per-phase tables
//   bench_profile --json <path>  # blitz-bench-v1 JSON (BENCH_profile.json)
//
// Per (model, variant) point set:
//   <model>/<variant>/wall                plain pass, min-of-k, ms
//   <model>/<variant>/profiled_wall      profiled pass, min-of-k, ms
//   <model>/<variant>/enabled_overhead   profiled_wall / wall, ratio
//   <model>/<variant>/attributed_fraction attributed / profiled_wall, ratio
//   <model>/<variant>/phase/<phase>      attributed seconds per phase, ms
//   <model>/<variant>/survivor_rate      filter survivors / lanes, ratio
//
// Environment knobs: BLITZ_PROFILE_N (default 13), BLITZ_PROFILE_SAMPLES
// (min-of-k, default 5), BLITZ_BENCH_MIN_SECONDS (default 0.05).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchlib/bench_json.h"
#include "benchlib/timing.h"
#include "catalog/catalog.h"
#include "common/check.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "obs/profiler/phase_profile.h"
#include "simd/dispatch.h"

namespace blitz {
namespace {

struct ModelCase {
  CostModelKind kind;
  const char* name;
};

constexpr ModelCase kModels[] = {{CostModelKind::kNaive, "naive"},
                                 {CostModelKind::kSortMerge, "sm"},
                                 {CostModelKind::kDiskNestedLoops, "dnl"}};

/// Min-of-k per-optimization seconds of the plain (unprofiled) pass.
double PlainMinOfK(const Catalog& catalog, const OptimizerOptions& options,
                   int samples, double min_seconds) {
  double best = 0;
  for (int sample = 0; sample < samples; ++sample) {
    const TimingResult timing = TimeIt(
        [&] {
          Result<OptimizeOutcome> outcome =
              OptimizeCartesian(catalog, options);
          BLITZ_CHECK(outcome.ok());
        },
        min_seconds);
    if (sample == 0 || timing.seconds_per_run < best) {
      best = timing.seconds_per_run;
    }
  }
  return best;
}

/// Min-of-k wall seconds of the profiled pass; the PassProfile of the
/// fastest sample (the least-perturbed run) is returned through *profile.
double ProfiledMinOfK(const Catalog& catalog, OptimizerOptions options,
                      int samples, PassProfile* profile) {
  double best = 0;
  for (int sample = 0; sample < samples; ++sample) {
    PassProfile sample_profile;
    options.profile = &sample_profile;
    const Stopwatch watch;
    Result<OptimizeOutcome> outcome = OptimizeCartesian(catalog, options);
    BLITZ_CHECK(outcome.ok());
    const double seconds = watch.ElapsedSeconds();
    if (sample == 0 || seconds < best) {
      best = seconds;
      *profile = sample_profile;
    }
  }
  return best;
}

int Run(const char* json_path) {
  const double min_seconds = BenchMinSeconds(0.05);
  const int n = BenchEnvInt("BLITZ_PROFILE_N", 13);
  const int samples = BenchEnvInt("BLITZ_PROFILE_SAMPLES", 5);
  const SimdLevel resolved = ResolveSimdLevel(SimdLevel::kAuto);

  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(n, 100.0));
  BLITZ_CHECK(catalog.ok());

  BenchReport report;
  report.bench = "profile";
  report.AddMeta("setup", StrFormat("pure Cartesian product, n=%d, equal "
                                    "base cardinalities of 100",
                                    n));
  report.AddMeta("estimator", StrFormat("min of %d samples", samples));
  report.AddMeta("simd_resolved", SimdLevelName(resolved));
  report.AddMeta("ticks_per_second", StrFormat("%.0f", ProfTicksPerSecond()));

  const struct {
    SimdLevel level;
    const char* name;
  } kVariants[] = {{SimdLevel::kScalar, "scalar"}, {resolved, "simd"}};

  for (const ModelCase& model : kModels) {
    for (const auto& variant : kVariants) {
      OptimizerOptions options;
      options.cost_model = model.kind;
      options.simd = variant.level;

      const double wall =
          PlainMinOfK(*catalog, options, samples, min_seconds);
      PassProfile profile;
      const double profiled_wall =
          ProfiledMinOfK(*catalog, options, samples, &profile);
      const double attributed = profile.AttributedSeconds();
      const double attributed_fraction =
          profiled_wall > 0 ? attributed / profiled_wall : 0;
      const double overhead = wall > 0 ? profiled_wall / wall : 0;
      const std::uint64_t lanes = profile.TotalFilterLanes();
      const std::uint64_t survivors = profile.TotalFilterSurvivors();
      const double survivor_rate =
          lanes > 0 ? static_cast<double>(survivors) /
                          static_cast<double>(lanes)
                    : 0;

      const std::string prefix =
          StrFormat("%s/%s", model.name, variant.name);
      report.AddPoint(prefix + "/wall", wall * 1e3, "ms");
      report.AddPoint(prefix + "/profiled_wall", profiled_wall * 1e3, "ms");
      report.AddPoint(prefix + "/enabled_overhead", overhead, "ratio");
      report.AddPoint(prefix + "/attributed_fraction", attributed_fraction,
                      "ratio");
      report.AddPoint(prefix + "/survivor_rate", survivor_rate, "ratio");
      const std::uint64_t total_ticks = profile.TotalTicks();
      for (int p = 0; p < kNumDpPhases; ++p) {
        const std::uint64_t ticks =
            profile.PhaseTicks(static_cast<DpPhase>(p));
        const double fraction =
            total_ticks > 0 ? static_cast<double>(ticks) /
                                  static_cast<double>(total_ticks)
                            : 0;
        report.AddPoint(
            StrFormat("%s/phase/%s", prefix.c_str(),
                      DpPhaseName(static_cast<DpPhase>(p))),
            fraction, "fraction");
      }

      std::printf(
          "=== %s / %s (n=%d) ===\n"
          "wall %.3f ms, profiled %.3f ms (%.3fx), attributed %.3f ms "
          "(%.1f%% of profiled wall)\n",
          model.name, variant.name, n, wall * 1e3, profiled_wall * 1e3,
          overhead, attributed * 1e3, attributed_fraction * 100);
      if (lanes > 0) {
        std::printf("filter: %llu lanes, %llu survivors (%.1f%%)\n",
                    static_cast<unsigned long long>(lanes),
                    static_cast<unsigned long long>(survivors),
                    survivor_rate * 100);
      }
      std::printf("%s\n", profile.ToString().c_str());
    }
  }

  if (json_path != nullptr) {
    const Status status = WriteBenchJsonFile(report, json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace blitz

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return blitz::Run(argv[i + 1]);
    }
  }
  return blitz::Run(nullptr);
}
