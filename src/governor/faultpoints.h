#ifndef BLITZ_GOVERNOR_FAULTPOINTS_H_
#define BLITZ_GOVERNOR_FAULTPOINTS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace blitz {

/// Deterministic fault injection for the resource governor's failure paths.
///
/// Library code is sprinkled with *named fault points* (see the kFault*
/// constants below). A test arms a point on a FaultRegistry, installs the
/// registry globally, and the next time execution reaches the point the
/// armed fault fires: a simulated allocation failure, a clock skip that
/// forces a deadline, a spurious cancellation, or an arbitrary error Status.
/// This makes every degradation path exercisable without real memory
/// pressure, real multi-second stalls, or racy cancel threads.
///
/// Cost model (mirrors NoInstrumentation / the global metrics hook):
///   - Compiled out (-DBLITZ_FAULT_INJECTION=OFF): every hook collapses to a
///     `return std::nullopt` constant — zero code, zero branches.
///   - Compiled in, no registry installed (production default): one relaxed
///     atomic load and a predicted-not-taken branch per fault point. Fault
///     points live on cold paths (allocation, amortized governor checks),
///     never in the per-split inner loop.
///
/// The registry itself always compiles so tests can link against it and
/// skip themselves when the hooks are compiled out (kFaultInjectionCompiled).

/// What an armed fault does when it fires.
enum class FaultKind {
  kFailStatus,  ///< The point reports the armed error Status.
  kBadAlloc,    ///< The point behaves as if allocation had failed.
  kClockSkew,   ///< The governor's clock jumps forward by skew_seconds.
  kCancel,      ///< The governor behaves as if the token had been cancelled.
};

/// One armed fault: what to inject and when.
struct FaultSpec {
  FaultKind kind = FaultKind::kFailStatus;

  /// Payload for kFailStatus.
  Status status = Status::Internal("injected fault");

  /// Payload for kClockSkew, in seconds.
  double skew_seconds = 0;

  /// Number of hits to let pass unharmed before the fault fires (0 fires on
  /// the first hit) — e.g. after=1 on kFaultOptimizePass fails the *second*
  /// ladder pass.
  int after = 0;

  /// Number of firings before the point disarms itself; -1 = every hit.
  int times = 1;
};

/// Thread-safe collection of armed fault points, keyed by point name.
class FaultRegistry {
 public:
  /// Arms (or re-arms) the named point.
  void Arm(std::string_view point, FaultSpec spec);

  /// Disarms the named point; hit counts are retained.
  void Disarm(std::string_view point);

  /// Disarms everything and zeroes all hit counters.
  void Clear();

  /// Total times the named point was reached (fired or not) since the last
  /// Clear. Useful for asserting that a governed path was actually taken.
  std::uint64_t hits(std::string_view point) const;

  /// Called by instrumented code: records the hit and returns the armed
  /// spec if the fault fires on this hit.
  std::optional<FaultSpec> Hit(std::string_view point);

 private:
  struct Armed {
    FaultSpec spec;
    int remaining_skips = 0;
    int remaining_fires = 0;  ///< -1 = unlimited.
  };

  mutable std::mutex mu_;
  std::map<std::string, Armed, std::less<>> armed_;
  std::map<std::string, std::uint64_t, std::less<>> hit_counts_;
};

/// Process-global registry hook, GlobalMetrics-style: not owned; install
/// nullptr before destroying the registry.
FaultRegistry* GlobalFaultRegistry();
void SetGlobalFaultRegistry(FaultRegistry* registry);

/// RAII installer for tests: installs on construction, uninstalls (and
/// clears the registry) on destruction.
class ScopedFaultRegistry {
 public:
  explicit ScopedFaultRegistry(FaultRegistry* registry) {
    SetGlobalFaultRegistry(registry);
  }
  ~ScopedFaultRegistry() {
    if (FaultRegistry* r = GlobalFaultRegistry()) r->Clear();
    SetGlobalFaultRegistry(nullptr);
  }
  ScopedFaultRegistry(const ScopedFaultRegistry&) = delete;
  ScopedFaultRegistry& operator=(const ScopedFaultRegistry&) = delete;
};

// Named fault points. Sites document the FaultKinds they honor.
inline constexpr std::string_view kFaultDpTableAlloc = "dp_table.alloc";
inline constexpr std::string_view kFaultGovernorCheck = "governor.check";
inline constexpr std::string_view kFaultOptimizePass = "optimizer.pass";
inline constexpr std::string_view kFaultHybridRun = "hybrid.run";

// Serving-tier fault points (src/serve/, src/core/table_arena.h). Each
// models one failure edge of the blitzd request path; the chaos suite arms
// them under concurrent load and asserts clean error responses.
inline constexpr std::string_view kFaultServeAccept = "serve.accept";
inline constexpr std::string_view kFaultServeParse = "serve.parse";
inline constexpr std::string_view kFaultServeEnqueue = "serve.enqueue";
inline constexpr std::string_view kFaultServeArenaAlloc = "serve.arena.alloc";
inline constexpr std::string_view kFaultServeDrain = "serve.drain";
// Fires at PlanCache insertion: any armed kind suppresses the insert (the
// result is served but not cached — a bypass), modeling cache-memory
// pressure without disturbing the answer path.
inline constexpr std::string_view kFaultServeCacheInsert = "serve.cache.insert";
// Fires per epoll_wait cycle in the connection multiplexer: transient kinds
// (kBadAlloc, kClockSkew, kCancel) make that cycle a no-op; kFailStatus
// makes the multiplexer drain gracefully and return the armed status.
inline constexpr std::string_view kFaultServeEpollWait = "serve.epoll.wait";

#ifdef BLITZ_FAULT_INJECTION

inline constexpr bool kFaultInjectionCompiled = true;

/// The hook instrumented code calls: nullopt unless a registry is installed
/// and the named point fires on this hit.
inline std::optional<FaultSpec> FaultHit(std::string_view point) {
  FaultRegistry* registry = GlobalFaultRegistry();
  if (registry == nullptr) return std::nullopt;
  return registry->Hit(point);
}

#else  // !BLITZ_FAULT_INJECTION

inline constexpr bool kFaultInjectionCompiled = false;

inline std::optional<FaultSpec> FaultHit(std::string_view) {
  return std::nullopt;
}

#endif  // BLITZ_FAULT_INJECTION

}  // namespace blitz

#endif  // BLITZ_GOVERNOR_FAULTPOINTS_H_
