file(REMOVE_RECURSE
  "CMakeFiles/relset_test.dir/relset_test.cc.o"
  "CMakeFiles/relset_test.dir/relset_test.cc.o.d"
  "relset_test"
  "relset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
