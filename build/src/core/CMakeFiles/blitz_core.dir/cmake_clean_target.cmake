file(REMOVE_RECURSE
  "libblitz_core.a"
)
