#ifndef BLITZ_BASELINE_DPCCP_H_
#define BLITZ_BASELINE_DPCCP_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Result of a DPccp optimization.
struct DpCcpResult {
  Plan plan;
  double cost = 0;
  /// Connected-subgraph / connected-complement pairs emitted. DPccp's
  /// defining property is that this equals the number of *valid*
  /// product-free joins exactly — no candidate is generated and then
  /// rejected.
  std::uint64_t ccp_pairs = 0;
};

/// DPccp — dynamic programming over connected-subgraph/complement pairs
/// (Moerkotte & Neumann, SIGMOD 2006). Included as the modern descendant of
/// the enumeration problem this paper attacks: where blitzsplit spends
/// O(3^n) loop iterations regardless of graph shape (and wins on constant
/// factors), DPccp walks the join graph so that enumeration work equals the
/// number of valid product-free joins — e.g. O(n^3) on chains — at the cost
/// of excluding Cartesian products (the trade-off the paper argues
/// against) and a far more intricate enumerator.
///
/// Fails with kFailedPrecondition on disconnected join graphs.
Result<DpCcpResult> OptimizeDpCcp(const Catalog& catalog,
                                  const JoinGraph& graph,
                                  CostModelKind cost_model);

}  // namespace blitz

#endif  // BLITZ_BASELINE_DPCCP_H_
