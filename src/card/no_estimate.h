#ifndef BLITZ_CARD_NO_ESTIMATE_H_
#define BLITZ_CARD_NO_ESTIMATE_H_

#include <vector>

#include "card/estimator.h"
#include "query/join_graph.h"

namespace blitz {

/// Simpli-Squared's estimate-free ordering signal (PAPERS.md): join
/// ordering without cardinality estimates, using only the query's
/// predicate structure. Every relation is pretended to have the same
/// cardinality kUnit and every predicate the same selectivity 1/kUnit, so
///
///   est(S) = kUnit ^ max(0, |S| - #predicates induced by S)
///
/// — subsets that bind more predicates look smaller, Cartesian products
/// look maximally large, and over-constrained subsets (cliques) floor at
/// 1. The absolute values are meaningless by design; only the ordering
/// they induce matters. Regret against the exact plan is what
/// bench_estimators records.
class NoEstimateEstimator final : public CardinalityEstimator {
 public:
  /// The pretended per-relation cardinality. Large enough that one unbound
  /// relation dominates any plausible bound-predicate discount.
  static constexpr double kUnit = 1000.0;

  /// `graph` is borrowed and must outlive the estimator.
  explicit NoEstimateEstimator(const JoinGraph& graph) : graph_(&graph) {}

  EstimatorKind kind() const override { return EstimatorKind::kNoEstimate; }
  int num_relations() const override { return graph_->num_relations(); }
  double BaseCardinality(int /*i*/) const override { return kUnit; }
  double EstimateCardinality(RelSet s) const override;
  void EstimateAll(std::vector<double>* cards) const override;

 private:
  const JoinGraph* graph_;
};

}  // namespace blitz

#endif  // BLITZ_CARD_NO_ESTIMATE_H_
