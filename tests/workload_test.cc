#include "query/workload.h"

#include <cmath>

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(WorkloadTest, CardinalityLadderGeometricMean) {
  for (double mean : {1.0, 4.64, 100.0, 1e4}) {
    for (double variability : {0.0, 0.25, 0.5, 1.0}) {
      const std::vector<double> cards =
          MakeCardinalityLadder(15, mean, variability);
      double log_sum = 0;
      for (double c : cards) log_sum += std::log(c);
      EXPECT_NEAR(std::exp(log_sum / 15), mean, 1e-9 * mean)
          << "mean=" << mean << " var=" << variability;
    }
  }
}

TEST(WorkloadTest, VariabilityZeroGivesEqualCardinalities) {
  const std::vector<double> cards = MakeCardinalityLadder(10, 500, 0);
  for (double c : cards) EXPECT_NEAR(c, 500, 1e-9);
}

TEST(WorkloadTest, VariabilityOneSpansSquare) {
  // |R0| = mean^0 = 1 and |R_{n-1}| = mean^2.
  const std::vector<double> cards = MakeCardinalityLadder(15, 100, 1.0);
  EXPECT_NEAR(cards.front(), 1.0, 1e-9);
  EXPECT_NEAR(cards.back(), 10000.0, 1e-6);
}

TEST(WorkloadTest, CardinalitiesAscending) {
  const std::vector<double> cards = MakeCardinalityLadder(15, 100, 0.7);
  for (size_t i = 1; i < cards.size(); ++i) {
    EXPECT_GT(cards[i], cards[i - 1]);
  }
  // Constant ratio between successive cardinalities.
  const double ratio = cards[1] / cards[0];
  for (size_t i = 2; i < cards.size(); ++i) {
    EXPECT_NEAR(cards[i] / cards[i - 1], ratio, 1e-9 * ratio);
  }
}

TEST(WorkloadTest, MeanCardinalityGridMatchesPaperFootnote) {
  // "sample points are taken at mean cardinalities 1, 4.64, 21.5, 100,
  // 464, etc." — a logarithmic axis with step 10^(2/3).
  const std::vector<double> grid = MeanCardinalityGrid(5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_NEAR(grid[0], 1.0, 1e-12);
  EXPECT_NEAR(grid[1], 4.6416, 1e-3);
  EXPECT_NEAR(grid[2], 21.544, 1e-2);
  EXPECT_NEAR(grid[3], 100.0, 1e-9);
  EXPECT_NEAR(grid[4], 464.16, 1e-1);
}

TEST(WorkloadTest, VariabilityGridEvenlySpaced) {
  const std::vector<double> grid = VariabilityGrid(5);
  EXPECT_EQ(grid, (std::vector<double>{0, 0.25, 0.5, 0.75, 1.0}));
}

TEST(WorkloadTest, ResultCardinalityEqualsMean) {
  // The Appendix selectivity assignment "yield[s] a query result
  // cardinality of mu" — for every topology and variability.
  for (const Topology topology : kPaperTopologies) {
    for (double variability : {0.0, 0.5, 1.0}) {
      WorkloadSpec spec;
      spec.num_relations = 15;
      spec.topology = topology;
      spec.mean_cardinality = 464.0;
      spec.variability = variability;
      Result<Workload> workload = MakeWorkload(spec);
      ASSERT_TRUE(workload.ok()) << spec.ToString();
      std::vector<double> cards(15);
      for (int i = 0; i < 15; ++i) {
        cards[i] = workload->catalog.cardinality(i);
      }
      const double result_card =
          workload->graph.JoinCardinality(RelSet::FirstN(15), cards);
      EXPECT_NEAR(result_card, 464.0, 1.0)
          << spec.ToString();
    }
  }
}

TEST(WorkloadTest, SelectivityFormula) {
  // Spot-check the Appendix formula: sel(i,j) =
  // mu^(1/k) |Ri|^(-1/ki) |Rj|^(-1/kj) on a star.
  WorkloadSpec spec;
  spec.num_relations = 5;
  spec.topology = Topology::kStar;
  spec.mean_cardinality = 100;
  spec.variability = 0.5;
  Result<Workload> workload = MakeWorkload(spec);
  ASSERT_TRUE(workload.ok());
  const int k = 4;  // star over 5 relations
  const int hub = 4;
  for (const Predicate& p : workload->graph.predicates()) {
    const int leaf = p.lhs == hub ? p.rhs : p.lhs;
    const double expected =
        std::pow(100.0, 1.0 / k) *
        std::pow(workload->catalog.cardinality(leaf), -1.0) *
        std::pow(workload->catalog.cardinality(hub), -1.0 / k);
    EXPECT_NEAR(p.selectivity, expected, 1e-12);
  }
}

TEST(WorkloadTest, AllPaperTopologiesBuildAtN15) {
  for (const Topology topology : kPaperTopologies) {
    WorkloadSpec spec;
    spec.topology = topology;
    Result<Workload> workload = MakeWorkload(spec);
    EXPECT_TRUE(workload.ok()) << TopologyToString(topology);
    EXPECT_EQ(workload->catalog.num_relations(), 15);
  }
}

TEST(WorkloadTest, SelectivitiesAreValid) {
  for (const Topology topology : kPaperTopologies) {
    for (double mean : {1.0, 4.64, 1e4, 1e8}) {
      for (double variability : {0.0, 1.0}) {
        WorkloadSpec spec;
        spec.topology = topology;
        spec.mean_cardinality = mean;
        spec.variability = variability;
        Result<Workload> workload = MakeWorkload(spec);
        ASSERT_TRUE(workload.ok()) << spec.ToString();
        for (const Predicate& p : workload->graph.predicates()) {
          EXPECT_GT(p.selectivity, 0.0);
          EXPECT_LE(p.selectivity, 1.0);
        }
      }
    }
  }
}

TEST(WorkloadTest, RejectsBadSpecs) {
  WorkloadSpec spec;
  spec.num_relations = 0;
  EXPECT_FALSE(MakeWorkload(spec).ok());
  spec = WorkloadSpec{};
  spec.mean_cardinality = 0.5;
  EXPECT_FALSE(MakeWorkload(spec).ok());
  spec = WorkloadSpec{};
  spec.variability = 1.5;
  EXPECT_FALSE(MakeWorkload(spec).ok());
  spec = WorkloadSpec{};
  spec.variability = -0.1;
  EXPECT_FALSE(MakeWorkload(spec).ok());
}

TEST(WorkloadTest, ToStringDescribesSpec) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.mean_cardinality = 21.5;
  const std::string s = spec.ToString();
  EXPECT_NE(s.find("star"), std::string::npos);
  EXPECT_NE(s.find("21.5"), std::string::npos);
}

}  // namespace
}  // namespace blitz
