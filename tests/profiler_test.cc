// Performance-observatory tests: the delta-mark phase attribution of
// ProfilingInstrumentation, the profiled optimizer passes (sequential,
// SIMD, parallel, and threshold-ladder), the graceful perf_event fallback,
// and the Profiler/ProfileScope plumbing surfaced through OptimizeQuery.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "api/optimize_query.h"
#include "catalog/catalog.h"
#include "core/instrumentation.h"
#include "core/optimizer.h"
#include "obs/metrics.h"
#include "obs/profiler/perf_counters.h"
#include "obs/profiler/phase_profile.h"
#include "obs/profiler/profiler.h"
#include "simd/dispatch.h"
#include "test_util.h"

namespace blitz {
namespace {

// The zero-cost-when-disabled contract, statically: the production policy
// carries no state (empty base optimization applies) and no profiling flag,
// so every Prof* hook on it is an empty inline function the optimizer
// instantiations erase.
static_assert(!NoInstrumentation::kEnabled);
static_assert(!NoInstrumentation::kProfiling);
static_assert(std::is_empty_v<NoInstrumentation>);
static_assert(CountingInstrumentation::kEnabled);
static_assert(!CountingInstrumentation::kProfiling);
static_assert(ProfilingInstrumentation::kEnabled);
static_assert(ProfilingInstrumentation::kProfiling);

std::uint64_t TotalLoopIterations(const PassProfile& profile) {
  std::uint64_t total = 0;
  for (const RankPhaseStats& rank : profile.ranks) {
    total += rank.loop_iterations;
  }
  return total;
}

std::uint64_t TotalKappa2(const PassProfile& profile) {
  std::uint64_t total = 0;
  for (const RankPhaseStats& rank : profile.ranks) {
    total += rank.kappa2_evaluations;
  }
  return total;
}

std::uint64_t TotalSubsets(const PassProfile& profile) {
  std::uint64_t total = 0;
  for (const RankPhaseStats& rank : profile.ranks) total += rank.subsets;
  return total;
}

TEST(PhaseProfileTest, EmptyProfile) {
  PassProfile profile;
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.TotalTicks(), 0u);
  EXPECT_EQ(profile.AttributedSeconds(), 0.0);
  EXPECT_EQ(profile.ToString(), "");
  // Still a valid JSON object with zero passes.
  EXPECT_NE(profile.ToJson().find("\"passes\":0"), std::string::npos);
}

TEST(PhaseProfileTest, TicksPerSecondIsPlausible) {
  const double tps = ProfTicksPerSecond();
  // TSC frequencies sit in the GHz range; the steady_clock fallback is
  // nanoseconds (1e9). Either way the calibration must land well inside
  // [1e6, 1e11] and be stable across calls (cached).
  EXPECT_GT(tps, 1e6);
  EXPECT_LT(tps, 1e11);
  EXPECT_EQ(tps, ProfTicksPerSecond());
}

TEST(PhaseProfileTest, DeltaMarkAttributionPartitionsTime) {
  ProfilingInstrumentation instr;
  instr.ProfBegin(0b111);  // rank 3
  instr.ProfMark(DpPhase::kTableWrite);
  instr.ProfMark(DpPhase::kGateFilter);
  instr.ProfBegin(0b1111);  // rank 4; the gap charges to driver
  instr.ProfMark(DpPhase::kKappa2);
  instr.ProfPassEnd();

  const PassProfile& p = instr.profile;
  EXPECT_EQ(p.passes, 1u);
  EXPECT_EQ(p.ranks[3].subsets, 1u);
  EXPECT_EQ(p.ranks[4].subsets, 1u);
  // Every interval between the first ProfBegin and ProfPassEnd was
  // attributed somewhere, and the phases the marks named got their buckets.
  EXPECT_GT(p.TotalTicks(), 0u);
  EXPECT_GT(p.ranks[3].phase_ticks[static_cast<int>(DpPhase::kTableWrite)],
            0u);
  EXPECT_GT(p.ranks[4].phase_ticks[static_cast<int>(DpPhase::kKappa2)], 0u);
}

TEST(PhaseProfileTest, ResyncDoesNotAttribute) {
  ProfilingInstrumentation a;
  ProfilingInstrumentation b;
  a.ProfBegin(0b11);
  b.ProfBegin(0b11);
  // `a` resyncs (parallel-driver barrier semantics): the interval between
  // resync and the next mark is attributed, but nothing before it.
  a.ProfResync();
  a.ProfMark(DpPhase::kGateFilter);
  b.ProfMark(DpPhase::kGateFilter);
  a.ProfPassEnd();
  b.ProfPassEnd();
  // Both partitions are internally consistent; resync merely re-arms.
  EXPECT_GT(a.profile.TotalTicks(), 0u);
  EXPECT_GT(b.profile.TotalTicks(), 0u);
}

TEST(PhaseProfileTest, FoldAccumulatesExactly) {
  ProfilingInstrumentation a;
  a.ProfBegin(0b111);
  a.OnLoopIteration();
  a.OnFilterSurvivors(64, 3);
  a.ProfMark(DpPhase::kGateFilter);
  a.ProfPassEnd();
  ProfilingInstrumentation b;
  b.ProfBegin(0b111);
  b.OnLoopIterationBlock(10);
  b.OnFilterSurvivors(64, 5);
  b.ProfMark(DpPhase::kGateFilter);
  b.ProfPassEnd();

  PassProfile folded = a.profile;
  folded += b.profile;
  EXPECT_EQ(folded.passes, 2u);
  EXPECT_EQ(folded.ranks[3].subsets, 2u);
  EXPECT_EQ(folded.ranks[3].loop_iterations, 11u);
  EXPECT_EQ(folded.TotalFilterLanes(), 128u);
  EXPECT_EQ(folded.TotalFilterSurvivors(), 8u);
  EXPECT_EQ(folded.ranks[3].SurvivorRate(), 8.0 / 128.0);
  EXPECT_EQ(folded.TotalTicks(),
            a.profile.TotalTicks() + b.profile.TotalTicks());
}

TEST(ProfiledPassTest, CountsMatchCountingInstrumentation) {
  // The profiled policy must observe exactly the operation stream the
  // counting policy observes — profiling changes attribution, not work.
  const int n = 10;
  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(n, 100.0));
  ASSERT_TRUE(catalog.ok());

  OptimizerOptions counting;
  counting.count_operations = true;
  counting.simd = SimdLevel::kScalar;
  Result<OptimizeOutcome> counted = OptimizeCartesian(*catalog, counting);
  ASSERT_TRUE(counted.ok());

  PassProfile profile;
  OptimizerOptions profiled;
  profiled.simd = SimdLevel::kScalar;
  profiled.profile = &profile;
  Result<OptimizeOutcome> outcome = OptimizeCartesian(*catalog, profiled);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->cost, counted->cost);

  EXPECT_EQ(profile.passes, 1u);
  EXPECT_EQ(TotalSubsets(profile), counted->counters.subsets_visited);
  EXPECT_EQ(TotalLoopIterations(profile), counted->counters.loop_iterations);
  EXPECT_EQ(TotalKappa2(profile), counted->counters.kappa2_evaluations);
  // Subsets land in the rank bucket of their popcount: C(n, k) each.
  for (int k = 2; k <= n; ++k) {
    double expect = 1;
    for (int i = 0; i < k; ++i) expect = expect * (n - i) / (i + 1);
    EXPECT_EQ(profile.ranks[k].subsets,
              static_cast<std::uint64_t>(std::llround(expect)))
        << "rank " << k;
  }
  EXPECT_GT(profile.TotalTicks(), 0u);
  // Scalar pass: no SIMD filter, no survivor replay ticks.
  EXPECT_EQ(profile.TotalFilterLanes(), 0u);
  EXPECT_EQ(profile.PhaseTicks(DpPhase::kSurvivorReplay), 0u);
}

TEST(ProfiledPassTest, SimdPassRecordsSurvivorRates) {
  const int n = 12;
  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(n, 100.0));
  ASSERT_TRUE(catalog.ok());

  OptimizerOptions counting;
  counting.count_operations = true;
  counting.simd = SimdLevel::kBlock;  // forced: every machine supports it
  Result<OptimizeOutcome> counted = OptimizeCartesian(*catalog, counting);
  ASSERT_TRUE(counted.ok());

  PassProfile profile;
  OptimizerOptions profiled = counting;
  profiled.count_operations = false;
  profiled.profile = &profile;
  Result<OptimizeOutcome> outcome = OptimizeCartesian(*catalog, profiled);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->cost, counted->cost);

  // The batched kernel engaged: lanes flowed through the filter, some
  // survived to replay, and the bit-identity contract holds for counters.
  EXPECT_GT(profile.TotalFilterLanes(), 0u);
  EXPECT_GT(profile.TotalFilterSurvivors(), 0u);
  EXPECT_LE(profile.TotalFilterSurvivors(), profile.TotalFilterLanes());
  EXPECT_EQ(TotalLoopIterations(profile), counted->counters.loop_iterations);
  EXPECT_EQ(TotalKappa2(profile), counted->counters.kappa2_evaluations);
  EXPECT_GT(profile.PhaseTicks(DpPhase::kGateFilter), 0u);
  EXPECT_GT(profile.PhaseTicks(DpPhase::kSurvivorReplay), 0u);

  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"survivor_rate\":"), std::string::npos);
  EXPECT_NE(json.find("\"gate_filter\""), std::string::npos);
  EXPECT_FALSE(profile.ToString().empty());
}

TEST(ProfiledPassTest, AttributionCoversMostOfTheWall) {
  // The DESIGN.md section 11 contract: phase buckets partition the subset
  // body, so attributed ticks approach the pass wall time. The acceptance
  // bar is 90% on a quiet machine (measured in BENCH_profile.json); the
  // test asserts a CI-noise-tolerant 70% on the best of three runs.
  const int n = 13;
  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(n, 100.0));
  ASSERT_TRUE(catalog.ok());
  double best_fraction = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    PassProfile profile;
    OptimizerOptions options;
    options.simd = SimdLevel::kScalar;
    options.profile = &profile;
    const MetricTimer timer;
    Result<OptimizeOutcome> outcome = OptimizeCartesian(*catalog, options);
    const double wall = timer.ElapsedSeconds();
    ASSERT_TRUE(outcome.ok());
    if (wall > 0) {
      best_fraction =
          std::max(best_fraction, profile.AttributedSeconds() / wall);
    }
  }
  EXPECT_GT(best_fraction, 0.7);
  // Attribution never invents time: even with rdtsc skew it must not
  // exceed the wall by more than a sliver.
  EXPECT_LT(best_fraction, 1.1);
}

TEST(ProfiledPassTest, ParallelPassFoldsWorkerProfiles) {
  const int n = 11;
  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(n, 100.0));
  ASSERT_TRUE(catalog.ok());

  PassProfile sequential;
  OptimizerOptions options;
  options.simd = SimdLevel::kScalar;
  options.profile = &sequential;
  Result<OptimizeOutcome> seq = OptimizeCartesian(*catalog, options);
  ASSERT_TRUE(seq.ok());

  PassProfile parallel;
  options.profile = &parallel;
  options.parallel.num_threads = 2;
  // n = 11's widest rank is C(11,5) = 462; drop the fan-out floor so the
  // ranked driver actually engages (and records per-rank wall ticks).
  options.parallel.min_parallel_rank = 64;
  Result<OptimizeOutcome> par = OptimizeCartesian(*catalog, options);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par->cost, seq->cost);

  // Folding at rank barriers loses no operations: the parallel profile
  // observes the identical operation stream, just attributed from many
  // workers.
  EXPECT_EQ(parallel.passes, 1u);
  EXPECT_EQ(TotalSubsets(parallel), TotalSubsets(sequential));
  EXPECT_EQ(TotalLoopIterations(parallel),
            TotalLoopIterations(sequential));
  EXPECT_EQ(TotalKappa2(parallel), TotalKappa2(sequential));
  // The parallel driver records per-rank wall ticks (the denominator that
  // distinguishes CPU time from elapsed time on fanned ranks).
  std::uint64_t wall_ticks = 0;
  for (const RankPhaseStats& rank : parallel.ranks) {
    wall_ticks += rank.wall_ticks;
  }
  EXPECT_GT(wall_ticks, 0u);
}

TEST(ProfiledPassTest, ThresholdLadderAccumulatesPasses) {
  // A ladder that needs several passes reuses one sink; every pass lands.
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(8, /*seed=*/11);
  PassProfile profile;
  OptimizerOptions options;
  options.profile = &profile;
  ThresholdLadderOptions ladder;
  ladder.initial_threshold = 1e-3f;  // fails; the ladder must climb
  Result<LadderOutcome> outcome = OptimizeJoinWithThresholds(
      instance.catalog, instance.graph, options, ladder);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->passes, 1);
  EXPECT_EQ(profile.passes, static_cast<std::uint64_t>(outcome->passes));
}

TEST(PerfCountersTest, GracefulWhenUnavailable) {
  // perf_event_open is often forbidden (perf_event_paranoid, containers,
  // non-Linux). The group must degrade silently: failed Open leaves the
  // group invalid, Read returns an empty sample, Close is idempotent.
  HwCounterGroup group;
  const bool opened = group.Open();
  if (!opened) {
    EXPECT_FALSE(group.available());
    EXPECT_EQ(group.valid_mask(), 0u);
    const HwSample sample = group.Read();
    EXPECT_FALSE(sample.any());
  } else {
    EXPECT_TRUE(group.available());
    EXPECT_NE(group.valid_mask() & 1u, 0u);  // cycles leader granted
    // Burn some cycles; the delta must be observable on the leader.
    volatile double sink = 1;
    for (int i = 0; i < 100000; ++i) sink = sink * 1.0000001 + 0.5;
    const HwSample sample = group.Read();
    EXPECT_GT(sample[HwCounter::kCycles], 0u);
  }
  group.Close();
  group.Close();
  EXPECT_FALSE(group.available());
}

TEST(PerfCountersTest, SampleArithmetic) {
  HwSample a;
  a.values[0] = 100;
  a.values[3] = 7;
  HwSample b;
  b.values[0] = 11;
  EXPECT_TRUE(a.any());
  a += b;
  EXPECT_EQ(a.values[0], 111u);
  const HwSample delta = HwSample::Delta(b, a);
  EXPECT_EQ(delta.values[0], 100u);
  EXPECT_EQ(delta.values[3], 7u);
  // Saturating: a counter that appears to run backwards clamps to zero.
  const HwSample clamped = HwSample::Delta(a, b);
  EXPECT_EQ(clamped.values[0], 0u);
}

TEST(ProfilerTest, ScopesRecordAndExport) {
  Profiler profiler;
  {
    ProfileScope scope(&profiler, "unit_test_scope");
    volatile double sink = 1;
    for (int i = 0; i < 10000; ++i) sink = sink * 1.0000001 + 0.5;
  }
  {
    ProfileScope scope(&profiler, "unit_test_scope");
  }
  const std::string json = profiler.ToJson();
  EXPECT_NE(json.find("\"unit_test_scope\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\":2"), std::string::npos);
  EXPECT_NE(json.find("\"backend\":"), std::string::npos);
  EXPECT_FALSE(profiler.ToString().empty());
  profiler.Reset();
  EXPECT_EQ(profiler.ToJson().find("unit_test_scope"), std::string::npos);
}

TEST(ProfilerTest, NullProfilerScopeIsInert) {
  ASSERT_EQ(GlobalProfiler(), nullptr);
  ProfileScope scope("no_profiler_installed");
  SUCCEED();  // nothing recorded anywhere, nothing crashes
}

TEST(ProfilerTest, GlobalHookInstallsAndFolds) {
  Profiler profiler;
  SetGlobalProfiler(&profiler);
  ASSERT_EQ(GlobalProfiler(), &profiler);

  // A profiled pass folds its DP attribution into the global profiler too.
  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(8, 100.0));
  ASSERT_TRUE(catalog.ok());
  PassProfile sink;
  OptimizerOptions options;
  options.profile = &sink;
  Result<OptimizeOutcome> outcome = OptimizeCartesian(*catalog, options);
  ASSERT_TRUE(outcome.ok());
  SetGlobalProfiler(nullptr);

  EXPECT_EQ(profiler.pass_profile().passes, 1u);
  EXPECT_EQ(TotalSubsets(profiler.pass_profile()), TotalSubsets(sink));
  EXPECT_NE(profiler.ToJson().find("\"dp\":"), std::string::npos);
}

TEST(ProfilerTest, OptimizeQuerySurfacesProfile) {
  const Catalog catalog = testing::Table1Catalog();
  const JoinGraph graph = testing::Figure3Graph();

  QueryOptimizerOptions options;
  options.collect_report = true;
  options.collect_profile = true;
  Result<OptimizedQuery> optimized = OptimizeQuery(catalog, graph, options);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(optimized->report.has_value());
  ASSERT_TRUE(optimized->report->profile.has_value());
  const PassProfile& profile = *optimized->report->profile;
  EXPECT_EQ(profile.passes, 1u);
  EXPECT_GT(profile.TotalTicks(), 0u);
  // n = 4: 2^4 - 4 - 1 = 11 non-singleton subsets.
  EXPECT_EQ(TotalSubsets(profile), 11u);
  EXPECT_NE(optimized->ReportToString().find("dp profile"),
            std::string::npos);

  // Without the opt-in, no profile is collected (and none without report).
  options.collect_profile = false;
  Result<OptimizedQuery> plain = OptimizeQuery(catalog, graph, options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(plain->report.has_value());
  EXPECT_FALSE(plain->report->profile.has_value());
}

}  // namespace
}  // namespace blitz
