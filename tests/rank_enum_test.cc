#include "parallel/rank_enum.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

namespace blitz {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(4, 2), 6u);
  EXPECT_EQ(Binomial(13, 6), 1716u);
  EXPECT_EQ(Binomial(18, 9), 48620u);
  EXPECT_EQ(Binomial(30, 15), 155117520u);
}

TEST(BinomialTest, OutOfRangeIsZero) {
  EXPECT_EQ(Binomial(-1, 0), 0u);
  EXPECT_EQ(Binomial(5, -1), 0u);
  EXPECT_EQ(Binomial(5, 6), 0u);
  EXPECT_EQ(Binomial(64, 1), 0u);
}

TEST(BinomialTest, SymmetryAndPascal) {
  for (int n = 1; n <= kMaxRankBits; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n, n - k)) << n << " " << k;
      if (k >= 1 && k <= n - 1) {
        EXPECT_EQ(Binomial(n, k),
                  Binomial(n - 1, k - 1) + Binomial(n - 1, k));
      }
    }
  }
}

TEST(BinomialTest, LargestEntryIsExact) {
  // C(63, 31) overflows 32 bits by far but fits uint64; spot-check against
  // the known value.
  EXPECT_EQ(Binomial(63, 31), 916312070471295267u);
}

TEST(RankEnumTest, FirstKSubset) {
  EXPECT_EQ(FirstKSubset(1), 0b1u);
  EXPECT_EQ(FirstKSubset(3), 0b111u);
  EXPECT_EQ(FirstKSubset(0), 0u);
}

TEST(RankEnumTest, GosperEnumeratesRankInIncreasingOrder) {
  for (int n = 1; n <= 14; ++n) {
    for (int k = 1; k <= n; ++k) {
      const std::uint64_t count = Binomial(n, k);
      std::uint64_t v = FirstKSubset(k);
      std::uint64_t prev = 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        EXPECT_EQ(std::popcount(v), k);
        EXPECT_LT(v, std::uint64_t{1} << n);
        if (i > 0) EXPECT_GT(v, prev);
        prev = v;
        if (i + 1 < count) v = NextKSubset(v);
      }
      // The last subset of the rank is the top-aligned one.
      EXPECT_EQ(prev, FirstKSubset(k) << (n - k));
    }
  }
}

TEST(RankEnumTest, NthKSubsetMatchesEnumeration) {
  for (int n = 1; n <= 12; ++n) {
    for (int k = 1; k <= n; ++k) {
      const std::uint64_t count = Binomial(n, k);
      std::uint64_t v = FirstKSubset(k);
      for (std::uint64_t r = 0; r < count; ++r) {
        EXPECT_EQ(NthKSubset(n, k, r), v) << "n=" << n << " k=" << k
                                          << " r=" << r;
        if (r + 1 < count) v = NextKSubset(v);
      }
    }
  }
}

TEST(RankEnumTest, NthKSubsetJumpsIntoWideRanks) {
  // Spot-check positions deep inside ranks too large to enumerate fully.
  EXPECT_EQ(NthKSubset(40, 20, 0), FirstKSubset(20));
  EXPECT_EQ(NthKSubset(40, 20, Binomial(40, 20) - 1),
            FirstKSubset(20) << 20);
  // Walking Gosper from an unranked start stays consistent with unranking.
  const std::uint64_t r = Binomial(40, 20) / 3;
  std::uint64_t v = NthKSubset(40, 20, r);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    v = NextKSubset(v);
    EXPECT_EQ(v, NthKSubset(40, 20, r + i));
  }
}

TEST(RankEnumTest, ContiguousChunksTileEachRank) {
  // The parallel driver's sharding: chunk c covers combination indexes
  // [count*c/C, count*(c+1)/C). Together the chunks must enumerate the rank
  // exactly once, in order.
  const int n = 11;
  for (int k = 2; k <= n; ++k) {
    const std::uint64_t count = Binomial(n, k);
    for (const int chunks : {1, 2, 3, 7, 8}) {
      std::vector<std::uint64_t> seen;
      for (int c = 0; c < chunks; ++c) {
        const std::uint64_t begin =
            count * static_cast<std::uint64_t>(c) /
            static_cast<std::uint64_t>(chunks);
        const std::uint64_t end =
            count * (static_cast<std::uint64_t>(c) + 1) /
            static_cast<std::uint64_t>(chunks);
        if (begin == end) continue;
        std::uint64_t v = NthKSubset(n, k, begin);
        for (std::uint64_t i = begin; i < end; ++i) {
          seen.push_back(v);
          if (i + 1 < end) v = NextKSubset(v);
        }
      }
      ASSERT_EQ(seen.size(), count) << "k=" << k << " chunks=" << chunks;
      std::uint64_t v = FirstKSubset(k);
      for (std::uint64_t i = 0; i < count; ++i) {
        EXPECT_EQ(seen[i], v);
        if (i + 1 < count) v = NextKSubset(v);
      }
    }
  }
}

}  // namespace
}  // namespace blitz
