#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(HarmonicTest, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(2), 1.5);
  EXPECT_NEAR(HarmonicNumber(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(HarmonicTest, LargeValuesMatchApproximation) {
  // H_k ~ ln k + gamma (the Section 3.3 approximation from [Knu73]).
  const std::uint64_t k = 1u << 20;
  EXPECT_NEAR(HarmonicNumber(k), std::log(static_cast<double>(k)) +
                                     kEulerGamma,
              1e-5);
}

TEST(HarmonicTest, ExactAndApproximateAgreeAtBoundary) {
  // The implementation switches methods at 1024; both must agree there.
  double exact = 0;
  for (int i = 1; i <= 1025; ++i) exact += 1.0 / i;
  EXPECT_NEAR(HarmonicNumber(1025), exact, 1e-6);
}

TEST(PowTest, Basics) {
  EXPECT_DOUBLE_EQ(Pow2(0), 1.0);
  EXPECT_DOUBLE_EQ(Pow2(10), 1024.0);
  EXPECT_DOUBLE_EQ(Pow3(0), 1.0);
  EXPECT_DOUBLE_EQ(Pow3(3), 27.0);
}

TEST(Formula3Test, ComputesWeightedSum) {
  // 3^n t_loop + (ln2/2) n 2^n t_cond + 2^n t_subset.
  const int n = 4;
  const double expected = 81 * 2.0 + 0.5 * std::log(2.0) * 4 * 16 * 3.0 +
                          16 * 5.0;
  EXPECT_NEAR(Formula3(n, 2.0, 3.0, 5.0), expected, 1e-9);
}

TEST(ExpectedCondCountTest, MatchesClosedForm) {
  const int n = 10;
  const double expected =
      0.5 * std::log(2.0) * n * 1024 + kEulerGamma * 1024;
  EXPECT_NEAR(ExpectedCondCount(n), expected, 1e-9);
}

TEST(GeometricMeanTest, Basics) {
  const double values[] = {1, 100};
  EXPECT_NEAR(GeometricMean(values, 2), 10.0, 1e-12);
  const double same[] = {7, 7, 7};
  EXPECT_NEAR(GeometricMean(same, 3), 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(GeometricMean(values, 0), 0.0);
}

TEST(Solve3x3Test, SolvesRegularSystem) {
  double a[3][3] = {{2, 0, 0}, {0, 3, 0}, {0, 0, 4}};
  double b[3] = {4, 9, 16};
  double x[3];
  ASSERT_TRUE(Solve3x3(a, b, x));
  EXPECT_NEAR(x[0], 2, 1e-12);
  EXPECT_NEAR(x[1], 3, 1e-12);
  EXPECT_NEAR(x[2], 4, 1e-12);
}

TEST(Solve3x3Test, NeedsPivoting) {
  double a[3][3] = {{0, 1, 0}, {1, 0, 0}, {0, 0, 1}};
  double b[3] = {5, 7, 9};
  double x[3];
  ASSERT_TRUE(Solve3x3(a, b, x));
  EXPECT_NEAR(x[0], 7, 1e-12);
  EXPECT_NEAR(x[1], 5, 1e-12);
  EXPECT_NEAR(x[2], 9, 1e-12);
}

TEST(Solve3x3Test, DetectsSingularSystem) {
  double a[3][3] = {{1, 2, 3}, {2, 4, 6}, {1, 1, 1}};
  double b[3] = {1, 2, 3};
  double x[3];
  EXPECT_FALSE(Solve3x3(a, b, x));
}

TEST(FitFormula3Test, RecoversExactCoefficients) {
  // Generate synthetic timings from known constants and refit.
  const double t_loop = 2e-9;
  const double t_cond = 7e-9;
  const double t_subset = 11e-9;
  int ns[8];
  double times[8];
  for (int i = 0; i < 8; ++i) {
    ns[i] = 6 + i;
    times[i] = Formula3(ns[i], t_loop, t_cond, t_subset);
  }
  double fl = 0;
  double fc = 0;
  double fs = 0;
  ASSERT_TRUE(FitFormula3(ns, times, 8, &fl, &fc, &fs));
  EXPECT_NEAR(fl, t_loop, 1e-12);
  EXPECT_NEAR(fc, t_cond, 1e-10);
  EXPECT_NEAR(fs, t_subset, 1e-9);
}

TEST(FitFormula3Test, RejectsTooFewSamples) {
  int ns[2] = {5, 6};
  double times[2] = {1, 2};
  double a = 0;
  double b = 0;
  double c = 0;
  EXPECT_FALSE(FitFormula3(ns, times, 2, &a, &b, &c));
}

}  // namespace
}  // namespace blitz
