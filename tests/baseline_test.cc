#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "baseline/bruteforce.h"
#include "baseline/dpsize.h"
#include "baseline/dpsub.h"
#include "baseline/greedy.h"
#include "baseline/leftdeep.h"
#include "baseline/random_plans.h"
#include "core/optimizer.h"
#include "plan/evaluate.h"
#include "plan/plan.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::Figure3Graph;
using ::blitz::testing::MakeRandomInstance;
using ::blitz::testing::Table1Catalog;

// --------------------------------------------------------------------------
// Left-deep DP.
// --------------------------------------------------------------------------

TEST(LeftDeepTest, ProducesLeftDeepPlanWithCorrectCost) {
  const auto instance = MakeRandomInstance(8, 1);
  Result<LeftDeepResult> result = OptimizeLeftDeep(
      instance.catalog, instance.graph, CostModelKind::kNaive);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan.IsLeftDeep());
  EXPECT_EQ(result->plan.relations(), instance.catalog.AllRelations());
  const double evaluated = EvaluateCost(result->plan, instance.catalog,
                                        instance.graph,
                                        CostModelKind::kNaive);
  EXPECT_NEAR(evaluated, result->cost, 1e-9 * std::max(1.0, result->cost));
}

TEST(LeftDeepTest, NeverBeatsBushyOptimum) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto instance = MakeRandomInstance(8, seed);
    Result<LeftDeepResult> left_deep = OptimizeLeftDeep(
        instance.catalog, instance.graph, CostModelKind::kNaive);
    Result<BruteForceResult> bushy = OptimizeBruteForce(
        instance.catalog, instance.graph, CostModelKind::kNaive);
    ASSERT_TRUE(left_deep.ok());
    ASSERT_TRUE(bushy.ok());
    EXPECT_GE(left_deep->cost, bushy->cost * (1 - 1e-9)) << "seed " << seed;
  }
}

TEST(LeftDeepTest, OptimalAmongLeftDeepPlans) {
  // Compare against DPsize restricted to left-deep plans.
  const auto instance = MakeRandomInstance(7, 3);
  Result<LeftDeepResult> left_deep = OptimizeLeftDeep(
      instance.catalog, instance.graph, CostModelKind::kSortMerge);
  DpSizeOptions options;
  options.left_deep_only = true;
  Result<DpSizeResult> dpsize = OptimizeDpSize(
      instance.catalog, instance.graph, CostModelKind::kSortMerge, options);
  ASSERT_TRUE(left_deep.ok());
  ASSERT_TRUE(dpsize.ok());
  EXPECT_NEAR(left_deep->cost, dpsize->cost,
              1e-9 * std::max(1.0, dpsize->cost));
}

TEST(LeftDeepTest, JoinEnumerationCountIsNTimesTwoToTheN) {
  const auto instance = MakeRandomInstance(8, 2);
  Result<LeftDeepResult> result = OptimizeLeftDeep(
      instance.catalog, instance.graph, CostModelKind::kNaive);
  ASSERT_TRUE(result.ok());
  // Sum over non-singleton subsets of |S|: n 2^(n-1) - n (exact).
  const int n = 8;
  const std::uint64_t expected = n * (1u << (n - 1)) - n;
  EXPECT_EQ(result->joins_enumerated, expected);
}

// --------------------------------------------------------------------------
// DPsub (no Cartesian products).
// --------------------------------------------------------------------------

TEST(DpSubTest, MatchesBruteForceOnAcyclicQueriesWithoutProductAdvantage) {
  // A uniform chain where products never pay off: the product-free optimum
  // equals the unrestricted optimum.
  Result<Catalog> catalog =
      Catalog::FromCardinalities({100, 100, 100, 100, 100});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(5);
  for (int i = 0; i + 1 < 5; ++i) {
    ASSERT_TRUE(graph.AddPredicate(i, i + 1, 0.01).ok());
  }
  Result<DpSubResult> dpsub =
      OptimizeDpSubNoProducts(*catalog, graph, CostModelKind::kNaive);
  Result<BruteForceResult> brute =
      OptimizeBruteForce(*catalog, graph, CostModelKind::kNaive);
  ASSERT_TRUE(dpsub.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(dpsub->cost, brute->cost, 1e-9 * brute->cost);
  EXPECT_EQ(dpsub->plan.CountCartesianProducts(graph), 0);
}

TEST(DpSubTest, FailsOnDisconnectedGraph) {
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 10, 10});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.1).ok());
  Result<DpSubResult> result =
      OptimizeDpSubNoProducts(*catalog, graph, CostModelKind::kNaive);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DpSubTest, WorseThanBlitzsplitWhenOptimumNeedsProduct) {
  // The Section 7 point: excluding products "could harm plan quality".
  Result<Catalog> catalog = Catalog::FromCardinalities({2, 1000000, 3});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.1).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 0.1).ok());
  Result<DpSubResult> dpsub =
      OptimizeDpSubNoProducts(*catalog, graph, CostModelKind::kNaive);
  Result<OptimizeOutcome> blitz =
      OptimizeJoin(*catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(dpsub.ok());
  ASSERT_TRUE(blitz.ok());
  EXPECT_GT(dpsub->cost, static_cast<double>(blitz->cost) * 2.0);
}

TEST(DpSubTest, PlanHasNoProductsAndConnectedSubtrees) {
  const auto instance = MakeRandomInstance(9, 17, /*extra_edge_prob=*/0.2);
  Result<DpSubResult> result = OptimizeDpSubNoProducts(
      instance.catalog, instance.graph, CostModelKind::kDiskNestedLoops);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.CountCartesianProducts(instance.graph), 0);
  std::function<void(const PlanNode&)> check = [&](const PlanNode& node) {
    EXPECT_TRUE(instance.graph.IsConnected(node.set)) << node.set.ToString();
    if (node.is_leaf()) return;
    check(*node.left);
    check(*node.right);
  };
  check(result->plan.root());
}

// --------------------------------------------------------------------------
// DPsize.
// --------------------------------------------------------------------------

TEST(DpSizeTest, BushyWithProductsMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto instance = MakeRandomInstance(7, seed);
    Result<DpSizeResult> dpsize =
        OptimizeDpSize(instance.catalog, instance.graph,
                       CostModelKind::kNaive, DpSizeOptions{});
    Result<BruteForceResult> brute = OptimizeBruteForce(
        instance.catalog, instance.graph, CostModelKind::kNaive);
    ASSERT_TRUE(dpsize.ok());
    ASSERT_TRUE(brute.ok());
    EXPECT_NEAR(dpsize->cost, brute->cost, 1e-9 * brute->cost)
        << "seed " << seed;
  }
}

TEST(DpSizeTest, ExaminesMorePairsThanItCosts) {
  // The size-driven enumerator must reject overlapping pairs — the O(4^n)
  // inefficiency the paper quotes from [OL90].
  const auto instance = MakeRandomInstance(9, 4);
  Result<DpSizeResult> result = OptimizeDpSize(
      instance.catalog, instance.graph, CostModelKind::kNaive,
      DpSizeOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->pairs_examined, result->pairs_costed);
  // Valid (ordered) joins over all subsets: 3^n - 2^(n+1) + 1.
  const std::uint64_t n = 9;
  std::uint64_t pow3 = 1;
  for (std::uint64_t i = 0; i < n; ++i) pow3 *= 3;
  EXPECT_EQ(result->pairs_costed, pow3 - (std::uint64_t{2} << n) + 1);
}

TEST(DpSizeTest, NoProductModeFailsOnDisconnectedGraph) {
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 10});
  ASSERT_TRUE(catalog.ok());
  const JoinGraph graph(2);
  DpSizeOptions options;
  options.allow_cartesian_products = false;
  Result<DpSizeResult> result = OptimizeDpSize(
      *catalog, graph, CostModelKind::kNaive, options);
  EXPECT_FALSE(result.ok());
}

TEST(DpSizeTest, NoProductModeMatchesDpSub) {
  const auto instance = MakeRandomInstance(8, 12, /*extra_edge_prob=*/0.3);
  DpSizeOptions options;
  options.allow_cartesian_products = false;
  Result<DpSizeResult> dpsize = OptimizeDpSize(
      instance.catalog, instance.graph, CostModelKind::kNaive, options);
  Result<DpSubResult> dpsub = OptimizeDpSubNoProducts(
      instance.catalog, instance.graph, CostModelKind::kNaive);
  ASSERT_TRUE(dpsize.ok());
  ASSERT_TRUE(dpsub.ok());
  EXPECT_NEAR(dpsize->cost, dpsub->cost, 1e-9 * dpsub->cost);
}

TEST(DpSizeTest, LeftDeepModeMatchesLeftDeepDp) {
  const auto instance = MakeRandomInstance(8, 9);
  DpSizeOptions options;
  options.left_deep_only = true;
  Result<DpSizeResult> dpsize = OptimizeDpSize(
      instance.catalog, instance.graph, CostModelKind::kNaive, options);
  Result<LeftDeepResult> left_deep = OptimizeLeftDeep(
      instance.catalog, instance.graph, CostModelKind::kNaive);
  ASSERT_TRUE(dpsize.ok());
  ASSERT_TRUE(left_deep.ok());
  EXPECT_TRUE(dpsize->plan.IsLeftDeep());
  EXPECT_NEAR(dpsize->cost, left_deep->cost, 1e-9 * left_deep->cost);
}

// --------------------------------------------------------------------------
// Greedy.
// --------------------------------------------------------------------------

TEST(GreedyTest, ProducesValidPlanCoveringAllRelations) {
  const auto instance = MakeRandomInstance(10, 6);
  for (const GreedyCriterion criterion :
       {GreedyCriterion::kMinOutputCardinality,
        GreedyCriterion::kMinCostIncrement}) {
    Result<GreedyResult> result = OptimizeGreedy(
        instance.catalog, instance.graph, CostModelKind::kNaive, criterion);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->plan.relations(), instance.catalog.AllRelations());
    const double evaluated = EvaluateCost(
        result->plan, instance.catalog, instance.graph, CostModelKind::kNaive);
    EXPECT_NEAR(evaluated, result->cost, 1e-9 * std::max(1.0, evaluated));
  }
}

TEST(GreedyTest, NeverBeatsExhaustiveSearch) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto instance = MakeRandomInstance(8, seed);
    Result<GreedyResult> greedy = OptimizeGreedy(
        instance.catalog, instance.graph, CostModelKind::kNaive,
        GreedyCriterion::kMinCostIncrement);
    Result<BruteForceResult> brute = OptimizeBruteForce(
        instance.catalog, instance.graph, CostModelKind::kNaive);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(brute.ok());
    EXPECT_GE(greedy->cost, brute->cost * (1 - 1e-9)) << "seed " << seed;
  }
}

TEST(GreedyTest, FindsOptimumOnEasyChain) {
  // Uniform chain where the greedy choice is optimal at every step.
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 10, 10, 10});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(4);
  for (int i = 0; i + 1 < 4; ++i) {
    ASSERT_TRUE(graph.AddPredicate(i, i + 1, 0.05).ok());
  }
  Result<GreedyResult> greedy = OptimizeGreedy(
      *catalog, graph, CostModelKind::kNaive,
      GreedyCriterion::kMinOutputCardinality);
  Result<BruteForceResult> brute =
      OptimizeBruteForce(*catalog, graph, CostModelKind::kNaive);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(greedy->cost, brute->cost, 1e-9 * brute->cost);
}

// --------------------------------------------------------------------------
// Random plan generation / sampling.
// --------------------------------------------------------------------------

TEST(RandomPlansTest, RandomBushyPlanIsValid) {
  Rng rng(5);
  const RelSet all = RelSet::FirstN(9);
  for (int trial = 0; trial < 50; ++trial) {
    const Plan plan = RandomBushyPlan(all, &rng);
    EXPECT_EQ(plan.relations(), all);
    EXPECT_EQ(plan.NumLeaves(), 9);
  }
}

TEST(RandomPlansTest, RandomBushyPlansVary) {
  Rng rng(6);
  const RelSet all = RelSet::FirstN(8);
  const Plan first = RandomBushyPlan(all, &rng);
  bool saw_different = false;
  for (int trial = 0; trial < 20 && !saw_different; ++trial) {
    saw_different = !first.StructurallyEquals(RandomBushyPlan(all, &rng));
  }
  EXPECT_TRUE(saw_different);
}

TEST(RandomPlansTest, RandomLeftDeepPlanIsLeftDeep) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Plan plan = RandomLeftDeepPlan(RelSet::FirstN(7), &rng);
    EXPECT_TRUE(plan.IsLeftDeep());
    EXPECT_EQ(plan.NumLeaves(), 7);
  }
}

TEST(RandomPlansTest, SamplingImprovesWithMoreSamples) {
  const auto instance = MakeRandomInstance(9, 8);
  Rng rng1(1);
  Rng rng2(1);
  Result<RandomSamplingResult> few = OptimizeByRandomSampling(
      instance.catalog, instance.graph, CostModelKind::kNaive, 5, &rng1);
  Result<RandomSamplingResult> many = OptimizeByRandomSampling(
      instance.catalog, instance.graph, CostModelKind::kNaive, 500, &rng2);
  ASSERT_TRUE(few.ok());
  ASSERT_TRUE(many.ok());
  // With the same starting stream, the 500-sample run has seen a superset
  // of the candidate plans drawn by the 5-sample run.
  EXPECT_LE(many->cost, few->cost);
  EXPECT_GE(many->cost, 0.0);
}

TEST(RandomPlansTest, SamplingNeverBeatsExhaustive) {
  const auto instance = MakeRandomInstance(8, 9);
  Rng rng(3);
  Result<RandomSamplingResult> sampled = OptimizeByRandomSampling(
      instance.catalog, instance.graph, CostModelKind::kNaive, 200, &rng);
  Result<BruteForceResult> brute = OptimizeBruteForce(
      instance.catalog, instance.graph, CostModelKind::kNaive);
  ASSERT_TRUE(sampled.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_GE(sampled->cost, brute->cost * (1 - 1e-9));
}

TEST(RandomPlansTest, RejectsBadArguments) {
  const auto instance = MakeRandomInstance(4, 1);
  Rng rng(1);
  EXPECT_FALSE(OptimizeByRandomSampling(instance.catalog, instance.graph,
                                        CostModelKind::kNaive, 0, &rng)
                   .ok());
}

}  // namespace
}  // namespace blitz
