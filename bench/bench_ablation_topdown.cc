// The constant-factor argument of the paper against rule-based top-down
// search ([GM93] Volcano, Section 2): both blitzsplit's bottom-up loop and
// a memoized top-down search visit the same O(3^n) valid splits, but the
// bottom-up realization is a few machine instructions per split while
// top-down pays recursion, memo checks, and (with cost bounds) group
// re-exploration. This bench times the two on the same workloads and
// reports the split counts.
//
// Environment knobs: BLITZ_BENCH_MIN_SECONDS (default 0.05),
// BLITZ_TOPDOWN_N (default 13).

#include <cstdio>

#include "baseline/topdown.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "query/workload.h"

namespace blitz {
namespace {

int Run() {
  const int n = BenchEnvInt("BLITZ_TOPDOWN_N", 13);
  const double min_seconds = BenchMinSeconds(0.05);
  std::printf(
      "Bottom-up blitzsplit vs top-down memo search at n = %d\n"
      "(same optimum — asserted in tests; this is a constant-factor and\n"
      "pruning-behavior comparison)\n\n",
      n);

  TextTable out;
  out.SetHeader({"topology", "mean card", "blitzsplit (ms)",
                 "top-down B&B (ms)", "top-down plain (ms)",
                 "B&B splits", "plain splits", "B&B pruned"});

  for (const Topology topology :
       {Topology::kChain, Topology::kStar, Topology::kClique}) {
    for (const double mean : {21.5, 1e4}) {
      WorkloadSpec spec;
      spec.num_relations = n;
      spec.topology = topology;
      spec.mean_cardinality = mean;
      spec.variability = 0.5;
      Result<Workload> workload = MakeWorkload(spec);
      if (!workload.ok()) continue;

      const TimingResult bottom_up = TimeIt(
          [&] {
            Result<OptimizeOutcome> r = OptimizeJoin(
                workload->catalog, workload->graph, OptimizerOptions{});
            (void)r;
          },
          min_seconds);

      TopDownOptions bounds;
      TopDownOptions plain_options;
      plain_options.use_cost_bounds = false;
      std::uint64_t bb_splits = 0;
      std::uint64_t bb_pruned = 0;
      std::uint64_t plain_splits = 0;
      const TimingResult bb_time = TimeIt(
          [&] {
            Result<TopDownResult> r =
                OptimizeTopDown(workload->catalog, workload->graph,
                                CostModelKind::kNaive, bounds);
            if (r.ok()) {
              bb_splits = r->splits_costed;
              bb_pruned = r->splits_pruned;
            }
          },
          min_seconds);
      const TimingResult plain_time = TimeIt(
          [&] {
            Result<TopDownResult> r =
                OptimizeTopDown(workload->catalog, workload->graph,
                                CostModelKind::kNaive, plain_options);
            if (r.ok()) plain_splits = r->splits_costed;
          },
          min_seconds);

      out.AddRow(
          {TopologyToString(topology), StrFormat("%.3g", mean),
           StrFormat("%.1f", bottom_up.seconds_per_run * 1e3),
           StrFormat("%.1f", bb_time.seconds_per_run * 1e3),
           StrFormat("%.1f", plain_time.seconds_per_run * 1e3),
           StrFormat("%llu", static_cast<unsigned long long>(bb_splits)),
           StrFormat("%llu", static_cast<unsigned long long>(plain_splits)),
           StrFormat("%llu", static_cast<unsigned long long>(bb_pruned))});
    }
  }
  std::printf("%s\n", out.ToString().c_str());
  std::printf(
      "Reading: plain top-down costs exactly the DP's 3^n - 2^(n+1) + 1\n"
      "splits but runs slower per split; cost bounds prune some splits yet\n"
      "can re-explore groups, so their net effect is workload-dependent.\n");
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
