#include "testing/minimize.h"

#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"

namespace blitz::fuzz {
namespace {

/// Rebuilds a case from explicit parts; returns nothing if the parts no
/// longer form a valid problem (e.g. a single relation after a drop).
std::optional<FuzzCase> Rebuild(const FuzzCase& base,
                                std::vector<RelationStats> relations,
                                const std::vector<Predicate>& predicates) {
  if (relations.size() < 2) return std::nullopt;
  Result<Catalog> catalog = Catalog::Create(std::move(relations));
  if (!catalog.ok()) return std::nullopt;
  JoinGraph graph(catalog->num_relations());
  for (const Predicate& p : predicates) {
    if (!graph.AddPredicate(p.lhs, p.rhs, p.selectivity).ok()) {
      return std::nullopt;
    }
  }
  FuzzCase reduced;
  reduced.spec = base.spec;
  reduced.spec.num_relations = catalog->num_relations();
  reduced.catalog = std::move(catalog).value();
  reduced.graph = std::move(graph);
  reduced.label = base.label;
  return reduced;
}

std::vector<RelationStats> CopyRelations(const Catalog& catalog) {
  std::vector<RelationStats> relations;
  relations.reserve(catalog.num_relations());
  for (int i = 0; i < catalog.num_relations(); ++i) {
    relations.push_back(catalog.relation(i));
  }
  return relations;
}

}  // namespace

std::optional<FuzzCase> DropRelation(const FuzzCase& c, int relation) {
  const int n = c.catalog.num_relations();
  if (n <= 2 || relation < 0 || relation >= n) return std::nullopt;
  std::vector<RelationStats> relations;
  for (int i = 0; i < n; ++i) {
    if (i != relation) relations.push_back(c.catalog.relation(i));
  }
  std::vector<Predicate> predicates;
  for (const Predicate& p : c.graph.predicates()) {
    if (p.lhs == relation || p.rhs == relation) continue;
    Predicate remapped = p;
    if (remapped.lhs > relation) --remapped.lhs;
    if (remapped.rhs > relation) --remapped.rhs;
    predicates.push_back(remapped);
  }
  return Rebuild(c, std::move(relations), predicates);
}

std::optional<FuzzCase> DropPredicate(const FuzzCase& c, int predicate_index) {
  const auto& predicates = c.graph.predicates();
  if (predicate_index < 0 ||
      predicate_index >= static_cast<int>(predicates.size())) {
    return std::nullopt;
  }
  std::vector<Predicate> kept;
  for (int i = 0; i < static_cast<int>(predicates.size()); ++i) {
    if (i != predicate_index) kept.push_back(predicates[i]);
  }
  return Rebuild(c, CopyRelations(c.catalog), kept);
}

std::optional<FuzzCase> SnapSelectivity(const FuzzCase& c,
                                        int predicate_index) {
  const auto& predicates = c.graph.predicates();
  if (predicate_index < 0 ||
      predicate_index >= static_cast<int>(predicates.size())) {
    return std::nullopt;
  }
  std::vector<Predicate> adjusted(predicates.begin(), predicates.end());
  Predicate& p = adjusted[predicate_index];
  const double snapped =
      std::min(1.0, std::pow(10.0, std::round(std::log10(p.selectivity))));
  if (snapped == p.selectivity || !(snapped > 0.0)) return std::nullopt;
  p.selectivity = snapped;
  return Rebuild(c, CopyRelations(c.catalog), adjusted);
}

FuzzCase MinimizeCase(const FuzzCase& failing, const StillFails& still_fails) {
  FuzzCase current = failing;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int i = current.catalog.num_relations() - 1; i >= 0; --i) {
      std::optional<FuzzCase> reduced = DropRelation(current, i);
      if (reduced.has_value() && still_fails(*reduced)) {
        current = std::move(*reduced);
        progress = true;
      }
    }
    for (int i = current.graph.num_predicates() - 1; i >= 0; --i) {
      std::optional<FuzzCase> reduced = DropPredicate(current, i);
      if (reduced.has_value() && still_fails(*reduced)) {
        current = std::move(*reduced);
        progress = true;
      }
    }
    for (int i = current.graph.num_predicates() - 1; i >= 0; --i) {
      std::optional<FuzzCase> reduced = SnapSelectivity(current, i);
      if (reduced.has_value() && still_fails(*reduced)) {
        current = std::move(*reduced);
        progress = true;
      }
    }
  }
  if (current.label.empty()) current.label = current.spec.Name();
  current.label += "-min";
  return current;
}

}  // namespace blitz::fuzz
