// Extension bench (Section 7 direction): the hybrid randomized/DP optimizer
// on joins beyond comfortable exhaustive reach. For n where exhaustive
// blitzsplit still runs we report the hybrid's cost ratio to the true
// optimum; beyond that we compare against greedy. Demonstrates graceful
// scaling: exhaustive search is O(3^n), the hybrid is a handful of
// O(3^block) solves per restart.
//
// Environment knobs: BLITZ_BENCH_MIN_SECONDS (default 0.05),
// BLITZ_HYBRID_MAX_N (default 24), BLITZ_HYBRID_EXACT_MAX_N (default 16).

#include <cstdio>

#include "baseline/greedy.h"
#include "baseline/hybrid.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "query/workload.h"

namespace blitz {
namespace {

int Run() {
  const double min_seconds = BenchMinSeconds(0.05);
  const int max_n = BenchEnvInt("BLITZ_HYBRID_MAX_N", 24);
  const int exact_max_n = BenchEnvInt("BLITZ_HYBRID_EXACT_MAX_N", 16);

  std::printf(
      "Hybrid randomized/DP optimizer scaling (cycle+3 topology,\n"
      "mean cardinality 1000, variability 0.5, naive cost model,\n"
      "block size 12, 4 restarts)\n\n");

  TextTable out;
  out.SetHeader({"n", "hybrid (ms)", "exact (ms)", "hybrid/exact cost",
                 "hybrid/greedy cost"});

  for (int n = 10; n <= max_n; n += 2) {
    WorkloadSpec spec;
    spec.num_relations = n;
    spec.topology = Topology::kCyclePlus3;
    spec.mean_cardinality = 1000;
    spec.variability = 0.5;
    Result<Workload> workload = MakeWorkload(spec);
    if (!workload.ok()) continue;

    HybridOptions hybrid_options;
    hybrid_options.block_size = 12;
    hybrid_options.restarts = 4;
    double hybrid_cost = 0;
    const TimingResult hybrid_time = TimeIt(
        [&] {
          Result<HybridResult> result = OptimizeHybrid(
              workload->catalog, workload->graph, hybrid_options);
          if (result.ok()) hybrid_cost = result->cost;
        },
        min_seconds);

    std::string exact_ms = "-";
    std::string exact_ratio = "-";
    if (n <= exact_max_n) {
      double exact_cost = 0;
      const TimingResult exact_time = TimeIt(
          [&] {
            Result<OptimizeOutcome> result = OptimizeJoin(
                workload->catalog, workload->graph, OptimizerOptions{});
            if (result.ok()) exact_cost = result->cost;
          },
          min_seconds);
      exact_ms = StrFormat("%.1f", exact_time.seconds_per_run * 1e3);
      exact_ratio = StrFormat("%.3f", hybrid_cost / exact_cost);
    }

    Result<GreedyResult> greedy = OptimizeGreedy(
        workload->catalog, workload->graph, CostModelKind::kNaive,
        GreedyCriterion::kMinOutputCardinality);
    const std::string greedy_ratio =
        greedy.ok() ? StrFormat("%.3f", hybrid_cost / greedy->cost) : "-";

    out.AddRow({StrFormat("%d", n),
                StrFormat("%.1f", hybrid_time.seconds_per_run * 1e3),
                exact_ms, exact_ratio, greedy_ratio});
  }
  std::printf("%s\n", out.ToString().c_str());
  std::printf(
      "Reading: hybrid/exact near 1.000 where checkable; hybrid time grows\n"
      "mildly with n while exhaustive time multiplies ~9x per +2 relations.\n");
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
