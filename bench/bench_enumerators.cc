// Enumeration-efficiency comparison in the style of Ono & Lohman [OL90]
// (the Section 2 complexity discussion): how many candidates each
// enumerator touches, per topology, at fixed n.
//
//  * blitzsplit: ~3^n best-split loop iterations regardless of topology
//    (with the kappa'' evaluations cut down by the nested ifs);
//  * DPsize: pairs examined including overlap rejections — the O(4^n)
//    worst case;
//  * left-deep DP: n 2^(n-1) - n candidates;
//  * DPccp (2006): exactly the valid product-free joins — polynomial on
//    chains, (3^n - 2^(n+1) + 1)/2 on cliques.
//
// Environment knobs: BLITZ_ENUM_N (default 13).

#include <cstdio>

#include "baseline/dpccp.h"
#include "baseline/dpsize.h"
#include "baseline/leftdeep.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "query/workload.h"

namespace blitz {
namespace {

int Run() {
  const int n = BenchEnvInt("BLITZ_ENUM_N", 13);
  std::printf(
      "Enumerator work at n = %d (counts of candidates touched; 3^n = %.0f,"
      "\n2^n = %.0f; mean cardinality 464, variability 0.5)\n\n",
      n, Pow3(n), Pow2(n));

  TextTable out;
  out.SetHeader({"topology", "blitz loop", "blitz kappa''", "DPsize pairs",
                 "left-deep", "DPccp pairs"});

  for (const Topology topology : kPaperTopologies) {
    WorkloadSpec spec;
    spec.num_relations = n;
    spec.topology = topology;
    spec.mean_cardinality = 464;
    spec.variability = 0.5;
    Result<Workload> workload = MakeWorkload(spec);
    if (!workload.ok()) continue;

    OptimizerOptions counting;
    counting.count_operations = true;
    Result<OptimizeOutcome> blitz =
        OptimizeJoin(workload->catalog, workload->graph, counting);
    Result<DpSizeResult> dpsize =
        OptimizeDpSize(workload->catalog, workload->graph,
                       CostModelKind::kNaive, DpSizeOptions{});
    Result<LeftDeepResult> left_deep = OptimizeLeftDeep(
        workload->catalog, workload->graph, CostModelKind::kNaive);
    Result<DpCcpResult> dpccp = OptimizeDpCcp(
        workload->catalog, workload->graph, CostModelKind::kNaive);
    if (!blitz.ok() || !dpsize.ok() || !left_deep.ok() || !dpccp.ok()) {
      continue;
    }

    out.AddRow(
        {TopologyToString(topology),
         StrFormat("%llu", static_cast<unsigned long long>(
                               blitz->counters.loop_iterations)),
         StrFormat("%llu", static_cast<unsigned long long>(
                               blitz->counters.kappa2_evaluations)),
         StrFormat("%llu",
                   static_cast<unsigned long long>(dpsize->pairs_examined)),
         StrFormat("%llu", static_cast<unsigned long long>(
                               left_deep->joins_enumerated)),
         StrFormat("%llu",
                   static_cast<unsigned long long>(dpccp->ccp_pairs))});
  }
  std::printf("%s\n", out.ToString().c_str());
  std::printf(
      "Reading: blitzsplit touches 3^n splits but each costs ~a nanosecond\n"
      "and the nested ifs keep kappa'' work near the 2^n scale; DPsize\n"
      "pays the overlap-rejection tax; DPccp touches only valid\n"
      "product-free joins (cubic on chains) at the price of excluding\n"
      "products and a heavier per-candidate enumerator.\n");
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
