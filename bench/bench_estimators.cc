// Estimator regret over the Appendix workload grid: for each cardinality
// estimator (card/estimator.h) and each topology x mean-cardinality grid
// point, optimize under the estimator, then re-cost its chosen plan under
// the *true* statistics and report
//
//   regret = cost_true(plan chosen under estimator)
//          / cost_true(plan chosen under exact cardinalities)
//
// -- the Simpli-Squared question ("how much does the plan suffer for having
// optimized against wrong or absent estimates?") asked against the paper's
// own synthetic grid. paper is exact, so its regret is 1.0 by construction
// and doubles as a self-check; hist estimates from equi-depth histograms
// over synthetic base tables realizing the catalog (exec/datagen.h +
// exec/stats.h); noest optimizes with no estimates at all.
//
// Usage:
//   bench_estimators [--json <path>]   # blitz-bench-v1 (BENCH_estimators.json)
//
// Env knobs: BLITZ_ESTIMATORS_N (default 10), BLITZ_BENCH_MIN_SECONDS.
// Regret points carry unit "ratio" and ride along as context; per-call
// optimize times carry unit "ms" and are regression-gated by bench_diff.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/optimize_query.h"
#include "benchlib/bench_json.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "card/estimator.h"
#include "card/histogram.h"
#include "card/no_estimate.h"
#include "common/strings.h"
#include "exec/datagen.h"
#include "exec/stats.h"
#include "query/workload.h"

namespace blitz {
namespace {

struct Cell {
  bool ok = false;
  double regret = 0;
  double optimize_ms = 0;
};

/// Optimizes `workload` under `estimator` (null = exact paper path) and
/// returns the plan's true cost; OptimizeQuery already re-evaluates under
/// the catalog/graph statistics regardless of what the search consumed.
Result<double> TrueCostUnder(const Workload& workload,
                             const CardinalityEstimator* estimator,
                             CostModelKind model) {
  QueryOptimizerOptions options;
  options.cost_model = model;
  options.estimator = estimator;
  Result<OptimizedQuery> optimized =
      OptimizeQuery(workload.catalog, workload.graph, options);
  if (!optimized.ok()) return optimized.status();
  return optimized->cost;
}

int Run(const std::string& json_path) {
  const int n = BenchEnvInt("BLITZ_ESTIMATORS_N", 10);
  const double min_seconds = BenchMinSeconds(0.02);
  const CostModelKind model = CostModelKind::kNaive;

  BenchReport report;
  report.bench = "estimators";
  report.AddMeta("n", StrFormat("%d", n));
  report.AddMeta("cost_model", CostModelKindToString(model));

  std::printf("Estimator regret at n = %d (plan cost under true stats,\n"
              "relative to the exact-estimate optimum; naive cost model)\n\n",
              n);

  for (const Topology topology :
       {Topology::kChain, Topology::kStar, Topology::kClique}) {
    TextTable out;
    out.SetHeader({"mean card", "estimator", "regret", "optimize (ms)"});
    for (const double mean : {21.5, 1e4}) {
      WorkloadSpec spec;
      spec.num_relations = n;
      spec.topology = topology;
      spec.mean_cardinality = mean;
      spec.variability = 0.5;
      Result<Workload> workload = MakeWorkload(spec);
      if (!workload.ok()) continue;

      // The denominator: the exact plan's (true) cost.
      Result<double> exact_cost = TrueCostUnder(*workload, nullptr, model);
      if (!exact_cost.ok() || !(*exact_cost > 0)) continue;

      // Build the non-exact estimators once per workload; the histogram
      // estimator samples synthetic tables realizing the catalog.
      NoEstimateEstimator no_estimate(workload->graph);
      std::unique_ptr<SampleHistogramEstimator> histogram;
      Result<std::vector<ExecTable>> tables =
          GenerateTables(workload->catalog, workload->graph, DataGenOptions{});
      if (tables.ok()) {
        Result<std::unique_ptr<SampleHistogramEstimator>> built =
            BuildHistogramEstimator(workload->graph, *tables);
        if (built.ok()) histogram = std::move(*built);
      }

      const struct {
        EstimatorKind kind;
        const CardinalityEstimator* estimator;
      } estimators[] = {
          {EstimatorKind::kPaperFanout, nullptr},
          {EstimatorKind::kSampleHistogram, histogram.get()},
          {EstimatorKind::kNoEstimate, &no_estimate},
      };

      for (const auto& entry : estimators) {
        const char* estimator_name = EstimatorKindName(entry.kind);
        Cell cell;
        if (entry.kind == EstimatorKind::kSampleHistogram &&
            entry.estimator == nullptr) {
          // Table generation failed (it should not on this grid); skip the
          // cell rather than mislabeling the exact path as hist.
        } else {
          Result<double> cost = TrueCostUnder(*workload, entry.estimator,
                                              model);
          if (cost.ok()) {
            cell.ok = true;
            cell.regret = *cost / *exact_cost;
            const TimingResult timing = TimeIt(
                [&] {
                  (void)TrueCostUnder(*workload, entry.estimator, model);
                },
                min_seconds);
            cell.optimize_ms = timing.seconds_per_run * 1e3;
          }
        }
        out.AddRow({StrFormat("%.3g", mean), estimator_name,
                    cell.ok ? StrFormat("%.4f", cell.regret) : "failed",
                    cell.ok ? StrFormat("%.2f", cell.optimize_ms) : "-"});
        if (cell.ok) {
          const std::string prefix =
              StrFormat("%s/%s/m%.3g/n%d", estimator_name,
                        TopologyToString(topology), mean, n);
          report.AddPoint(prefix + "/regret", cell.regret, "ratio");
          report.AddPoint(prefix + "/opt", cell.optimize_ms, "ms");
        }
      }
    }
    std::printf("--- topology %s ---\n%s\n", TopologyToString(topology),
                out.ToString().c_str());
  }

  if (!json_path.empty()) {
    const Status status = WriteBenchJsonFile(report, json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu points)\n", json_path.c_str(),
                report.points.size());
  }
  return 0;
}

}  // namespace
}  // namespace blitz

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  return blitz::Run(json_path);
}
