#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(CostModelTest, NaiveIsOutputCardinality) {
  // kappa_0(R_out, R_lhs, R_rhs) = |R_out|.
  EXPECT_DOUBLE_EQ(EvalJoinCost(CostModelKind::kNaive, 240000, 400, 600),
                   240000);
  EXPECT_DOUBLE_EQ(EvalKappaPrime(CostModelKind::kNaive, 5), 5);
  EXPECT_DOUBLE_EQ(
      EvalKappaDoublePrime(CostModelKind::kNaive, 240000, 400, 600), 0);
}

TEST(CostModelTest, SortMergeFormula) {
  // kappa_sm = |L|(1+log|L|) + |R|(1+log|R|), natural log.
  const double lhs = 100;
  const double rhs = 50;
  const double expected =
      lhs * (1 + std::log(lhs)) + rhs * (1 + std::log(rhs));
  EXPECT_NEAR(EvalJoinCost(CostModelKind::kSortMerge, 12345, lhs, rhs),
              expected, 1e-9);
  // Split-independent part is zero: cost does not depend on the output.
  EXPECT_DOUBLE_EQ(EvalKappaPrime(CostModelKind::kSortMerge, 1e12), 0);
}

TEST(CostModelTest, SortMergeClampsSubUnitCardinalities) {
  // Estimated cardinalities below 1 would make log negative; the model
  // clamps to 1 so kappa'' stays non-negative (required for the nested-if
  // short-circuiting to be sound).
  EXPECT_DOUBLE_EQ(SortMergeCostModel::Aux(0.001), 1.0);
  EXPECT_DOUBLE_EQ(SortMergeCostModel::Aux(1.0), 1.0);
  EXPECT_GE(EvalKappaDoublePrime(CostModelKind::kSortMerge, 1, 0.01, 0.02),
            0.0);
}

TEST(CostModelTest, DiskNestedLoopsFormula) {
  // kappa_dnl = 2|out|/K + |L||R|/(K^2 (M-1)) + min(|L|,|R|)/K.
  const double out = 1000;
  const double lhs = 200;
  const double rhs = 300;
  const double k = kDnlBlockingFactor;
  const double m = kDnlMemoryBlocks;
  const double expected =
      2 * out / k + lhs * rhs / (k * k * (m - 1)) + std::min(lhs, rhs) / k;
  EXPECT_NEAR(EvalJoinCost(CostModelKind::kDiskNestedLoops, out, lhs, rhs),
              expected, 1e-9);
  EXPECT_NEAR(EvalKappaPrime(CostModelKind::kDiskNestedLoops, out),
              2 * out / k, 1e-12);
}

TEST(CostModelTest, MinModelIsMinOfSmAndDnl) {
  const double out = 5000;
  const double lhs = 120;
  const double rhs = 340;
  const double sm = EvalJoinCost(CostModelKind::kSortMerge, out, lhs, rhs);
  const double dnl =
      EvalJoinCost(CostModelKind::kDiskNestedLoops, out, lhs, rhs);
  EXPECT_NEAR(EvalJoinCost(CostModelKind::kMinSmDnl, out, lhs, rhs),
              std::min(sm, dnl), 1e-9);
}

TEST(CostModelTest, MinModelSwitchesWinnerWithShape) {
  // Tiny inputs, huge output: dnl pays 2|out|/K, sm does not — sm wins.
  const double sm_win = EvalJoinCost(CostModelKind::kMinSmDnl, 1e9, 10, 10);
  EXPECT_NEAR(sm_win, EvalJoinCost(CostModelKind::kSortMerge, 1e9, 10, 10),
              1e-6);
  // Small output, small inputs: dnl's terms are tiny, sm pays the sort.
  const double dnl_win =
      EvalJoinCost(CostModelKind::kMinSmDnl, 1, 1000, 1000);
  EXPECT_NEAR(dnl_win,
              EvalJoinCost(CostModelKind::kDiskNestedLoops, 1, 1000, 1000),
              1e-6);
}

TEST(CostModelTest, HashModelFormula) {
  // kappa_h = |L| + |R| + |out|; kappa' = |out|.
  EXPECT_DOUBLE_EQ(EvalJoinCost(CostModelKind::kHash, 500, 30, 70), 600);
  EXPECT_DOUBLE_EQ(EvalKappaPrime(CostModelKind::kHash, 500), 500);
  EXPECT_DOUBLE_EQ(EvalKappaDoublePrime(CostModelKind::kHash, 500, 30, 70),
                   100);
}

TEST(CostModelTest, MinAllIsMinOfThree) {
  const double out = 5000;
  const double lhs = 120;
  const double rhs = 340;
  const double sm = EvalJoinCost(CostModelKind::kSortMerge, out, lhs, rhs);
  const double dnl =
      EvalJoinCost(CostModelKind::kDiskNestedLoops, out, lhs, rhs);
  const double hash = EvalJoinCost(CostModelKind::kHash, out, lhs, rhs);
  EXPECT_NEAR(EvalJoinCost(CostModelKind::kMinAll, out, lhs, rhs),
              std::min({sm, dnl, hash}), 1e-9);
}

TEST(CostModelTest, MinAllNeverAboveMinSmDnl) {
  const double cards[] = {1, 50, 1e4, 1e8};
  for (double out : cards) {
    for (double lhs : cards) {
      for (double rhs : cards) {
        EXPECT_LE(EvalJoinCost(CostModelKind::kMinAll, out, lhs, rhs),
                  EvalJoinCost(CostModelKind::kMinSmDnl, out, lhs, rhs) *
                      (1 + 1e-12));
      }
    }
  }
}

TEST(CostModelTest, DecompositionSumsToTotal) {
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl,
        CostModelKind::kHash, CostModelKind::kMinAll}) {
    const double out = 777;
    const double lhs = 33;
    const double rhs = 44;
    EXPECT_NEAR(EvalKappaPrime(kind, out) +
                    EvalKappaDoublePrime(kind, out, lhs, rhs),
                EvalJoinCost(kind, out, lhs, rhs), 1e-9)
        << CostModelKindToString(kind);
  }
}

TEST(CostModelTest, KappaComponentsAreNonNegative) {
  // Required by the nested-if pruning (Section 3.2 assumes kappa'' >= 0).
  const double cards[] = {0.0001, 0.5, 1, 10, 1e6, 1e12};
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl,
        CostModelKind::kHash, CostModelKind::kMinAll}) {
    for (double out : cards) {
      for (double lhs : cards) {
        for (double rhs : cards) {
          EXPECT_GE(EvalKappaPrime(kind, out), 0.0);
          EXPECT_GE(EvalKappaDoublePrime(kind, out, lhs, rhs), 0.0);
        }
      }
    }
  }
}

TEST(CostModelTest, RoundTripNames) {
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl,
        CostModelKind::kHash, CostModelKind::kMinAll}) {
    Result<CostModelKind> parsed =
        ParseCostModelKind(CostModelKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(CostModelTest, ParseAliases) {
  EXPECT_TRUE(ParseCostModelKind("sortmerge").ok());
  EXPECT_TRUE(ParseCostModelKind("disk-nested-loops").ok());
  EXPECT_TRUE(ParseCostModelKind("k0").ok());
  EXPECT_FALSE(ParseCostModelKind("bogus").ok());
  EXPECT_FALSE(ParseCostModelKind("").ok());
}

TEST(CostModelTest, AuxMemoMatchesSortMergeTerm) {
  // The Appendix notes x(1+log x) can be memoized; the aux column must equal
  // the per-operand term of kappa_sm.
  const double card = 12345.0;
  EXPECT_DOUBLE_EQ(SortMergeCostModel::Aux(card),
                   card * (1 + std::log(card)));
  EXPECT_DOUBLE_EQ(MinSmDnlCostModel::Aux(card),
                   SortMergeCostModel::Aux(card));
}

}  // namespace
}  // namespace blitz
