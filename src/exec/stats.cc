#include "exec/stats.h"

#include <utility>

#include "common/status.h"

namespace blitz {

Result<std::unique_ptr<SampleHistogramEstimator>> BuildHistogramEstimator(
    const JoinGraph& graph, const std::vector<ExecTable>& tables,
    const StatsOptions& options) {
  const int n = graph.num_relations();
  if (static_cast<int>(tables.size()) != n) {
    return Status::InvalidArgument(
        "need exactly one table per graph relation");
  }
  if (options.histogram_buckets < 1) {
    return Status::InvalidArgument("histogram_buckets must be positive");
  }

  // Index tables by relation so callers may pass them in any order.
  std::vector<const ExecTable*> by_relation(static_cast<size_t>(n), nullptr);
  for (const ExecTable& table : tables) {
    const int r = table.relation_index();
    if (r < 0 || r >= n) {
      return Status::InvalidArgument("table relation index out of range");
    }
    if (by_relation[static_cast<size_t>(r)] != nullptr) {
      return Status::InvalidArgument("duplicate table for one relation");
    }
    by_relation[static_cast<size_t>(r)] = &table;
  }

  std::vector<double> rows(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rows[static_cast<size_t>(i)] =
        static_cast<double>(by_relation[static_cast<size_t>(i)]->num_rows());
  }

  const std::vector<Predicate>& predicates = graph.predicates();
  std::vector<double> edge_sels(predicates.size(), 1.0);
  for (size_t k = 0; k < predicates.size(); ++k) {
    const int pid = static_cast<int>(k);
    const ExecTable& lhs = *by_relation[static_cast<size_t>(predicates[k].lhs)];
    const ExecTable& rhs = *by_relation[static_cast<size_t>(predicates[k].rhs)];
    if (!lhs.HasColumn(pid) || !rhs.HasColumn(pid)) continue;
    const EquiDepthHistogram ha =
        EquiDepthHistogram::Build(lhs.Column(pid), options.histogram_buckets);
    const EquiDepthHistogram hb =
        EquiDepthHistogram::Build(rhs.Column(pid), options.histogram_buckets);
    edge_sels[k] = EstimateEquiJoinSelectivity(ha, hb);
  }

  return std::make_unique<SampleHistogramEstimator>(graph, std::move(rows),
                                                    std::move(edge_sels));
}

}  // namespace blitz
