#include "governor/faultpoints.h"

namespace blitz {

namespace {
std::atomic<FaultRegistry*> g_fault_registry{nullptr};
}  // namespace

FaultRegistry* GlobalFaultRegistry() {
  return g_fault_registry.load(std::memory_order_acquire);
}

void SetGlobalFaultRegistry(FaultRegistry* registry) {
  g_fault_registry.store(registry, std::memory_order_release);
}

void FaultRegistry::Arm(std::string_view point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Armed armed;
  armed.remaining_skips = spec.after;
  armed.remaining_fires = spec.times;
  armed.spec = std::move(spec);
  armed_.insert_or_assign(std::string(point), std::move(armed));
}

void FaultRegistry::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = armed_.find(point);
  if (it != armed_.end()) armed_.erase(it);
}

void FaultRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  hit_counts_.clear();
}

std::uint64_t FaultRegistry::hits(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hit_counts_.find(point);
  return it == hit_counts_.end() ? 0 : it->second;
}

std::optional<FaultSpec> FaultRegistry::Hit(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto count = hit_counts_.find(point);
  if (count == hit_counts_.end()) {
    hit_counts_.emplace(std::string(point), 1);
  } else {
    ++count->second;
  }
  auto it = armed_.find(point);
  if (it == armed_.end()) return std::nullopt;
  Armed& armed = it->second;
  if (armed.remaining_skips > 0) {
    --armed.remaining_skips;
    return std::nullopt;
  }
  if (armed.remaining_fires == 0) return std::nullopt;
  if (armed.remaining_fires > 0) --armed.remaining_fires;
  FaultSpec fired = armed.spec;
  if (armed.remaining_fires == 0) armed_.erase(it);
  return fired;
}

}  // namespace blitz
