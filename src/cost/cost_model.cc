#include "cost/cost_model.h"

#include <string>

namespace blitz {

const char* CostModelKindToString(CostModelKind kind) {
  switch (kind) {
    case CostModelKind::kNaive:
      return "naive";
    case CostModelKind::kSortMerge:
      return "sm";
    case CostModelKind::kDiskNestedLoops:
      return "dnl";
    case CostModelKind::kMinSmDnl:
      return "min";
    case CostModelKind::kHash:
      return "hash";
    case CostModelKind::kMinAll:
      return "minall";
  }
  return "unknown";
}

Result<CostModelKind> ParseCostModelKind(std::string_view s) {
  if (s == "naive" || s == "k0" || s == "kappa0") return CostModelKind::kNaive;
  if (s == "sm" || s == "sortmerge" || s == "sort-merge") {
    return CostModelKind::kSortMerge;
  }
  if (s == "dnl" || s == "disknestedloops" || s == "disk-nested-loops") {
    return CostModelKind::kDiskNestedLoops;
  }
  if (s == "min" || s == "minsmdnl" || s == "min-sm-dnl") {
    return CostModelKind::kMinSmDnl;
  }
  if (s == "hash" || s == "h") return CostModelKind::kHash;
  if (s == "minall" || s == "min-all") return CostModelKind::kMinAll;
  return Status::InvalidArgument("unknown cost model: " + std::string(s));
}

double EvalJoinCost(CostModelKind kind, double out_card, double lhs_card,
                    double rhs_card) {
  return EvalKappaPrime(kind, out_card) +
         EvalKappaDoublePrime(kind, out_card, lhs_card, rhs_card);
}

double EvalKappaPrime(CostModelKind kind, double out_card) {
  return DispatchCostModel(
      kind, [&](auto model) { return model.KappaPrime(out_card); });
}

double EvalKappaDoublePrime(CostModelKind kind, double out_card,
                            double lhs_card, double rhs_card) {
  return DispatchCostModel(kind, [&](auto model) {
    using Model = decltype(model);
    const double lhs_aux = Model::Aux(lhs_card);
    const double rhs_aux = Model::Aux(rhs_card);
    return model.KappaDoublePrime(out_card, lhs_card, rhs_card, lhs_aux,
                                  rhs_aux);
  });
}

}  // namespace blitz
