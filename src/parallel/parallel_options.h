#ifndef BLITZ_PARALLEL_PARALLEL_OPTIONS_H_
#define BLITZ_PARALLEL_PARALLEL_OPTIONS_H_

#include <cstdint>
#include <thread>

#include "common/status.h"
#include "parallel/rank_enum.h"

namespace blitz {

/// Multicore configuration for one blitzsplit DP pass. The paper's DP is
/// embarrassingly parallel within a cardinality rank — every subset of
/// cardinality k depends only on subsets of cardinality < k — so the
/// rank-synchronous driver (parallel/blitzsplit_ranked.h) shards each rank
/// across a fixed-size thread pool with one barrier per rank.
///
/// The default configuration (num_threads = 1) is exactly the sequential
/// optimizer: no pool is created, no extra branch runs in the subset loop,
/// and the classic integer-order driver is used unchanged.
struct ParallelOptimizerOptions {
  /// Total threads working on a pass, including the calling thread (which
  /// always participates). 1 = sequential (default); 0 = one per hardware
  /// thread.
  int num_threads = 1;

  /// Minimum number of subsets C(n,k) a cardinality-k rank must contain to
  /// be fanned out; smaller ranks run on the calling thread, where the
  /// dispatch barrier would cost more than it buys. This also gates the
  /// whole pass: a problem too small for *any* rank to qualify (the widest
  /// rank is C(n, n/2)) takes the sequential integer-order code path with
  /// zero new overhead. The default keeps every n <= 13 sequential
  /// (C(13,6) = 1716 < 2048) while n = 18 fans out ranks 4..14.
  std::uint64_t min_parallel_rank = 2048;

  /// num_threads with 0 resolved to the hardware thread count (at least 1).
  int EffectiveThreads() const {
    if (num_threads > 1) return num_threads;
    if (num_threads == 1) return 1;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<int>(hw) : 1;
  }

  /// True when a pass over n relations should use the rank-synchronous
  /// driver: more than one effective thread and at least one rank wide
  /// enough to fan out.
  bool ShouldParallelize(int n) const {
    return EffectiveThreads() > 1 && n >= 2 &&
           Binomial(n, n / 2) >= min_parallel_rank;
  }

  /// Canonical validation, folded into OptimizerOptions::Validate().
  Status Validate() const {
    if (num_threads < 0 || num_threads > kMaxNumThreads) {
      return Status::InvalidArgument(
          "parallel.num_threads must be in [0, 1024] (0 = auto)");
    }
    if (min_parallel_rank == 0) {
      return Status::InvalidArgument(
          "parallel.min_parallel_rank must be >= 1");
    }
    return Status::OK();
  }

  /// Sanity cap on explicit thread requests.
  static constexpr int kMaxNumThreads = 1024;
};

}  // namespace blitz

#endif  // BLITZ_PARALLEL_PARALLEL_OPTIONS_H_
