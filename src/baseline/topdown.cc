#include "baseline/topdown.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <limits>
#include <vector>

#include "common/check.h"

namespace blitz {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Group {
  double cost = kInf;          ///< Best plan found so far.
  double explored_limit = -1;  ///< Largest budget this group was explored
                               ///< under (-1: never explored).
  std::uint64_t best_lhs = 0;
};

struct Search {
  const JoinGraph* graph;
  CostModelKind cost_model;
  TopDownOptions options;
  std::vector<double> cards;
  std::vector<Group> memo;
  TopDownResult* result;

  /// Optimizes group `s` under the given cost budget: returns the cheapest
  /// plan cost found, which is proven optimal if it is below `limit`;
  /// otherwise only "no plan cheaper than `limit` exists" is established.
  double Solve(std::uint64_t s, double limit) {
    if ((s & (s - 1)) == 0) return 0.0;
    Group& group = memo[s];
    // A previous exploration either proved optimality (cost below its
    // budget) or established cost >= explored_limit; both make re-work
    // unnecessary when the new budget is no larger.
    if (group.explored_limit >= 0 &&
        (group.cost < group.explored_limit || limit <= group.explored_limit)) {
      return group.cost;
    }
    ++result->groups_explored;
    double budget = options.use_cost_bounds ? limit : kInf;
    for (std::uint64_t lhs = s & (~s + 1); lhs != s; lhs = s & (lhs - s)) {
      const std::uint64_t rhs = s ^ lhs;
      if (!options.allow_cartesian_products &&
          !graph->AnyEdgeSpans(RelSet::FromWord(lhs),
                               RelSet::FromWord(rhs))) {
        continue;
      }
      const double kappa =
          EvalJoinCost(cost_model, cards[s], cards[lhs], cards[rhs]);
      ++result->splits_costed;
      if (kappa >= budget) {
        ++result->splits_pruned;
        continue;
      }
      const double lhs_cost = Solve(lhs, budget - kappa);
      if (kappa + lhs_cost >= budget) {
        ++result->splits_pruned;
        continue;
      }
      const double rhs_cost = Solve(rhs, budget - kappa - lhs_cost);
      const double total = kappa + lhs_cost + rhs_cost;
      if (total < group.cost) {
        group.cost = total;
        group.best_lhs = lhs;
      }
      if (options.use_cost_bounds && group.cost < budget) {
        budget = group.cost;  // tighten the bound to the incumbent
      }
    }
    group.explored_limit = std::max(group.explored_limit, limit);
    return group.cost;
  }
};

}  // namespace

Result<TopDownResult> OptimizeTopDown(const Catalog& catalog,
                                      const JoinGraph& graph,
                                      CostModelKind cost_model,
                                      const TopDownOptions& options) {
  const int n = catalog.num_relations();
  if (graph.num_relations() != n) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  const std::uint64_t table_size = std::uint64_t{1} << n;

  TopDownResult result;
  Search search;
  search.graph = &graph;
  search.cost_model = cost_model;
  search.options = options;
  search.memo.assign(table_size, Group{});
  search.result = &result;
  std::vector<double> base_cards(n);
  for (int i = 0; i < n; ++i) base_cards[i] = catalog.cardinality(i);
  ComputeAllCardinalities(graph, base_cards, &search.cards);

  const std::uint64_t full = table_size - 1;
  result.cost = search.Solve(full, kInf);
  if (!(result.cost < kInf)) {
    return Status::FailedPrecondition(
        "no plan found (disconnected graph with products disallowed?)");
  }

  std::function<Plan(std::uint64_t)> extract = [&](std::uint64_t s) {
    if ((s & (s - 1)) == 0) return Plan::Leaf(std::countr_zero(s));
    const std::uint64_t lhs = search.memo[s].best_lhs;
    BLITZ_CHECK(lhs != 0);
    return Plan::Join(extract(lhs), extract(s ^ lhs));
  };
  result.plan = extract(full);
  return result;
}

}  // namespace blitz
