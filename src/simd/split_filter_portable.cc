#include "simd/split_filter.h"

#if defined(__GNUC__) || defined(__clang__)
#define BLITZ_SIMD_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define BLITZ_SIMD_PREFETCH(addr) ((void)0)
#endif

namespace blitz {

// The portable realization of the dense-compaction kernel: no intrinsics,
// plain loops a mainstream compiler autovectorizes with baseline flags.
// Kept in its own TU (compiled with the project's default flags only) so
// it is a faithful "what the hardware gives you without target features"
// reference point for the dispatch matrix.

void SplitBuildDensePortable(const float* cost, std::uint64_t s, int k,
                             std::uint32_t* idx, float* dc) {
  // Doubling construction of the rank -> subset map: after the t lowest
  // set bits of s are processed, idx[0..2^t) enumerate the subsets of
  // those bits in counting (= successor) order; OR-ing in the next bit
  // appends the upper half. Contiguous reads and writes only — unlike the
  // successor recurrence there is no loop-carried dependency chain.
  idx[0] = 0;
  std::uint32_t m = 1;
  for (std::uint64_t bits = s; bits != 0; bits &= bits - 1) {
    const std::uint32_t bit = static_cast<std::uint32_t>(bits & (~bits + 1));
    for (std::uint32_t r = 0; r < m; ++r) idx[m + r] = idx[r] | bit;
    m <<= 1;
  }
  // One gather pass compacts the cost column into dense rank order; these
  // scattered reads are the only non-contiguous accesses of the whole
  // batched path. Prefetch a short distance ahead — the target addresses
  // are already materialized in idx.
  constexpr std::uint32_t kAhead = 16;
  const std::uint32_t total = m;  // == 2^k
  for (std::uint32_t r = 0; r < total; ++r) {
    if (r + kAhead < total) BLITZ_SIMD_PREFETCH(cost + idx[r + kAhead]);
    dc[r] = cost[idx[r]];
  }
  (void)k;
}

std::uint64_t SplitFilterDensePortable(const float* dc,
                                       std::uint32_t full_rank,
                                       std::uint32_t r0, int count,
                                       float best) {
  // The next block's forward stream and descending rhs stream; hardware
  // prefetchers handle the former, rarely the latter.
  if (r0 + static_cast<std::uint32_t>(kSplitFilterBlock) <= full_rank) {
    BLITZ_SIMD_PREFETCH(dc + r0 + kSplitFilterBlock);
    BLITZ_SIMD_PREFETCH(dc + (full_rank - r0 - kSplitFilterBlock));
  }
  std::uint64_t mask = 0;
  for (int i = 0; i < count; ++i) {
    const std::uint32_t r = r0 + static_cast<std::uint32_t>(i);
    mask |= static_cast<std::uint64_t>(dc[r] + dc[full_rank - r] < best)
            << i;
  }
  return mask;
}

}  // namespace blitz
