// End-to-end checks that the observability layer sees the real pipeline:
// spans per ladder pass out of the core optimizer, counters folded into the
// registry, executor row/timing stats, and the OptimizeQuery report.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/optimize_query.h"
#include "catalog/catalog.h"
#include "core/optimizer.h"
#include "exec/datagen.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {
namespace {

/// RAII install/uninstall of the global obs hooks so a failing test cannot
/// leak them into later tests.
class ScopedObs {
 public:
  ScopedObs() {
    SetGlobalTraceRecorder(&recorder);
    SetGlobalMetrics(&metrics);
  }
  ~ScopedObs() {
    SetGlobalTraceRecorder(nullptr);
    SetGlobalMetrics(nullptr);
  }
  TraceRecorder recorder;
  MetricsRegistry metrics;
};

int CountEvents(const std::vector<TraceEvent>& events,
                const std::string& name) {
  return static_cast<int>(
      std::count_if(events.begin(), events.end(),
                    [&](const TraceEvent& e) { return e.name == name; }));
}

TEST(ObsIntegrationTest, LadderEmitsOneSpanPerPass) {
  ScopedObs obs;
  Result<Catalog> catalog = Catalog::FromCardinalities({100, 200, 300, 400});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(4);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.01).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 0.01).ok());
  ASSERT_TRUE(graph.AddPredicate(2, 3, 0.01).ok());

  // A hopeless initial threshold forces several ladder passes.
  ThresholdLadderOptions ladder;
  ladder.initial_threshold = 1e-3f;
  ladder.growth_factor = 10.0f;
  ladder.max_thresholded_passes = 3;
  Result<LadderOutcome> outcome =
      OptimizeJoinWithThresholds(*catalog, graph, OptimizerOptions{}, ladder);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GE(outcome->passes, 2);

  const std::vector<TraceEvent> events = obs.recorder.Events();
  EXPECT_EQ(CountEvents(events, "OptimizeJoinWithThresholds"), 1);
  EXPECT_EQ(CountEvents(events, "ladder_pass"), outcome->passes);
  EXPECT_EQ(CountEvents(events, "OptimizeJoin"), outcome->passes);
  // Nesting: ladder at depth 0, passes at depth 1, OptimizeJoin at depth 2.
  for (const TraceEvent& event : events) {
    if (event.name == "ladder_pass") {
      EXPECT_EQ(event.depth, 1);
    }
    if (event.name == "OptimizeJoin") {
      EXPECT_EQ(event.depth, 2);
    }
  }
  // Counters landed in the registry.
  const MetricsSnapshot snapshot = obs.metrics.TakeSnapshot();
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snapshot.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  EXPECT_EQ(counter("optimizer.ladder_calls"), 1u);
  EXPECT_EQ(counter("optimizer.ladder_passes"),
            static_cast<std::uint64_t>(outcome->passes));
  EXPECT_EQ(counter("optimizer.join_calls"),
            static_cast<std::uint64_t>(outcome->passes));
}

TEST(ObsIntegrationTest, CountersFoldIntoRegistryWhenRequested) {
  ScopedObs obs;
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 20, 30, 40, 50});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(5);
  OptimizerOptions options;
  options.count_operations = true;
  Result<OptimizeOutcome> outcome = OptimizeJoin(*catalog, graph, options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GT(outcome->counters.loop_iterations, 0u);

  const MetricsSnapshot snapshot = obs.metrics.TakeSnapshot();
  bool found = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "optimizer.loop_iterations") {
      found = true;
      EXPECT_EQ(value, outcome->counters.loop_iterations);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsIntegrationTest, DisabledModeRecordsNothing) {
  // No global recorder/registry installed: same optimization, no events.
  ASSERT_EQ(GlobalTraceRecorder(), nullptr);
  ASSERT_EQ(GlobalMetrics(), nullptr);
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 20, 30});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(3);
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(*catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->found_plan());
}

TEST(ObsIntegrationTest, ExecutorRecordsRowsAndTimings) {
  ScopedObs obs;
  Result<Catalog> catalog = Catalog::FromCardinalities({20, 30, 40});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.1).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 0.1).ok());
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(*catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  Result<std::vector<ExecTable>> tables =
      GenerateTables(*catalog, graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok());
  Result<ExecutionResult> result = ExecutePlan(*plan, *tables, graph);
  ASSERT_TRUE(result.ok());

  // Node stats carry wall times; the root subtree dominates its children.
  ASSERT_EQ(result->node_stats.size(), 2u);
  EXPECT_GE(result->node_stats[0].seconds, result->node_stats[1].seconds);

  const std::vector<TraceEvent> events = obs.recorder.Events();
  EXPECT_EQ(CountEvents(events, "ExecutePlan"), 1);
  EXPECT_EQ(CountEvents(events, "join"), 2);

  const MetricsSnapshot snapshot = obs.metrics.TakeSnapshot();
  std::uint64_t rows = 0;
  std::uint64_t joins = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "exec.rows_produced") rows = value;
    if (name == "exec.joins") joins = value;
  }
  EXPECT_EQ(joins, 2u);
  std::uint64_t stats_rows = 0;
  for (const NodeStats& stats : result->node_stats) {
    stats_rows += stats.output_rows;
  }
  EXPECT_EQ(rows, stats_rows);
}

TEST(ObsIntegrationTest, OptimizeQueryReportExhaustive) {
  Result<Catalog> catalog = Catalog::FromCardinalities({100, 200, 300, 400, 500});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(5);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.01).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 0.01).ok());
  ASSERT_TRUE(graph.AddPredicate(2, 3, 0.01).ok());
  ASSERT_TRUE(graph.AddPredicate(3, 4, 0.01).ok());

  QueryOptimizerOptions options;
  options.collect_report = true;
  options.count_operations = true;
  options.initial_cost_threshold = 1.0f;  // force at least one re-pass
  Result<OptimizedQuery> result = OptimizeQuery(*catalog, graph, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->report.has_value());
  const OptimizeReport& report = *result->report;
  EXPECT_EQ(result->tier, OptimizerTier::kExhaustive);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GT(report.optimize_seconds, 0.0);
  EXPECT_LE(report.optimize_seconds + report.extract_seconds +
                report.evaluate_seconds + report.attach_seconds,
            report.total_seconds * 1.5);
  EXPECT_EQ(report.thresholds_tried.size(),
            static_cast<size_t>(result->passes));
  EXPECT_GT(report.counters.loop_iterations, 0u);
  EXPECT_GT(report.peak_dp_table_bytes, 0u);
  EXPECT_NE(result->ReportToString().find("exhaustive"), std::string::npos);

  // Without the flag the report stays disengaged.
  QueryOptimizerOptions no_report;
  Result<OptimizedQuery> plain = OptimizeQuery(*catalog, graph, no_report);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->report.has_value());
  EXPECT_EQ(plain->cost, result->cost);
}

TEST(ObsIntegrationTest, OptimizeQueryReportHybrid) {
  ScopedObs obs;
  const int n = 6;
  std::vector<double> cards;
  for (int i = 0; i < n; ++i) cards.push_back(50 + 10 * i);
  Result<Catalog> catalog = Catalog::FromCardinalities(cards);
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(n);
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(graph.AddPredicate(i, i + 1, 0.05).ok());
  }
  QueryOptimizerOptions options;
  options.collect_report = true;
  options.exhaustive_limit = 4;  // force the hybrid path at n = 6
  Result<OptimizedQuery> result = OptimizeQuery(*catalog, graph, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->report.has_value());
  EXPECT_EQ(result->tier, OptimizerTier::kHybrid);
  EXPECT_FALSE(result->exact());
  EXPECT_NE(result->ReportToString().find("hybrid"), std::string::npos);

  const std::vector<TraceEvent> events = obs.recorder.Events();
  EXPECT_EQ(CountEvents(events, "OptimizeQuery"), 1);
  EXPECT_GE(CountEvents(events, "OptimizeHybrid"), 1);
  EXPECT_GE(CountEvents(events, "hybrid_restart"), 1);
}

}  // namespace
}  // namespace blitz
