#ifndef BLITZ_CARD_FANOUT_H_
#define BLITZ_CARD_FANOUT_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "core/relset.h"
#include "query/join_graph.h"

namespace blitz {

/// The paper's Section 5.1 cardinality derivation, factored out of
/// JoinGraph so that every consumer — the JoinGraph convenience wrappers,
/// PaperFanoutEstimator, and the fused recurrence cross-checks — shares a
/// single definition. Header-only on purpose: blitz_query cannot link
/// blitz_card (blitz_card sits above it), but both can include this file.

/// Exact join cardinality of the relations in S: the product of base
/// cardinalities in S and of the selectivities of all predicates whose
/// endpoints both lie in S (the induced subgraph). `base_cards[i]` is |R_i|.
inline double FanoutJoinCardinality(const JoinGraph& graph, RelSet s,
                                    const std::vector<double>& base_cards) {
  double card = graph.PiInduced(s);
  s.ForEach([&](int i) { card *= base_cards[i]; });
  return card;
}

/// Computes card(S) for every nonempty subset S of {R0..R{n-1}} using the
/// paper's recurrences (Equations 10 and 11), filling `cards` (indexed by
/// set word; size 2^n). Runs in O(2^n). This is the reference for the fused
/// computation inside BlitzSplit and must stay bit-identical to it.
inline void FanoutComputeAllCardinalities(const JoinGraph& graph,
                                          const std::vector<double>& base_cards,
                                          std::vector<double>* cards) {
  const int n = graph.num_relations();
  BLITZ_CHECK(static_cast<int>(base_cards.size()) == n);
  const std::uint64_t table_size = std::uint64_t{1} << n;
  cards->assign(table_size, 0.0);
  // pi_fan is only needed transiently; keep it alongside.
  std::vector<double> pi_fan(table_size, 1.0);
  for (int i = 0; i < n; ++i) {
    (*cards)[std::uint64_t{1} << i] = base_cards[i];
  }
  for (std::uint64_t s = 3; s < table_size; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singleton
    const std::uint64_t u = s & (~s + 1);
    const std::uint64_t v = s ^ u;
    double fan;
    if ((v & (v - 1)) == 0) {
      // Doubleton {i, j}: the fan is the predicate connecting them (or 1).
      fan = graph.Selectivity(std::countr_zero(u), std::countr_zero(v));
    } else {
      // Equation (10): split V into its lowest member W and the rest Z.
      const std::uint64_t w = v & (~v + 1);
      const std::uint64_t z = v ^ w;
      fan = pi_fan[u | w] * pi_fan[u | z];
    }
    pi_fan[s] = fan;
    // Equation (11): card(S) = card(U) * card(V) * Pi_fan(S).
    (*cards)[s] = (*cards)[u] * (*cards)[v] * fan;
  }
}

}  // namespace blitz

#endif  // BLITZ_CARD_FANOUT_H_
