#ifndef BLITZ_SERVE_ADMISSION_H_
#define BLITZ_SERVE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace blitz {

/// Per-tenant resource limits for the serving tier. A tenant is whatever
/// string the client puts in its request frames — the admission bucket, not
/// an authenticated identity (blitzd trusts its socket).
struct TenantQuota {
  /// Requests admitted but not yet answered (queued + optimizing). The
  /// knife-edge quota: it is what stops one flooding tenant from occupying
  /// every queue slot and worker.
  int max_in_flight = 64;

  /// Largest request body admitted (a .bjq document; legitimate ones are
  /// tiny). 0 = no cap.
  std::uint64_t max_body_bytes = 1ull << 20;

  /// Per-request DP-table byte cap stamped into the optimizer budget
  /// (admission control before the 2^n allocation). 0 = no cap.
  std::uint64_t max_dp_table_bytes = 0;

  /// Ceiling on a request's self-declared deadline_ms. 0 = no ceiling.
  double max_deadline_ms = 0;

  Status Validate() const;
};

struct AdmissionOptions {
  /// Applied to any tenant without an explicit entry.
  TenantQuota default_quota;

  /// Tenant-name keyed overrides.
  std::map<std::string, TenantQuota, std::less<>> tenants;

  Status Validate() const;
};

/// Thread-safe per-tenant in-flight accounting. Admit() either reserves a
/// slot (the caller MUST later Release() exactly once) or sheds the request
/// with kResourceExhausted plus a retry-after hint proportional to how
/// oversubscribed the tenant is — the client library's backoff floor.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(std::move(options)) {}

  struct Decision {
    Status status;              ///< OK = admitted (slot reserved).
    double retry_after_ms = 0;  ///< Backoff hint when shed.
  };

  Decision Admit(std::string_view tenant, std::uint64_t body_bytes);
  void Release(std::string_view tenant);

  const TenantQuota& quota_for(std::string_view tenant) const;
  int in_flight(std::string_view tenant) const;

  /// Tenants currently holding at least one slot. Entries are erased when
  /// their count returns to zero (names are unauthenticated client input,
  /// so idle entries must not accumulate); this exposes that invariant.
  std::size_t tracked_tenants() const;

  /// Point-in-time (tenant, in-flight count) pairs for every tracked
  /// tenant, sorted by name — the /statz introspection feed.
  std::vector<std::pair<std::string, int>> Snapshot() const;

 private:
  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, int, std::less<>> in_flight_;
};

}  // namespace blitz

#endif  // BLITZ_SERVE_ADMISSION_H_
