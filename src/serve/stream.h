#ifndef BLITZ_SERVE_STREAM_H_
#define BLITZ_SERVE_STREAM_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace blitz {

/// A blocking, bidirectional byte stream — the transport seam of the
/// serving tier. The server and client speak frames (serve/wire.h) over
/// this interface; concrete transports are a POSIX fd pair (sockets, pipes,
/// stdio) and an in-memory duplex for tests and closed-loop benchmarks.
///
/// Threading contract: one reader thread and one writer thread may use a
/// stream concurrently (the serving pattern: a connection's reader loop
/// plus whichever worker finishes a response), but Read must not race Read
/// and Write must not race Write — callers serialize their own side.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Reads up to `len` bytes into `buf`; blocks until at least one byte is
  /// available. Returns the byte count, 0 on end-of-stream.
  virtual Result<std::size_t> Read(char* buf, std::size_t len) = 0;

  /// Writes all of `data` (blocking). kUnavailable once the peer is gone.
  virtual Status Write(std::string_view data) = 0;

  /// Half-close: signals end-of-stream to the peer's reader while leaving
  /// this side's reader open (the drain handshake).
  virtual void CloseWrite() = 0;

  /// Full close; unblocks any reader with end-of-stream.
  virtual void Close() = 0;
};

/// Reads exactly `len` bytes; kUnavailable on a short stream.
Status ReadFull(ByteStream* stream, char* buf, std::size_t len);

/// A ByteStream over POSIX file descriptors. `read_fd` and `write_fd` may
/// be the same (a socket) or distinct (a pipe pair / stdio). When
/// `wake_fd` >= 0, a readable wake_fd aborts a blocked Read with
/// end-of-stream — the daemon's SIGTERM self-pipe, which turns "blocked in
/// read(2) forever" into a clean drain. When `write_timeout_ms` > 0, a
/// Write whose peer stops consuming (full socket send buffer / pipe) fails
/// with kUnavailable after that long instead of blocking forever — the
/// bound that keeps a stalled client from parking a server worker, and the
/// drain behind it, indefinitely. 0 = block until the peer reads or dies.
/// Owns read_fd/write_fd iff `own_fds`; never owns wake_fd.
class FdStream : public ByteStream {
 public:
  FdStream(int read_fd, int write_fd, bool own_fds, int wake_fd = -1,
           double write_timeout_ms = 0);
  ~FdStream() override;

  Result<std::size_t> Read(char* buf, std::size_t len) override;
  Status Write(std::string_view data) override;
  void CloseWrite() override;
  void Close() override;

 private:
  int read_fd_;
  int write_fd_;
  const bool own_fds_;
  const int wake_fd_;
  const double write_timeout_ms_;
  bool socket_send_ = true;  ///< Until send(2) says ENOTSOCK.
};

/// An in-memory duplex pipe: Create() returns two connected endpoints, each
/// a full ByteStream; bytes written to one are read from the other through
/// a bounded buffer (blocking both ways). The unit-test and bench
/// transport — no sockets, no fds, sanitizer-friendly.
std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
CreateDuplexPipe(std::size_t buffer_capacity = 1 << 16);

}  // namespace blitz

#endif  // BLITZ_SERVE_STREAM_H_
