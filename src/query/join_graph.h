#ifndef BLITZ_QUERY_JOIN_GRAPH_H_
#define BLITZ_QUERY_JOIN_GRAPH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/relset.h"

namespace blitz {

/// One join predicate: an undirected edge between two relations, carrying a
/// selectivity in (0, 1]. In the paper's notation the predicate connecting
/// R_i and R_j is the edge \widehat{R_i R_j}.
struct Predicate {
  int lhs = 0;             ///< Smaller relation index.
  int rhs = 0;             ///< Larger relation index.
  double selectivity = 1;  ///< Fraction of the cross product retained.
};

/// The join graph G = (R, P) of Section 5.1: nodes are the relations of a
/// catalog, edges are predicates with selectivities. Predicates are assumed
/// simple (binary) and uncorrelated, as in the paper. At most one predicate
/// per relation pair; parallel predicates should be pre-merged by
/// multiplying their selectivities.
class JoinGraph {
 public:
  /// An edgeless graph over n relations (a pure Cartesian product query).
  explicit JoinGraph(int num_relations);

  JoinGraph() : JoinGraph(1) {}

  /// Adds the predicate connecting relations i and j (i != j) with the given
  /// selectivity in (0, 1]. Fails on duplicates or out-of-range arguments.
  Status AddPredicate(int i, int j, double selectivity);

  int num_relations() const { return n_; }

  int num_predicates() const { return static_cast<int>(predicates_.size()); }

  const std::vector<Predicate>& predicates() const { return predicates_; }

  /// Selectivity of the predicate between i and j, or 1.0 if none exists.
  double Selectivity(int i, int j) const { return selectivity_[Slot(i, j)]; }

  bool HasEdge(int i, int j) const {
    return neighbors_[i].Contains(j);
  }

  /// The set of relations adjacent to relation i.
  RelSet Neighbors(int i) const { return neighbors_[i]; }

  /// Number of predicates incident on relation i (the k_i of the Appendix's
  /// selectivity formula).
  int Degree(int i) const { return neighbors_[i].size(); }

  /// Product of the selectivities of all predicates spanning disjoint sets
  /// U and V — the paper's Pi_span(U, V) (Equation 8). Computed directly
  /// (not via the fan recurrence); used as the reference implementation.
  double PiSpan(RelSet u, RelSet v) const;

  /// Product of the selectivities of all predicates wholly contained in S
  /// (the induced subgraph of Section 5.1).
  double PiInduced(RelSet s) const;

  /// Pi_fan(S) per Equation (9): Pi_span({min S}, S - {min S}).
  double PiFan(RelSet s) const;

  /// Exact join cardinality of the relations in S per Section 5.1: the
  /// product of base cardinalities in S and of the selectivities of all
  /// induced predicates. `base_cards[i]` supplies |R_i|.
  ///
  /// Deprecated: thin wrapper over FanoutJoinCardinality (card/fanout.h),
  /// which PaperFanoutEstimator also wraps — there is exactly one derivation
  /// path. New code should resolve cardinalities through a
  /// CardinalityEstimator (card/estimator.h) instead of calling this.
  double JoinCardinality(RelSet s, const std::vector<double>& base_cards) const;

  /// True if the subgraph induced by S is connected (singletons are
  /// connected; the empty set is not). Used by the no-Cartesian-product
  /// baseline enumerators.
  bool IsConnected(RelSet s) const;

  /// True if at least one predicate spans U and V.
  bool AnyEdgeSpans(RelSet u, RelSet v) const;

  /// Renders the edge list, e.g. "R0-R1(0.01) R1-R2(0.001)".
  std::string ToString() const;

 private:
  int Slot(int i, int j) const { return i * n_ + j; }

  int n_;
  std::vector<Predicate> predicates_;
  std::vector<double> selectivity_;  ///< n*n matrix; 1.0 where no edge.
  std::vector<RelSet> neighbors_;    ///< adjacency bit-masks.
};

/// Computes card(S) for every nonempty subset S of {R0..R{n-1}} using the
/// paper's recurrences (Equations 10 and 11), filling `cards` (indexed by
/// set word; size 2^n). This standalone version is shared by the baseline
/// optimizers and used to cross-check the fused computation inside
/// BlitzSplit. Runs in O(2^n).
///
/// Deprecated: thin wrapper over FanoutComputeAllCardinalities
/// (card/fanout.h); prefer CardinalityEstimator::EstimateAll through a
/// PaperFanoutEstimator so non-exact estimators can be swapped in.
void ComputeAllCardinalities(const JoinGraph& graph,
                             const std::vector<double>& base_cards,
                             std::vector<double>* cards);

}  // namespace blitz

#endif  // BLITZ_QUERY_JOIN_GRAPH_H_
