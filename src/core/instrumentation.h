#ifndef BLITZ_CORE_INSTRUMENTATION_H_
#define BLITZ_CORE_INSTRUMENTATION_H_

#include <bit>
#include <cstdint>
#include <string>

#include "obs/profiler/phase_profile.h"

namespace blitz {

/// Zero-cost instrumentation policy: all hooks are empty inline functions,
/// so the production optimizer pays nothing for the instrumentation points.
///
/// Hook families:
///   On*        — operation counters (Section 3.3 / 6.2 analyses).
///   Prof*      — phase-attribution timestamps for the performance
///                observatory (obs/profiler/); the `DpPhase` argument of an
///                empty ProfMark is a dead constant the inliner erases.
///   kEnabled   — the policy accumulates state that parallel drivers must
///                fold across workers at rank barriers (operator+=).
///   kProfiling — the policy records phase ticks; drivers additionally
///                record per-rank wall ticks into `profile`.
struct NoInstrumentation {
  static constexpr bool kEnabled = false;
  static constexpr bool kProfiling = false;

  void OnSubsetVisited() {}
  void OnLoopIteration() {}
  void OnLoopIterationBlock(std::uint64_t) {}
  void OnOperandPass() {}
  void OnKappa2Evaluated() {}
  void OnImprovement() {}
  void OnThresholdSkip() {}
  void OnFilterSurvivors(std::uint64_t, std::uint64_t) {}
  void ProfBegin(std::uint64_t) {}
  void ProfMark(DpPhase) {}
  void ProfResync() {}
  void ProfPassEnd() {}
};

/// Counting policy used by the Section 6.2 / 3.3 analyses: tallies how often
/// each stage of find_best_split executes so the measured counts can be
/// compared against the paper's predictions (3^n loop iterations,
/// (ln2/2) n 2^n expected improvements, kappa'' count in between).
struct CountingInstrumentation {
  static constexpr bool kEnabled = true;
  static constexpr bool kProfiling = false;

  void OnSubsetVisited() { ++subsets_visited; }
  void OnLoopIteration() { ++loop_iterations; }
  /// One blocked-filter batch of k split-loop iterations (SIMD kernel);
  /// keeps loop_iterations exactly equal to the scalar driver's count.
  void OnLoopIterationBlock(std::uint64_t k) { loop_iterations += k; }
  void OnOperandPass() { ++operand_passes; }
  void OnKappa2Evaluated() { ++kappa2_evaluations; }
  void OnImprovement() { ++improvements; }
  void OnThresholdSkip() { ++threshold_skips; }
  void OnFilterSurvivors(std::uint64_t, std::uint64_t) {}
  void ProfBegin(std::uint64_t) {}
  void ProfMark(DpPhase) {}
  void ProfResync() {}
  void ProfPassEnd() {}

  CountingInstrumentation& operator+=(const CountingInstrumentation& other) {
    subsets_visited += other.subsets_visited;
    loop_iterations += other.loop_iterations;
    operand_passes += other.operand_passes;
    kappa2_evaluations += other.kappa2_evaluations;
    improvements += other.improvements;
    threshold_skips += other.threshold_skips;
    return *this;
  }

  std::string ToString() const;

  /// Non-singleton subsets processed (2^n - n - 1 when nothing is skipped).
  std::uint64_t subsets_visited = 0;
  /// Iterations of the best-split loop (~3^n in aggregate).
  std::uint64_t loop_iterations = 0;
  /// Iterations that passed the operand-cost nested-if gates.
  std::uint64_t operand_passes = 0;
  /// Evaluations of the split-dependent cost component kappa''.
  std::uint64_t kappa2_evaluations = 0;
  /// Executions of the conditional improvement code (expected ~(ln2/2)n2^n).
  std::uint64_t improvements = 0;
  /// Subsets whose best-split loop was skipped because kappa'(S) already
  /// exceeded the plan-cost threshold (Sections 6.3-6.4).
  std::uint64_t threshold_skips = 0;
};

/// Phase-attribution policy for the performance observatory: a delta-mark
/// timestamp scheme over ProfTicks() (one rdtsc per mark) that attributes
/// every tick of the DP pass to exactly one {phase, subset-size rank}
/// bucket of `profile`, plus the per-rank operation and SIMD survivor
/// tallies the kappa-sm/kappa-dnl diagnosis needs.
///
/// The scheme: ProfBegin(S) charges the ticks since the previous mark to
/// the *driver* phase (inter-subset loop control, governor ticks) and
/// switches the current rank to popcount(S); each subsequent ProfMark(p)
/// charges the ticks since the previous mark to phase p. The kernel places
/// marks so the buckets partition the subset body (see BlitzProcessSubset),
/// making the phase totals sum to ~100% of pass wall time — the
/// attribution contract of DESIGN.md section 11. Overhead is one rdtsc
/// (~20 cycles, unserialized) per mark, ~4-6 marks per subset.
///
/// Value semantics on purpose: the rank-parallel driver keeps one instance
/// per worker chunk slot and folds them into the pass instance with
/// operator+= at rank barriers, exactly like CountingInstrumentation.
struct ProfilingInstrumentation {
  static constexpr bool kEnabled = true;
  static constexpr bool kProfiling = true;

  void OnSubsetVisited() {}  // ProfBegin tallies subsets per rank.
  void OnLoopIteration() { ++profile.ranks[rank_].loop_iterations; }
  void OnLoopIterationBlock(std::uint64_t k) {
    profile.ranks[rank_].loop_iterations += k;
  }
  void OnOperandPass() {}
  void OnKappa2Evaluated() { ++profile.ranks[rank_].kappa2_evaluations; }
  void OnImprovement() {}
  void OnThresholdSkip() {}

  /// One SIMD filter block: `lanes` candidate splits evaluated, of which
  /// `survivors` passed the conservative gate and were replayed.
  void OnFilterSurvivors(std::uint64_t lanes, std::uint64_t survivors) {
    profile.ranks[rank_].filter_lanes += lanes;
    profile.ranks[rank_].filter_survivors += survivors;
  }

  void ProfBegin(std::uint64_t s) {
    const std::uint64_t now = ProfTicks();
    if (last_tick_ != 0) {
      profile.ranks[rank_]
          .phase_ticks[static_cast<int>(DpPhase::kDriver)] +=
          now - last_tick_;
    }
    rank_ = std::popcount(s);
    ++profile.ranks[rank_].subsets;
    last_tick_ = now;
  }

  /// Must follow a ProfBegin in program order (the kernel guarantees it).
  void ProfMark(DpPhase phase) {
    const std::uint64_t now = ProfTicks();
    profile.ranks[rank_].phase_ticks[static_cast<int>(phase)] +=
        now - last_tick_;
    last_tick_ = now;
  }

  /// Re-arms the timestamp without attributing the elapsed interval.
  /// The rank-parallel driver calls this on the pass instance after each
  /// fanned rank's barrier: the fanned interval's CPU time was already
  /// attributed by the per-worker slots, so charging the same wall span on
  /// the main instance would double-count it.
  void ProfResync() { last_tick_ = ProfTicks(); }

  /// Driver epilogue: charges the tail to the driver phase, counts the
  /// pass, and re-arms for a potential next pass on the same instance
  /// (threshold-ladder reoptimization reuses one instrumentation object).
  void ProfPassEnd() {
    if (last_tick_ != 0) {
      profile.ranks[rank_]
          .phase_ticks[static_cast<int>(DpPhase::kDriver)] +=
          ProfTicks() - last_tick_;
    }
    ++profile.passes;
    rank_ = 0;
    last_tick_ = 0;
  }

  ProfilingInstrumentation& operator+=(const ProfilingInstrumentation& other) {
    profile += other.profile;
    return *this;
  }

  PassProfile profile;

 private:
  int rank_ = 0;              ///< Current subset's popcount (profile index).
  std::uint64_t last_tick_ = 0;  ///< Previous mark; 0 = no mark yet.
};

}  // namespace blitz

#endif  // BLITZ_CORE_INSTRUMENTATION_H_
