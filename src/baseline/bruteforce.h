#ifndef BLITZ_BASELINE_BRUTEFORCE_H_
#define BLITZ_BASELINE_BRUTEFORCE_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Result of a brute-force optimization.
struct BruteForceResult {
  Plan plan;
  double cost = 0;
};

/// Reference optimizer for tests: memoized recursion over every split of
/// every subset, with cardinalities computed directly from the
/// induced-subgraph definition (JoinGraph::JoinCardinality) rather than the
/// Pi_fan recurrences, and costs accumulated in double precision. Shares no
/// arithmetic shortcuts with the blitzsplit core, which is the point.
/// Limited to n <= 16 relations.
Result<BruteForceResult> OptimizeBruteForce(const Catalog& catalog,
                                            const JoinGraph& graph,
                                            CostModelKind cost_model);

}  // namespace blitz

#endif  // BLITZ_BASELINE_BRUTEFORCE_H_
