#include "core/dp_table.h"

#include <new>

#include "common/strings.h"
#include "governor/faultpoints.h"

namespace blitz {

Result<DpTable> DpTable::Create(int n, bool with_pi_fan, bool with_aux) {
  if (n < 1 || n > kMaxRelations) {
    return Status::InvalidArgument(
        StrFormat("relation count %d outside [1, %d]", n, kMaxRelations));
  }
  // Fault point: simulate allocation failure (kBadAlloc) or inject an
  // arbitrary status, so out-of-memory handling is testable without
  // actually exhausting memory.
  if (std::optional<FaultSpec> fault = FaultHit(kFaultDpTableAlloc)) {
    if (fault->kind == FaultKind::kBadAlloc) {
      return Status::ResourceExhausted(
          StrFormat("injected allocation failure for DP table (n=%d)", n));
    }
    if (fault->kind == FaultKind::kFailStatus) return fault->status;
  }
  DpTable table;
  table.n_ = n;
  const std::uint64_t rows = std::uint64_t{1} << n;
  try {
    table.cost_.assign(rows, kRejectedCost);
    table.card_.assign(rows, 0.0);
    table.best_lhs_.assign(rows, 0);
    if (with_pi_fan) table.pi_fan_.assign(rows, 1.0);
    if (with_aux) table.aux_.assign(rows, 0.0);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        StrFormat("cannot allocate DP table for n=%d (%llu rows)", n,
                  static_cast<unsigned long long>(rows)));
  }
  return table;
}

std::uint64_t DpTable::EstimateBytes(int n, bool with_pi_fan, bool with_aux) {
  if (n < 1 || n > kMaxRelations) return 0;
  const std::uint64_t rows = std::uint64_t{1} << n;
  std::uint64_t per_row =
      sizeof(float) + sizeof(double) + sizeof(std::uint32_t);
  if (with_pi_fan) per_row += sizeof(double);
  if (with_aux) per_row += sizeof(double);
  return rows * per_row;
}

std::uint64_t DpTable::MemoryBytes() const {
  return EstimateBytes(n_, has_pi_fan(), has_aux());
}

std::uint64_t DpTable::AllocatedBytes() const {
  return cost_.capacity() * sizeof(float) +
         card_.capacity() * sizeof(double) +
         best_lhs_.capacity() * sizeof(std::uint32_t) +
         pi_fan_.capacity() * sizeof(double) + aux_.capacity() * sizeof(double);
}

}  // namespace blitz
