#ifndef BLITZ_CATALOG_FILTERS_H_
#define BLITZ_CATALOG_FILTERS_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"

namespace blitz {

/// A local selection predicate on one base relation (e.g. a date-range or
/// region filter), summarized by its selectivity. Filters are applied
/// before join-order optimization: what the optimizer sees as |R| is the
/// post-filter cardinality — exactly how small "dimension" inputs arise in
/// practice and make Cartesian products attractive (the star_schema
/// example's premise).
struct FilterSpec {
  int relation = 0;
  double selectivity = 1.0;  ///< In (0, 1].
};

/// Returns a catalog with each filtered relation's cardinality scaled by
/// its filter selectivity (several filters on one relation multiply,
/// assuming independence). Names and tuple widths are preserved.
Result<Catalog> ApplyFilters(const Catalog& catalog,
                             const std::vector<FilterSpec>& filters);

}  // namespace blitz

#endif  // BLITZ_CATALOG_FILTERS_H_
