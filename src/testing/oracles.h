#ifndef BLITZ_TESTING_ORACLES_H_
#define BLITZ_TESTING_ORACLES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "core/dp_table.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz::fuzz {

/// Outcome of one oracle check: ok with an empty message, or a failure
/// description naming the first diverging subset/node.
struct OracleVerdict {
  bool ok = true;
  std::string message;

  static OracleVerdict Pass() { return OracleVerdict{}; }
  static OracleVerdict Fail(std::string msg) {
    return OracleVerdict{false, std::move(msg)};
  }
};

// ---------------------------------------------------------------------------
// Oracle 1: naive full-subset brute force.
//
// Written fresh for the differential harness and deliberately naive: every
// subset's cardinality is recomputed directly from the Section 5.1
// definition (product of base cardinalities times every induced predicate's
// selectivity, by scanning the whole predicate list), and every subset's
// optimum minimizes over ALL ordered nonempty splits — no successor
// enumeration, no Pi_fan recurrence, no float arithmetic, no shared code
// with the blitzsplit core beyond the cost-model formulas themselves.
// ---------------------------------------------------------------------------

/// Per-subset reference results, indexed by subset word like the DP table.
struct BruteForceTable {
  int num_relations = 0;
  std::vector<double> card;              ///< Direct-definition cardinality.
  std::vector<double> cost;              ///< Double-precision optimum.
  std::vector<std::uint32_t> best_lhs;   ///< One optimal split (informational).
};

/// Fills the reference table; O(4^n)-flavored work, capped at `max_n`
/// relations (kInvalidArgument beyond).
Result<BruteForceTable> BruteForceAllSubsets(const Catalog& catalog,
                                             const JoinGraph& graph,
                                             CostModelKind cost_model,
                                             int max_n = 14);

/// Compares every subset of a filled DP table against the reference.
/// `threshold` is the cost threshold the DP pass ran under (kRejectedCost
/// for an unbounded pass): a rejected DP row must have its reference
/// optimum at/above the threshold (or in float-overflow territory for
/// unbounded passes), a surviving row must match within float-vs-double
/// tolerance. Reference costs within the tolerance band of the threshold
/// itself are skipped as genuinely ambiguous.
OracleVerdict CompareDpTableToBruteForce(const DpTable& table,
                                         const BruteForceTable& reference,
                                         float threshold = kRejectedCost);

// ---------------------------------------------------------------------------
// Oracle 2: plan re-coster.
//
// Recomputes cardinality and cost bottom-up from an emitted plan tree — a
// third computation path (per-join Pi_span products, not the full induced
// scan and not the DP recurrences) — and checks each subtree against the DP
// table entry for its relation set. Because extraction follows best_lhs
// links, every subtree of an extracted plan must BE the table's optimum for
// its set: double-recost within tolerance, and the float re-evaluation
// (plan/evaluate.h) bit-identical to the stored cost.
// ---------------------------------------------------------------------------

/// Bottom-up recomputation for one subtree.
struct RecostResult {
  double card = 0;
  double cost = 0;
};
RecostResult RecostPlan(const PlanNode& node, const Catalog& catalog,
                        const JoinGraph& graph, CostModelKind cost_model);

/// Structural validity (each relation exactly once, consistent sets) plus
/// the per-node table checks described above.
OracleVerdict CheckPlanAgainstDpTable(const Plan& plan, const Catalog& catalog,
                                      const JoinGraph& graph,
                                      CostModelKind cost_model,
                                      const DpTable& table);

// ---------------------------------------------------------------------------
// Oracle 3: DPccp (baseline/dpccp.h), the independent product-free exact
// optimizer. For connected graphs: blitzsplit's optimum can only be at or
// below DPccp's (its search space is a superset), and whenever blitzsplit's
// winning plan contains no Cartesian product the two optima must agree.
// Disconnected graphs pass trivially (DPccp does not apply).
// ---------------------------------------------------------------------------

OracleVerdict CheckAgainstDpCcp(const Catalog& catalog, const JoinGraph& graph,
                                CostModelKind cost_model,
                                double blitz_root_cost,
                                int plan_cartesian_products);

/// Bitwise comparison of every allocated column of two DP tables — the
/// cross-config determinism assertion shared by the differential driver and
/// the parallel/SIMD test suites.
OracleVerdict TablesBitIdentical(const DpTable& a, const DpTable& b);

}  // namespace blitz::fuzz

#endif  // BLITZ_TESTING_ORACLES_H_
