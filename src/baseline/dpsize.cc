#include "baseline/dpsize.h"

#include <bit>
#include <functional>
#include <limits>
#include <vector>

#include "common/check.h"

namespace blitz {

Result<DpSizeResult> OptimizeDpSize(const Catalog& catalog,
                                    const JoinGraph& graph,
                                    CostModelKind cost_model,
                                    const DpSizeOptions& options) {
  const int n = catalog.num_relations();
  if (graph.num_relations() != n) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  const std::uint64_t table_size = std::uint64_t{1} << n;

  std::vector<double> base_cards(n);
  for (int i = 0; i < n; ++i) base_cards[i] = catalog.cardinality(i);
  std::vector<double> cards;
  ComputeAllCardinalities(graph, base_cards, &cards);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(table_size, kInf);
  std::vector<std::uint64_t> best_lhs(table_size, 0);

  // Entries grouped by |S|; sets_by_size[k] lists the sets of size k that
  // have (so far) received a plan.
  std::vector<std::vector<std::uint64_t>> sets_by_size(n + 1);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t w = std::uint64_t{1} << i;
    cost[w] = 0.0;
    sets_by_size[1].push_back(w);
  }

  DpSizeResult result;
  for (int size = 2; size <= n; ++size) {
    for (int lhs_size = 1; lhs_size <= size - 1; ++lhs_size) {
      const int rhs_size = size - lhs_size;
      if (options.left_deep_only && rhs_size != 1) continue;
      for (const std::uint64_t lhs : sets_by_size[lhs_size]) {
        for (const std::uint64_t rhs : sets_by_size[rhs_size]) {
          ++result.pairs_examined;
          if ((lhs & rhs) != 0) continue;  // overlapping operands
          if (!options.allow_cartesian_products &&
              !graph.AnyEdgeSpans(RelSet::FromWord(lhs),
                                  RelSet::FromWord(rhs))) {
            continue;
          }
          ++result.pairs_costed;
          const std::uint64_t s = lhs | rhs;
          const double candidate =
              cost[lhs] + cost[rhs] +
              EvalJoinCost(cost_model, cards[s], cards[lhs], cards[rhs]);
          if (candidate < cost[s]) {
            if (cost[s] == kInf) sets_by_size[size].push_back(s);
            cost[s] = candidate;
            best_lhs[s] = lhs;
          }
        }
      }
    }
  }

  const std::uint64_t full = table_size - 1;
  if (!(cost[full] < kInf)) {
    return Status::FailedPrecondition(
        "no plan found (disconnected graph with products disallowed?)");
  }

  std::function<Plan(std::uint64_t)> extract = [&](std::uint64_t s) {
    if ((s & (s - 1)) == 0) return Plan::Leaf(std::countr_zero(s));
    const std::uint64_t lhs = best_lhs[s];
    return Plan::Join(extract(lhs), extract(s ^ lhs));
  };
  result.plan = extract(full);
  result.cost = cost[full];
  return result;
}

}  // namespace blitz
