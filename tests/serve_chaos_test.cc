// Chaos suite for the serving tier: every serve.* fault point is armed
// while concurrent fuzzer-generated traffic flows, and the invariants are
// checked each time — every request gets a well-formed status-coded
// response, the process never dies, and the server keeps serving after the
// fault clears. Run under ASan/UBSan in CI (the serve-soak job) this also
// pins "no leaks on any error path".

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "governor/faultpoints.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/stream.h"
#include "serve/wire.h"
#include "testing/fuzzer.h"
#include "textio/bjq.h"

namespace blitz {
namespace {

constexpr char kSmallBjq[] =
    "relation A 100\nrelation B 200\npredicate A B 0.1\n";

std::string FuzzBody(std::uint64_t seed, std::uint64_t index) {
  fuzz::FuzzerOptions options;
  options.seed = seed;
  options.min_relations = 2;
  options.max_relations = 10;
  Result<fuzz::FuzzCase> fuzz_case = fuzz::GenerateCase(options, index);
  EXPECT_TRUE(fuzz_case.ok());
  return WriteBjq(fuzz::ToQuerySpec(*fuzz_case, CostModelKind::kNaive));
}

struct LoadReport {
  int responses = 0;
  int ok = 0;
  int errors = 0;
  bool all_well_formed = true;
};

/// Runs `clients` pipelining connections against `server`, each sending
/// `per_client` mixed-n fuzzer queries, and validates every response frame.
LoadReport RunLoad(BlitzServer* server, int clients, int per_client,
                   std::uint64_t seed) {
  std::vector<LoadReport> reports(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([server, per_client, seed, c,
                          report = &reports[static_cast<std::size_t>(c)]] {
      auto [client_end, server_end] = CreateDuplexPipe();
      std::thread serve_thread([server, stream = server_end.get()] {
        (void)server->Serve(stream);
        // If the connection ended early (accept fault, protocol error) the
        // buffered responses stay readable but the client must see EOF.
        stream->Close();
      });
      BlitzClient::Options options;
      options.tenant = "chaos-" + std::to_string(c);
      BlitzClient client(client_end.get(), std::move(options));
      int sent = 0;
      for (int i = 0; i < per_client; ++i) {
        if (client
                .Send(FuzzBody(seed + static_cast<std::uint64_t>(c),
                               static_cast<std::uint64_t>(i)))
                .ok()) {
          ++sent;
        }
      }
      for (int i = 0; i < sent; ++i) {
        Result<std::optional<ResponseFrame>> response = client.Receive();
        if (!response.ok() || !response->has_value()) {
          // A serve.accept fault ends the connection after one id-0
          // response; the remaining sends are answered by EOF. That is
          // well-formed shedding, not a protocol violation.
          break;
        }
        ++report->responses;
        if ((*response)->code == StatusCode::kOk) {
          if (!ParseReplyBody((*response)->body).ok()) {
            report->all_well_formed = false;
          }
          ++report->ok;
        } else {
          // Error responses must carry a code the wire format can name
          // (guaranteed by parsing) and a non-empty message.
          if ((*response)->body.empty()) report->all_well_formed = false;
          ++report->errors;
        }
      }
      client_end->CloseWrite();
      serve_thread.join();
      client_end->Close();
    });
  }
  for (std::thread& t : threads) t.join();
  LoadReport total;
  for (const LoadReport& r : reports) {
    total.responses += r.responses;
    total.ok += r.ok;
    total.errors += r.errors;
    total.all_well_formed = total.all_well_formed && r.all_well_formed;
  }
  return total;
}

class ServeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFaultInjectionCompiled) {
      GTEST_SKIP() << "fault injection compiled out";
    }
  }

  /// Arms `point` to fire `times` times while load runs, then verifies the
  /// server still answers cleanly after the fault clears.
  void RunChaosRound(std::string_view point, FaultSpec spec) {
    FaultRegistry registry;
    ScopedFaultRegistry scoped(&registry);

    ServerOptions options;
    options.num_workers = 4;
    Result<std::unique_ptr<BlitzServer>> server =
        BlitzServer::Create(options);
    ASSERT_TRUE(server.ok());

    registry.Arm(point, spec);
    const LoadReport report =
        RunLoad(server->get(), /*clients=*/4, /*per_client=*/8,
                /*seed=*/20260808);
    EXPECT_TRUE(report.all_well_formed) << point;
    EXPECT_GT(report.responses, 0) << point;
    EXPECT_GT(registry.hits(point), 0u) << point << " never reached";

    // The fault was bounded; once spent, the server must serve normally.
    registry.Disarm(point);
    auto [client_end, server_end] = CreateDuplexPipe();
    std::thread serve_thread(
        [&server, stream = server_end.get()] {
          (void)(*server)->Serve(stream);
        });
    BlitzClient client(client_end.get(), BlitzClient::Options{});
    Result<ServeReply> after = client.Optimize(kSmallBjq);
    EXPECT_TRUE(after.ok()) << point << ": " << after.status().ToString();
    client_end->CloseWrite();
    serve_thread.join();

    (*server)->Shutdown();
    // No request may be left unanswered or double-answered.
    EXPECT_EQ((*server)->in_flight(), 0) << point;
  }
};

TEST_F(ServeChaosTest, AcceptFault) {
  FaultSpec spec;
  spec.kind = FaultKind::kFailStatus;
  spec.status = Status::Unavailable("injected accept failure");
  spec.times = 2;
  RunChaosRound(kFaultServeAccept, spec);
}

TEST_F(ServeChaosTest, ParseFault) {
  FaultSpec spec;
  spec.kind = FaultKind::kFailStatus;
  spec.status = Status::Internal("injected parse failure");
  spec.times = 5;
  RunChaosRound(kFaultServeParse, spec);
}

TEST_F(ServeChaosTest, ParseAllocFault) {
  FaultSpec spec;
  spec.kind = FaultKind::kBadAlloc;
  spec.times = 5;
  RunChaosRound(kFaultServeParse, spec);
}

TEST_F(ServeChaosTest, EnqueueFault) {
  FaultSpec spec;
  spec.kind = FaultKind::kFailStatus;
  spec.status = Status::ResourceExhausted("injected enqueue failure");
  spec.times = 5;
  RunChaosRound(kFaultServeEnqueue, spec);
}

TEST_F(ServeChaosTest, ArenaAllocFault) {
  // kBadAlloc on the arena is a budget-class failure inside a degradable
  // call: requests still answer (via the ladder), nothing crashes.
  FaultSpec spec;
  spec.kind = FaultKind::kBadAlloc;
  spec.times = 8;
  RunChaosRound(kFaultServeArenaAlloc, spec);
}

TEST_F(ServeChaosTest, CacheInsertFault) {
  // A failed insert degrades to a bypass: the request's own result is
  // unaffected, only reuse for later twins is lost.
  FaultSpec spec;
  spec.kind = FaultKind::kFailStatus;
  spec.status = Status::ResourceExhausted("injected cache-insert failure");
  spec.times = 5;
  RunChaosRound(kFaultServeCacheInsert, spec);
}

TEST_F(ServeChaosTest, DrainFaultForcesImmediateCancellation) {
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);

  ServerOptions options;
  options.num_workers = 2;
  options.drain_grace_ms = 60000;  // Without the fault, drain would idle.
  Result<std::unique_ptr<BlitzServer>> server = BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());

  auto [client_end, server_end] = CreateDuplexPipe();
  std::thread serve_thread([&server, stream = server_end.get()] {
    (void)(*server)->Serve(stream);
  });
  BlitzClient client(client_end.get(), BlitzClient::Options{});

  fuzz::FuzzerOptions fuzz_options;
  fuzz_options.seed = 99;
  fuzz_options.min_relations = 16;
  fuzz_options.max_relations = 16;
  Result<fuzz::FuzzCase> slow_case = fuzz::GenerateCase(fuzz_options, 0);
  ASSERT_TRUE(slow_case.ok());
  ASSERT_TRUE(
      client
          .Send(WriteBjq(fuzz::ToQuerySpec(*slow_case, CostModelKind::kNaive)))
          .ok());
  while ((*server)->in_flight() == 0) {
    std::this_thread::yield();
  }

  FaultSpec spec;
  spec.kind = FaultKind::kFailStatus;
  registry.Arm(kFaultServeDrain, spec);
  // The armed fault voids the 60s grace: Shutdown must cancel and return
  // promptly instead of waiting out the long optimization.
  (*server)->BeginDrain();
  (*server)->Shutdown();
  EXPECT_GT(registry.hits(kFaultServeDrain), 0u);

  Result<std::optional<ResponseFrame>> response = client.Receive();
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->has_value());
  EXPECT_TRUE((*response)->code == StatusCode::kOk ||
              (*response)->code == StatusCode::kCancelled)
      << StatusCodeToString((*response)->code);

  client_end->CloseWrite();
  serve_thread.join();
}

// All five points armed at once under load: the everything-is-on-fire run.
TEST_F(ServeChaosTest, AllPointsArmedTogether) {
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);

  ServerOptions options;
  options.num_workers = 4;
  Result<std::unique_ptr<BlitzServer>> server = BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());

  FaultSpec fail;
  fail.kind = FaultKind::kFailStatus;
  fail.status = Status::Internal("chaos");
  fail.times = 3;
  FaultSpec alloc;
  alloc.kind = FaultKind::kBadAlloc;
  alloc.times = 3;
  registry.Arm(kFaultServeAccept, fail);
  registry.Arm(kFaultServeParse, alloc);
  registry.Arm(kFaultServeEnqueue, fail);
  registry.Arm(kFaultServeArenaAlloc, alloc);
  registry.Arm(kFaultServeCacheInsert, fail);

  const LoadReport report = RunLoad(server->get(), /*clients=*/6,
                                    /*per_client=*/8, /*seed=*/777);
  EXPECT_TRUE(report.all_well_formed);
  EXPECT_GT(report.responses, 0);
  EXPECT_GT(report.ok, 0);  // Most traffic still lands plans.

  (*server)->Shutdown();
  EXPECT_EQ((*server)->in_flight(), 0);
}

}  // namespace
}  // namespace blitz
