file(REMOVE_RECURSE
  "CMakeFiles/blitz_benchlib.dir/sweep.cc.o"
  "CMakeFiles/blitz_benchlib.dir/sweep.cc.o.d"
  "CMakeFiles/blitz_benchlib.dir/table_out.cc.o"
  "CMakeFiles/blitz_benchlib.dir/table_out.cc.o.d"
  "CMakeFiles/blitz_benchlib.dir/timing.cc.o"
  "CMakeFiles/blitz_benchlib.dir/timing.cc.o.d"
  "libblitz_benchlib.a"
  "libblitz_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitz_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
