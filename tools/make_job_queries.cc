// make_job_queries: deterministic generator for the JOB-style mini query
// set checked in under examples/queries/job/.
//
// Usage:
//   make_job_queries [--out <dir>]        (default: examples/queries/job)
//
// The queries mirror the shape of the Join Order Benchmark ("How Good Are
// Query Optimizers, Really?"): an IMDB-like schema with one huge fact-ish
// table (cast_info), a large hub (title), mid-size link tables, and tiny
// dimension/type tables, joined 4-11 ways along primary/foreign keys with
// JOB-style selection filters. Every query is written in the .bjq front
// end's JOB-style directives — `table` declarations plus `join` equi-joins
// whose selectivities derive from distinct counts (src/textio/bjq.h) — so
// the checked-in set doubles as an end-to-end test of that surface.
//
// The generator is pure: no clocks, no randomness — re-running it
// reproduces the checked-in files byte for byte (CI could diff them).
//
// Exit codes: 0 success, 1 I/O error, 2 usage error.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/strings.h"

namespace blitz {
namespace {

/// One relation instance in a query (possibly an alias: it1/it2 both name
/// the info_type base table).
struct TableUse {
  const char* name;
  double rows;
  int tuple_bytes;
};

/// A JOB-style selection on one relation, folded in as a `filter` line.
struct FilterUse {
  const char* table;
  double selectivity;
  const char* what;  ///< Rendered as a trailing comment.
};

/// One PK/FK (or FK/FK) equi-join with explicit distinct counts.
struct JoinUse {
  const char* a;
  const char* col_a;
  const char* b;
  const char* col_b;
  double distinct_a;
  double distinct_b;
};

struct QueryDef {
  const char* file;
  const char* title;
  const char* cost_model;
  std::vector<TableUse> tables;
  std::vector<FilterUse> filters;
  std::vector<JoinUse> joins;
};

// IMDB base-table row counts as used by the Join Order Benchmark.
constexpr double kTitle = 2528312;
constexpr double kMovieCompanies = 2609129;
constexpr double kCompanyName = 234997;
constexpr double kCompanyType = 4;
constexpr double kMovieInfo = 14835720;
constexpr double kMovieInfoIdx = 1380035;
constexpr double kInfoType = 113;
constexpr double kMovieKeyword = 4523930;
constexpr double kKeyword = 134170;
constexpr double kCastInfo = 36244344;
constexpr double kName = 4167491;
constexpr double kAkaName = 901343;
constexpr double kRoleType = 12;
constexpr double kKindType = 7;
constexpr double kMovieLink = 29997;
constexpr double kLinkType = 18;

// Distinct movie ids observed in the big link tables (fewer than |title|:
// not every movie has companies/keywords/info).
constexpr double kMcMovies = 1087236;
constexpr double kMkMovies = 476794;
constexpr double kMiMovies = 2468825;
constexpr double kMiIdxMovies = 459925;
constexpr double kCiMovies = 2331601;
constexpr double kCiPersons = 3832642;

std::vector<QueryDef> JobQueries() {
  std::vector<QueryDef> queries;

  queries.push_back(QueryDef{
      "job01.bjq",
      "Production companies' top-rated movies (JOB 1a family): title with "
      "its company and rating rows, both type-filtered.",
      "dnl",
      {{"t", kTitle, 94},
       {"mc", kMovieCompanies, 48},
       {"ct", kCompanyType, 16},
       {"mi_idx", kMovieInfoIdx, 32},
       {"it", kInfoType, 16}},
      {{"ct", 0.25, "kind = 'production companies'"},
       {"it", 1.0 / 113, "info = 'top 250 rank'"},
       {"mc", 0.3, "note not like '%(as Metro-Goldwyn-Mayer%'"}},
      {{"mc", "company_type_id", "ct", "id", kCompanyType, kCompanyType},
       {"mi_idx", "info_type_id", "it", "id", kInfoType, kInfoType},
       {"t", "id", "mc", "movie_id", kTitle, kMcMovies},
       {"t", "id", "mi_idx", "movie_id", kTitle, kMiIdxMovies},
       {"mc", "movie_id", "mi_idx", "movie_id", kMcMovies, kMiIdxMovies}}});

  queries.push_back(QueryDef{
      "job02.bjq",
      "German companies' keyworded movies (JOB 2a family).",
      "naive",
      {{"t", kTitle, 94},
       {"mc", kMovieCompanies, 48},
       {"cn", kCompanyName, 40},
       {"mk", kMovieKeyword, 24},
       {"k", kKeyword, 32}},
      {{"cn", 0.044, "country_code = '[de]'"},
       {"k", 1.0 / kKeyword, "keyword = 'character-name-in-title'"}},
      {{"mc", "company_id", "cn", "id", kCompanyName, kCompanyName},
       {"mk", "keyword_id", "k", "id", kKeyword, kKeyword},
       {"t", "id", "mc", "movie_id", kTitle, kMcMovies},
       {"t", "id", "mk", "movie_id", kTitle, kMkMovies},
       {"mc", "movie_id", "mk", "movie_id", kMcMovies, kMkMovies}}});

  queries.push_back(QueryDef{
      "job03.bjq",
      "Sequels with violence (JOB 3a family): the smallest chain-ish "
      "query in the set.",
      "sm",
      {{"t", kTitle, 94},
       {"mi", kMovieInfo, 64},
       {"mk", kMovieKeyword, 24},
       {"k", kKeyword, 32}},
      {{"k", 0.0001, "keyword like '%sequel%'"},
       {"mi", 0.005, "info in ('Sweden', 'Norway', ...)"},
       {"t", 0.3, "production_year > 2005"}},
      {{"t", "id", "mi", "movie_id", kTitle, kMiMovies},
       {"t", "id", "mk", "movie_id", kTitle, kMkMovies},
       {"mk", "keyword_id", "k", "id", kKeyword, kKeyword},
       {"mi", "movie_id", "mk", "movie_id", kMiMovies, kMkMovies}}});

  queries.push_back(QueryDef{
      "job04.bjq",
      "Rated sequels (JOB 4a family).",
      "hash",
      {{"t", kTitle, 94},
       {"mi_idx", kMovieInfoIdx, 32},
       {"it", kInfoType, 16},
       {"mk", kMovieKeyword, 24},
       {"k", kKeyword, 32}},
      {{"it", 1.0 / 113, "info = 'rating'"},
       {"k", 0.0001, "keyword like '%sequel%'"},
       {"mi_idx", 0.5, "info > '5.0'"},
       {"t", 0.3, "production_year > 2005"}},
      {{"t", "id", "mi_idx", "movie_id", kTitle, kMiIdxMovies},
       {"t", "id", "mk", "movie_id", kTitle, kMkMovies},
       {"mi_idx", "info_type_id", "it", "id", kInfoType, kInfoType},
       {"mk", "keyword_id", "k", "id", kKeyword, kKeyword},
       {"mi_idx", "movie_id", "mk", "movie_id", kMiIdxMovies, kMkMovies}}});

  queries.push_back(QueryDef{
      "job06.bjq",
      "Marvel movies with a famous cast (JOB 6a family): first query "
      "touching the cast_info fact table.",
      "dnl",
      {{"t", kTitle, 94},
       {"ci", kCastInfo, 40},
       {"n", kName, 56},
       {"mk", kMovieKeyword, 24},
       {"k", kKeyword, 32}},
      {{"k", 1.0 / kKeyword, "keyword = 'marvel-cinematic-universe'"},
       {"n", 0.001, "name like '%Downey%Robert%'"},
       {"t", 0.2, "production_year > 2010"}},
      {{"t", "id", "ci", "movie_id", kTitle, kCiMovies},
       {"t", "id", "mk", "movie_id", kTitle, kMkMovies},
       {"ci", "person_id", "n", "id", kCiPersons, kName},
       {"mk", "keyword_id", "k", "id", kKeyword, kKeyword},
       {"ci", "movie_id", "mk", "movie_id", kCiMovies, kMkMovies}}});

  queries.push_back(QueryDef{
      "job08.bjq",
      "Costume designers in Japanese movies (JOB 8a family): seven "
      "relations, two person-side dimensions.",
      "naive",
      {{"t", kTitle, 94},
       {"ci", kCastInfo, 40},
       {"n", kName, 56},
       {"an", kAkaName, 40},
       {"rt", kRoleType, 16},
       {"mc", kMovieCompanies, 48},
       {"cn", kCompanyName, 40}},
      {{"rt", 1.0 / kRoleType, "role = 'actress'"},
       {"cn", 0.036, "country_code = '[jp]'"},
       {"mc", 0.05, "note like '%(Japan)%'"},
       {"ci", 0.01, "note = '(voice: English version)'"}},
      {{"t", "id", "ci", "movie_id", kTitle, kCiMovies},
       {"t", "id", "mc", "movie_id", kTitle, kMcMovies},
       {"ci", "person_id", "n", "id", kCiPersons, kName},
       {"ci", "person_id", "an", "person_id", kCiPersons, 588222},
       {"ci", "role_id", "rt", "id", kRoleType, kRoleType},
       {"mc", "company_id", "cn", "id", kCompanyName, kCompanyName},
       {"ci", "movie_id", "mc", "movie_id", kCiMovies, kMcMovies}}});

  queries.push_back(QueryDef{
      "job11.bjq",
      "Follow-up movies of small studios (JOB 11a family): movie_link "
      "brings a second hub into play.",
      "sm",
      {{"t", kTitle, 94},
       {"ml", kMovieLink, 24},
       {"lt", kLinkType, 16},
       {"mc", kMovieCompanies, 48},
       {"cn", kCompanyName, 40},
       {"ct", kCompanyType, 16},
       {"mk", kMovieKeyword, 24},
       {"k", kKeyword, 32}},
      {{"lt", 2.0 / kLinkType, "link like '%follow%'"},
       {"cn", 0.044, "country_code = '[de]'"},
       {"k", 1.0 / kKeyword, "keyword = 'sequel'"},
       {"t", 0.25, "production_year between 1950 and 2000"}},
      {{"t", "id", "ml", "movie_id", kTitle, 22976},
       {"ml", "link_type_id", "lt", "id", kLinkType, kLinkType},
       {"t", "id", "mc", "movie_id", kTitle, kMcMovies},
       {"mc", "company_id", "cn", "id", kCompanyName, kCompanyName},
       {"mc", "company_type_id", "ct", "id", kCompanyType, kCompanyType},
       {"t", "id", "mk", "movie_id", kTitle, kMkMovies},
       {"mk", "keyword_id", "k", "id", kKeyword, kKeyword}}});

  queries.push_back(QueryDef{
      "job13.bjq",
      "US movie ratings by genre (JOB 13a family): nine relations with "
      "two info_type aliases.",
      "dnl",
      {{"t", kTitle, 94},
       {"kt", kKindType, 16},
       {"mi", kMovieInfo, 64},
       {"it1", kInfoType, 16},
       {"mi_idx", kMovieInfoIdx, 32},
       {"it2", kInfoType, 16},
       {"mc", kMovieCompanies, 48},
       {"cn", kCompanyName, 40},
       {"ct", kCompanyType, 16}},
      {{"kt", 1.0 / kKindType, "kind = 'movie'"},
       {"it1", 1.0 / 113, "info = 'rating'"},
       {"it2", 1.0 / 113, "info = 'release dates'"},
       {"cn", 0.36, "country_code = '[us]'"}},
      {{"t", "kind_id", "kt", "id", kKindType, kKindType},
       {"t", "id", "mi", "movie_id", kTitle, kMiMovies},
       {"t", "id", "mi_idx", "movie_id", kTitle, kMiIdxMovies},
       {"t", "id", "mc", "movie_id", kTitle, kMcMovies},
       {"mi", "info_type_id", "it2", "id", kInfoType, kInfoType},
       {"mi_idx", "info_type_id", "it1", "id", kInfoType, kInfoType},
       {"mc", "company_id", "cn", "id", kCompanyName, kCompanyName},
       {"mc", "company_type_id", "ct", "id", kCompanyType, kCompanyType},
       {"mi", "movie_id", "mi_idx", "movie_id", kMiMovies, kMiIdxMovies}}});

  queries.push_back(QueryDef{
      "job17.bjq",
      "Movies with character keywords and US companies (JOB 17a family): "
      "cast_info joined against both hubs.",
      "hash",
      {{"t", kTitle, 94},
       {"ci", kCastInfo, 40},
       {"n", kName, 56},
       {"mk", kMovieKeyword, 24},
       {"k", kKeyword, 32},
       {"mc", kMovieCompanies, 48},
       {"cn", kCompanyName, 40}},
      {{"k", 1.0 / kKeyword, "keyword = 'character-name-in-title'"},
       {"n", 0.04, "name like 'B%'"},
       {"cn", 0.36, "country_code = '[us]'"}},
      {{"t", "id", "ci", "movie_id", kTitle, kCiMovies},
       {"t", "id", "mk", "movie_id", kTitle, kMkMovies},
       {"t", "id", "mc", "movie_id", kTitle, kMcMovies},
       {"ci", "person_id", "n", "id", kCiPersons, kName},
       {"mk", "keyword_id", "k", "id", kKeyword, kKeyword},
       {"mc", "company_id", "cn", "id", kCompanyName, kCompanyName},
       {"ci", "movie_id", "mk", "movie_id", kCiMovies, kMkMovies},
       {"mc", "movie_id", "mk", "movie_id", kMcMovies, kMkMovies}}});

  queries.push_back(QueryDef{
      "job22.bjq",
      "Western violence by rating (JOB 22a family): the largest query in "
      "the set — ten relations, both info aliases, keywords, companies.",
      "min",
      {{"t", kTitle, 94},
       {"kt", kKindType, 16},
       {"mi", kMovieInfo, 64},
       {"it1", kInfoType, 16},
       {"mi_idx", kMovieInfoIdx, 32},
       {"it2", kInfoType, 16},
       {"mk", kMovieKeyword, 24},
       {"k", kKeyword, 32},
       {"mc", kMovieCompanies, 48},
       {"cn", kCompanyName, 40}},
      {{"kt", 2.0 / kKindType, "kind in ('movie', 'episode')"},
       {"it1", 1.0 / 113, "info = 'countries'"},
       {"it2", 1.0 / 113, "info = 'rating'"},
       {"k", 0.0002, "keyword in ('murder', 'violence', ...)"},
       {"mi", 0.01, "info in ('Germany', 'Swedish', ...)"},
       {"mi_idx", 0.7, "info < '7.0'"},
       {"cn", 0.3, "country_code != '[us]'"},
       {"t", 0.2, "production_year > 2008"}},
      {{"t", "kind_id", "kt", "id", kKindType, kKindType},
       {"t", "id", "mi", "movie_id", kTitle, kMiMovies},
       {"t", "id", "mi_idx", "movie_id", kTitle, kMiIdxMovies},
       {"t", "id", "mk", "movie_id", kTitle, kMkMovies},
       {"t", "id", "mc", "movie_id", kTitle, kMcMovies},
       {"mi", "info_type_id", "it1", "id", kInfoType, kInfoType},
       {"mi_idx", "info_type_id", "it2", "id", kInfoType, kInfoType},
       {"mk", "keyword_id", "k", "id", kKeyword, kKeyword},
       {"mc", "company_id", "cn", "id", kCompanyName, kCompanyName},
       {"mi", "movie_id", "mk", "movie_id", kMiMovies, kMkMovies}}});

  return queries;
}

std::string Render(const QueryDef& query) {
  std::string out;
  out += StrFormat("# %s\n", query.title);
  out += "# Generated by tools/make_job_queries.cc -- do not edit by hand.\n";
  out += StrFormat("costmodel %s\n", query.cost_model);
  for (const TableUse& table : query.tables) {
    out += StrFormat("table %s %.0f %d\n", table.name, table.rows,
                     table.tuple_bytes);
  }
  for (const FilterUse& filter : query.filters) {
    out += StrFormat("filter %s %.10g  # %s\n", filter.table,
                     filter.selectivity, filter.what);
  }
  for (const JoinUse& join : query.joins) {
    out += StrFormat("join %s.%s = %s.%s %.0f %.0f\n", join.a, join.col_a,
                     join.b, join.col_b, join.distinct_a, join.distinct_b);
  }
  return out;
}

int Run(const std::string& out_dir) {
  const std::vector<QueryDef> queries = JobQueries();
  for (const QueryDef& query : queries) {
    const std::string path = out_dir + "/" + query.file;
    std::ofstream file(path, std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "make_job_queries: cannot write %s\n",
                   path.c_str());
      return 1;
    }
    file << Render(query);
    if (!file.flush()) {
      std::fprintf(stderr, "make_job_queries: write failed: %s\n",
                   path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("%zu queries\n", queries.size());
  return 0;
}

}  // namespace
}  // namespace blitz

int main(int argc, char** argv) {
  std::string out_dir = "examples/queries/job";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: make_job_queries [--out <dir>]\n");
      return 0;
    } else {
      std::fprintf(stderr, "make_job_queries: unknown argument %s\n",
                   arg.c_str());
      return 2;
    }
  }
  return blitz::Run(out_dir);
}
