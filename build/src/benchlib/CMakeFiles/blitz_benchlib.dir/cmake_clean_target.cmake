file(REMOVE_RECURSE
  "libblitz_benchlib.a"
)
