#ifndef BLITZ_SIMD_SPLIT_FILTER_H_
#define BLITZ_SIMD_SPLIT_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace blitz {

/// Lanes per filter call; the survivor mask is one std::uint64_t bit per
/// lane, so this cannot exceed 64.
inline constexpr int kSplitFilterBlock = 64;

/// Minimum popcount(S) for the batched kernel to engage. A subset of
/// cardinality k has 2^k - 2 proper splits; below 62 of them the dense
/// build costs more than the scalar loop it replaces, and small subsets
/// vastly outnumber large ones. Subsets below the gate take the classic
/// scalar nested-if path, which is bit-identical by definition.
inline constexpr int kSimdMinPopcount = 6;

// The batched find_best_split kernel, in two stages built on one fact:
// enumerating the proper subsets of S with the two's-complement successor
//     succ(lhs) = S & (lhs - S)
// visits them in increasing order of their *dense rank* — the k-bit
// integer formed by compressing lhs onto the k set bits of S (rank r is
// the subset whose binary digits are r's digits deposited onto S's set
// bits, lowest first). Two consequences shape the kernel:
//
//   1. The successor sequence can be materialized without the serial
//      two-cycle-latency successor chain: idx[r] for all 2^k ranks is
//      built by doubling (idx[r + 2^t] = idx[r] | bit_t), a fully
//      vectorizable pass of contiguous loads and stores.
//   2. The complement's rank is full_rank - r (full_rank = 2^k - 1 is the
//      rank of S itself), so once the costs are gathered into dense rank
//      order (dc[r] = cost[idx[r]]) the model-independent split gate
//          cost[lhs] + cost[S \ lhs] < best
//      becomes dc[r] + dc[full_rank - r] < best — one contiguous forward
//      load plus one contiguous reversed load per vector of lanes. No
//      per-lane gathers in the hot loop, no successor chain, no branches.
//
// The build stage runs once per subset S and writes idx[0..2^k) and
// dc[0..2^k); its scattered cost[idx[r]] reads are the single gather pass
// (hardware gathers on AVX2/AVX-512), and the reversed half of dc it
// produces is the cost[rhs] stream the filter consumes. The filter stage
// scans dense ranks in blocks of up to kSplitFilterBlock lanes — software-
// prefetching the next block of both dc streams — and returns the
// survivor mask under the block-entry best; the caller re-runs survivors
// through the exact scalar nested-if body, in rank (= successor) order,
// against the live best. The filter never drops a lane the scalar gates
// would have accepted: costs are non-negative and rejected rows are +inf,
// so the sum compare is exactly the scalar gate conjunction, evaluated
// against a best that is >= the live best (conservative). Hence the DP
// table, the best_lhs tie-breaks (first strict improvement in successor
// order), and the instrumentation counts are bit-identical to the classic
// loop for every cost model.

/// Builds the dense-rank compaction for subset `s` with popcount `k`:
/// idx[r] = the rank-r subset of s (successor order), dc[r] =
/// cost[idx[r]], for every r in [0, 2^k). idx and dc must each have 2^k
/// writable entries (SplitScratch below).
using SplitBuildFn = void (*)(const float* cost, std::uint64_t s, int k,
                              std::uint32_t* idx, float* dc);

/// Filters dense ranks [r0, r0 + count), count in [1, kSplitFilterBlock]:
/// bit i of the returned mask is set iff
///     dc[r0 + i] + dc[full_rank - (r0 + i)] < best,
/// where full_rank = 2^k - 1 is the rank of s itself. The caller
/// guarantees 1 <= r0 and r0 + count <= full_rank, so every touched rank
/// and its complement index a proper nonempty subset. NaN never survives
/// (ordered compare), matching the scalar !(x < y) rejection idiom.
using SplitFilterFn = std::uint64_t (*)(const float* dc,
                                        std::uint32_t full_rank,
                                        std::uint32_t r0, int count,
                                        float best);

/// One resolved dispatch level: the build/filter pair the best-split loop
/// runs. Obtained from GetSplitKernel (simd/dispatch.h); null kernel
/// pointer means "run the classic scalar loop".
struct SplitKernel {
  SplitBuildFn build;
  SplitFilterFn filter;
};

/// Reusable dense-compaction scratch — one per running thread (the build
/// stage writes it, so workers of the rank-parallel driver cannot share).
/// Sized for the largest subset of an n-relation problem: 2^n ranks at 8
/// bytes each, on top of the DP table's 16-33 bytes per row.
struct SplitScratch {
  std::vector<std::uint32_t> idx;
  std::vector<float> dc;

  void EnsureCapacity(int n) {
    const std::size_t rows = std::size_t{1} << n;
    if (idx.size() < rows) {
      idx.resize(rows);
      dc.resize(rows);
    }
  }
};

// The three compiled realizations. The portable pair is plain C++ (any
// target); the AVX2 / AVX-512 pairs live in per-TU -mavx2 / -mavx512f
// translation units and forward to the portable bodies when the toolchain
// cannot target the instruction set (the *Compiled() probes below report
// which; the CPU side is checked at runtime by simd/dispatch.cc).
void SplitBuildDensePortable(const float* cost, std::uint64_t s, int k,
                             std::uint32_t* idx, float* dc);
std::uint64_t SplitFilterDensePortable(const float* dc,
                                       std::uint32_t full_rank,
                                       std::uint32_t r0, int count,
                                       float best);

void SplitBuildDenseAvx2(const float* cost, std::uint64_t s, int k,
                         std::uint32_t* idx, float* dc);
std::uint64_t SplitFilterDenseAvx2(const float* dc, std::uint32_t full_rank,
                                   std::uint32_t r0, int count, float best);

void SplitBuildDenseAvx512(const float* cost, std::uint64_t s, int k,
                           std::uint32_t* idx, float* dc);
std::uint64_t SplitFilterDenseAvx512(const float* dc,
                                     std::uint32_t full_rank,
                                     std::uint32_t r0, int count,
                                     float best);

/// Whether the AVX2 / AVX-512 kernels above were actually compiled with
/// their instruction sets (compile-time capability; runtime dispatch also
/// requires the CPU to report the feature — see simd/dispatch.h).
bool SplitFilterAvx2Compiled();
bool SplitFilterAvx512Compiled();

}  // namespace blitz

#endif  // BLITZ_SIMD_SPLIT_FILTER_H_
