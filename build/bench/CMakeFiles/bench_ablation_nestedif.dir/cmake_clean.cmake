file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nestedif.dir/bench_ablation_nestedif.cc.o"
  "CMakeFiles/bench_ablation_nestedif.dir/bench_ablation_nestedif.cc.o.d"
  "bench_ablation_nestedif"
  "bench_ablation_nestedif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nestedif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
