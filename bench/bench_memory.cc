// Space-complexity check for Section 4.1: "each row of our dynamic
// programming table need occupy only 16 bytes ... the O(2^n) space
// complexity estimate may now be refined to 16 * 2^n bytes. Most modern
// workstations can accommodate this space requirement for n up to at
// least 20."
//
// Prints the measured footprint of each table configuration next to the
// paper's 16 * 2^n budget, plus the table-allocation time.

#include <cstdio>

#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/strings.h"
#include "core/dp_table.h"

namespace blitz {
namespace {

std::string Human(std::uint64_t bytes) {
  if (bytes >= (1ull << 30)) {
    return StrFormat("%.2f GiB", bytes / 1073741824.0);
  }
  if (bytes >= (1ull << 20)) {
    return StrFormat("%.2f MiB", bytes / 1048576.0);
  }
  if (bytes >= (1ull << 10)) return StrFormat("%.1f KiB", bytes / 1024.0);
  return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
}

int Run() {
  const int max_n = BenchEnvInt("BLITZ_MEMORY_MAX_N", 22);
  std::printf(
      "DP table memory (Section 4.1; the paper's budget is 16 * 2^n "
      "bytes)\n\n");
  TextTable out;
  out.SetHeader({"n", "paper 16*2^n", "cartesian", "join", "join+aux",
                 "alloc (ms)"});
  for (int n = 10; n <= max_n; n += 2) {
    Result<DpTable> cartesian = DpTable::Create(n, false, false);
    Result<DpTable> join = DpTable::Create(n, true, false);
    Stopwatch watch;
    Result<DpTable> join_aux = DpTable::Create(n, true, true);
    const double alloc_ms = watch.ElapsedSeconds() * 1e3;
    if (!cartesian.ok() || !join.ok() || !join_aux.ok()) {
      out.AddRow({StrFormat("%d", n), "-", "allocation failed", "", "", ""});
      continue;
    }
    out.AddRow({StrFormat("%d", n),
                Human(std::uint64_t{16} << n),
                Human(cartesian->MemoryBytes()),
                Human(join->MemoryBytes()),
                Human(join_aux->MemoryBytes()),
                StrFormat("%.1f", alloc_ms)});
  }
  std::printf("%s\n", out.ToString().c_str());
  std::printf(
      "Our Cartesian configuration matches the paper's 16-byte rows; the\n"
      "join configuration adds the Pi_fan column (Section 5.4) and models\n"
      "with a memo add one more (the Appendix's memoized x(1+log x)).\n");
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
