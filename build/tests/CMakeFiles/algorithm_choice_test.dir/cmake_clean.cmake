file(REMOVE_RECURSE
  "CMakeFiles/algorithm_choice_test.dir/algorithm_choice_test.cc.o"
  "CMakeFiles/algorithm_choice_test.dir/algorithm_choice_test.cc.o.d"
  "algorithm_choice_test"
  "algorithm_choice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_choice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
