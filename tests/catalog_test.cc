#include "catalog/catalog.h"

#include <cmath>

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(CatalogTest, CreateBasics) {
  Result<Catalog> catalog = Catalog::Create({
      {"orders", 1000, 128},
      {"lineitem", 6000, 96},
  });
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->num_relations(), 2);
  EXPECT_EQ(catalog->relation(0).name, "orders");
  EXPECT_DOUBLE_EQ(catalog->cardinality(1), 6000);
  EXPECT_EQ(catalog->AllRelations(), RelSet::FirstN(2));
}

TEST(CatalogTest, FromCardinalitiesNamesRelations) {
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 20, 30});
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->relation(0).name, "R0");
  EXPECT_EQ(catalog->relation(2).name, "R2");
}

TEST(CatalogTest, EmptyNameGetsDefault) {
  Result<Catalog> catalog = Catalog::Create({{"", 5, 64}});
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->relation(0).name, "R0");
}

TEST(CatalogTest, RejectsEmpty) {
  EXPECT_FALSE(Catalog::Create({}).ok());
}

TEST(CatalogTest, RejectsTooManyRelations) {
  std::vector<RelationStats> relations(kMaxRelations + 1);
  for (size_t i = 0; i < relations.size(); ++i) {
    relations[i] = {"r" + std::to_string(i), 10, 64};
  }
  Result<Catalog> catalog = Catalog::Create(std::move(relations));
  EXPECT_FALSE(catalog.ok());
  EXPECT_EQ(catalog.status().code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, RejectsBadCardinality) {
  EXPECT_FALSE(Catalog::FromCardinalities({0}).ok());
  EXPECT_FALSE(Catalog::FromCardinalities({-5}).ok());
  EXPECT_FALSE(
      Catalog::FromCardinalities({std::numeric_limits<double>::infinity()})
          .ok());
  EXPECT_FALSE(
      Catalog::FromCardinalities({std::nan("")}).ok());
}

TEST(CatalogTest, FractionalCardinalityAllowed) {
  // Cardinalities are estimates and may be fractional.
  EXPECT_TRUE(Catalog::FromCardinalities({0.5}).ok());
}

TEST(CatalogTest, RejectsDuplicateNames) {
  Result<Catalog> catalog = Catalog::Create({{"x", 1, 64}, {"x", 2, 64}});
  EXPECT_FALSE(catalog.ok());
}

TEST(CatalogTest, RejectsBadTupleWidth) {
  EXPECT_FALSE(Catalog::Create({{"x", 1, 0}}).ok());
  EXPECT_FALSE(Catalog::Create({{"x", 1, -8}}).ok());
}

TEST(CatalogTest, FindByName) {
  Result<Catalog> catalog = Catalog::Create({{"a", 1, 64}, {"b", 2, 64}});
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->FindByName("a"), 0);
  EXPECT_EQ(catalog->FindByName("b"), 1);
  EXPECT_EQ(catalog->FindByName("zzz"), -1);
}

TEST(CatalogTest, GeometricMean) {
  Result<Catalog> catalog = Catalog::FromCardinalities({1, 100});
  ASSERT_TRUE(catalog.ok());
  EXPECT_NEAR(catalog->GeometricMeanCardinality(), 10.0, 1e-12);
  Result<Catalog> same = Catalog::FromCardinalities({50, 50, 50});
  ASSERT_TRUE(same.ok());
  EXPECT_NEAR(same->GeometricMeanCardinality(), 50.0, 1e-12);
}

}  // namespace
}  // namespace blitz
