#include "benchlib/timing.h"

#include <cstdlib>

#include "common/strings.h"

namespace blitz {

TimingResult TimeIt(const std::function<void()>& fn, double min_total_seconds,
                    int min_repetitions) {
  TimingResult result;
  Stopwatch watch;
  while (result.repetitions < min_repetitions ||
         result.total_seconds < min_total_seconds) {
    Stopwatch run;
    fn();
    result.total_seconds += run.ElapsedSeconds();
    ++result.repetitions;
    // Safety valve: never spin more than ~60x the requested floor on a
    // single point (can happen if one run is far below the clock grain).
    if (result.repetitions >= 1 && watch.ElapsedSeconds() >
        60.0 * (min_total_seconds > 0 ? min_total_seconds : 1.0)) {
      break;
    }
  }
  result.seconds_per_run = result.total_seconds / result.repetitions;
  return result;
}

double BenchMinSeconds(double fallback) {
  const char* env = std::getenv("BLITZ_BENCH_MIN_SECONDS");
  if (env == nullptr) return fallback;
  double value = 0;
  if (!ParseDouble(env, &value) || value < 0) return fallback;
  return value;
}

int BenchEnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  int value = 0;
  if (!ParseInt(env, &value)) return fallback;
  return value;
}

}  // namespace blitz
