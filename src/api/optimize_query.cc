#include "api/optimize_query.h"

#include <utility>

#include "plan/algorithm_choice.h"
#include "plan/evaluate.h"

namespace blitz {

Result<OptimizedQuery> OptimizeQuery(const Catalog& catalog,
                                     const JoinGraph& graph,
                                     const QueryOptimizerOptions& options) {
  if (graph.num_relations() != catalog.num_relations()) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  if (options.exhaustive_limit < 1) {
    return Status::InvalidArgument("exhaustive_limit must be >= 1");
  }

  OptimizedQuery result;
  if (catalog.num_relations() <= options.exhaustive_limit) {
    OptimizerOptions dp_options;
    dp_options.cost_model = options.cost_model;
    Result<OptimizeOutcome> outcome = Status::Internal("unset");
    if (options.initial_cost_threshold.has_value()) {
      ThresholdLadderOptions ladder;
      ladder.initial_threshold = *options.initial_cost_threshold;
      Result<LadderOutcome> laddered =
          OptimizeJoinWithThresholds(catalog, graph, dp_options, ladder);
      if (!laddered.ok()) return laddered.status();
      result.passes = laddered->passes;
      outcome = std::move(laddered->outcome);
    } else {
      outcome = OptimizeJoin(catalog, graph, dp_options);
      if (!outcome.ok()) return outcome.status();
    }
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
    if (!plan.ok()) return plan.status();
    result.plan = std::move(plan).value();
    result.exact = true;
  } else {
    HybridOptions hybrid = options.hybrid;
    hybrid.cost_model = options.cost_model;
    Result<HybridResult> outcome = OptimizeHybrid(catalog, graph, hybrid);
    if (!outcome.ok()) return outcome.status();
    result.plan = std::move(outcome->plan);
    result.exact = false;
  }

  result.cost =
      EvaluateCost(result.plan, catalog, graph, options.cost_model);
  if (options.attach_algorithms) {
    ChooseAlgorithms(&result.plan, catalog, graph, options.cost_model);
  }
  return result;
}

}  // namespace blitz
