#include "core/optimizer.h"

#include <cmath>
#include <utility>

#include "common/strings.h"
#include "core/blitzsplit.h"
#include "core/table_arena.h"
#include "governor/faultpoints.h"
#include "governor/governor.h"
#include "obs/metrics.h"
#include "obs/profiler/profiler.h"
#include "obs/trace.h"
#include "parallel/blitzsplit_ranked.h"

namespace blitz {

namespace {

/// Tallies a governor abort into the metrics registry and returns the
/// abort status for propagation.
Status RecordGovernorAbort(Status status) {
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    switch (status.code()) {
      case StatusCode::kDeadlineExceeded:
        metrics->AddCounter("governor.deadline_exceeded");
        break;
      case StatusCode::kCancelled:
        metrics->AddCounter("governor.cancelled");
        break;
      case StatusCode::kResourceExhausted:
        metrics->AddCounter("governor.admission_rejected");
        break;
      default:
        metrics->AddCounter("governor.aborts");
        break;
    }
  }
  return status;
}

/// Folds one pass's operation counters into the global metrics registry
/// (no-op unless a registry is installed and counting was requested).
void FoldCountersIntoMetrics(const CountingInstrumentation& counters) {
  MetricsRegistry* metrics = GlobalMetrics();
  if (metrics == nullptr) return;
  metrics->AddCounter("optimizer.subsets_visited", counters.subsets_visited);
  metrics->AddCounter("optimizer.loop_iterations", counters.loop_iterations);
  metrics->AddCounter("optimizer.operand_passes", counters.operand_passes);
  metrics->AddCounter("optimizer.kappa2_evaluations",
                      counters.kappa2_evaluations);
  metrics->AddCounter("optimizer.improvements", counters.improvements);
  metrics->AddCounter("optimizer.threshold_skips", counters.threshold_skips);
}

std::vector<double> BaseCards(const Catalog& catalog) {
  std::vector<double> cards(catalog.num_relations());
  for (int i = 0; i < catalog.num_relations(); ++i) {
    cards[i] = catalog.cardinality(i);
  }
  return cards;
}

/// Runs one pass with a fully compile-time configuration, choosing the
/// sequential integer-order driver or the rank-synchronous parallel driver
/// at runtime. `resolved` is options.budget pinned via Resolved() so the
/// parallel workers' per-thread governors share the caller's clock.
template <typename Model, bool kWithPredicates, bool kNestedIfs,
          typename Instr>
float RunConfigured(const Model& model, const OptimizerOptions& options,
                    const ResourceBudget& resolved,
                    const std::vector<double>& base_cards,
                    const JoinGraph* graph, DpTable* table, Instr* instr,
                    GovernorState* governor,
                    const SplitKernel* split_kernel) {
  if (options.parallel.ShouldParallelize(
          static_cast<int>(base_cards.size()))) {
    return RunBlitzSplitRanked<Model, kWithPredicates, kNestedIfs>(
        model, base_cards, graph, options.cost_threshold, table, instr,
        options.parallel, resolved, governor, split_kernel);
  }
  return RunBlitzSplit<Model, kWithPredicates, kNestedIfs>(
      model, base_cards, graph, options.cost_threshold, table, instr,
      governor, split_kernel);
}

/// Whether the model's kappa'' is identically zero, making the batched
/// operand gate the complete cost comparison (kSplitGateTight in
/// cost/cost_model.h).
bool ModelGateTight(CostModelKind kind) {
  return DispatchCostModel(kind, [](auto model) {
    return decltype(model)::kSplitGateTight;
  });
}

/// Resolves the pass's SIMD kernel exactly once: cpuid probe plus the
/// BLITZ_SIMD / options.simd override (simd/dispatch.h), folded into a
/// build/filter pair every driver and worker of the pass shares. The flat
/// nested_ifs = false ablation has no model-independent gate to batch, so
/// it reports (and runs) kScalar regardless of the request. An auto-chosen
/// level additionally engages only for gate-tight models (kappa'' = 0) —
/// elsewhere the filter passes nearly every split and batching is pure
/// overhead — and only for problems of at least kSimdMinAutoRelations
/// relations, where the dense build amortizes (BENCH_fig2.json measured
/// sub-1x auto speedups at n = 5-11). An explicit --simd= / BLITZ_SIMD
/// request is always honored so ablations and benchmarks can measure any
/// combination.
SimdLevel ResolvePassSimd(const OptimizerOptions& options, int num_relations,
                          const SplitKernel** split_kernel) {
  if (!options.nested_ifs) {
    *split_kernel = nullptr;
    return SimdLevel::kScalar;
  }
  const SimdResolution res = ResolveSimdLevelDetailed(options.simd);
  if (res.from_auto && (!ModelGateTight(options.cost_model) ||
                        num_relations < kSimdMinAutoRelations)) {
    *split_kernel = nullptr;
    return SimdLevel::kScalar;
  }
  *split_kernel = GetSplitKernel(res.level);
  return res.level;
}

/// Tallies the per-pass kernel choice (one counter per dispatch level).
void RecordSimdMetric(SimdLevel resolved) {
  MetricsRegistry* metrics = GlobalMetrics();
  if (metrics == nullptr) return;
  switch (resolved) {
    case SimdLevel::kAvx512:
      metrics->AddCounter("optimizer.simd_avx512_passes");
      break;
    case SimdLevel::kAvx2:
      metrics->AddCounter("optimizer.simd_avx2_passes");
      break;
    case SimdLevel::kBlock:
      metrics->AddCounter("optimizer.simd_block_passes");
      break;
    default:
      metrics->AddCounter("optimizer.simd_scalar_passes");
      break;
  }
}

/// Dispatches to the right blitzsplit instantiation for the runtime
/// options. `graph` is null for the Cartesian-only variant. Returns the
/// pass's resolved SIMD level through *simd_level (never kAuto).
template <bool kWithPredicates>
float Dispatch(const OptimizerOptions& options,
               const ResourceBudget& resolved,
               const std::vector<double>& base_cards, const JoinGraph* graph,
               DpTable* table, CountingInstrumentation* counters,
               GovernorState* governor, SimdLevel* simd_level) {
  const SplitKernel* split_kernel = nullptr;
  const SimdLevel simd = ResolvePassSimd(
      options, static_cast<int>(base_cards.size()), &split_kernel);
  if (simd_level != nullptr) *simd_level = simd;
  RecordSimdMetric(simd);
  return DispatchCostModel(options.cost_model, [&](auto model) -> float {
    using Model = decltype(model);
    if (options.profile != nullptr) {
      // Performance-observatory pass: phase/rank tick attribution plus
      // survivor tallies, folded into the caller's sink and the global
      // profiler. Takes precedence over count_operations (the profile
      // carries the loop/kappa'' counts itself).
      ProfilingInstrumentation instr;
      float cost;
      if (options.nested_ifs) {
        cost = RunConfigured<Model, kWithPredicates, true>(
            model, options, resolved, base_cards, graph, table, &instr,
            governor, split_kernel);
      } else {
        cost = RunConfigured<Model, kWithPredicates, false>(
            model, options, resolved, base_cards, graph, table, &instr,
            governor, split_kernel);
      }
      *options.profile += instr.profile;
      if (Profiler* profiler = GlobalProfiler()) {
        profiler->FoldPass(instr.profile);
      }
      return cost;
    }
    if (options.count_operations) {
      CountingInstrumentation instr;
      float cost;
      if (options.nested_ifs) {
        cost = RunConfigured<Model, kWithPredicates, true>(
            model, options, resolved, base_cards, graph, table, &instr,
            governor, split_kernel);
      } else {
        cost = RunConfigured<Model, kWithPredicates, false>(
            model, options, resolved, base_cards, graph, table, &instr,
            governor, split_kernel);
      }
      if (counters != nullptr) *counters += instr;
      return cost;
    }
    NoInstrumentation no_instr;
    if (options.nested_ifs) {
      return RunConfigured<Model, kWithPredicates, true>(
          model, options, resolved, base_cards, graph, table, &no_instr,
          governor, split_kernel);
    }
    return RunConfigured<Model, kWithPredicates, false>(
        model, options, resolved, base_cards, graph, table, &no_instr,
        governor, split_kernel);
  });
}

/// Dispatches the external-cards (non-exact estimator) variant: the card
/// column is preloaded from `all_cards` and the sequential
/// RunBlitzSplitWithCards driver runs — same threshold pre-skip, SIMD
/// gate, and governor ticks, no Pi_fan recurrence. Returns the resolved
/// SIMD level through *simd_level (never kAuto).
float DispatchWithCards(const OptimizerOptions& options,
                        const std::vector<double>& all_cards, DpTable* table,
                        CountingInstrumentation* counters,
                        GovernorState* governor, SimdLevel* simd_level) {
  const SplitKernel* split_kernel = nullptr;
  const SimdLevel simd =
      ResolvePassSimd(options, table->num_relations(), &split_kernel);
  if (simd_level != nullptr) *simd_level = simd;
  RecordSimdMetric(simd);
  return DispatchCostModel(options.cost_model, [&](auto model) -> float {
    using Model = decltype(model);
    const auto run = [&](auto* instr) -> float {
      if (options.nested_ifs) {
        return RunBlitzSplitWithCards<Model, true>(
            model, all_cards, options.cost_threshold, table, instr, governor,
            split_kernel);
      }
      return RunBlitzSplitWithCards<Model, false>(
          model, all_cards, options.cost_threshold, table, instr, governor,
          split_kernel);
    };
    if (options.profile != nullptr) {
      ProfilingInstrumentation instr;
      const float cost = run(&instr);
      *options.profile += instr.profile;
      if (Profiler* profiler = GlobalProfiler()) {
        profiler->FoldPass(instr.profile);
      }
      return cost;
    }
    if (options.count_operations) {
      CountingInstrumentation instr;
      const float cost = run(&instr);
      if (counters != nullptr) *counters += instr;
      return cost;
    }
    NoInstrumentation no_instr;
    return run(&no_instr);
  });
}

/// Shared entry gate for the three governed entry points: fault injection
/// (kFaultOptimizePass, kFailStatus only), then an immediate governor check
/// so an already-expired deadline or pre-cancelled token fails fast even
/// for problems too small to reach an amortized in-loop check.
Status AdmitPass(GovernorState* governor) {
  if (std::optional<FaultSpec> fault = FaultHit(kFaultOptimizePass)) {
    if (fault->kind == FaultKind::kFailStatus) {
      return RecordGovernorAbort(fault->status);
    }
  }
  if (governor->active() && governor->CheckNow()) {
    return RecordGovernorAbort(governor->status());
  }
  return Status::OK();
}

bool ModelNeedsAux(CostModelKind kind) {
  return DispatchCostModel(kind, [](auto model) {
    return decltype(model)::kNeedsAux;
  });
}

/// True when the pass resolves cardinalities through the built-in exact
/// derivation: no estimator handle, or an exact one (PaperFanoutEstimator).
/// Exact passes ride the fused Pi_fan hot path untouched.
bool UsesExactCards(const OptimizerOptions& options) {
  return options.estimator == nullptr || options.estimator->exact();
}

EstimatorKind ResolvedEstimatorKind(const OptimizerOptions& options) {
  return options.estimator != nullptr ? options.estimator->kind()
                                      : EstimatorKind::kPaperFanout;
}

Status ValidateEstimator(const OptimizerOptions& options, int num_relations) {
  if (options.estimator != nullptr &&
      options.estimator->num_relations() != num_relations) {
    return Status::InvalidArgument(StrFormat(
        "estimator covers %d relations but the problem has %d",
        options.estimator->num_relations(), num_relations));
  }
  return Status::OK();
}

}  // namespace

SimdLevel EffectivePassSimdLevel(const OptimizerOptions& options,
                                 int num_relations) {
  const SplitKernel* ignored = nullptr;
  return ResolvePassSimd(options, num_relations, &ignored);
}

Status OptimizerOptions::Validate() const {
  if (std::isnan(cost_threshold) || cost_threshold <= 0.0f) {
    return Status::InvalidArgument(
        "cost_threshold must be positive (use kRejectedCost to disable)");
  }
  return parallel.Validate();
}

Result<OptimizeOutcome> OptimizeJoin(const Catalog& catalog,
                                     const JoinGraph& graph,
                                     const OptimizerOptions& options) {
  BLITZ_RETURN_IF_ERROR(options.Validate());
  if (graph.num_relations() != catalog.num_relations()) {
    return Status::InvalidArgument(StrFormat(
        "graph has %d relations but catalog has %d", graph.num_relations(),
        catalog.num_relations()));
  }
  BLITZ_RETURN_IF_ERROR(
      ValidateEstimator(options, catalog.num_relations()));
  const MetricTimer timer;
  TraceSpan span("OptimizeJoin");
  span.AddArg("n", catalog.num_relations());
  span.AddArg("threshold", options.cost_threshold);
  // Resolve the budget once so the pass governor and every parallel
  // worker's governor share one absolute deadline.
  const ResourceBudget resolved = options.budget.Resolved();
  GovernorState governor(resolved);
  BLITZ_RETURN_IF_ERROR(AdmitPass(&governor));
  const bool needs_aux = ModelNeedsAux(options.cost_model);
  // Exact passes fuse the Pi_fan recurrence into the DP (pi_fan column);
  // non-exact passes preload the card column from the estimator instead.
  const bool exact_cards = UsesExactCards(options);
  if (governor.active()) {
    Status admitted = governor.AdmitAllocation(DpTable::EstimateBytes(
        catalog.num_relations(), /*with_pi_fan=*/exact_cards, needs_aux));
    if (!admitted.ok()) return RecordGovernorAbort(std::move(admitted));
  }
  Result<DpTable> table =
      options.table_arena != nullptr
          ? options.table_arena->Acquire(catalog.num_relations(),
                                         /*with_pi_fan=*/exact_cards,
                                         needs_aux)
          : DpTable::Create(catalog.num_relations(),
                            /*with_pi_fan=*/exact_cards, needs_aux);
  if (!table.ok()) return table.status();
  OptimizeOutcome outcome{std::move(table).value(), kRejectedCost, {}};
  outcome.estimator = ResolvedEstimatorKind(options);
  if (exact_cards) {
    outcome.cost = Dispatch<true>(options, resolved, BaseCards(catalog),
                                  &graph, &outcome.table, &outcome.counters,
                                  governor.active() ? &governor : nullptr,
                                  &outcome.simd_level);
  } else {
    std::vector<double> all_cards;
    options.estimator->EstimateAll(&all_cards);
    outcome.cost = DispatchWithCards(options, all_cards, &outcome.table,
                                     &outcome.counters,
                                     governor.active() ? &governor : nullptr,
                                     &outcome.simd_level);
  }
  if (governor.aborted()) return RecordGovernorAbort(governor.status());
  span.AddArg("cost", outcome.cost);
  span.AddArg("simd", static_cast<double>(outcome.simd_level));
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("optimizer.join_calls");
    metrics->MaxGauge("optimizer.peak_dp_table_bytes",
                      static_cast<double>(outcome.table.MemoryBytes()));
    metrics->RecordLatency("optimizer.join_seconds", timer.ElapsedSeconds());
    if (options.count_operations) FoldCountersIntoMetrics(outcome.counters);
  }
  return outcome;
}

Result<OptimizeOutcome> OptimizeCartesian(const Catalog& catalog,
                                          const OptimizerOptions& options) {
  BLITZ_RETURN_IF_ERROR(options.Validate());
  const MetricTimer timer;
  TraceSpan span("OptimizeCartesian");
  span.AddArg("n", catalog.num_relations());
  const ResourceBudget resolved = options.budget.Resolved();
  GovernorState governor(resolved);
  BLITZ_RETURN_IF_ERROR(AdmitPass(&governor));
  const bool needs_aux = ModelNeedsAux(options.cost_model);
  if (governor.active()) {
    Status admitted = governor.AdmitAllocation(DpTable::EstimateBytes(
        catalog.num_relations(), /*with_pi_fan=*/false, needs_aux));
    if (!admitted.ok()) return RecordGovernorAbort(std::move(admitted));
  }
  Result<DpTable> table =
      options.table_arena != nullptr
          ? options.table_arena->Acquire(catalog.num_relations(),
                                         /*with_pi_fan=*/false, needs_aux)
          : DpTable::Create(catalog.num_relations(),
                            /*with_pi_fan=*/false, needs_aux);
  if (!table.ok()) return table.status();
  OptimizeOutcome outcome{std::move(table).value(), kRejectedCost, {}};
  outcome.cost = Dispatch<false>(options, resolved, BaseCards(catalog),
                                 nullptr, &outcome.table, &outcome.counters,
                                 governor.active() ? &governor : nullptr,
                                 &outcome.simd_level);
  if (governor.aborted()) return RecordGovernorAbort(governor.status());
  span.AddArg("cost", outcome.cost);
  span.AddArg("simd", static_cast<double>(outcome.simd_level));
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("optimizer.cartesian_calls");
    metrics->MaxGauge("optimizer.peak_dp_table_bytes",
                      static_cast<double>(outcome.table.MemoryBytes()));
    metrics->RecordLatency("optimizer.cartesian_seconds",
                           timer.ElapsedSeconds());
    if (options.count_operations) FoldCountersIntoMetrics(outcome.counters);
  }
  return outcome;
}

Result<float> ReoptimizeJoinInPlace(const Catalog& catalog,
                                    const JoinGraph& graph,
                                    const OptimizerOptions& options,
                                    DpTable* table,
                                    CountingInstrumentation* counters) {
  if (graph.num_relations() != catalog.num_relations() ||
      table->num_relations() != catalog.num_relations()) {
    return Status::InvalidArgument("relation-count mismatch");
  }
  if (!table->has_pi_fan() ||
      table->has_aux() != ModelNeedsAux(options.cost_model)) {
    return Status::FailedPrecondition(
        "table columns do not match the requested configuration");
  }
  if (!UsesExactCards(options)) {
    return Status::FailedPrecondition(
        "in-place reoptimization requires the exact (paper) estimator");
  }
  BLITZ_RETURN_IF_ERROR(options.Validate());
  const MetricTimer timer;
  TraceSpan span("ReoptimizeJoinInPlace");
  span.AddArg("n", catalog.num_relations());
  span.AddArg("threshold", options.cost_threshold);
  const ResourceBudget resolved = options.budget.Resolved();
  GovernorState governor(resolved);
  BLITZ_RETURN_IF_ERROR(AdmitPass(&governor));
  // `counters` accumulates across calls; fold only this pass's delta.
  CountingInstrumentation pass_counters;
  const float cost = Dispatch<true>(options, resolved, BaseCards(catalog),
                                    &graph, table, &pass_counters,
                                    governor.active() ? &governor : nullptr,
                                    nullptr);
  // A governed abort leaves the table partially overwritten, which is safe:
  // whether a pass runs sequentially (integer order) or rank-parallel (every
  // rank rewritten before the next is read), the next in-place pass rewrites
  // every row before depending on it.
  if (governor.aborted()) return RecordGovernorAbort(governor.status());
  span.AddArg("cost", cost);
  if (counters != nullptr) *counters += pass_counters;
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("optimizer.reoptimize_calls");
    metrics->RecordLatency("optimizer.join_seconds", timer.ElapsedSeconds());
    if (options.count_operations) FoldCountersIntoMetrics(pass_counters);
  }
  return cost;
}

Result<LadderOutcome> OptimizeJoinWithThresholds(
    const Catalog& catalog, const JoinGraph& graph,
    const OptimizerOptions& options, const ThresholdLadderOptions& ladder) {
  if (!(ladder.initial_threshold > 0) || !(ladder.growth_factor > 1)) {
    return Status::InvalidArgument(
        "threshold ladder requires positive threshold and growth factor > 1");
  }
  const MetricTimer timer;
  TraceSpan ladder_span("OptimizeJoinWithThresholds");
  ladder_span.AddArg("n", catalog.num_relations());
  LadderOutcome result;
  OptimizerOptions pass_options = options;
  pass_options.cost_threshold = ladder.initial_threshold;
  // Pin the deadline to an absolute time point so every ladder pass shares
  // one clock — a re-optimization must not grant itself a fresh allowance.
  pass_options.budget = options.budget.Resolved();
  const auto finish = [&](LadderOutcome finished) {
    ladder_span.AddArg("passes", finished.passes);
    if (MetricsRegistry* metrics = GlobalMetrics()) {
      metrics->AddCounter("optimizer.ladder_calls");
      metrics->AddCounter("optimizer.ladder_passes",
                          static_cast<std::uint64_t>(finished.passes));
      metrics->RecordLatency("optimizer.ladder_seconds",
                             timer.ElapsedSeconds());
    }
    return finished;
  };
  for (int pass = 0; pass < ladder.max_thresholded_passes; ++pass) {
    TraceSpan pass_span("ladder_pass");
    pass_span.AddArg("pass", pass);
    pass_span.AddArg("threshold", pass_options.cost_threshold);
    Result<OptimizeOutcome> outcome =
        OptimizeJoin(catalog, graph, pass_options);
    if (!outcome.ok()) return outcome.status();
    result.thresholds_tried.push_back(pass_options.cost_threshold);
    ++result.passes;
    pass_span.AddArg("found_plan", outcome->found_plan() ? 1 : 0);
    if (outcome->found_plan()) {
      result.outcome = std::move(outcome).value();
      return finish(std::move(result));
    }
    pass_options.cost_threshold *= ladder.growth_factor;
    // Once the threshold stops being representable there is no point in
    // another thresholded pass.
    if (!(pass_options.cost_threshold < kRejectedCost)) break;
  }
  // Last resort: unbounded pass (Section 6.3 overflow rejection only).
  pass_options.cost_threshold = kRejectedCost;
  TraceSpan pass_span("ladder_pass");
  pass_span.AddArg("pass", result.passes);
  pass_span.AddArg("threshold", pass_options.cost_threshold);
  Result<OptimizeOutcome> outcome = OptimizeJoin(catalog, graph, pass_options);
  if (!outcome.ok()) return outcome.status();
  result.thresholds_tried.push_back(kRejectedCost);
  ++result.passes;
  pass_span.AddArg("found_plan", 1);
  result.outcome = std::move(outcome).value();
  return finish(std::move(result));
}

}  // namespace blitz
