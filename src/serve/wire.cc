#include "serve/wire.h"

#include <cctype>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace blitz {

namespace {

constexpr std::string_view kRequestMagic = "blitzq1";
constexpr std::string_view kResponseMagic = "blitzr1";

bool ParseUint64(std::string_view s, std::uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// Parses the optional trailing "<key>=<ms>" field shared by both headers.
bool ParseMsField(std::string_view field, std::string_view key, double* out) {
  if (!StartsWith(field, key) || field.size() <= key.size() ||
      field[key.size()] != '=') {
    return false;
  }
  double value = 0;
  if (!ParseDouble(field.substr(key.size() + 1), &value) || !(value >= 0) ||
      value > 1e12) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

bool IsValidTenantName(std::string_view tenant) {
  if (tenant.empty() || tenant.size() > 64) return false;
  for (const char c : tenant) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '.' && c != '-') {
      return false;
    }
  }
  return true;
}

std::string EncodeRequestFrame(const RequestFrame& frame) {
  std::string header = StrFormat(
      "%.*s %s %llu %llu", static_cast<int>(kRequestMagic.size()),
      kRequestMagic.data(), frame.tenant.c_str(),
      static_cast<unsigned long long>(frame.id),
      static_cast<unsigned long long>(frame.body.size()));
  if (frame.deadline_ms > 0) {
    header += StrFormat(" deadline_ms=%g", frame.deadline_ms);
  }
  header += '\n';
  return header + frame.body;
}

std::string EncodeResponseFrame(const ResponseFrame& frame) {
  std::string header = StrFormat(
      "%.*s %llu %s %llu", static_cast<int>(kResponseMagic.size()),
      kResponseMagic.data(), static_cast<unsigned long long>(frame.id),
      StatusCodeToString(frame.code),
      static_cast<unsigned long long>(frame.body.size()));
  if (frame.retry_after_ms > 0) {
    header += StrFormat(" retry_after_ms=%g", frame.retry_after_ms);
  }
  header += '\n';
  return header + frame.body;
}

Result<RequestFrame> ParseRequestHeader(std::string_view line,
                                        std::uint64_t* body_bytes) {
  const std::vector<std::string> fields = StrSplit(line, ' ');
  if (fields.size() < 4 || fields.size() > 5 || fields[0] != kRequestMagic) {
    return Status::InvalidArgument("malformed request header: " +
                                   std::string(line));
  }
  RequestFrame frame;
  if (!IsValidTenantName(fields[1])) {
    return Status::InvalidArgument("bad tenant name: " + fields[1]);
  }
  frame.tenant = fields[1];
  if (!ParseUint64(fields[2], &frame.id) ||
      !ParseUint64(fields[3], body_bytes)) {
    return Status::InvalidArgument("malformed request header: " +
                                   std::string(line));
  }
  if (fields.size() == 5 &&
      !ParseMsField(fields[4], "deadline_ms", &frame.deadline_ms)) {
    return Status::InvalidArgument("bad request field: " + fields[4]);
  }
  return frame;
}

Result<ResponseFrame> ParseResponseHeader(std::string_view line,
                                          std::uint64_t* body_bytes) {
  const std::vector<std::string> fields = StrSplit(line, ' ');
  if (fields.size() < 4 || fields.size() > 5 ||
      fields[0] != kResponseMagic) {
    return Status::InvalidArgument("malformed response header: " +
                                   std::string(line));
  }
  ResponseFrame frame;
  if (!ParseUint64(fields[1], &frame.id) ||
      !ParseUint64(fields[3], body_bytes)) {
    return Status::InvalidArgument("malformed response header: " +
                                   std::string(line));
  }
  const std::optional<StatusCode> code = StatusCodeFromString(fields[2]);
  if (!code.has_value()) {
    return Status::InvalidArgument("unknown status code: " + fields[2]);
  }
  frame.code = *code;
  if (fields.size() == 5 &&
      !ParseMsField(fields[4], "retry_after_ms", &frame.retry_after_ms)) {
    return Status::InvalidArgument("bad response field: " + fields[4]);
  }
  return frame;
}

template <typename Header>
Status FrameAssembler<Header>::Feed(std::string_view bytes,
                                    std::vector<Header>* frames) {
  if (!error_.ok()) return error_;
  while (!bytes.empty() || (in_body_ && buffer_.size() >= body_bytes_)) {
    if (!in_body_) {
      const std::size_t newline = bytes.find('\n');
      if (newline == std::string_view::npos) {
        buffer_.append(bytes);
        bytes = {};
        if (buffer_.size() > limits_.max_header_bytes) {
          error_ = Status::InvalidArgument(StrFormat(
              "frame header exceeds %zu bytes", limits_.max_header_bytes));
          return error_;
        }
        break;
      }
      buffer_.append(bytes.substr(0, newline));
      bytes.remove_prefix(newline + 1);
      if (buffer_.size() > limits_.max_header_bytes) {
        error_ = Status::InvalidArgument(StrFormat(
            "frame header exceeds %zu bytes", limits_.max_header_bytes));
        return error_;
      }
      Result<Header> header = [&]() -> Result<Header> {
        if constexpr (std::is_same_v<Header, RequestFrame>) {
          return ParseRequestHeader(buffer_, &body_bytes_);
        } else {
          return ParseResponseHeader(buffer_, &body_bytes_);
        }
      }();
      if (!header.ok()) {
        error_ = header.status();
        return error_;
      }
      if (body_bytes_ > limits_.max_body_bytes) {
        error_ = Status::ResourceExhausted(StrFormat(
            "frame body of %llu bytes exceeds the %llu-byte limit",
            static_cast<unsigned long long>(body_bytes_),
            static_cast<unsigned long long>(limits_.max_body_bytes)));
        return error_;
      }
      pending_ = std::move(*header);
      buffer_.clear();
      in_body_ = true;
      continue;
    }
    const std::size_t want = static_cast<std::size_t>(body_bytes_);
    if (buffer_.size() < want) {
      const std::size_t take = std::min(want - buffer_.size(), bytes.size());
      buffer_.append(bytes.substr(0, take));
      bytes.remove_prefix(take);
    }
    if (buffer_.size() < want) break;
    pending_.body = std::move(buffer_);
    frames->push_back(std::move(pending_));
    pending_ = Header{};
    buffer_.clear();
    body_bytes_ = 0;
    in_body_ = false;
  }
  return Status::OK();
}

template class FrameAssembler<RequestFrame>;
template class FrameAssembler<ResponseFrame>;

Result<std::optional<std::string>> FrameReader::ReadHeaderLine() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return std::optional<std::string>(std::move(line));
    }
    if (buffer_.size() > limits_.max_header_bytes) {
      return Status::InvalidArgument(
          StrFormat("frame header exceeds %zu bytes",
                    limits_.max_header_bytes));
    }
    char chunk[4096];
    Result<std::size_t> n = stream_->Read(chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (*n == 0) {
      if (buffer_.empty()) return std::optional<std::string>();  // Clean EOF.
      return Status::InvalidArgument("stream ended mid-header");
    }
    buffer_.append(chunk, *n);
  }
}

Status FrameReader::ReadBody(std::uint64_t body_bytes, std::string* out) {
  if (body_bytes > limits_.max_body_bytes) {
    return Status::ResourceExhausted(
        StrFormat("frame body of %llu bytes exceeds the %llu-byte limit",
                  static_cast<unsigned long long>(body_bytes),
                  static_cast<unsigned long long>(limits_.max_body_bytes)));
  }
  const std::size_t want = static_cast<std::size_t>(body_bytes);
  if (buffer_.size() >= want) {
    *out = buffer_.substr(0, want);
    buffer_.erase(0, want);
    return Status::OK();
  }
  *out = std::move(buffer_);
  buffer_.clear();
  const std::size_t have = out->size();
  out->resize(want);
  Status read = ReadFull(stream_, out->data() + have, want - have);
  if (!read.ok()) {
    return Status::InvalidArgument("stream ended mid-body: " +
                                   read.message());
  }
  return Status::OK();
}

Result<std::optional<RequestFrame>> FrameReader::ReadRequest() {
  Result<std::optional<std::string>> line = ReadHeaderLine();
  if (!line.ok()) return line.status();
  if (!line->has_value()) return std::optional<RequestFrame>();
  std::uint64_t body_bytes = 0;
  Result<RequestFrame> frame = ParseRequestHeader(**line, &body_bytes);
  if (!frame.ok()) return frame.status();
  BLITZ_RETURN_IF_ERROR(ReadBody(body_bytes, &frame->body));
  return std::optional<RequestFrame>(std::move(*frame));
}

Result<std::optional<ResponseFrame>> FrameReader::ReadResponse() {
  Result<std::optional<std::string>> line = ReadHeaderLine();
  if (!line.ok()) return line.status();
  if (!line->has_value()) return std::optional<ResponseFrame>();
  std::uint64_t body_bytes = 0;
  Result<ResponseFrame> frame = ParseResponseHeader(**line, &body_bytes);
  if (!frame.ok()) return frame.status();
  BLITZ_RETURN_IF_ERROR(ReadBody(body_bytes, &frame->body));
  return std::optional<ResponseFrame>(std::move(*frame));
}

std::string EncodeReplyBody(const ServeReply& reply) {
  std::string out;
  out += "plan " + reply.plan + "\n";
  out += StrFormat("cost %.17g\n", reply.cost);
  out += "tier " + reply.tier + "\n";
  out += StrFormat("passes %d\n", reply.passes);
  out += StrFormat("degradations %d\n", reply.degradations);
  if (!reply.estimator.empty()) {
    out += "estimator " + reply.estimator + "\n";
  }
  if (reply.cached) out += "cached 1\n";
  return out;
}

Result<ServeReply> ParseReplyBody(std::string_view body) {
  ServeReply reply;
  bool saw_plan = false;
  bool saw_cost = false;
  bool saw_tier = false;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find('\n', pos);
    if (end == std::string_view::npos) end = body.size();
    const std::string_view line = body.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    const std::string_view key = line.substr(0, space);
    const std::string_view value =
        space == std::string_view::npos ? "" : line.substr(space + 1);
    if (key == "plan") {
      reply.plan = std::string(value);
      saw_plan = true;
    } else if (key == "cost") {
      if (!ParseDouble(value, &reply.cost)) {
        return Status::InvalidArgument("bad reply cost: " +
                                       std::string(value));
      }
      saw_cost = true;
    } else if (key == "tier") {
      reply.tier = std::string(value);
      saw_tier = true;
    } else if (key == "passes") {
      if (!ParseInt(value, &reply.passes)) {
        return Status::InvalidArgument("bad reply passes: " +
                                       std::string(value));
      }
    } else if (key == "degradations") {
      if (!ParseInt(value, &reply.degradations)) {
        return Status::InvalidArgument("bad reply degradations: " +
                                       std::string(value));
      }
    } else if (key == "estimator") {
      reply.estimator = std::string(value);
    } else if (key == "cached") {
      reply.cached = (value == "1" || value == "true");
    }
    // Unknown keys are ignored: the reply body is forward-extensible.
  }
  if (!saw_plan || !saw_cost || !saw_tier) {
    return Status::InvalidArgument("reply body missing plan/cost/tier");
  }
  return reply;
}

}  // namespace blitz
