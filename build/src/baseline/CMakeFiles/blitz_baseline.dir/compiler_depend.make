# Empty compiler generated dependencies file for blitz_baseline.
# This may be replaced when dependencies are built.
