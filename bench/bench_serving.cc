// Closed-loop serving benchmark for blitzd's server core: N pipelining
// client connections each keep a fixed window of requests in flight against
// an in-process BlitzServer over in-memory duplex streams, with
// fuzzer-generated mixed-size queries (n <= 15, pinned seed). Reports
// sustained throughput and client-observed latency percentiles in the
// unified blitz-bench-v1 schema, so BENCH_serving.json feeds the same
// tools/bench_diff gate as the optimizer benches.
//
// The defaults (16 connections x 64-deep windows = 1024 concurrent
// requests) match the acceptance bar for the serving tier; latency is
// measured send-to-receive at the client, so queueing delay under overload
// is part of the number, as it is for a real caller.
//
// Modes:
//   bench_serving                # human-readable summary
//   bench_serving --json <path>  # blitz-bench-v1 JSON (BENCH_serving.json)
//
// Environment knobs: BLITZ_SERVING_SECONDS (per-sample wall clock, default
// 2), BLITZ_SERVING_SAMPLES (min-of-k, default 5), BLITZ_SERVING_CLIENTS
// (default 16), BLITZ_SERVING_WINDOW (default 64), BLITZ_SERVING_WORKERS
// (default: hardware concurrency, clamped to [2, 16]), BLITZ_SERVING_SEED
// (default 20260808).
//
// ## The 10k-connection multiplexer phases (cold vs warm)
//
// After the closed-loop section, the bench forks a real blitzd-shaped
// server child — BlitzServer behind ServeMultiplexed on a unix socket — and
// drives BLITZ_SERVING_MUX_CONNS (default 10000) client connections at it
// from the parent, one request per connection. The fork matters: at 10k
// sockets each side needs its own file-descriptor budget. Two phases run:
//
//   cold: plan cache disabled (blitzd --no-cache) — every request pays the
//         full optimizer;
//   warm: plan cache enabled and prewarmed with the whole body pool — every
//         request is answered from the cache, inline on the event loop.
//
// Both phases assert exactly-once delivery (every connection sees exactly
// one response, with its own request id, then clean EOF at drain) and
// report p50/p95/p99 plus throughput as `cold/cN/...` and `warm/cN/...`
// points next to the `mixed/...` rows in BENCH_serving.json. Knobs:
// BLITZ_SERVING_MUX_CONNS (0 skips the phases), BLITZ_SERVING_MUX_THREADS
// (parent-side generator threads, default 8).

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "benchlib/bench_json.h"
#include "common/check.h"
#include "common/strings.h"
#include "serve/client.h"
#include "serve/mux.h"
#include "serve/server.h"
#include "serve/stream.h"
#include "serve/wire.h"
#include "testing/fuzzer.h"
#include "textio/bjq.h"

namespace blitz {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return std::atoi(env);
}

struct ServingConfig {
  double seconds = 2.0;
  int samples = 5;
  int clients = 16;
  int window = 64;
  int workers = 8;
  std::uint64_t seed = 20260808;
};

/// One sample's aggregate: completion counts plus every OK request's
/// client-observed latency (seconds).
struct SampleStats {
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  double wall_seconds = 0;
  std::vector<double> latencies;
};

/// Mixed-n request bodies, generated once and cycled by every client. The
/// pool is large enough that neighboring in-flight requests differ but
/// small enough that body generation stays out of the measured loop.
std::vector<std::string> MakeBodyPool(std::uint64_t seed,
                                      int max_relations = 15) {
  fuzz::FuzzerOptions options;
  options.seed = seed;
  options.min_relations = 2;
  options.max_relations = max_relations;
  std::vector<std::string> pool;
  pool.reserve(64);
  for (std::uint64_t index = 0; index < 64; ++index) {
    Result<fuzz::FuzzCase> fuzz_case = fuzz::GenerateCase(options, index);
    BLITZ_CHECK(fuzz_case.ok());
    pool.push_back(WriteBjq(fuzz::ToQuerySpec(*fuzz_case, CostModelKind::kNaive)));
  }
  return pool;
}

/// One client connection's closed loop: fill the window, then send one new
/// request per received response until the deadline, then drain.
void ClientLoop(BlitzServer* server, const std::vector<std::string>& pool,
                const ServingConfig& config, int client_index,
                std::chrono::steady_clock::time_point deadline,
                SampleStats* stats) {
  auto [client_end, server_end] = CreateDuplexPipe();
  std::thread serve_thread([server, stream = server_end.get()] {
    (void)server->Serve(stream);
    stream->Close();
  });

  BlitzClient::Options options;
  options.tenant = "bench-" + std::to_string(client_index);
  BlitzClient client(client_end.get(), std::move(options));

  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point>
      sent_at;
  std::size_t next_body =
      static_cast<std::size_t>(client_index) % pool.size();
  int outstanding = 0;

  const auto send_one = [&]() -> bool {
    const auto now = std::chrono::steady_clock::now();
    Result<std::uint64_t> id = client.Send(pool[next_body]);
    if (!id.ok()) return false;
    next_body = (next_body + 1) % pool.size();
    sent_at[*id] = now;
    ++outstanding;
    return true;
  };

  for (int i = 0; i < config.window; ++i) {
    if (!send_one()) break;
  }
  bool sending = true;
  while (outstanding > 0) {
    Result<std::optional<ResponseFrame>> response = client.Receive();
    if (!response.ok() || !response->has_value()) break;
    const auto now = std::chrono::steady_clock::now();
    --outstanding;
    auto it = sent_at.find((*response)->id);
    if ((*response)->code == StatusCode::kOk) {
      ++stats->ok;
      if (it != sent_at.end()) {
        stats->latencies.push_back(
            std::chrono::duration<double>(now - it->second).count());
      }
    } else {
      ++stats->errors;
    }
    if (it != sent_at.end()) sent_at.erase(it);
    if (sending && now >= deadline) sending = false;
    if (sending && !send_one()) sending = false;
  }

  client_end->CloseWrite();
  serve_thread.join();
  client_end->Close();
}

SampleStats RunSample(const std::vector<std::string>& pool,
                      const ServingConfig& config) {
  ServerOptions options;
  options.num_workers = config.workers;
  // The queue must hold a full burst from every window; admission gives
  // each tenant (connection) headroom above its window so the closed loop
  // is never shed by its own slot accounting.
  options.max_queue = config.clients * config.window + 64;
  options.admission.default_quota.max_in_flight = config.window + 8;
  Result<std::unique_ptr<BlitzServer>> server = BlitzServer::Create(options);
  BLITZ_CHECK(server.ok());

  std::vector<SampleStats> per_client(
      static_cast<std::size_t>(config.clients));
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(config.seconds));
  std::vector<std::thread> threads;
  for (int c = 0; c < config.clients; ++c) {
    threads.emplace_back(ClientLoop, server->get(), std::cref(pool),
                         std::cref(config), c, deadline,
                         &per_client[static_cast<std::size_t>(c)]);
  }
  for (std::thread& t : threads) t.join();
  const auto stop = std::chrono::steady_clock::now();
  (*server)->Shutdown();

  SampleStats total;
  total.wall_seconds = std::chrono::duration<double>(stop - start).count();
  for (SampleStats& s : per_client) {
    total.ok += s.ok;
    total.errors += s.errors;
    total.latencies.insert(total.latencies.end(), s.latencies.begin(),
                           s.latencies.end());
  }
  return total;
}

/// The q-th percentile (0..1) of `values`, by nth_element; 0 when empty.
double Percentile(std::vector<double>* values, double q) {
  if (values->empty()) return 0;
  const std::size_t index = std::min(
      values->size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(values->size())));
  std::nth_element(values->begin(),
                   values->begin() + static_cast<long>(index), values->end());
  return (*values)[index];
}

// ---------------------------------------------------------------------------
// The 10k-connection multiplexer phases.

struct MuxPhaseConfig {
  int conns = 10000;
  int threads = 8;
  int workers = 2;
  bool cache = false;    ///< Warm phase: cache on, prewarmed.
  std::string socket_path;
};

struct MuxPhaseStats {
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t violations = 0;  ///< Exactly-once breaches (fatal).
  double wall_seconds = 0;
  std::vector<double> latencies;
  std::string statz;  ///< The server's /statz body, fetched post-phase.
};

bool SendAll(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// The forked server: a blitzd-shaped BlitzServer behind ServeMultiplexed
/// on a unix socket. `ctl_rd` is the parent's drain trigger (the mux
/// wake_fd); readiness is signaled with one byte on `ready_wr`.
int RunMuxServerChild(const MuxPhaseConfig& config, int ctl_rd,
                      int ready_wr) {
  ::unlink(config.socket_path.c_str());
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return 1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd, 4096) != 0) {
    ::close(listen_fd);
    return 1;
  }

  ServerOptions options;
  options.num_workers = config.workers;
  // Every connection's one request may be queued at once; admission and
  // the queue must both have headroom for the full burst.
  options.max_queue = config.conns + 1024;
  options.admission.default_quota.max_in_flight = config.conns + 1024;
  if (!config.cache) options.cache.max_entries = 0;
  Result<std::unique_ptr<BlitzServer>> server = BlitzServer::Create(options);
  if (!server.ok()) {
    ::close(listen_fd);
    return 1;
  }

  MuxOptions mux;
  mux.listen_fd = listen_fd;
  mux.wake_fd = ctl_rd;
  mux.write_timeout_ms = 30000;
  if (::write(ready_wr, "r", 1) != 1) {
    ::close(listen_fd);
    return 1;
  }
  const Status status = ServeMultiplexed(server->get(), mux);
  ::close(listen_fd);
  ::unlink(config.socket_path.c_str());
  return status.ok() ? 0 : 1;
}

int ConnectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One generator thread: opens its share of connections, timestamps one
/// request per connection, then reads every response back (the data is
/// already buffered by the time sequential reads reach it — the server
/// answers out of band). Connections stay open for the caller's EOF sweep.
void MuxClientThread(const std::vector<std::string>& pool, int first,
                     int count, std::vector<int>* fds, MuxPhaseStats* stats) {
  std::vector<std::chrono::steady_clock::time_point> sent(
      static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int conn = (*fds)[static_cast<std::size_t>(first + i)];
    RequestFrame frame;
    frame.tenant = "bench";
    frame.id = static_cast<std::uint64_t>(first + i) + 1;
    frame.body = pool[static_cast<std::size_t>(first + i) % pool.size()];
    sent[static_cast<std::size_t>(i)] = std::chrono::steady_clock::now();
    if (!SendAll(conn, EncodeRequestFrame(frame))) {
      ++stats->errors;
      continue;
    }
  }
  for (int i = 0; i < count; ++i) {
    const int conn = (*fds)[static_cast<std::size_t>(first + i)];
    FdStream stream(conn, conn, /*own_fds=*/false);
    FrameReader reader(&stream, WireLimits{});
    Result<std::optional<ResponseFrame>> response = reader.ReadResponse();
    const auto now = std::chrono::steady_clock::now();
    if (!response.ok() || !response->has_value()) {
      ++stats->errors;
      ++stats->violations;  // An admitted request must be answered.
      continue;
    }
    if ((*response)->id != static_cast<std::uint64_t>(first + i) + 1) {
      ++stats->violations;
      continue;
    }
    if ((*response)->code == StatusCode::kOk) {
      ++stats->ok;
      stats->latencies.push_back(std::chrono::duration<double>(
                                     now - sent[static_cast<std::size_t>(i)])
                                     .count());
    } else {
      ++stats->errors;
    }
  }
}

/// Runs one phase end to end: fork the server, connect `config.conns`
/// sockets, one timed request per socket, then /statz, drain, and an EOF
/// sweep proving no connection holds a second (duplicate) response.
Result<MuxPhaseStats> RunMuxPhase(const MuxPhaseConfig& config,
                                  const std::vector<std::string>& pool) {
  int ctl[2];   // Parent writes a byte to trigger the child's drain.
  int ready[2];
  if (::pipe(ctl) != 0 || ::pipe(ready) != 0) {
    return Status::Internal("pipe failed");
  }
  const pid_t child = ::fork();
  if (child < 0) return Status::Internal("fork failed");
  if (child == 0) {
    ::close(ctl[1]);
    ::close(ready[0]);
    ::_exit(RunMuxServerChild(config, ctl[0], ready[1]));
  }
  ::close(ctl[0]);
  ::close(ready[1]);
  char ready_byte = 0;
  if (::read(ready[0], &ready_byte, 1) != 1) {
    return Status::Internal("server child never became ready");
  }
  ::close(ready[0]);

  // Warm phase: prewarm every pool body once so the timed requests all hit.
  if (config.cache) {
    const int conn = ConnectUnix(config.socket_path);
    if (conn < 0) return Status::Internal("prewarm connect failed");
    FdStream stream(conn, conn, /*own_fds=*/false);
    BlitzClient::Options client_options;
    client_options.tenant = "bench";
    BlitzClient client(&stream, std::move(client_options));
    for (const std::string& body : pool) {
      Result<ServeReply> reply = client.Optimize(body);
      if (!reply.ok()) {
        return Status::Internal("prewarm request failed: " +
                                reply.status().ToString());
      }
    }
    ::close(conn);
  }

  std::vector<int> fds(static_cast<std::size_t>(config.conns), -1);
  for (int i = 0; i < config.conns; ++i) {
    fds[static_cast<std::size_t>(i)] = ConnectUnix(config.socket_path);
    if (fds[static_cast<std::size_t>(i)] < 0) {
      return Status::Internal(
          StrFormat("connect %d/%d failed: %s", i, config.conns,
                    std::strerror(errno)));
    }
  }

  const int threads = std::max(1, std::min(config.threads, config.conns));
  std::vector<MuxPhaseStats> per_thread(static_cast<std::size_t>(threads));
  std::vector<std::thread> generators;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    const int first = t * config.conns / threads;
    const int last = (t + 1) * config.conns / threads;
    generators.emplace_back(MuxClientThread, std::cref(pool), first,
                            last - first, &fds,
                            &per_thread[static_cast<std::size_t>(t)]);
  }
  for (std::thread& t : generators) t.join();
  const auto stop = std::chrono::steady_clock::now();

  MuxPhaseStats total;
  total.wall_seconds = std::chrono::duration<double>(stop - start).count();
  for (MuxPhaseStats& s : per_thread) {
    total.ok += s.ok;
    total.errors += s.errors;
    total.violations += s.violations;
    total.latencies.insert(total.latencies.end(), s.latencies.begin(),
                           s.latencies.end());
  }

  // Server-side accounting, straight off the wire.
  {
    const int conn = ConnectUnix(config.socket_path);
    if (conn >= 0) {
      FdStream stream(conn, conn, /*own_fds=*/false);
      BlitzClient::Options client_options;
      client_options.tenant = "bench";
      BlitzClient client(&stream, std::move(client_options));
      Result<std::string> statz = client.Statz();
      if (statz.ok()) total.statz = *statz;
      ::close(conn);
    }
  }

  // Drain, then the EOF sweep: each connection must end cleanly with no
  // second response buffered behind the one it already consumed.
  if (::write(ctl[1], "q", 1) != 1) {
    return Status::Internal("drain trigger failed");
  }
  for (int i = 0; i < config.conns; ++i) {
    const int conn = fds[static_cast<std::size_t>(i)];
    FdStream stream(conn, conn, /*own_fds=*/false);
    FrameReader reader(&stream, WireLimits{});
    Result<std::optional<ResponseFrame>> eof = reader.ReadResponse();
    if (eof.ok() && eof->has_value()) ++total.violations;
    ::close(conn);
  }
  ::close(ctl[1]);

  int wait_status = 0;
  if (::waitpid(child, &wait_status, 0) != child ||
      !WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
    return Status::Internal("server child exited abnormally");
  }
  return total;
}

/// Extracts `<key> <value>\n` from a statz body; 0 when absent.
double StatzValue(const std::string& statz, const std::string& key) {
  const std::string needle = "\n" + key + " ";
  const std::size_t at = statz.find(needle);
  if (at == std::string::npos) return 0;
  return std::atof(statz.c_str() + at + needle.size());
}

}  // namespace
}  // namespace blitz

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  blitz::ServingConfig config;
  {
    const char* env = std::getenv("BLITZ_SERVING_SECONDS");
    if (env != nullptr && *env != '\0') config.seconds = std::atof(env);
  }
  config.samples = blitz::EnvInt("BLITZ_SERVING_SAMPLES", config.samples);
  config.clients = blitz::EnvInt("BLITZ_SERVING_CLIENTS", config.clients);
  config.window = blitz::EnvInt("BLITZ_SERVING_WINDOW", config.window);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  config.workers = blitz::EnvInt("BLITZ_SERVING_WORKERS",
                                 std::clamp(hw > 0 ? hw : 4, 2, 16));
  config.seed = static_cast<std::uint64_t>(
      blitz::EnvInt("BLITZ_SERVING_SEED", 20260808));

  const std::vector<std::string> pool = blitz::MakeBodyPool(config.seed);

  // Min-of-k over full samples: each sample is an independent server with
  // cold arena and queue, so the min captures steady-state capability with
  // the least scheduler interference.
  double best_qps = 0;
  double best_p50 = 0, best_p95 = 0, best_p99 = 0;
  std::uint64_t total_ok = 0, total_errors = 0;
  for (int sample = 0; sample < config.samples; ++sample) {
    blitz::SampleStats stats = blitz::RunSample(pool, config);
    const double qps =
        static_cast<double>(stats.ok) /
        (stats.wall_seconds > 0 ? stats.wall_seconds : 1.0);
    const double p50 = blitz::Percentile(&stats.latencies, 0.50) * 1e3;
    const double p95 = blitz::Percentile(&stats.latencies, 0.95) * 1e3;
    const double p99 = blitz::Percentile(&stats.latencies, 0.99) * 1e3;
    std::printf(
        "sample %d: %llu ok, %llu errors, %.0f qps, "
        "p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
        sample, static_cast<unsigned long long>(stats.ok),
        static_cast<unsigned long long>(stats.errors), qps, p50, p95, p99);
    total_ok += stats.ok;
    total_errors += stats.errors;
    if (sample == 0 || qps > best_qps) best_qps = qps;
    if (sample == 0 || p50 < best_p50) best_p50 = p50;
    if (sample == 0 || p95 < best_p95) best_p95 = p95;
    if (sample == 0 || p99 < best_p99) best_p99 = p99;
  }

  std::printf(
      "serving (clients=%d window=%d workers=%d): best %.0f qps, "
      "p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
      config.clients, config.window, config.workers, best_qps, best_p50,
      best_p95, best_p99);

  // The 10k-connection multiplexer phases (cold cache vs warm cache).
  blitz::MuxPhaseConfig mux;
  mux.conns = blitz::EnvInt("BLITZ_SERVING_MUX_CONNS", 10000);
  mux.threads = blitz::EnvInt("BLITZ_SERVING_MUX_THREADS", 8);
  mux.workers = config.workers;
  mux.socket_path =
      blitz::StrFormat("/tmp/blitz_bench_serving_%d.sock", ::getpid());
  // Each side of the fork needs conns + slack descriptors of its own.
  rlimit nofile{};
  if (mux.conns > 0 && ::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur != RLIM_INFINITY &&
      static_cast<rlim_t>(mux.conns) + 256 > nofile.rlim_cur) {
    mux.conns = static_cast<int>(nofile.rlim_cur) - 256;
    std::fprintf(stderr,
                 "RLIMIT_NOFILE %llu clamps the mux phases to %d conns\n",
                 static_cast<unsigned long long>(nofile.rlim_cur), mux.conns);
  }

  struct PhaseRow {
    const char* name;
    blitz::MuxPhaseStats stats;
    double p50 = 0, p95 = 0, p99 = 0, qps = 0;
  };
  std::vector<PhaseRow> phases;
  if (mux.conns > 0) {
    // Same mixed-n bodies as the closed-loop pool: at n <= 15 the DP is
    // what a cold request pays, so the warm/cold gap measures the cache,
    // not framing overhead.
    const std::vector<std::string> mux_pool = blitz::MakeBodyPool(config.seed);
    for (const bool warm : {false, true}) {
      mux.cache = warm;
      blitz::Result<blitz::MuxPhaseStats> phase =
          blitz::RunMuxPhase(mux, mux_pool);
      if (!phase.ok()) {
        std::fprintf(stderr, "%s mux phase failed: %s\n",
                     warm ? "warm" : "cold",
                     phase.status().ToString().c_str());
        return 1;
      }
      PhaseRow row;
      row.name = warm ? "warm" : "cold";
      row.stats = std::move(*phase);
      row.p50 = blitz::Percentile(&row.stats.latencies, 0.50) * 1e3;
      row.p95 = blitz::Percentile(&row.stats.latencies, 0.95) * 1e3;
      row.p99 = blitz::Percentile(&row.stats.latencies, 0.99) * 1e3;
      row.qps = static_cast<double>(row.stats.ok) /
                (row.stats.wall_seconds > 0 ? row.stats.wall_seconds : 1.0);
      std::printf(
          "%s 10k: %d conns, %llu ok, %llu errors, %.0f qps, p50 %.2f ms, "
          "p95 %.2f ms, p99 %.2f ms, cache_hits %.0f\n",
          row.name, mux.conns,
          static_cast<unsigned long long>(row.stats.ok),
          static_cast<unsigned long long>(row.stats.errors), row.qps,
          row.p50, row.p95, row.p99,
          blitz::StatzValue(row.stats.statz, "cache_hits"));
      if (row.stats.violations != 0) {
        std::fprintf(stderr,
                     "%s phase: %llu exactly-once violations\n", row.name,
                     static_cast<unsigned long long>(row.stats.violations));
        return 1;
      }
      if (row.stats.ok + row.stats.errors !=
          static_cast<std::uint64_t>(mux.conns)) {
        std::fprintf(stderr, "%s phase: %llu responses for %d requests\n",
                     row.name,
                     static_cast<unsigned long long>(row.stats.ok +
                                                     row.stats.errors),
                     mux.conns);
        return 1;
      }
      phases.push_back(std::move(row));
    }
    if (phases.size() == 2 && phases[1].p50 > 0) {
      std::printf("warm speedup: p50 %.1fx, wall %.1fx\n",
                  phases[0].p50 / phases[1].p50,
                  phases[0].stats.wall_seconds /
                      (phases[1].stats.wall_seconds > 0
                           ? phases[1].stats.wall_seconds
                           : 1.0));
    }
  }

  if (!json_path.empty()) {
    blitz::BenchReport report;
    report.bench = "serving";
    report.AddMeta("clients", blitz::StrFormat("%d", config.clients));
    report.AddMeta("window", blitz::StrFormat("%d", config.window));
    report.AddMeta("workers", blitz::StrFormat("%d", config.workers));
    report.AddMeta("seconds", blitz::StrFormat("%g", config.seconds));
    report.AddMeta("samples", blitz::StrFormat("%d", config.samples));
    report.AddMeta("seed",
                   blitz::StrFormat("%llu",
                                    static_cast<unsigned long long>(
                                        config.seed)));
    const std::string prefix = blitz::StrFormat(
        "mixed/c%d/w%d", config.clients, config.window);
    // Latency points are time-like and regression-gated by bench_diff;
    // throughput and counts ride along as context units.
    report.AddPoint(prefix + "/p50", best_p50, "ms");
    report.AddPoint(prefix + "/p95", best_p95, "ms");
    report.AddPoint(prefix + "/p99", best_p99, "ms");
    report.AddPoint(prefix + "/qps", best_qps, "qps");
    report.AddPoint(prefix + "/ok", static_cast<double>(total_ok), "count");
    report.AddPoint(prefix + "/errors", static_cast<double>(total_errors),
                    "count");
    report.AddMeta("mux_conns", blitz::StrFormat("%d", mux.conns));
    report.AddMeta("mux_threads", blitz::StrFormat("%d", mux.threads));
    for (const PhaseRow& row : phases) {
      const std::string mux_prefix =
          blitz::StrFormat("%s/c%d", row.name, mux.conns);
      report.AddPoint(mux_prefix + "/p50", row.p50, "ms");
      report.AddPoint(mux_prefix + "/p95", row.p95, "ms");
      report.AddPoint(mux_prefix + "/p99", row.p99, "ms");
      report.AddPoint(mux_prefix + "/qps", row.qps, "qps");
      report.AddPoint(mux_prefix + "/ok",
                      static_cast<double>(row.stats.ok), "count");
      report.AddPoint(mux_prefix + "/cache_hits",
                      blitz::StatzValue(row.stats.statz, "cache_hits"),
                      "count");
    }
    const blitz::Status status =
        blitz::WriteBenchJsonFile(report, json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu points)\n", json_path.c_str(),
                report.points.size());
  }
  return 0;
}
