// Google-benchmark microbenchmarks for the performance-critical kernels:
// the subset successor loop, the full Cartesian and join optimizers at
// several n, the Pi_fan recurrence versus direct selectivity products, and
// the cost-model kappa'' kernels.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchlib/bench_json.h"
#include "catalog/catalog.h"
#include "common/check.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "core/subset_enum.h"
#include "cost/cost_model.h"
#include "query/workload.h"
#include "simd/dispatch.h"

namespace blitz {
namespace {

void BM_SubsetSuccessorLoop(benchmark::State& state) {
  // Iterate all proper subsets of an n-member set via the succ operator.
  const int n = static_cast<int>(state.range(0));
  const std::uint64_t s = (std::uint64_t{1} << n) - 1;
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::uint64_t lhs = s & (~s + 1); lhs != s; lhs = s & (lhs - s)) {
      sum += lhs;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * ((1 << n) - 2));
}
BENCHMARK(BM_SubsetSuccessorLoop)->Arg(10)->Arg(15)->Arg(20);

void BM_CartesianOptimize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(n, 100.0));
  BLITZ_CHECK(catalog.ok());
  for (auto _ : state) {
    Result<OptimizeOutcome> outcome =
        OptimizeCartesian(*catalog, OptimizerOptions{});
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_CartesianOptimize)->Arg(8)->Arg(11)->Arg(14);

void BM_CartesianOptimizeSimd(benchmark::State& state) {
  // The split-filter kernel comparison at one n: arg 1 selects the forced
  // dispatch level (unsupported levels clamp down, so the benchmark runs
  // everywhere — compare against the scalar row on this machine).
  const int n = static_cast<int>(state.range(0));
  const SimdLevel level = static_cast<SimdLevel>(state.range(1));
  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(n, 100.0));
  BLITZ_CHECK(catalog.ok());
  OptimizerOptions options;
  options.simd = level;
  for (auto _ : state) {
    Result<OptimizeOutcome> outcome = OptimizeCartesian(*catalog, options);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetLabel(SimdLevelName(ResolveSimdLevel(level)));
}
BENCHMARK(BM_CartesianOptimizeSimd)
    ->Args({14, static_cast<int>(SimdLevel::kScalar)})
    ->Args({14, static_cast<int>(SimdLevel::kBlock)})
    ->Args({14, static_cast<int>(SimdLevel::kAvx2)})
    ->Args({14, static_cast<int>(SimdLevel::kAvx512)});

void BM_JoinOptimize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  WorkloadSpec spec;
  spec.num_relations = n;
  spec.topology = Topology::kCyclePlus3;
  spec.mean_cardinality = 100;
  spec.variability = 0.5;
  Result<Workload> workload = MakeWorkload(spec);
  BLITZ_CHECK(workload.ok());
  for (auto _ : state) {
    Result<OptimizeOutcome> outcome =
        OptimizeJoin(workload->catalog, workload->graph, OptimizerOptions{});
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_JoinOptimize)->Arg(10)->Arg(12)->Arg(14);

void BM_JoinOptimizeReuseTable(benchmark::State& state) {
  // In-place re-optimization (no per-run table allocation).
  const int n = static_cast<int>(state.range(0));
  WorkloadSpec spec;
  spec.num_relations = n;
  spec.topology = Topology::kCyclePlus3;
  spec.mean_cardinality = 100;
  spec.variability = 0.5;
  Result<Workload> workload = MakeWorkload(spec);
  BLITZ_CHECK(workload.ok());
  OptimizerOptions options;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(workload->catalog, workload->graph, options);
  BLITZ_CHECK(outcome.ok());
  for (auto _ : state) {
    Result<float> cost = ReoptimizeJoinInPlace(
        workload->catalog, workload->graph, options, &outcome->table,
        nullptr);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_JoinOptimizeReuseTable)->Arg(12)->Arg(14);

void BM_PiFanRecurrence(benchmark::State& state) {
  // Cardinalities for all 2^n subsets via the Equation (10)/(11)
  // recurrences.
  const int n = static_cast<int>(state.range(0));
  WorkloadSpec spec;
  spec.num_relations = n;
  spec.topology = Topology::kClique;
  spec.mean_cardinality = 100;
  spec.variability = 0.5;
  Result<Workload> workload = MakeWorkload(spec);
  BLITZ_CHECK(workload.ok());
  std::vector<double> base_cards(n);
  for (int i = 0; i < n; ++i) {
    base_cards[i] = workload->catalog.cardinality(i);
  }
  std::vector<double> cards;
  for (auto _ : state) {
    ComputeAllCardinalities(workload->graph, base_cards, &cards);
    benchmark::DoNotOptimize(cards.data());
  }
  state.SetItemsProcessed(state.iterations() * (1 << n));
}
BENCHMARK(BM_PiFanRecurrence)->Arg(12)->Arg(16);

void BM_PiFanDirect(benchmark::State& state) {
  // The same quantity computed naively (direct induced-subgraph product per
  // subset) — the recurrence's O(2^n) total beats this O(2^n * n^2) badly.
  const int n = static_cast<int>(state.range(0));
  WorkloadSpec spec;
  spec.num_relations = n;
  spec.topology = Topology::kClique;
  spec.mean_cardinality = 100;
  spec.variability = 0.5;
  Result<Workload> workload = MakeWorkload(spec);
  BLITZ_CHECK(workload.ok());
  std::vector<double> base_cards(n);
  for (int i = 0; i < n; ++i) {
    base_cards[i] = workload->catalog.cardinality(i);
  }
  std::vector<double> cards(std::uint64_t{1} << n);
  for (auto _ : state) {
    for (std::uint64_t s = 1; s < cards.size(); ++s) {
      cards[s] =
          workload->graph.JoinCardinality(RelSet::FromWord(s), base_cards);
    }
    benchmark::DoNotOptimize(cards.data());
  }
  state.SetItemsProcessed(state.iterations() * (1 << n));
}
BENCHMARK(BM_PiFanDirect)->Arg(12);

void BM_KappaKernels(benchmark::State& state) {
  const CostModelKind kind = static_cast<CostModelKind>(state.range(0));
  double out = 1e6;
  double lhs = 1e3;
  double rhs = 2e3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalKappaDoublePrime(kind, out, lhs, rhs));
    out += 1;  // defeat constant folding
  }
}
BENCHMARK(BM_KappaKernels)
    ->Arg(static_cast<int>(CostModelKind::kNaive))
    ->Arg(static_cast<int>(CostModelKind::kSortMerge))
    ->Arg(static_cast<int>(CostModelKind::kDiskNestedLoops))
    ->Arg(static_cast<int>(CostModelKind::kMinSmDnl));

/// Console reporter that additionally collects every run into a unified
/// "blitz-bench-v1" BenchReport (benchlib/bench_json.h), so bench_micro's
/// --json output feeds the same tools/bench_diff gate as the macro benches
/// instead of google-benchmark's native schema.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    report_.AddMeta("cpus", StrFormat("%d", context.cpu_info.num_cpus));
    report_.AddMeta("cpu_mhz",
                    StrFormat("%.0f", context.cpu_info.cycles_per_second / 1e6));
    return ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // With repetitions enabled, gate on the aggregates only (their names
      // already carry the _mean/_median suffix); single runs pass through.
      report_.AddPoint(run.benchmark_name(), run.GetAdjustedRealTime(),
                       benchmark::GetTimeUnitString(run.time_unit));
    }
  }

  BenchReport* report() { return &report_; }

 private:
  BenchReport report_;
};

}  // namespace
}  // namespace blitz

// Custom main instead of BENCHMARK_MAIN(): accepts the repo-wide
// `--json <path>` convention (shared with bench_fig2_cartesian), emitting
// the unified blitz-bench-v1 schema consumed by tools/bench_diff; every
// native --benchmark_* flag still works unchanged.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string json_path;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int translated_argc = static_cast<int>(args.size());
  benchmark::Initialize(&translated_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(translated_argc, args.data())) {
    return 1;
  }
  blitz::CollectingReporter reporter;
  reporter.report()->bench = "micro";
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    const blitz::Status status =
        blitz::WriteBenchJsonFile(*reporter.report(), json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu points)\n", json_path.c_str(),
                reporter.report()->points.size());
  }
  return 0;
}
