#ifndef BLITZ_BENCHLIB_BENCH_JSON_H_
#define BLITZ_BENCHLIB_BENCH_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace blitz {

/// The unified bench wire format ("blitz-bench-v1") every bench_* binary
/// emits and tools/bench_diff consumes:
///
///   {"schema":"blitz-bench-v1",
///    "bench":"fig2_cartesian",
///    "meta":{"machine":"...","simd":"avx512",...},
///    "points":[{"key":"naive/n13/scalar","value":12.3,"unit":"ms"},...]}
///
/// A point's `key` is a stable slash-separated identifier (model/size/
/// variant); `unit` names what `value` measures. Time-like units ("ms",
/// "us", "ns", "seconds") are regression-gated by bench_diff; other units
/// ("speedup", "ratio", "count", "bytes") ride along as context.
struct BenchPoint {
  std::string key;
  double value = 0;
  std::string unit;
};

/// One bench binary's run: free-form string metadata plus measured points.
/// Insertion order is preserved in the emitted JSON.
struct BenchReport {
  std::string bench;
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<BenchPoint> points;

  void AddMeta(std::string_view key, std::string_view value) {
    meta.emplace_back(std::string(key), std::string(value));
  }

  void AddPoint(std::string_view key, double value, std::string_view unit) {
    points.push_back(BenchPoint{std::string(key), value, std::string(unit)});
  }

  /// First point with this key, or nullptr.
  const BenchPoint* Find(std::string_view key) const;

  /// First value of this meta key, or "" when absent.
  std::string_view MetaValue(std::string_view key) const;

  /// The full "blitz-bench-v1" document — always valid JSON.
  std::string ToJson() const;
};

/// Parses a "blitz-bench-v1" document (a strict subset of JSON: one object
/// with the schema/bench/meta/points members; unknown members are
/// ignored). Returns InvalidArgument on malformed JSON or a wrong/missing
/// schema tag.
Result<BenchReport> ParseBenchJson(std::string_view json);

/// Reads and parses a bench JSON file (NotFound / InvalidArgument).
Result<BenchReport> ReadBenchJsonFile(const std::string& path);

/// Writes report.ToJson() plus a trailing newline (Internal on I/O error).
Status WriteBenchJsonFile(const BenchReport& report, const std::string& path);

}  // namespace blitz

#endif  // BLITZ_BENCHLIB_BENCH_JSON_H_
