#include "benchlib/table_out.h"

#include <algorithm>
#include <cctype>

namespace blitz {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'E' && c != 'x' &&
        c != 'n' && c != 'a' && c != 'i' && c != 'f') {
      return false;
    }
  }
  return std::isdigit(static_cast<unsigned char>(s[0])) || s[0] == '-' ||
         s[0] == '+' || s[0] == '.';
}

}  // namespace

std::string TextTable::ToString() const {
  std::vector<std::vector<std::string>> all;
  if (!header_.empty()) all.push_back(header_);
  all.insert(all.end(), rows_.begin(), rows_.end());
  if (all.empty()) return "";

  size_t columns = 0;
  for (const auto& row : all) columns = std::max(columns, row.size());
  std::vector<size_t> width(columns, 0);
  for (const auto& row : all) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::string out;
  bool is_header = !header_.empty();
  for (const auto& row : all) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      const bool right = !is_header && LooksNumeric(row[c]);
      const size_t pad = width[c] - row[c].size();
      if (right) out.append(pad, ' ');
      out += row[c];
      if (!right && c + 1 < row.size()) out.append(pad, ' ');
    }
    out += "\n";
    if (is_header) {
      for (size_t c = 0; c < columns; ++c) {
        if (c > 0) out += "  ";
        out.append(width[c], '-');
      }
      out += "\n";
      is_header = false;
    }
  }
  return out;
}

std::string TextTable::ToCsv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      out += row[c];
    }
    out += "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace blitz
