#ifndef BLITZ_SERVE_SERVER_H_
#define BLITZ_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/optimize_query.h"
#include "core/table_arena.h"
#include "governor/budget.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/plancache.h"
#include "serve/stream.h"
#include "serve/wire.h"
#include "textio/bjq.h"

namespace blitz {

/// Configuration for a BlitzServer instance.
struct ServerOptions {
  /// Dedicated optimizer worker threads draining the request queue. (The
  /// rank-parallel ThreadPool is a barrier pool for one DP pass, not a task
  /// queue — serving needs its own workers.)
  int num_workers = 4;

  /// Bounded request-queue depth across all connections and tenants. A full
  /// queue sheds with kUnavailable + retry_after_ms rather than buffering
  /// unboundedly — the global backstop behind the per-tenant caps.
  int max_queue = 256;

  /// Deadline stamped onto requests that do not carry their own
  /// deadline_ms. 0 = none (the optimizer template's budget still applies).
  double default_deadline_ms = 0;

  /// How long a drain waits for in-flight requests to finish naturally
  /// before cancelling them.
  double drain_grace_ms = 2000;

  /// Estimator for requests whose .bjq carries no `estimator` directive.
  /// The serving tier has no local base tables to histogram, so only paper
  /// and noest are servable — Validate() rejects hist here, and a request
  /// asking for it is answered kInvalidArgument. The resolved name rides
  /// back on the reply's `estimator` line.
  EstimatorKind default_estimator = EstimatorKind::kPaperFanout;

  AdmissionOptions admission;
  WireLimits wire;
  BjqLimits parse;

  /// Template for per-request optimizer configuration. The server stamps
  /// per-request fields (budget, cost model, threshold, table_arena) on a
  /// copy; everything else — parallelism, SIMD level, degrade_on_budget —
  /// is honored as configured here. degrade_on_budget defaults to true, so
  /// over-budget requests degrade exhaustive -> hybrid -> greedy and still
  /// answer.
  QueryOptimizerOptions optimizer;

  /// Plan-cache bounds (serve/plancache.h). max_entries = 0 turns caching
  /// off entirely (blitzd --no-cache): every request runs the optimizer.
  PlanCache::Options cache;

  /// Retention policy of the shared DP-table arena.
  DpTableArena::Options arena;

  Status Validate() const;
};

/// Transport-side delivery hook for connections the server does not own
/// (the epoll multiplexer, serve/mux.h). The server calls SendResponse once
/// per submitted request — from worker threads or from inside
/// SubmitRequest itself (sheds, /statz, cache hits) — so implementations
/// must be thread-safe and must tolerate calls after their transport
/// closed (drop the frame; the request still counts as answered).
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  virtual void SendResponse(const ResponseFrame& response) = 0;
};

/// Per-connection shared state. Exactly one of `stream` (the blocking
/// Serve path: workers serialize writes through write_mu) or `sink` (the
/// frame-level OpenConnection path) is set. Serve waits for
/// outstanding == 0 before returning so the stream outlives every queued
/// response; sink connections rely on the shared_ptr instead.
struct ServeConnection {
  ByteStream* stream = nullptr;
  std::shared_ptr<ResponseSink> sink;
  std::mutex write_mu;
  std::mutex mu;
  std::condition_variable idle_cv;
  int outstanding = 0;
};

/// A multi-tenant optimizer server: frames in, plans out.
///
/// Threading model: transports deliver parsed request frames either by
/// running one blocking Serve(stream) per connection (reader thread each)
/// or — the multiplexed path — by calling OpenConnection once and
/// SubmitRequest per frame from a single event-loop thread (serve/mux.h).
/// Both feed the same HandleRequest: /statz and plan-cache hits are
/// answered inline on the submitting thread (no queue, no worker — this is
/// what makes warm repeat traffic cheap); everything else is admitted into
/// a bounded queue that num_workers dedicated threads drain, optimize
/// (through the cache's single-flight GetOrCompute), and answer out of
/// request order — clients match on frame id. One request can never take
/// the process down: parse errors, admission sheds, budget exhaustion, and
/// injected faults (serve.* points) all turn into status-coded response
/// frames on the same connection.
///
/// Lifecycle: Create -> Serve / OpenConnection+SubmitRequest (any number,
/// concurrently) -> BeginDrain -> Shutdown. Drain stops admitting (new
/// requests shed with kUnavailable), waits drain_grace_ms for in-flight
/// work, then cancels the remainder via their per-request
/// CancellationTokens — every admitted request is answered (a plan, an
/// error, or kCancelled) before Shutdown returns.
class BlitzServer {
 public:
  /// Validates options, starts the worker threads.
  static Result<std::unique_ptr<BlitzServer>> Create(ServerOptions options);

  ~BlitzServer();

  BlitzServer(const BlitzServer&) = delete;
  BlitzServer& operator=(const BlitzServer&) = delete;

  /// Serves one connection until its stream reaches end-of-stream or a
  /// frame-alignment error. Blocks; every response owed to the connection
  /// is written before this returns. Returns the protocol error that ended
  /// the connection, or OK on clean EOF.
  Status Serve(ByteStream* stream);

  /// Frame-level connection API (the epoll multiplexer's entry points).
  /// Responses flow back through `sink`; the server holds the shared_ptr
  /// until the last outstanding response for the connection is delivered.
  std::shared_ptr<ServeConnection> OpenConnection(
      std::shared_ptr<ResponseSink> sink);

  /// Submits one parsed request frame for `conn`. Exactly one SendResponse
  /// per call — possibly synchronously (shed, /statz, cache hit), possibly
  /// later from a worker.
  void SubmitRequest(const std::shared_ptr<ServeConnection>& conn,
                     RequestFrame frame);

  /// Reports a connection-level framing failure: answers once with id 0
  /// (mirroring Serve's protocol-error path). The transport should stop
  /// reading and close once pending responses flush.
  void SubmitProtocolError(const std::shared_ptr<ServeConnection>& conn,
                           const Status& error);

  /// Stops admitting new requests (sheds with kUnavailable). Non-blocking;
  /// idempotent. An armed serve.drain fault skips the grace period: the
  /// next Shutdown cancels in-flight work immediately.
  void BeginDrain();

  /// BeginDrain + wait: lets in-flight requests finish for up to
  /// drain_grace_ms, cancels stragglers, stops and joins the workers. Every
  /// admitted request has been answered when this returns. Idempotent.
  void Shutdown();

  bool draining() const;

  /// Pool statistics of the shared DP-table arena.
  DpTableArena::Stats arena_stats() const;

  /// Requests answered since startup (any status).
  std::uint64_t requests_answered() const;

  /// Requests admitted but not yet answered (queued + executing).
  int in_flight() const;

  /// Plan-cache counters (all zero with the cache disabled).
  PlanCache::Stats cache_stats() const { return cache_.GetStats(); }

  /// The /statz reply body: the blitz-statz-v1 magic line plus one
  /// `<key> <value>` pair per line — queue/worker occupancy, cache
  /// counters, latency percentiles, and per-tenant admission state.
  /// Forward-extensible: readers must ignore unknown keys.
  std::string StatzBody() const;

  const ServerOptions& options() const { return options_; }

 private:
  /// One admitted request, queued for a worker. Owning the token via
  /// shared_ptr keeps drain-cancellation race-free with job completion.
  /// `spec`/`fingerprint` carry the reader-thread cache probe's work so a
  /// miss does not parse or canonicalize twice.
  struct Job {
    ServeConnection* conn = nullptr;
    std::shared_ptr<ServeConnection> conn_ref;  ///< Sink connections only.
    std::uint64_t id = 0;
    std::string tenant;
    std::string body;
    std::optional<QuerySpec> spec;
    std::optional<PlanFingerprint> fingerprint;
    ResourceBudget budget;  ///< Resolved at enqueue: queue wait counts.
    std::shared_ptr<CancellationToken> token;
    std::uint64_t token_key = 0;
    std::chrono::steady_clock::time_point enqueue_time;
  };

  explicit BlitzServer(ServerOptions options);

  void HandleRequest(ServeConnection* conn,
                     const std::shared_ptr<ServeConnection>& conn_ref,
                     RequestFrame frame);
  /// Builds the OK reply body for an optimization result.
  std::string BuildReplyBody(const OptimizedQuery& result,
                             const Catalog& catalog,
                             EstimatorKind requested_estimator) const;
  void WorkerLoop();
  void ProcessJob(Job job);
  void FinishJob(const Job& job, ResponseFrame response);
  void Respond(ServeConnection* conn, const ResponseFrame& response);
  void RecordLatencySample(std::chrono::steady_clock::time_point start);
  void CancelInFlight();

  const ServerOptions options_;
  DpTableArena arena_;
  AdmissionController admission_;
  PlanCache cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;   ///< Workers wait for jobs / stop.
  std::condition_variable idle_cv_;    ///< Shutdown waits for in-flight 0.
  std::deque<Job> queue_;
  std::map<std::uint64_t, std::shared_ptr<CancellationToken>> in_flight_;
  std::uint64_t next_token_key_ = 1;
  int in_flight_count_ = 0;  ///< Queued + executing.
  bool draining_ = false;
  bool drain_skip_grace_ = false;  ///< Armed serve.drain fault fired.
  bool stopping_ = false;
  bool shut_down_ = false;
  std::uint64_t requests_answered_ = 0;
  Histogram latency_;  ///< End-to-end request latency (seconds), under mu_.

  std::vector<std::thread> workers_;
};

}  // namespace blitz

#endif  // BLITZ_SERVE_SERVER_H_
