#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "card/histogram.h"
#include "card/no_estimate.h"
#include "card/paper_fanout.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "plan/evaluate.h"
#include "plan/plan.h"
#include "serve/plancache.h"
#include "testing/oracles.h"

namespace blitz::fuzz {
namespace {

/// Lowered from the production default so modest fuzz-sized problems
/// actually exercise the rank-parallel driver instead of silently running
/// sequentially.
constexpr std::uint64_t kFuzzMinParallelRank = 4;

OptimizerOptions MakeOptions(CostModelKind model, int threads,
                             SimdLevel simd) {
  OptimizerOptions options;
  options.cost_model = model;
  options.count_operations = true;
  options.simd = simd;
  options.parallel.num_threads = threads;
  options.parallel.min_parallel_rank = kFuzzMinParallelRank;
  return options;
}

std::string ConfigName(CostModelKind model, int threads, SimdLevel simd,
                       const char* extra = "") {
  return StrFormat("model=%s threads=%d simd=%s%s",
                   CostModelKindToString(model), threads, SimdLevelName(simd),
                   extra);
}

/// The counters that must fold/replay to identical totals across every
/// thread count and kernel level.
OracleVerdict CountersIdentical(const CountingInstrumentation& a,
                                const CountingInstrumentation& b) {
  if (a.subsets_visited != b.subsets_visited ||
      a.loop_iterations != b.loop_iterations ||
      a.improvements != b.improvements ||
      a.threshold_skips != b.threshold_skips) {
    return OracleVerdict::Fail(StrFormat(
        "operation counters diverge: [%s] vs [%s]", a.ToString().c_str(),
        b.ToString().c_str()));
  }
  return OracleVerdict::Pass();
}

/// Builds the estimator under test from the case itself. hist gets
/// deterministically perturbed statistics (scaled rows, square-rooted
/// selectivities) so the preloaded-card path is exercised with estimates
/// that genuinely disagree with the truth, without any data generation.
std::unique_ptr<CardinalityEstimator> MakeCaseEstimator(const FuzzCase& c,
                                                        EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kPaperFanout:
      return std::make_unique<PaperFanoutEstimator>(c.catalog, c.graph);
    case EstimatorKind::kSampleHistogram: {
      const int n = c.catalog.num_relations();
      std::vector<double> rows(n);
      for (int i = 0; i < n; ++i) rows[i] = c.catalog.cardinality(i) * 1.25;
      std::vector<double> sels;
      sels.reserve(c.graph.predicates().size());
      for (const Predicate& p : c.graph.predicates()) {
        sels.push_back(std::sqrt(p.selectivity));
      }
      return std::make_unique<SampleHistogramEstimator>(
          c.graph, std::move(rows), std::move(sels));
    }
    case EstimatorKind::kNoEstimate:
      return std::make_unique<NoEstimateEstimator>(c.graph);
  }
  return nullptr;
}

/// Bit-identity between two answers to the same request: identical plan
/// text (tie-breaks included), cost bits, tier, passes, and counters. The
/// `from_cache` provenance flag is deliberately excluded — it is the one
/// field reuse is *supposed* to change.
OracleVerdict ResultsBitIdentical(const OptimizedQuery& a,
                                  const OptimizedQuery& b) {
  const std::string plan_a = a.plan.ToString();
  const std::string plan_b = b.plan.ToString();
  if (plan_a != plan_b) {
    return OracleVerdict::Fail(
        StrFormat("plans diverge: %s vs %s", plan_a.c_str(), plan_b.c_str()));
  }
  if (std::memcmp(&a.cost, &b.cost, sizeof(double)) != 0) {
    return OracleVerdict::Fail(
        StrFormat("costs diverge: %.17g vs %.17g", a.cost, b.cost));
  }
  if (a.tier != b.tier || a.passes != b.passes) {
    return OracleVerdict::Fail(StrFormat(
        "tier/passes diverge: tier %d passes %d vs tier %d passes %d",
        static_cast<int>(a.tier), a.passes, static_cast<int>(b.tier),
        b.passes));
  }
  if (a.report.has_value() != b.report.has_value()) {
    return OracleVerdict::Fail("one result carries a report, the other not");
  }
  if (a.report.has_value()) {
    return CountersIdentical(a.report->counters, b.report->counters);
  }
  return OracleVerdict::Pass();
}

/// Cold / warm / post-eviction reuse leg (DifferentialOptions::
/// with_plan_cache). A single-entry cache makes the eviction forcible with
/// one decoy insert; the decoy is the same case with relation 0's
/// cardinality bumped, so its fingerprint cannot collide with the real one
/// (the canonical encoding embeds the actual statistics).
OracleVerdict RunPlanCacheLeg(const FuzzCase& c, CostModelKind model) {
  QueryOptimizerOptions query_options;
  query_options.cost_model = model;
  query_options.simd = SimdLevel::kScalar;
  query_options.collect_report = true;
  query_options.count_operations = true;
  const auto compute = [&] {
    return OptimizeQuery(c.catalog, c.graph, query_options);
  };

  PlanCache::Options cache_options;
  cache_options.max_entries = 1;
  cache_options.shards = 1;
  PlanCache cache(cache_options);
  const PlanFingerprint fp =
      ComputePlanFingerprint(c.catalog, c.graph, query_options);

  Result<OptimizedQuery> cold = cache.GetOrCompute(fp, compute);
  if (!cold.ok()) {
    return OracleVerdict::Fail("cold cache run failed: " +
                               cold.status().ToString());
  }
  if (cold->from_cache) {
    return OracleVerdict::Fail("cold run claims cache provenance");
  }

  Result<OptimizedQuery> warm = cache.GetOrCompute(fp, compute);
  if (!warm.ok()) {
    return OracleVerdict::Fail("warm cache run failed: " +
                               warm.status().ToString());
  }
  // Only degradation-free results are inserted; when the insert was
  // bypassed the warm run recomputes (and must still agree bit for bit).
  const bool inserted = cache.GetStats().inserts > 0;
  if (warm->from_cache != inserted) {
    return OracleVerdict::Fail(StrFormat(
        "cache accounting diverges: inserts=%d but warm from_cache=%d",
        inserted ? 1 : 0, warm->from_cache ? 1 : 0));
  }
  if (const OracleVerdict v = ResultsBitIdentical(*warm, *cold); !v.ok) {
    return OracleVerdict::Fail("warm hit vs cold: " + v.message);
  }

  // Evict via a decoy problem, then recompute the original.
  std::vector<RelationStats> bumped;
  bumped.reserve(c.catalog.num_relations());
  for (int i = 0; i < c.catalog.num_relations(); ++i) {
    bumped.push_back(c.catalog.relation(i));
  }
  bumped[0].cardinality = bumped[0].cardinality * 2 + 1;
  Result<Catalog> decoy_catalog = Catalog::Create(std::move(bumped));
  if (!decoy_catalog.ok()) {
    return OracleVerdict::Fail("decoy catalog failed: " +
                               decoy_catalog.status().ToString());
  }
  const PlanFingerprint decoy_fp =
      ComputePlanFingerprint(*decoy_catalog, c.graph, query_options);
  if (decoy_fp.canonical == fp.canonical) {
    return OracleVerdict::Fail(
        "decoy with different statistics shares the fingerprint");
  }
  Result<OptimizedQuery> decoy = cache.GetOrCompute(decoy_fp, [&] {
    return OptimizeQuery(*decoy_catalog, c.graph, query_options);
  });
  if (!decoy.ok()) {
    return OracleVerdict::Fail("decoy run failed: " +
                               decoy.status().ToString());
  }

  // If the decoy itself was insertable it displaced the original entry
  // (max_entries = 1); the original must then recompute, not hit.
  const bool decoy_inserted = cache.GetStats().inserts > (inserted ? 1u : 0u);
  Result<OptimizedQuery> evicted = cache.GetOrCompute(fp, compute);
  if (!evicted.ok()) {
    return OracleVerdict::Fail("post-eviction run failed: " +
                               evicted.status().ToString());
  }
  if (decoy_inserted && evicted->from_cache) {
    return OracleVerdict::Fail(
        "post-eviction answer still claims cache provenance");
  }
  if (const OracleVerdict v = ResultsBitIdentical(*evicted, *cold); !v.ok) {
    return OracleVerdict::Fail("post-eviction vs cold: " + v.message);
  }
  return OracleVerdict::Pass();
}

}  // namespace

std::string CaseVerdict::ToString() const {
  if (passed) return "pass";
  return StrFormat("FAIL [%s] %s", config.c_str(), failure.c_str());
}

CaseVerdict RunDifferentialCase(const FuzzCase& c,
                                const DifferentialOptions& options) {
  CaseVerdict verdict;
  auto fail = [&](std::string config, std::string message) {
    verdict.passed = false;
    verdict.config = std::move(config);
    verdict.failure = std::move(message);
    return verdict;
  };

  const int n = c.catalog.num_relations();
  for (const CostModelKind model : options.cost_models) {
    // Reference configuration: sequential, scalar, unbounded.
    const OptimizerOptions ref_options =
        MakeOptions(model, /*threads=*/1, SimdLevel::kScalar);
    Result<OptimizeOutcome> reference =
        OptimizeJoin(c.catalog, c.graph, ref_options);
    if (!reference.ok()) {
      return fail(ConfigName(model, 1, SimdLevel::kScalar),
                  "reference run failed: " +
                      reference.status().ToString());
    }

    // Oracle 1: naive full-subset brute force, every table entry.
    Result<BruteForceTable> brute(BruteForceTable{});
    const bool have_brute = n <= options.brute_force_max_n;
    if (have_brute) {
      brute = BruteForceAllSubsets(c.catalog, c.graph, model,
                                   options.brute_force_max_n);
      if (!brute.ok()) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar),
                    "brute-force oracle failed: " +
                        brute.status().ToString());
      }
      const OracleVerdict compared =
          CompareDpTableToBruteForce(reference->table, *brute);
      if (!compared.ok) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar),
                    compared.message);
      }
    }

    // Oracles 2 and 3 need the winning plan.
    if (reference->found_plan()) {
      Result<Plan> plan = Plan::ExtractFromTable(reference->table);
      if (!plan.ok()) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar),
                    "plan extraction failed: " + plan.status().ToString());
      }
      const OracleVerdict recosted = CheckPlanAgainstDpTable(
          *plan, c.catalog, c.graph, model, reference->table);
      if (!recosted.ok) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar),
                    recosted.message);
      }
      const OracleVerdict dpccp = CheckAgainstDpCcp(
          c.catalog, c.graph, model,
          static_cast<double>(reference->cost),
          plan->CountCartesianProducts(c.graph));
      if (!dpccp.ok) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar), dpccp.message);
      }
    }

    // The (threads x simd) grid: every combination must reproduce the
    // reference table bit for bit, with identical folded counters.
    for (const int threads : options.thread_counts) {
      for (const SimdLevel simd : options.simd_levels) {
        if (threads == 1 && simd == SimdLevel::kScalar) continue;
        Result<OptimizeOutcome> outcome =
            OptimizeJoin(c.catalog, c.graph, MakeOptions(model, threads,
                                                         simd));
        if (!outcome.ok()) {
          return fail(ConfigName(model, threads, simd),
                      "run failed: " + outcome.status().ToString());
        }
        const OracleVerdict tables =
            TablesBitIdentical(outcome->table, reference->table);
        if (!tables.ok) {
          return fail(ConfigName(model, threads, simd), tables.message);
        }
        const OracleVerdict counters =
            CountersIdentical(outcome->counters, reference->counters);
        if (!counters.ok) {
          return fail(ConfigName(model, threads, simd), counters.message);
        }
      }
    }

    // Estimator seam: the exact estimator must be indistinguishable from
    // running without one (bit-identical table and counters); non-exact
    // kinds take the preloaded-card path and must still land on a plan
    // covering every relation with a finite positive cost under the true
    // statistics.
    for (const EstimatorKind kind : options.estimators) {
      std::unique_ptr<CardinalityEstimator> estimator =
          MakeCaseEstimator(c, kind);
      const std::string extra =
          std::string(" estimator=") + estimator->name();
      const std::string config =
          ConfigName(model, 1, SimdLevel::kScalar, extra.c_str());
      OptimizerOptions est_options = ref_options;
      est_options.estimator = estimator.get();
      Result<OptimizeOutcome> outcome =
          OptimizeJoin(c.catalog, c.graph, est_options);
      if (!outcome.ok()) {
        return fail(config,
                    "estimator run failed: " + outcome.status().ToString());
      }
      if (kind == EstimatorKind::kPaperFanout) {
        const OracleVerdict tables =
            TablesBitIdentical(outcome->table, reference->table);
        if (!tables.ok) return fail(config, tables.message);
        const OracleVerdict counters =
            CountersIdentical(outcome->counters, reference->counters);
        if (!counters.ok) return fail(config, counters.message);
        continue;
      }
      if (!outcome->found_plan()) {
        return fail(config, "no plan found under estimator");
      }
      Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
      if (!plan.ok()) {
        return fail(config,
                    "plan extraction failed: " + plan.status().ToString());
      }
      if (plan->relations() != c.catalog.AllRelations()) {
        return fail(config, "plan does not cover every relation");
      }
      const double true_cost = EvaluateCost(*plan, c.catalog, c.graph, model);
      if (!std::isfinite(true_cost) || true_cost < 0) {
        return fail(config,
                    StrFormat("plan recost under true statistics is %g",
                              true_cost));
      }
    }

    // Plan-cache reuse: cold, warm, and post-eviction answers must be one
    // answer (the differential wall around serving-tier reuse).
    if (options.with_plan_cache) {
      const OracleVerdict reuse = RunPlanCacheLeg(c, model);
      if (!reuse.ok) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar, " plan-cache"),
                    reuse.message);
      }
    }

    if (!options.with_thresholds) continue;

    // Threshold ladder: must terminate on the bit-identical root cost.
    ThresholdLadderOptions ladder;
    ladder.initial_threshold = 10.0f;
    ladder.growth_factor = 100.0f;
    Result<LadderOutcome> laddered = OptimizeJoinWithThresholds(
        c.catalog, c.graph, ref_options, ladder);
    if (!laddered.ok()) {
      return fail(ConfigName(model, 1, SimdLevel::kScalar, " ladder"),
                  "threshold ladder failed: " + laddered.status().ToString());
    }
    const float ladder_cost = laddered->outcome.cost;
    const float ref_cost = reference->cost;
    if (std::memcmp(&ladder_cost, &ref_cost, sizeof(float)) != 0) {
      return fail(
          ConfigName(model, 1, SimdLevel::kScalar, " ladder"),
          StrFormat("ladder cost %.9g != reference cost %.9g after %d passes",
                    static_cast<double>(ladder_cost),
                    static_cast<double>(ref_cost), laddered->passes));
    }

    // One biting single-threshold pass, checked against the brute-force
    // oracle's rejection semantics (plans costing >= threshold rejected).
    if (have_brute && reference->found_plan() &&
        reference->cost < std::numeric_limits<float>::max() / 8) {
      OptimizerOptions bounded = ref_options;
      bounded.cost_threshold = std::max(reference->cost * 4.0f, 1.0f);
      Result<OptimizeOutcome> outcome =
          OptimizeJoin(c.catalog, c.graph, bounded);
      if (!outcome.ok()) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar, " threshold"),
                    "thresholded run failed: " +
                        outcome.status().ToString());
      }
      const OracleVerdict compared = CompareDpTableToBruteForce(
          outcome->table, *brute, bounded.cost_threshold);
      if (!compared.ok) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar, " threshold"),
                    compared.message);
      }
    }
  }
  return verdict;
}

}  // namespace blitz::fuzz
