// blitzd: the long-lived optimizer-serving daemon.
//
// Speaks the blitz-serve-v1 frame protocol (src/serve/wire.h) over one of
// three transports:
//
//   blitzd --stdio                 one connection on stdin/stdout
//   blitzd --unix <path>           Unix-domain socket listener
//   blitzd --tcp <port>            TCP listener on 127.0.0.1
//
// Shutdown: SIGTERM or SIGINT begins a graceful drain — the listener stops
// accepting, blocked connection reads unwind via the self-pipe wake fd,
// in-flight requests get drain_grace_ms to finish before being cancelled,
// and every admitted request is answered before exit. Metrics are flushed
// as one JSON object to stderr at exit.
//
// Exit codes: 0 clean drain, 1 runtime error, 2 usage error.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <poll.h>

#include "card/estimator.h"
#include "common/status.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "serve/mux.h"
#include "serve/server.h"
#include "serve/stream.h"

namespace blitz {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;

int g_wake_write_fd = -1;

void HandleTermination(int /*signo*/) {
  // Async-signal-safe: one byte down the self-pipe turns every blocked
  // read/accept into a drain.
  const char byte = 1;
  if (g_wake_write_fd >= 0) {
    [[maybe_unused]] ssize_t n = ::write(g_wake_write_fd, &byte, 1);
  }
}

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: blitzd (--stdio | --unix <path> | --tcp <port>) [options]\n"
      "\n"
      "Serves blitz-serve-v1 optimizer requests until SIGTERM/SIGINT,\n"
      "then drains gracefully.\n"
      "\n"
      "options:\n"
      "  --workers <n>            optimizer worker threads (default 4)\n"
      "  --max-queue <n>          bounded request queue depth (default 256)\n"
      "  --max-in-flight <n>      per-tenant in-flight cap (default 64)\n"
      "  --default-deadline-ms <ms>  deadline for requests without one\n"
      "  --drain-grace-ms <ms>    drain wait before cancelling (default\n"
      "                           2000)\n"
      "  --estimator <name>       default cardinality estimator for\n"
      "                           requests without an estimator directive\n"
      "                           (paper or noest; default paper — hist\n"
      "                           needs local base tables and is rejected)\n"
      "  --max-body-bytes <n>     request body cap (default 1048576)\n"
      "  --arena-bytes <n>        DP-table arena retention (default 256M)\n"
      "  --write-timeout-ms <ms>  response write timeout per connection;\n"
      "                           a peer that stops reading for this long\n"
      "                           forfeits its connection (default 5000,\n"
      "                           0 = never time out)\n"
      "  --max-connections <n>    open-connection cap for socket\n"
      "                           transports (default 0 = fd limit only)\n"
      "  --cache-entries <n>      plan cache entry cap (default 4096,\n"
      "                           0 disables the cache)\n"
      "  --cache-bytes <n>        plan cache retained-bytes cap\n"
      "                           (default 64M)\n"
      "  --no-cache               disable the plan cache entirely\n"
      "  --help                   this text\n");
}

struct DaemonArgs {
  enum class Transport { kNone, kStdio, kUnix, kTcp };
  Transport transport = Transport::kNone;
  std::string unix_path;
  int tcp_port = 0;
  /// Bound on a single blocked response write: a stalled client (full TCP
  /// send buffer) loses its connection after this instead of parking a
  /// worker — and the SIGTERM drain — forever. 0 disables.
  double write_timeout_ms = 5000;
  /// Open-connection cap for the socket transports. 0 = fd limit only.
  int max_connections = 0;
  ServerOptions server;
};

bool ParseIntArg(const char* value, int* out) {
  return ParseInt(value, out);
}

Result<DaemonArgs> ParseArgs(int argc, char** argv) {
  DaemonArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      std::exit(kExitOk);
    } else if (arg == "--stdio") {
      args.transport = DaemonArgs::Transport::kStdio;
    } else if (arg == "--unix") {
      const char* value = next();
      if (value == nullptr) return Status::InvalidArgument("--unix needs a path");
      args.transport = DaemonArgs::Transport::kUnix;
      args.unix_path = value;
    } else if (arg == "--tcp") {
      const char* value = next();
      if (value == nullptr || !ParseIntArg(value, &args.tcp_port) ||
          args.tcp_port < 1 || args.tcp_port > 65535) {
        return Status::InvalidArgument("--tcp needs a port in [1, 65535]");
      }
      args.transport = DaemonArgs::Transport::kTcp;
    } else if (arg == "--workers") {
      const char* value = next();
      if (value == nullptr || !ParseIntArg(value, &args.server.num_workers)) {
        return Status::InvalidArgument("--workers needs an integer");
      }
    } else if (arg == "--max-queue") {
      const char* value = next();
      if (value == nullptr || !ParseIntArg(value, &args.server.max_queue)) {
        return Status::InvalidArgument("--max-queue needs an integer");
      }
    } else if (arg == "--max-in-flight") {
      const char* value = next();
      int n = 0;
      if (value == nullptr || !ParseIntArg(value, &n)) {
        return Status::InvalidArgument("--max-in-flight needs an integer");
      }
      args.server.admission.default_quota.max_in_flight = n;
    } else if (arg == "--default-deadline-ms") {
      const char* value = next();
      double ms = 0;
      if (value == nullptr || !ParseDouble(value, &ms) || ms < 0) {
        return Status::InvalidArgument(
            "--default-deadline-ms needs a non-negative number");
      }
      args.server.default_deadline_ms = ms;
    } else if (arg == "--drain-grace-ms") {
      const char* value = next();
      double ms = 0;
      if (value == nullptr || !ParseDouble(value, &ms) || ms < 0) {
        return Status::InvalidArgument(
            "--drain-grace-ms needs a non-negative number");
      }
      args.server.drain_grace_ms = ms;
    } else if (arg == "--estimator") {
      const char* value = next();
      if (value == nullptr) {
        return Status::InvalidArgument(
            StrFormat("--estimator needs a name (%s)", EstimatorKindNames()));
      }
      const std::optional<EstimatorKind> kind = EstimatorKindFromName(value);
      if (!kind.has_value()) {
        return Status::InvalidArgument(
            StrFormat("unknown estimator %s (valid: %s)", value,
                      EstimatorKindNames()));
      }
      args.server.default_estimator = *kind;
    } else if (arg == "--max-body-bytes") {
      const char* value = next();
      int n = 0;
      if (value == nullptr || !ParseIntArg(value, &n) || n < 1) {
        return Status::InvalidArgument(
            "--max-body-bytes needs a positive integer");
      }
      args.server.wire.max_body_bytes = static_cast<std::uint64_t>(n);
      args.server.admission.default_quota.max_body_bytes =
          static_cast<std::uint64_t>(n);
      args.server.parse.max_bytes = static_cast<std::uint64_t>(n);
    } else if (arg == "--write-timeout-ms") {
      const char* value = next();
      double ms = 0;
      if (value == nullptr || !ParseDouble(value, &ms) || ms < 0) {
        return Status::InvalidArgument(
            "--write-timeout-ms needs a non-negative number");
      }
      args.write_timeout_ms = ms;
    } else if (arg == "--max-connections") {
      const char* value = next();
      int n = 0;
      if (value == nullptr || !ParseIntArg(value, &n) || n < 0) {
        return Status::InvalidArgument(
            "--max-connections needs a non-negative integer");
      }
      args.max_connections = n;
    } else if (arg == "--cache-entries") {
      const char* value = next();
      int n = 0;
      if (value == nullptr || !ParseIntArg(value, &n) || n < 0) {
        return Status::InvalidArgument(
            "--cache-entries needs a non-negative integer");
      }
      args.server.cache.max_entries = static_cast<std::size_t>(n);
    } else if (arg == "--cache-bytes") {
      const char* value = next();
      int n = 0;
      if (value == nullptr || !ParseIntArg(value, &n) || n < 0) {
        return Status::InvalidArgument(
            "--cache-bytes needs a non-negative integer");
      }
      args.server.cache.max_bytes = static_cast<std::size_t>(n);
    } else if (arg == "--no-cache") {
      args.server.cache.max_entries = 0;
    } else if (arg == "--arena-bytes") {
      const char* value = next();
      int n = 0;
      if (value == nullptr || !ParseIntArg(value, &n) || n < 0) {
        return Status::InvalidArgument(
            "--arena-bytes needs a non-negative integer");
      }
      args.server.arena.max_retained_bytes = static_cast<std::uint64_t>(n);
    } else {
      return Status::InvalidArgument("unknown flag: " + std::string(arg));
    }
  }
  if (args.transport == DaemonArgs::Transport::kNone) {
    return Status::InvalidArgument(
        "one of --stdio, --unix, or --tcp is required");
  }
  return args;
}

Result<int> ListenUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  ::unlink(path.c_str());  // Stale socket from a previous run.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 128) < 0) {
    const Status error =
        Status::Internal(StrFormat("bind/listen %s: %s", path.c_str(),
                                   std::strerror(errno)));
    ::close(fd);
    return error;
  }
  return fd;
}

Result<int> ListenTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 128) < 0) {
    const Status error = Status::Internal(
        StrFormat("bind/listen port %d: %s", port, std::strerror(errno)));
    ::close(fd);
    return error;
  }
  return fd;
}

/// Serves a listening socket through the epoll multiplexer (serve/mux.h):
/// one event-loop thread owns every connection, so concurrency is bounded
/// by file descriptors rather than reader threads. The wake fd (SIGTERM
/// self-pipe) triggers the drain; ServeMultiplexed itself guarantees every
/// admitted request is answered before it returns.
Status AcceptLoop(BlitzServer* server, int listen_fd, int wake_fd,
                  double write_timeout_ms, int max_connections) {
  MuxOptions mux;
  mux.listen_fd = listen_fd;
  mux.wake_fd = wake_fd;
  mux.write_timeout_ms = write_timeout_ms;
  mux.max_connections = max_connections;
  return ServeMultiplexed(server, mux);
}

int RunDaemon(const DaemonArgs& args) {
  // SIGTERM/SIGINT self-pipe: the one fd every blocking site polls.
  int wake_pipe[2];
  if (::pipe(wake_pipe) != 0) {
    std::fprintf(stderr, "blitzd: pipe: %s\n", std::strerror(errno));
    return kExitError;
  }
  g_wake_write_fd = wake_pipe[1];
  struct sigaction action {};
  action.sa_handler = HandleTermination;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  MetricsRegistry metrics;
  SetGlobalMetrics(&metrics);

  Result<std::unique_ptr<BlitzServer>> server = BlitzServer::Create(args.server);
  if (!server.ok()) {
    std::fprintf(stderr, "blitzd: %s\n", server.status().ToString().c_str());
    SetGlobalMetrics(nullptr);
    return kExitError;
  }

  Status served = Status::OK();
  switch (args.transport) {
    case DaemonArgs::Transport::kStdio: {
      FdStream stream(STDIN_FILENO, STDOUT_FILENO, /*own_fds=*/false,
                      wake_pipe[0], args.write_timeout_ms);
      served = (*server)->Serve(&stream);
      // EOF on stdin is this transport's drain signal.
      (*server)->BeginDrain();
      break;
    }
    case DaemonArgs::Transport::kUnix: {
      Result<int> listen_fd = ListenUnix(args.unix_path);
      if (!listen_fd.ok()) {
        served = listen_fd.status();
        break;
      }
      std::fprintf(stderr, "blitzd: serving on unix socket %s\n",
                   args.unix_path.c_str());
      served = AcceptLoop(server->get(), *listen_fd, wake_pipe[0],
                          args.write_timeout_ms, args.max_connections);
      ::close(*listen_fd);
      ::unlink(args.unix_path.c_str());
      break;
    }
    case DaemonArgs::Transport::kTcp: {
      Result<int> listen_fd = ListenTcp(args.tcp_port);
      if (!listen_fd.ok()) {
        served = listen_fd.status();
        break;
      }
      std::fprintf(stderr, "blitzd: serving on 127.0.0.1:%d\n",
                   args.tcp_port);
      served = AcceptLoop(server->get(), *listen_fd, wake_pipe[0],
                          args.write_timeout_ms, args.max_connections);
      ::close(*listen_fd);
      break;
    }
    case DaemonArgs::Transport::kNone:
      break;
  }

  // Graceful exit: answer or cancel everything in flight, then flush the
  // run's metrics to stderr as one JSON object.
  (*server)->Shutdown();
  std::fprintf(stderr, "%s\n", metrics.ToJson().c_str());
  server->reset();
  SetGlobalMetrics(nullptr);
  ::close(wake_pipe[0]);
  ::close(wake_pipe[1]);

  if (!served.ok()) {
    std::fprintf(stderr, "blitzd: %s\n", served.ToString().c_str());
    return kExitError;
  }
  return kExitOk;
}

}  // namespace
}  // namespace blitz

int main(int argc, char** argv) {
  blitz::Result<blitz::DaemonArgs> args = blitz::ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "blitzd: %s\n", args.status().message().c_str());
    blitz::PrintUsage(stderr);
    return blitz::kExitUsage;
  }
  return blitz::RunDaemon(*args);
}
