#include "core/relset.h"

#include <vector>

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(RelSetTest, DefaultIsEmpty) {
  RelSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.word(), 0u);
}

TEST(RelSetTest, SingletonBasics) {
  const RelSet s = RelSet::Singleton(5);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s.IsSingleton());
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Min(), 5);
  EXPECT_EQ(s.Max(), 5);
  EXPECT_EQ(s.word(), 32u);
}

TEST(RelSetTest, FirstN) {
  EXPECT_EQ(RelSet::FirstN(0).word(), 0u);
  EXPECT_EQ(RelSet::FirstN(1).word(), 1u);
  EXPECT_EQ(RelSet::FirstN(4).word(), 0b1111u);
  EXPECT_EQ(RelSet::FirstN(4).size(), 4);
}

TEST(RelSetTest, SetOperations) {
  const RelSet a = RelSet::Singleton(0) | RelSet::Singleton(2);
  const RelSet b = RelSet::Singleton(2) | RelSet::Singleton(3);
  EXPECT_EQ((a | b).word(), 0b1101u);
  EXPECT_EQ((a & b).word(), 0b0100u);
  EXPECT_EQ((a - b).word(), 0b0001u);
  EXPECT_EQ((a ^ b).word(), 0b1001u);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(RelSet::Singleton(1)));
}

TEST(RelSetTest, ContainsAllAndProperSubset) {
  const RelSet big = RelSet::FromWord(0b1110);
  const RelSet small = RelSet::FromWord(0b0110);
  EXPECT_TRUE(big.ContainsAll(small));
  EXPECT_FALSE(small.ContainsAll(big));
  EXPECT_TRUE(small.IsProperSubsetOf(big));
  EXPECT_FALSE(big.IsProperSubsetOf(big));
  EXPECT_TRUE(big.ContainsAll(big));
}

TEST(RelSetTest, MinMaxAndLowest) {
  const RelSet s = RelSet::FromWord(0b101100);
  EXPECT_EQ(s.Min(), 2);
  EXPECT_EQ(s.Max(), 5);
  EXPECT_EQ(s.LowestSingleton().word(), 0b100u);
  EXPECT_EQ(s.WithoutLowest().word(), 0b101000u);
}

TEST(RelSetTest, WithWithout) {
  RelSet s = RelSet::FirstN(3);
  EXPECT_EQ(s.With(5).word(), 0b100111u);
  EXPECT_EQ(s.Without(1).word(), 0b101u);
  // With an existing member / without a non-member are no-ops.
  EXPECT_EQ(s.With(0), s);
  EXPECT_EQ(s.Without(9), s);
}

TEST(RelSetTest, ForEachAscending) {
  const RelSet s = RelSet::FromWord(0b101101);
  std::vector<int> members;
  s.ForEach([&](int i) { members.push_back(i); });
  EXPECT_EQ(members, (std::vector<int>{0, 2, 3, 5}));
}

TEST(RelSetTest, ToString) {
  EXPECT_EQ(RelSet().ToString(), "{}");
  EXPECT_EQ((RelSet::Singleton(0) | RelSet::Singleton(3)).ToString(),
            "{R0,R3}");
}

TEST(RelSetTest, SingletonIsNotEmptyAndPairIsNotSingleton) {
  EXPECT_FALSE(RelSet().IsSingleton());
  EXPECT_TRUE(RelSet::Singleton(0).IsSingleton());
  EXPECT_FALSE(RelSet::FirstN(2).IsSingleton());
}

TEST(RelSetTest, IntegerOrderContainsAllSubsetsFirst) {
  // Section 4.2: processing sets in integer order guarantees every proper
  // subset of S is processed before S — i.e. subset word < set word.
  for (std::uint64_t s = 1; s < 64; ++s) {
    for (std::uint64_t sub = 1; sub < s; ++sub) {
      if ((sub & s) == sub) {
        EXPECT_LT(sub, s);
      }
    }
    // And conversely any subset's word never exceeds the set's word.
    const RelSet set = RelSet::FromWord(s);
    set.ForEach([&](int i) {
      EXPECT_LE(RelSet::Singleton(i).word(), set.word());
    });
  }
}

TEST(RelSetTest, SixtyThreeBitSafety) {
  // kMaxRelations is 30, but the representation itself handles high bits.
  const RelSet s = RelSet::Singleton(29);
  EXPECT_EQ(s.Min(), 29);
  EXPECT_EQ(s.word(), std::uint64_t{1} << 29);
}

}  // namespace
}  // namespace blitz
