#include "simd/dispatch.h"

#include <cstdlib>

#include "common/strings.h"

namespace blitz {

namespace {

// Whether the running CPU reports the feature (cpuid). Non-x86 (or
// non-GNU) builds report nothing and the dispatcher settles on kScalar.
// __builtin_cpu_supports requires a literal argument, hence two probes.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
bool CpuSupportsAvx2() { return __builtin_cpu_supports("avx2"); }
bool CpuSupportsAvx512f() { return __builtin_cpu_supports("avx512f"); }
#else
bool CpuSupportsAvx2() { return false; }
bool CpuSupportsAvx512f() { return false; }
#endif

SimdLevel ProbeCpu() {
  if (SplitFilterAvx512Compiled() && CpuSupportsAvx512f()) {
    return SimdLevel::kAvx512;
  }
  if (SplitFilterAvx2Compiled() && CpuSupportsAvx2()) {
    return SimdLevel::kAvx2;
  }
  return SimdLevel::kScalar;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
      return "auto";
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kBlock:
      return "block";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Result<SimdLevel> ParseSimdLevel(std::string_view s) {
  if (s == "auto") return SimdLevel::kAuto;
  if (s == "scalar") return SimdLevel::kScalar;
  if (s == "block") return SimdLevel::kBlock;
  if (s == "avx2") return SimdLevel::kAvx2;
  if (s == "avx512") return SimdLevel::kAvx512;
  return Status::InvalidArgument(StrFormat(
      "unknown SIMD level '%.*s' (expected auto|scalar|block|avx2|avx512)",
      static_cast<int>(s.size()), s.data()));
}

SimdLevel DetectCpuSimdLevel() {
  static const SimdLevel detected = ProbeCpu();
  return detected;
}

SimdLevel ResolveSimdLevel(SimdLevel requested) {
  return ResolveSimdLevelDetailed(requested).level;
}

SimdResolution ResolveSimdLevelDetailed(SimdLevel requested) {
  if (requested == SimdLevel::kAuto) {
    // The environment override is read per resolution (i.e. once per
    // optimizer pass) so test harnesses can flip it between passes; only
    // the cpuid probe is cached.
    if (const char* env = std::getenv("BLITZ_SIMD")) {
      Result<SimdLevel> parsed = ParseSimdLevel(env);
      if (parsed.ok() && *parsed != SimdLevel::kAuto) {
        requested = *parsed;
      }
    }
  }
  if (requested == SimdLevel::kAuto) {
    return {DetectCpuSimdLevel(), /*from_auto=*/true};
  }
  // Clamp forced AVX requests to what this binary + CPU can run.
  const SimdLevel ceiling = DetectCpuSimdLevel();
  if (requested == SimdLevel::kAvx512 && ceiling != SimdLevel::kAvx512) {
    requested = SimdLevel::kAvx2;
  }
  if (requested == SimdLevel::kAvx2 && ceiling == SimdLevel::kScalar) {
    requested = SimdLevel::kScalar;
  }
  return {requested, /*from_auto=*/false};
}

namespace {
constexpr SplitKernel kKernelPortable{&SplitBuildDensePortable,
                                      &SplitFilterDensePortable};
constexpr SplitKernel kKernelAvx2{&SplitBuildDenseAvx2,
                                  &SplitFilterDenseAvx2};
constexpr SplitKernel kKernelAvx512{&SplitBuildDenseAvx512,
                                    &SplitFilterDenseAvx512};
}  // namespace

const SplitKernel* GetSplitKernel(SimdLevel resolved) {
  switch (resolved) {
    case SimdLevel::kBlock:
      return &kKernelPortable;
    case SimdLevel::kAvx2:
      return &kKernelAvx2;
    case SimdLevel::kAvx512:
      return &kKernelAvx512;
    case SimdLevel::kAuto:
    case SimdLevel::kScalar:
      break;
  }
  return nullptr;
}

}  // namespace blitz
