#include "common/rng.h"

#include <set>

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.NextInt(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace blitz
