#ifndef BLITZ_CORE_INSTRUMENTATION_H_
#define BLITZ_CORE_INSTRUMENTATION_H_

#include <cstdint>
#include <string>

namespace blitz {

/// Zero-cost instrumentation policy: all hooks are empty inline functions,
/// so the production optimizer pays nothing for the instrumentation points.
struct NoInstrumentation {
  static constexpr bool kEnabled = false;

  void OnSubsetVisited() {}
  void OnLoopIteration() {}
  void OnLoopIterationBlock(std::uint64_t) {}
  void OnOperandPass() {}
  void OnKappa2Evaluated() {}
  void OnImprovement() {}
  void OnThresholdSkip() {}
};

/// Counting policy used by the Section 6.2 / 3.3 analyses: tallies how often
/// each stage of find_best_split executes so the measured counts can be
/// compared against the paper's predictions (3^n loop iterations,
/// (ln2/2) n 2^n expected improvements, kappa'' count in between).
struct CountingInstrumentation {
  static constexpr bool kEnabled = true;

  void OnSubsetVisited() { ++subsets_visited; }
  void OnLoopIteration() { ++loop_iterations; }
  /// One blocked-filter batch of k split-loop iterations (SIMD kernel);
  /// keeps loop_iterations exactly equal to the scalar driver's count.
  void OnLoopIterationBlock(std::uint64_t k) { loop_iterations += k; }
  void OnOperandPass() { ++operand_passes; }
  void OnKappa2Evaluated() { ++kappa2_evaluations; }
  void OnImprovement() { ++improvements; }
  void OnThresholdSkip() { ++threshold_skips; }

  CountingInstrumentation& operator+=(const CountingInstrumentation& other) {
    subsets_visited += other.subsets_visited;
    loop_iterations += other.loop_iterations;
    operand_passes += other.operand_passes;
    kappa2_evaluations += other.kappa2_evaluations;
    improvements += other.improvements;
    threshold_skips += other.threshold_skips;
    return *this;
  }

  std::string ToString() const;

  /// Non-singleton subsets processed (2^n - n - 1 when nothing is skipped).
  std::uint64_t subsets_visited = 0;
  /// Iterations of the best-split loop (~3^n in aggregate).
  std::uint64_t loop_iterations = 0;
  /// Iterations that passed the operand-cost nested-if gates.
  std::uint64_t operand_passes = 0;
  /// Evaluations of the split-dependent cost component kappa''.
  std::uint64_t kappa2_evaluations = 0;
  /// Executions of the conditional improvement code (expected ~(ln2/2)n2^n).
  std::uint64_t improvements = 0;
  /// Subsets whose best-split loop was skipped because kappa'(S) already
  /// exceeded the plan-cost threshold (Sections 6.3-6.4).
  std::uint64_t threshold_skips = 0;
};

}  // namespace blitz

#endif  // BLITZ_CORE_INSTRUMENTATION_H_
