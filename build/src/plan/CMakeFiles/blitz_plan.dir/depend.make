# Empty dependencies file for blitz_plan.
# This may be replaced when dependencies are built.
