file(REMOVE_RECURSE
  "CMakeFiles/bjq_test.dir/bjq_test.cc.o"
  "CMakeFiles/bjq_test.dir/bjq_test.cc.o.d"
  "bjq_test"
  "bjq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bjq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
