# Empty compiler generated dependencies file for bench_fig2_cartesian.
# This may be replaced when dependencies are built.
