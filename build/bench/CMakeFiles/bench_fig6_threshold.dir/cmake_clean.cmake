file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_threshold.dir/bench_fig6_threshold.cc.o"
  "CMakeFiles/bench_fig6_threshold.dir/bench_fig6_threshold.cc.o.d"
  "bench_fig6_threshold"
  "bench_fig6_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
