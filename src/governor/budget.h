#ifndef BLITZ_GOVERNOR_BUDGET_H_
#define BLITZ_GOVERNOR_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>

namespace blitz {

/// Cooperative cancellation flag. A caller keeps the token alive for the
/// duration of the optimize call and may flip it from any thread; governed
/// loops observe the flip at their next amortized check and unwind with
/// StatusCode::kCancelled. Relaxed ordering suffices: the flag carries no
/// payload, only the request to stop.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// Re-arms the token for reuse across calls (tests, retry loops).
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource limits for one governed optimizer call. Default-constructed
/// budgets are inactive — nothing is checked and the optimizer runs at full
/// paper speed. Each armed limit is enforced independently:
///
///   - deadline_seconds: wall-clock allowance for the call, checked
///     cooperatively every GovernorState::kCheckStride subsets; exceeding it
///     yields StatusCode::kDeadlineExceeded.
///   - max_dp_table_bytes: admission control — the 2^n DP table's footprint
///     is estimated *before* allocation and a table over the cap yields
///     StatusCode::kResourceExhausted without allocating anything.
///   - cancellation: external stop request, observed at the same amortized
///     checkpoints; yields StatusCode::kCancelled.
///
/// The deadline is relative to the start of the governed call. Multi-pass
/// drivers (the threshold ladder, the hybrid block loop) resolve it once at
/// entry into `absolute_deadline` so their inner passes share one clock
/// rather than each receiving a fresh allowance.
struct ResourceBudget {
  /// Wall-clock allowance in seconds; +infinity disables the deadline.
  double deadline_seconds = std::numeric_limits<double>::infinity();

  /// Absolute deadline on the steady clock; when set it takes precedence
  /// over deadline_seconds. Set by multi-pass drivers, not by end users.
  std::optional<std::chrono::steady_clock::time_point> absolute_deadline;

  /// DP-table byte cap for admission control; 0 disables.
  std::uint64_t max_dp_table_bytes = 0;

  /// Optional external cancellation; not owned, may be null.
  const CancellationToken* cancellation = nullptr;

  bool has_deadline() const {
    return absolute_deadline.has_value() ||
           deadline_seconds < std::numeric_limits<double>::infinity();
  }

  bool has_memory_cap() const { return max_dp_table_bytes > 0; }

  /// True if any limit is armed; inactive budgets skip governor setup
  /// entirely.
  bool active() const {
    return has_deadline() || has_memory_cap() || cancellation != nullptr;
  }

  /// A copy of this budget whose deadline is pinned to an absolute time
  /// point (now + deadline_seconds, unless already absolute). Pass the
  /// resolved budget to sub-calls so they share the caller's clock.
  ResourceBudget Resolved() const {
    ResourceBudget resolved = *this;
    if (!resolved.absolute_deadline.has_value() && has_deadline()) {
      resolved.absolute_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(deadline_seconds));
    }
    return resolved;
  }
};

}  // namespace blitz

#endif  // BLITZ_GOVERNOR_BUDGET_H_
