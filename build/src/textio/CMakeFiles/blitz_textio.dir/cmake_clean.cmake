file(REMOVE_RECURSE
  "CMakeFiles/blitz_textio.dir/bjq.cc.o"
  "CMakeFiles/blitz_textio.dir/bjq.cc.o.d"
  "libblitz_textio.a"
  "libblitz_textio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitz_textio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
