#include "card/paper_fanout.h"

#include <utility>

#include "card/fanout.h"
#include "common/check.h"

namespace blitz {

PaperFanoutEstimator::PaperFanoutEstimator(const Catalog& catalog,
                                           const JoinGraph& graph)
    : graph_(&graph) {
  BLITZ_CHECK(catalog.num_relations() == graph.num_relations());
  base_cards_.reserve(catalog.num_relations());
  for (int i = 0; i < catalog.num_relations(); ++i) {
    base_cards_.push_back(catalog.cardinality(i));
  }
}

PaperFanoutEstimator::PaperFanoutEstimator(std::vector<double> base_cards,
                                           const JoinGraph& graph)
    : graph_(&graph), base_cards_(std::move(base_cards)) {
  BLITZ_CHECK(static_cast<int>(base_cards_.size()) == graph.num_relations());
}

double PaperFanoutEstimator::EstimateCardinality(RelSet s) const {
  return FanoutJoinCardinality(*graph_, s, base_cards_);
}

void PaperFanoutEstimator::EstimateAll(std::vector<double>* cards) const {
  FanoutComputeAllCardinalities(*graph_, base_cards_, cards);
}

}  // namespace blitz
