#ifndef BLITZ_EXEC_DATAGEN_H_
#define BLITZ_EXEC_DATAGEN_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/relation.h"
#include "query/join_graph.h"

namespace blitz {

/// Knobs for synthetic data generation.
struct DataGenOptions {
  std::uint64_t seed = 1;
  /// Hard cap on rows per table (protects tests from huge catalogs). Tables
  /// are truncated to this size; estimates then refer to the original
  /// catalog, so validation workloads should stay under the cap.
  std::uint32_t max_rows_per_table = 1u << 20;
};

/// Materializes one ExecTable per catalog relation, with one join-key column
/// per incident predicate. Keys for predicate p are drawn uniformly from a
/// domain of size round(1 / selectivity(p)), so the expected fraction of the
/// cross product with matching keys — i.e. the realized selectivity of an
/// equality predicate on those columns — approximates the predicate's
/// selectivity, and predicates are independent (uncorrelated), matching the
/// paper's modeling assumptions.
Result<std::vector<ExecTable>> GenerateTables(const Catalog& catalog,
                                              const JoinGraph& graph,
                                              const DataGenOptions& options);

}  // namespace blitz

#endif  // BLITZ_EXEC_DATAGEN_H_
