#include "serve/admission.h"

#include <algorithm>

#include "common/strings.h"

namespace blitz {

Status TenantQuota::Validate() const {
  if (max_in_flight < 1) {
    return Status::InvalidArgument("max_in_flight must be >= 1");
  }
  if (max_deadline_ms < 0) {
    return Status::InvalidArgument("max_deadline_ms must be >= 0");
  }
  return Status::OK();
}

Status AdmissionOptions::Validate() const {
  BLITZ_RETURN_IF_ERROR(default_quota.Validate());
  for (const auto& [name, quota] : tenants) {
    Status valid = quota.Validate();
    if (!valid.ok()) {
      return Status::InvalidArgument(
          StrFormat("tenant %s: %s", name.c_str(),
                    valid.message().c_str()));
    }
  }
  return Status::OK();
}

const TenantQuota& AdmissionController::quota_for(
    std::string_view tenant) const {
  const auto it = options_.tenants.find(tenant);
  return it == options_.tenants.end() ? options_.default_quota : it->second;
}

AdmissionController::Decision AdmissionController::Admit(
    std::string_view tenant, std::uint64_t body_bytes) {
  const TenantQuota& quota = quota_for(tenant);
  if (quota.max_body_bytes > 0 && body_bytes > quota.max_body_bytes) {
    // Oversized bodies are a hard reject, not an overload: retrying the
    // same request can never succeed, so no retry-after hint.
    return {Status::ResourceExhausted(StrFormat(
                "request body of %llu bytes exceeds tenant %.*s's "
                "%llu-byte cap",
                static_cast<unsigned long long>(body_bytes),
                static_cast<int>(tenant.size()), tenant.data(),
                static_cast<unsigned long long>(quota.max_body_bytes))),
            0};
  }
  std::lock_guard<std::mutex> lock(mu_);
  int& in_flight = in_flight_[std::string(tenant)];
  if (in_flight >= quota.max_in_flight) {
    // Shed with a hint that grows with oversubscription pressure: at the
    // cap, suggest one "request drain time" of backoff; pile-ups suggest
    // proportionally more, bounded so a hint never parks a client forever.
    const double pressure =
        static_cast<double>(in_flight + 1) /
        static_cast<double>(quota.max_in_flight);
    const double hint_ms = std::min(1000.0, 25.0 * pressure);
    return {Status::ResourceExhausted(StrFormat(
                "tenant %.*s has %d requests in flight (cap %d)",
                static_cast<int>(tenant.size()), tenant.data(), in_flight,
                quota.max_in_flight)),
            hint_ms};
  }
  ++in_flight;
  return {Status::OK(), 0};
}

void AdmissionController::Release(std::string_view tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = in_flight_.find(tenant);
  if (it == in_flight_.end()) return;
  if (it->second > 0) --it->second;
  // Tenant names are client-chosen and unauthenticated: dropping idle
  // entries keeps a client cycling fresh names from growing this map — and
  // daemon memory — without bound.
  if (it->second <= 0) in_flight_.erase(it);
}

int AdmissionController::in_flight(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = in_flight_.find(tenant);
  return it == in_flight_.end() ? 0 : it->second;
}

std::size_t AdmissionController::tracked_tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_.size();
}

std::vector<std::pair<std::string, int>> AdmissionController::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {in_flight_.begin(), in_flight_.end()};  // std::map: name-sorted.
}

}  // namespace blitz
