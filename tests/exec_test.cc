#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "baseline/random_plans.h"
#include "exec/datagen.h"
#include "exec/executor.h"
#include "exec/operators.h"
#include "exec/relation.h"
#include "plan/algorithm_choice.h"
#include "plan/plan.h"
#include "test_util.h"

namespace blitz {
namespace {

// --------------------------------------------------------------------------
// ExecTable.
// --------------------------------------------------------------------------

TEST(ExecTableTest, ColumnsAttachAndRead) {
  ExecTable table(0, 3);
  EXPECT_EQ(table.relation_index(), 0);
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_FALSE(table.HasColumn(0));
  ASSERT_TRUE(table.AddJoinColumn(0, {5, 6, 7}).ok());
  EXPECT_TRUE(table.HasColumn(0));
  EXPECT_EQ(table.Column(0)[1], 6u);
}

TEST(ExecTableTest, RejectsWrongSizeAndDuplicates) {
  ExecTable table(0, 3);
  EXPECT_FALSE(table.AddJoinColumn(0, {1, 2}).ok());
  ASSERT_TRUE(table.AddJoinColumn(0, {1, 2, 3}).ok());
  EXPECT_FALSE(table.AddJoinColumn(0, {4, 5, 6}).ok());
}

// --------------------------------------------------------------------------
// Data generation.
// --------------------------------------------------------------------------

TEST(DataGenTest, TablesMatchCatalogCardinalities) {
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 25, 3});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.1).ok());
  Result<std::vector<ExecTable>> tables =
      GenerateTables(*catalog, graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->size(), 3u);
  EXPECT_EQ((*tables)[0].num_rows(), 10u);
  EXPECT_EQ((*tables)[1].num_rows(), 25u);
  EXPECT_EQ((*tables)[2].num_rows(), 3u);
  // Only the endpoints of predicate 0 carry its column.
  EXPECT_TRUE((*tables)[0].HasColumn(0));
  EXPECT_TRUE((*tables)[1].HasColumn(0));
  EXPECT_FALSE((*tables)[2].HasColumn(0));
}

TEST(DataGenTest, KeysStayInDomain) {
  Result<Catalog> catalog = Catalog::FromCardinalities({1000, 1000});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(2);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.05).ok());  // domain 20
  Result<std::vector<ExecTable>> tables =
      GenerateTables(*catalog, graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok());
  for (const std::uint32_t v : (*tables)[0].Column(0)) {
    EXPECT_LT(v, 20u);
  }
}

TEST(DataGenTest, DeterministicForSeed) {
  Result<Catalog> catalog = Catalog::FromCardinalities({50, 50});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(2);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.1).ok());
  DataGenOptions options;
  options.seed = 42;
  Result<std::vector<ExecTable>> a = GenerateTables(*catalog, graph, options);
  Result<std::vector<ExecTable>> b = GenerateTables(*catalog, graph, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)[0].Column(0), (*b)[0].Column(0));
}

TEST(DataGenTest, MaxRowsCapApplies) {
  Result<Catalog> catalog = Catalog::FromCardinalities({1e9});
  ASSERT_TRUE(catalog.ok());
  DataGenOptions options;
  options.max_rows_per_table = 128;
  Result<std::vector<ExecTable>> tables =
      GenerateTables(*catalog, JoinGraph(1), options);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ((*tables)[0].num_rows(), 128u);
}

TEST(DataGenTest, RealizedSelectivityApproximatesRequested) {
  // Join two 400-row tables on a selectivity-0.02 predicate; the realized
  // match fraction should be near 0.02.
  Result<Catalog> catalog = Catalog::FromCardinalities({400, 400});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(2);
  const double selectivity = 0.02;
  ASSERT_TRUE(graph.AddPredicate(0, 1, selectivity).ok());
  Result<std::vector<ExecTable>> tables =
      GenerateTables(*catalog, graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok());
  std::uint64_t matches = 0;
  for (const std::uint32_t a : (*tables)[0].Column(0)) {
    for (const std::uint32_t b : (*tables)[1].Column(0)) {
      if (a == b) ++matches;
    }
  }
  const double realized = static_cast<double>(matches) / (400.0 * 400.0);
  EXPECT_NEAR(realized, selectivity, 0.01);
}

// --------------------------------------------------------------------------
// Operators.
// --------------------------------------------------------------------------

struct TwoTableFixture {
  TwoTableFixture() : graph(2) {
    Result<Catalog> c = Catalog::FromCardinalities({60, 80});
    BLITZ_CHECK(c.ok());
    catalog = std::move(c).value();
    BLITZ_CHECK(graph.AddPredicate(0, 1, 0.1).ok());
    Result<std::vector<ExecTable>> t =
        GenerateTables(catalog, graph, DataGenOptions{});
    BLITZ_CHECK(t.ok());
    tables = std::move(t).value();
  }

  Catalog catalog;
  JoinGraph graph;
  std::vector<ExecTable> tables;
};

TEST(OperatorsTest, ScanProducesOneRowPerTuple) {
  const TwoTableFixture fx;
  const RowSet scan = ScanTable(fx.tables[0]);
  EXPECT_EQ(scan.num_rows(), 60u);
  EXPECT_EQ(scan.relations, RelSet::Singleton(0));
  EXPECT_EQ(scan.rows[17][0], 17u);
}

TEST(OperatorsTest, AllJoinAlgorithmsAgree) {
  const TwoTableFixture fx;
  const RowSet lhs = ScanTable(fx.tables[0]);
  const RowSet rhs = ScanTable(fx.tables[1]);
  const auto predicates =
      BindSpanningPredicates(fx.graph, lhs.relations, rhs.relations);
  ASSERT_EQ(predicates.size(), 1u);

  const RowSet nl = JoinRowSets(lhs, rhs, predicates,
                                JoinAlgorithm::kNestedLoops, fx.tables);
  const RowSet hash =
      JoinRowSets(lhs, rhs, predicates, JoinAlgorithm::kHash, fx.tables);
  const RowSet sm = JoinRowSets(lhs, rhs, predicates,
                                JoinAlgorithm::kSortMerge, fx.tables);
  EXPECT_EQ(ResultFingerprint(nl), ResultFingerprint(hash));
  EXPECT_EQ(ResultFingerprint(nl), ResultFingerprint(sm));
  EXPECT_GT(nl.num_rows(), 0u);
}

TEST(OperatorsTest, ProductProducesFullCrossProduct) {
  const TwoTableFixture fx;
  const RowSet lhs = ScanTable(fx.tables[0]);
  const RowSet rhs = ScanTable(fx.tables[1]);
  const RowSet product = JoinRowSets(
      lhs, rhs, {}, JoinAlgorithm::kCartesianProduct, fx.tables);
  EXPECT_EQ(product.num_rows(), 60u * 80u);
}

TEST(OperatorsTest, BindSpanningPredicatesOrientsEndpoints) {
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 2, 0.5).ok());
  // Predicate stored as (0,2); binding with 2 on the left must flip it.
  const auto bound = BindSpanningPredicates(graph, RelSet::Singleton(2),
                                            RelSet::Singleton(0));
  ASSERT_EQ(bound.size(), 1u);
  EXPECT_EQ(bound[0].lhs_relation, 2);
  EXPECT_EQ(bound[0].rhs_relation, 0);
  // Non-spanning predicates are not bound.
  EXPECT_TRUE(BindSpanningPredicates(graph, RelSet::Singleton(1),
                                     RelSet::Singleton(0))
                  .empty());
}

TEST(OperatorsTest, MultiPredicateJoinVerifiesAllPredicates) {
  // Two predicates between the same pair of relations is not allowed in a
  // JoinGraph, so span two predicates across a three-way join instead:
  // join {R0,R1} with {R2} where R0-R2 and R1-R2 both have predicates.
  Result<Catalog> catalog = Catalog::FromCardinalities({30, 30, 30});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 2, 0.2).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 0.2).ok());
  Result<std::vector<ExecTable>> tables =
      GenerateTables(*catalog, graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok());

  const RowSet r0 = ScanTable((*tables)[0]);
  const RowSet r1 = ScanTable((*tables)[1]);
  const RowSet r01 =
      JoinRowSets(r0, r1, {}, JoinAlgorithm::kCartesianProduct, *tables);
  const RowSet r2 = ScanTable((*tables)[2]);
  const auto predicates =
      BindSpanningPredicates(graph, r01.relations, r2.relations);
  ASSERT_EQ(predicates.size(), 2u);

  const RowSet hash =
      JoinRowSets(r01, r2, predicates, JoinAlgorithm::kHash, *tables);
  const RowSet nl =
      JoinRowSets(r01, r2, predicates, JoinAlgorithm::kNestedLoops, *tables);
  const RowSet sm =
      JoinRowSets(r01, r2, predicates, JoinAlgorithm::kSortMerge, *tables);
  EXPECT_EQ(ResultFingerprint(hash), ResultFingerprint(nl));
  EXPECT_EQ(ResultFingerprint(sm), ResultFingerprint(nl));
  // Every output row satisfies both predicates.
  for (const auto& row : hash.rows) {
    const std::uint32_t k0 = (*tables)[0].Column(0)[row[0]];
    const std::uint32_t k2a = (*tables)[2].Column(0)[row[2]];
    const std::uint32_t k1 = (*tables)[1].Column(1)[row[1]];
    const std::uint32_t k2b = (*tables)[2].Column(1)[row[2]];
    EXPECT_EQ(k0, k2a);
    EXPECT_EQ(k1, k2b);
  }
}

// --------------------------------------------------------------------------
// Executor.
// --------------------------------------------------------------------------

TEST(ExecutorTest, DifferentJoinOrdersProduceIdenticalResults) {
  const auto instance = blitz::testing::MakeRandomInstance(
      5, /*seed=*/3, /*extra_edge_prob=*/0.4, /*card_max=*/15,
      /*sel_min=*/0.05);
  Result<std::vector<ExecTable>> tables =
      GenerateTables(instance.catalog, instance.graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok());

  Rng rng(8);
  const Plan first = RandomBushyPlan(RelSet::FirstN(5), &rng);
  Result<ExecutionResult> reference =
      ExecutePlan(first, *tables, instance.graph);
  ASSERT_TRUE(reference.ok());
  const auto expected = ResultFingerprint(reference->result);

  for (int trial = 0; trial < 5; ++trial) {
    const Plan other = RandomBushyPlan(RelSet::FirstN(5), &rng);
    Result<ExecutionResult> result =
        ExecutePlan(other, *tables, instance.graph);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(ResultFingerprint(result->result), expected)
        << other.ToString();
  }
}

TEST(ExecutorTest, NodeStatsCoverEveryJoin) {
  const TwoTableFixture fx;
  Plan plan = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));
  Result<ExecutionResult> result = ExecutePlan(plan, fx.tables, fx.graph);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->node_stats.size(), 1u);
  EXPECT_EQ(result->node_stats[0].set, RelSet::FirstN(2));
  EXPECT_EQ(result->node_stats[0].output_rows, result->result.num_rows());
}

TEST(ExecutorTest, ObservedCardinalityNearEstimate) {
  // The estimated join cardinality |L||R|s should predict the observed
  // output within sampling noise.
  const TwoTableFixture fx;
  Plan plan = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));
  Result<ExecutionResult> result = ExecutePlan(plan, fx.tables, fx.graph);
  ASSERT_TRUE(result.ok());
  const double expected = 60.0 * 80.0 * 0.1;
  const double observed = static_cast<double>(result->result.num_rows());
  EXPECT_NEAR(observed, expected, 0.5 * expected);
}

TEST(ExecutorTest, AnnotatedAlgorithmsAreUsed) {
  const TwoTableFixture fx;
  Plan plan = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));
  plan.mutable_root().algorithm = JoinAlgorithm::kSortMerge;
  Result<ExecutionResult> result = ExecutePlan(plan, fx.tables, fx.graph);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->node_stats[0].algorithm, JoinAlgorithm::kSortMerge);
}

TEST(ExecutorTest, RejectsEmptyPlanAndBadTables) {
  const TwoTableFixture fx;
  EXPECT_FALSE(ExecutePlan(Plan(), fx.tables, fx.graph).ok());
  const Plan plan = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));
  std::vector<ExecTable> too_few;
  too_few.emplace_back(0, 1u);
  EXPECT_FALSE(ExecutePlan(plan, too_few, fx.graph).ok());
}

}  // namespace
}  // namespace blitz
