#include "obs/metrics.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(HistogramTest, BasicStats) {
  Histogram h({1.0, 10.0, 100.0});
  h.Record(0.5);
  h.Record(5.0);
  h.Record(50.0);
  h.Record(500.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
}

TEST(HistogramTest, PercentilesLandInTheRightBucket) {
  Histogram h({1.0, 2.0, 5.0, 10.0});
  // 90 samples in [1,2), 10 in [5,10): p50 must interpolate inside [1,2),
  // p95 and p99 inside [5,10).
  for (int i = 0; i < 90; ++i) h.Record(1.5);
  for (int i = 0; i < 10; ++i) h.Record(7.0);
  const double p50 = h.Percentile(50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LT(p50, 2.0);
  const double p95 = h.Percentile(95);
  EXPECT_GE(p95, 5.0);
  EXPECT_LE(p95, 10.0);
  const double p99 = h.Percentile(99);
  EXPECT_GE(p99, p95);
  EXPECT_LE(p99, 10.0);
  // Percentiles are monotone in p.
  EXPECT_LE(h.Percentile(0), p50);
  EXPECT_LE(p50, p95);
}

TEST(HistogramTest, SingleSampleReportsItselfEverywhere) {
  Histogram h(Histogram::DefaultLatencyBounds());
  h.Record(0.0123);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0123);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0123);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0123);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, UniformSpreadApproximatesQuantiles) {
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(i);
  Histogram h(bounds);
  for (int i = 0; i < 1000; ++i) h.Record(i / 10.0);  // uniform on [0, 100)
  EXPECT_NEAR(h.Percentile(50), 50.0, 2.0);
  EXPECT_NEAR(h.Percentile(95), 95.0, 2.0);
  EXPECT_NEAR(h.Percentile(99), 99.0, 2.0);
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry metrics;
  metrics.AddCounter("a");
  metrics.AddCounter("a", 2);
  metrics.AddCounter("b", 7);
  const MetricsSnapshot snapshot = metrics.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a");
  EXPECT_EQ(snapshot.counters[0].second, 3u);
  EXPECT_EQ(snapshot.counters[1].second, 7u);
}

TEST(MetricsRegistryTest, GaugesSetAndMax) {
  MetricsRegistry metrics;
  metrics.SetGauge("g", 5.0);
  metrics.SetGauge("g", 3.0);
  metrics.MaxGauge("peak", 10.0);
  metrics.MaxGauge("peak", 4.0);
  metrics.MaxGauge("peak", 12.0);
  const MetricsSnapshot snapshot = metrics.TakeSnapshot();
  ASSERT_EQ(snapshot.gauges.size(), 2u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 3.0);   // last write wins
  EXPECT_DOUBLE_EQ(snapshot.gauges[1].second, 12.0);           // peak
}

TEST(MetricsRegistryTest, DisabledRegistryAddsNoMetrics) {
  MetricsRegistry metrics(/*enabled=*/false);
  EXPECT_FALSE(metrics.enabled());
  metrics.AddCounter("a");
  metrics.SetGauge("g", 1.0);
  metrics.MaxGauge("m", 2.0);
  metrics.RecordLatency("l", 0.5);
  EXPECT_TRUE(metrics.TakeSnapshot().empty());
  EXPECT_EQ(metrics.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsRegistryTest, JsonDumpIsWellFormed) {
  MetricsRegistry metrics;
  metrics.AddCounter("optimizer.calls", 3);
  metrics.SetGauge("bytes", 16384);
  metrics.RecordLatency("seconds", 0.002);
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"optimizer.calls\":3}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"bytes\":16384"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seconds\":{\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
  // Balanced braces, no trailing comma before a closing brace.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.find(",}"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, NonFiniteGaugeSerializesAsString) {
  MetricsRegistry metrics;
  metrics.SetGauge("inf", std::numeric_limits<double>::infinity());
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"inf\":\"inf\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ResetClears) {
  MetricsRegistry metrics;
  metrics.AddCounter("a");
  metrics.RecordLatency("l", 1.0);
  metrics.Reset();
  EXPECT_TRUE(metrics.TakeSnapshot().empty());
}

TEST(MetricsRegistryTest, ConcurrentWritersDoNotLoseCounts) {
  MetricsRegistry metrics;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.AddCounter("shared");
        metrics.RecordLatency("lat", 1e-4);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const MetricsSnapshot snapshot = metrics.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].second,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(GlobalMetricsTest, InstallAndDump) {
  EXPECT_EQ(GlobalMetrics(), nullptr);
  EXPECT_EQ(DumpMetricsJson(), "{}");
  MetricsRegistry metrics;
  SetGlobalMetrics(&metrics);
  EXPECT_EQ(GlobalMetrics(), &metrics);
  metrics.AddCounter("x");
  EXPECT_NE(DumpMetricsJson().find("\"x\":1"), std::string::npos);
  SetGlobalMetrics(nullptr);
  EXPECT_EQ(GlobalMetrics(), nullptr);
}

}  // namespace
}  // namespace blitz
