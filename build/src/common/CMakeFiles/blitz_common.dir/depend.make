# Empty dependencies file for blitz_common.
# This may be replaced when dependencies are built.
