#ifndef BLITZ_BASELINE_TOPDOWN_H_
#define BLITZ_BASELINE_TOPDOWN_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Options for the top-down memo optimizer.
struct TopDownOptions {
  /// Branch-and-bound pruning with cost limits passed down to subgroups
  /// (Volcano's upper bounds). Disabling it gives a plain memoized top-down
  /// enumeration, useful as the constant-factor comparison point against
  /// blitzsplit's bottom-up loop.
  bool use_cost_bounds = true;

  /// Allow joins with no spanning predicate.
  bool allow_cartesian_products = true;
};

/// Result of a top-down optimization.
struct TopDownResult {
  Plan plan;
  double cost = 0;
  /// Group explorations (re-explorations after a limit increase count
  /// again).
  std::uint64_t groups_explored = 0;
  /// Splits whose kappa was evaluated.
  std::uint64_t splits_costed = 0;
  /// Splits dismissed by a cost bound before recursing.
  std::uint64_t splits_pruned = 0;
};

/// Volcano-style top-down optimization ([GM93], the rule-based comparator
/// of the paper's Section 2): groups (relation subsets) are optimized on
/// demand, memoized, and re-explored only when a caller offers a larger
/// cost budget; within a group, candidate splits are dismissed as soon as
/// their accumulated cost reaches the budget, and the budget tightens to
/// the best complete plan found so far (branch and bound).
///
/// Produces the same optimum as blitzsplit (asserted by tests); the benches
/// compare the constant factors and the pruning behavior of top-down vs
/// bottom-up search.
Result<TopDownResult> OptimizeTopDown(const Catalog& catalog,
                                      const JoinGraph& graph,
                                      CostModelKind cost_model,
                                      const TopDownOptions& options);

}  // namespace blitz

#endif  // BLITZ_BASELINE_TOPDOWN_H_
