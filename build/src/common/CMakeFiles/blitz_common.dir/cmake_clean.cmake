file(REMOVE_RECURSE
  "CMakeFiles/blitz_common.dir/math_util.cc.o"
  "CMakeFiles/blitz_common.dir/math_util.cc.o.d"
  "CMakeFiles/blitz_common.dir/status.cc.o"
  "CMakeFiles/blitz_common.dir/status.cc.o.d"
  "CMakeFiles/blitz_common.dir/strings.cc.o"
  "CMakeFiles/blitz_common.dir/strings.cc.o.d"
  "libblitz_common.a"
  "libblitz_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitz_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
