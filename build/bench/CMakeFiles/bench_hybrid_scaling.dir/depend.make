# Empty dependencies file for bench_hybrid_scaling.
# This may be replaced when dependencies are built.
