// Tests for the client library (serve/client.h): retry/backoff behavior
// against a scripted in-process peer.

#include "serve/client.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/stream.h"
#include "serve/wire.h"

namespace blitz {
namespace {

constexpr char kBjq[] = "relation A 100\nrelation B 200\npredicate A B 0.1\n";

/// A scripted peer: answers request k with responses[k] (echoing the
/// request id), then keeps serving until the client half-closes.
class ScriptedServer {
 public:
  explicit ScriptedServer(std::vector<ResponseFrame> responses)
      : responses_(std::move(responses)) {
    auto [client_end, server_end] = CreateDuplexPipe();
    client_end_ = std::move(client_end);
    server_end_ = std::move(server_end);
    thread_ = std::thread([this] { Run(); });
  }

  ~ScriptedServer() {
    client_end_->Close();
    thread_.join();
  }

  ByteStream* client_stream() { return client_end_.get(); }
  int requests_seen() const { return requests_seen_; }

 private:
  void Run() {
    FrameReader reader(server_end_.get(), WireLimits{});
    for (;;) {
      Result<std::optional<RequestFrame>> request = reader.ReadRequest();
      if (!request.ok() || !request->has_value()) return;
      ResponseFrame response;
      if (static_cast<std::size_t>(requests_seen_) < responses_.size()) {
        response = responses_[static_cast<std::size_t>(requests_seen_)];
      } else {
        response.code = StatusCode::kInternal;
        response.body = "script exhausted";
      }
      ++requests_seen_;
      response.id = (*request)->id;
      if (!server_end_->Write(EncodeResponseFrame(response)).ok()) return;
    }
  }

  std::vector<ResponseFrame> responses_;
  std::unique_ptr<ByteStream> client_end_;
  std::unique_ptr<ByteStream> server_end_;
  std::thread thread_;
  int requests_seen_ = 0;
};

ResponseFrame Ok() {
  ServeReply reply;
  reply.plan = "(A x B)";
  reply.cost = 42;
  reply.tier = "exhaustive";
  ResponseFrame response;
  response.code = StatusCode::kOk;
  response.body = EncodeReplyBody(reply);
  return response;
}

ResponseFrame Shed(StatusCode code, double retry_after_ms = 0) {
  ResponseFrame response;
  response.code = code;
  response.retry_after_ms = retry_after_ms;
  response.body = "shed";
  return response;
}

BlitzClient::Options RecordingOptions(std::vector<double>* sleeps) {
  BlitzClient::Options options;
  options.sleep_ms = [sleeps](double ms) { sleeps->push_back(ms); };
  return options;
}

TEST(RetryPolicyTest, Validation) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.Validate().ok());
  policy.max_attempts = 0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy{};
  policy.jitter = 1.5;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy{};
  policy.max_backoff_ms = policy.initial_backoff_ms - 1;
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(ClientTest, SuccessNeedsNoRetry) {
  ScriptedServer server({Ok()});
  std::vector<double> sleeps;
  BlitzClient client(server.client_stream(), RecordingOptions(&sleeps));
  Result<ServeReply> reply = client.Optimize(kBjq);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->plan, "(A x B)");
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(server.requests_seen(), 1);
}

TEST(ClientTest, RetriesShedsWithExponentialBackoff) {
  ScriptedServer server({Shed(StatusCode::kResourceExhausted),
                         Shed(StatusCode::kUnavailable), Ok()});
  std::vector<double> sleeps;
  BlitzClient client(server.client_stream(), RecordingOptions(&sleeps));
  Result<ServeReply> reply = client.Optimize(kBjq);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(server.requests_seen(), 3);
  ASSERT_EQ(sleeps.size(), 2u);
  // Defaults: base 25ms then 50ms, jitter +/-50%.
  EXPECT_GE(sleeps[0], 12.5);
  EXPECT_LE(sleeps[0], 37.5);
  EXPECT_GE(sleeps[1], 25.0);
  EXPECT_LE(sleeps[1], 75.0);
}

TEST(ClientTest, ServerRetryAfterHintRaisesTheBackoffFloor) {
  ScriptedServer server(
      {Shed(StatusCode::kResourceExhausted, /*retry_after_ms=*/500), Ok()});
  std::vector<double> sleeps;
  BlitzClient client(server.client_stream(), RecordingOptions(&sleeps));
  ASSERT_TRUE(client.Optimize(kBjq).ok());
  ASSERT_EQ(sleeps.size(), 1u);
  // Floor 500ms, jittered by +/-50%: at least 250ms, never the bare 25ms.
  EXPECT_GE(sleeps[0], 250.0);
}

TEST(ClientTest, GivesUpAfterMaxAttempts) {
  ScriptedServer server({Shed(StatusCode::kResourceExhausted),
                         Shed(StatusCode::kResourceExhausted),
                         Shed(StatusCode::kResourceExhausted)});
  std::vector<double> sleeps;
  BlitzClient::Options options = RecordingOptions(&sleeps);
  options.retry.max_attempts = 3;
  BlitzClient client(server.client_stream(), std::move(options));
  Result<ServeReply> reply = client.Optimize(kBjq);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.requests_seen(), 3);
  EXPECT_EQ(sleeps.size(), 2u);
}

TEST(ClientTest, TerminalErrorsAreNotRetried) {
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kDeadlineExceeded,
        StatusCode::kCancelled, StatusCode::kInternal}) {
    ScriptedServer server({Shed(code)});
    std::vector<double> sleeps;
    BlitzClient client(server.client_stream(), RecordingOptions(&sleeps));
    Result<ServeReply> reply = client.Optimize(kBjq);
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), code);
    EXPECT_TRUE(sleeps.empty()) << StatusCodeToString(code);
    EXPECT_EQ(server.requests_seen(), 1);
  }
}

TEST(ClientTest, IsRetryableClassification) {
  EXPECT_TRUE(BlitzClient::IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(BlitzClient::IsRetryable(StatusCode::kUnavailable));
  EXPECT_FALSE(BlitzClient::IsRetryable(StatusCode::kOk));
  EXPECT_FALSE(BlitzClient::IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(BlitzClient::IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(BlitzClient::IsRetryable(StatusCode::kCancelled));
}

TEST(ClientTest, PipelinedSendsMatchResponsesById) {
  ScriptedServer server({Ok(), Ok(), Ok()});
  BlitzClient::Options options;
  options.sleep_ms = [](double) {};
  BlitzClient client(server.client_stream(), std::move(options));

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    Result<std::uint64_t> id = client.Send(kBjq);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (int i = 0; i < 3; ++i) {
    Result<std::optional<ResponseFrame>> response = client.Receive();
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->has_value());
    EXPECT_EQ((*response)->id, ids[static_cast<std::size_t>(i)]);
    EXPECT_EQ((*response)->code, StatusCode::kOk);
  }
}

TEST(ClientTest, InvalidTenantFailsFastWithoutTouchingTheWire) {
  // A tenant the space-delimited header cannot carry must be rejected
  // client-side: encoded anyway, it would desync the framing and poison
  // the connection with a confusing server-side protocol error.
  for (const std::string& tenant : std::vector<std::string>{
           "has space", "has\nnewline", "", std::string(65, 'a')}) {
    ScriptedServer server({Ok()});
    BlitzClient::Options options;
    options.sleep_ms = [](double) {};
    options.tenant = tenant;
    BlitzClient client(server.client_stream(), std::move(options));
    Result<ServeReply> reply = client.Optimize(kBjq);
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(server.requests_seen(), 0);
  }
}

TEST(ClientTest, ConnectionClosedMidCallIsUnavailable) {
  auto [client_end, server_end] = CreateDuplexPipe();
  server_end->Close();
  BlitzClient::Options options;
  options.sleep_ms = [](double) {};
  BlitzClient client(client_end.get(), std::move(options));
  Result<ServeReply> reply = client.Optimize(kBjq);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace blitz
