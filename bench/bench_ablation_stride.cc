// Ablation for footnote 3 and the Section 3.3 randomness assumption: the
// expected count of the conditionally executed improvement code,
// (ln2/2) n 2^n + gamma 2^n, assumes splits are examined in effectively
// random cost order. The successor operator visits subsets in dilated
// counting order (stride 1); footnote 3 notes any odd stride k also cycles
// through all splits, in a different order "some of which may better
// conform to the randomness assumption."
//
// Using a filled DP table we replay find_best_split's improvement test for
// several odd strides and count how often the running minimum improves —
// no re-optimization, pure visit-order replay (kappa_0, so the split cost
// is just the operand-cost sum).

#include <cstdio>

#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "core/subset_enum.h"
#include "query/workload.h"

namespace blitz {
namespace {

std::uint64_t CountImprovements(const DpTable& table, std::uint64_t stride) {
  std::uint64_t improvements = 0;
  const std::uint64_t full = table.size() - 1;
  for (std::uint64_t s = 3; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;
    float best = kRejectedCost;
    ForEachProperSplitStrided(
        RelSet::FromWord(s), stride, [&](RelSet lhs, RelSet rhs) {
          const float candidate = table.cost(lhs) + table.cost(rhs);
          if (candidate < best) {
            best = candidate;
            ++improvements;
          }
        });
  }
  return improvements;
}

int Run() {
  const int n = BenchEnvInt("BLITZ_STRIDE_N", 13);
  std::printf(
      "Visit-order ablation at n = %d (footnote 3): improvement count per\n"
      "odd successor stride, vs the randomness-assumption prediction\n"
      "(ln2/2) n 2^n + gamma 2^n = %.0f\n\n",
      n, ExpectedCondCount(n));

  TextTable out;
  out.SetHeader({"topology", "mean card", "stride 1", "stride 3", "stride 5",
                 "stride 11", "predicted"});

  for (const Topology topology : {Topology::kChain, Topology::kClique}) {
    for (const double mean : {21.5, 1e4}) {
      WorkloadSpec spec;
      spec.num_relations = n;
      spec.topology = topology;
      spec.mean_cardinality = mean;
      spec.variability = 0.5;
      Result<Workload> workload = MakeWorkload(spec);
      if (!workload.ok()) continue;
      Result<OptimizeOutcome> outcome = OptimizeJoin(
          workload->catalog, workload->graph, OptimizerOptions{});
      if (!outcome.ok()) continue;

      std::vector<std::string> row = {TopologyToString(topology),
                                      StrFormat("%.3g", mean)};
      for (const std::uint64_t stride : {1ull, 3ull, 5ull, 11ull}) {
        row.push_back(StrFormat(
            "%llu", static_cast<unsigned long long>(
                        CountImprovements(outcome->table, stride))));
      }
      row.push_back(StrFormat("%.0f", ExpectedCondCount(n)));
      out.AddRow(std::move(row));
    }
  }
  std::printf("%s\n", out.ToString().c_str());
  std::printf(
      "Reading: counts of the same magnitude across strides support the\n"
      "paper's statistical argument; systematic deviation from the\n"
      "prediction reflects cost correlation among nearby splits.\n");
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
