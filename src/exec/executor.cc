#include "exec/executor.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace blitz {

namespace {

RowSet ExecuteNode(const PlanNode& node, const std::vector<ExecTable>& tables,
                   const JoinGraph& graph, std::vector<NodeStats>* stats) {
  if (node.is_leaf()) {
    return ScanTable(tables[node.relation()]);
  }
  const MetricTimer timer;
  TraceSpan span("join", "exec");
  // Record stats in pre-order (reserve the slot before recursing).
  const size_t stat_index = stats->size();
  stats->push_back(NodeStats{node.set, 0, node.algorithm, 0});
  const RowSet lhs = ExecuteNode(*node.left, tables, graph, stats);
  const RowSet rhs = ExecuteNode(*node.right, tables, graph, stats);
  const std::vector<BoundPredicate> predicates =
      BindSpanningPredicates(graph, node.left->set, node.right->set);
  JoinAlgorithm algorithm = node.algorithm;
  if (algorithm == JoinAlgorithm::kCartesianProduct && !predicates.empty()) {
    // The plan was annotated against a different graph; fall back safely.
    algorithm = JoinAlgorithm::kUnspecified;
  }
  RowSet out = JoinRowSets(lhs, rhs, predicates, algorithm, tables);
  NodeStats& node_stats = (*stats)[stat_index];
  node_stats.output_rows = out.num_rows();
  node_stats.seconds = timer.ElapsedSeconds();
  span.AddArg("set", static_cast<double>(node.set.word()));
  span.AddArg("rows", static_cast<double>(out.num_rows()));
  span.AddArg("algorithm", static_cast<int>(algorithm));
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("exec.joins");
    metrics->AddCounter("exec.rows_produced", out.num_rows());
    metrics->RecordLatency("exec.join_seconds", node_stats.seconds);
  }
  return out;
}

}  // namespace

Result<ExecutionResult> ExecutePlan(const Plan& plan,
                                    const std::vector<ExecTable>& tables,
                                    const JoinGraph& graph) {
  if (plan.empty()) return Status::InvalidArgument("empty plan");
  bool tables_ok = true;
  plan.relations().ForEach([&](int r) {
    if (r >= static_cast<int>(tables.size()) ||
        tables[r].relation_index() != r) {
      tables_ok = false;
    }
  });
  if (!tables_ok) {
    return Status::InvalidArgument(
        "tables vector does not cover the plan's relations (tables[i] must "
        "be relation i)");
  }
  const MetricTimer timer;
  TraceSpan span("ExecutePlan", "exec");
  ExecutionResult result;
  result.result = ExecuteNode(plan.root(), tables, graph, &result.node_stats);
  span.AddArg("rows", static_cast<double>(result.result.num_rows()));
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("exec.plans");
    metrics->RecordLatency("exec.plan_seconds", timer.ElapsedSeconds());
  }
  return result;
}

std::vector<std::vector<std::uint32_t>> ResultFingerprint(const RowSet& rows) {
  std::vector<std::vector<std::uint32_t>> fingerprint = rows.rows;
  std::sort(fingerprint.begin(), fingerprint.end());
  return fingerprint;
}

}  // namespace blitz
