#ifndef BLITZ_CARD_HISTOGRAM_H_
#define BLITZ_CARD_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "card/estimator.h"
#include "query/join_graph.h"

namespace blitz {

/// An equi-depth (equal-height) histogram over a uint32 join-key column.
/// Buckets hold roughly equal row counts; all occurrences of one value land
/// in one bucket, so boundaries fall on value boundaries and heavy hitters
/// widen their bucket's depth instead of leaking across a split.
class EquiDepthHistogram {
 public:
  struct Bucket {
    std::uint32_t lo = 0;  ///< Smallest value in the bucket (inclusive).
    std::uint32_t hi = 0;  ///< Largest value in the bucket (inclusive).
    double rows = 0;       ///< Rows whose value falls in [lo, hi].
    double distinct = 0;   ///< Distinct values observed in [lo, hi].
  };

  /// Builds from a column sample. `num_buckets` is a target; the result has
  /// fewer buckets when the column has fewer distinct values (an empty
  /// column yields zero buckets, a constant column exactly one).
  static EquiDepthHistogram Build(const std::vector<std::uint32_t>& column,
                                  int num_buckets);

  bool empty() const { return rows_ == 0; }
  double rows() const { return rows_; }
  double distinct() const { return distinct_; }
  std::uint32_t min_value() const { return min_value_; }
  std::uint32_t max_value() const { return max_value_; }
  const std::vector<Bucket>& buckets() const { return buckets_; }

  /// Fraction of rows with value in [lo, hi] (inclusive), interpolating
  /// uniformly inside partially-covered buckets. 0 for an empty histogram.
  double FractionInRange(std::uint32_t lo, std::uint32_t hi) const;

  /// Estimated distinct values in [lo, hi], with the same interpolation.
  double DistinctInRange(std::uint32_t lo, std::uint32_t hi) const;

 private:
  std::vector<Bucket> buckets_;
  double rows_ = 0;
  double distinct_ = 0;
  std::uint32_t min_value_ = 0;
  std::uint32_t max_value_ = 0;
};

/// Estimated selectivity of an equi-join between two columns summarized by
/// `a` and `b`: restrict both to the overlap of their value ranges, then
/// apply the System-R rule 1/max(distinct) on the overlapping mass:
///
///   sel = frac_a(overlap) * frac_b(overlap) / max(d_a(overlap), d_b(overlap))
///
/// Clamped into [kMinJoinSelectivity, 1]; disjoint ranges or empty columns
/// clamp to the floor rather than estimating a true zero, because a zero
/// cardinality would poison every superset product downstream.
inline constexpr double kMinJoinSelectivity = 1e-12;
double EstimateEquiJoinSelectivity(const EquiDepthHistogram& a,
                                   const EquiDepthHistogram& b);

/// Histogram-backed estimator: per-relation row counts plus one estimated
/// selectivity per join-graph edge, combined under the classical
/// attribute-independence assumption,
///
///   est(S) = Π_{i∈S} rows_i × Π_{edges(a,b) ⊆ S} sel_ab
///
/// which is structurally the paper's own product form, so estimation runs
/// through the same O(2^n) fan recurrence — just over estimated inputs.
/// Build one from exec-layer tables with BuildHistogramEstimator
/// (src/exec/stats.h), or directly from rows + per-edge selectivities here
/// (e.g. in tests).
class SampleHistogramEstimator final : public CardinalityEstimator {
 public:
  /// `rows[i]` estimates |R_i| (floored at 1 row); `edge_selectivities[k]`
  /// parallels graph.predicates() (clamped into [kMinJoinSelectivity, 1]).
  /// `graph` is borrowed and must outlive the estimator.
  SampleHistogramEstimator(const JoinGraph& graph, std::vector<double> rows,
                           std::vector<double> edge_selectivities);

  EstimatorKind kind() const override {
    return EstimatorKind::kSampleHistogram;
  }
  int num_relations() const override { return est_graph_.num_relations(); }
  double BaseCardinality(int i) const override { return rows_[i]; }
  double EstimateCardinality(RelSet s) const override;
  void EstimateAll(std::vector<double>* cards) const override;

  /// The estimated selectivity attached to the edge between i and j
  /// (1.0 if no edge) — for tests and reports.
  double EdgeSelectivity(int i, int j) const {
    return est_graph_.Selectivity(i, j);
  }

 private:
  JoinGraph est_graph_;  ///< Same edges as the source graph, estimated sels.
  std::vector<double> rows_;
};

}  // namespace blitz

#endif  // BLITZ_CARD_HISTOGRAM_H_
