// Tests for the fault-injection harness itself (registry semantics) and for
// each named fault point wired into the library.

#include "governor/faultpoints.h"

#include <gtest/gtest.h>

#include "baseline/hybrid.h"
#include "core/optimizer.h"
#include "test_util.h"

namespace blitz {
namespace {

TEST(FaultRegistryTest, FiresOnceByDefault) {
  FaultRegistry registry;
  registry.Arm("p", FaultSpec{});
  EXPECT_TRUE(registry.Hit("p").has_value());
  EXPECT_FALSE(registry.Hit("p").has_value());  // self-disarmed
  EXPECT_EQ(registry.hits("p"), 2u);            // both hits counted
}

TEST(FaultRegistryTest, AfterSkipsInitialHits) {
  FaultRegistry registry;
  FaultSpec spec;
  spec.after = 2;
  registry.Arm("p", spec);
  EXPECT_FALSE(registry.Hit("p").has_value());
  EXPECT_FALSE(registry.Hit("p").has_value());
  EXPECT_TRUE(registry.Hit("p").has_value());
  EXPECT_FALSE(registry.Hit("p").has_value());
}

TEST(FaultRegistryTest, TimesBoundsFirings) {
  FaultRegistry registry;
  FaultSpec spec;
  spec.times = 3;
  registry.Arm("p", spec);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(registry.Hit("p").has_value());
  EXPECT_FALSE(registry.Hit("p").has_value());
}

TEST(FaultRegistryTest, NegativeTimesFiresForever) {
  FaultRegistry registry;
  FaultSpec spec;
  spec.times = -1;
  registry.Arm("p", spec);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(registry.Hit("p").has_value());
}

TEST(FaultRegistryTest, DisarmKeepsHitCounts) {
  FaultRegistry registry;
  registry.Arm("p", FaultSpec{});
  EXPECT_TRUE(registry.Hit("p").has_value());
  registry.Disarm("p");
  EXPECT_FALSE(registry.Hit("p").has_value());
  EXPECT_EQ(registry.hits("p"), 2u);
  registry.Clear();
  EXPECT_EQ(registry.hits("p"), 0u);
}

TEST(FaultRegistryTest, UnarmedPointCountsHits) {
  FaultRegistry registry;
  EXPECT_FALSE(registry.Hit("untouched.point").has_value());
  EXPECT_EQ(registry.hits("untouched.point"), 1u);
}

TEST(FaultHitTest, NoGlobalRegistryMeansNoFault) {
  ASSERT_EQ(GlobalFaultRegistry(), nullptr);
  EXPECT_FALSE(FaultHit(kFaultDpTableAlloc).has_value());
}

class FaultPointWiringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFaultInjectionCompiled) {
      GTEST_SKIP() << "built with BLITZ_FAULT_INJECTION=OFF";
    }
  }

  FaultRegistry registry_;
};

TEST_F(FaultPointWiringTest, DpTableAllocBadAlloc) {
  ScopedFaultRegistry scoped(&registry_);
  FaultSpec spec;
  spec.kind = FaultKind::kBadAlloc;
  registry_.Arm(kFaultDpTableAlloc, spec);
  Result<OptimizeOutcome> outcome = OptimizeJoin(
      testing::Table1Catalog(), testing::Figure3Graph(), OptimizerOptions{});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(registry_.hits(kFaultDpTableAlloc), 1u);

  // Disarmed after one firing: the same call now succeeds.
  Result<OptimizeOutcome> retry = OptimizeJoin(
      testing::Table1Catalog(), testing::Figure3Graph(), OptimizerOptions{});
  EXPECT_TRUE(retry.ok());
}

TEST_F(FaultPointWiringTest, DpTableAllocFailStatus) {
  ScopedFaultRegistry scoped(&registry_);
  FaultSpec spec;
  spec.kind = FaultKind::kFailStatus;
  spec.status = Status::Internal("disk on fire");
  registry_.Arm(kFaultDpTableAlloc, spec);
  Result<OptimizeOutcome> outcome = OptimizeJoin(
      testing::Table1Catalog(), testing::Figure3Graph(), OptimizerOptions{});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInternal);
  EXPECT_EQ(outcome.status().message(), "disk on fire");
}

TEST_F(FaultPointWiringTest, GovernorCheckClockSkewForcesDeadline) {
  ScopedFaultRegistry scoped(&registry_);
  FaultSpec spec;
  spec.kind = FaultKind::kClockSkew;
  spec.skew_seconds = 7200;
  registry_.Arm(kFaultGovernorCheck, spec);
  OptimizerOptions options;
  options.budget.deadline_seconds = 3600;  // generous, but the clock "jumps"
  Result<OptimizeOutcome> outcome = OptimizeJoin(
      testing::Table1Catalog(), testing::Figure3Graph(), options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultPointWiringTest, GovernorCheckSpuriousCancel) {
  ScopedFaultRegistry scoped(&registry_);
  FaultSpec spec;
  spec.kind = FaultKind::kCancel;
  registry_.Arm(kFaultGovernorCheck, spec);
  OptimizerOptions options;
  options.budget.deadline_seconds = 3600;  // arm the governor
  Result<OptimizeOutcome> outcome = OptimizeJoin(
      testing::Table1Catalog(), testing::Figure3Graph(), options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
}

TEST_F(FaultPointWiringTest, OptimizePassFailStatus) {
  ScopedFaultRegistry scoped(&registry_);
  FaultSpec spec;
  spec.kind = FaultKind::kFailStatus;
  spec.status = Status::ResourceExhausted("simulated pressure");
  registry_.Arm(kFaultOptimizePass, spec);
  Result<OptimizeOutcome> outcome = OptimizeJoin(
      testing::Table1Catalog(), testing::Figure3Graph(), OptimizerOptions{});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(outcome.status().message(), "simulated pressure");
}

TEST_F(FaultPointWiringTest, HybridRunFailStatus) {
  ScopedFaultRegistry scoped(&registry_);
  FaultSpec spec;
  spec.kind = FaultKind::kFailStatus;
  spec.status = Status::DeadlineExceeded("simulated stall");
  registry_.Arm(kFaultHybridRun, spec);
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(12, /*seed=*/5);
  Result<HybridResult> outcome =
      OptimizeHybrid(instance.catalog, instance.graph, HybridOptions{});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultPointWiringTest, MidPassAbortViaSecondCheck) {
  // after=1 lets the entry-gate check pass and fires at the first amortized
  // stride check inside the subset loop — a genuine mid-pass abort. n=12
  // gives 4096 subsets, several strides past kCheckStride.
  ScopedFaultRegistry scoped(&registry_);
  FaultSpec spec;
  spec.kind = FaultKind::kCancel;
  spec.after = 1;
  registry_.Arm(kFaultGovernorCheck, spec);
  OptimizerOptions options;
  options.budget.deadline_seconds = 3600;
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(12, /*seed=*/11);
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
  EXPECT_GE(registry_.hits(kFaultGovernorCheck), 2u);
}

}  // namespace
}  // namespace blitz
