#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace blitz {

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (initial_backoff_ms < 0 || max_backoff_ms < initial_backoff_ms) {
    return Status::InvalidArgument(
        "backoff bounds must satisfy 0 <= initial <= max");
  }
  if (multiplier < 1) {
    return Status::InvalidArgument("multiplier must be >= 1");
  }
  if (jitter < 0 || jitter > 1) {
    return Status::InvalidArgument("jitter must be in [0, 1]");
  }
  return Status::OK();
}

BlitzClient::BlitzClient(ByteStream* stream, Options options)
    : stream_(stream),
      options_(std::move(options)),
      reader_(stream, options_.wire),
      rng_(options_.seed) {
  if (!options_.sleep_ms) {
    options_.sleep_ms = [](double ms) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    };
  }
}

bool BlitzClient::IsRetryable(StatusCode code) {
  // kResourceExhausted / kUnavailable are the shed codes: admission or
  // queue pressure rejected the request before any work ran. Everything
  // else (parse errors, deadline blown *during* optimization, cancellation)
  // is a verdict on the executed request, not on server load.
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable;
}

double BlitzClient::BackoffMs(int attempt, double retry_after_ms) {
  double backoff = options_.retry.initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) backoff *= options_.retry.multiplier;
  backoff = std::min(backoff, options_.retry.max_backoff_ms);
  backoff = std::max(backoff, retry_after_ms);  // Server hint is a floor.
  const double jitter = options_.retry.jitter;
  const double factor = 1 - jitter + 2 * jitter * rng_.NextDouble();
  return backoff * factor;
}

Result<std::uint64_t> BlitzClient::Send(const std::string& bjq,
                                        double deadline_ms) {
  // Fail fast on a tenant the header cannot carry (a space or newline
  // would desync the framing and poison the connection with a confusing
  // server-side protocol error).
  if (!IsValidTenantName(options_.tenant)) {
    return Status::InvalidArgument(
        "tenant must be 1-64 chars of [A-Za-z0-9_.-], got \"" +
        options_.tenant + "\"");
  }
  RequestFrame frame;
  frame.tenant = options_.tenant;
  frame.id = next_id_++;
  frame.deadline_ms = deadline_ms;
  frame.body = bjq;
  BLITZ_RETURN_IF_ERROR(stream_->Write(EncodeRequestFrame(frame)));
  return frame.id;
}

Result<std::optional<ResponseFrame>> BlitzClient::Receive() {
  return reader_.ReadResponse();
}

void BlitzClient::CloseSend() { stream_->CloseWrite(); }

Result<std::string> BlitzClient::Statz() {
  Result<std::uint64_t> id = Send(std::string(kStatzBody));
  if (!id.ok()) return id.status();
  for (;;) {
    Result<std::optional<ResponseFrame>> received = Receive();
    if (!received.ok()) return received.status();
    if (!received->has_value()) {
      return Status::Unavailable("connection closed before the response");
    }
    if ((*received)->id != *id && (*received)->id != 0) continue;
    if ((*received)->code != StatusCode::kOk) {
      return Status((*received)->code, (*received)->body);
    }
    if (!StartsWith((*received)->body, kStatzMagic)) {
      return Status::InvalidArgument("reply is not a statz body");
    }
    return std::move((*received)->body);
  }
}

Result<ServeReply> BlitzClient::Optimize(const std::string& bjq,
                                         double deadline_ms) {
  for (int attempt = 1;; ++attempt) {
    Result<std::uint64_t> id = Send(bjq, deadline_ms);
    if (!id.ok()) return id.status();

    ResponseFrame response;
    for (;;) {
      Result<std::optional<ResponseFrame>> received = Receive();
      if (!received.ok()) return received.status();
      if (!received->has_value()) {
        return Status::Unavailable("connection closed before the response");
      }
      response = std::move(**received);
      // A synchronous client has exactly one request outstanding, but a
      // server ending the connection answers with id 0 — surface that as
      // this request's outcome rather than spinning on a dead stream.
      if (response.id == *id || response.id == 0) break;
    }

    if (response.code == StatusCode::kOk) {
      return ParseReplyBody(response.body);
    }
    const Status error(response.code, response.body);
    if (!IsRetryable(response.code) ||
        attempt >= options_.retry.max_attempts || response.id == 0) {
      return error;
    }
    options_.sleep_ms(BackoffMs(attempt, response.retry_after_ms));
  }
}

}  // namespace blitz
