file(REMOVE_RECURSE
  "CMakeFiles/optimize_query_test.dir/optimize_query_test.cc.o"
  "CMakeFiles/optimize_query_test.dir/optimize_query_test.cc.o.d"
  "optimize_query_test"
  "optimize_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
