#include "baseline/random_plans.h"

#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/subset_enum.h"
#include "plan/evaluate.h"

namespace blitz {

Plan RandomBushyPlan(RelSet set, Rng* rng) {
  BLITZ_CHECK(!set.empty());
  if (set.IsSingleton()) return Plan::Leaf(set.Min());
  // Choose a uniformly random dilated index in [1, 2^m - 2] and split there.
  const int m = set.size();
  const std::uint64_t span = (std::uint64_t{1} << m) - 2;
  const std::uint64_t index = 1 + rng->NextBounded(span);
  const std::uint64_t lhs = Dilate(set.word(), index);
  const RelSet left = RelSet::FromWord(lhs);
  return Plan::Join(RandomBushyPlan(left, rng),
                    RandomBushyPlan(set - left, rng));
}

Plan RandomLeftDeepPlan(RelSet set, Rng* rng) {
  BLITZ_CHECK(!set.empty());
  std::vector<int> members;
  set.ForEach([&](int i) { members.push_back(i); });
  // Fisher-Yates shuffle.
  for (size_t i = members.size(); i > 1; --i) {
    const size_t j = rng->NextBounded(i);
    std::swap(members[i - 1], members[j]);
  }
  Plan plan = Plan::Leaf(members[0]);
  for (size_t i = 1; i < members.size(); ++i) {
    plan = Plan::Join(std::move(plan), Plan::Leaf(members[i]));
  }
  return plan;
}

Result<RandomSamplingResult> OptimizeByRandomSampling(const Catalog& catalog,
                                                      const JoinGraph& graph,
                                                      CostModelKind cost_model,
                                                      int samples, Rng* rng) {
  if (graph.num_relations() != catalog.num_relations()) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  if (samples < 1) {
    return Status::InvalidArgument("need at least one sample");
  }
  const RelSet all = catalog.AllRelations();
  RandomSamplingResult result;
  result.cost = std::numeric_limits<double>::infinity();
  for (int i = 0; i < samples; ++i) {
    Plan plan = RandomBushyPlan(all, rng);
    const double cost = EvaluateCost(plan, catalog, graph, cost_model);
    if (cost < result.cost) {
      result.cost = cost;
      result.plan = std::move(plan);
    }
  }
  result.samples = samples;
  return result;
}

}  // namespace blitz
