#include "serve/mux.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "governor/faultpoints.h"
#include "obs/metrics.h"
#include "serve/wire.h"

namespace blitz {

namespace {

void Count(std::string_view name) {
  if (MetricsRegistry* metrics = GlobalMetrics()) metrics->AddCounter(name);
}

/// Reserved epoll cookies; connection ids start above these.
constexpr std::uint64_t kListenCookie = 0;
constexpr std::uint64_t kWakeCookie = 1;
constexpr std::uint64_t kEventCookie = 2;
constexpr std::uint64_t kFirstConnId = 3;

constexpr double kShedRetryAfterMs = 50;

class Multiplexer;

/// One multiplexed connection. The mux thread owns the read side (fd,
/// assembler, submitted/read_done bookkeeping); the outbox is shared with
/// worker threads through `mu` (SendResponse enqueues from any thread).
/// Identified by a monotonically increasing id — never by fd, which the
/// kernel reuses the moment a dead connection closes.
struct MuxConn final : ResponseSink {
  Multiplexer* mux = nullptr;
  std::uint64_t id = 0;
  int fd = -1;
  RequestFrameAssembler assembler;
  std::shared_ptr<ServeConnection> server_conn;

  std::mutex mu;
  std::deque<std::string> outbox;  ///< Encoded frames awaiting the socket.
  std::size_t offset = 0;          ///< Bytes of outbox.front() already sent.
  bool transport_closed = false;   ///< fd gone; drop further responses.
  std::uint64_t responses = 0;     ///< SendResponse calls (incl. dropped).

  // Mux-thread-only state.
  std::uint64_t submitted = 0;  ///< SubmitRequest + SubmitProtocolError.
  bool read_done = false;       ///< EOF or framing error; no more submits.
  bool want_epollout = false;
  bool stalled = false;
  std::chrono::steady_clock::time_point stall_since;

  explicit MuxConn(const WireLimits& limits) : assembler(limits) {}

  void SendResponse(const ResponseFrame& response) override;
};

class Multiplexer {
 public:
  Multiplexer(BlitzServer* server, const MuxOptions& options)
      : server_(server), options_(options) {}

  Status Run();

  /// Called from any thread (worker SendResponse): marks the connection as
  /// having fresh outbox bytes and wakes the event loop.
  void NotifyReady(std::uint64_t id) {
    {
      std::lock_guard<std::mutex> lock(ready_mu_);
      ready_.push_back(id);
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(event_fd_, &one, sizeof(one));
  }

  const WireLimits& wire_limits() const { return server_->options().wire; }

 private:
  void AcceptReady();
  void ReadReady(const std::shared_ptr<MuxConn>& conn);
  /// Flushes as much of the outbox as the socket accepts. Returns false if
  /// the connection died mid-write (already hard-closed).
  bool Flush(const std::shared_ptr<MuxConn>& conn);
  void UpdateInterest(const std::shared_ptr<MuxConn>& conn);
  /// Immediately severs the transport: pending outbox bytes are dropped,
  /// future responses are dropped. The MuxConn object stays alive (via the
  /// server's ServeConnection sink reference) until its last job answers.
  void HardClose(const std::shared_ptr<MuxConn>& conn);
  /// Closes the connection iff it owes nothing: read side finished, every
  /// submitted request answered, outbox flushed.
  void MaybeFinish(const std::shared_ptr<MuxConn>& conn);
  void StartDrain();
  void CheckStalls(std::chrono::steady_clock::time_point now);

  BlitzServer* server_;
  const MuxOptions options_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::uint64_t next_id_ = kFirstConnId;
  std::unordered_map<std::uint64_t, std::shared_ptr<MuxConn>> conns_;
  std::unordered_set<std::uint64_t> stalled_;

  std::mutex ready_mu_;
  std::vector<std::uint64_t> ready_;

  bool draining_ = false;
  bool accepting_ = true;
  std::atomic<bool> shutdown_done_{false};
  std::thread drain_thread_;
};

void MuxConn::SendResponse(const ResponseFrame& response) {
  {
    std::lock_guard<std::mutex> lock(mu);
    ++responses;
    if (!transport_closed) outbox.push_back(EncodeResponseFrame(response));
  }
  mux->NotifyReady(id);
}

void Multiplexer::AcceptReady() {
  for (;;) {
    const int fd = accept4(options_.listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient resource exhaustion (EMFILE and friends): drop this
      // round; the event stays level-triggered and we retry next cycle.
      Count("serve.mux.accept_errors");
      return;
    }
    if (options_.max_connections > 0 &&
        conns_.size() >=
            static_cast<std::size_t>(options_.max_connections)) {
      close(fd);
      Count("serve.mux.accept_overflow");
      continue;
    }
    auto conn = std::make_shared<MuxConn>(wire_limits());
    conn->mux = this;
    conn->id = next_id_++;
    conn->fd = fd;
    conn->server_conn = server_->OpenConnection(conn);

    if (std::optional<FaultSpec> fault = FaultHit(kFaultServeAccept)) {
      // Mirror Serve(): answer once with id 0, then end the connection.
      const Status error =
          fault->kind == FaultKind::kFailStatus
              ? fault->status
              : Status::Unavailable("injected accept failure");
      conn->read_done = true;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->outbox.push_back(EncodeResponseFrame(ResponseFrame{
            0, error.code(), kShedRetryAfterMs, error.message()}));
      }
      Count("serve.accept_rejects");
    }

    epoll_event ev{};
    ev.events = conn->read_done ? 0 : EPOLLIN;
    ev.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    conns_.emplace(conn->id, conn);
    if (conn->read_done) {
      if (Flush(conn)) MaybeFinish(conn);
    }
  }
}

void Multiplexer::ReadReady(const std::shared_ptr<MuxConn>& conn) {
  char buf[64 * 1024];
  while (!conn->read_done) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      HardClose(conn);  // Peer reset under us; jobs answer into the void.
      return;
    }
    if (n == 0) {
      if (conn->assembler.mid_frame()) {
        // The peer died inside a frame — the blocking reader's
        // "stream ended mid-header/mid-body" connection-level error.
        server_->SubmitProtocolError(
            conn->server_conn,
            Status::InvalidArgument("stream ended mid-frame"));
        ++conn->submitted;
      }
      conn->read_done = true;
      break;
    }
    std::vector<RequestFrame> frames;
    const Status fed = conn->assembler.Feed(
        std::string_view(buf, static_cast<std::size_t>(n)), &frames);
    for (RequestFrame& frame : frames) {
      ++conn->submitted;
      // May answer synchronously (shed / statz / cache hit) via
      // SendResponse, which lands in this connection's outbox.
      server_->SubmitRequest(conn->server_conn, std::move(frame));
    }
    if (!fed.ok()) {
      // Frame desync: answer once with id 0 and stop reading, exactly like
      // the blocking Serve() path.
      server_->SubmitProtocolError(conn->server_conn, fed);
      ++conn->submitted;
      conn->read_done = true;
      break;
    }
  }
  if (!Flush(conn)) return;
  UpdateInterest(conn);
  MaybeFinish(conn);
}

bool Multiplexer::Flush(const std::shared_ptr<MuxConn>& conn) {
  std::unique_lock<std::mutex> lock(conn->mu);
  if (conn->transport_closed) return false;
  while (!conn->outbox.empty()) {
    const std::string& front = conn->outbox.front();
    const ssize_t n = send(conn->fd, front.data() + conn->offset,
                           front.size() - conn->offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->stalled) {
          conn->stalled = true;
          conn->stall_since = std::chrono::steady_clock::now();
          stalled_.insert(conn->id);
        }
        conn->want_epollout = true;
        lock.unlock();
        UpdateInterest(conn);
        return true;
      }
      if (errno == EINTR) continue;
      lock.unlock();
      HardClose(conn);
      return false;
    }
    // Progress resets the stall clock: a slow-but-moving peer is not a
    // slow loris.
    if (conn->stalled) {
      conn->stalled = false;
      stalled_.erase(conn->id);
    }
    conn->offset += static_cast<std::size_t>(n);
    if (conn->offset == front.size()) {
      conn->outbox.pop_front();
      conn->offset = 0;
    }
  }
  if (conn->want_epollout) {
    conn->want_epollout = false;
    lock.unlock();
    UpdateInterest(conn);
  }
  return true;
}

void Multiplexer::UpdateInterest(const std::shared_ptr<MuxConn>& conn) {
  if (conn->fd < 0) return;
  epoll_event ev{};
  ev.events = (conn->read_done ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
              (conn->want_epollout ? static_cast<std::uint32_t>(EPOLLOUT)
                                   : 0u);
  ev.data.u64 = conn->id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Multiplexer::HardClose(const std::shared_ptr<MuxConn>& conn) {
  if (conn->fd < 0) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  conn->fd = -1;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->transport_closed = true;
    conn->outbox.clear();
    conn->offset = 0;
  }
  stalled_.erase(conn->id);
  conns_.erase(conn->id);
}

void Multiplexer::MaybeFinish(const std::shared_ptr<MuxConn>& conn) {
  if (!conn->read_done || conn->fd < 0) return;
  bool done;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    done = conn->outbox.empty() && conn->responses >= conn->submitted;
  }
  if (done) HardClose(conn);  // Nothing owed; outbox already empty.
}

void Multiplexer::StartDrain() {
  if (draining_) return;
  draining_ = true;
  if (accepting_) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, options_.listen_fd, nullptr);
    accepting_ = false;
  }
  // The wake pipe stays readable forever (level-triggered); deregister it
  // or the drain loop would spin instead of sleeping between ticks.
  if (options_.wake_fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, options_.wake_fd, nullptr);
  }
  server_->BeginDrain();
  // Shutdown blocks until every admitted request is answered — run it off
  // the event loop so reads (sheds) and writes keep flowing meanwhile.
  drain_thread_ = std::thread([this] {
    server_->Shutdown();
    shutdown_done_.store(true, std::memory_order_release);
    NotifyReady(0);  // Wake the loop; cookie 0 is ignored as a conn id.
  });
}

void Multiplexer::CheckStalls(std::chrono::steady_clock::time_point now) {
  if (options_.write_timeout_ms <= 0 || stalled_.empty()) return;
  std::vector<std::shared_ptr<MuxConn>> victims;
  for (const std::uint64_t id : stalled_) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    const double ms = std::chrono::duration<double, std::milli>(
                          now - it->second->stall_since)
                          .count();
    if (ms >= options_.write_timeout_ms) victims.push_back(it->second);
  }
  for (const auto& conn : victims) {
    Count("serve.mux.write_timeouts");
    HardClose(conn);
  }
}

Status Multiplexer::Run() {
  BLITZ_RETURN_IF_ERROR(options_.Validate());
  Status result = Status::OK();

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(StrFormat("epoll_create1: %s", strerror(errno)));
  }
  event_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    close(epoll_fd_);
    return Status::Internal(StrFormat("eventfd: %s", strerror(errno)));
  }

  // The listening socket must not block the loop in accept.
  const int listen_flags = fcntl(options_.listen_fd, F_GETFL, 0);
  fcntl(options_.listen_fd, F_SETFL, listen_flags | O_NONBLOCK);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenCookie;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, options_.listen_fd, &ev);
  ev.data.u64 = kEventCookie;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);
  if (options_.wake_fd >= 0) {
    ev.data.u64 = kWakeCookie;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, options_.wake_fd, &ev);
  }

  epoll_event events[256];
  for (;;) {
    if (std::optional<FaultSpec> fault = FaultHit(kFaultServeEpollWait)) {
      if (fault->kind == FaultKind::kFailStatus) {
        // Unrecoverable event-loop failure: drain gracefully — every
        // admitted request still answers — then report the fault.
        if (result.ok()) result = fault->status;
        StartDrain();
      } else {
        continue;  // Transient kinds: this wait cycle is a no-op.
      }
    }

    const bool ticking = !stalled_.empty() || draining_;
    const int timeout_ms = ticking ? 50 : 500;
    const int n = epoll_wait(epoll_fd_, events, 256, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      result = Status::Internal(StrFormat("epoll_wait: %s", strerror(errno)));
      StartDrain();
    }

    for (int i = 0; i < std::max(n, 0); ++i) {
      const std::uint64_t cookie = events[i].data.u64;
      if (cookie == kListenCookie) {
        if (accepting_) AcceptReady();
        continue;
      }
      if (cookie == kWakeCookie) {
        StartDrain();
        continue;
      }
      if (cookie == kEventCookie) {
        std::uint64_t drained = 0;
        while (read(event_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;  // The ready list is swept below.
      }
      const auto it = conns_.find(cookie);
      if (it == conns_.end()) continue;  // Closed earlier this sweep.
      std::shared_ptr<MuxConn> conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        HardClose(conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!Flush(conn)) continue;
        MaybeFinish(conn);
        if (conns_.count(cookie) == 0) continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLHUP)) != 0 &&
          !conn->read_done) {
        ReadReady(conn);
      }
    }

    // Sweep connections with fresh worker responses.
    std::vector<std::uint64_t> ready;
    {
      std::lock_guard<std::mutex> lock(ready_mu_);
      ready.swap(ready_);
    }
    for (const std::uint64_t id : ready) {
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      std::shared_ptr<MuxConn> conn = it->second;
      if (Flush(conn)) MaybeFinish(conn);
    }

    CheckStalls(std::chrono::steady_clock::now());

    if (draining_ && shutdown_done_.load(std::memory_order_acquire)) {
      // Every admitted request is answered (Shutdown returned), so each
      // connection owes only its buffered bytes. Close the ones that are
      // square; keep ticking until the rest flush or hit the write
      // timeout.
      std::vector<std::shared_ptr<MuxConn>> open;
      open.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) open.push_back(conn);
      for (const auto& conn : open) {
        conn->read_done = true;  // No further submits can be admitted.
        if (Flush(conn)) MaybeFinish(conn);
      }
      if (conns_.empty()) break;
    }
  }

  if (drain_thread_.joinable()) drain_thread_.join();
  close(event_fd_);
  close(epoll_fd_);
  fcntl(options_.listen_fd, F_SETFL, listen_flags);
  return result;
}

}  // namespace

Status MuxOptions::Validate() const {
  if (listen_fd < 0) {
    return Status::InvalidArgument("MuxOptions.listen_fd must be a socket");
  }
  if (write_timeout_ms < 0) {
    return Status::InvalidArgument(
        "MuxOptions.write_timeout_ms must be >= 0");
  }
  if (max_connections < 0) {
    return Status::InvalidArgument(
        "MuxOptions.max_connections must be >= 0");
  }
  return Status::OK();
}

Status ServeMultiplexed(BlitzServer* server, const MuxOptions& options) {
  Multiplexer mux(server, options);
  return mux.Run();
}

}  // namespace blitz
