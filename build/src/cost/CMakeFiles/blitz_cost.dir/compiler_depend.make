# Empty compiler generated dependencies file for blitz_cost.
# This may be replaced when dependencies are built.
