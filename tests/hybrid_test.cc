#include "baseline/hybrid.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/greedy.h"
#include "core/optimizer.h"
#include "plan/evaluate.h"
#include "query/workload.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::MakeRandomInstance;

TEST(HybridTest, MatchesExactDpWhenBlockCoversEverything) {
  const auto instance = MakeRandomInstance(9, 3);
  HybridOptions options;
  options.block_size = 12;  // > n: single exact solve per restart
  options.restarts = 1;
  options.polish = false;
  Result<HybridResult> hybrid =
      OptimizeHybrid(instance.catalog, instance.graph, options);
  Result<OptimizeOutcome> exact =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(hybrid->dp_invocations, 1);
  EXPECT_NEAR(hybrid->cost, exact->cost, 1e-4 * std::max(1.0f, exact->cost));
}

TEST(HybridTest, PlanCoversAllRelations) {
  WorkloadSpec spec;
  spec.num_relations = 20;
  spec.topology = Topology::kCyclePlus3;
  spec.mean_cardinality = 1000;
  spec.variability = 0.5;
  Result<Workload> workload = MakeWorkload(spec);
  ASSERT_TRUE(workload.ok());
  HybridOptions options;
  options.block_size = 8;
  options.restarts = 2;
  Result<HybridResult> hybrid =
      OptimizeHybrid(workload->catalog, workload->graph, options);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  EXPECT_EQ(hybrid->plan.relations(), RelSet::FirstN(20));
  EXPECT_EQ(hybrid->plan.NumLeaves(), 20);
  EXPECT_GT(hybrid->dp_invocations, 2);  // multiple blocks per restart
  const double evaluated = EvaluateCost(hybrid->plan, workload->catalog,
                                        workload->graph,
                                        CostModelKind::kNaive);
  EXPECT_NEAR(evaluated, hybrid->cost, 1e-9 * std::max(1.0, evaluated));
}

TEST(HybridTest, NeverBeatsExactOptimumAndStaysClose) {
  // On sizes where the exact optimizer still runs, the hybrid must be >=
  // the optimum and, with a decent block size, close to it.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto instance =
        MakeRandomInstance(13, seed, /*extra_edge_prob=*/0.25);
    Result<OptimizeOutcome> exact =
        OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
    ASSERT_TRUE(exact.ok());
    HybridOptions options;
    options.block_size = 7;
    options.restarts = 3;
    options.seed = seed;
    Result<HybridResult> hybrid =
        OptimizeHybrid(instance.catalog, instance.graph, options);
    ASSERT_TRUE(hybrid.ok());
    EXPECT_GE(hybrid->cost, exact->cost * (1 - 1e-4)) << "seed " << seed;
    EXPECT_LE(hybrid->cost, static_cast<double>(exact->cost) * 50)
        << "seed " << seed;
  }
}

TEST(HybridTest, BeatsOrMatchesGreedyOnChains) {
  WorkloadSpec spec;
  spec.num_relations = 18;
  spec.topology = Topology::kChain;
  spec.mean_cardinality = 1000;
  spec.variability = 0.5;
  Result<Workload> workload = MakeWorkload(spec);
  ASSERT_TRUE(workload.ok());
  HybridOptions options;
  options.block_size = 10;
  options.restarts = 3;
  Result<HybridResult> hybrid =
      OptimizeHybrid(workload->catalog, workload->graph, options);
  Result<GreedyResult> greedy = OptimizeGreedy(
      workload->catalog, workload->graph, CostModelKind::kNaive,
      GreedyCriterion::kMinOutputCardinality);
  ASSERT_TRUE(hybrid.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_LE(hybrid->cost, greedy->cost * 1.01);
}

TEST(HybridTest, DeterministicForSeed) {
  const auto instance = MakeRandomInstance(14, 9);
  HybridOptions options;
  options.block_size = 6;
  options.seed = 4242;
  Result<HybridResult> a =
      OptimizeHybrid(instance.catalog, instance.graph, options);
  Result<HybridResult> b =
      OptimizeHybrid(instance.catalog, instance.graph, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->cost, b->cost);
  EXPECT_TRUE(a->plan.StructurallyEquals(b->plan));
}

TEST(HybridTest, HandlesDisconnectedGraphs) {
  // Blocks must still make progress when connectivity runs out.
  Result<Catalog> catalog = Catalog::FromCardinalities(
      std::vector<double>(12, 50.0));
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(12);  // two components + isolated nodes
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.1).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 0.1).ok());
  ASSERT_TRUE(graph.AddPredicate(5, 6, 0.1).ok());
  HybridOptions options;
  options.block_size = 4;
  options.restarts = 2;
  Result<HybridResult> hybrid = OptimizeHybrid(*catalog, graph, options);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  EXPECT_EQ(hybrid->plan.NumLeaves(), 12);
}

TEST(HybridTest, WorksUnderEveryCostModel) {
  const auto instance = MakeRandomInstance(12, 6);
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl,
        CostModelKind::kHash, CostModelKind::kMinAll}) {
    HybridOptions options;
    options.cost_model = kind;
    options.block_size = 6;
    options.restarts = 2;
    Result<HybridResult> hybrid =
        OptimizeHybrid(instance.catalog, instance.graph, options);
    ASSERT_TRUE(hybrid.ok()) << CostModelKindToString(kind);
    EXPECT_EQ(hybrid->plan.NumLeaves(), 12);
    EXPECT_TRUE(std::isfinite(hybrid->cost));
  }
}

TEST(HybridTest, RejectsBadOptions) {
  const auto instance = MakeRandomInstance(5, 1);
  HybridOptions options;
  options.block_size = 1;
  EXPECT_FALSE(
      OptimizeHybrid(instance.catalog, instance.graph, options).ok());
  options.block_size = 8;
  options.restarts = 0;
  EXPECT_FALSE(
      OptimizeHybrid(instance.catalog, instance.graph, options).ok());
}

TEST(HybridTest, SingleRelation) {
  Result<Catalog> catalog = Catalog::FromCardinalities({42});
  ASSERT_TRUE(catalog.ok());
  Result<HybridResult> hybrid =
      OptimizeHybrid(*catalog, JoinGraph(1), HybridOptions{});
  ASSERT_TRUE(hybrid.ok());
  EXPECT_EQ(hybrid->plan.NumLeaves(), 1);
  EXPECT_DOUBLE_EQ(hybrid->cost, 0.0);
}

}  // namespace
}  // namespace blitz
