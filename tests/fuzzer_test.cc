// Determinism and validity contract of the workload fuzzer: a case is a
// pure function of (seed, case_index), the sampled grid covers the paper's
// Appendix axes, and bad configurations come back as kInvalidArgument from
// the harness entry point rather than aborting downstream.

#include "testing/fuzzer.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/relset.h"
#include "query/workload.h"
#include "textio/bjq.h"

namespace blitz {
namespace {

using ::blitz::fuzz::BuildCase;
using ::blitz::fuzz::FuzzCase;
using ::blitz::fuzz::FuzzCaseSpec;
using ::blitz::fuzz::FuzzerOptions;
using ::blitz::fuzz::FuzzTopology;
using ::blitz::fuzz::GenerateCase;
using ::blitz::fuzz::SampleCaseSpec;

TEST(FuzzerTest, SameSeedSameCase) {
  const FuzzerOptions options{/*seed=*/42, /*min_relations=*/2,
                              /*max_relations=*/10};
  ASSERT_TRUE(options.Validate().ok());
  for (std::uint64_t i = 0; i < 20; ++i) {
    Result<FuzzCase> a = GenerateCase(options, i);
    Result<FuzzCase> b = GenerateCase(options, i);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->label, b->label);
    ASSERT_EQ(a->catalog.num_relations(), b->catalog.num_relations());
    for (int r = 0; r < a->catalog.num_relations(); ++r) {
      EXPECT_EQ(a->catalog.cardinality(r), b->catalog.cardinality(r));
    }
    ASSERT_EQ(a->graph.num_predicates(), b->graph.num_predicates());
    for (int p = 0; p < a->graph.num_predicates(); ++p) {
      EXPECT_EQ(a->graph.predicates()[p].lhs, b->graph.predicates()[p].lhs);
      EXPECT_EQ(a->graph.predicates()[p].rhs, b->graph.predicates()[p].rhs);
      EXPECT_EQ(a->graph.predicates()[p].selectivity,
                b->graph.predicates()[p].selectivity);
    }
  }
}

TEST(FuzzerTest, CasesAreOrderIndependent) {
  // Case i must not depend on whether cases 0..i-1 were ever sampled: the
  // replay instruction "--seed=S, case i" has to work in isolation.
  const FuzzerOptions options{/*seed=*/7, 2, 9};
  const FuzzCaseSpec direct = SampleCaseSpec(options, 13);
  for (std::uint64_t i = 0; i < 13; ++i) (void)SampleCaseSpec(options, i);
  const FuzzCaseSpec after = SampleCaseSpec(options, 13);
  EXPECT_EQ(direct.Name(), after.Name());
}

TEST(FuzzerTest, DifferentSeedsDiffer) {
  const FuzzerOptions a{/*seed=*/1, 2, 12};
  const FuzzerOptions b{/*seed=*/2, 2, 12};
  int differing = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (SampleCaseSpec(a, i).Name() != SampleCaseSpec(b, i).Name()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 8);
}

TEST(FuzzerTest, ValidateRejectsBadBoundsWithStatus) {
  // The single n-bounds gate of the harness (downstream code CHECK-aborts
  // and DpTable::EstimateBytes only signals range by returning 0).
  FuzzerOptions options;
  options.min_relations = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = FuzzerOptions{};
  options.min_relations = 9;
  options.max_relations = 5;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  // Past kMaxRelations both the RelSet word and the DP table give out;
  // DpTable::EstimateBytes signals it only by returning 0, and Validate
  // must surface that as a status.
  options = FuzzerOptions{};
  options.max_relations = kMaxRelations + 1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = FuzzerOptions{};
  EXPECT_TRUE(options.Validate().ok());
}

TEST(FuzzerTest, BuildCaseRejectsBadSpecWithStatus) {
  // Specs can arrive from corpus files or manual construction, so BuildCase
  // re-validates instead of trusting the sampler.
  FuzzCaseSpec spec;
  spec.num_relations = 0;
  EXPECT_EQ(BuildCase(spec).status().code(), StatusCode::kInvalidArgument);
  spec.num_relations = kMaxRelations + 5;
  EXPECT_EQ(BuildCase(spec).status().code(), StatusCode::kInvalidArgument);
  spec = FuzzCaseSpec{};
  spec.num_relations = 5;
  spec.mean_cardinality = 0.0;
  EXPECT_EQ(BuildCase(spec).status().code(), StatusCode::kInvalidArgument);
}

TEST(FuzzerTest, GridCoversAllTopologies) {
  const FuzzerOptions options{/*seed=*/20260807, 2, 12};
  std::set<FuzzTopology> seen_topologies;
  std::set<int> seen_sizes;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const FuzzCaseSpec spec = SampleCaseSpec(options, i);
    seen_topologies.insert(spec.topology);
    seen_sizes.insert(spec.num_relations);
  }
  EXPECT_EQ(seen_topologies.size(), 4u);
  // Every n in [2, 12] shows up across 200 draws.
  EXPECT_EQ(seen_sizes.size(), 11u);
}

TEST(FuzzerTest, BuiltCasesSatisfyAppendixInvariants) {
  const FuzzerOptions options{/*seed=*/3, 2, 10};
  for (std::uint64_t i = 0; i < 50; ++i) {
    Result<FuzzCase> c = GenerateCase(options, i);
    ASSERT_TRUE(c.ok()) << i;
    const int n = c->catalog.num_relations();
    ASSERT_EQ(c->graph.num_relations(), n);
    EXPECT_EQ(n, c->spec.num_relations);
    // Cardinalities are at least 1; selectivities lie in (0, 1].
    for (int r = 0; r < n; ++r) {
      EXPECT_GE(c->catalog.cardinality(r), 1.0) << c->label;
    }
    for (const Predicate& p : c->graph.predicates()) {
      EXPECT_GT(p.selectivity, 0.0) << c->label;
      EXPECT_LE(p.selectivity, 1.0) << c->label;
    }
    // Every sampled topology is connected (random(p) builds a spanning tree
    // first), so a spanning structure of at least n-1 edges exists.
    EXPECT_GE(c->graph.num_predicates(), n - 1) << c->label;
    EXPECT_TRUE(c->graph.IsConnected(RelSet::FirstN(n))) << c->label;
  }
}

TEST(FuzzerTest, NameIsStableAndParsesBack) {
  const FuzzerOptions options{/*seed=*/99, 3, 8};
  const FuzzCaseSpec spec = SampleCaseSpec(options, 4);
  EXPECT_EQ(spec.Name(), SampleCaseSpec(options, 4).Name());
  EXPECT_NE(spec.Name().find("s99-c4-"), std::string::npos) << spec.Name();
}

TEST(FuzzerTest, ToQuerySpecRoundTripsThroughBjq) {
  const FuzzerOptions options{/*seed=*/5, 4, 9};
  Result<FuzzCase> c = GenerateCase(options, 2);
  ASSERT_TRUE(c.ok());
  const std::string text =
      WriteBjq(ToQuerySpec(*c, CostModelKind::kSortMerge));
  Result<QuerySpec> parsed = ParseBjq(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  ASSERT_EQ(parsed->catalog.num_relations(), c->catalog.num_relations());
  for (int r = 0; r < c->catalog.num_relations(); ++r) {
    EXPECT_DOUBLE_EQ(parsed->catalog.cardinality(r),
                     c->catalog.cardinality(r));
  }
  EXPECT_EQ(parsed->graph.num_predicates(), c->graph.num_predicates());
}

}  // namespace
}  // namespace blitz
