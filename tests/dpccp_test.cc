#include "baseline/dpccp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/dpsub.h"
#include "core/subset_enum.h"
#include "query/workload.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::MakeRandomInstance;

/// Reference count of unordered csg-cmp pairs by brute force: connected
/// sets split into two connected halves with a spanning edge.
std::uint64_t BruteForceCcpPairs(const JoinGraph& graph) {
  const int n = graph.num_relations();
  std::uint64_t pairs = 0;
  for (std::uint64_t s = 1; s < (std::uint64_t{1} << n); ++s) {
    const RelSet set = RelSet::FromWord(s);
    if (set.IsSingleton() || !graph.IsConnected(set)) continue;
    ForEachProperSplit(set, [&](RelSet lhs, RelSet rhs) {
      if (graph.IsConnected(lhs) && graph.IsConnected(rhs)) ++pairs;
    });
  }
  return pairs / 2;  // each unordered pair was seen in both orientations
}

TEST(DpCcpTest, MatchesDpSubAcrossTopologies) {
  for (const Topology topology : kPaperTopologies) {
    WorkloadSpec spec;
    spec.num_relations = 10;
    spec.topology = topology;
    spec.mean_cardinality = 464;
    spec.variability = 0.5;
    Result<Workload> workload = MakeWorkload(spec);
    ASSERT_TRUE(workload.ok());
    for (const CostModelKind kind :
         {CostModelKind::kNaive, CostModelKind::kSortMerge,
          CostModelKind::kDiskNestedLoops}) {
      Result<DpCcpResult> dpccp =
          OptimizeDpCcp(workload->catalog, workload->graph, kind);
      Result<DpSubResult> dpsub = OptimizeDpSubNoProducts(
          workload->catalog, workload->graph, kind);
      ASSERT_TRUE(dpccp.ok()) << TopologyToString(topology);
      ASSERT_TRUE(dpsub.ok());
      EXPECT_NEAR(dpccp->cost, dpsub->cost, 1e-9 * dpsub->cost)
          << TopologyToString(topology) << " " << CostModelKindToString(kind);
    }
  }
}

TEST(DpCcpTest, MatchesDpSubOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto instance = MakeRandomInstance(9, seed + 200,
                                             /*extra_edge_prob=*/0.25);
    Result<DpCcpResult> dpccp = OptimizeDpCcp(
        instance.catalog, instance.graph, CostModelKind::kNaive);
    Result<DpSubResult> dpsub = OptimizeDpSubNoProducts(
        instance.catalog, instance.graph, CostModelKind::kNaive);
    ASSERT_TRUE(dpccp.ok()) << "seed " << seed;
    ASSERT_TRUE(dpsub.ok());
    EXPECT_NEAR(dpccp->cost, dpsub->cost, 1e-9 * dpsub->cost)
        << "seed " << seed;
  }
}

TEST(DpCcpTest, EmitsEveryCcpPairExactlyOnce) {
  for (const Topology topology : kPaperTopologies) {
    WorkloadSpec spec;
    spec.num_relations = 9;
    spec.topology = topology;
    spec.mean_cardinality = 100;
    spec.variability = 0;
    Result<Workload> workload = MakeWorkload(spec);
    ASSERT_TRUE(workload.ok());
    Result<DpCcpResult> dpccp = OptimizeDpCcp(
        workload->catalog, workload->graph, CostModelKind::kNaive);
    ASSERT_TRUE(dpccp.ok());
    EXPECT_EQ(dpccp->ccp_pairs, BruteForceCcpPairs(workload->graph))
        << TopologyToString(topology);
  }
}

TEST(DpCcpTest, EmitsEveryCcpPairExactlyOnceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto instance = MakeRandomInstance(8, seed + 300,
                                             /*extra_edge_prob=*/0.35);
    Result<DpCcpResult> dpccp = OptimizeDpCcp(
        instance.catalog, instance.graph, CostModelKind::kNaive);
    ASSERT_TRUE(dpccp.ok());
    EXPECT_EQ(dpccp->ccp_pairs, BruteForceCcpPairs(instance.graph))
        << "seed " << seed;
  }
}

TEST(DpCcpTest, ChainPairCountIsCubic) {
  // Chains have (n^3 - n) / 6 unordered ccp pairs — the polynomial regime
  // [OL90] report for Starburst on chain queries.
  for (int n : {4, 8, 12}) {
    WorkloadSpec spec;
    spec.num_relations = n;
    spec.topology = Topology::kChain;
    spec.mean_cardinality = 100;
    spec.variability = 0;
    Result<Workload> workload = MakeWorkload(spec);
    ASSERT_TRUE(workload.ok());
    Result<DpCcpResult> dpccp = OptimizeDpCcp(
        workload->catalog, workload->graph, CostModelKind::kNaive);
    ASSERT_TRUE(dpccp.ok());
    EXPECT_EQ(dpccp->ccp_pairs,
              static_cast<std::uint64_t>(n) * (n - 1) * (n + 1) / 6)
        << n;
  }
}

TEST(DpCcpTest, CliquePairCountIsExponential) {
  // Cliques: every split of every subset is valid; unordered pairs =
  // (3^n - 2^(n+1) + 1) / 2.
  WorkloadSpec spec;
  spec.num_relations = 9;
  spec.topology = Topology::kClique;
  spec.mean_cardinality = 100;
  spec.variability = 0;
  Result<Workload> workload = MakeWorkload(spec);
  ASSERT_TRUE(workload.ok());
  Result<DpCcpResult> dpccp = OptimizeDpCcp(
      workload->catalog, workload->graph, CostModelKind::kNaive);
  ASSERT_TRUE(dpccp.ok());
  std::uint64_t pow3 = 1;
  for (int i = 0; i < 9; ++i) pow3 *= 3;
  EXPECT_EQ(dpccp->ccp_pairs, (pow3 - (std::uint64_t{1} << 10) + 1) / 2);
}

TEST(DpCcpTest, FailsOnDisconnectedGraph) {
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 10, 10});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.5).ok());
  Result<DpCcpResult> result =
      OptimizeDpCcp(*catalog, graph, CostModelKind::kNaive);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DpCcpTest, TwoRelations) {
  Result<Catalog> catalog = Catalog::FromCardinalities({6, 7});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(2);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.5).ok());
  Result<DpCcpResult> result =
      OptimizeDpCcp(*catalog, graph, CostModelKind::kNaive);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ccp_pairs, 1u);
  EXPECT_DOUBLE_EQ(result->cost, 21.0);  // 6 * 7 * 0.5
}

}  // namespace
}  // namespace blitz
