#include "obs/trace.h"

#include <algorithm>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(TraceSpanTest, InactiveWithoutRecorder) {
  ASSERT_EQ(GlobalTraceRecorder(), nullptr);
  TraceSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.AddArg("ignored", 1.0);
  EXPECT_DOUBLE_EQ(span.ElapsedSeconds(), 0.0);
}

TEST(TraceSpanTest, RecordsOneEventPerSpan) {
  TraceRecorder recorder;
  {
    TraceSpan span(&recorder, "work");
    EXPECT_TRUE(span.active());
    span.AddArg("items", 3);
  }
  ASSERT_EQ(recorder.num_events(), 1u);
  const TraceEvent event = recorder.Events()[0];
  EXPECT_EQ(event.name, "work");
  EXPECT_EQ(event.category, "optimizer");
  EXPECT_EQ(event.depth, 0);
  EXPECT_GE(event.duration_us, 0.0);
  ASSERT_EQ(event.args.size(), 1u);
  EXPECT_EQ(event.args[0].first, "items");
  EXPECT_DOUBLE_EQ(event.args[0].second, 3.0);
}

TEST(TraceSpanTest, NestingDepthsAndContainment) {
  TraceRecorder recorder;
  {
    TraceSpan outer(&recorder, "outer");
    {
      TraceSpan middle(&recorder, "middle");
      TraceSpan inner(&recorder, "inner");
    }
    TraceSpan sibling(&recorder, "sibling");
  }
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  // Sorted parents-first: outer precedes its children.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].depth, 2);
  EXPECT_EQ(events[3].name, "sibling");
  EXPECT_EQ(events[3].depth, 1);
  // Children start within the parent and end before it closes.
  const TraceEvent& outer = events[0];
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_us, outer.start_us);
    EXPECT_LE(events[i].start_us + events[i].duration_us,
              outer.start_us + outer.duration_us + 1.0);
  }
  // Depth restored: a fresh span is a root again.
  {
    TraceSpan fresh(&recorder, "fresh");
  }
  EXPECT_EQ(recorder.Events().back().depth, 0);
}

TEST(TraceSpanTest, ThreadsGetDistinctIds) {
  TraceRecorder recorder;
  {
    TraceSpan main_span(&recorder, "main");
    std::thread worker([&recorder] {
      TraceSpan span(&recorder, "worker");
    });
    worker.join();
  }
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread_id, events[1].thread_id);
  // Each thread's depth counter is independent.
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 0);
}

TEST(TraceRecorderTest, ChromeJsonShape) {
  TraceRecorder recorder;
  {
    TraceSpan outer(&recorder, "outer", "api");
    outer.AddArg("n", 15);
    TraceSpan inner(&recorder, "ladder_pass");
    inner.AddArg("threshold", 1e9);
  }
  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"ladder_pass\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"api\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"args\":{\"threshold\":1e+09}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos) << json;
  // Structurally valid JSON object: balanced delimiters, no bare inf.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceRecorderTest, InfiniteArgBecomesQuotedString) {
  TraceRecorder recorder;
  {
    TraceSpan span(&recorder, "unbounded");
    span.AddArg("threshold", std::numeric_limits<double>::infinity());
  }
  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"threshold\":\"inf\""), std::string::npos) << json;
  EXPECT_EQ(json.find(":inf"), std::string::npos) << json;
}

TEST(TraceRecorderTest, EmptyRecorderStillValidJson) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.ToChromeTraceJson(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(TraceRecorderTest, TextTreeIndentsByDepth) {
  TraceRecorder recorder;
  {
    TraceSpan outer(&recorder, "outer");
    TraceSpan inner(&recorder, "inner");
  }
  const std::string text = recorder.ToText();
  EXPECT_NE(text.find("  outer"), std::string::npos) << text;
  EXPECT_NE(text.find("    inner"), std::string::npos) << text;
  EXPECT_NE(text.find("thread "), std::string::npos) << text;
}

TEST(TraceRecorderTest, NamesAreJsonEscaped) {
  TraceRecorder recorder;
  TraceEvent event;
  event.name = "with \"quotes\" and \\slash";
  recorder.Record(event);
  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("with \\\"quotes\\\" and \\\\slash"), std::string::npos)
      << json;
}

TEST(GlobalTraceRecorderTest, SpansUseInstalledRecorder) {
  TraceRecorder recorder;
  SetGlobalTraceRecorder(&recorder);
  {
    TraceSpan span("global_span");
    EXPECT_TRUE(span.active());
  }
  SetGlobalTraceRecorder(nullptr);
  ASSERT_EQ(recorder.num_events(), 1u);
  EXPECT_EQ(recorder.Events()[0].name, "global_span");
  // Uninstalled again: spans revert to no-ops.
  {
    TraceSpan span("after");
  }
  EXPECT_EQ(recorder.num_events(), 1u);
}

}  // namespace
}  // namespace blitz
