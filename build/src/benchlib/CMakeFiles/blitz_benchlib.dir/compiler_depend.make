# Empty compiler generated dependencies file for blitz_benchlib.
# This may be replaced when dependencies are built.
