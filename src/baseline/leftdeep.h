#ifndef BLITZ_BASELINE_LEFTDEEP_H_
#define BLITZ_BASELINE_LEFTDEEP_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Result of a left-deep dynamic programming optimization.
struct LeftDeepResult {
  Plan plan;
  double cost = 0;
  /// Number of (subset, inner relation) join candidates enumerated,
  /// ~ n 2^n — the left-deep-with-products complexity cited from
  /// Ono and Lohman [OL90] in Section 2.
  std::uint64_t joins_enumerated = 0;
};

/// Exhaustive dynamic programming over the space of *left-deep* plans with
/// Cartesian products permitted (the System R-style search space of
/// [SAC+79], with the product exclusion lifted). Serves as the
/// restricted-space comparator for the bushy blitzsplit search: by
/// construction its result is never better than the bushy optimum, and the
/// benches measure how much worse it can be.
///
/// Costs are accumulated in double precision; cardinalities come from the
/// same Section 5 recurrences as the main optimizer.
Result<LeftDeepResult> OptimizeLeftDeep(const Catalog& catalog,
                                        const JoinGraph& graph,
                                        CostModelKind cost_model);

}  // namespace blitz

#endif  // BLITZ_BASELINE_LEFTDEEP_H_
