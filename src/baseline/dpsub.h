#ifndef BLITZ_BASELINE_DPSUB_H_
#define BLITZ_BASELINE_DPSUB_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Result of a connected-subgraph bushy DP optimization.
struct DpSubResult {
  Plan plan;
  double cost = 0;
  /// Splits examined whose two sides were both connected with a spanning
  /// predicate (the "csg-cmp pairs" actually costed).
  std::uint64_t splits_costed = 0;
  /// Total best-split loop iterations, including those rejected by the
  /// connectivity filters.
  std::uint64_t loop_iterations = 0;
};

/// Exhaustive bushy dynamic programming *without* Cartesian products: only
/// connected induced subgraphs get table entries, and a split is considered
/// only if both halves are connected (so at least one predicate spans them).
/// This is the conventional exclusion the paper argues against; it fails
/// outright when the join graph is disconnected (Status kFailedPrecondition)
/// and can return plans worse than the bushy-with-products optimum when the
/// optimal plan contains a product.
Result<DpSubResult> OptimizeDpSubNoProducts(const Catalog& catalog,
                                            const JoinGraph& graph,
                                            CostModelKind cost_model);

}  // namespace blitz

#endif  // BLITZ_BASELINE_DPSUB_H_
