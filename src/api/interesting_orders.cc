#include "api/interesting_orders.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "core/dp_table.h"
#include "core/relset.h"

namespace blitz {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// The per-input sort term of kappa_sm: x(1 + log x), clamped like the
/// plain model.
double SortCost(double card) {
  const double x = std::max(card, 1.0);
  return x * (1.0 + std::log(x));
}

/// The merge-scan term when the input is already sorted on the key.
double ScanCost(double card) { return std::max(card, 1.0); }

/// One DP cell's provenance, enough to rebuild the plan.
struct Choice {
  std::uint32_t lhs = 0;    ///< Left operand's subset word.
  std::int16_t pred = -1;   ///< Merge predicate id, or -1 for a product.
  std::int8_t lhs_order = 0;  ///< Order index consumed from the left child.
  std::int8_t rhs_order = 0;  ///< Order index consumed from the right child.
};

struct DpState {
  int n = 0;
  int num_orders = 1;  ///< 1 + number of attribute classes.
  std::uint64_t table_size = 0;
  // cost[order * table_size + set], likewise choice.
  std::vector<float> cost;
  std::vector<Choice> choice;
  std::vector<double> cards;

  float& CostAt(int order, std::uint64_t s) {
    return cost[static_cast<std::uint64_t>(order) * table_size + s];
  }
  Choice& ChoiceAt(int order, std::uint64_t s) {
    return choice[static_cast<std::uint64_t>(order) * table_size + s];
  }
};

struct Extraction {
  Plan plan;
  std::string explain;
  int sorts_avoided = 0;
};

/// Rebuilds the plan for (s, order), accumulating explain lines.
Plan ExtractNode(DpState* dp, std::uint64_t s, int order, int depth,
                 Extraction* out) {
  if ((s & (s - 1)) == 0) {
    return Plan::Leaf(std::countr_zero(s));
  }
  const Choice choice = dp->ChoiceAt(order, s);
  const std::uint64_t lhs = choice.lhs;
  const std::uint64_t rhs = s ^ lhs;

  Plan left = ExtractNode(dp, lhs, choice.lhs_order, depth + 1, out);
  Plan right = ExtractNode(dp, rhs, choice.rhs_order, depth + 1, out);

  Plan join = Plan::Join(std::move(left), std::move(right));
  PlanNode& node = join.mutable_root();
  if (choice.pred < 0) {
    node.algorithm = JoinAlgorithm::kCartesianProduct;
  } else {
    node.algorithm = JoinAlgorithm::kSortMerge;
    node.sort_class = order - 1;
    // An input consumed at a non-zero order arrives pre-sorted on this
    // node's key (order == this node's output order by construction).
    const bool lhs_reused = choice.lhs_order == order;
    const bool rhs_reused = choice.rhs_order == order;
    if (lhs_reused) ++out->sorts_avoided;
    if (rhs_reused) ++out->sorts_avoided;
    out->explain += StrFormat(
        "%*smerge %s on class %d (left %s, right %s)\n", depth * 2, "",
        RelSet::FromWord(s).ToString().c_str(), node.sort_class,
        lhs_reused ? "pre-sorted" : "sorted here",
        rhs_reused ? "pre-sorted" : "sorted here");
  }
  return join;
}

}  // namespace

std::vector<int> IdentityPredicateClasses(const JoinGraph& graph) {
  std::vector<int> classes(graph.num_predicates());
  for (int p = 0; p < graph.num_predicates(); ++p) classes[p] = p;
  return classes;
}

Result<InterestingOrdersResult> OptimizeWithInterestingOrders(
    const Catalog& catalog, const JoinGraph& graph,
    const std::vector<int>& predicate_classes) {
  const int n = catalog.num_relations();
  if (graph.num_relations() != n) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  if (n > kMaxOrderAwareRelations) {
    return Status::InvalidArgument(
        StrFormat("order-aware DP limited to %d relations",
                  kMaxOrderAwareRelations));
  }
  if (static_cast<int>(predicate_classes.size()) != graph.num_predicates()) {
    return Status::InvalidArgument(
        "one class id per graph predicate required");
  }
  int num_classes = 0;
  for (const int c : predicate_classes) {
    if (c < 0 || c >= kMaxAttributeClasses) {
      return Status::InvalidArgument(
          StrFormat("class id %d outside [0, %d)", c, kMaxAttributeClasses));
    }
    num_classes = std::max(num_classes, c + 1);
  }

  DpState dp;
  dp.n = n;
  dp.num_orders = num_classes + 1;
  dp.table_size = std::uint64_t{1} << n;
  try {
    dp.cost.assign(dp.table_size * dp.num_orders, kInf);
    dp.choice.assign(dp.table_size * dp.num_orders, Choice{});
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("order-aware DP table too large");
  }

  std::vector<double> base_cards(n);
  for (int i = 0; i < n; ++i) base_cards[i] = catalog.cardinality(i);
  ComputeAllCardinalities(graph, base_cards, &dp.cards);

  // cost_any[S]: min over orders, plus the order achieving it.
  std::vector<float> cost_any(dp.table_size, kInf);
  std::vector<std::int8_t> any_order(dp.table_size, 0);

  for (int i = 0; i < n; ++i) {
    const std::uint64_t w = std::uint64_t{1} << i;
    dp.CostAt(0, w) = 0.0f;  // base relations arrive unordered
    cost_any[w] = 0.0f;
    any_order[w] = 0;
  }

  const auto& predicates = graph.predicates();
  const std::uint64_t full = dp.table_size - 1;

  for (std::uint64_t s = 3; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;

    for (std::uint64_t lhs = s & (~s + 1); lhs != s; lhs = s & (lhs - s)) {
      const std::uint64_t rhs = s ^ lhs;
      const RelSet lhs_set = RelSet::FromWord(lhs);
      const RelSet rhs_set = RelSet::FromWord(rhs);

      // Sort-merge on each spanning predicate's class. Duplicate classes
      // among the spanning predicates yield identical candidates; the <
      // test keeps the first.
      bool any_spanning = false;
      for (int p = 0; p < static_cast<int>(predicates.size()); ++p) {
        const Predicate& predicate = predicates[p];
        const bool spans =
            (lhs_set.Contains(predicate.lhs) &&
             rhs_set.Contains(predicate.rhs)) ||
            (lhs_set.Contains(predicate.rhs) &&
             rhs_set.Contains(predicate.lhs));
        if (!spans) continue;
        any_spanning = true;
        const int order = predicate_classes[p] + 1;

        // Cheapest way to obtain each input, sorted on this class at the
        // time of the merge.
        const float lhs_sorted = dp.CostAt(order, lhs);
        const float lhs_reuse =
            lhs_sorted + static_cast<float>(ScanCost(dp.cards[lhs]));
        const float lhs_fresh =
            cost_any[lhs] + static_cast<float>(SortCost(dp.cards[lhs]));
        const bool lhs_reused = lhs_reuse < lhs_fresh;
        const float lhs_in = lhs_reused ? lhs_reuse : lhs_fresh;

        const float rhs_sorted = dp.CostAt(order, rhs);
        const float rhs_reuse =
            rhs_sorted + static_cast<float>(ScanCost(dp.cards[rhs]));
        const float rhs_fresh =
            cost_any[rhs] + static_cast<float>(SortCost(dp.cards[rhs]));
        const bool rhs_reused = rhs_reuse < rhs_fresh;
        const float rhs_in = rhs_reused ? rhs_reuse : rhs_fresh;

        const float candidate = lhs_in + rhs_in;
        if (candidate < dp.CostAt(order, s)) {
          dp.CostAt(order, s) = candidate;
          Choice& choice = dp.ChoiceAt(order, s);
          choice.lhs = static_cast<std::uint32_t>(lhs);
          choice.pred = static_cast<std::int16_t>(p);
          choice.lhs_order =
              lhs_reused ? static_cast<std::int8_t>(order) : any_order[lhs];
          choice.rhs_order =
              rhs_reused ? static_cast<std::int8_t>(order) : any_order[rhs];
        }
      }

      if (!any_spanning) {
        // Cartesian product: kappa_sm's treatment (both inputs pay the
        // full sort term); output unordered.
        const float candidate =
            cost_any[lhs] + static_cast<float>(SortCost(dp.cards[lhs])) +
            cost_any[rhs] + static_cast<float>(SortCost(dp.cards[rhs]));
        if (candidate < dp.CostAt(0, s)) {
          dp.CostAt(0, s) = candidate;
          Choice& choice = dp.ChoiceAt(0, s);
          choice.lhs = static_cast<std::uint32_t>(lhs);
          choice.pred = -1;
          choice.lhs_order = any_order[lhs];
          choice.rhs_order = any_order[rhs];
        }
      }
    }

    for (int order = 0; order < dp.num_orders; ++order) {
      if (dp.CostAt(order, s) < cost_any[s]) {
        cost_any[s] = dp.CostAt(order, s);
        any_order[s] = static_cast<std::int8_t>(order);
      }
    }
  }

  if (!(cost_any[full] < kInf)) {
    return Status::Internal("order-aware DP found no plan");
  }

  Extraction extraction;
  extraction.plan =
      ExtractNode(&dp, full, any_order[full], 0, &extraction);

  InterestingOrdersResult result;
  result.cost = cost_any[full];
  result.plan = std::move(extraction.plan);
  result.explain = std::move(extraction.explain);
  result.sorts_avoided = extraction.sorts_avoided;
  return result;
}

}  // namespace blitz
