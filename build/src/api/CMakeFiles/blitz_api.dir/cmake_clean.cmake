file(REMOVE_RECURSE
  "CMakeFiles/blitz_api.dir/interesting_orders.cc.o"
  "CMakeFiles/blitz_api.dir/interesting_orders.cc.o.d"
  "CMakeFiles/blitz_api.dir/optimize_query.cc.o"
  "CMakeFiles/blitz_api.dir/optimize_query.cc.o.d"
  "libblitz_api.a"
  "libblitz_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitz_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
