// Dispatch-layer contract (src/simd/dispatch.h): level parsing/naming,
// BLITZ_SIMD environment override, clamping of forced requests to what the
// binary + CPU can run, the filter lookup, and direct mask-level checks of
// each compiled kernel against the portable reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/dp_table.h"
#include "simd/dispatch.h"
#include "simd/split_filter.h"
#include "test_util.h"

namespace blitz {
namespace {

using testing::ScopedSimdEnv;

TEST(SimdDispatchTest, ParseNameRoundTrip) {
  for (const SimdLevel level :
       {SimdLevel::kAuto, SimdLevel::kScalar, SimdLevel::kBlock,
        SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    Result<SimdLevel> parsed = ParseSimdLevel(SimdLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(ParseSimdLevel("sse9").ok());
  EXPECT_FALSE(ParseSimdLevel("").ok());
  EXPECT_FALSE(ParseSimdLevel("AVX2").ok());  // Names are lowercase.
  EXPECT_EQ(ParseSimdLevel("bogus").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SimdDispatchTest, ResolveNeverReturnsAuto) {
  ScopedSimdEnv env(nullptr);
  for (const SimdLevel level :
       {SimdLevel::kAuto, SimdLevel::kScalar, SimdLevel::kBlock,
        SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    EXPECT_NE(ResolveSimdLevel(level), SimdLevel::kAuto);
  }
}

TEST(SimdDispatchTest, ExplicitLevelsResolveToThemselvesOrClampDown) {
  ScopedSimdEnv env(nullptr);
  // Scalar and block have no instruction-set requirement: always honored.
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kBlock), SimdLevel::kBlock);
  // AVX requests resolve to themselves where supported and clamp to the
  // next level down otherwise — never upward, never to kAuto.
  const SimdLevel ceiling = DetectCpuSimdLevel();
  const SimdLevel avx2 = ResolveSimdLevel(SimdLevel::kAvx2);
  EXPECT_EQ(avx2, ceiling == SimdLevel::kScalar ? SimdLevel::kScalar
                                                : SimdLevel::kAvx2);
  const SimdLevel avx512 = ResolveSimdLevel(SimdLevel::kAvx512);
  if (ceiling == SimdLevel::kAvx512) {
    EXPECT_EQ(avx512, SimdLevel::kAvx512);
  } else {
    EXPECT_EQ(avx512, avx2);  // One step down: 512 -> 2 -> scalar.
  }
}

TEST(SimdDispatchTest, AutoHonorsEnvironmentOverride) {
  {
    ScopedSimdEnv env("scalar");
    EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAuto), SimdLevel::kScalar);
  }
  {
    ScopedSimdEnv env("block");
    EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAuto), SimdLevel::kBlock);
  }
  {
    // An unparsable override is ignored, not fatal: auto falls through to
    // the cpuid probe.
    ScopedSimdEnv env("warpdrive");
    EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAuto), DetectCpuSimdLevel());
  }
  {
    ScopedSimdEnv env(nullptr);
    EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAuto), DetectCpuSimdLevel());
  }
}

TEST(SimdDispatchTest, EnvironmentDoesNotOverrideExplicitRequest) {
  ScopedSimdEnv env("block");
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
}

TEST(SimdDispatchTest, DetailedResolutionReportsProvenance) {
  {
    // Pure cpuid auto: the only case flagged from_auto (and thus the only
    // one subject to the optimizer's per-model refinement).
    ScopedSimdEnv env(nullptr);
    const SimdResolution res = ResolveSimdLevelDetailed(SimdLevel::kAuto);
    EXPECT_TRUE(res.from_auto);
    EXPECT_EQ(res.level, DetectCpuSimdLevel());
  }
  {
    // A BLITZ_SIMD override is an explicit choice, not auto.
    ScopedSimdEnv env("scalar");
    const SimdResolution res = ResolveSimdLevelDetailed(SimdLevel::kAuto);
    EXPECT_FALSE(res.from_auto);
    EXPECT_EQ(res.level, SimdLevel::kScalar);
  }
  {
    ScopedSimdEnv env(nullptr);
    const SimdResolution res = ResolveSimdLevelDetailed(SimdLevel::kBlock);
    EXPECT_FALSE(res.from_auto);
    EXPECT_EQ(res.level, SimdLevel::kBlock);
  }
  {
    // An unparsable override falls through to the probe and stays auto.
    ScopedSimdEnv env("warpdrive");
    EXPECT_TRUE(ResolveSimdLevelDetailed(SimdLevel::kAuto).from_auto);
  }
}

TEST(SimdDispatchTest, KernelLookupMatchesLevel) {
  // kScalar means "run the classic loop": no kernel at all.
  EXPECT_EQ(GetSplitKernel(SimdLevel::kScalar), nullptr);
  EXPECT_EQ(GetSplitKernel(SimdLevel::kAuto), nullptr);
  const SplitKernel* portable = GetSplitKernel(SimdLevel::kBlock);
  ASSERT_NE(portable, nullptr);
  EXPECT_EQ(portable->build, &SplitBuildDensePortable);
  EXPECT_EQ(portable->filter, &SplitFilterDensePortable);
  const SplitKernel* avx2 = GetSplitKernel(SimdLevel::kAvx2);
  ASSERT_NE(avx2, nullptr);
  EXPECT_EQ(avx2->build, &SplitBuildDenseAvx2);
  EXPECT_EQ(avx2->filter, &SplitFilterDenseAvx2);
  const SplitKernel* avx512 = GetSplitKernel(SimdLevel::kAvx512);
  ASSERT_NE(avx512, nullptr);
  EXPECT_EQ(avx512->build, &SplitBuildDenseAvx512);
  EXPECT_EQ(avx512->filter, &SplitFilterDenseAvx512);
}

/// Skips a test when a kernel level's instruction set is unavailable
/// (either not compiled in or not reported by the CPU); the kBlock level
/// is always runnable.
bool LevelRunnable(SimdLevel level) {
  if (level == SimdLevel::kBlock) return true;
  return ResolveSimdLevel(level) == level;
}

/// Builds a deterministic cost column over all subsets of kN relations,
/// then checks the build stage's rank -> subset map against the successor
/// enumeration and the filter stage's survivor mask lane-by-lane against
/// the scalar predicate cost[lhs] + cost[s ^ lhs] < best.
class KernelDenseTest : public ::testing::Test {
 protected:
  static constexpr int kN = 9;

  void SetUp() override {
    cost_.resize(std::size_t{1} << kN);
    for (std::size_t i = 0; i < cost_.size(); ++i) {
      // A spread of magnitudes plus rejected rows, as a real DP table has.
      cost_[i] = (i % 7 == 0) ? kRejectedCost
                              : static_cast<float>((i * 37) % 101);
    }
  }

  /// The successor-order enumeration of the proper nonempty subsets of s —
  /// the sequence idx[1 .. 2^k - 2] must reproduce exactly.
  static std::vector<std::uint32_t> SuccessorOrder(std::uint64_t s) {
    std::vector<std::uint32_t> out;
    for (std::uint64_t lhs = s & (0 - s); lhs != s; lhs = s & (lhs - s)) {
      out.push_back(static_cast<std::uint32_t>(lhs));
    }
    return out;
  }

  void CheckBuild(const SplitKernel* kernel, const char* name) {
    // Sparse, dense, and contiguous subset shapes, several popcounts.
    for (const std::uint64_t s :
         {std::uint64_t{0x1B7}, std::uint64_t{0x0FC}, std::uint64_t{0x03F},
          std::uint64_t{0x155}, std::uint64_t{0x1FF}, std::uint64_t{0x111},
          std::uint64_t{0x028}, std::uint64_t{0x003}}) {
      const int k = std::popcount(s);
      const std::size_t rows = std::size_t{1} << k;
      std::vector<std::uint32_t> idx(rows, 0xDEADBEEFu);
      std::vector<float> dc(rows, -1.0f);
      kernel->build(cost_.data(), s, k, idx.data(), dc.data());
      const std::vector<std::uint32_t> expected = SuccessorOrder(s);
      ASSERT_EQ(expected.size(), rows - 2) << name;
      EXPECT_EQ(idx[0], 0u) << name;
      EXPECT_EQ(idx[rows - 1], static_cast<std::uint32_t>(s)) << name;
      for (std::size_t r = 1; r + 1 < rows; ++r) {
        ASSERT_EQ(idx[r], expected[r - 1])
            << name << " s=" << s << " rank=" << r;
      }
      for (std::size_t r = 0; r < rows; ++r) {
        ASSERT_EQ(dc[r], cost_[idx[r]])
            << name << " s=" << s << " rank=" << r;
      }
    }
  }

  void CheckFilter(const SplitKernel* kernel, const char* name) {
    const std::uint64_t s = 0x1B7;  // 7 relations: 126 proper splits.
    const int k = std::popcount(s);
    const std::uint32_t full_rank = (std::uint32_t{1} << k) - 1;
    const std::size_t rows = std::size_t{1} << k;
    std::vector<std::uint32_t> idx(rows);
    std::vector<float> dc(rows);
    kernel->build(cost_.data(), s, k, idx.data(), dc.data());
    for (const float best : {1e9f, 150.0f, 40.0f, 1.0f, 0.0f}) {
      // Every count in [1, kSplitFilterBlock] from rank 1 (the partial
      // first call), and every block-aligned slice of the whole stream —
      // exactly the shapes BlitzProcessSubset issues.
      for (int count = 1;
           count <= kSplitFilterBlock &&
           1 + static_cast<std::uint32_t>(count) <= full_rank;
           ++count) {
        const std::uint64_t got = kernel->filter(dc.data(), full_rank, 1,
                                                 count, best);
        EXPECT_EQ(got, ReferenceMask(dc, full_rank, 1, count, best))
            << name << " best=" << best << " count=" << count;
      }
      for (std::uint32_t r0 = 1; r0 < full_rank;
           r0 += static_cast<std::uint32_t>(kSplitFilterBlock)) {
        const int count = static_cast<int>(
            std::min<std::uint32_t>(kSplitFilterBlock, full_rank - r0));
        const std::uint64_t got = kernel->filter(dc.data(), full_rank, r0,
                                                 count, best);
        EXPECT_EQ(got, ReferenceMask(dc, full_rank, r0, count, best))
            << name << " best=" << best << " r0=" << r0;
      }
    }
  }

  static std::uint64_t ReferenceMask(const std::vector<float>& dc,
                                     std::uint32_t full_rank,
                                     std::uint32_t r0, int count,
                                     float best) {
    std::uint64_t mask = 0;
    for (int i = 0; i < count; ++i) {
      const std::uint32_t r = r0 + static_cast<std::uint32_t>(i);
      if (dc[r] + dc[full_rank - r] < best) mask |= std::uint64_t{1} << i;
    }
    return mask;
  }

  std::vector<float> cost_;
};

TEST_F(KernelDenseTest, PortableBuildMatchesSuccessorOrder) {
  CheckBuild(GetSplitKernel(SimdLevel::kBlock), "portable");
}

TEST_F(KernelDenseTest, PortableFilterMatchesReference) {
  CheckFilter(GetSplitKernel(SimdLevel::kBlock), "portable");
}

TEST_F(KernelDenseTest, Avx2MatchesReference) {
  if (!SplitFilterAvx2Compiled()) {
    GTEST_SKIP() << "binary compiled without AVX2 support";
  }
  if (!LevelRunnable(SimdLevel::kAvx2)) {
    GTEST_SKIP() << "CPU does not support AVX2";
  }
  CheckBuild(GetSplitKernel(SimdLevel::kAvx2), "avx2");
  CheckFilter(GetSplitKernel(SimdLevel::kAvx2), "avx2");
}

TEST_F(KernelDenseTest, Avx512MatchesReference) {
  if (!SplitFilterAvx512Compiled()) {
    GTEST_SKIP() << "binary compiled without AVX-512 support";
  }
  if (!LevelRunnable(SimdLevel::kAvx512)) {
    GTEST_SKIP() << "CPU does not support AVX-512F";
  }
  CheckBuild(GetSplitKernel(SimdLevel::kAvx512), "avx512");
  CheckFilter(GetSplitKernel(SimdLevel::kAvx512), "avx512");
}

TEST_F(KernelDenseTest, RejectedLanesNeverSurvive) {
  // +inf lanes (threshold-rejected rows) must be filtered out by every
  // kernel under any finite best — the ordered-compare contract.
  const std::uint64_t s = 0x1B7;
  const int k = std::popcount(s);
  const std::uint32_t full_rank = (std::uint32_t{1} << k) - 1;
  for (float& c : cost_) c = kRejectedCost;
  for (const SimdLevel level :
       {SimdLevel::kBlock, ResolveSimdLevel(SimdLevel::kAvx2),
        ResolveSimdLevel(SimdLevel::kAvx512)}) {
    const SplitKernel* kernel = GetSplitKernel(level);
    if (kernel == nullptr) continue;
    std::vector<std::uint32_t> idx(std::size_t{1} << k);
    std::vector<float> dc(std::size_t{1} << k);
    kernel->build(cost_.data(), s, k, idx.data(), dc.data());
    const int count = static_cast<int>(
        std::min<std::uint32_t>(kSplitFilterBlock, full_rank - 1));
    EXPECT_EQ(kernel->filter(dc.data(), full_rank, 1, count, 1e30f), 0u)
        << SimdLevelName(level);
  }
}

}  // namespace
}  // namespace blitz
