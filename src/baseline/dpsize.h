#ifndef BLITZ_BASELINE_DPSIZE_H_
#define BLITZ_BASELINE_DPSIZE_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Options for the size-driven enumerator.
struct DpSizeOptions {
  /// Allow joins with no spanning predicate (Cartesian products). With
  /// products disallowed and a disconnected graph, optimization fails.
  bool allow_cartesian_products = true;
  /// Restrict to left-deep plans (right operand always a base relation).
  bool left_deep_only = false;
};

/// Result of a DPsize optimization.
struct DpSizeResult {
  Plan plan;
  double cost = 0;
  /// Pairs of table entries examined, including pairs rejected for
  /// overlapping — this is the quantity behind the O(4^n) worst-case
  /// enumerator complexity reported for Starburst in [OL90] and quoted in
  /// Section 2 of the paper, and the number to compare against blitzsplit's
  /// ~3^n loop iterations.
  std::uint64_t pairs_examined = 0;
  /// Pairs that were disjoint (and passed the predicate filter) and were
  /// actually costed.
  std::uint64_t pairs_costed = 0;
};

/// Starburst-style size-driven dynamic programming ("DPsize"): plans for
/// k-relation sets are built by combining plans for i- and (k-i)-relation
/// sets, for all i. The enumerator examines every pair of entries in the two
/// size classes and must reject the overlapping ones, which is what drives
/// its worst case to O(4^n) even though the number of *valid* joins is
/// O(3^n). Provided as the principal enumeration-efficiency baseline.
Result<DpSizeResult> OptimizeDpSize(const Catalog& catalog,
                                    const JoinGraph& graph,
                                    CostModelKind cost_model,
                                    const DpSizeOptions& options);

}  // namespace blitz

#endif  // BLITZ_BASELINE_DPSIZE_H_
