#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/strings.h"

namespace blitz {

namespace {

std::atomic<TraceRecorder*> g_recorder{nullptr};

/// Dense thread ids in first-span order, so exported tids are small and
/// stable within one process run.
std::atomic<int> g_next_thread_id{0};
thread_local int tls_thread_id = -1;
thread_local int tls_depth = 0;

int CurrentThreadId() {
  if (tls_thread_id < 0) {
    tls_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_id;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Arg values may legitimately be +inf (e.g. the unbounded ladder
/// threshold); JSON numbers cannot, so those become quoted strings.
std::string JsonArgValue(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  return StrFormat("%.9g", v);
}

}  // namespace

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.depth < b.depth;
            });
  return events;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%d",
        JsonEscape(event.name).c_str(), JsonEscape(event.category).c_str(),
        event.start_us, event.duration_us, event.thread_id);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += StrFormat("\"%s\":%s", JsonEscape(key).c_str(),
                         JsonArgValue(value).c_str());
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string TraceRecorder::ToText() const {
  const std::vector<TraceEvent> events = Events();
  std::string out;
  int thread = -1;
  for (const TraceEvent& event : events) {
    if (event.thread_id != thread) {
      thread = event.thread_id;
      out += StrFormat("thread %d:\n", thread);
    }
    out += StrFormat("%*s%s %.3f ms", 2 + event.depth * 2, "",
                     event.name.c_str(), event.duration_us / 1e3);
    for (const auto& [key, value] : event.args) {
      out += StrFormat(" %s=%g", key.c_str(), value);
    }
    out += "\n";
  }
  return out;
}

TraceRecorder* GlobalTraceRecorder() {
  return g_recorder.load(std::memory_order_acquire);
}

void SetGlobalTraceRecorder(TraceRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_release);
}

TraceSpan::TraceSpan(TraceRecorder* recorder, const char* name,
                     const char* category)
    : recorder_(recorder), name_(name), category_(category) {
  if (recorder_ == nullptr) return;
  depth_ = tls_depth++;
  start_us_ = recorder_->NowMicros();
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  --tls_depth;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_us = start_us_;
  event.duration_us = recorder_->NowMicros() - start_us_;
  event.thread_id = CurrentThreadId();
  event.depth = depth_;
  event.args = std::move(args_);
  recorder_->Record(std::move(event));
}

void TraceSpan::AddArg(const char* key, double value) {
  if (recorder_ == nullptr) return;
  args_.emplace_back(key, value);
}

double TraceSpan::ElapsedSeconds() const {
  if (recorder_ == nullptr) return 0;
  return (recorder_->NowMicros() - start_us_) / 1e6;
}

}  // namespace blitz
