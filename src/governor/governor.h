#ifndef BLITZ_GOVERNOR_GOVERNOR_H_
#define BLITZ_GOVERNOR_GOVERNOR_H_

#include <chrono>
#include <cstdint>
#include <utility>

#include "common/status.h"
#include "governor/budget.h"

namespace blitz {

/// Per-call enforcement state for a ResourceBudget: resolves the deadline
/// once at construction, answers admission-control queries, and provides
/// the amortized cooperative check the DP subset loop calls.
///
/// The hot-loop contract: Tick() is called once per visited subset. It is a
/// counter decrement and a predicted branch; only every kCheckStride-th
/// call performs the real check (clock read, token load, fault hook), so
/// the O(3^n) inner split loop runs at paper speed while a stall is still
/// noticed within ~kCheckStride subsets. Once aborted, the governor stays
/// aborted and status() explains why.
class GovernorState {
 public:
  /// Subset-loop ticks between real deadline/cancellation checks. At the
  /// sizes where a deadline can bite at all (n >= 15, ~32k subsets) this
  /// yields dozens of checks per pass; smaller tables finish in microseconds
  /// and are handled by the entry check in the optimizer front ends.
  static constexpr std::uint32_t kCheckStride = 1024;

  explicit GovernorState(const ResourceBudget& budget);

  /// True if any limit is armed; callers skip governor plumbing otherwise.
  bool active() const { return active_; }

  /// Admission control: OK if allocating `bytes` fits the budget's DP-table
  /// cap, ResourceExhausted (naming both figures) otherwise. Does not
  /// consume the budget — the table is the dominant allocation and each
  /// governed call owns exactly one.
  Status AdmitAllocation(std::uint64_t bytes) const;

  /// Amortized cooperative check; true once the call must unwind.
  bool Tick() {
    if (--ticks_until_check_ > 0) return false;
    ticks_until_check_ = kCheckStride;
    return CheckNow();
  }

  /// Unamortized check (call entry, pass boundaries). True when aborted;
  /// sets status() on the transition. Honors kFaultGovernorCheck faults:
  /// kClockSkew advances the governor's view of the clock, kCancel fakes a
  /// cancellation, kFailStatus aborts with the armed status.
  bool CheckNow();

  bool aborted() const { return aborted_; }

  /// Adopts an abort observed elsewhere — the rank-parallel driver's
  /// first-error-wins path, where a *worker's* per-thread governor trips
  /// the deadline or cancellation and the caller's governor must unwind
  /// with that verdict. No-op if this governor already aborted (the first
  /// recorded reason wins). Not thread-safe: call after the worker barrier,
  /// from the owning thread.
  void AdoptAbort(Status status) {
    if (!aborted_) Abort(std::move(status));
  }

  /// The abort reason; OK while not aborted.
  const Status& status() const { return status_; }

 private:
  bool Abort(Status status);

  bool active_ = false;
  bool has_deadline_ = false;
  bool aborted_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  double deadline_seconds_ = 0;  ///< For the DeadlineExceeded message.
  double fault_skew_seconds_ = 0;
  std::uint64_t max_dp_table_bytes_ = 0;
  const CancellationToken* cancellation_ = nullptr;
  std::uint32_t ticks_until_check_ = kCheckStride;
  Status status_;
};

}  // namespace blitz

#endif  // BLITZ_GOVERNOR_GOVERNOR_H_
