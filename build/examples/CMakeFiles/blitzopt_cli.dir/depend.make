# Empty dependencies file for blitzopt_cli.
# This may be replaced when dependencies are built.
