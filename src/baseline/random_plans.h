#ifndef BLITZ_BASELINE_RANDOM_PLANS_H_
#define BLITZ_BASELINE_RANDOM_PLANS_H_

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Generates a random bushy plan over the relations in `set` by recursive
/// random partition: a uniformly random nonempty proper subset becomes the
/// left subtree. (This probes plan-space points directly, in the spirit of
/// the transformation-free sampling of Galindo-Legaria et al. [GLPK94],
/// though the induced distribution over trees is not uniform.)
Plan RandomBushyPlan(RelSet set, Rng* rng);

/// A random left-deep plan (uniformly random permutation of `set`).
Plan RandomLeftDeepPlan(RelSet set, Rng* rng);

/// Result of random sampling.
struct RandomSamplingResult {
  Plan plan;         ///< Best plan among the samples.
  double cost = 0;   ///< Its cost.
  int samples = 0;   ///< Number of plans drawn.
};

/// Draws `samples` random bushy plans and returns the cheapest — the
/// baseline stochastic method the benches compare against exhaustive search.
Result<RandomSamplingResult> OptimizeByRandomSampling(const Catalog& catalog,
                                                      const JoinGraph& graph,
                                                      CostModelKind cost_model,
                                                      int samples, Rng* rng);

}  // namespace blitz

#endif  // BLITZ_BASELINE_RANDOM_PLANS_H_
