#ifndef BLITZ_TESTS_TEST_UTIL_H_
#define BLITZ_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/check.h"
#include "common/rng.h"
#include "query/join_graph.h"
#include "query/topology.h"

namespace blitz::testing {

/// RAII guard: sets BLITZ_SIMD for one scope (nullptr = unset) and restores
/// the previous value on exit, so tests cannot leak environment state into
/// each other.
class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    const char* old = std::getenv("BLITZ_SIMD");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv("BLITZ_SIMD", value, /*overwrite=*/1);
    } else {
      ::unsetenv("BLITZ_SIMD");
    }
  }
  ~ScopedSimdEnv() {
    if (had_old_) {
      ::setenv("BLITZ_SIMD", old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv("BLITZ_SIMD");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

/// The worked example of Table 1: relations A, B, C, D with cardinalities
/// 10, 20, 30, 40 (a pure Cartesian-product problem).
inline Catalog Table1Catalog() {
  Result<Catalog> catalog = Catalog::Create({
      {"A", 10, 64},
      {"B", 20, 64},
      {"C", 30, 64},
      {"D", 40, 64},
  });
  BLITZ_CHECK(catalog.ok());
  return std::move(catalog).value();
}

/// The Section 5.1 example join graph over A, B, C, D with edges AB, AC,
/// BC, AD carrying the given selectivities.
inline JoinGraph Figure3Graph(double s_ab = 0.1, double s_ac = 0.05,
                              double s_bc = 0.02, double s_ad = 0.01) {
  JoinGraph graph(4);
  BLITZ_CHECK(graph.AddPredicate(0, 1, s_ab).ok());
  BLITZ_CHECK(graph.AddPredicate(0, 2, s_ac).ok());
  BLITZ_CHECK(graph.AddPredicate(1, 2, s_bc).ok());
  BLITZ_CHECK(graph.AddPredicate(0, 3, s_ad).ok());
  return graph;
}

/// A deterministic random optimization instance for property tests:
/// cardinalities log-uniform in [1, card_max], a random connected graph with
/// the given extra-edge probability, selectivities log-uniform in
/// [sel_min, 1].
struct RandomInstance {
  Catalog catalog;
  JoinGraph graph;
};

inline RandomInstance MakeRandomInstance(int n, std::uint64_t seed,
                                         double extra_edge_prob = 0.3,
                                         double card_max = 1e6,
                                         double sel_min = 1e-6) {
  Rng rng(seed);
  std::vector<double> cards(n);
  for (double& c : cards) {
    c = std::exp(rng.NextDouble() * std::log(card_max));
  }
  Result<Catalog> catalog = Catalog::FromCardinalities(cards);
  BLITZ_CHECK(catalog.ok());
  JoinGraph graph(n);
  if (n >= 2) {
    for (const auto& [a, b] :
         MakeRandomConnectedEdges(n, extra_edge_prob, &rng)) {
      const double selectivity =
          std::exp(rng.NextDouble() * std::log(sel_min));
      BLITZ_CHECK(graph.AddPredicate(a, b, selectivity).ok());
    }
  }
  return RandomInstance{std::move(catalog).value(), std::move(graph)};
}

}  // namespace blitz::testing

#endif  // BLITZ_TESTS_TEST_UTIL_H_
