#ifndef BLITZ_PARALLEL_BLITZSPLIT_RANKED_H_
#define BLITZ_PARALLEL_BLITZSPLIT_RANKED_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/blitzsplit.h"
#include "core/dp_table.h"
#include "core/instrumentation.h"
#include "governor/budget.h"
#include "governor/governor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_options.h"
#include "parallel/rank_enum.h"
#include "parallel/thread_pool.h"
#include "query/join_graph.h"

namespace blitz {

namespace internal {

/// First-error-wins abort channel between the workers of one pass. A worker
/// whose per-thread governor trips records its status here; every other
/// worker observes the flag at its next amortized check and unwinds. The
/// flag is a relaxed atomic (it carries only "stop"); the status travels
/// under the mutex and is read after the rank barrier, which synchronizes.
class SharedAbort {
 public:
  bool signaled() const { return flag_.load(std::memory_order_relaxed); }

  void Signal(Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!recorded_) {
      recorded_ = true;
      status_ = std::move(status);
      flag_.store(true, std::memory_order_relaxed);
    }
  }

  /// The first recorded status; call only after a barrier that ordered the
  /// Signal (the pool's Run return).
  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

 private:
  std::atomic<bool> flag_{false};
  mutable std::mutex mu_;
  bool recorded_ = false;  ///< Guarded by mu_.
  Status status_;          ///< Guarded by mu_.
};

/// Per-chunk instrumentation slot, padded to a cache line so neighbouring
/// chunks' counter increments never share one (counting mode only; the
/// NoInstrumentation slot is empty either way).
template <typename Instr>
struct alignas(64) PaddedInstr {
  Instr instr;
};

}  // namespace internal

/// The rank-synchronous parallel realization of procedure blitzsplit.
///
/// The paper's DP is embarrassingly parallel *within a cardinality rank*:
/// every subset of cardinality k depends only on subsets of cardinality
/// < k (both split sides and the Pi_fan operands are proper subsets), so
/// the driver walks ranks k = 2..n in order and, for each rank wide enough
/// (C(n,k) >= options.min_parallel_rank), shards its subsets across a
/// fixed-size thread pool with one barrier per rank. Narrow ranks run
/// inline on the calling thread — their dispatch barrier would cost more
/// than the work.
///
/// Sharding and memory layout: a rank's subsets in increasing integer
/// order are exactly its combinations in colexicographic order, so chunk c
/// takes the contiguous combination index range [count*c/C, count*(c+1)/C),
/// jumps to its first subset via the combinatorial number system
/// (NthKSubset) and walks it with the Gosper successor (NextKSubset).
/// Because the order is colex, each chunk's writes land in a disjoint,
/// increasing row-index interval of every DP column — threads can only
/// share a cache line at the single row where two intervals abut, so no
/// extra padding of the 2^n-row columns is needed.
///
/// Determinism: each subset's row is a pure function of lower-rank rows
/// and is written by exactly one thread, so the filled table — costs,
/// cardinalities, and chosen splits — is bit-identical to the sequential
/// driver's for every thread count.
///
/// Governor: when `governor` is non-null, `budget` MUST be the caller's
/// budget already pinned via ResourceBudget::Resolved() — each worker
/// constructs a private GovernorState from it (sharing the absolute
/// deadline and cancellation token) and performs the same amortized
/// kCheckStride check cadence as the sequential driver, per thread. The
/// first worker to trip signals a shared first-error-wins abort that the
/// others observe at their next check; after the rank barrier the caller's
/// governor adopts the verdict (GovernorState::AdoptAbort) and the pass
/// returns kRejectedCost, leaving the table partially filled but safe to
/// reuse, exactly like a sequential governed abort.
///
/// Instrumentation: workers count into per-chunk cache-line-padded slots
/// that are folded into `*instr` at each rank barrier, so a completed pass
/// reports exactly the sequential totals (uint64 sums commute).
///
/// SIMD: `split_kernel` is the pass-wide resolved build/filter pair (see
/// RunBlitzSplit); every worker runs the same kernel on its chunks, so the
/// sequential driver and all thread counts share one kernel choice and the
/// bit-identity contract above is unchanged. The kernel's dense-compaction
/// build stage writes its scratch, so each chunk slot gets a private
/// SplitScratch (threads x 2^n x 8 bytes, allocated once per pass and only
/// when a kernel is active).
///
/// Requirements are those of RunBlitzSplit, plus
/// options.EffectiveThreads() >= 1. Problems where no rank reaches
/// min_parallel_rank fall back to the sequential driver wholesale.
template <typename CostModel, bool kWithPredicates, bool kNestedIfs = true,
          typename Instr = NoInstrumentation>
BLITZ_NOINLINE float RunBlitzSplitRanked(const CostModel& model,
                          const std::vector<double>& base_cards,
                          const JoinGraph* graph, float cost_threshold,
                          DpTable* table, Instr* instr,
                          const ParallelOptimizerOptions& options,
                          const ResourceBudget& budget,
                          GovernorState* governor = nullptr,
                          const SplitKernel* split_kernel = nullptr) {
  const int n = static_cast<int>(base_cards.size());
  if (!options.ShouldParallelize(n)) {
    return RunBlitzSplit<CostModel, kWithPredicates, kNestedIfs>(
        model, base_cards, graph, cost_threshold, table, instr, governor,
        split_kernel);
  }
  internal::BlitzCheckPass<CostModel, kWithPredicates>(base_cards, graph,
                                                       *table);

  float* const cost = table->cost_data();
  double* const card = table->card_data();
  std::uint32_t* const best = table->best_lhs_data();
  double* const pi_fan = kWithPredicates ? table->pi_fan_data() : nullptr;
  double* const aux = CostModel::kNeedsAux ? table->aux_data() : nullptr;

  internal::BlitzInitSingletons<CostModel, kWithPredicates>(
      base_cards, cost, card, best, pi_fan, aux);
  const std::uint64_t full = (std::uint64_t{1} << n) - 1;

  const int threads = options.EffectiveThreads();
  ThreadPool pool(threads - 1);
  internal::SharedAbort abort;
  std::vector<internal::PaddedInstr<Instr>> slots(
      static_cast<std::size_t>(threads));

  // One dense-compaction scratch per chunk slot: the build stage writes
  // it, so workers cannot share. Slot 0 doubles as the inline-rank scratch
  // (inline ranks run between barriers, never concurrently with workers).
  std::vector<SplitScratch> scratches;
  if constexpr (kNestedIfs) {
    if (split_kernel != nullptr && n >= kSimdMinPopcount) {
      scratches.resize(static_cast<std::size_t>(threads));
      for (SplitScratch& sc : scratches) sc.EnsureCapacity(n);
    }
  }
  if (scratches.empty()) split_kernel = nullptr;

  const auto process = [&](std::uint64_t s, Instr* i, SplitScratch* sc) {
    internal::BlitzProcessSubset<CostModel, kWithPredicates, kNestedIfs>(
        model, graph, cost_threshold, s, cost, card, best, pi_fan, aux, i,
        split_kernel, sc);
  };

  std::uint64_t ranks_fanned = 0;
  std::uint64_t ranks_inline = 0;
  std::uint64_t chunks_run = 0;
  for (int k = 2; k <= n; ++k) {
    const std::uint64_t count = Binomial(n, k);
    TraceSpan rank_span("dp_rank", "parallel");
    rank_span.AddArg("k", k);
    rank_span.AddArg("subsets", static_cast<double>(count));
    // Per-rank wall clock for the profile's ranks[k].wall_ticks — the
    // denominator that turns folded per-worker phase ticks (CPU time)
    // into a parallel-efficiency read. Free unless the policy profiles.
    [[maybe_unused]] std::uint64_t rank_start_ticks = 0;
    if constexpr (Instr::kProfiling) rank_start_ticks = ProfTicks();
    if (count < options.min_parallel_rank) {
      // Narrow rank: walk it inline with the sequential governor cadence.
      ++ranks_inline;
      rank_span.AddArg("chunks", 0);
      std::uint64_t v = FirstKSubset(k);
      SplitScratch* const sc = scratches.empty() ? nullptr : &scratches[0];
      for (std::uint64_t i = 0; i < count; ++i) {
        if (governor != nullptr && governor->Tick()) {
          instr->ProfPassEnd();
          return kRejectedCost;
        }
        process(v, instr, sc);
        if (i + 1 < count) v = NextKSubset(v);
      }
      if constexpr (Instr::kProfiling) {
        instr->profile.ranks[k].wall_ticks += ProfTicks() - rank_start_ticks;
      }
      continue;
    }

    const int chunks = static_cast<int>(
        count < static_cast<std::uint64_t>(threads) ? count : threads);
    ++ranks_fanned;
    chunks_run += static_cast<std::uint64_t>(chunks);
    rank_span.AddArg("chunks", chunks);
    pool.Run(chunks, [&](int c) {
      Instr* const slot = &slots[static_cast<std::size_t>(c)].instr;
      const std::uint64_t begin =
          count * static_cast<std::uint64_t>(c) /
          static_cast<std::uint64_t>(chunks);
      const std::uint64_t end =
          count * (static_cast<std::uint64_t>(c) + 1) /
          static_cast<std::uint64_t>(chunks);
      if (begin == end) return;
      SplitScratch* const sc =
          scratches.empty() ? nullptr
                            : &scratches[static_cast<std::size_t>(c)];
      std::uint64_t v = NthKSubset(n, k, begin);
      if (governor == nullptr) {
        for (std::uint64_t i = begin; i < end; ++i) {
          process(v, slot, sc);
          if (i + 1 < end) v = NextKSubset(v);
        }
        return;
      }
      // Governed chunk: a private per-thread governor over the shared
      // resolved budget, same amortized cadence as the sequential loop,
      // plus the cross-thread first-error-wins flag.
      GovernorState local(budget);
      std::uint32_t until_check = GovernorState::kCheckStride;
      for (std::uint64_t i = begin; i < end; ++i) {
        if (--until_check == 0) {
          until_check = GovernorState::kCheckStride;
          if (abort.signaled()) return;
          if (local.CheckNow()) {
            abort.Signal(local.status());
            return;
          }
        }
        process(v, slot, sc);
        if (i + 1 < end) v = NextKSubset(v);
      }
    });

    // Rank barrier: fold per-chunk counters so --report stays exact, then
    // surface any worker abort through the caller's governor. For a
    // profiling policy the folded phase ticks are summed CPU time across
    // workers; wall_ticks (recorded below, once per rank) is the wall
    // denominator.
    if constexpr (Instr::kEnabled) {
      for (auto& slot : slots) {
        *instr += slot.instr;
        slot.instr = Instr{};
      }
    }
    if constexpr (Instr::kProfiling) {
      instr->profile.ranks[k].wall_ticks += ProfTicks() - rank_start_ticks;
    }
    // The fanned span's CPU time lives in the folded worker slots; re-arm
    // the pass instance so the same wall span isn't also charged to its
    // driver phase at the next mark.
    instr->ProfResync();
    if (abort.signaled()) {
      if (governor != nullptr) governor->AdoptAbort(abort.status());
      instr->ProfPassEnd();
      return kRejectedCost;
    }
  }

  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("parallel.passes");
    metrics->AddCounter("parallel.ranks_fanned", ranks_fanned);
    metrics->AddCounter("parallel.ranks_inline", ranks_inline);
    metrics->AddCounter("parallel.chunks", chunks_run);
    metrics->MaxGauge("parallel.threads", static_cast<double>(threads));
  }
  instr->ProfPassEnd();
  return cost[full];
}

}  // namespace blitz

#endif  // BLITZ_PARALLEL_BLITZSPLIT_RANKED_H_
