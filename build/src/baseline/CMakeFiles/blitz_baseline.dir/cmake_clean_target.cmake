file(REMOVE_RECURSE
  "libblitz_baseline.a"
)
