#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace blitz {

namespace {

/// JSON numbers cannot be inf/nan; clamp to the quoted strings Chrome and
/// jq both tolerate as values.
std::string JsonNumber(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  return StrFormat("%.17g", v);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  BLITZ_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    BLITZ_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 100.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  bounds.push_back(100.0);
  return bounds;
}

void Histogram::Record(double value) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

Histogram& Histogram::operator+=(const Histogram& other) {
  BLITZ_CHECK(bounds_ == other.bounds_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ != 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }
  return *this;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (size_t bucket = 0; bucket < counts_.size(); ++bucket) {
    if (counts_[bucket] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += counts_[bucket];
    if (static_cast<double>(seen) < rank) continue;
    // Interpolate within [lo, hi); open-ended edge buckets clamp to the
    // observed extrema so percentiles never leave the data range.
    double lo = bucket == 0 ? min_ : bounds_[bucket - 1];
    double hi = bucket == counts_.size() - 1 ? max_ : bounds_[bucket];
    lo = std::max(lo, min_);
    hi = std::min(hi, max_);
    if (hi <= lo) return lo;
    const double fraction =
        (rank - before) / static_cast<double>(counts_[bucket]);
    return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
  }
  return max_;
}

void MetricsRegistry::AddCounter(std::string_view name, std::uint64_t delta) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::MaxGauge(std::string_view name, double value) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

void MetricsRegistry::RecordLatency(std::string_view name, double seconds) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      Histogram(Histogram::DefaultLatencyBounds()))
             .first;
  }
  it->second.Record(seconds);
}

void MetricsRegistry::SetLabel(std::string_view name,
                               std::string_view value) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = labels_.find(name);
  if (it == labels_.end()) {
    labels_.emplace(std::string(name), std::string(value));
  } else {
    it->second = std::string(value);
  }
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.assign(counters_.begin(), counters_.end());
  snapshot.gauges.assign(gauges_.begin(), gauges_.end());
  snapshot.labels.assign(labels_.begin(), labels_.end());
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram.count();
    h.sum = histogram.sum();
    h.min = histogram.min();
    h.max = histogram.max();
    h.p50 = histogram.Percentile(50);
    h.p95 = histogram.Percentile(95);
    h.p99 = histogram.Percentile(99);
    snapshot.histograms.emplace_back(name, h);
  }
  return snapshot;
}

std::string MetricsRegistry::ToJson() const {
  const MetricsSnapshot snapshot = TakeSnapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%llu", JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%s", JsonEscape(name).c_str(),
                     JsonNumber(value).c_str());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "\"%s\":{\"count\":%llu,\"sum\":%s,\"min\":%s,\"max\":%s,"
        "\"p50\":%s,\"p95\":%s,\"p99\":%s}",
        JsonEscape(name).c_str(), static_cast<unsigned long long>(h.count),
        JsonNumber(h.sum).c_str(), JsonNumber(h.min).c_str(),
        JsonNumber(h.max).c_str(), JsonNumber(h.p50).c_str(),
        JsonNumber(h.p95).c_str(), JsonNumber(h.p99).c_str());
  }
  out += "},\"labels\":{";
  first = true;
  for (const auto& [name, value] : snapshot.labels) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":\"%s\"", JsonEscape(name).c_str(),
                     JsonEscape(value).c_str());
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToString() const {
  const MetricsSnapshot snapshot = TakeSnapshot();
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("counter %s = %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("gauge %s = %g\n", name.c_str(), value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out += StrFormat(
        "histogram %s: count=%llu mean=%g p50=%g p95=%g p99=%g max=%g\n",
        name.c_str(), static_cast<unsigned long long>(h.count),
        h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count), h.p50,
        h.p95, h.p99, h.max);
  }
  for (const auto& [name, value] : snapshot.labels) {
    out += StrFormat("label %s = %s\n", name.c_str(), value.c_str());
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  labels_.clear();
}

namespace {
std::atomic<MetricsRegistry*> g_metrics{nullptr};
}  // namespace

MetricsRegistry* GlobalMetrics() {
  return g_metrics.load(std::memory_order_acquire);
}

void SetGlobalMetrics(MetricsRegistry* registry) {
  g_metrics.store(registry, std::memory_order_release);
}

std::string DumpMetricsJson() {
  MetricsRegistry* metrics = GlobalMetrics();
  if (metrics == nullptr) return "{}";
  return metrics->ToJson();
}

}  // namespace blitz
