#include "plan/plan.h"

#include <functional>
#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace blitz {

const char* JoinAlgorithmToString(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kUnspecified:
      return "join";
    case JoinAlgorithm::kCartesianProduct:
      return "product";
    case JoinAlgorithm::kNestedLoops:
      return "nested-loops";
    case JoinAlgorithm::kSortMerge:
      return "sort-merge";
    case JoinAlgorithm::kHash:
      return "hash";
  }
  return "unknown";
}

Plan Plan::Leaf(int relation) {
  auto node = std::make_unique<PlanNode>();
  node->set = RelSet::Singleton(relation);
  return Plan(std::move(node));
}

Plan Plan::Join(Plan lhs, Plan rhs) {
  BLITZ_CHECK(!lhs.empty() && !rhs.empty());
  BLITZ_CHECK(!lhs.relations().Intersects(rhs.relations()));
  auto node = std::make_unique<PlanNode>();
  node->set = lhs.relations() | rhs.relations();
  node->left = std::move(lhs.root_);
  node->right = std::move(rhs.root_);
  return Plan(std::move(node));
}

namespace {

Result<std::unique_ptr<PlanNode>> ExtractNode(const DpTable& table, RelSet s) {
  auto node = std::make_unique<PlanNode>();
  node->set = s;
  if (s.IsSingleton()) return node;
  if (table.rejected(s)) {
    return Status::NotFound(
        StrFormat("no plan for %s survived the cost threshold",
                  s.ToString().c_str()));
  }
  const RelSet lhs = table.best_lhs(s);
  BLITZ_CHECK(!lhs.empty() && lhs.IsProperSubsetOf(s));
  Result<std::unique_ptr<PlanNode>> left = ExtractNode(table, lhs);
  if (!left.ok()) return left.status();
  Result<std::unique_ptr<PlanNode>> right = ExtractNode(table, s - lhs);
  if (!right.ok()) return right.status();
  node->left = std::move(left).value();
  node->right = std::move(right).value();
  return node;
}

std::unique_ptr<PlanNode> CloneNode(const PlanNode& node) {
  auto copy = std::make_unique<PlanNode>();
  copy->set = node.set;
  copy->algorithm = node.algorithm;
  copy->sort_class = node.sort_class;
  if (!node.is_leaf()) {
    copy->left = CloneNode(*node.left);
    copy->right = CloneNode(*node.right);
  }
  return copy;
}

}  // namespace

Result<Plan> Plan::ExtractFromTable(const DpTable& table, RelSet s) {
  if (s.empty() || !table.AllRelations().ContainsAll(s)) {
    return Status::InvalidArgument("set " + s.ToString() +
                                   " is not a nonempty subset of the table");
  }
  Result<std::unique_ptr<PlanNode>> root = ExtractNode(table, s);
  if (!root.ok()) return root.status();
  return Plan(std::move(root).value());
}

Result<Plan> Plan::ExtractFromTable(const DpTable& table) {
  return ExtractFromTable(table, table.AllRelations());
}

int Plan::NumLeaves() const {
  return root_ == nullptr ? 0 : root_->set.size();
}

int Plan::Depth() const {
  std::function<int(const PlanNode&)> depth = [&](const PlanNode& node) {
    if (node.is_leaf()) return 0;
    return 1 + std::max(depth(*node.left), depth(*node.right));
  };
  return root_ == nullptr ? 0 : depth(*root_);
}

bool Plan::IsLeftDeep() const {
  if (root_ == nullptr) return true;
  const PlanNode* node = root_.get();
  while (!node->is_leaf()) {
    if (!node->right->is_leaf()) return false;
    node = node->left.get();
  }
  return true;
}

int Plan::CountCartesianProducts(const JoinGraph& graph) const {
  std::function<int(const PlanNode&)> count = [&](const PlanNode& node) {
    if (node.is_leaf()) return 0;
    const int below = count(*node.left) + count(*node.right);
    return below +
           (graph.AnyEdgeSpans(node.left->set, node.right->set) ? 0 : 1);
  };
  return root_ == nullptr ? 0 : count(*root_);
}

Plan Plan::Clone() const {
  if (root_ == nullptr) return Plan();
  return Plan(CloneNode(*root_));
}

bool Plan::StructurallyEquals(const Plan& other) const {
  std::function<bool(const PlanNode*, const PlanNode*)> eq =
      [&](const PlanNode* a, const PlanNode* b) {
        if (a == nullptr || b == nullptr) return a == b;
        if (a->set != b->set) return false;
        if (a->is_leaf() != b->is_leaf()) return false;
        if (a->is_leaf()) return true;
        return eq(a->left.get(), b->left.get()) &&
               eq(a->right.get(), b->right.get());
      };
  return eq(root_.get(), other.root_.get());
}

namespace {

std::string LeafName(const PlanNode& node, const Catalog* catalog) {
  if (catalog != nullptr && node.relation() < catalog->num_relations()) {
    return catalog->relation(node.relation()).name;
  }
  return "R" + std::to_string(node.relation());
}

void RenderInfix(const PlanNode& node, const Catalog* catalog,
                 std::string* out) {
  if (node.is_leaf()) {
    *out += LeafName(node, catalog);
    return;
  }
  *out += "(";
  RenderInfix(*node.left, catalog, out);
  *out += " x ";
  RenderInfix(*node.right, catalog, out);
  *out += ")";
}

void RenderTree(const PlanNode& node, const Catalog* catalog, int indent,
                std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  if (node.is_leaf()) {
    *out += "scan " + LeafName(node, catalog) + "\n";
    return;
  }
  *out += JoinAlgorithmToString(node.algorithm);
  *out += " " + node.set.ToString() + "\n";
  RenderTree(*node.left, catalog, indent + 1, out);
  RenderTree(*node.right, catalog, indent + 1, out);
}

}  // namespace

std::string Plan::ToString(const Catalog* catalog) const {
  if (root_ == nullptr) return "(empty)";
  std::string out;
  RenderInfix(*root_, catalog, &out);
  return out;
}

std::string Plan::ToTreeString(const Catalog* catalog) const {
  if (root_ == nullptr) return "(empty)\n";
  std::string out;
  RenderTree(*root_, catalog, 0, &out);
  return out;
}

}  // namespace blitz
