#include "textio/bjq.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "catalog/filters.h"
#include "common/strings.h"
#include "query/equivalence.h"

namespace blitz {

namespace {

Status LineError(int line, const std::string& message) {
  return Status::InvalidArgument(StrFormat("line %d: %s", line,
                                           message.c_str()));
}

/// A valid selectivity is a finite number in (0, 1]; NaN fails every
/// comparison and is rejected along with 0, negatives, and infinities.
bool ValidSelectivity(double s) {
  return std::isfinite(s) && s > 0.0 && s <= 1.0;
}

/// Splits "name.column" at its single dot; both halves must be nonempty.
bool ParseColumnRef(const std::string& token, std::string* relation,
                    std::string* column) {
  const size_t dot = token.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == token.size()) {
    return false;
  }
  if (token.find('.', dot + 1) != std::string::npos) return false;
  *relation = token.substr(0, dot);
  *column = token.substr(dot + 1);
  return true;
}

}  // namespace

Result<QuerySpec> ParseBjq(std::string_view text) {
  return ParseBjq(text, BjqLimits{});
}

Result<QuerySpec> ParseBjq(std::string_view text, const BjqLimits& limits) {
  std::vector<RelationStats> relations;
  struct PendingPredicate {
    std::string a;
    std::string b;
    double selectivity;
    int line;
  };
  std::vector<PendingPredicate> pending;
  struct PendingEquivalence {
    std::vector<std::string> names;
    std::vector<double> distinct_counts;
    int line;
  };
  std::vector<PendingEquivalence> pending_classes;
  struct PendingFilter {
    std::string name;
    double selectivity;
    int line;
  };
  std::vector<PendingFilter> pending_filters;
  struct PendingJoin {
    std::string a;
    std::string b;
    std::optional<double> distinct_a;
    std::optional<double> distinct_b;
    int line;
  };
  std::vector<PendingJoin> pending_joins;
  /// Declared (pre-filter) row counts, the distinct-count defaults for
  /// `join` directives.
  std::map<std::string, double> declared_rows;
  std::set<std::string> seen_names;
  CostModelKind cost_model = CostModelKind::kNaive;
  EquivalencePolicy policy = EquivalencePolicy::kCalibrated;
  std::optional<float> threshold;
  std::optional<EstimatorKind> estimator;

  int line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    ++line_number;
    std::string_view raw = text.substr(pos, end - pos);
    pos = end + 1;
    if (end == text.size() && raw.empty()) break;
    // Incremental input caps (hostile-client defense, see BjqLimits): the
    // limits bind at the line where the input crosses them, so the error is
    // line-numbered like every other parse failure, but as
    // kResourceExhausted — the document is too big, not malformed.
    if (limits.max_lines > 0 && line_number > limits.max_lines) {
      return Status::ResourceExhausted(
          StrFormat("line %d: input exceeds %d lines", line_number,
                    limits.max_lines));
    }
    if (limits.max_bytes > 0 &&
        static_cast<std::uint64_t>(end) > limits.max_bytes) {
      return Status::ResourceExhausted(
          StrFormat("line %d: input exceeds %llu bytes", line_number,
                    static_cast<unsigned long long>(limits.max_bytes)));
    }

    const size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const std::string_view line = StrTrim(raw);
    if (line.empty()) continue;

    const std::vector<std::string> fields = StrSplit(line, ' ');
    const std::string& directive = fields[0];
    if (directive == "relation" || directive == "table") {
      if (fields.size() < 3 || fields.size() > 4) {
        return LineError(line_number,
                         StrFormat("expected: %s <name> <cardinality> "
                                   "[<bytes>]",
                                   directive.c_str()));
      }
      if (static_cast<int>(relations.size()) >= kMaxRelations) {
        return LineError(line_number,
                         StrFormat("too many relations (max %d)",
                                   kMaxRelations));
      }
      RelationStats stats;
      stats.name = fields[1];
      if (!seen_names.insert(stats.name).second) {
        return LineError(line_number,
                         "duplicate relation name: " + stats.name);
      }
      if (!ParseDouble(fields[2], &stats.cardinality)) {
        return LineError(line_number, "bad cardinality: " + fields[2]);
      }
      // Canonical cardinality validation (catalog/catalog.h): the same
      // relation-naming text Catalog::Create and the workload generators
      // emit, wrapped in this parser's line numbering.
      const Status valid =
          ValidateRelationCardinality(stats.name, stats.cardinality);
      if (!valid.ok()) return LineError(line_number, valid.message());
      declared_rows[stats.name] = stats.cardinality;
      if (fields.size() == 4) {
        if (!ParseInt(fields[3], &stats.tuple_bytes)) {
          return LineError(line_number, "bad tuple width: " + fields[3]);
        }
        if (stats.tuple_bytes <= 0) {
          return LineError(line_number,
                           "tuple width must be positive: " + fields[3]);
        }
      }
      relations.push_back(std::move(stats));
    } else if (directive == "predicate") {
      if (fields.size() != 4) {
        return LineError(line_number,
                         "expected: predicate <a> <b> <selectivity>");
      }
      double selectivity = 0;
      if (!ParseDouble(fields[3], &selectivity)) {
        return LineError(line_number, "bad selectivity: " + fields[3]);
      }
      if (!ValidSelectivity(selectivity)) {
        return LineError(line_number,
                         "selectivity must be in (0, 1]: " + fields[3]);
      }
      pending.push_back({fields[1], fields[2], selectivity, line_number});
    } else if (directive == "join") {
      if ((fields.size() != 4 && fields.size() != 6) || fields[2] != "=") {
        return LineError(line_number,
                         "expected: join <a>.<col> = <b>.<col> "
                         "[<distinct_a> <distinct_b>]");
      }
      PendingJoin join;
      join.line = line_number;
      std::string col_a;
      std::string col_b;
      if (!ParseColumnRef(fields[1], &join.a, &col_a)) {
        return LineError(line_number,
                         "bad column reference (want <name>.<col>): " +
                             fields[1]);
      }
      if (!ParseColumnRef(fields[3], &join.b, &col_b)) {
        return LineError(line_number,
                         "bad column reference (want <name>.<col>): " +
                             fields[3]);
      }
      if (fields.size() == 6) {
        double da = 0;
        double db = 0;
        if (!ParseDouble(fields[4], &da) || !std::isfinite(da) || !(da > 0)) {
          return LineError(line_number,
                           "distinct count must be a positive finite "
                           "number: " +
                               fields[4]);
        }
        if (!ParseDouble(fields[5], &db) || !std::isfinite(db) || !(db > 0)) {
          return LineError(line_number,
                           "distinct count must be a positive finite "
                           "number: " +
                               fields[5]);
        }
        join.distinct_a = da;
        join.distinct_b = db;
      }
      pending_joins.push_back(std::move(join));
    } else if (directive == "estimator") {
      if (fields.size() != 2) {
        return LineError(line_number, "expected: estimator <name>");
      }
      const std::optional<EstimatorKind> kind =
          EstimatorKindFromName(fields[1]);
      if (!kind.has_value()) {
        return LineError(line_number,
                         StrFormat("unknown estimator %s (valid: %s)",
                                   fields[1].c_str(), EstimatorKindNames()));
      }
      estimator = kind;
    } else if (directive == "filter") {
      if (fields.size() != 3) {
        return LineError(line_number, "expected: filter <name> <selectivity>");
      }
      double selectivity = 0;
      if (!ParseDouble(fields[2], &selectivity)) {
        return LineError(line_number, "bad selectivity: " + fields[2]);
      }
      if (!ValidSelectivity(selectivity)) {
        return LineError(line_number,
                         "selectivity must be in (0, 1]: " + fields[2]);
      }
      pending_filters.push_back({fields[1], selectivity, line_number});
    } else if (directive == "equivalence") {
      // equivalence <names...> : <distinct counts...>
      PendingEquivalence cls;
      cls.line = line_number;
      size_t field = 1;
      while (field < fields.size() && fields[field] != ":") {
        cls.names.push_back(fields[field]);
        ++field;
      }
      if (field >= fields.size()) {
        return LineError(line_number,
                         "expected ':' separating names from counts");
      }
      for (++field; field < fields.size(); ++field) {
        double count = 0;
        if (!ParseDouble(fields[field], &count)) {
          return LineError(line_number,
                           "bad distinct count: " + fields[field]);
        }
        if (!std::isfinite(count) || !(count > 0)) {
          return LineError(line_number,
                           "distinct count must be a positive finite "
                           "number: " +
                               fields[field]);
        }
        cls.distinct_counts.push_back(count);
      }
      if (cls.names.size() < 2 ||
          cls.names.size() != cls.distinct_counts.size()) {
        return LineError(line_number,
                         "equivalence needs >= 2 names and one distinct "
                         "count per name");
      }
      pending_classes.push_back(std::move(cls));
    } else if (directive == "policy") {
      if (fields.size() != 2) {
        return LineError(line_number, "expected: policy <name>");
      }
      if (fields[1] == "pairwise") {
        policy = EquivalencePolicy::kPairwise;
      } else if (fields[1] == "calibrated") {
        policy = EquivalencePolicy::kCalibrated;
      } else {
        return LineError(line_number, "unknown policy: " + fields[1]);
      }
    } else if (directive == "costmodel") {
      if (fields.size() != 2) {
        return LineError(line_number, "expected: costmodel <name>");
      }
      Result<CostModelKind> kind = ParseCostModelKind(fields[1]);
      if (!kind.ok()) return LineError(line_number, kind.status().message());
      cost_model = *kind;
    } else if (directive == "threshold") {
      if (fields.size() != 2) {
        return LineError(line_number, "expected: threshold <value>");
      }
      double value = 0;
      if (!ParseDouble(fields[1], &value) || !(value > 0) ||
          !std::isfinite(value)) {
        return LineError(line_number, "bad threshold: " + fields[1]);
      }
      threshold = static_cast<float>(value);
    } else {
      return LineError(line_number, "unknown directive: " + directive);
    }
  }

  Result<Catalog> catalog = Catalog::Create(std::move(relations));
  if (!catalog.ok()) return catalog.status();

  if (!pending_filters.empty()) {
    std::vector<FilterSpec> filters;
    filters.reserve(pending_filters.size());
    for (const PendingFilter& f : pending_filters) {
      const int relation = catalog->FindByName(f.name);
      if (relation < 0) {
        return LineError(f.line, "unknown relation: " + f.name);
      }
      filters.push_back({relation, f.selectivity});
    }
    Result<Catalog> filtered = ApplyFilters(*catalog, filters);
    if (!filtered.ok()) {
      return LineError(pending_filters.front().line,
                       filtered.status().message());
    }
    catalog = std::move(filtered);
  }

  JoinSpecBuilder builder(catalog->num_relations(), policy);
  for (const PendingPredicate& p : pending) {
    const int a = catalog->FindByName(p.a);
    const int b = catalog->FindByName(p.b);
    if (a < 0) return LineError(p.line, "unknown relation: " + p.a);
    if (b < 0) return LineError(p.line, "unknown relation: " + p.b);
    Status added = builder.AddPredicate(a, b, p.selectivity);
    if (!added.ok()) return LineError(p.line, added.message());
  }
  for (const PendingJoin& j : pending_joins) {
    const int a = catalog->FindByName(j.a);
    const int b = catalog->FindByName(j.b);
    if (a < 0) return LineError(j.line, "unknown relation: " + j.a);
    if (b < 0) return LineError(j.line, "unknown relation: " + j.b);
    const double da =
        j.distinct_a.has_value() ? *j.distinct_a : declared_rows[j.a];
    const double db =
        j.distinct_b.has_value() ? *j.distinct_b : declared_rows[j.b];
    // System-R equi-join rule over raw statistics; the min() guard covers
    // fractional row counts below one.
    const double selectivity = std::min(1.0, 1.0 / std::max(da, db));
    Status added = builder.AddPredicate(a, b, selectivity);
    if (!added.ok()) return LineError(j.line, added.message());
  }
  for (const PendingEquivalence& cls : pending_classes) {
    std::vector<int> members;
    members.reserve(cls.names.size());
    for (const std::string& name : cls.names) {
      const int relation = catalog->FindByName(name);
      if (relation < 0) return LineError(cls.line, "unknown relation: " + name);
      members.push_back(relation);
    }
    Status added =
        builder.AddEquivalenceClass(std::move(members), cls.distinct_counts);
    if (!added.ok()) return LineError(cls.line, added.message());
  }
  Result<JoinGraph> graph = builder.Build();
  if (!graph.ok()) return graph.status();
  return QuerySpec{std::move(catalog).value(), std::move(graph).value(),
                   cost_model, threshold, estimator};
}

Result<QuerySpec> LoadBjqFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseBjq(buffer.str());
}

std::string WriteBjq(const QuerySpec& spec) {
  std::string out;
  out += StrFormat("costmodel %s\n",
                   CostModelKindToString(spec.cost_model));
  if (spec.threshold.has_value()) {
    out += StrFormat("threshold %g\n", static_cast<double>(*spec.threshold));
  }
  if (spec.estimator.has_value()) {
    out += StrFormat("estimator %s\n", EstimatorKindName(*spec.estimator));
  }
  for (int i = 0; i < spec.catalog.num_relations(); ++i) {
    const RelationStats& r = spec.catalog.relation(i);
    out += StrFormat("relation %s %.17g %d\n", r.name.c_str(), r.cardinality,
                     r.tuple_bytes);
  }
  for (const Predicate& p : spec.graph.predicates()) {
    out += StrFormat("predicate %s %s %.17g\n",
                     spec.catalog.relation(p.lhs).name.c_str(),
                     spec.catalog.relation(p.rhs).name.c_str(),
                     p.selectivity);
  }
  return out;
}

}  // namespace blitz
