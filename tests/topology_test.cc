#include "query/topology.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "query/join_graph.h"

namespace blitz {
namespace {

JoinGraph GraphFromEdges(int n, const std::vector<std::pair<int, int>>& edges) {
  JoinGraph graph(n);
  for (const auto& [a, b] : edges) {
    EXPECT_TRUE(graph.AddPredicate(a, b, 0.5).ok());
  }
  return graph;
}

TEST(TopologyTest, ChainOrderMatchesAppendixForN15) {
  // R0-R8-R1-R9-R2-R10-R3-R11-R4-R12-R5-R13-R6-R14-R7.
  EXPECT_EQ(ChainOrder(15),
            (std::vector<int>{0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14,
                              7}));
}

TEST(TopologyTest, ChainOrderIsAPermutation) {
  for (int n = 1; n <= 20; ++n) {
    std::vector<int> order = ChainOrder(n);
    ASSERT_EQ(static_cast<int>(order.size()), n);
    std::sort(order.begin(), order.end());
    for (int i = 0; i < n; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(TopologyTest, ChainHasNMinusOneEdgesAndIsConnected) {
  for (int n = 2; n <= 16; ++n) {
    Result<std::vector<std::pair<int, int>>> edges =
        MakeTopologyEdges(Topology::kChain, n);
    ASSERT_TRUE(edges.ok());
    EXPECT_EQ(static_cast<int>(edges->size()), n - 1);
    const JoinGraph graph = GraphFromEdges(n, *edges);
    EXPECT_TRUE(graph.IsConnected(RelSet::FirstN(n)));
    // Chains have exactly two degree-1 nodes.
    int degree_one = 0;
    for (int i = 0; i < n; ++i) {
      if (graph.Degree(i) == 1) ++degree_one;
    }
    EXPECT_EQ(degree_one, n == 2 ? 2 : 2);
  }
}

TEST(TopologyTest, CycleHasNEdgesAllDegreeTwo) {
  Result<std::vector<std::pair<int, int>>> edges =
      MakeTopologyEdges(Topology::kCycle, 10);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 10u);
  const JoinGraph graph = GraphFromEdges(10, *edges);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(graph.Degree(i), 2);
}

TEST(TopologyTest, CyclePlus3MatchesAppendixForN15) {
  Result<std::vector<std::pair<int, int>>> edges =
      MakeTopologyEdges(Topology::kCyclePlus3, 15);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 18u);  // 14 chain + closure + 3 cross
  std::set<std::pair<int, int>> edge_set(edges->begin(), edges->end());
  // The Appendix's extra connections: R0-R7, R8-R14, R1-R6, R9-R13.
  EXPECT_TRUE(edge_set.count({0, 7}));
  EXPECT_TRUE(edge_set.count({8, 14}));
  EXPECT_TRUE(edge_set.count({1, 6}));
  EXPECT_TRUE(edge_set.count({9, 13}));
}

TEST(TopologyTest, StarHubIsLastRelation) {
  Result<std::vector<std::pair<int, int>>> edges =
      MakeTopologyEdges(Topology::kStar, 8);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 7u);
  const JoinGraph graph = GraphFromEdges(8, *edges);
  EXPECT_EQ(graph.Degree(7), 7);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(graph.Degree(i), 1);
}

TEST(TopologyTest, CliqueHasAllPairs) {
  Result<std::vector<std::pair<int, int>>> edges =
      MakeTopologyEdges(Topology::kClique, 6);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 15u);  // C(6,2)
  const JoinGraph graph = GraphFromEdges(6, *edges);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(graph.Degree(i), 5);
}

TEST(TopologyTest, GridIsConnectedWithBoundedDegree) {
  for (int n : {4, 9, 12, 16}) {
    Result<std::vector<std::pair<int, int>>> edges =
        MakeTopologyEdges(Topology::kGrid, n);
    ASSERT_TRUE(edges.ok());
    const JoinGraph graph = GraphFromEdges(n, *edges);
    EXPECT_TRUE(graph.IsConnected(RelSet::FirstN(n))) << n;
    for (int i = 0; i < n; ++i) EXPECT_LE(graph.Degree(i), 4);
  }
}

TEST(TopologyTest, TooSmallNRejected) {
  EXPECT_FALSE(MakeTopologyEdges(Topology::kChain, 1).ok());
  EXPECT_FALSE(MakeTopologyEdges(Topology::kCycle, 2).ok());
  EXPECT_FALSE(MakeTopologyEdges(Topology::kCyclePlus3, 8).ok());
  EXPECT_FALSE(MakeTopologyEdges(Topology::kStar, 1).ok());
  EXPECT_FALSE(MakeTopologyEdges(Topology::kGrid, 3).ok());
}

TEST(TopologyTest, NamesRoundTrip) {
  for (const Topology t :
       {Topology::kChain, Topology::kCycle, Topology::kCyclePlus3,
        Topology::kStar, Topology::kClique, Topology::kGrid}) {
    Result<Topology> parsed = ParseTopology(TopologyToString(t));
    ASSERT_TRUE(parsed.ok()) << TopologyToString(t);
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(ParseTopology("pentagram").ok());
}

TEST(TopologyTest, RandomConnectedGraphsAreConnected) {
  Rng rng(99);
  for (int n : {2, 5, 9, 14}) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto edges = MakeRandomConnectedEdges(n, 0.2, &rng);
      const JoinGraph graph = GraphFromEdges(n, edges);
      EXPECT_TRUE(graph.IsConnected(RelSet::FirstN(n)));
      EXPECT_GE(edges.size(), static_cast<size_t>(n - 1));
    }
  }
}

TEST(TopologyTest, RandomGraphExtraEdgesScaleWithProbability) {
  Rng rng1(5);
  Rng rng2(5);
  const auto sparse = MakeRandomConnectedEdges(12, 0.0, &rng1);
  const auto dense = MakeRandomConnectedEdges(12, 1.0, &rng2);
  EXPECT_EQ(sparse.size(), 11u);        // spanning tree only
  EXPECT_EQ(dense.size(), 66u);         // clique
}

}  // namespace
}  // namespace blitz
