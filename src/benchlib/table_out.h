#ifndef BLITZ_BENCHLIB_TABLE_OUT_H_
#define BLITZ_BENCHLIB_TABLE_OUT_H_

#include <string>
#include <vector>

namespace blitz {

/// Minimal fixed-width text table for bench output: add a header and rows,
/// render with columns aligned. Keeps bench binaries free of ad-hoc
/// formatting code.
class TextTable {
 public:
  void SetHeader(std::vector<std::string> header) {
    header_ = std::move(header);
  }

  void AddRow(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  /// Renders with two spaces between columns; numeric-looking cells are
  /// right-aligned, others left-aligned.
  std::string ToString() const;

  /// Renders as comma-separated values (for machine consumption).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace blitz

#endif  // BLITZ_BENCHLIB_TABLE_OUT_H_
