#ifndef BLITZ_EXEC_STATS_H_
#define BLITZ_EXEC_STATS_H_

#include <memory>
#include <vector>

#include "card/histogram.h"
#include "common/status.h"
#include "exec/relation.h"
#include "query/join_graph.h"

namespace blitz {

/// Knobs for statistics collection over exec-layer tables.
struct StatsOptions {
  /// Target bucket count per join-key histogram (the effective count is
  /// lower for columns with few distinct values).
  int histogram_buckets = 32;
};

/// Builds a SampleHistogramEstimator from materialized base tables: each
/// table contributes its row count, and each join-graph predicate whose
/// both endpoint columns are present contributes an equi-depth-histogram
/// selectivity estimate (predicates with a missing column keep selectivity
/// 1.0 — no information, no assumption). `tables` must hold one entry per
/// graph relation, in any order, keyed by ExecTable::relation_index().
///
/// `graph` is borrowed by the returned estimator and must outlive it.
Result<std::unique_ptr<SampleHistogramEstimator>> BuildHistogramEstimator(
    const JoinGraph& graph, const std::vector<ExecTable>& tables,
    const StatsOptions& options = {});

}  // namespace blitz

#endif  // BLITZ_EXEC_STATS_H_
