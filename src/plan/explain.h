#ifndef BLITZ_PLAN_EXPLAIN_H_
#define BLITZ_PLAN_EXPLAIN_H_

#include <string>

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Produces an EXPLAIN-style report for a plan: one line per operator with
/// estimated cardinality, per-join kappa, cumulative cost, the predicates
/// applied at each join (exactly the spanning predicates, per Section 5.1),
/// and Cartesian-product markers. Example:
///
///   join plan (naive cost model), total cost 241000
///   2 joins, 0 with predicates, 2 Cartesian products, bushy (depth 2)
///
///   product {A,D}                           rows 400        kappa 400 ...
///
/// Intended for CLI/debugging output; everything it prints is recomputed by
/// the independent evaluator (not read from a DP table), so it can explain
/// plans from any optimizer or parser.
std::string ExplainPlan(const Plan& plan, const Catalog& catalog,
                        const JoinGraph& graph, CostModelKind cost_model);

/// Summary numbers extracted by ExplainPlan, available programmatically.
struct PlanSummary {
  double total_cost = 0;
  double result_cardinality = 0;
  int joins = 0;
  int cartesian_products = 0;
  int depth = 0;
  bool left_deep = false;
  /// Largest estimated intermediate-result cardinality in the plan.
  double max_intermediate_cardinality = 0;
};

/// Computes the summary without rendering text.
PlanSummary SummarizePlan(const Plan& plan, const Catalog& catalog,
                          const JoinGraph& graph, CostModelKind cost_model);

}  // namespace blitz

#endif  // BLITZ_PLAN_EXPLAIN_H_
