// Tests for the cardinality-estimator seam (src/card/): stable kind names,
// the exact paper estimator's bit-identity contract against the fused DP
// path, the Simpli-Squared no-estimate signal, equi-depth histogram edge
// cases (empty column, single bucket, skew), the exec-layer histogram
// builder, valid-plan invariants under non-exact estimators, and the
// unified invalid-cardinality error text shared by Catalog::Create, the
// workload generators, and the .bjq parser.

#include "card/estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/optimize_query.h"
#include "card/histogram.h"
#include "card/no_estimate.h"
#include "card/paper_fanout.h"
#include "catalog/catalog.h"
#include "core/optimizer.h"
#include "exec/datagen.h"
#include "exec/relation.h"
#include "exec/stats.h"
#include "plan/evaluate.h"
#include "query/join_graph.h"
#include "query/workload.h"
#include "testing/differential.h"
#include "testing/fuzzer.h"
#include "testing/oracles.h"
#include "textio/bjq.h"

namespace blitz {
namespace {

// ---------------------------------------------------------------------------
// Kind names.

TEST(EstimatorKindTest, NamesRoundTrip) {
  for (const EstimatorKind kind :
       {EstimatorKind::kPaperFanout, EstimatorKind::kSampleHistogram,
        EstimatorKind::kNoEstimate}) {
    const char* name = EstimatorKindName(kind);
    const std::optional<EstimatorKind> parsed = EstimatorKindFromName(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(EstimatorKindName(EstimatorKind::kPaperFanout),
            std::string("paper"));
  EXPECT_EQ(EstimatorKindName(EstimatorKind::kSampleHistogram),
            std::string("hist"));
  EXPECT_EQ(EstimatorKindName(EstimatorKind::kNoEstimate),
            std::string("noest"));
  EXPECT_FALSE(EstimatorKindFromName("exact").has_value());
  EXPECT_FALSE(EstimatorKindFromName("").has_value());
  const std::string all = EstimatorKindNames();
  EXPECT_NE(all.find("paper"), std::string::npos);
  EXPECT_NE(all.find("hist"), std::string::npos);
  EXPECT_NE(all.find("noest"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fixtures.

Result<Workload> ChainWorkload(int n, double mean = 1e4) {
  WorkloadSpec spec;
  spec.num_relations = n;
  spec.topology = Topology::kChain;
  spec.mean_cardinality = mean;
  spec.variability = 0.5;
  return MakeWorkload(spec);
}

Result<Workload> CliqueWorkload(int n, double mean = 1e4) {
  WorkloadSpec spec;
  spec.num_relations = n;
  spec.topology = Topology::kClique;
  spec.mean_cardinality = mean;
  spec.variability = 0.5;
  return MakeWorkload(spec);
}

// ---------------------------------------------------------------------------
// PaperFanoutEstimator: the seam's exact reference implementation.

TEST(PaperFanoutEstimatorTest, MatchesTheDeprecatedWrappers) {
  Result<Workload> w = ChainWorkload(7);
  ASSERT_TRUE(w.ok());
  PaperFanoutEstimator estimator(w->catalog, w->graph);
  EXPECT_TRUE(estimator.exact());
  EXPECT_EQ(estimator.kind(), EstimatorKind::kPaperFanout);
  EXPECT_EQ(estimator.num_relations(), 7);

  std::vector<double> base(7);
  for (int i = 0; i < 7; ++i) {
    base[i] = w->catalog.cardinality(i);
    EXPECT_EQ(estimator.BaseCardinality(i), base[i]);
  }

  // Every subset estimate equals the (deprecated) JoinGraph wrapper, which
  // in turn is the Section 5.1 derivation.
  for (std::uint64_t word = 1; word < (1ull << 7); ++word) {
    const RelSet s = RelSet::FromWord(word);
    EXPECT_EQ(estimator.EstimateCardinality(s),
              w->graph.JoinCardinality(s, base))
        << "subset word " << word;
  }

  // EstimateAll runs the incremental Pi_fan DP (the order the fused
  // optimizer path multiplies in); the per-subset path multiplies in
  // direct-product order, so they agree to rounding only. Bit-identity of
  // the DP-consumed values against the fused path is pinned separately by
  // EstimatorBitIdentityTest.
  std::vector<double> all;
  estimator.EstimateAll(&all);
  ASSERT_EQ(all.size(), 1ull << 7);
  for (std::uint64_t word = 1; word < (1ull << 7); ++word) {
    const double direct =
        estimator.EstimateCardinality(RelSet::FromWord(word));
    EXPECT_NEAR(all[word] / direct, 1.0, 1e-12) << "subset word " << word;
  }
}

TEST(PaperFanoutEstimatorTest, SpanSelectivityIsClampedIntoUnitInterval) {
  Result<Workload> w = CliqueWorkload(6);
  ASSERT_TRUE(w.ok());
  PaperFanoutEstimator estimator(w->catalog, w->graph);
  const RelSet all = RelSet::FirstN(6);
  for (std::uint64_t word = 1; word < (1ull << 6) - 1; ++word) {
    const RelSet u = RelSet::FromWord(word);
    const RelSet v = all.Minus(u);
    if (v.empty()) continue;
    const double sel = estimator.EstimateSpanSelectivity(u, v);
    EXPECT_GT(sel, 0.0);
    EXPECT_LE(sel, 1.0);
  }
}

// ---------------------------------------------------------------------------
// NoEstimateEstimator: the Simpli-Squared signal.

TEST(NoEstimateEstimatorTest, SignalIsUnitToThePowerOfUnboundRelations) {
  // Chain over 5 relations: a subset of size k spanning j chain edges
  // estimates kUnit^(k - j).
  JoinGraph graph(5);
  for (int i = 0; i + 1 < 5; ++i) {
    ASSERT_TRUE(graph.AddPredicate(i, i + 1, 0.5).ok());
  }
  NoEstimateEstimator estimator(graph);
  EXPECT_EQ(estimator.kind(), EstimatorKind::kNoEstimate);
  EXPECT_FALSE(estimator.exact());
  const double u = NoEstimateEstimator::kUnit;

  // Singleton: one unbound relation.
  EXPECT_EQ(estimator.EstimateCardinality(RelSet::Singleton(2)), u);
  // Adjacent pair binds one edge: u^2 * (1/u) = u.
  EXPECT_EQ(
      estimator.EstimateCardinality(RelSet::Singleton(0).With(1)), u);
  // Non-adjacent pair (Cartesian product): u^2.
  EXPECT_EQ(
      estimator.EstimateCardinality(RelSet::Singleton(0).With(2)), u * u);
  // The whole chain: 5 relations, 4 edges -> u.
  EXPECT_EQ(estimator.EstimateCardinality(RelSet::FirstN(5)), u);
}

TEST(NoEstimateEstimatorTest, OverConstrainedSubsetsFloorAtOne) {
  // A 4-clique: any subset of size k binds k*(k-1)/2 >= k edges for k >= 3,
  // so the estimate floors at 1 instead of going sub-unity.
  JoinGraph graph(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      ASSERT_TRUE(graph.AddPredicate(i, j, 0.1).ok());
    }
  }
  NoEstimateEstimator estimator(graph);
  EXPECT_EQ(estimator.EstimateCardinality(RelSet::FirstN(3)), 1.0);
  EXPECT_EQ(estimator.EstimateCardinality(RelSet::FirstN(4)), 1.0);
}

TEST(NoEstimateEstimatorTest, EstimateAllMatchesPerSubsetLoop) {
  Result<Workload> w = CliqueWorkload(6);
  ASSERT_TRUE(w.ok());
  NoEstimateEstimator estimator(w->graph);
  std::vector<double> all;
  estimator.EstimateAll(&all);
  ASSERT_EQ(all.size(), 1ull << 6);
  for (std::uint64_t word = 1; word < (1ull << 6); ++word) {
    EXPECT_EQ(all[word], estimator.EstimateCardinality(RelSet::FromWord(word)))
        << "subset word " << word;
  }
}

// ---------------------------------------------------------------------------
// Equi-depth histograms: edge cases.

TEST(EquiDepthHistogramTest, EmptyColumnYieldsZeroBuckets) {
  const EquiDepthHistogram h = EquiDepthHistogram::Build({}, 8);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.buckets().size(), 0u);
  EXPECT_EQ(h.rows(), 0.0);
  EXPECT_EQ(h.FractionInRange(0, std::numeric_limits<std::uint32_t>::max()),
            0.0);
}

TEST(EquiDepthHistogramTest, ConstantColumnYieldsOneBucket) {
  const EquiDepthHistogram h =
      EquiDepthHistogram::Build(std::vector<std::uint32_t>(100, 42), 8);
  ASSERT_EQ(h.buckets().size(), 1u);
  EXPECT_EQ(h.buckets()[0].lo, 42u);
  EXPECT_EQ(h.buckets()[0].hi, 42u);
  EXPECT_EQ(h.rows(), 100.0);
  EXPECT_EQ(h.distinct(), 1.0);
  EXPECT_EQ(h.FractionInRange(42, 42), 1.0);
  EXPECT_EQ(h.FractionInRange(0, 41), 0.0);
}

TEST(EquiDepthHistogramTest, HeavyHitterWidensItsBucketDepth) {
  // 90% of rows carry one value; equi-depth must keep all of them in a
  // single bucket (all occurrences of one value land together) and the
  // range query over just that value must recover the heavy mass.
  std::vector<std::uint32_t> column(900, 7);
  for (std::uint32_t v = 100; v < 200; ++v) column.push_back(v);
  const EquiDepthHistogram h = EquiDepthHistogram::Build(column, 4);
  EXPECT_GE(h.buckets().size(), 1u);
  EXPECT_NEAR(h.FractionInRange(7, 7), 0.9, 0.05);
  EXPECT_NEAR(h.FractionInRange(100, 199), 0.1, 0.05);
}

TEST(EquiDepthHistogramTest, DisjointRangesClampToTheSelectivityFloor) {
  std::vector<std::uint32_t> low, high;
  for (std::uint32_t v = 0; v < 100; ++v) low.push_back(v);
  for (std::uint32_t v = 1000; v < 1100; ++v) high.push_back(v);
  const EquiDepthHistogram a = EquiDepthHistogram::Build(low, 8);
  const EquiDepthHistogram b = EquiDepthHistogram::Build(high, 8);
  EXPECT_EQ(EstimateEquiJoinSelectivity(a, b), kMinJoinSelectivity);
  // Empty columns clamp rather than estimating a true zero.
  const EquiDepthHistogram empty = EquiDepthHistogram::Build({}, 8);
  EXPECT_EQ(EstimateEquiJoinSelectivity(a, empty), kMinJoinSelectivity);
}

TEST(EquiDepthHistogramTest, IdenticalKeyColumnsRecoverSystemRSelectivity) {
  // Two copies of a dense key column 0..999: System-R's 1/max(distinct)
  // should land near 1/1000.
  std::vector<std::uint32_t> keys;
  for (std::uint32_t v = 0; v < 1000; ++v) keys.push_back(v);
  const EquiDepthHistogram a = EquiDepthHistogram::Build(keys, 32);
  const EquiDepthHistogram b = EquiDepthHistogram::Build(keys, 32);
  const double sel = EstimateEquiJoinSelectivity(a, b);
  EXPECT_GT(sel, 1e-4);
  EXPECT_LT(sel, 1e-2);
}

// ---------------------------------------------------------------------------
// SampleHistogramEstimator + the exec-layer builder.

TEST(SampleHistogramEstimatorTest, ProductFormOverEstimatedInputs) {
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.123).ok());
  SampleHistogramEstimator estimator(graph, {10.0, 20.0, 30.0},
                                     {0.01});
  EXPECT_EQ(estimator.kind(), EstimatorKind::kSampleHistogram);
  EXPECT_FALSE(estimator.exact());
  EXPECT_EQ(estimator.EdgeSelectivity(0, 1), 0.01);
  // est({0,1}) = 10 * 20 * 0.01; est({0,2}) = 10 * 30 (no edge).
  EXPECT_DOUBLE_EQ(
      estimator.EstimateCardinality(RelSet::Singleton(0).With(1)), 2.0);
  EXPECT_DOUBLE_EQ(
      estimator.EstimateCardinality(RelSet::Singleton(0).With(2)), 300.0);
  std::vector<double> all;
  estimator.EstimateAll(&all);
  ASSERT_EQ(all.size(), 8u);
  for (std::uint64_t word = 1; word < 8; ++word) {
    EXPECT_EQ(all[word], estimator.EstimateCardinality(RelSet::FromWord(word)))
        << "subset word " << word;
  }
}

TEST(BuildHistogramEstimatorTest, BuildsFromGeneratedTables) {
  Result<Workload> w = ChainWorkload(5);
  ASSERT_TRUE(w.ok());
  Result<std::vector<ExecTable>> tables =
      GenerateTables(w->catalog, w->graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  Result<std::unique_ptr<SampleHistogramEstimator>> built =
      BuildHistogramEstimator(w->graph, *tables);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SampleHistogramEstimator& estimator = **built;
  EXPECT_EQ(estimator.num_relations(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_GE(estimator.BaseCardinality(i), 1.0);
  }
  // Every estimate must be positive and finite — the downstream contract.
  for (std::uint64_t word = 1; word < (1ull << 5); ++word) {
    const double est = estimator.EstimateCardinality(RelSet::FromWord(word));
    EXPECT_GT(est, 0.0);
    EXPECT_TRUE(std::isfinite(est));
  }
}

TEST(BuildHistogramEstimatorTest, MissingColumnsDegradeToNoAssumption) {
  // Tables without join-key columns: every edge keeps selectivity 1.0.
  JoinGraph graph(2);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.5).ok());
  std::vector<ExecTable> tables;
  tables.emplace_back(0, 10);
  tables.emplace_back(1, 20);
  Result<std::unique_ptr<SampleHistogramEstimator>> built =
      BuildHistogramEstimator(graph, tables);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ((*built)->EdgeSelectivity(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(
      (*built)->EstimateCardinality(RelSet::Singleton(0).With(1)), 200.0);
}

TEST(BuildHistogramEstimatorTest, RejectsMismatchedTableSets) {
  JoinGraph graph(2);
  std::vector<ExecTable> one;
  one.emplace_back(0, 10);
  EXPECT_FALSE(BuildHistogramEstimator(graph, one).ok());
  std::vector<ExecTable> dup;
  dup.emplace_back(0, 10);
  dup.emplace_back(0, 10);
  EXPECT_FALSE(BuildHistogramEstimator(graph, dup).ok());
}

// ---------------------------------------------------------------------------
// Bit-identity: the exact estimator must be invisible to the DP.

TEST(EstimatorBitIdentityTest, PaperEstimatorLeavesDpTableUnchanged) {
  for (const auto topology : {Topology::kChain, Topology::kStar,
                              Topology::kClique}) {
    WorkloadSpec spec;
    spec.num_relations = 8;
    spec.topology = topology;
    spec.mean_cardinality = 1e4;
    spec.variability = 0.5;
    Result<Workload> w = MakeWorkload(spec);
    ASSERT_TRUE(w.ok());
    PaperFanoutEstimator estimator(w->catalog, w->graph);
    for (const CostModelKind model :
         {CostModelKind::kNaive, CostModelKind::kSortMerge,
          CostModelKind::kDiskNestedLoops}) {
      OptimizerOptions plain;
      plain.cost_model = model;
      Result<OptimizeOutcome> reference =
          OptimizeJoin(w->catalog, w->graph, plain);
      ASSERT_TRUE(reference.ok());

      OptimizerOptions with_estimator = plain;
      with_estimator.estimator = &estimator;
      Result<OptimizeOutcome> outcome =
          OptimizeJoin(w->catalog, w->graph, with_estimator);
      ASSERT_TRUE(outcome.ok());
      EXPECT_EQ(outcome->estimator, EstimatorKind::kPaperFanout);

      const fuzz::OracleVerdict tables =
          fuzz::TablesBitIdentical(outcome->table, reference->table);
      EXPECT_TRUE(tables.ok) << tables.message;
    }
  }
}

TEST(EstimatorBitIdentityTest, DifferentialHarnessSweepsAllKinds) {
  // The fuzzer's own estimator leg: paper checked for bit-identity, hist
  // and noest for valid-plan invariants, across a few generated cases.
  fuzz::FuzzerOptions options;
  options.seed = 20260809;
  fuzz::DifferentialOptions diff;
  diff.brute_force_max_n = 8;
  diff.estimators = {EstimatorKind::kPaperFanout,
                     EstimatorKind::kSampleHistogram,
                     EstimatorKind::kNoEstimate};
  for (std::uint64_t i = 0; i < 6; ++i) {
    Result<fuzz::FuzzCase> c = fuzz::GenerateCase(options, i);
    ASSERT_TRUE(c.ok());
    const fuzz::CaseVerdict verdict = fuzz::RunDifferentialCase(*c, diff);
    EXPECT_TRUE(verdict.passed) << c->label << ": " << verdict.ToString();
  }
}

// ---------------------------------------------------------------------------
// Non-exact estimators: valid plans, regret >= 1 under true recost.

TEST(EstimatorPlanTest, NonExactEstimatorsProduceValidPlans) {
  Result<Workload> w = CliqueWorkload(8);
  ASSERT_TRUE(w.ok());

  QueryOptimizerOptions exact_options;
  exact_options.collect_report = true;
  Result<OptimizedQuery> exact =
      OptimizeQuery(w->catalog, w->graph, exact_options);
  ASSERT_TRUE(exact.ok());
  ASSERT_GT(exact->cost, 0.0);
  ASSERT_TRUE(exact->report.has_value());
  EXPECT_EQ(exact->report->estimator, EstimatorKind::kPaperFanout);

  NoEstimateEstimator no_estimate(w->graph);
  Result<std::vector<ExecTable>> tables =
      GenerateTables(w->catalog, w->graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok());
  Result<std::unique_ptr<SampleHistogramEstimator>> histogram =
      BuildHistogramEstimator(w->graph, *tables);
  ASSERT_TRUE(histogram.ok());

  const struct {
    const CardinalityEstimator* estimator;
    EstimatorKind kind;
  } cases[] = {
      {&no_estimate, EstimatorKind::kNoEstimate},
      {histogram->get(), EstimatorKind::kSampleHistogram},
  };
  for (const auto& c : cases) {
    QueryOptimizerOptions options;
    options.estimator = c.estimator;
    options.collect_report = true;
    Result<OptimizedQuery> optimized =
        OptimizeQuery(w->catalog, w->graph, options);
    ASSERT_TRUE(optimized.ok()) << EstimatorKindName(c.kind);
    ASSERT_TRUE(optimized->report.has_value());
    EXPECT_EQ(optimized->report->estimator, c.kind);
    EXPECT_EQ(optimized->plan.relations(), w->catalog.AllRelations());
    // OptimizedQuery::cost is re-evaluated under the true statistics, so
    // the exact plan's cost bounds it from below (up to float jitter).
    EXPECT_TRUE(std::isfinite(optimized->cost));
    EXPECT_GE(optimized->cost, exact->cost * 0.999)
        << EstimatorKindName(c.kind);
  }
}

TEST(EstimatorPlanTest, EstimatorRelationCountMismatchIsRejected) {
  Result<Workload> small = ChainWorkload(4);
  Result<Workload> big = ChainWorkload(6);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  NoEstimateEstimator mismatched(small->graph);
  QueryOptimizerOptions options;
  options.estimator = &mismatched;
  Result<OptimizedQuery> optimized =
      OptimizeQuery(big->catalog, big->graph, options);
  EXPECT_FALSE(optimized.ok());
}

// ---------------------------------------------------------------------------
// Satellite: one invalid-cardinality error text everywhere.

constexpr char kInvalidCardinalityText[] = "has invalid cardinality";

TEST(CardinalityErrorTextTest, CatalogWorkloadAndBjqAgree) {
  // The canonical validator names the relation.
  const Status direct = ValidateRelationCardinality("users", -3.0);
  EXPECT_FALSE(direct.ok());
  EXPECT_NE(direct.message().find("users"), std::string::npos);
  EXPECT_NE(direct.message().find(kInvalidCardinalityText),
            std::string::npos);

  // Catalog::Create routes through it.
  Result<Catalog> catalog =
      Catalog::Create({{"ok", 10.0}, {"broken", 0.0}});
  ASSERT_FALSE(catalog.ok());
  EXPECT_NE(catalog.status().message().find("broken"), std::string::npos);
  EXPECT_NE(catalog.status().message().find(kInvalidCardinalityText),
            std::string::npos);

  // MakeWorkloadFromEdges routes through it when the cardinality ladder
  // overflows to infinity.
  Result<Workload> workload = MakeWorkloadFromEdges(
      4, /*mean_cardinality=*/1e308, /*variability=*/1.0, {{0, 1}});
  ASSERT_FALSE(workload.ok());
  EXPECT_NE(workload.status().message().find(kInvalidCardinalityText),
            std::string::npos);

  // The .bjq parser routes through it (wrapped in its line error).
  Result<QuerySpec> spec = ParseBjq("relation A 100\nrelation B -5\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("B"), std::string::npos);
  EXPECT_NE(spec.status().message().find(kInvalidCardinalityText),
            std::string::npos);
}

}  // namespace
}  // namespace blitz
