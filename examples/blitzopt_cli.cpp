// blitzopt: command-line join-order optimizer over .bjq query files.
//
// Usage:
//   blitzopt <query.bjq> [--execute] [--counts] [--tree] [--explain]
//           [--trace-out=<file>] [--metrics-out=<file>]
//
// --trace-out writes a Chrome trace-viewer JSON (open in chrome://tracing
// or https://ui.perfetto.dev) spanning the optimize->plan->execute
// pipeline; --metrics-out writes the metrics registry (counters, gauges,
// latency percentiles) as JSON.
//
// The .bjq format (see src/textio/bjq.h):
//   relation <name> <cardinality> [<tuple_bytes>]
//   predicate <a> <b> <selectivity>
//   costmodel <naive|sm|dnl|min>
//   threshold <initial_plan_cost_threshold>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "core/optimizer.h"
#include "exec/datagen.h"
#include "exec/executor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/algorithm_choice.h"
#include "plan/explain.h"
#include "plan/plan.h"
#include "textio/bjq.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: blitzopt <query.bjq> [--execute] [--counts] "
               "[--tree] [--explain] [--trace-out=<file>] "
               "[--metrics-out=<file>]\n");
  return 2;
}

/// Installs/uninstalls the global trace recorder and metrics registry for
/// the duration of the run and writes the requested files at exit.
class ObsSession {
 public:
  ObsSession(std::string trace_path, std::string metrics_path)
      : trace_path_(std::move(trace_path)),
        metrics_path_(std::move(metrics_path)) {
    if (!trace_path_.empty()) blitz::SetGlobalTraceRecorder(&recorder_);
    if (!metrics_path_.empty()) blitz::SetGlobalMetrics(&metrics_);
  }

  ~ObsSession() {
    blitz::SetGlobalTraceRecorder(nullptr);
    blitz::SetGlobalMetrics(nullptr);
    if (!trace_path_.empty()) {
      const blitz::Status status =
          blitz::WriteChromeTraceFile(recorder_, trace_path_);
      if (status.ok()) {
        std::printf("trace written to %s (%zu spans)\n", trace_path_.c_str(),
                    recorder_.num_events());
      } else {
        std::fprintf(stderr, "trace export failed: %s\n",
                     status.ToString().c_str());
      }
    }
    if (!metrics_path_.empty()) {
      const blitz::Status status =
          blitz::WriteMetricsJsonFile(metrics_, metrics_path_);
      if (status.ok()) {
        std::printf("metrics written to %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "metrics export failed: %s\n",
                     status.ToString().c_str());
      }
    }
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  blitz::TraceRecorder recorder_;
  blitz::MetricsRegistry metrics_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace blitz;
  if (argc < 2) return Usage();

  std::string path;
  std::string trace_out;
  std::string metrics_out;
  bool execute = false;
  bool counts = false;
  bool tree = false;
  bool explain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--execute") == 0) {
      execute = true;
    } else if (std::strcmp(argv[i], "--counts") == 0) {
      counts = true;
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      tree = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();
  if ((!trace_out.empty() && trace_out == metrics_out)) {
    std::fprintf(stderr,
                 "error: --trace-out and --metrics-out must differ\n");
    return 2;
  }
  ObsSession obs(trace_out, metrics_out);

  Result<QuerySpec> spec = LoadBjqFile(path);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("%d relations, %d predicates, cost model %s\n",
              spec->catalog.num_relations(), spec->graph.num_predicates(),
              CostModelKindToString(spec->cost_model));

  OptimizerOptions options;
  options.cost_model = spec->cost_model;
  options.count_operations = counts;

  Result<OptimizeOutcome> outcome = Status::Internal("unset");
  int passes = 1;
  if (spec->threshold.has_value()) {
    ThresholdLadderOptions ladder;
    ladder.initial_threshold = *spec->threshold;
    Result<LadderOutcome> laddered = OptimizeJoinWithThresholds(
        spec->catalog, spec->graph, options, ladder);
    if (!laddered.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   laddered.status().ToString().c_str());
      return 1;
    }
    passes = laddered->passes;
    outcome = std::move(laddered->outcome);
  } else {
    outcome = OptimizeJoin(spec->catalog, spec->graph, options);
  }
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  ChooseAlgorithms(&plan.value(), spec->catalog, spec->graph,
                   spec->cost_model);

  std::printf("plan: %s\n", plan->ToString(&spec->catalog).c_str());
  if (tree) std::printf("%s", plan->ToTreeString(&spec->catalog).c_str());
  if (explain) {
    std::printf("%s", ExplainPlan(*plan, spec->catalog, spec->graph,
                                  spec->cost_model)
                          .c_str());
  }
  std::printf("cost: %g (%d optimizer pass%s)\n",
              static_cast<double>(outcome->cost), passes,
              passes == 1 ? "" : "es");
  std::printf("estimated result cardinality: %g\n",
              outcome->table.card(spec->catalog.AllRelations()));
  if (counts) {
    std::printf("operation counts: %s\n",
                outcome->counters.ToString().c_str());
  }

  if (execute) {
    // Refuse to materialize unreasonably large intermediates: the bundled
    // engine is a validator, not a warehouse.
    constexpr double kMaxRows = 5e6;
    double biggest = 0;
    std::function<void(const PlanNode&)> scan = [&](const PlanNode& node) {
      biggest = std::max(biggest, outcome->table.card(node.set));
      if (!node.is_leaf()) {
        scan(*node.left);
        scan(*node.right);
      }
    };
    scan(plan->root());
    if (biggest > kMaxRows) {
      std::printf(
          "skipping --execute: an intermediate result is estimated at %g "
          "rows (limit %g)\n",
          biggest, kMaxRows);
      return 0;
    }
    Result<std::vector<ExecTable>> tables =
        GenerateTables(spec->catalog, spec->graph, DataGenOptions{});
    if (!tables.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   tables.status().ToString().c_str());
      return 1;
    }
    Result<ExecutionResult> result =
        ExecutePlan(*plan, *tables, spec->graph);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("executed on synthetic data: %llu result rows\n",
                static_cast<unsigned long long>(result->result.num_rows()));
  }
  return 0;
}
