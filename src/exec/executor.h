#ifndef BLITZ_EXEC_EXECUTOR_H_
#define BLITZ_EXEC_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/operators.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Per-join-node execution statistics, in plan pre-order.
struct NodeStats {
  RelSet set;
  std::uint64_t output_rows = 0;
  JoinAlgorithm algorithm = JoinAlgorithm::kUnspecified;

  /// Wall time of this join including its inputs (subtree time).
  double seconds = 0;
};

/// Result of executing a plan.
struct ExecutionResult {
  RowSet result;
  std::vector<NodeStats> node_stats;
};

/// Executes `plan` over the base tables, applying at each join node exactly
/// the predicates spanning its operands (Section 5.1: "there is no benefit
/// in deferring the application of a predicate once its referent relations
/// have become available"). Each node uses its attached JoinAlgorithm
/// (kUnspecified defaults to hash when predicates exist, else nested loops).
/// `tables[i]` must be the table for relation i.
Result<ExecutionResult> ExecutePlan(const Plan& plan,
                                    const std::vector<ExecTable>& tables,
                                    const JoinGraph& graph);

/// Canonical fingerprint of a result for cross-plan comparison: the sorted
/// list of result rows (each row already lists base row-ids in ascending
/// relation order). Two plans over the same tables and graph are equivalent
/// iff their fingerprints are equal.
std::vector<std::vector<std::uint32_t>> ResultFingerprint(const RowSet& rows);

}  // namespace blitz

#endif  // BLITZ_EXEC_EXECUTOR_H_
