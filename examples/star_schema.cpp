// Data-warehouse scenario: a star-schema query whose optimal plan contains
// a Cartesian product — the motivating case for never excluding products a
// priori (Sections 1 and 7 of the paper).
//
// A large fact table joins four dimension tables through selective foreign
// keys. Two of the dimensions are tiny after local filters; producting them
// *before* touching the fact table multiplies their selectivities into a
// single probe and is dramatically cheaper than any product-free plan. We
// run both the full bushy-with-products optimizer and the conventional
// connected-subgraphs-only optimizer and compare.

#include <cstdio>

#include "baseline/dpsub.h"
#include "catalog/catalog.h"
#include "core/optimizer.h"
#include "plan/evaluate.h"
#include "plan/plan.h"
#include "query/join_graph.h"

int main() {
  using namespace blitz;

  Result<Catalog> catalog = Catalog::Create({
      {"sales", 10000000, 64},   // fact table
      {"store", 4, 64},          // tiny dimension (after region filter)
      {"promo", 6, 64},          // tiny dimension (after campaign filter)
      {"item", 40000, 64},       // medium dimension
      {"customer", 200000, 64},  // large dimension
  });
  if (!catalog.ok()) return 1;

  JoinGraph graph(5);
  graph.AddPredicate(0, 1, 1.0 / 4);       // sales.store_id = store.id
  graph.AddPredicate(0, 2, 1.0 / 6);       // sales.promo_id = promo.id
  graph.AddPredicate(0, 3, 1.0 / 40000);   // sales.item_id = item.id
  graph.AddPredicate(0, 4, 1.0 / 200000);  // sales.cust_id = customer.id

  const CostModelKind model = CostModelKind::kNaive;
  OptimizerOptions options;
  options.cost_model = model;

  Result<OptimizeOutcome> bushy = OptimizeJoin(*catalog, graph, options);
  if (!bushy.ok() || !bushy->found_plan()) return 1;
  Result<Plan> bushy_plan = Plan::ExtractFromTable(bushy->table);
  if (!bushy_plan.ok()) return 1;

  Result<DpSubResult> no_products =
      OptimizeDpSubNoProducts(*catalog, graph, model);

  std::printf("=== star schema: 10M-row fact, 4 dimensions ===\n\n");
  std::printf("bushy + products (blitzsplit):\n%s",
              bushy_plan->ToTreeString(&catalog.value()).c_str());
  std::printf("  cost %.4g, Cartesian products in plan: %d\n\n",
              static_cast<double>(bushy->cost),
              bushy_plan->CountCartesianProducts(graph));

  if (no_products.ok()) {
    std::printf("connected subgraphs only (products excluded):\n%s",
                no_products->plan.ToTreeString(&catalog.value()).c_str());
    std::printf("  cost %.4g\n\n", no_products->cost);
    std::printf("product-free plan costs %.1fx the true optimum\n",
                no_products->cost / static_cast<double>(bushy->cost));
  } else {
    std::printf("product-free optimization failed: %s\n",
                no_products.status().ToString().c_str());
  }
  return 0;
}
