file(REMOVE_RECURSE
  "CMakeFiles/blitzsplit_cartesian_test.dir/blitzsplit_cartesian_test.cc.o"
  "CMakeFiles/blitzsplit_cartesian_test.dir/blitzsplit_cartesian_test.cc.o.d"
  "blitzsplit_cartesian_test"
  "blitzsplit_cartesian_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitzsplit_cartesian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
