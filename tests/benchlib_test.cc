#include <cstdlib>

#include <gtest/gtest.h>

#include "benchlib/sweep.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"

namespace blitz {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

TEST(TimeItTest, HonorsMinimumRepetitions) {
  int calls = 0;
  const TimingResult result = TimeIt([&] { ++calls; }, 0.0, 5);
  EXPECT_GE(result.repetitions, 5);
  EXPECT_EQ(calls, result.repetitions);
  EXPECT_GE(result.seconds_per_run, 0.0);
}

TEST(TimeItTest, AccumulatesUntilFloor) {
  const TimingResult result = TimeIt(
      [] {
        volatile double sink = 0;
        for (int i = 0; i < 1000; ++i) sink += i;
      },
      0.01);
  EXPECT_GE(result.total_seconds, 0.01);
  EXPECT_GE(result.repetitions, 1);
}

TEST(BenchEnvTest, MinSecondsFallbackAndOverride) {
  unsetenv("BLITZ_BENCH_MIN_SECONDS");
  EXPECT_DOUBLE_EQ(BenchMinSeconds(0.25), 0.25);
  setenv("BLITZ_BENCH_MIN_SECONDS", "1.5", 1);
  EXPECT_DOUBLE_EQ(BenchMinSeconds(0.25), 1.5);
  setenv("BLITZ_BENCH_MIN_SECONDS", "junk", 1);
  EXPECT_DOUBLE_EQ(BenchMinSeconds(0.25), 0.25);
  unsetenv("BLITZ_BENCH_MIN_SECONDS");
}

TEST(BenchEnvTest, EnvInt) {
  unsetenv("BLITZ_TEST_KNOB");
  EXPECT_EQ(BenchEnvInt("BLITZ_TEST_KNOB", 13), 13);
  setenv("BLITZ_TEST_KNOB", "21", 1);
  EXPECT_EQ(BenchEnvInt("BLITZ_TEST_KNOB", 13), 21);
  unsetenv("BLITZ_TEST_KNOB");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table;
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numeric column right-aligned: "22.5" should appear at line end.
  EXPECT_NE(out.find("22.5\n"), std::string::npos) << out;
}

TEST(TextTableTest, CsvOutput) {
  TextTable table;
  table.SetHeader({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TextTableTest, EmptyTableRendersEmpty) {
  TextTable table;
  EXPECT_EQ(table.ToString(), "");
  EXPECT_EQ(table.ToCsv(), "");
}

TEST(SweepTest, SmallSweepProducesAllGridPoints) {
  SweepConfig config;
  config.num_relations = 9;
  config.models = {CostModelKind::kNaive, CostModelKind::kSortMerge};
  config.topologies = {Topology::kChain, Topology::kStar};
  config.mean_cardinalities = {10, 1000};
  config.variabilities = {0, 1};
  config.min_seconds_per_point = 0.0;
  Result<std::vector<SweepPoint>> points = RunSweep(config);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  EXPECT_EQ(points->size(), 16u);
  for (const SweepPoint& point : *points) {
    EXPECT_GT(point.seconds, 0.0);
    EXPECT_GE(point.repetitions, 1);
    EXPECT_LT(point.plan_cost, kRejectedCost);
    EXPECT_EQ(point.passes, 1);
  }
  // Ordering: model axis outermost.
  EXPECT_EQ((*points)[0].model, CostModelKind::kNaive);
  EXPECT_EQ((*points)[8].model, CostModelKind::kSortMerge);
}

TEST(SweepTest, ThresholdSweepRecordsPasses) {
  SweepConfig config;
  config.num_relations = 9;
  config.models = {CostModelKind::kNaive};
  config.topologies = {Topology::kChain};
  config.mean_cardinalities = {100};
  config.variabilities = {0};
  config.min_seconds_per_point = 0.0;
  config.threshold = 1.0f;  // almost certainly requires re-passes
  config.threshold_growth = 100.0f;
  Result<std::vector<SweepPoint>> points = RunSweep(config);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 1u);
  EXPECT_GE((*points)[0].passes, 1);
  EXPECT_LT((*points)[0].plan_cost, kRejectedCost);
}

TEST(SweepTest, InvalidSpecSurfacesError) {
  SweepConfig config;
  config.num_relations = 9;
  config.models = {CostModelKind::kNaive};
  config.topologies = {Topology::kChain};
  config.mean_cardinalities = {0.5};  // invalid: below 1
  config.variabilities = {0};
  EXPECT_FALSE(RunSweep(config).ok());
}

}  // namespace
}  // namespace blitz
