#include "plan/algorithm_choice.h"

#include <functional>

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "plan/evaluate.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::Figure3Graph;
using ::blitz::testing::Table1Catalog;

TEST(AlgorithmChoiceTest, ProductsMarkedRegardlessOfModel) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();  // no B-D edge
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl}) {
    Plan plan = Plan::Join(Plan::Leaf(1), Plan::Leaf(3));  // B x D: no edge
    ChooseAlgorithms(&plan, catalog, graph, kind);
    EXPECT_EQ(plan.root().algorithm, JoinAlgorithm::kCartesianProduct);
  }
}

TEST(AlgorithmChoiceTest, SingleAlgorithmModelsAttachUniformly) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  Plan plan = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));  // A-B edge exists

  ChooseAlgorithms(&plan, catalog, graph, CostModelKind::kSortMerge);
  EXPECT_EQ(plan.root().algorithm, JoinAlgorithm::kSortMerge);

  ChooseAlgorithms(&plan, catalog, graph, CostModelKind::kDiskNestedLoops);
  EXPECT_EQ(plan.root().algorithm, JoinAlgorithm::kNestedLoops);

  ChooseAlgorithms(&plan, catalog, graph, CostModelKind::kNaive);
  EXPECT_EQ(plan.root().algorithm, JoinAlgorithm::kHash);
}

TEST(AlgorithmChoiceTest, MinModelPicksTheCheaperAlgorithmPerNode) {
  // Section 6.5: "a single traversal of the optimal plan suffices to attach
  // the appropriate algorithm to each join node."
  Result<Catalog> catalog =
      Catalog::FromCardinalities({100, 100, 1000, 1000});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(4);
  // R0-R1 with an exploding output (selectivity 1, out = 10000) — sm wins
  // because dnl pays 2|out|/K on the big output; R2-R3 highly selective,
  // small output — dnl wins because sm pays the sort of two 1000-tuple
  // inputs.
  ASSERT_TRUE(graph.AddPredicate(0, 1, 1.0).ok());
  ASSERT_TRUE(graph.AddPredicate(2, 3, 1e-6).ok());
  ASSERT_TRUE(graph.AddPredicate(0, 2, 0.001).ok());

  Plan plan = Plan::Join(Plan::Join(Plan::Leaf(0), Plan::Leaf(1)),
                         Plan::Join(Plan::Leaf(2), Plan::Leaf(3)));
  ChooseAlgorithms(&plan, *catalog, graph, CostModelKind::kMinSmDnl);

  const PlanNode& left = *plan.root().left;    // R0 x R1, out = 10000
  const PlanNode& right = *plan.root().right;  // R2 x R3, out = 1
  // Verify the attached algorithm really is the argmin of the two models.
  const double left_sm =
      EvalJoinCost(CostModelKind::kSortMerge, 10000, 100, 100);
  const double left_dnl =
      EvalJoinCost(CostModelKind::kDiskNestedLoops, 10000, 100, 100);
  EXPECT_EQ(left.algorithm, left_sm <= left_dnl
                                ? JoinAlgorithm::kSortMerge
                                : JoinAlgorithm::kNestedLoops);
  const double right_sm =
      EvalJoinCost(CostModelKind::kSortMerge, 1, 1000, 1000);
  const double right_dnl =
      EvalJoinCost(CostModelKind::kDiskNestedLoops, 1, 1000, 1000);
  EXPECT_EQ(right.algorithm, right_sm <= right_dnl
                                 ? JoinAlgorithm::kSortMerge
                                 : JoinAlgorithm::kNestedLoops);
  // And that the two nodes actually got different algorithms.
  EXPECT_NE(left.algorithm, right.algorithm);
}

TEST(AlgorithmChoiceTest, AnnotatesEveryJoinNodeOfExtractedPlan) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  OptimizerOptions options;
  options.cost_model = CostModelKind::kMinSmDnl;
  Result<OptimizeOutcome> outcome = OptimizeJoin(catalog, graph, options);
  ASSERT_TRUE(outcome.ok());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  ChooseAlgorithms(&plan.value(), catalog, graph, CostModelKind::kMinSmDnl);

  std::function<void(const PlanNode&)> check = [&](const PlanNode& node) {
    if (node.is_leaf()) return;
    EXPECT_NE(node.algorithm, JoinAlgorithm::kUnspecified);
    check(*node.left);
    check(*node.right);
  };
  check(plan->root());
}

}  // namespace
}  // namespace blitz
