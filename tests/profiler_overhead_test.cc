// The zero-cost-when-disabled contract of the performance observatory
// (ISSUE satellite: "compiled-out profiling adds <=1% to a fig2 n=13
// run"). The compile-time half lives in profiler_test.cc (static_asserts
// that NoInstrumentation is empty and unprofiled); this microbench-backed
// half guards the runtime surface a future change could regress: merely
// *installing* a global Profiler must not slow an unprofiled DP pass,
// because the disabled path consults nothing per subset — the Prof hooks
// are compiled out and the only global check is one atomic load per
// OptimizeQuery, not per DP operation.
//
// Methodology: min-of-k (noise is strictly additive) over a fig2-style
// n=13 Cartesian pass, A/B'd in interleaved order. The quiet-machine
// budget is 1%; the assertion allows generous CI headroom (a shared
// runner can easily jitter 10-20% between back-to-back identical runs).
// The pre/post-PR binary comparison is recorded in DESIGN.md section 11.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "benchlib/timing.h"
#include "catalog/catalog.h"
#include "common/check.h"
#include "core/optimizer.h"
#include "obs/profiler/profiler.h"

// Sanitizers distort relative timings by an order of magnitude; the
// contract is about production builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define BLITZ_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define BLITZ_SANITIZED_BUILD 1
#endif
#endif

namespace blitz {
namespace {

double MinOfK(const Catalog& catalog, const OptimizerOptions& options,
              int samples) {
  double best = 0;
  for (int sample = 0; sample < samples; ++sample) {
    const Stopwatch watch;
    Result<OptimizeOutcome> outcome = OptimizeCartesian(catalog, options);
    BLITZ_CHECK(outcome.ok());
    const double seconds = watch.ElapsedSeconds();
    if (sample == 0 || seconds < best) best = seconds;
  }
  return best;
}

TEST(ProfilerOverheadTest, DisabledProfilingIsFreeOnTheHotLoop) {
#if defined(BLITZ_SANITIZED_BUILD)
  GTEST_SKIP() << "timing contract is for unsanitized builds";
#else
#if !defined(NDEBUG)
  GTEST_SKIP() << "timing contract is for optimized builds";
#endif
  const int n = 13;
  const int samples = 5;
  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(n, 100.0));
  ASSERT_TRUE(catalog.ok());
  OptimizerOptions options;
  options.simd = SimdLevel::kScalar;

  // Warm caches and page in both code paths before timing.
  (void)MinOfK(*catalog, options, 1);

  // Interleave A/B rounds so slow drift (thermal, noisy neighbor) hits
  // both arms equally; min-of-k then discards the additive noise.
  double without_profiler = 0;
  double with_profiler = 0;
  Profiler profiler;
  for (int round = 0; round < samples; ++round) {
    const double a = MinOfK(*catalog, options, 1);
    SetGlobalProfiler(&profiler);
    const double b = MinOfK(*catalog, options, 1);
    SetGlobalProfiler(nullptr);
    without_profiler =
        round == 0 ? a : std::min(without_profiler, a);
    with_profiler = round == 0 ? b : std::min(with_profiler, b);
  }

  ASSERT_GT(without_profiler, 0.0);
  const double ratio = with_profiler / without_profiler;
  // Quiet-machine budget 1.01; asserted with CI-noise headroom. A real
  // regression (a per-subset global check slipping into the kernel) shows
  // up as a consistent multi-percent hit and trips this even on CI.
  EXPECT_LT(ratio, 1.25) << "disabled-profiling overhead ratio " << ratio;
#endif
}

}  // namespace
}  // namespace blitz
