// Edge-case tests for the epoll connection multiplexer (serve/mux.h):
// fragmented frames, cross-connection error isolation, mid-frame
// disconnects, the slow-loris write timeout, /statz over the mux,
// serve.epoll.wait fault injection, and a 1k-socket SIGTERM-style drain
// with exactly-once response accounting.

#include "serve/mux.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "governor/faultpoints.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/stream.h"
#include "serve/wire.h"

namespace blitz {
namespace {

constexpr char kSmallBjq[] =
    "relation A 100\nrelation B 200\npredicate A B 0.1\n";

/// A unix-socket listener plus the wake pipe and mux thread: the blitzd
/// serving topology in miniature. Connections are blocking FdStreams on the
/// client side; the mux side is nonblocking by construction.
class MuxHarness {
 public:
  explicit MuxHarness(ServerOptions server_options = ServerOptions{},
                      MuxOptions mux_options = MuxOptions{}) {
    std::snprintf(path_, sizeof(path_), "/tmp/blitz_mux_test_%d_%p.sock",
                  ::getpid(), static_cast<void*>(this));
    ::unlink(path_);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path_, std::strlen(path_) + 1);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0)
        << strerror(errno);
    EXPECT_EQ(::listen(listen_fd_, 1024), 0);
    EXPECT_EQ(::pipe(wake_pipe_), 0);

    Result<std::unique_ptr<BlitzServer>> server =
        BlitzServer::Create(server_options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);

    mux_options.listen_fd = listen_fd_;
    mux_options.wake_fd = wake_pipe_[0];
    thread_ = std::thread([this, mux_options] {
      served_ = ServeMultiplexed(server_.get(), mux_options);
    });
  }

  ~MuxHarness() {
    Finish();
    ::close(listen_fd_);
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    ::unlink(path_);
  }

  /// Fires the wake fd (the SIGTERM analog) and joins the mux thread.
  Status Finish() {
    if (thread_.joinable()) {
      const char byte = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
      thread_.join();
    }
    return served_;
  }

  /// Opens one blocking client connection.
  int Connect() {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path_, std::strlen(path_) + 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << strerror(errno);
    return fd;
  }

  BlitzServer* server() { return server_.get(); }

 private:
  char path_[128];
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::unique_ptr<BlitzServer> server_;
  std::thread thread_;
  Status served_ = Status::OK();
};

TEST(ServeMuxTest, AnswersRequestsAndDrainsCleanly) {
  MuxHarness harness;
  const int fd = harness.Connect();
  FdStream stream(fd, fd, /*own_fds=*/true);
  BlitzClient client(&stream, BlitzClient::Options{});
  Result<ServeReply> reply = client.Optimize(kSmallBjq);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->plan, "(A x B)");
  EXPECT_FALSE(reply->cached);
  Result<ServeReply> again = client.Optimize(kSmallBjq);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cached);
  EXPECT_EQ(again->plan, reply->plan);
  EXPECT_EQ(again->cost, reply->cost);
  stream.Close();
  EXPECT_TRUE(harness.Finish().ok());
}

TEST(ServeMuxTest, ReassemblesByteAtATimeFrames) {
  MuxHarness harness;
  const int fd = harness.Connect();
  RequestFrame frame;
  frame.tenant = "drip";
  frame.id = 7;
  frame.body = kSmallBjq;
  const std::string encoded = EncodeRequestFrame(frame);
  for (char c : encoded) {
    ASSERT_EQ(::send(fd, &c, 1, 0), 1);
    // A short pause every few bytes so the mux really sees fragments.
    if ((c & 3) == 0) std::this_thread::yield();
  }
  FdStream stream(fd, fd, /*own_fds=*/true);
  FrameReader reader(&stream, WireLimits{});
  Result<std::optional<ResponseFrame>> response = reader.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->has_value());
  EXPECT_EQ((*response)->id, 7u);
  EXPECT_EQ((*response)->code, StatusCode::kOk);
  stream.Close();
  EXPECT_TRUE(harness.Finish().ok());
}

TEST(ServeMuxTest, GarbageOnOneConnectionDoesNotPoisonAnother) {
  MuxHarness harness;
  const int bad_fd = harness.Connect();
  const int good_fd = harness.Connect();

  // The good connection starts a legitimate request...
  FdStream good(good_fd, good_fd, /*own_fds=*/true);
  BlitzClient client(&good, BlitzClient::Options{});
  // ...while the bad one interleaves garbage.
  ASSERT_GT(::send(bad_fd, "utter garbage, not a frame\n", 27, 0), 0);

  Result<ServeReply> reply = client.Optimize(kSmallBjq);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->plan, "(A x B)");

  // The bad connection got the id-0 protocol error and was closed.
  FdStream bad(bad_fd, bad_fd, /*own_fds=*/true);
  FrameReader reader(&bad, WireLimits{});
  Result<std::optional<ResponseFrame>> response = reader.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->has_value());
  EXPECT_EQ((*response)->id, 0u);
  EXPECT_EQ((*response)->code, StatusCode::kInvalidArgument);
  Result<std::optional<ResponseFrame>> eof = reader.ReadResponse();
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof->has_value());

  good.Close();
  EXPECT_TRUE(harness.Finish().ok());
}

TEST(ServeMuxTest, MidFrameDisconnectIsHarmless) {
  MuxHarness harness;
  {
    const int fd = harness.Connect();
    // A header promising 1000 body bytes, then only a few, then gone.
    const std::string partial = "blitzq1 ghost 1 1000\nrelation A";
    ASSERT_GT(::send(fd, partial.data(), partial.size(), 0), 0);
    ::close(fd);
  }
  // The mux must shrug it off and keep serving.
  const int fd = harness.Connect();
  FdStream stream(fd, fd, /*own_fds=*/true);
  BlitzClient client(&stream, BlitzClient::Options{});
  Result<ServeReply> reply = client.Optimize(kSmallBjq);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  stream.Close();
  EXPECT_TRUE(harness.Finish().ok());
}

TEST(ServeMuxTest, StatzIsServedOverTheMux) {
  MuxHarness harness;
  const int fd = harness.Connect();
  FdStream stream(fd, fd, /*own_fds=*/true);
  BlitzClient client(&stream, BlitzClient::Options{});
  ASSERT_TRUE(client.Optimize(kSmallBjq).ok());
  ASSERT_TRUE(client.Optimize(kSmallBjq).ok());  // Warm: a cache hit.
  Result<std::string> statz = client.Statz();
  ASSERT_TRUE(statz.ok()) << statz.status().ToString();
  EXPECT_NE(statz->find("requests_answered 2"), std::string::npos) << *statz;
  EXPECT_NE(statz->find("cache_hits 1"), std::string::npos) << *statz;
  EXPECT_NE(statz->find("cache_inserts 1"), std::string::npos) << *statz;
  stream.Close();
  EXPECT_TRUE(harness.Finish().ok());
}

TEST(ServeMuxTest, SlowLorisPeerForfeitsItsConnection) {
  MuxOptions mux_options;
  mux_options.write_timeout_ms = 200;
  MuxHarness harness(ServerOptions{}, mux_options);

  const int fd = harness.Connect();
  // Shrink the receive window so pending responses overflow the socket.
  const int tiny = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));

  // Pipeline many requests and never read a byte.
  RequestFrame frame;
  frame.tenant = "loris";
  frame.body = kSmallBjq;
  // Enough pipelined responses (~115 B each) to overflow the server side's
  // default unix-socket send buffer, forcing EAGAIN and the stall clock.
  for (std::uint64_t id = 1; id <= 4000; ++id) {
    frame.id = id;
    const std::string encoded = EncodeRequestFrame(frame);
    if (::send(fd, encoded.data(), encoded.size(), MSG_NOSIGNAL) < 0) break;
  }

  // Crucially, do NOT read yet: a loris never does. The pending responses
  // overflow the socket, the mux stalls on EAGAIN, and after
  // write_timeout_ms the connection is killed. Only then drain what was
  // buffered and observe the EOF.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Closed: the timeout fired.
  }
  ::close(fd);

  // And the rest of the world is unaffected.
  const int good_fd = harness.Connect();
  FdStream stream(good_fd, good_fd, /*own_fds=*/true);
  BlitzClient client(&stream, BlitzClient::Options{});
  EXPECT_TRUE(client.Optimize(kSmallBjq).ok());
  stream.Close();
  EXPECT_TRUE(harness.Finish().ok());
}

TEST(ServeMuxTest, EpollWaitFailStatusFaultDrainsGracefully) {
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);

  MuxHarness harness;
  const int fd = harness.Connect();
  FdStream stream(fd, fd, /*own_fds=*/true);
  BlitzClient client(&stream, BlitzClient::Options{});
  ASSERT_TRUE(client.Optimize(kSmallBjq).ok());

  FaultSpec spec;
  spec.kind = FaultKind::kFailStatus;
  spec.status = Status::Internal("injected epoll failure");
  registry.Arm(kFaultServeEpollWait, spec);

  // The loop hits the fault on its next wait cycle and starts the drain;
  // our connection is closed once everything submitted is answered.
  char buf[256];
  Result<std::size_t> n = stream.Read(buf, sizeof(buf));
  while (n.ok() && *n > 0) n = stream.Read(buf, sizeof(buf));

  const Status served = harness.Finish();
  EXPECT_FALSE(served.ok());
  EXPECT_NE(served.message().find("injected epoll failure"), std::string::npos)
      << served.ToString();
}

TEST(ServeMuxTest, TransientEpollFaultSkipsOneCycleAndKeepsServing) {
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);
  FaultSpec spec;
  spec.kind = FaultKind::kClockSkew;  // Any non-kFailStatus kind: a no-op
  spec.times = 3;                     // cycle, not a drain.
  registry.Arm(kFaultServeEpollWait, spec);

  MuxHarness harness;
  const int fd = harness.Connect();
  FdStream stream(fd, fd, /*own_fds=*/true);
  BlitzClient client(&stream, BlitzClient::Options{});
  Result<ServeReply> reply = client.Optimize(kSmallBjq);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  stream.Close();
  EXPECT_TRUE(harness.Finish().ok());
  EXPECT_GE(registry.hits(kFaultServeEpollWait), 3u);
}

// The headline property: 1k concurrent sockets, one request each, drain
// mid-traffic — every submitted request is answered exactly once and every
// connection sees clean EOF afterwards.
TEST(ServeMuxTest, ThousandSocketDrainAnswersEverythingExactlyOnce) {
  ServerOptions server_options;
  server_options.admission.default_quota.max_in_flight = 4096;
  server_options.max_queue = 4096;
  MuxHarness harness(server_options);

  constexpr int kConns = 1000;
  std::vector<int> fds(kConns, -1);
  RequestFrame frame;
  frame.tenant = "horde";
  frame.body = kSmallBjq;
  for (int i = 0; i < kConns; ++i) {
    fds[i] = harness.Connect();
    frame.id = static_cast<std::uint64_t>(i) + 1;
    const std::string encoded = EncodeRequestFrame(frame);
    ASSERT_EQ(::send(fds[i], encoded.data(), encoded.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(encoded.size()));
  }

  // Drain while traffic is still in flight. A request still sitting in a
  // socket buffer at drain time is legitimately dropped (never admitted),
  // so exactly-once means: no connection sees more than one response, and
  // the total delivered equals the total the server answered.
  std::thread finisher([&harness] { (void)harness.Finish(); });

  int answered = 0;
  for (int i = 0; i < kConns; ++i) {
    FdStream stream(fds[i], fds[i], /*own_fds=*/true);
    FrameReader reader(&stream, WireLimits{});
    int responses = 0;
    for (;;) {
      Result<std::optional<ResponseFrame>> response = reader.ReadResponse();
      if (!response.ok()) {
        // A drain-time close that leaves our request unread in the server's
        // receive queue surfaces as ECONNRESET rather than a clean FIN (the
        // request was never admitted, so no response is owed). Any response
        // the server did write was queued before the close and is delivered
        // ahead of the error, so this branch never swallows one.
        EXPECT_EQ(response.status().code(), StatusCode::kUnavailable)
            << "conn " << i << ": " << response.status().ToString();
        break;
      }
      if (!response->has_value()) break;  // Clean EOF.
      if ((*response)->id != 0) {
        EXPECT_EQ((*response)->id, static_cast<std::uint64_t>(i) + 1);
      }
      ++responses;
    }
    EXPECT_LE(responses, 1) << "conn " << i;
    answered += responses;
  }
  finisher.join();
  EXPECT_GE(answered, 1);
  EXPECT_EQ(harness.server()->requests_answered(),
            static_cast<std::uint64_t>(answered));
}

}  // namespace
}  // namespace blitz
