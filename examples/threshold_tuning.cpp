// Plan-cost thresholds in practice (Section 6.4): simulate float overflow
// at a configurable cost threshold so best-split searches are skipped for
// subsets that cannot possibly yield a cheap plan; if no complete plan
// survives, escalate the threshold and re-optimize.
//
// This example optimizes a 15-relation chain query three ways — unbounded,
// with a well-chosen threshold, and through the automatic escalation
// ladder — and reports times, passes, and the (identical) plan costs.

#include <cstdio>

#include "benchlib/timing.h"
#include "core/optimizer.h"
#include "plan/plan.h"
#include "query/workload.h"

int main() {
  using namespace blitz;

  WorkloadSpec spec;
  spec.num_relations = 15;
  spec.topology = Topology::kChain;
  spec.mean_cardinality = 1e6;
  spec.variability = 0.5;
  Result<Workload> workload = MakeWorkload(spec);
  if (!workload.ok()) return 1;
  const Catalog& catalog = workload->catalog;
  const JoinGraph& graph = workload->graph;

  std::printf("workload: %s\n\n", spec.ToString().c_str());

  // 1. Unbounded optimization (only genuine float overflow rejects plans).
  OptimizerOptions unbounded;
  float unbounded_cost = 0;
  const TimingResult t_unbounded = TimeIt(
      [&] {
        Result<OptimizeOutcome> outcome =
            OptimizeJoin(catalog, graph, unbounded);
        if (outcome.ok()) unbounded_cost = outcome->cost;
      },
      0.2);
  std::printf("unbounded:        %6.1f ms, cost %.6g\n",
              t_unbounded.seconds_per_run * 1e3,
              static_cast<double>(unbounded_cost));

  // 2. Single pass with a threshold comfortably above the optimum.
  OptimizerOptions thresholded = unbounded;
  thresholded.cost_threshold = unbounded_cost * 4;
  float thresholded_cost = 0;
  const TimingResult t_thresholded = TimeIt(
      [&] {
        Result<OptimizeOutcome> outcome =
            OptimizeJoin(catalog, graph, thresholded);
        if (outcome.ok()) thresholded_cost = outcome->cost;
      },
      0.2);
  std::printf("threshold 4*opt:  %6.1f ms, cost %.6g  (%.1fx faster)\n",
              t_thresholded.seconds_per_run * 1e3,
              static_cast<double>(thresholded_cost),
              t_unbounded.seconds_per_run / t_thresholded.seconds_per_run);

  // 3. The automatic ladder: start far too low, escalate until a plan
  //    survives. Queries with cheap plans are optimized quickly; expensive
  //    ones pay for extra passes (but will be long-running anyway).
  ThresholdLadderOptions ladder;
  ladder.initial_threshold = 1e3f;
  ladder.growth_factor = 1e3f;
  int passes = 0;
  float ladder_cost = 0;
  const TimingResult t_ladder = TimeIt(
      [&] {
        Result<LadderOutcome> outcome =
            OptimizeJoinWithThresholds(catalog, graph, unbounded, ladder);
        if (outcome.ok()) {
          passes = outcome->passes;
          ladder_cost = outcome->outcome.cost;
        }
      },
      0.2);
  std::printf("ladder from 1e3:  %6.1f ms, cost %.6g  (%d passes)\n",
              t_ladder.seconds_per_run * 1e3,
              static_cast<double>(ladder_cost), passes);

  if (unbounded_cost == thresholded_cost && unbounded_cost == ladder_cost) {
    std::printf("\nall three strategies found the same optimal cost.\n");
  }
  return 0;
}
