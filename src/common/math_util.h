#ifndef BLITZ_COMMON_MATH_UTIL_H_
#define BLITZ_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstdint>

namespace blitz {

/// Euler-Mascheroni constant, used by the harmonic-number approximation in
/// the paper's Section 3.3 complexity analysis.
inline constexpr double kEulerGamma = 0.5772156649015329;

/// H_k = sum_{i=1..k} 1/i, computed exactly for small k and via
/// ln(k) + gamma + 1/(2k) for large k.
double HarmonicNumber(std::uint64_t k);

/// The paper's formula (3): predicted execution time
///   3^n * t_loop + (ln2/2) * n * 2^n * t_cond + 2^n * t_subset.
double Formula3(int n, double t_loop, double t_cond, double t_subset);

/// The expected number of executions of the conditionally executed code in
/// find_best_split across all subsets (Section 3.3): (ln2/2) n 2^n + gamma 2^n.
double ExpectedCondCount(int n);

/// pow(3, n) as a double (exact for n <= 33).
double Pow3(int n);

/// pow(2, n) as a double.
double Pow2(int n);

/// Geometric mean of `values[0..count)`; returns 0 for empty input.
double GeometricMean(const double* values, int count);

/// Solves the 3x3 linear system a*x = b by Gaussian elimination with partial
/// pivoting. Returns false if the system is (near-)singular.
bool Solve3x3(double a[3][3], double b[3], double x[3]);

/// Least-squares fit of formula (3) to measured times: finds t_loop, t_cond,
/// t_subset minimizing sum over samples of (Formula3(n_i, ...) - time_i)^2.
/// Returns false if the normal equations are singular (e.g. < 3 samples).
bool FitFormula3(const int* ns, const double* times, int count, double* t_loop,
                 double* t_cond, double* t_subset);

}  // namespace blitz

#endif  // BLITZ_COMMON_MATH_UTIL_H_
