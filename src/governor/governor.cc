#include "governor/governor.h"

#include "common/strings.h"
#include "governor/faultpoints.h"

namespace blitz {

GovernorState::GovernorState(const ResourceBudget& budget)
    : active_(budget.active()),
      max_dp_table_bytes_(budget.max_dp_table_bytes),
      cancellation_(budget.cancellation) {
  if (budget.absolute_deadline.has_value()) {
    has_deadline_ = true;
    deadline_ = *budget.absolute_deadline;
    deadline_seconds_ = budget.deadline_seconds;
  } else if (budget.has_deadline()) {
    has_deadline_ = true;
    deadline_seconds_ = budget.deadline_seconds;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(budget.deadline_seconds));
  }
}

Status GovernorState::AdmitAllocation(std::uint64_t bytes) const {
  if (max_dp_table_bytes_ == 0 || bytes <= max_dp_table_bytes_) {
    return Status::OK();
  }
  return Status::ResourceExhausted(
      StrFormat("DP table needs %llu bytes but the budget caps it at %llu",
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(max_dp_table_bytes_)));
}

bool GovernorState::Abort(Status status) {
  aborted_ = true;
  status_ = std::move(status);
  return true;
}

bool GovernorState::CheckNow() {
  if (aborted_) return true;
  if (std::optional<FaultSpec> fault = FaultHit(kFaultGovernorCheck)) {
    switch (fault->kind) {
      case FaultKind::kClockSkew:
        fault_skew_seconds_ += fault->skew_seconds;
        break;
      case FaultKind::kCancel:
        return Abort(Status::Cancelled("injected cancellation"));
      case FaultKind::kFailStatus:
        return Abort(fault->status);
      case FaultKind::kBadAlloc:
        break;  // Meaningless at a check point; ignore.
    }
  }
  if (cancellation_ != nullptr && cancellation_->cancelled()) {
    return Abort(Status::Cancelled("optimization cancelled by caller"));
  }
  if (has_deadline_) {
    const auto now =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(fault_skew_seconds_));
    if (now >= deadline_) {
      return Abort(Status::DeadlineExceeded(
          StrFormat("optimization exceeded its %.3f ms deadline",
                    deadline_seconds_ * 1e3)));
    }
  }
  return false;
}

}  // namespace blitz
