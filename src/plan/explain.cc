#include "plan/explain.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/strings.h"

namespace blitz {

namespace {

struct Walk {
  const Catalog* catalog;
  const JoinGraph* graph;
  CostModelKind cost_model;
  std::vector<double> base_cards;
  std::string* text = nullptr;  ///< Null when only summarizing.
  PlanSummary summary;

  /// Returns (cardinality, cumulative cost) for the subtree.
  std::pair<double, double> Visit(const PlanNode& node, int depth) {
    if (node.is_leaf()) {
      const double card = base_cards[node.relation()];
      if (text != nullptr) {
        text->append(static_cast<size_t>(depth) * 2, ' ');
        text->append(StrFormat(
            "scan %s  rows %.6g\n",
            catalog->relation(node.relation()).name.c_str(), card));
      }
      return {card, 0.0};
    }
    const auto [lhs_card, lhs_cost] = Visit(*node.left, depth + 1);
    const auto [rhs_card, rhs_cost] = Visit(*node.right, depth + 1);
    const double span = graph->PiSpan(node.left->set, node.right->set);
    const double out_card = lhs_card * rhs_card * span;
    const double kappa =
        EvalJoinCost(cost_model, out_card, lhs_card, rhs_card);
    const double total = lhs_cost + rhs_cost + kappa;

    ++summary.joins;
    summary.max_intermediate_cardinality =
        std::max(summary.max_intermediate_cardinality, out_card);

    // Collect the predicates applied at this join.
    std::string predicates;
    for (const Predicate& p : graph->predicates()) {
      const bool spans = (node.left->set.Contains(p.lhs) &&
                          node.right->set.Contains(p.rhs)) ||
                         (node.left->set.Contains(p.rhs) &&
                          node.right->set.Contains(p.lhs));
      if (!spans) continue;
      if (!predicates.empty()) predicates += " AND ";
      predicates += StrFormat("%s=%s",
                              catalog->relation(p.lhs).name.c_str(),
                              catalog->relation(p.rhs).name.c_str());
    }
    if (predicates.empty()) {
      ++summary.cartesian_products;
      predicates = "(Cartesian product)";
    }

    if (text != nullptr) {
      text->append(static_cast<size_t>(depth) * 2, ' ');
      text->append(StrFormat(
          "%s %s  rows %.6g  kappa %.6g  cumulative %.6g  on %s\n",
          JoinAlgorithmToString(node.algorithm), node.set.ToString().c_str(),
          out_card, kappa, total, predicates.c_str()));
    }
    return {out_card, total};
  }
};

Walk MakeWalk(const Catalog& catalog, const JoinGraph& graph,
              CostModelKind cost_model) {
  Walk walk;
  walk.catalog = &catalog;
  walk.graph = &graph;
  walk.cost_model = cost_model;
  walk.base_cards.resize(catalog.num_relations());
  for (int i = 0; i < catalog.num_relations(); ++i) {
    walk.base_cards[i] = catalog.cardinality(i);
  }
  return walk;
}

}  // namespace

PlanSummary SummarizePlan(const Plan& plan, const Catalog& catalog,
                          const JoinGraph& graph, CostModelKind cost_model) {
  BLITZ_CHECK(!plan.empty());
  Walk walk = MakeWalk(catalog, graph, cost_model);
  const auto [card, cost] = walk.Visit(plan.root(), 0);
  walk.summary.result_cardinality = card;
  walk.summary.total_cost = cost;
  walk.summary.depth = plan.Depth();
  walk.summary.left_deep = plan.IsLeftDeep();
  return walk.summary;
}

std::string ExplainPlan(const Plan& plan, const Catalog& catalog,
                        const JoinGraph& graph, CostModelKind cost_model) {
  BLITZ_CHECK(!plan.empty());
  Walk walk = MakeWalk(catalog, graph, cost_model);
  std::string body;
  walk.text = &body;
  const auto [card, cost] = walk.Visit(plan.root(), 0);

  std::string out = StrFormat(
      "join plan (%s cost model), total cost %.6g\n"
      "%d join%s, %d Cartesian product%s, %s (depth %d), result rows %.6g,"
      " peak intermediate %.6g\n\n",
      CostModelKindToString(cost_model), cost, walk.summary.joins,
      walk.summary.joins == 1 ? "" : "s", walk.summary.cartesian_products,
      walk.summary.cartesian_products == 1 ? "" : "s",
      plan.IsLeftDeep() ? "left-deep" : "bushy", plan.Depth(), card,
      walk.summary.max_intermediate_cardinality);
  out += body;
  return out;
}

}  // namespace blitz
