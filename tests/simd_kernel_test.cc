// Bit-identity contract of the SIMD split-filter kernel (src/simd/): for
// every dispatch level, every cost model, and every topology, the filled DP
// table — costs, cardinalities, chosen splits, Pi_fan, and the per-model
// memo column — is byte-for-byte the table the classic scalar nested-if
// loop produces, and the Section 3.3 operation counters match exactly. The
// SIMD path is a pure filter: lanes that might improve the best split are
// re-run through the scalar body in successor order, so not just the
// optimum but every tie-break and every counter is preserved.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/dp_table.h"
#include "core/optimizer.h"
#include "plan/plan.h"
#include "query/workload.h"
#include "simd/dispatch.h"
#include "test_util.h"

namespace blitz {
namespace {

/// Asserts every allocated column of `a` and `b` is bitwise equal.
void ExpectTablesBitIdentical(DpTable* a, DpTable* b) {
  ASSERT_EQ(a->num_relations(), b->num_relations());
  ASSERT_EQ(a->has_pi_fan(), b->has_pi_fan());
  ASSERT_EQ(a->has_aux(), b->has_aux());
  const std::size_t rows = static_cast<std::size_t>(a->size());
  EXPECT_EQ(std::memcmp(a->cost_data(), b->cost_data(), rows * sizeof(float)),
            0);
  EXPECT_EQ(
      std::memcmp(a->card_data(), b->card_data(), rows * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(a->best_lhs_data(), b->best_lhs_data(),
                        rows * sizeof(std::uint32_t)),
            0);
  if (a->has_pi_fan()) {
    EXPECT_EQ(std::memcmp(a->pi_fan_data(), b->pi_fan_data(),
                          rows * sizeof(double)),
              0);
  }
  if (a->has_aux()) {
    EXPECT_EQ(
        std::memcmp(a->aux_data(), b->aux_data(), rows * sizeof(double)), 0);
  }
}

/// Asserts the full Section 3.3 / 6.2 counter set matches — the filter may
/// not change how often any instrumented event fires, only when the gates
/// around it are evaluated.
void ExpectCountersEqual(const CountingInstrumentation& a,
                         const CountingInstrumentation& b) {
  EXPECT_EQ(a.subsets_visited, b.subsets_visited);
  EXPECT_EQ(a.loop_iterations, b.loop_iterations);
  EXPECT_EQ(a.operand_passes, b.operand_passes);
  EXPECT_EQ(a.kappa2_evaluations, b.kappa2_evaluations);
  EXPECT_EQ(a.improvements, b.improvements);
  EXPECT_EQ(a.threshold_skips, b.threshold_skips);
}

OptimizerOptions SimdOptions(CostModelKind model, SimdLevel level,
                             float threshold = kRejectedCost) {
  OptimizerOptions options;
  options.cost_model = model;
  options.count_operations = true;
  options.cost_threshold = threshold;
  options.simd = level;
  return options;
}

// The forced levels under test. On a CPU (or build) without the matching
// instruction set the dispatcher clamps a request down, so on any machine
// each case degenerates to a supported kernel and the suite still passes —
// the full matrix runs where the hardware allows it.
constexpr SimdLevel kLevels[] = {SimdLevel::kBlock, SimdLevel::kAvx2,
                                 SimdLevel::kAvx512};

constexpr CostModelKind kModels[] = {CostModelKind::kNaive,
                                     CostModelKind::kSortMerge,
                                     CostModelKind::kDiskNestedLoops};

void ExpectJoinBitIdentical(const Catalog& catalog, const JoinGraph& graph,
                            CostModelKind model, float threshold) {
  Result<OptimizeOutcome> baseline = OptimizeJoin(
      catalog, graph, SimdOptions(model, SimdLevel::kScalar, threshold));
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->simd_level, SimdLevel::kScalar);
  for (const SimdLevel level : kLevels) {
    Result<OptimizeOutcome> outcome =
        OptimizeJoin(catalog, graph, SimdOptions(model, level, threshold));
    ASSERT_TRUE(outcome.ok()) << SimdLevelName(level);
    EXPECT_EQ(outcome->cost, baseline->cost) << SimdLevelName(level);
    ExpectTablesBitIdentical(&outcome->table, &baseline->table);
    ExpectCountersEqual(outcome->counters, baseline->counters);
  }
}

TEST(SimdKernelTest, TopologyMatrixBitIdenticalAcrossLevels) {
  // Appendix workloads: every topology shape the paper sweeps, at an n
  // large enough that most subsets clear the kSimdMinPopcount gate.
  for (const Topology topology :
       {Topology::kChain, Topology::kStar, Topology::kClique}) {
    WorkloadSpec spec;
    spec.num_relations = 11;
    spec.topology = topology;
    spec.mean_cardinality = 100.0;
    spec.variability = 0.5;
    Result<Workload> workload = MakeWorkload(spec);
    ASSERT_TRUE(workload.ok());
    for (const CostModelKind model : kModels) {
      ExpectJoinBitIdentical(workload->catalog, workload->graph, model,
                             kRejectedCost);
    }
  }
}

TEST(SimdKernelTest, RandomInstancesBitIdenticalAcrossLevels) {
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    const testing::RandomInstance instance =
        testing::MakeRandomInstance(12, seed);
    for (const CostModelKind model : kModels) {
      ExpectJoinBitIdentical(instance.catalog, instance.graph, model,
                             kRejectedCost);
    }
  }
}

TEST(SimdKernelTest, CartesianProductBitIdenticalAcrossLevels) {
  // Figure 2's setting — equal cardinalities, no predicates — is the
  // worst case for tie-breaking: every same-size split of a subset costs
  // the same, so the winner is purely "first strict improvement in
  // successor order". Bit-identical best_lhs columns prove the filter
  // preserves that order exactly.
  const std::vector<double> cards(12, 100.0);
  Result<Catalog> catalog = Catalog::FromCardinalities(cards);
  ASSERT_TRUE(catalog.ok());
  for (const CostModelKind model : kModels) {
    Result<OptimizeOutcome> baseline =
        OptimizeCartesian(*catalog, SimdOptions(model, SimdLevel::kScalar));
    ASSERT_TRUE(baseline.ok());
    for (const SimdLevel level : kLevels) {
      Result<OptimizeOutcome> outcome =
          OptimizeCartesian(*catalog, SimdOptions(model, level));
      ASSERT_TRUE(outcome.ok()) << SimdLevelName(level);
      ExpectTablesBitIdentical(&outcome->table, &baseline->table);
      ExpectCountersEqual(outcome->counters, baseline->counters);
    }
  }
}

TEST(SimdKernelTest, FiniteThresholdRejectionBitIdentical) {
  // A biting Section 6.4 threshold fills the table with kRejectedCost
  // rows; the filter compares against +inf lanes and must reproduce the
  // identical rejection pattern and threshold_skips count.
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(11, /*seed=*/7);
  for (const CostModelKind model : kModels) {
    ExpectJoinBitIdentical(instance.catalog, instance.graph, model,
                           /*threshold=*/1e5f);
  }
}

TEST(SimdKernelTest, ExtractedPlansIdenticalAcrossLevels) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(10, /*seed=*/42);
  Result<OptimizeOutcome> baseline = OptimizeJoin(
      instance.catalog, instance.graph,
      SimdOptions(CostModelKind::kSortMerge, SimdLevel::kScalar));
  ASSERT_TRUE(baseline.ok());
  Result<Plan> baseline_plan = Plan::ExtractFromTable(baseline->table);
  ASSERT_TRUE(baseline_plan.ok());
  for (const SimdLevel level : kLevels) {
    Result<OptimizeOutcome> outcome =
        OptimizeJoin(instance.catalog, instance.graph,
                     SimdOptions(CostModelKind::kSortMerge, level));
    ASSERT_TRUE(outcome.ok());
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->ToString(), baseline_plan->ToString());
  }
}

TEST(SimdKernelTest, SmallProblemsBelowPopcountGateStillExact) {
  // n <= kSimdMinPopcount problems never enter the blocked path at all;
  // requesting a SIMD level must be a clean no-op.
  const Catalog catalog = testing::Table1Catalog();
  const JoinGraph graph = testing::Figure3Graph();
  Result<OptimizeOutcome> baseline = OptimizeJoin(
      catalog, graph, SimdOptions(CostModelKind::kNaive, SimdLevel::kScalar));
  ASSERT_TRUE(baseline.ok());
  for (const SimdLevel level : kLevels) {
    Result<OptimizeOutcome> outcome = OptimizeJoin(
        catalog, graph, SimdOptions(CostModelKind::kNaive, level));
    ASSERT_TRUE(outcome.ok());
    ExpectTablesBitIdentical(&outcome->table, &baseline->table);
    ExpectCountersEqual(outcome->counters, baseline->counters);
  }
}

TEST(SimdKernelTest, FlatAblationIgnoresSimdRequest) {
  // The nested_ifs = false ablation has no short-circuit gate to
  // vectorize; it must run (and report) scalar no matter what was asked.
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(9, /*seed=*/5);
  OptimizerOptions options = SimdOptions(CostModelKind::kNaive,
                                         SimdLevel::kAvx2);
  options.nested_ifs = false;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->simd_level, SimdLevel::kScalar);
  OptimizerOptions scalar = options;
  scalar.simd = SimdLevel::kScalar;
  Result<OptimizeOutcome> baseline =
      OptimizeJoin(instance.catalog, instance.graph, scalar);
  ASSERT_TRUE(baseline.ok());
  ExpectTablesBitIdentical(&outcome->table, &baseline->table);
  ExpectCountersEqual(outcome->counters, baseline->counters);
}

TEST(SimdKernelTest, OutcomeReportsResolvedLevel) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(8, /*seed=*/1);
  for (const SimdLevel level : kLevels) {
    Result<OptimizeOutcome> outcome = OptimizeJoin(
        instance.catalog, instance.graph,
        SimdOptions(CostModelKind::kNaive, level));
    ASSERT_TRUE(outcome.ok());
    // The reported level is the request clamped to this machine — never
    // kAuto, never above the request.
    EXPECT_EQ(outcome->simd_level, ResolveSimdLevel(level));
    EXPECT_NE(outcome->simd_level, SimdLevel::kAuto);
  }
}

TEST(SimdKernelTest, AutoDispatchConsultsGateTightnessAndProblemSize) {
  // Under kAuto the batched kernel engages only for gate-tight models
  // (kSplitGateTight: kappa'' = 0, where the batched operand gate is the
  // complete cost comparison) AND problems of at least
  // kSimdMinAutoRelations relations — below that the fixed batch setup
  // cost outweighs the filtered lanes (BENCH_fig2.json: 0.72-0.98x for
  // naive at n=5-11). kappa''-dominated models pass nearly every lane
  // through the filter, so auto keeps the classic loop for them — but an
  // explicit request (options.simd or BLITZ_SIMD) still forces the kernel
  // for any model and size, so ablations can measure every combination.
  testing::ScopedSimdEnv no_env(nullptr);
  const testing::RandomInstance small =
      testing::MakeRandomInstance(8, /*seed=*/3);
  const testing::RandomInstance large =
      testing::MakeRandomInstance(kSimdMinAutoRelations, /*seed=*/3);
  const auto run = [&](const testing::RandomInstance& instance,
                       CostModelKind model, SimdLevel request) {
    Result<OptimizeOutcome> outcome = OptimizeJoin(
        instance.catalog, instance.graph, SimdOptions(model, request));
    BLITZ_CHECK(outcome.ok());
    EXPECT_EQ(outcome->simd_level,
              EffectivePassSimdLevel(SimdOptions(model, request),
                                     instance.catalog.num_relations()));
    return outcome->simd_level;
  };
  EXPECT_EQ(run(large, CostModelKind::kNaive, SimdLevel::kAuto),
            DetectCpuSimdLevel());
  // Below the minimum-n gate auto stays scalar even for a gate-tight model.
  EXPECT_EQ(run(small, CostModelKind::kNaive, SimdLevel::kAuto),
            SimdLevel::kScalar);
  EXPECT_EQ(run(large, CostModelKind::kSortMerge, SimdLevel::kAuto),
            SimdLevel::kScalar);
  EXPECT_EQ(run(large, CostModelKind::kDiskNestedLoops, SimdLevel::kAuto),
            SimdLevel::kScalar);
  // Explicit requests override both the gate-tightness and minimum-n rules.
  EXPECT_EQ(run(small, CostModelKind::kSortMerge, SimdLevel::kAvx2),
            ResolveSimdLevel(SimdLevel::kAvx2));
  {
    // A BLITZ_SIMD override is explicit too: it reaches the kernel even
    // for a gate-loose model below the minimum size.
    testing::ScopedSimdEnv env("block");
    EXPECT_EQ(run(small, CostModelKind::kSortMerge, SimdLevel::kAuto),
              SimdLevel::kBlock);
  }
}

}  // namespace
}  // namespace blitz
