#include "plan/explain.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "plan/evaluate.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::Figure3Graph;
using ::blitz::testing::MakeRandomInstance;
using ::blitz::testing::Table1Catalog;

TEST(ExplainTest, SummaryMatchesEvaluator) {
  const auto instance = MakeRandomInstance(8, 7);
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  const PlanSummary summary = SummarizePlan(
      *plan, instance.catalog, instance.graph, CostModelKind::kNaive);
  const double evaluated = EvaluateCost(*plan, instance.catalog,
                                        instance.graph,
                                        CostModelKind::kNaive);
  EXPECT_DOUBLE_EQ(summary.total_cost, evaluated);
  EXPECT_EQ(summary.joins, plan->NumJoins());
  EXPECT_EQ(summary.depth, plan->Depth());
  EXPECT_EQ(summary.left_deep, plan->IsLeftDeep());
  EXPECT_EQ(summary.cartesian_products,
            plan->CountCartesianProducts(instance.graph));
  EXPECT_GE(summary.max_intermediate_cardinality,
            summary.result_cardinality);
}

TEST(ExplainTest, Table1PlanRendering) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph(4);  // pure products
  // The Table 1 optimum: (A x D) x (B x C), cost 241000.
  const Plan plan = Plan::Join(Plan::Join(Plan::Leaf(0), Plan::Leaf(3)),
                               Plan::Join(Plan::Leaf(1), Plan::Leaf(2)));
  const std::string text =
      ExplainPlan(plan, catalog, graph, CostModelKind::kNaive);
  EXPECT_NE(text.find("total cost 241000"), std::string::npos) << text;
  EXPECT_NE(text.find("3 joins"), std::string::npos) << text;
  EXPECT_NE(text.find("3 Cartesian products"), std::string::npos) << text;
  EXPECT_NE(text.find("bushy (depth 2)"), std::string::npos) << text;
  EXPECT_NE(text.find("scan A  rows 10"), std::string::npos) << text;
  EXPECT_NE(text.find("rows 240000"), std::string::npos) << text;
}

TEST(ExplainTest, PredicatesListedAtTheirJoin) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();  // AB, AC, BC, AD
  // ((A x B) x C): AB at the inner join; AC and BC at the outer.
  const Plan plan = Plan::Join(
      Plan::Join(Plan::Leaf(0), Plan::Leaf(1)), Plan::Leaf(2));
  const std::string text =
      ExplainPlan(plan, catalog, graph, CostModelKind::kNaive);
  EXPECT_NE(text.find("on A=B"), std::string::npos) << text;
  EXPECT_NE(text.find("A=C AND B=C"), std::string::npos) << text;
  EXPECT_EQ(text.find("(Cartesian product)"), std::string::npos) << text;
}

TEST(ExplainTest, MarksCartesianProducts) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  const Plan plan = Plan::Join(Plan::Leaf(1), Plan::Leaf(3));  // B x D
  const std::string text =
      ExplainPlan(plan, catalog, graph, CostModelKind::kNaive);
  EXPECT_NE(text.find("(Cartesian product)"), std::string::npos) << text;
  EXPECT_NE(text.find("1 Cartesian product,"), std::string::npos) << text;
}

TEST(ExplainTest, WorksForEveryCostModel) {
  const auto instance = MakeRandomInstance(6, 3);
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl,
        CostModelKind::kHash, CostModelKind::kMinAll}) {
    const std::string text =
        ExplainPlan(*plan, instance.catalog, instance.graph, kind);
    EXPECT_NE(text.find(CostModelKindToString(kind)), std::string::npos);
    const PlanSummary summary =
        SummarizePlan(*plan, instance.catalog, instance.graph, kind);
    EXPECT_NEAR(summary.total_cost,
                EvaluateCost(*plan, instance.catalog, instance.graph, kind),
                1e-9 * std::max(1.0, summary.total_cost));
  }
}

}  // namespace
}  // namespace blitz
