#include "common/math_util.h"

#include <algorithm>

namespace blitz {

double HarmonicNumber(std::uint64_t k) {
  if (k == 0) return 0.0;
  if (k <= 1024) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= k; ++i) sum += 1.0 / static_cast<double>(i);
    return sum;
  }
  const double kd = static_cast<double>(k);
  return std::log(kd) + kEulerGamma + 1.0 / (2.0 * kd);
}

double Pow3(int n) { return std::pow(3.0, n); }

double Pow2(int n) { return std::ldexp(1.0, n); }

double Formula3(int n, double t_loop, double t_cond, double t_subset) {
  const double ln2_over_2 = 0.5 * std::log(2.0);
  return Pow3(n) * t_loop + ln2_over_2 * n * Pow2(n) * t_cond +
         Pow2(n) * t_subset;
}

double ExpectedCondCount(int n) {
  const double ln2_over_2 = 0.5 * std::log(2.0);
  return ln2_over_2 * n * Pow2(n) + kEulerGamma * Pow2(n);
}

double GeometricMean(const double* values, int count) {
  if (count <= 0) return 0.0;
  double log_sum = 0.0;
  for (int i = 0; i < count; ++i) log_sum += std::log(values[i]);
  return std::exp(log_sum / count);
}

bool Solve3x3(double a[3][3], double b[3], double x[3]) {
  int perm[3] = {0, 1, 2};
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int row = col + 1; row < 3; ++row) {
      if (std::fabs(a[perm[row]][col]) > std::fabs(a[perm[pivot]][col])) {
        pivot = row;
      }
    }
    std::swap(perm[col], perm[pivot]);
    const double diag = a[perm[col]][col];
    if (std::fabs(diag) < 1e-300) return false;
    for (int row = col + 1; row < 3; ++row) {
      const double factor = a[perm[row]][col] / diag;
      for (int k = col; k < 3; ++k) a[perm[row]][k] -= factor * a[perm[col]][k];
      b[perm[row]] -= factor * b[perm[col]];
    }
  }
  for (int col = 2; col >= 0; --col) {
    double sum = b[perm[col]];
    for (int k = col + 1; k < 3; ++k) sum -= a[perm[col]][k] * x[k];
    x[col] = sum / a[perm[col]][col];
  }
  return true;
}

bool FitFormula3(const int* ns, const double* times, int count, double* t_loop,
                 double* t_cond, double* t_subset) {
  if (count < 3) return false;
  // Basis functions per sample: f0 = 3^n, f1 = (ln2/2) n 2^n, f2 = 2^n.
  // Normal equations: (F^T F) x = F^T y.
  const double ln2_over_2 = 0.5 * std::log(2.0);
  double ata[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
  double atb[3] = {0, 0, 0};
  for (int i = 0; i < count; ++i) {
    const double f[3] = {Pow3(ns[i]), ln2_over_2 * ns[i] * Pow2(ns[i]),
                         Pow2(ns[i])};
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) ata[r][c] += f[r] * f[c];
      atb[r] += f[r] * times[i];
    }
  }
  double x[3];
  if (!Solve3x3(ata, atb, x)) return false;
  *t_loop = x[0];
  *t_cond = x[1];
  *t_subset = x[2];
  return true;
}

}  // namespace blitz
