#ifndef BLITZ_CORE_OPTIMIZER_H_
#define BLITZ_CORE_OPTIMIZER_H_

#include <vector>

#include "card/estimator.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "core/dp_table.h"
#include "core/instrumentation.h"
#include "cost/cost_model.h"
#include "governor/budget.h"
#include "parallel/parallel_options.h"
#include "query/join_graph.h"
#include "simd/dispatch.h"

namespace blitz {

class DpTableArena;

/// Runtime-configurable options for one optimizer pass. Each distinct
/// (cost_model, nested_ifs, count_operations) combination dispatches to its
/// own compiled instantiation of the blitzsplit core.
struct OptimizerOptions {
  /// Which kappa to optimize under.
  CostModelKind cost_model = CostModelKind::kNaive;

  /// Section 4.2 nested-if short-circuiting (disable only for ablations).
  bool nested_ifs = true;

  /// Tally the operation counts of Section 3.3 / 6.2 (small overhead).
  bool count_operations = false;

  /// Section 6.4 plan-cost threshold for a single pass; plans costing this
  /// much or more are rejected. +infinity disables thresholding (leaving
  /// only genuine float overflow, Section 6.3).
  float cost_threshold = kRejectedCost;

  /// Resource limits for this pass (inactive by default). An armed memory
  /// cap is enforced by admission control before the 2^n DP table is
  /// allocated (ResourceExhausted); an armed deadline or cancellation token
  /// is checked cooperatively every GovernorState::kCheckStride subsets
  /// (DeadlineExceeded / Cancelled).
  ResourceBudget budget;

  /// Multicore configuration (sequential by default). With num_threads > 1
  /// the DP runs rank-synchronously — each cardinality rank sharded across
  /// a thread pool with one barrier per rank — producing a bit-identical
  /// table; see parallel/blitzsplit_ranked.h. Problems too small for any
  /// rank to reach parallel.min_parallel_rank keep the sequential driver.
  ParallelOptimizerOptions parallel;

  /// SIMD realization of the best-split filter (see simd/dispatch.h).
  /// kAuto (default) probes the CPU once, honors the BLITZ_SIMD
  /// environment override, and engages the batched kernel only for
  /// gate-tight cost models (kSplitGateTight — kappa'' = 0, where the
  /// batched operand gate is the complete comparison) on problems of at
  /// least kSimdMinAutoRelations relations (below that the dense-build
  /// overhead outruns the filter's win; see BENCH_fig2.json); a concrete
  /// level forces that kernel for any model and size (clamped to what the
  /// machine supports). Resolved once per pass; every kernel fills a
  /// bit-identical table, so this knob trades nothing but speed. Ignored
  /// by the flat nested_ifs = false ablation, which has no
  /// model-independent gate to batch.
  SimdLevel simd = SimdLevel::kAuto;

  /// Performance-observatory sink (obs/profiler/phase_profile.h). When
  /// non-null the pass runs the ProfilingInstrumentation policy — every
  /// tick attributed to a {phase, subset-size rank} bucket, plus SIMD
  /// survivor-rate tallies — and folds the result here and into the
  /// global Profiler (if one is installed). Costs ~2 rdtsc per split-loop
  /// kappa'' evaluation; null (the default) compiles the hooks out
  /// entirely. A profiled pass reports operation counts through the
  /// profile, not through OptimizeOutcome::counters, so count_operations
  /// is ignored while this is set.
  PassProfile* profile = nullptr;

  /// Cardinality estimator (card/estimator.h). Null — the default — and an
  /// exact estimator both run the fused Pi_fan recurrence over the
  /// catalog's cardinalities and the graph's selectivities, so the DP
  /// tables, tie-breaks, and operation counts are bit-identical to the
  /// paper's derivation. A non-exact estimator (hist, noest) preloads the
  /// card column from EstimateAll and runs the external-cards driver:
  /// sequential only (the rank-parallel driver is not extended to this
  /// path), no pi_fan column, threshold/SIMD/governor machinery unchanged.
  /// Must cover the catalog's relation count. Not owned; must outlive the
  /// pass. Ignored by OptimizeCartesian (no predicates to estimate over).
  const CardinalityEstimator* estimator = nullptr;

  /// DP-table pool (core/table_arena.h). When non-null the pass acquires
  /// its 2^n table from the arena instead of allocating — the serving
  /// tier's steady-state path. The pass hands the table out through
  /// OptimizeOutcome as usual; recycling it is the *caller's* job (the api
  /// layer releases it after plan extraction). Null (the default) keeps the
  /// paper's allocate-per-pass behavior. Not owned.
  DpTableArena* table_arena = nullptr;

  /// Canonical validation of every knob, including the nested parallel
  /// options; called by the optimizer entry points before a pass runs.
  Status Validate() const;
};

/// The result of one optimizer pass: the filled DP table (from which plans
/// are extracted — see plan/plan.h), the cost of the best overall plan, and
/// the operation counters (all zero unless count_operations was set).
struct OptimizeOutcome {
  DpTable table;
  float cost = kRejectedCost;
  CountingInstrumentation counters;

  /// The kernel the pass actually ran (options.simd resolved against the
  /// CPU and BLITZ_SIMD; kScalar when the flat ablation bypassed the
  /// blocked filter). Never kAuto.
  SimdLevel simd_level = SimdLevel::kScalar;

  /// The estimator the pass resolved cardinalities through (kPaperFanout
  /// when options.estimator was null — the built-in exact derivation).
  EstimatorKind estimator = EstimatorKind::kPaperFanout;

  /// False if every complete plan was rejected by the cost threshold (the
  /// "optimization fails ... reoptimize with a higher threshold" case of
  /// Section 6.4).
  bool found_plan() const { return cost < kRejectedCost; }
};

/// The concrete kernel level a pass with these options would run on a
/// problem of `num_relations` relations, without running it — what
/// OptimizeOutcome::simd_level will report: kScalar for the flat ablation,
/// for kAuto over a gate-loose model, and for kAuto below
/// kSimdMinAutoRelations; otherwise the resolved request (simd/dispatch.h).
SimdLevel EffectivePassSimdLevel(const OptimizerOptions& options,
                                 int num_relations);

/// Optimizes the join of all relations in `catalog` under the predicates of
/// `graph` (Section 5). The graph must have the same relation count as the
/// catalog.
Result<OptimizeOutcome> OptimizeJoin(const Catalog& catalog,
                                     const JoinGraph& graph,
                                     const OptimizerOptions& options);

/// Optimizes the pure Cartesian product of all relations in `catalog`
/// (Sections 3-4) — the predicate machinery is compiled out entirely.
Result<OptimizeOutcome> OptimizeCartesian(const Catalog& catalog,
                                          const OptimizerOptions& options);

/// Re-runs a pass in-place against an existing table (avoids reallocation
/// across the repetitions of a timing loop or the passes of a threshold
/// ladder). The table's columns must match the options and problem shape.
/// Requires the default/exact estimator (the in-place contract is defined
/// over pi_fan tables); a non-exact estimator is kFailedPrecondition.
Result<float> ReoptimizeJoinInPlace(const Catalog& catalog,
                                    const JoinGraph& graph,
                                    const OptimizerOptions& options,
                                    DpTable* table,
                                    CountingInstrumentation* counters);

/// Configuration of the Section 6.4 multi-pass scheme: try the initial
/// threshold; on failure multiply it by growth_factor and re-optimize; after
/// max_thresholded_passes give up on thresholds and run one unbounded pass.
struct ThresholdLadderOptions {
  float initial_threshold = 1e9f;
  float growth_factor = 1e4f;
  int max_thresholded_passes = 8;
};

/// Outcome of a threshold-ladder optimization, with per-pass bookkeeping.
struct LadderOutcome {
  OptimizeOutcome outcome;               ///< From the final (successful) pass.
  std::vector<float> thresholds_tried;   ///< One per pass; +inf if unbounded.
  int passes = 0;
};

/// Runs OptimizeJoin under the Section 6.4 threshold ladder. The result is
/// always a found plan (the last-resort pass is unbounded), and its cost
/// equals the true optimum whenever the true optimum is below whichever
/// threshold succeeded.
Result<LadderOutcome> OptimizeJoinWithThresholds(
    const Catalog& catalog, const JoinGraph& graph,
    const OptimizerOptions& options, const ThresholdLadderOptions& ladder);

}  // namespace blitz

#endif  // BLITZ_CORE_OPTIMIZER_H_
