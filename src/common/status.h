#ifndef BLITZ_COMMON_STATUS_H_
#define BLITZ_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace blitz {

/// Error categories used throughout the library. The library does not throw
/// exceptions; fallible operations return a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kUnavailable,
};

/// Returns a short human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// The inverse of StatusCodeToString — the serving wire format ships codes
/// by name. Returns nullopt for anything StatusCodeToString never emits.
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// A lightweight success-or-error value, in the style of absl::Status /
/// rocksdb::Status. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Inspect with ok(); access the
/// value with value() (checked) or operator* (unchecked in release builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse: `return 42;` or `return Status::InvalidArgument(...)`.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                            // NOLINT(runtime/explicit)
      : storage_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// Returns the error status; OK if the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  const T& value() const& { return std::get<T>(storage_); }
  T& value() & { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

/// Propagates an error Status from an expression that yields a Status.
#define BLITZ_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::blitz::Status _blitz_status = (expr);         \
    if (!_blitz_status.ok()) return _blitz_status;  \
  } while (false)

}  // namespace blitz

#endif  // BLITZ_COMMON_STATUS_H_
