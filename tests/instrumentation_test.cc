#include "core/instrumentation.h"

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(InstrumentationTest, NoInstrumentationIsDisabled) {
  EXPECT_FALSE(NoInstrumentation::kEnabled);
  NoInstrumentation instr;
  instr.OnSubsetVisited();  // must compile and do nothing
  instr.OnLoopIteration();
}

TEST(InstrumentationTest, CountingIncrements) {
  CountingInstrumentation instr;
  instr.OnSubsetVisited();
  instr.OnLoopIteration();
  instr.OnLoopIteration();
  instr.OnOperandPass();
  instr.OnKappa2Evaluated();
  instr.OnImprovement();
  instr.OnThresholdSkip();
  EXPECT_EQ(instr.subsets_visited, 1u);
  EXPECT_EQ(instr.loop_iterations, 2u);
  EXPECT_EQ(instr.operand_passes, 1u);
  EXPECT_EQ(instr.kappa2_evaluations, 1u);
  EXPECT_EQ(instr.improvements, 1u);
  EXPECT_EQ(instr.threshold_skips, 1u);
}

TEST(InstrumentationTest, Accumulate) {
  CountingInstrumentation a;
  a.OnLoopIteration();
  CountingInstrumentation b;
  b.OnLoopIteration();
  b.OnImprovement();
  a += b;
  EXPECT_EQ(a.loop_iterations, 2u);
  EXPECT_EQ(a.improvements, 1u);
}

TEST(InstrumentationTest, ToStringMentionsAllCounters) {
  CountingInstrumentation instr;
  instr.OnKappa2Evaluated();
  const std::string s = instr.ToString();
  EXPECT_NE(s.find("kappa2=1"), std::string::npos) << s;
  EXPECT_NE(s.find("subsets=0"), std::string::npos) << s;
}

}  // namespace
}  // namespace blitz
