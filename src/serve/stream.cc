#include "serve/stream.h"

#include <cerrno>
#include <chrono>
#include <climits>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include <limits.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "common/strings.h"

#ifndef PIPE_BUF
#define PIPE_BUF 512  // The POSIX minimum.
#endif

namespace blitz {

namespace {

/// Whole milliseconds until `deadline`, clamped into [0, INT_MAX] for
/// poll(2). 0 means the deadline has passed.
int MsUntil(std::chrono::steady_clock::time_point deadline) {
  const long long left =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now())
          .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<long long>(left, INT_MAX));
}

}  // namespace

Status ReadFull(ByteStream* stream, char* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    Result<std::size_t> n = stream->Read(buf + got, len - got);
    if (!n.ok()) return n.status();
    if (*n == 0) {
      return Status::Unavailable(
          StrFormat("stream ended %zu bytes short", len - got));
    }
    got += *n;
  }
  return Status::OK();
}

FdStream::FdStream(int read_fd, int write_fd, bool own_fds, int wake_fd,
                   double write_timeout_ms)
    : read_fd_(read_fd),
      write_fd_(write_fd),
      own_fds_(own_fds),
      wake_fd_(wake_fd),
      write_timeout_ms_(write_timeout_ms) {}

FdStream::~FdStream() { Close(); }

Result<std::size_t> FdStream::Read(char* buf, std::size_t len) {
  for (;;) {
    if (read_fd_ < 0) return std::size_t{0};
    if (wake_fd_ >= 0) {
      // Wait for data or the wake signal; the wake side wins ties so a
      // drain request is honored even under a steady request stream.
      struct pollfd fds[2];
      fds[0] = {wake_fd_, POLLIN, 0};
      fds[1] = {read_fd_, POLLIN, 0};
      const int ready = ::poll(fds, 2, -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(StrFormat("poll: %s", std::strerror(errno)));
      }
      if (fds[0].revents != 0) return std::size_t{0};  // Drain requested.
      if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    }
    const ssize_t n = ::read(read_fd_, buf, len);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    return Status::Unavailable(StrFormat("read: %s", std::strerror(errno)));
  }
}

Status FdStream::Write(std::string_view data) {
  const bool bounded = write_timeout_ms_ > 0;
  const std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              bounded ? write_timeout_ms_ : 0));
  const auto timed_out = [&] {
    return Status::Unavailable(
        StrFormat("write timed out after %g ms (peer not reading)",
                  write_timeout_ms_));
  };
  while (!data.empty()) {
    if (write_fd_ < 0) return Status::Unavailable("stream closed");
    ssize_t n;
    if (socket_send_) {
      // MSG_DONTWAIT turns "peer stopped reading" into EAGAIN handled by
      // the bounded poll below, instead of an unbounded block inside
      // send(2) that neither the wake fd nor a cancellation token can
      // interrupt.
      n = ::send(write_fd_, data.data(), data.size(),
                 MSG_DONTWAIT | MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        socket_send_ = false;  // A pipe or file: take the write(2) path.
        continue;
      }
    } else if (bounded) {
      // POLLOUT on a pipe guarantees PIPE_BUF bytes of space, so a write
      // chunked to that after a successful poll cannot block.
      const int wait_ms = MsUntil(deadline);
      if (wait_ms == 0) return timed_out();
      struct pollfd pfd = {write_fd_, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(StrFormat("poll: %s", std::strerror(errno)));
      }
      if (ready == 0) return timed_out();
      n = ::write(write_fd_, data.data(),
                  std::min<std::size_t>(data.size(), PIPE_BUF));
    } else {
      n = ::write(write_fd_, data.data(), data.size());
    }
    if (n > 0) {
      data.remove_prefix(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket send buffer full: wait for space, bounded when configured.
      int wait_ms = -1;
      if (bounded) {
        wait_ms = MsUntil(deadline);
        if (wait_ms == 0) return timed_out();
      }
      struct pollfd pfd = {write_fd_, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0 && errno != EINTR) {
        return Status::Internal(StrFormat("poll: %s", std::strerror(errno)));
      }
      if (bounded && ready == 0) return timed_out();
      continue;
    }
    return Status::Unavailable(StrFormat("write: %s", std::strerror(errno)));
  }
  return Status::OK();
}

void FdStream::CloseWrite() {
  if (write_fd_ < 0) return;
  if (write_fd_ == read_fd_) {
    // A socket: shut down just the send side so responses already in the
    // peer's buffer stay readable.
    ::shutdown(write_fd_, SHUT_WR);
    return;
  }
  if (own_fds_) ::close(write_fd_);
  write_fd_ = -1;
}

void FdStream::Close() {
  if (own_fds_) {
    if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
    if (read_fd_ >= 0) ::close(read_fd_);
  }
  read_fd_ = -1;
  write_fd_ = -1;
}

namespace {

/// One direction of the in-memory duplex: a bounded byte queue with
/// blocking producer/consumer semantics and half-close.
class PipeBuffer {
 public:
  explicit PipeBuffer(std::size_t capacity) : capacity_(capacity) {}

  Status Write(std::string_view data) {
    std::unique_lock<std::mutex> lock(mu_);
    while (!data.empty()) {
      space_cv_.wait(lock, [&] {
        return bytes_.size() < capacity_ || closed_;
      });
      if (closed_) return Status::Unavailable("pipe closed");
      const std::size_t take =
          std::min(capacity_ - bytes_.size(), data.size());
      bytes_.insert(bytes_.end(), data.begin(), data.begin() + take);
      data.remove_prefix(take);
      data_cv_.notify_all();
    }
    return Status::OK();
  }

  Result<std::size_t> Read(char* buf, std::size_t len) {
    std::unique_lock<std::mutex> lock(mu_);
    data_cv_.wait(lock, [&] { return !bytes_.empty() || closed_; });
    if (bytes_.empty()) return std::size_t{0};  // Closed and drained: EOF.
    const std::size_t got = std::min(len, bytes_.size());
    std::copy_n(bytes_.begin(), got, buf);
    bytes_.erase(bytes_.begin(), bytes_.begin() + static_cast<long>(got));
    space_cv_.notify_all();
    return got;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    data_cv_.notify_all();
    space_cv_.notify_all();
  }

 private:
  const std::size_t capacity_;
  std::mutex mu_;
  std::condition_variable data_cv_;
  std::condition_variable space_cv_;
  std::deque<char> bytes_;
  bool closed_ = false;
};

/// One endpoint of the duplex: reads from one buffer, writes the other.
class DuplexEndpoint : public ByteStream {
 public:
  DuplexEndpoint(std::shared_ptr<PipeBuffer> in,
                 std::shared_ptr<PipeBuffer> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~DuplexEndpoint() override { Close(); }

  Result<std::size_t> Read(char* buf, std::size_t len) override {
    return in_->Read(buf, len);
  }

  Status Write(std::string_view data) override { return out_->Write(data); }

  void CloseWrite() override { out_->Close(); }

  void Close() override {
    out_->Close();
    in_->Close();
  }

 private:
  std::shared_ptr<PipeBuffer> in_;
  std::shared_ptr<PipeBuffer> out_;
};

}  // namespace

std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
CreateDuplexPipe(std::size_t buffer_capacity) {
  auto a_to_b = std::make_shared<PipeBuffer>(buffer_capacity);
  auto b_to_a = std::make_shared<PipeBuffer>(buffer_capacity);
  return {std::make_unique<DuplexEndpoint>(b_to_a, a_to_b),
          std::make_unique<DuplexEndpoint>(a_to_b, b_to_a)};
}

}  // namespace blitz
