// Tests for the DP-table arena (core/table_arena.h): pooling semantics,
// retention bounds, result fidelity across recycled tables, and the
// serve.arena.alloc fault point.

#include "core/table_arena.h"

#include <gtest/gtest.h>

#include <string>

#include "api/optimize_query.h"
#include "governor/faultpoints.h"
#include "test_util.h"

namespace blitz {
namespace {

TEST(DpTableArenaTest, MissThenHitByShape) {
  DpTableArena arena;
  Result<DpTable> first = arena.Acquire(6, /*with_pi_fan=*/true,
                                        /*with_aux=*/false);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(arena.stats().misses, 1u);
  EXPECT_EQ(arena.stats().hits, 0u);

  arena.Release(std::move(*first));
  EXPECT_EQ(arena.stats().retained_tables, 1u);
  EXPECT_GT(arena.stats().retained_bytes, 0u);

  // Same shape: pooled table comes back.
  Result<DpTable> second = arena.Acquire(6, true, false);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(arena.stats().hits, 1u);
  EXPECT_EQ(arena.stats().retained_tables, 0u);

  // Different shape: a fresh miss, not a shape-punning reuse.
  Result<DpTable> other = arena.Acquire(6, false, false);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(arena.stats().misses, 2u);
}

TEST(DpTableArenaTest, RetentionCapDiscardsInsteadOfGrowing) {
  DpTableArena::Options options;
  options.max_retained_bytes = 1;  // Nothing fits.
  DpTableArena arena(options);
  Result<DpTable> table = arena.Acquire(8, true, false);
  ASSERT_TRUE(table.ok());
  arena.Release(std::move(*table));
  EXPECT_EQ(arena.stats().discarded, 1u);
  EXPECT_EQ(arena.stats().retained_tables, 0u);
  EXPECT_EQ(arena.stats().retained_bytes, 0u);
}

TEST(DpTableArenaTest, ClearDropsPool) {
  DpTableArena arena;
  Result<DpTable> table = arena.Acquire(5, true, false);
  ASSERT_TRUE(table.ok());
  arena.Release(std::move(*table));
  ASSERT_EQ(arena.stats().retained_tables, 1u);
  arena.Clear();
  EXPECT_EQ(arena.stats().retained_tables, 0u);
  EXPECT_EQ(arena.stats().retained_bytes, 0u);
}

// The soundness pin: optimizing through a recycled (stale-content) table
// must produce the bit-identical plan and cost a fresh table produces,
// because every row a pass reads was written by that same pass.
TEST(DpTableArenaTest, RecycledTableGivesIdenticalResults) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(9, /*seed=*/20260808);

  QueryOptimizerOptions fresh_options;
  Result<OptimizedQuery> fresh =
      OptimizeQuery(instance.catalog, instance.graph, fresh_options);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  DpTableArena arena;
  QueryOptimizerOptions arena_options;
  arena_options.table_arena = &arena;
  // First call populates the pool; later calls run on recycled tables
  // whose contents start as another query's stale rows.
  for (int round = 0; round < 3; ++round) {
    Result<OptimizedQuery> pooled =
        OptimizeQuery(instance.catalog, instance.graph, arena_options);
    ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
    EXPECT_EQ(pooled->cost, fresh->cost) << "round " << round;
    EXPECT_TRUE(pooled->plan.StructurallyEquals(fresh->plan))
        << "round " << round;
  }
  EXPECT_GT(arena.stats().hits, 0u);
}

// Different queries of the same size share pooled tables.
TEST(DpTableArenaTest, CrossQueryReuseMatchesFreshRuns) {
  DpTableArena arena;
  QueryOptimizerOptions arena_options;
  arena_options.table_arena = &arena;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const testing::RandomInstance instance =
        testing::MakeRandomInstance(8, seed);
    Result<OptimizedQuery> fresh =
        OptimizeQuery(instance.catalog, instance.graph,
                      QueryOptimizerOptions{});
    Result<OptimizedQuery> pooled =
        OptimizeQuery(instance.catalog, instance.graph, arena_options);
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(pooled.ok());
    EXPECT_EQ(pooled->cost, fresh->cost) << "seed " << seed;
    EXPECT_TRUE(pooled->plan.StructurallyEquals(fresh->plan))
        << "seed " << seed;
  }
  EXPECT_GE(arena.stats().hits, 3u);
}

TEST(DpTableArenaTest, MemoryAdmissionStillRunsWithArena) {
  DpTableArena arena;
  QueryOptimizerOptions options;
  options.table_arena = &arena;
  options.budget.max_dp_table_bytes = 16;  // Far below any 2^12 table.
  options.degrade_on_budget = false;
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(12, /*seed=*/3);
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(DpTableArenaTest, AllocFaultPointFires) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);

  DpTableArena arena;
  FaultSpec spec;
  spec.kind = FaultKind::kBadAlloc;
  registry.Arm(kFaultServeArenaAlloc, spec);
  Result<DpTable> failed = arena.Acquire(6, true, false);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);

  // times=1: the next acquire succeeds.
  Result<DpTable> ok = arena.Acquire(6, true, false);
  EXPECT_TRUE(ok.ok());

  FaultSpec status_spec;
  status_spec.kind = FaultKind::kFailStatus;
  status_spec.status = Status::Internal("backing store on fire");
  registry.Arm(kFaultServeArenaAlloc, status_spec);
  Result<DpTable> internal = arena.Acquire(6, true, false);
  ASSERT_FALSE(internal.ok());
  EXPECT_EQ(internal.status().code(), StatusCode::kInternal);
  EXPECT_EQ(internal.status().message(), "backing store on fire");
}

// An arena alloc fault during a degradable governed call walks the ladder
// instead of failing the query — the serving tier's isolation story.
TEST(DpTableArenaTest, AllocFaultDegradesThroughLadder) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);

  DpTableArena arena;
  QueryOptimizerOptions options;
  options.table_arena = &arena;
  options.degrade_on_budget = true;
  options.collect_report = true;
  FaultSpec spec;
  spec.kind = FaultKind::kBadAlloc;
  spec.times = -1;  // Every exhaustive attempt fails to allocate.
  registry.Arm(kFaultServeArenaAlloc, spec);

  const testing::RandomInstance instance =
      testing::MakeRandomInstance(7, /*seed=*/11);
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->tier, OptimizerTier::kExhaustive);
  ASSERT_TRUE(result->report.has_value());
  EXPECT_GE(result->report->degradations.size(), 1u);
}

}  // namespace
}  // namespace blitz
