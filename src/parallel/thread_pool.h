#ifndef BLITZ_PARALLEL_THREAD_POOL_H_
#define BLITZ_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace blitz {

/// A fixed-size pool of worker threads driving statically-sharded parallel
/// loops with a full barrier per Run() — the execution substrate of the
/// rank-synchronous optimizer (one Run per DP rank, dozens of Runs per
/// pass).
///
/// Sharding is static: Run(num_tasks, fn) assigns task t to participant
/// (t mod P) where P = num_workers() + 1 and the *calling thread is
/// participant 0*, so a pool constructed with zero workers degenerates to a
/// plain sequential loop on the caller. Static assignment keeps the
/// dispatch path free of work-stealing atomics and makes the task →
/// thread mapping deterministic, which the optimizer does not need for
/// correctness (tasks write disjoint data) but which keeps perf runs
/// reproducible.
///
/// `fn` must not throw. Run() may be called repeatedly; calls must not be
/// nested or issued concurrently from several threads. Workers sleep
/// between Runs (condition variable, no spinning), so an idle pool costs
/// only memory.
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (>= 0) in addition to the calling thread.
  explicit ThreadPool(int num_workers);

  /// Joins all workers. Must not race a Run() in progress.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Total participants per Run: workers plus the calling thread.
  int num_participants() const { return num_workers() + 1; }

  /// Invokes fn(t) for every t in [0, num_tasks), sharded across the
  /// workers and the calling thread, and returns once every invocation has
  /// finished (the barrier).
  void Run(int num_tasks, const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int participant);

  /// Executes participant `participant`'s share of the current generation's
  /// tasks; returns the number executed.
  int RunShare(int participant, const std::function<void(int)>* fn,
               int num_tasks);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* fn_ = nullptr;  ///< Guarded by mu_.
  int num_tasks_ = 0;                             ///< Guarded by mu_.
  int completed_ = 0;                             ///< Guarded by mu_.
  std::uint64_t generation_ = 0;                  ///< Guarded by mu_.
  bool shutdown_ = false;                         ///< Guarded by mu_.
  std::vector<std::thread> workers_;
};

}  // namespace blitz

#endif  // BLITZ_PARALLEL_THREAD_POOL_H_
