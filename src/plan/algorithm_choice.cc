#include "plan/algorithm_choice.h"

#include <vector>

#include "common/check.h"

namespace blitz {

namespace {

double ChooseRec(PlanNode* node, const std::vector<double>& cards,
                 const JoinGraph& graph, CostModelKind kind) {
  if (node->is_leaf()) return cards[node->relation()];
  const double lhs_card = ChooseRec(node->left.get(), cards, graph, kind);
  const double rhs_card = ChooseRec(node->right.get(), cards, graph, kind);
  const double span = graph.PiSpan(node->left->set, node->right->set);
  const double out_card = lhs_card * rhs_card * span;

  if (!graph.AnyEdgeSpans(node->left->set, node->right->set)) {
    node->algorithm = JoinAlgorithm::kCartesianProduct;
    return out_card;
  }
  switch (kind) {
    case CostModelKind::kNaive:
      node->algorithm = JoinAlgorithm::kHash;
      break;
    case CostModelKind::kSortMerge:
      node->algorithm = JoinAlgorithm::kSortMerge;
      break;
    case CostModelKind::kDiskNestedLoops:
      node->algorithm = JoinAlgorithm::kNestedLoops;
      break;
    case CostModelKind::kHash:
      node->algorithm = JoinAlgorithm::kHash;
      break;
    case CostModelKind::kMinSmDnl: {
      const double sm = EvalJoinCost(CostModelKind::kSortMerge, out_card,
                                     lhs_card, rhs_card);
      const double dnl = EvalJoinCost(CostModelKind::kDiskNestedLoops,
                                      out_card, lhs_card, rhs_card);
      node->algorithm = sm <= dnl ? JoinAlgorithm::kSortMerge
                                  : JoinAlgorithm::kNestedLoops;
      break;
    }
    case CostModelKind::kMinAll: {
      const double sm = EvalJoinCost(CostModelKind::kSortMerge, out_card,
                                     lhs_card, rhs_card);
      const double dnl = EvalJoinCost(CostModelKind::kDiskNestedLoops,
                                      out_card, lhs_card, rhs_card);
      const double hash =
          EvalJoinCost(CostModelKind::kHash, out_card, lhs_card, rhs_card);
      if (hash <= sm && hash <= dnl) {
        node->algorithm = JoinAlgorithm::kHash;
      } else if (sm <= dnl) {
        node->algorithm = JoinAlgorithm::kSortMerge;
      } else {
        node->algorithm = JoinAlgorithm::kNestedLoops;
      }
      break;
    }
  }
  return out_card;
}

}  // namespace

void ChooseAlgorithms(PlanNode* node, const Catalog& catalog,
                      const JoinGraph& graph, CostModelKind kind) {
  std::vector<double> cards(catalog.num_relations());
  for (int i = 0; i < catalog.num_relations(); ++i) {
    cards[i] = catalog.cardinality(i);
  }
  ChooseRec(node, cards, graph, kind);
}

void ChooseAlgorithms(Plan* plan, const Catalog& catalog,
                      const JoinGraph& graph, CostModelKind kind) {
  BLITZ_CHECK(!plan->empty());
  ChooseAlgorithms(&plan->mutable_root(), catalog, graph, kind);
}

}  // namespace blitz
