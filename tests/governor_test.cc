// Tests for the resource governor: budgets, cancellation tokens, admission
// control, and governed optimizer entry points (no fault injection here —
// see faultpoints_test.cc and degradation_test.cc).

#include "governor/governor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/dp_table.h"
#include "core/optimizer.h"
#include "governor/budget.h"
#include "test_util.h"

namespace blitz {
namespace {

TEST(CancellationTokenTest, CancelAndReset) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ResourceBudgetTest, DefaultIsInactive) {
  ResourceBudget budget;
  EXPECT_FALSE(budget.active());
  EXPECT_FALSE(budget.has_deadline());
  EXPECT_FALSE(budget.has_memory_cap());
}

TEST(ResourceBudgetTest, EachLimitActivates) {
  ResourceBudget deadline;
  deadline.deadline_seconds = 1.5;
  EXPECT_TRUE(deadline.active());
  EXPECT_TRUE(deadline.has_deadline());

  ResourceBudget cap;
  cap.max_dp_table_bytes = 1 << 20;
  EXPECT_TRUE(cap.active());
  EXPECT_TRUE(cap.has_memory_cap());

  CancellationToken token;
  ResourceBudget cancellable;
  cancellable.cancellation = &token;
  EXPECT_TRUE(cancellable.active());
}

TEST(ResourceBudgetTest, ResolvedPinsAbsoluteDeadline) {
  ResourceBudget budget;
  budget.deadline_seconds = 10.0;
  const auto before = std::chrono::steady_clock::now();
  const ResourceBudget resolved = budget.Resolved();
  ASSERT_TRUE(resolved.absolute_deadline.has_value());
  EXPECT_GE(*resolved.absolute_deadline,
            before + std::chrono::seconds(9));
  // Resolving again keeps the pinned point instead of extending it.
  const ResourceBudget twice = resolved.Resolved();
  EXPECT_EQ(*twice.absolute_deadline, *resolved.absolute_deadline);
}

TEST(ResourceBudgetTest, ResolvedLeavesUnboundedBudgetAlone) {
  ResourceBudget budget;
  budget.max_dp_table_bytes = 1024;
  EXPECT_FALSE(budget.Resolved().absolute_deadline.has_value());
}

TEST(EstimateBytesTest, MatchesActualTableFootprint) {
  for (const int n : {1, 3, 8, 12}) {
    for (const bool pi_fan : {false, true}) {
      for (const bool aux : {false, true}) {
        Result<DpTable> table = DpTable::Create(n, pi_fan, aux);
        ASSERT_TRUE(table.ok());
        EXPECT_EQ(DpTable::EstimateBytes(n, pi_fan, aux),
                  table->MemoryBytes())
            << "n=" << n << " pi_fan=" << pi_fan << " aux=" << aux;
      }
    }
  }
}

TEST(EstimateBytesTest, OutOfRangeIsZero) {
  EXPECT_EQ(DpTable::EstimateBytes(0, true, false), 0u);
  EXPECT_EQ(DpTable::EstimateBytes(-3, true, false), 0u);
  EXPECT_EQ(DpTable::EstimateBytes(kMaxRelations + 1, true, false), 0u);
}

TEST(EstimateBytesTest, EstimateIsCheapAtFullWidth) {
  // The estimate for an unallocatable table must not itself allocate: 2^30
  // rows is ~25 GiB, and this returns instantly with the exact figure.
  const std::uint64_t bytes =
      DpTable::EstimateBytes(kMaxRelations, true, true);
  EXPECT_EQ(bytes, (std::uint64_t{1} << kMaxRelations) * 32);
}

TEST(GovernorStateTest, InactiveBudgetIsInert) {
  GovernorState governor{ResourceBudget{}};
  EXPECT_FALSE(governor.active());
  EXPECT_TRUE(governor.AdmitAllocation(1ull << 40).ok());
  EXPECT_FALSE(governor.CheckNow());
  EXPECT_FALSE(governor.aborted());
}

TEST(GovernorStateTest, AdmissionControl) {
  ResourceBudget budget;
  budget.max_dp_table_bytes = 4096;
  GovernorState governor(budget);
  EXPECT_TRUE(governor.active());
  EXPECT_TRUE(governor.AdmitAllocation(4096).ok());
  const Status rejected = governor.AdmitAllocation(4097);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.message().find("4097"), std::string::npos);
  EXPECT_NE(rejected.message().find("4096"), std::string::npos);
}

TEST(GovernorStateTest, ExpiredDeadlineAbortsAndStays) {
  ResourceBudget budget;
  budget.deadline_seconds = 0;
  GovernorState governor(budget);
  EXPECT_TRUE(governor.CheckNow());
  EXPECT_TRUE(governor.aborted());
  EXPECT_EQ(governor.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(governor.CheckNow());  // sticky
}

TEST(GovernorStateTest, CancellationObserved) {
  CancellationToken token;
  ResourceBudget budget;
  budget.cancellation = &token;
  GovernorState governor(budget);
  EXPECT_FALSE(governor.CheckNow());
  token.Cancel();
  EXPECT_TRUE(governor.CheckNow());
  EXPECT_EQ(governor.status().code(), StatusCode::kCancelled);
}

TEST(GovernorStateTest, TickAmortizesToStride) {
  CancellationToken token;
  token.Cancel();
  ResourceBudget budget;
  budget.cancellation = &token;
  GovernorState governor(budget);
  // The first kCheckStride - 1 ticks are pure counter decrements; the
  // stride-th performs the real check and observes the cancellation.
  for (std::uint32_t i = 0; i + 1 < GovernorState::kCheckStride; ++i) {
    EXPECT_FALSE(governor.Tick());
  }
  EXPECT_TRUE(governor.Tick());
  EXPECT_EQ(governor.status().code(), StatusCode::kCancelled);
}

TEST(GovernedOptimizeTest, MemoryCapRejectsOversizedTable) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(10, /*seed=*/1);
  OptimizerOptions options;
  options.budget.max_dp_table_bytes = 1024;  // 2^10 rows need far more
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernedOptimizeTest, GenerousCapMatchesUngoverned) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(9, /*seed=*/7);
  Result<OptimizeOutcome> plain =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  OptimizerOptions governed;
  governed.budget.max_dp_table_bytes = 1ull << 30;
  governed.budget.deadline_seconds = 3600;
  Result<OptimizeOutcome> capped =
      OptimizeJoin(instance.catalog, instance.graph, governed);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(plain->cost, capped->cost);
}

TEST(GovernedOptimizeTest, ExpiredDeadlineFailsFastEvenForTinyProblems) {
  // n=4 never reaches an amortized stride check; the entry gate must
  // still notice the dead deadline.
  OptimizerOptions options;
  options.budget.deadline_seconds = 0;
  Result<OptimizeOutcome> outcome = OptimizeJoin(
      testing::Table1Catalog(), testing::Figure3Graph(), options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernedOptimizeTest, PreCancelledTokenFailsFast) {
  CancellationToken token;
  token.Cancel();
  OptimizerOptions options;
  options.budget.cancellation = &token;
  Result<OptimizeOutcome> outcome = OptimizeJoin(
      testing::Table1Catalog(), testing::Figure3Graph(), options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
}

TEST(GovernedOptimizeTest, CartesianPathIsGovernedToo) {
  OptimizerOptions options;
  options.budget.max_dp_table_bytes = 1;
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(testing::Table1Catalog(), options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernedOptimizeTest, ReoptimizeInPlaceHonorsCancellation) {
  const Catalog catalog = testing::Table1Catalog();
  const JoinGraph graph = testing::Figure3Graph();
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());

  CancellationToken token;
  token.Cancel();
  OptimizerOptions options;
  options.budget.cancellation = &token;
  Result<float> cost = ReoptimizeJoinInPlace(catalog, graph, options,
                                             &outcome->table, nullptr);
  ASSERT_FALSE(cost.ok());
  EXPECT_EQ(cost.status().code(), StatusCode::kCancelled);

  // The aborted pass must leave the table reusable: the next clean
  // in-place pass reproduces the original optimum.
  token.Reset();
  Result<float> clean = ReoptimizeJoinInPlace(
      catalog, graph, OptimizerOptions{}, &outcome->table, nullptr);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, outcome->cost);
}

TEST(GovernedOptimizeTest, ThresholdLadderSharesOneDeadline) {
  // An already-expired deadline fails the ladder's very first pass; the
  // ladder must propagate the budget error instead of retrying forever
  // with higher thresholds.
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(8, /*seed=*/3);
  OptimizerOptions options;
  options.budget.deadline_seconds = 0;
  ThresholdLadderOptions ladder;
  ladder.initial_threshold = 1.0f;
  Result<LadderOutcome> outcome = OptimizeJoinWithThresholds(
      instance.catalog, instance.graph, options, ladder);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace blitz
