#include "baseline/leftdeep.h"

#include <bit>
#include <limits>
#include <vector>

#include "common/check.h"

namespace blitz {

Result<LeftDeepResult> OptimizeLeftDeep(const Catalog& catalog,
                                        const JoinGraph& graph,
                                        CostModelKind cost_model) {
  const int n = catalog.num_relations();
  if (graph.num_relations() != n) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  const std::uint64_t table_size = std::uint64_t{1} << n;

  std::vector<double> base_cards(n);
  for (int i = 0; i < n; ++i) base_cards[i] = catalog.cardinality(i);
  std::vector<double> cards;
  ComputeAllCardinalities(graph, base_cards, &cards);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(table_size, kInf);
  // For each subset, the base relation joined last (-1 for singletons).
  std::vector<int> last_relation(table_size, -1);

  for (int i = 0; i < n; ++i) cost[std::uint64_t{1} << i] = 0.0;

  LeftDeepResult result;
  for (std::uint64_t s = 3; s < table_size; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singleton
    double best = kInf;
    int best_last = -1;
    // A left-deep plan for S joins some base relation r last; the left
    // operand is the (left-deep) plan for S - {r}.
    std::uint64_t members = s;
    while (members != 0) {
      const int r = std::countr_zero(members);
      members &= members - 1;
      const std::uint64_t rhs = std::uint64_t{1} << r;
      const std::uint64_t lhs = s ^ rhs;
      ++result.joins_enumerated;
      const double candidate =
          cost[lhs] +
          EvalJoinCost(cost_model, cards[s], cards[lhs], base_cards[r]);
      if (candidate < best) {
        best = candidate;
        best_last = r;
      }
    }
    cost[s] = best;
    last_relation[s] = best_last;
  }

  // Rebuild the vine from the last_relation links.
  const std::uint64_t full = table_size - 1;
  std::vector<int> join_order;  // relations in reverse join order
  std::uint64_t s = full;
  while ((s & (s - 1)) != 0) {
    const int r = last_relation[s];
    BLITZ_CHECK(r >= 0);
    join_order.push_back(r);
    s ^= std::uint64_t{1} << r;
  }
  Plan plan = Plan::Leaf(std::countr_zero(s));
  for (auto it = join_order.rbegin(); it != join_order.rend(); ++it) {
    plan = Plan::Join(std::move(plan), Plan::Leaf(*it));
  }
  result.plan = std::move(plan);
  result.cost = cost[full];
  return result;
}

}  // namespace blitz
