#ifndef BLITZ_BASELINE_HYBRID_H_
#define BLITZ_BASELINE_HYBRID_H_

#include <cstdint>

#include "card/estimator.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "governor/budget.h"
#include "parallel/parallel_options.h"
#include "plan/plan.h"
#include "query/join_graph.h"
#include "simd/dispatch.h"

namespace blitz {

/// Options for the hybrid randomized/DP optimizer.
struct HybridOptions {
  CostModelKind cost_model = CostModelKind::kNaive;

  /// Maximum relations handed to one exact blitzsplit invocation. The
  /// per-round cost is O(3^block_size); 10-14 is a good range.
  int block_size = 12;

  /// Independent restarts with different random block decompositions; the
  /// cheapest overall plan wins.
  int restarts = 4;

  std::uint64_t seed = 1;

  /// Polish each restart's plan with a short iterative-improvement run.
  bool polish = true;
  int polish_moves = 2000;

  /// Also evaluate a greedy-operator-ordering plan (polished like the
  /// restarts) as one more candidate, so the hybrid never loses to the
  /// plain greedy heuristic.
  bool seed_with_greedy = true;

  /// Resource limits for the whole hybrid run (inactive by default). The
  /// deadline is resolved once at entry and shared by every restart, block
  /// solve, and polish loop; the memory cap governs each block's DP table.
  /// On exhaustion the call returns DeadlineExceeded / ResourceExhausted /
  /// Cancelled — it does not fall back itself (OptimizeQuery's degradation
  /// ladder owns that policy).
  ResourceBudget budget;

  /// Multicore configuration forwarded to every exact block solve; blocks
  /// of the default size stay sequential (see ParallelOptimizerOptions).
  ParallelOptimizerOptions parallel;

  /// SIMD kernel request forwarded to every exact block solve (see
  /// simd/dispatch.h; kAuto = cpuid probe + BLITZ_SIMD override).
  SimdLevel simd = SimdLevel::kAuto;

  /// Cardinality estimator (card/estimator.h). Null or exact keeps the
  /// Section 5.1 unit statistics (JoinCardinality / PiSpan) verbatim. A
  /// non-exact estimator supplies every unit cardinality, unit-pair
  /// selectivity, and candidate-plan cost the search consumes — the block
  /// DPs then run exactly over those *estimated* unit statistics, and
  /// HybridResult::cost is the estimated cost of the winner (re-evaluate
  /// under the true model to measure regret). Not owned; must outlive the
  /// call.
  const CardinalityEstimator* estimator = nullptr;

  /// Canonical validation of every knob (block_size in [2, kMaxRelations],
  /// at least one restart, non-negative polish budget, valid parallel
  /// options); called by OptimizeHybrid before any work.
  Status Validate() const;
};

/// Result of a hybrid optimization.
struct HybridResult {
  Plan plan;
  double cost = 0;
  int dp_invocations = 0;  ///< Exact DP solves performed across restarts.
};

/// Hybrid join-order optimizer for queries too large for one exhaustive
/// blitzsplit run — the direction Section 7 of the paper announces ("We are
/// currently experimenting with a hybrid method ... combines dynamic
/// programming with randomized search", inspired by Chained Local
/// Optimization [MO]).
///
/// Strategy: treat each base relation as a unit; repeatedly gather a block
/// of up to block_size connectivity-adjacent units (seeded at random, grown
/// BFS-style through the unit-level join graph), solve the block *exactly*
/// with blitzsplit over unit-level statistics (unit cardinality = join
/// cardinality of its base set; unit-pair selectivity = Pi_span of their
/// base sets), and fuse the block into one unit carrying the composed plan.
/// Rounds repeat until one unit remains. Randomized restarts explore
/// different decompositions, and an optional iterative-improvement polish
/// pass cleans up block-boundary artifacts.
///
/// For num_relations <= block_size this reduces to a single exact
/// blitzsplit run. Unlike the exhaustive optimizer, results for larger
/// inputs are not guaranteed optimal.
Result<HybridResult> OptimizeHybrid(const Catalog& catalog,
                                    const JoinGraph& graph,
                                    const HybridOptions& options);

}  // namespace blitz

#endif  // BLITZ_BASELINE_HYBRID_H_
