#ifndef BLITZ_OBS_PROFILER_PHASE_PROFILE_H_
#define BLITZ_OBS_PROFILER_PHASE_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <string>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <x86intrin.h>
#define BLITZ_PROF_HAS_RDTSC 1
#endif

namespace blitz {

/// Phase taxonomy of the blitzsplit per-subset kernel. Every tick of a
/// profiled DP pass is attributed to exactly one phase, so the buckets sum
/// to (nearly) the pass wall time — the attribution contract the perf
/// observatory is built on (DESIGN.md section 11).
///
///   kTableWrite     compute_properties(S): the card/pi_fan/aux recurrences
///                   and their row writes, the split-independent kappa', and
///                   the final cost/best_lhs row write.
///   kGateFilter     the model-independent operand gate: the scalar
///                   nested-if loop up to the kappa'' evaluation, or the
///                   SIMD dense build + blocked filter.
///   kSurvivorReplay the re-run of SIMD filter survivors through the scalar
///                   nested-if body (zero on scalar passes by definition).
///   kKappa2         evaluations of the split-dependent cost kappa''.
///   kDriver         everything between subsets: loop control, governor
///                   ticks, rank fan-out and barriers.
enum class DpPhase : int {
  kTableWrite = 0,
  kGateFilter,
  kSurvivorReplay,
  kKappa2,
  kDriver,
};
inline constexpr int kNumDpPhases = 5;

/// Short stable name ("table_write", "gate_filter", "survivor_replay",
/// "kappa2", "driver") — the keys of every exported profile JSON.
const char* DpPhaseName(DpPhase phase);

/// Monotonic fine-grained timestamp for phase attribution: the TSC on x86
/// (one ~20-cycle rdtsc, no serialization — attribution tolerates the
/// slight skew), steady_clock nanoseconds elsewhere. Units are "ticks";
/// convert with ProfTicksPerSecond().
inline std::uint64_t ProfTicks() {
#if defined(BLITZ_PROF_HAS_RDTSC)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Ticks per second of ProfTicks, calibrated against steady_clock once per
/// process (~10 ms spin on first call, cached thereafter). Call at export
/// time, never in the hot path.
double ProfTicksPerSecond();

/// Upper bound on subset-size ranks a profile can hold (index = popcount,
/// 1-based; core/relset.h caps problems at kMaxRelations = 30 relations).
inline constexpr int kProfMaxRanks = 31;

/// Per-subset-size-rank attribution: phase tick totals plus the operation
/// and SIMD survivor tallies that turn "slow" into "why".
struct RankPhaseStats {
  std::uint64_t phase_ticks[kNumDpPhases] = {};
  std::uint64_t subsets = 0;            ///< Subsets of this rank processed.
  std::uint64_t loop_iterations = 0;    ///< Best-split loop iterations.
  std::uint64_t kappa2_evaluations = 0; ///< kappa'' evaluations.
  std::uint64_t filter_lanes = 0;       ///< Lanes through the SIMD filter.
  std::uint64_t filter_survivors = 0;   ///< Lanes that survived to replay.
  std::uint64_t wall_ticks = 0;         ///< Rank wall (parallel driver only).

  RankPhaseStats& operator+=(const RankPhaseStats& other) {
    for (int p = 0; p < kNumDpPhases; ++p) {
      phase_ticks[p] += other.phase_ticks[p];
    }
    subsets += other.subsets;
    loop_iterations += other.loop_iterations;
    kappa2_evaluations += other.kappa2_evaluations;
    filter_lanes += other.filter_lanes;
    filter_survivors += other.filter_survivors;
    wall_ticks += other.wall_ticks;
    return *this;
  }

  /// Fraction of filtered lanes that survived to the scalar replay (0 when
  /// the SIMD kernel never engaged at this rank).
  double SurvivorRate() const {
    return filter_lanes == 0
               ? 0.0
               : static_cast<double>(filter_survivors) /
                     static_cast<double>(filter_lanes);
  }
};

/// The per-phase, per-rank attribution of one (or several accumulated)
/// blitzsplit DP passes. Filled by the ProfilingInstrumentation policy
/// (core/instrumentation.h); a parallel pass folds per-worker profiles at
/// each rank barrier, so phase ticks are CPU time (they can exceed wall
/// time on multicore passes). Plain value type: copy, +=, reset freely.
struct PassProfile {
  RankPhaseStats ranks[kProfMaxRanks] = {};  ///< Index = popcount(S).
  std::uint64_t passes = 0;                  ///< DP passes accumulated.

  PassProfile& operator+=(const PassProfile& other) {
    for (int k = 0; k < kProfMaxRanks; ++k) ranks[k] += other.ranks[k];
    passes += other.passes;
    return *this;
  }

  bool empty() const { return passes == 0; }

  /// Tick total for one phase across all ranks.
  std::uint64_t PhaseTicks(DpPhase phase) const;

  /// Tick total across all phases and ranks — the attributed time.
  std::uint64_t TotalTicks() const;

  /// TotalTicks converted to seconds via ProfTicksPerSecond().
  double AttributedSeconds() const;

  /// Filter-lane/survivor totals across ranks (SIMD survivor rate).
  std::uint64_t TotalFilterLanes() const;
  std::uint64_t TotalFilterSurvivors() const;

  /// {"passes":...,"ticks_per_second":...,"attributed_seconds":...,
  ///  "phase_totals":{phase:{"ticks":...,"seconds":...,"fraction":...}},
  ///  "ranks":[{"k":...,"subsets":...,...,"survivor_rate":...,
  ///            "phases":{phase:seconds}}]}  — ranks with no subsets are
  /// omitted; always a valid JSON object.
  std::string ToJson() const;

  /// Compact per-rank table for terminal output ("" when empty).
  std::string ToString() const;
};

}  // namespace blitz

#endif  // BLITZ_OBS_PROFILER_PHASE_PROFILE_H_
