// blitzopt: command-line join-order optimizer over .bjq query files.
//
// Usage:
//   blitzopt <query.bjq> [--execute] [--counts] [--tree] [--explain]
//
// The .bjq format (see src/textio/bjq.h):
//   relation <name> <cardinality> [<tuple_bytes>]
//   predicate <a> <b> <selectivity>
//   costmodel <naive|sm|dnl|min>
//   threshold <initial_plan_cost_threshold>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "core/optimizer.h"
#include "exec/datagen.h"
#include "exec/executor.h"
#include "plan/algorithm_choice.h"
#include "plan/explain.h"
#include "plan/plan.h"
#include "textio/bjq.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: blitzopt <query.bjq> [--execute] [--counts] "
               "[--tree] [--explain]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blitz;
  if (argc < 2) return Usage();

  std::string path;
  bool execute = false;
  bool counts = false;
  bool tree = false;
  bool explain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--execute") == 0) {
      execute = true;
    } else if (std::strcmp(argv[i], "--counts") == 0) {
      counts = true;
    } else if (std::strcmp(argv[i], "--tree") == 0) {
      tree = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  Result<QuerySpec> spec = LoadBjqFile(path);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("%d relations, %d predicates, cost model %s\n",
              spec->catalog.num_relations(), spec->graph.num_predicates(),
              CostModelKindToString(spec->cost_model));

  OptimizerOptions options;
  options.cost_model = spec->cost_model;
  options.count_operations = counts;

  Result<OptimizeOutcome> outcome = Status::Internal("unset");
  int passes = 1;
  if (spec->threshold.has_value()) {
    ThresholdLadderOptions ladder;
    ladder.initial_threshold = *spec->threshold;
    Result<LadderOutcome> laddered = OptimizeJoinWithThresholds(
        spec->catalog, spec->graph, options, ladder);
    if (!laddered.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   laddered.status().ToString().c_str());
      return 1;
    }
    passes = laddered->passes;
    outcome = std::move(laddered->outcome);
  } else {
    outcome = OptimizeJoin(spec->catalog, spec->graph, options);
  }
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  if (!plan.ok()) {
    std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  ChooseAlgorithms(&plan.value(), spec->catalog, spec->graph,
                   spec->cost_model);

  std::printf("plan: %s\n", plan->ToString(&spec->catalog).c_str());
  if (tree) std::printf("%s", plan->ToTreeString(&spec->catalog).c_str());
  if (explain) {
    std::printf("%s", ExplainPlan(*plan, spec->catalog, spec->graph,
                                  spec->cost_model)
                          .c_str());
  }
  std::printf("cost: %g (%d optimizer pass%s)\n",
              static_cast<double>(outcome->cost), passes,
              passes == 1 ? "" : "es");
  std::printf("estimated result cardinality: %g\n",
              outcome->table.card(spec->catalog.AllRelations()));
  if (counts) {
    std::printf("operation counts: %s\n",
                outcome->counters.ToString().c_str());
  }

  if (execute) {
    // Refuse to materialize unreasonably large intermediates: the bundled
    // engine is a validator, not a warehouse.
    constexpr double kMaxRows = 5e6;
    double biggest = 0;
    std::function<void(const PlanNode&)> scan = [&](const PlanNode& node) {
      biggest = std::max(biggest, outcome->table.card(node.set));
      if (!node.is_leaf()) {
        scan(*node.left);
        scan(*node.right);
      }
    };
    scan(plan->root());
    if (biggest > kMaxRows) {
      std::printf(
          "skipping --execute: an intermediate result is estimated at %g "
          "rows (limit %g)\n",
          biggest, kMaxRows);
      return 0;
    }
    Result<std::vector<ExecTable>> tables =
        GenerateTables(spec->catalog, spec->graph, DataGenOptions{});
    if (!tables.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   tables.status().ToString().c_str());
      return 1;
    }
    Result<ExecutionResult> result =
        ExecutePlan(*plan, *tables, spec->graph);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("executed on synthetic data: %llu result rows\n",
                static_cast<unsigned long long>(result->result.num_rows()));
  }
  return 0;
}
