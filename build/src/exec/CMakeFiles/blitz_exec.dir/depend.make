# Empty dependencies file for blitz_exec.
# This may be replaced when dependencies are built.
