#ifndef BLITZ_API_OPTIMIZE_QUERY_H_
#define BLITZ_API_OPTIMIZE_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "baseline/hybrid.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "core/optimizer.h"
#include "cost/cost_model.h"
#include "parallel/parallel_options.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

class DpTableArena;

/// Which optimizer tier produced a query's plan. Tiers are ordered from
/// most to least thorough; the degradation ladder walks them downward when
/// the resource budget runs out.
enum class OptimizerTier {
  kExhaustive = 0,  ///< Full blitzsplit DP (exact optimum).
  kHybrid,          ///< Randomized block decomposition + per-block DP.
  kGreedy,          ///< O(n^3) greedy operator ordering (last resort).
};

/// Short lowercase name ("exhaustive", "hybrid", "greedy").
const char* OptimizerTierName(OptimizerTier tier);

/// One-call configuration for the top-level entry point.
///
/// Cross-cutting knobs (cost_model, budget, parallel, count_operations) are
/// declared once here and stamped into the embedded per-tier sub-structs by
/// Normalized() — callers set them in one place and every tier sees the
/// same values. Tier-specific knobs (nested_ifs, block_size, restarts, ...)
/// live on the sub-structs and are honored as-is.
struct QueryOptimizerOptions {
  CostModelKind cost_model = CostModelKind::kNaive;

  /// Largest n optimized exhaustively (O(3^n) time, O(2^n) space); larger
  /// queries fall back to the hybrid randomized/DP optimizer.
  int exhaustive_limit = 16;

  /// If set, exhaustive optimization runs under the Section 6.4 threshold
  /// ladder starting at this value.
  std::optional<float> initial_cost_threshold;

  /// Tier-specific configuration of the exhaustive path (nested_ifs and
  /// friends). Cross-cutting fields here are overwritten by Normalized().
  OptimizerOptions exhaustive;

  /// Tier-specific configuration of the fallback for n > exhaustive_limit
  /// (block_size, restarts, seed, polish). Cross-cutting fields here are
  /// overwritten by Normalized().
  HybridOptions hybrid;

  /// Multicore configuration shared by every tier's DP passes (sequential
  /// by default; see parallel/parallel_options.h).
  ParallelOptimizerOptions parallel;

  /// SIMD kernel request shared by every tier's DP passes (see
  /// simd/dispatch.h). kAuto probes the CPU and honors BLITZ_SIMD; the
  /// resolved per-pass choice is reported in OptimizeReport::simd_level.
  SimdLevel simd = SimdLevel::kAuto;

  /// Cardinality estimator shared by every tier (card/estimator.h). Null —
  /// the default — and an exact estimator resolve to the paper's Section
  /// 5.1 derivation: bit-identical DP tables, tie-breaks, and counters. A
  /// non-exact estimator (hist, noest) supplies every cardinality the
  /// tiers consume; OptimizedQuery::cost is still re-evaluated under the
  /// *true* statistics, so (cost under estimator plan) / (cost under exact
  /// plan) is the estimator's regret. The resolved name is reported in
  /// OptimizeReport::estimator. Not owned; must outlive the call.
  const CardinalityEstimator* estimator = nullptr;

  /// Attach physical join algorithms to the plan (Section 6.5 post-pass).
  bool attach_algorithms = true;

  /// Fill OptimizedQuery::report with per-phase wall times and optimizer
  /// bookkeeping (small constant overhead per query).
  bool collect_report = false;

  /// Tally the Section 3.3 / 6.2 operation counters into the report
  /// (requires collect_report; adds the counting-policy overhead to the
  /// exhaustive path).
  bool count_operations = false;

  /// Collect the performance observatory's per-phase, per-rank DP
  /// attribution into OptimizeReport::profile (requires collect_report;
  /// exhaustive tier only — see OptimizerOptions::profile for the cost and
  /// semantics). Takes precedence over count_operations on the DP passes.
  bool collect_profile = false;

  /// DP-table pool shared across calls (core/table_arena.h; null = allocate
  /// per call). The exhaustive tier acquires its 2^n table here and
  /// OptimizeQuery releases it back after plan extraction, so a long-lived
  /// caller (the blitzd serving tier) reuses buffers instead of churning
  /// the allocator. Memory admission control still runs against the
  /// budget's cap before acquisition. Not owned.
  DpTableArena* table_arena = nullptr;

  /// Resource limits (inactive by default; see governor/budget.h). The
  /// deadline and memory cap govern each tier attempt individually — the
  /// ladder bounds the number of attempts and the last-resort greedy tier
  /// is polynomial and ungoverned, so a governed call always terminates
  /// promptly, with or without degradation.
  ResourceBudget budget;

  /// Graceful degradation: when a tier exhausts the budget (deadline or
  /// memory cap), retry with the next cheaper tier (exhaustive -> hybrid ->
  /// greedy) instead of failing. Cancellation never degrades — a cancelled
  /// call returns kCancelled immediately. With degradation off the first
  /// tier's budget error is returned as-is.
  bool degrade_on_budget = true;

  /// Canonical validation of the whole option tree: the top-level knobs
  /// plus (via one chain) OptimizerOptions::Validate(),
  /// HybridOptions::Validate(), and ParallelOptimizerOptions::Validate().
  Status Validate() const;

  /// Returns a copy with the cross-cutting knobs stamped into the embedded
  /// sub-structs — the single source of truth OptimizeQuery actually runs.
  QueryOptimizerOptions Normalized() const;
};

/// Per-query observability report (attached when collect_report is set).
/// Wall times are phase-exclusive: total_seconds covers the whole call,
/// the phase fields its non-overlapping stages.
struct OptimizeReport {
  double total_seconds = 0;
  double optimize_seconds = 0;   ///< DP passes or hybrid search.
  double extract_seconds = 0;    ///< Plan extraction from the DP table.
  double evaluate_seconds = 0;   ///< Independent cost re-evaluation.
  double attach_seconds = 0;     ///< Algorithm attachment post-pass.

  /// One entry per threshold-ladder pass (empty when no ladder ran);
  /// +inf marks the last-resort unbounded pass.
  std::vector<float> thresholds_tried;

  /// Section 3.3 / 6.2 operation counters (all zero unless
  /// count_operations was set; exhaustive path only).
  CountingInstrumentation counters;

  /// Peak DP-table footprint (0 on the hybrid path, which sizes its
  /// tables per block inside OptimizeJoin).
  std::uint64_t peak_dp_table_bytes = 0;

  /// The SIMD dispatch level the DP passes ran (options.simd resolved
  /// against the CPU and BLITZ_SIMD — the per-pass kernel choice; all
  /// passes of one call share it). Never kAuto.
  SimdLevel simd_level = SimdLevel::kScalar;

  /// The estimator the call resolved cardinalities through (kPaperFanout
  /// when options.estimator was null — the built-in exact derivation).
  EstimatorKind estimator = EstimatorKind::kPaperFanout;

  /// Tier attempts consumed (1 = no degradation).
  int tiers_attempted = 1;

  /// One human-readable entry per degradation step: the abandoned tier and
  /// the budget error that forced the step down.
  std::vector<std::string> degradations;

  /// Per-phase, per-rank DP attribution (engaged iff collect_profile was
  /// set and the exhaustive tier ran; ladder re-optimizations accumulate).
  std::optional<PassProfile> profile;
};

/// The result of OptimizeQuery. The tier that produced the plan lives here
/// (and only here — OptimizeReport carries timings and counters, not a
/// duplicate copy); exactness is derived from it.
struct OptimizedQuery {
  Plan plan;

  /// Double-precision cost of `plan` under the chosen model (re-evaluated
  /// by the independent plan evaluator, so it is comparable across the
  /// exhaustive and hybrid paths).
  double cost = 0;

  /// The tier that produced the plan (always set, report or not).
  OptimizerTier tier = OptimizerTier::kExhaustive;

  /// Optimizer passes (> 1 only when a threshold ladder re-optimized).
  int passes = 1;

  /// Observability report; engaged iff options.collect_report was set.
  std::optional<OptimizeReport> report;

  /// True when this result was answered from the serving tier's plan cache
  /// (src/serve/plancache.h) rather than a fresh optimizer run; `tier`
  /// still names the tier that originally produced the stored plan, so
  /// provenance survives reuse. OptimizeQuery itself always leaves this
  /// false.
  bool from_cache = false;

  /// True if the plan is a guaranteed optimum (exhaustive tier).
  bool exact() const { return tier == OptimizerTier::kExhaustive; }

  /// Human-readable summary of the tier, passes, and (when collected) the
  /// report's timings, counters, and degradation history.
  std::string ReportToString() const;
};

/// The library's front door: optimizes the join of all catalog relations
/// under `graph`, choosing exhaustive blitzsplit or the hybrid fallback by
/// problem size, applying the optional threshold ladder, enforcing the
/// resource budget (degrading exhaustive -> hybrid -> greedy on exhaustion
/// rather than failing), and attaching physical algorithms. This is the
/// call a downstream system embeds: under an armed budget it never hangs
/// and, with degradation on, always returns *some* plan — OptimizedQuery
/// and OptimizeReport name the tier that produced it.
Result<OptimizedQuery> OptimizeQuery(const Catalog& catalog,
                                     const JoinGraph& graph,
                                     const QueryOptimizerOptions& options);

}  // namespace blitz

#endif  // BLITZ_API_OPTIMIZE_QUERY_H_
