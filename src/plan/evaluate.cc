#include "plan/evaluate.h"

#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace blitz {

namespace {

std::vector<double> BaseCards(const Catalog& catalog) {
  std::vector<double> cards(catalog.num_relations());
  for (int i = 0; i < catalog.num_relations(); ++i) {
    cards[i] = catalog.cardinality(i);
  }
  return cards;
}

/// Recursive double-precision cost; `cards` is threaded through to avoid
/// per-node recomputation. Returns the subtree cost and writes the subtree's
/// output cardinality to *out_card.
double CostRec(const PlanNode& node, const std::vector<double>& cards,
               const JoinGraph& graph, CostModelKind kind, double* out_card) {
  if (node.is_leaf()) {
    *out_card = cards[node.relation()];
    return 0.0;  // cost(R) = 0, Equation (1).
  }
  double lhs_card = 0;
  double rhs_card = 0;
  const double lhs_cost = CostRec(*node.left, cards, graph, kind, &lhs_card);
  const double rhs_cost = CostRec(*node.right, cards, graph, kind, &rhs_card);
  const double span = graph.PiSpan(node.left->set, node.right->set);
  *out_card = lhs_card * rhs_card * span;
  return lhs_cost + rhs_cost + EvalJoinCost(kind, *out_card, lhs_card,
                                            rhs_card);
}

/// Single-precision variant mirroring the operation order of the blitzsplit
/// inner loop: operand costs summed in float, kappa'' rounded to float and
/// added, then kappa' rounded to float and added last.
float CostRecFloat(const PlanNode& node, const std::vector<double>& cards,
                   const JoinGraph& graph, CostModelKind kind,
                   double* out_card) {
  if (node.is_leaf()) {
    *out_card = cards[node.relation()];
    return 0.0f;
  }
  double lhs_card = 0;
  double rhs_card = 0;
  const float lhs_cost =
      CostRecFloat(*node.left, cards, graph, kind, &lhs_card);
  const float rhs_cost =
      CostRecFloat(*node.right, cards, graph, kind, &rhs_card);
  const double span = graph.PiSpan(node.left->set, node.right->set);
  *out_card = lhs_card * rhs_card * span;
  const float oprnd_cost = lhs_cost + rhs_cost;
  const float kappa2 = static_cast<float>(
      EvalKappaDoublePrime(kind, *out_card, lhs_card, rhs_card));
  const float kappa1 =
      static_cast<float>(EvalKappaPrime(kind, *out_card));
  return (oprnd_cost + kappa2) + kappa1;
}

/// Estimator-resolved mirror of CostRec: cardinalities from
/// EstimateCardinality instead of the induced-subgraph product.
double CostRecEst(const PlanNode& node, const CardinalityEstimator& estimator,
                  CostModelKind kind, double* out_card) {
  if (node.is_leaf()) {
    *out_card = estimator.BaseCardinality(node.relation());
    return 0.0;
  }
  double lhs_card = 0;
  double rhs_card = 0;
  const double lhs_cost = CostRecEst(*node.left, estimator, kind, &lhs_card);
  const double rhs_cost = CostRecEst(*node.right, estimator, kind, &rhs_card);
  *out_card = estimator.EstimateCardinality(node.set);
  return lhs_cost + rhs_cost + EvalJoinCost(kind, *out_card, lhs_card,
                                            rhs_card);
}

/// Estimator-resolved mirror of CostRecFloat (same float operation order).
float CostRecFloatEst(const PlanNode& node,
                      const CardinalityEstimator& estimator,
                      CostModelKind kind, double* out_card) {
  if (node.is_leaf()) {
    *out_card = estimator.BaseCardinality(node.relation());
    return 0.0f;
  }
  double lhs_card = 0;
  double rhs_card = 0;
  const float lhs_cost =
      CostRecFloatEst(*node.left, estimator, kind, &lhs_card);
  const float rhs_cost =
      CostRecFloatEst(*node.right, estimator, kind, &rhs_card);
  *out_card = estimator.EstimateCardinality(node.set);
  const float oprnd_cost = lhs_cost + rhs_cost;
  const float kappa2 = static_cast<float>(
      EvalKappaDoublePrime(kind, *out_card, lhs_card, rhs_card));
  const float kappa1 =
      static_cast<float>(EvalKappaPrime(kind, *out_card));
  return (oprnd_cost + kappa2) + kappa1;
}

}  // namespace

double EvaluateCardinality(const PlanNode& node, const Catalog& catalog,
                           const JoinGraph& graph) {
  return graph.JoinCardinality(node.set, BaseCards(catalog));
}

double EvaluateCost(const PlanNode& node, const Catalog& catalog,
                    const JoinGraph& graph, CostModelKind kind) {
  double out_card = 0;
  return CostRec(node, BaseCards(catalog), graph, kind, &out_card);
}

float EvaluateCostFloat(const PlanNode& node, const Catalog& catalog,
                        const JoinGraph& graph, CostModelKind kind) {
  double out_card = 0;
  return CostRecFloat(node, BaseCards(catalog), graph, kind, &out_card);
}

double EvaluateCost(const Plan& plan, const Catalog& catalog,
                    const JoinGraph& graph, CostModelKind kind) {
  BLITZ_CHECK(!plan.empty());
  TraceSpan span("EvaluateCost", "plan");
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("plan.cost_evaluations");
  }
  const double cost = EvaluateCost(plan.root(), catalog, graph, kind);
  span.AddArg("cost", cost);
  return cost;
}

float EvaluateCostFloat(const Plan& plan, const Catalog& catalog,
                        const JoinGraph& graph, CostModelKind kind) {
  BLITZ_CHECK(!plan.empty());
  return EvaluateCostFloat(plan.root(), catalog, graph, kind);
}

double EvaluateCardinality(const PlanNode& node,
                           const CardinalityEstimator& estimator) {
  return estimator.EstimateCardinality(node.set);
}

double EvaluateCost(const PlanNode& node,
                    const CardinalityEstimator& estimator,
                    CostModelKind kind) {
  double out_card = 0;
  return CostRecEst(node, estimator, kind, &out_card);
}

double EvaluateCost(const Plan& plan, const CardinalityEstimator& estimator,
                    CostModelKind kind) {
  BLITZ_CHECK(!plan.empty());
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("plan.cost_evaluations");
  }
  return EvaluateCost(plan.root(), estimator, kind);
}

float EvaluateCostFloat(const PlanNode& node,
                        const CardinalityEstimator& estimator,
                        CostModelKind kind) {
  double out_card = 0;
  return CostRecFloatEst(node, estimator, kind, &out_card);
}

float EvaluateCostFloat(const Plan& plan,
                        const CardinalityEstimator& estimator,
                        CostModelKind kind) {
  BLITZ_CHECK(!plan.empty());
  return EvaluateCostFloat(plan.root(), estimator, kind);
}

}  // namespace blitz
