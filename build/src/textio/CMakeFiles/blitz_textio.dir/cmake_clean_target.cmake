file(REMOVE_RECURSE
  "libblitz_textio.a"
)
