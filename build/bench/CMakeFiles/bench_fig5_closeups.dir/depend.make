# Empty dependencies file for bench_fig5_closeups.
# This may be replaced when dependencies are built.
