#include "baseline/local_search.h"

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "baseline/random_plans.h"
#include "plan/evaluate.h"

namespace blitz {

namespace {

void CollectInternal(PlanNode* node, std::vector<PlanNode*>* out) {
  if (node->is_leaf()) return;
  out->push_back(node);
  CollectInternal(node->left.get(), out);
  CollectInternal(node->right.get(), out);
}

void CollectLeaves(PlanNode* node, std::vector<PlanNode*>* out) {
  if (node->is_leaf()) {
    out->push_back(node);
    return;
  }
  CollectLeaves(node->left.get(), out);
  CollectLeaves(node->right.get(), out);
}

RelSet RecomputeSets(PlanNode* node) {
  if (!node->is_leaf()) {
    node->set = RecomputeSets(node->left.get()) |
                RecomputeSets(node->right.get());
  }
  return node->set;
}

/// (LL x LR) x R  ->  LL x (LR x R). Requires an internal left child.
void RotateLeft(PlanNode* x) {
  BLITZ_DCHECK(!x->is_leaf() && !x->left->is_leaf());
  std::unique_ptr<PlanNode> l = std::move(x->left);
  std::unique_ptr<PlanNode> ll = std::move(l->left);
  std::unique_ptr<PlanNode> lr = std::move(l->right);
  std::unique_ptr<PlanNode> r = std::move(x->right);
  l->left = std::move(lr);
  l->right = std::move(r);
  l->set = l->left->set | l->right->set;
  x->left = std::move(ll);
  x->right = std::move(l);
}

/// L x (RL x RR)  ->  (L x RL) x RR. Requires an internal right child.
void RotateRight(PlanNode* x) {
  BLITZ_DCHECK(!x->is_leaf() && !x->right->is_leaf());
  std::unique_ptr<PlanNode> r = std::move(x->right);
  std::unique_ptr<PlanNode> rl = std::move(r->left);
  std::unique_ptr<PlanNode> rr = std::move(r->right);
  std::unique_ptr<PlanNode> l = std::move(x->left);
  r->left = std::move(l);
  r->right = std::move(rl);
  r->set = r->left->set | r->right->set;
  x->left = std::move(r);
  x->right = std::move(rr);
}

}  // namespace

bool ApplyRandomMove(Plan* plan, Rng* rng) {
  if (plan->empty() || plan->root().is_leaf()) return false;
  PlanNode* root = &plan->mutable_root();
  std::vector<PlanNode*> internal;
  CollectInternal(root, &internal);
  // Try a handful of times in case the drawn (node, move) pair is not
  // applicable; with >= 1 internal node, commutativity always applies, so
  // this terminates quickly.
  for (int attempt = 0; attempt < 16; ++attempt) {
    PlanNode* node = internal[rng->NextBounded(internal.size())];
    switch (rng->NextInt(0, 3)) {
      case 0:  // commutativity
        std::swap(node->left, node->right);
        return true;
      case 1:  // left associativity rotation
        if (!node->left->is_leaf()) {
          RotateLeft(node);
          return true;
        }
        break;
      case 2:  // right associativity rotation
        if (!node->right->is_leaf()) {
          RotateRight(node);
          return true;
        }
        break;
      case 3: {  // exchange two leaves
        std::vector<PlanNode*> leaves;
        CollectLeaves(root, &leaves);
        if (leaves.size() >= 2) {
          const size_t a = rng->NextBounded(leaves.size());
          size_t b = rng->NextBounded(leaves.size() - 1);
          if (b >= a) ++b;
          std::swap(leaves[a]->set, leaves[b]->set);
          RecomputeSets(root);
          return true;
        }
        break;
      }
    }
  }
  std::swap(root->left, root->right);
  return true;
}

Result<LocalSearchResult> OptimizeIterativeImprovement(
    const Catalog& catalog, const JoinGraph& graph, CostModelKind cost_model,
    const LocalSearchOptions& options) {
  const int n = catalog.num_relations();
  if (graph.num_relations() != n) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  Rng rng(options.seed);
  const int max_failures =
      options.max_failures > 0 ? options.max_failures : 4 * n * n;

  LocalSearchResult best;
  best.cost = std::numeric_limits<double>::infinity();
  int moves = 0;
  for (int restart = 0; restart < options.restarts && moves < options.max_moves;
       ++restart) {
    Plan current = RandomBushyPlan(catalog.AllRelations(), &rng);
    double current_cost = EvaluateCost(current, catalog, graph, cost_model);
    int failures = 0;
    while (failures < max_failures && moves < options.max_moves) {
      Plan candidate = current.Clone();
      if (!ApplyRandomMove(&candidate, &rng)) break;
      ++moves;
      const double candidate_cost =
          EvaluateCost(candidate, catalog, graph, cost_model);
      if (candidate_cost < current_cost) {
        current = std::move(candidate);
        current_cost = candidate_cost;
        failures = 0;
      } else {
        ++failures;
      }
    }
    if (current_cost < best.cost) {
      best.cost = current_cost;
      best.plan = std::move(current);
    }
  }
  best.moves_evaluated = moves;
  return best;
}

Result<LocalSearchResult> OptimizeSimulatedAnnealing(
    const Catalog& catalog, const JoinGraph& graph, CostModelKind cost_model,
    const LocalSearchOptions& options) {
  const int n = catalog.num_relations();
  if (graph.num_relations() != n) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  Rng rng(options.seed);

  Plan current = RandomBushyPlan(catalog.AllRelations(), &rng);
  double current_cost = EvaluateCost(current, catalog, graph, cost_model);

  LocalSearchResult best;
  best.plan = current.Clone();
  best.cost = current_cost;

  double temperature =
      std::max(options.initial_temperature_factor * current_cost, 1e-12);
  const double min_temperature = temperature * 1e-9;
  int moves = 0;
  while (temperature > min_temperature && moves < options.max_moves) {
    for (int i = 0;
         i < options.moves_per_temperature && moves < options.max_moves; ++i) {
      Plan candidate = current.Clone();
      if (!ApplyRandomMove(&candidate, &rng)) break;
      ++moves;
      const double candidate_cost =
          EvaluateCost(candidate, catalog, graph, cost_model);
      const double delta = candidate_cost - current_cost;
      if (delta < 0 || rng.NextDouble() < std::exp(-delta / temperature)) {
        current = std::move(candidate);
        current_cost = candidate_cost;
        if (current_cost < best.cost) {
          best.cost = current_cost;
          best.plan = current.Clone();
        }
      }
    }
    temperature *= options.cooling;
  }
  best.moves_evaluated = moves;
  return best;
}

}  // namespace blitz
