#include "query/plan_space.h"

#include <cmath>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "baseline/random_plans.h"
#include "common/rng.h"
#include "core/subset_enum.h"

namespace blitz {
namespace {

TEST(PlanSpaceTest, LeftDeepCounts) {
  EXPECT_DOUBLE_EQ(NumLeftDeepPlans(1), 1);
  EXPECT_DOUBLE_EQ(NumLeftDeepPlans(2), 2);
  EXPECT_DOUBLE_EQ(NumLeftDeepPlans(4), 24);
  EXPECT_DOUBLE_EQ(NumLeftDeepPlans(10), 3628800);
}

TEST(PlanSpaceTest, BushyCountsMatchKnownSequence) {
  // (2n-2)!/(n-1)!: 1, 2, 12, 120, 1680, ...
  EXPECT_DOUBLE_EQ(NumBushyPlans(1), 1);
  EXPECT_DOUBLE_EQ(NumBushyPlans(2), 2);
  EXPECT_DOUBLE_EQ(NumBushyPlans(3), 12);
  EXPECT_DOUBLE_EQ(NumBushyPlans(4), 120);
  EXPECT_DOUBLE_EQ(NumBushyPlans(5), 1680);
}

TEST(PlanSpaceTest, CommutativityQuotient) {
  // Each commutativity class contains 2^(n-1) ordered plans:
  // (2n-3)!! * 2^(n-1) = (2n-2)! / (n-1)!.
  EXPECT_DOUBLE_EQ(NumBushyPlansUpToCommutativity(2), 1);
  EXPECT_DOUBLE_EQ(NumBushyPlansUpToCommutativity(3), 3);
  EXPECT_DOUBLE_EQ(NumBushyPlansUpToCommutativity(4), 15);
  for (int n = 2; n <= 12; ++n) {
    EXPECT_NEAR(NumBushyPlansUpToCommutativity(n) * std::pow(2.0, n - 1),
                NumBushyPlans(n), 1e-6 * NumBushyPlans(n));
  }
}

TEST(PlanSpaceTest, BushyVastlyExceedsLeftDeep) {
  // The [IK91] motivation: the bushy space dwarfs the left-deep space.
  EXPECT_GT(NumBushyPlans(15) / NumLeftDeepPlans(15), 1e5);
}

TEST(PlanSpaceTest, DpSplitCountMatchesEnumeration) {
  for (int n = 2; n <= 10; ++n) {
    std::uint64_t total = 0;
    for (std::uint64_t s = 1; s < (std::uint64_t{1} << n); ++s) {
      if ((s & (s - 1)) == 0) continue;
      ForEachProperSplit(RelSet::FromWord(s),
                         [&](RelSet, RelSet) { ++total; });
    }
    EXPECT_DOUBLE_EQ(NumDpSplits(n), static_cast<double>(total)) << n;
  }
}

TEST(PlanSpaceTest, LeftDeepDpJoinCount) {
  // Sum over non-singleton subsets of |S|.
  for (int n = 2; n <= 12; ++n) {
    double total = 0;
    for (std::uint64_t s = 1; s < (std::uint64_t{1} << n); ++s) {
      if ((s & (s - 1)) == 0) continue;
      total += RelSet::FromWord(s).size();
    }
    EXPECT_DOUBLE_EQ(NumLeftDeepDpJoins(n), total) << n;
  }
}

TEST(PlanSpaceTest, TableRows) {
  EXPECT_DOUBLE_EQ(NumDpTableRows(4), 15);
  EXPECT_DOUBLE_EQ(NumDpTableRows(15), 32767);
}

TEST(PlanSpaceTest, RandomBushyGeneratorCanReachManyShapes) {
  // Sanity link between the counting and the generator: for n = 4 there are
  // 120 ordered bushy plans; sampling plenty should find many distinct ones.
  Rng rng(3);
  std::set<std::string> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(RandomBushyPlan(RelSet::FirstN(4), &rng).ToString());
  }
  EXPECT_GT(seen.size(), 60u);
  EXPECT_LE(seen.size(), 120u);
}

}  // namespace
}  // namespace blitz
