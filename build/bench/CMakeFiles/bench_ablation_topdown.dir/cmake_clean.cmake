file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_topdown.dir/bench_ablation_topdown.cc.o"
  "CMakeFiles/bench_ablation_topdown.dir/bench_ablation_topdown.cc.o.d"
  "bench_ablation_topdown"
  "bench_ablation_topdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_topdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
