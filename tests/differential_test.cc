// Differential testing over the paper's own workload grid: for every
// (topology, mean cardinality, variability) point of the Appendix
// parameterization at n = 10, all independent exhaustive optimizers must
// agree on the optimum, the product-free optimizers must agree with each
// other, and the restricted searches must never win.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "baseline/dpccp.h"
#include "baseline/dpsize.h"
#include "baseline/dpsub.h"
#include "baseline/leftdeep.h"
#include "baseline/topdown.h"
#include "core/optimizer.h"
#include "query/workload.h"

namespace blitz {
namespace {

using GridPoint = std::tuple<Topology, double, double>;

class WorkloadGridTest : public ::testing::TestWithParam<GridPoint> {
 protected:
  WorkloadGridTest() {
    WorkloadSpec spec;
    spec.num_relations = 10;
    spec.topology = std::get<0>(GetParam());
    spec.mean_cardinality = std::get<1>(GetParam());
    spec.variability = std::get<2>(GetParam());
    Result<Workload> workload = MakeWorkload(spec);
    BLITZ_CHECK(workload.ok());
    workload_ = std::move(workload).value();
  }

  Workload workload_{Catalog{}, JoinGraph{1}};
};

TEST_P(WorkloadGridTest, ExhaustiveOptimizersAgree) {
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops}) {
    OptimizerOptions options;
    options.cost_model = kind;
    Result<OptimizeOutcome> blitz =
        OptimizeJoin(workload_.catalog, workload_.graph, options);
    ASSERT_TRUE(blitz.ok());
    ASSERT_TRUE(blitz->found_plan()) << CostModelKindToString(kind);

    Result<DpSizeResult> dpsize = OptimizeDpSize(
        workload_.catalog, workload_.graph, kind, DpSizeOptions{});
    ASSERT_TRUE(dpsize.ok());
    EXPECT_NEAR(dpsize->cost, blitz->cost,
                1e-4 * std::max(1.0f, blitz->cost))
        << CostModelKindToString(kind);

    Result<TopDownResult> topdown = OptimizeTopDown(
        workload_.catalog, workload_.graph, kind, TopDownOptions{});
    ASSERT_TRUE(topdown.ok());
    EXPECT_NEAR(topdown->cost, blitz->cost,
                1e-4 * std::max(1.0f, blitz->cost))
        << CostModelKindToString(kind);
  }
}

TEST_P(WorkloadGridTest, ProductFreeOptimizersAgree) {
  Result<DpSubResult> dpsub = OptimizeDpSubNoProducts(
      workload_.catalog, workload_.graph, CostModelKind::kNaive);
  Result<DpCcpResult> dpccp = OptimizeDpCcp(
      workload_.catalog, workload_.graph, CostModelKind::kNaive);
  ASSERT_TRUE(dpsub.ok());
  ASSERT_TRUE(dpccp.ok());
  EXPECT_NEAR(dpccp->cost, dpsub->cost, 1e-9 * dpsub->cost);
}

TEST_P(WorkloadGridTest, RestrictionsNeverWin) {
  Result<OptimizeOutcome> blitz = OptimizeJoin(
      workload_.catalog, workload_.graph, OptimizerOptions{});
  ASSERT_TRUE(blitz.ok());
  const double optimum = blitz->cost;

  Result<LeftDeepResult> left_deep = OptimizeLeftDeep(
      workload_.catalog, workload_.graph, CostModelKind::kNaive);
  ASSERT_TRUE(left_deep.ok());
  EXPECT_GE(left_deep->cost, optimum * (1 - 1e-4));

  Result<DpSubResult> dpsub = OptimizeDpSubNoProducts(
      workload_.catalog, workload_.graph, CostModelKind::kNaive);
  ASSERT_TRUE(dpsub.ok());
  EXPECT_GE(dpsub->cost, optimum * (1 - 1e-4));
}

TEST_P(WorkloadGridTest, ThresholdLadderReachesTheOptimum) {
  Result<OptimizeOutcome> blitz = OptimizeJoin(
      workload_.catalog, workload_.graph, OptimizerOptions{});
  ASSERT_TRUE(blitz.ok());
  ThresholdLadderOptions ladder;
  ladder.initial_threshold = 10.0f;
  ladder.growth_factor = 100.0f;
  Result<LadderOutcome> outcome = OptimizeJoinWithThresholds(
      workload_.catalog, workload_.graph, OptimizerOptions{}, ladder);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->outcome.cost, blitz->cost);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, WorkloadGridTest,
    ::testing::Combine(::testing::Values(Topology::kChain,
                                         Topology::kCyclePlus3,
                                         Topology::kStar, Topology::kClique),
                       ::testing::Values(1.0, 21.5, 1e4),
                       ::testing::Values(0.0, 0.5, 1.0)),
    [](const ::testing::TestParamInfo<GridPoint>& info) {
      const char* topology = TopologyToString(std::get<0>(info.param));
      std::string name = topology;
      if (name == "cycle+3") name = "cycle3";
      name += "_m" + std::to_string(
                         static_cast<int>(std::get<1>(info.param)));
      name += "_v" + std::to_string(
                         static_cast<int>(std::get<2>(info.param) * 100));
      return name;
    });

}  // namespace
}  // namespace blitz
