#include "api/optimize_query.h"

#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/algorithm_choice.h"
#include "plan/evaluate.h"

namespace blitz {

namespace {

/// Phase timing helper: accumulates into `*slot` only when a report is
/// being collected, so the default path pays no clock reads per phase.
class PhaseTimer {
 public:
  PhaseTimer(bool enabled, double* slot) : slot_(enabled ? slot : nullptr) {}

  ~PhaseTimer() {
    if (slot_ != nullptr) *slot_ += timer_.ElapsedSeconds();
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* slot_;
  MetricTimer timer_;
};

}  // namespace

std::string OptimizeReport::ToString() const {
  std::string out = StrFormat(
      "total %.3f ms (optimize %.3f, extract %.3f, evaluate %.3f, "
      "attach %.3f); path %s; peak DP table %llu bytes",
      total_seconds * 1e3, optimize_seconds * 1e3, extract_seconds * 1e3,
      evaluate_seconds * 1e3, attach_seconds * 1e3,
      used_hybrid ? "hybrid" : "exhaustive",
      static_cast<unsigned long long>(peak_dp_table_bytes));
  if (!thresholds_tried.empty()) {
    out += "; thresholds";
    for (const float threshold : thresholds_tried) {
      out += StrFormat(" %g", static_cast<double>(threshold));
    }
  }
  if (counters.loop_iterations > 0) {
    out += "; counts " + counters.ToString();
  }
  return out;
}

Result<OptimizedQuery> OptimizeQuery(const Catalog& catalog,
                                     const JoinGraph& graph,
                                     const QueryOptimizerOptions& options) {
  if (graph.num_relations() != catalog.num_relations()) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  if (options.exhaustive_limit < 1) {
    return Status::InvalidArgument("exhaustive_limit must be >= 1");
  }

  const MetricTimer total_timer;
  TraceSpan span("OptimizeQuery", "api");
  span.AddArg("n", catalog.num_relations());

  OptimizedQuery result;
  OptimizeReport report;
  if (catalog.num_relations() <= options.exhaustive_limit) {
    OptimizerOptions dp_options;
    dp_options.cost_model = options.cost_model;
    dp_options.count_operations =
        options.collect_report && options.count_operations;
    Result<OptimizeOutcome> outcome = Status::Internal("unset");
    {
      PhaseTimer phase(options.collect_report, &report.optimize_seconds);
      if (options.initial_cost_threshold.has_value()) {
        ThresholdLadderOptions ladder;
        ladder.initial_threshold = *options.initial_cost_threshold;
        Result<LadderOutcome> laddered =
            OptimizeJoinWithThresholds(catalog, graph, dp_options, ladder);
        if (!laddered.ok()) return laddered.status();
        result.passes = laddered->passes;
        report.thresholds_tried = std::move(laddered->thresholds_tried);
        outcome = std::move(laddered->outcome);
      } else {
        outcome = OptimizeJoin(catalog, graph, dp_options);
        if (!outcome.ok()) return outcome.status();
      }
    }
    report.counters = outcome->counters;
    report.peak_dp_table_bytes = outcome->table.MemoryBytes();
    PhaseTimer phase(options.collect_report, &report.extract_seconds);
    TraceSpan extract_span("extract_plan", "api");
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
    if (!plan.ok()) return plan.status();
    result.plan = std::move(plan).value();
    result.exact = true;
  } else {
    PhaseTimer phase(options.collect_report, &report.optimize_seconds);
    HybridOptions hybrid = options.hybrid;
    hybrid.cost_model = options.cost_model;
    Result<HybridResult> outcome = OptimizeHybrid(catalog, graph, hybrid);
    if (!outcome.ok()) return outcome.status();
    result.plan = std::move(outcome->plan);
    result.exact = false;
    report.used_hybrid = true;
  }

  {
    PhaseTimer phase(options.collect_report, &report.evaluate_seconds);
    result.cost =
        EvaluateCost(result.plan, catalog, graph, options.cost_model);
  }
  if (options.attach_algorithms) {
    PhaseTimer phase(options.collect_report, &report.attach_seconds);
    TraceSpan attach_span("choose_algorithms", "api");
    ChooseAlgorithms(&result.plan, catalog, graph, options.cost_model);
  }

  span.AddArg("cost", result.cost);
  span.AddArg("passes", result.passes);
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("api.queries");
    metrics->AddCounter(result.exact ? "api.exhaustive_queries"
                                     : "api.hybrid_queries");
    metrics->RecordLatency("api.query_seconds", total_timer.ElapsedSeconds());
  }
  if (options.collect_report) {
    report.total_seconds = total_timer.ElapsedSeconds();
    result.report = std::move(report);
  }
  return result;
}

}  // namespace blitz
