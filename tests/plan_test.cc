#include "plan/plan.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::Figure3Graph;
using ::blitz::testing::Table1Catalog;

Plan BushyFour() {
  // (R0 x R1) x (R2 x R3)
  return Plan::Join(Plan::Join(Plan::Leaf(0), Plan::Leaf(1)),
                    Plan::Join(Plan::Leaf(2), Plan::Leaf(3)));
}

Plan LeftDeepFour() {
  // ((R0 x R1) x R2) x R3
  return Plan::Join(
      Plan::Join(Plan::Join(Plan::Leaf(0), Plan::Leaf(1)), Plan::Leaf(2)),
      Plan::Leaf(3));
}

TEST(PlanTest, LeafBasics) {
  const Plan leaf = Plan::Leaf(3);
  EXPECT_FALSE(leaf.empty());
  EXPECT_TRUE(leaf.root().is_leaf());
  EXPECT_EQ(leaf.root().relation(), 3);
  EXPECT_EQ(leaf.relations(), RelSet::Singleton(3));
  EXPECT_EQ(leaf.NumLeaves(), 1);
  EXPECT_EQ(leaf.NumJoins(), 0);
  EXPECT_EQ(leaf.Depth(), 0);
  EXPECT_TRUE(leaf.IsLeftDeep());
}

TEST(PlanTest, JoinComposesSets) {
  const Plan plan = BushyFour();
  EXPECT_EQ(plan.relations(), RelSet::FirstN(4));
  EXPECT_EQ(plan.NumLeaves(), 4);
  EXPECT_EQ(plan.NumJoins(), 3);
  EXPECT_EQ(plan.Depth(), 2);
}

TEST(PlanTest, LeftDeepDetection) {
  EXPECT_TRUE(LeftDeepFour().IsLeftDeep());
  EXPECT_FALSE(BushyFour().IsLeftDeep());
  // A right-deep vine is not left-deep.
  const Plan right_deep = Plan::Join(
      Plan::Leaf(0), Plan::Join(Plan::Leaf(1), Plan::Leaf(2)));
  EXPECT_FALSE(right_deep.IsLeftDeep());
}

TEST(PlanTest, CountCartesianProducts) {
  const JoinGraph graph = Figure3Graph();  // edges AB, AC, BC, AD
  // (A x D) x (B x C): A-D has an edge, B-C has an edge, and AB/AC span the
  // top join — no products.
  const Plan good = Plan::Join(Plan::Join(Plan::Leaf(0), Plan::Leaf(3)),
                               Plan::Join(Plan::Leaf(1), Plan::Leaf(2)));
  EXPECT_EQ(good.CountCartesianProducts(graph), 0);
  // (B x D) has no edge: one product.
  const Plan with_product =
      Plan::Join(Plan::Join(Plan::Leaf(1), Plan::Leaf(3)),
                 Plan::Join(Plan::Leaf(0), Plan::Leaf(2)));
  EXPECT_EQ(with_product.CountCartesianProducts(graph), 1);
}

TEST(PlanTest, CloneIsDeepAndEqual) {
  const Plan plan = BushyFour();
  const Plan copy = plan.Clone();
  EXPECT_TRUE(plan.StructurallyEquals(copy));
  EXPECT_NE(&plan.root(), &copy.root());
}

TEST(PlanTest, StructuralEquality) {
  EXPECT_TRUE(BushyFour().StructurallyEquals(BushyFour()));
  EXPECT_FALSE(BushyFour().StructurallyEquals(LeftDeepFour()));
  // Commuted children differ structurally.
  const Plan ab = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));
  const Plan ba = Plan::Join(Plan::Leaf(1), Plan::Leaf(0));
  EXPECT_FALSE(ab.StructurallyEquals(ba));
}

TEST(PlanTest, ToStringInfix) {
  EXPECT_EQ(BushyFour().ToString(), "((R0 x R1) x (R2 x R3))");
  const Catalog catalog = Table1Catalog();
  EXPECT_EQ(BushyFour().ToString(&catalog), "((A x B) x (C x D))");
}

TEST(PlanTest, ToTreeStringShowsStructure) {
  Plan plan = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));
  plan.mutable_root().algorithm = JoinAlgorithm::kHash;
  const std::string tree = plan.ToTreeString();
  EXPECT_NE(tree.find("hash {R0,R1}"), std::string::npos) << tree;
  EXPECT_NE(tree.find("  scan R0"), std::string::npos) << tree;
}

TEST(PlanTest, EmptyPlanRenders) {
  const Plan empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.ToString(), "(empty)");
  EXPECT_EQ(empty.NumLeaves(), 0);
}

TEST(PlanTest, ExtractFromTableRejectsBadSets) {
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(Table1Catalog(), OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(Plan::ExtractFromTable(outcome->table, RelSet()).ok());
  EXPECT_FALSE(
      Plan::ExtractFromTable(outcome->table, RelSet::Singleton(17)).ok());
}

TEST(PlanTest, ExtractSubsetPlan) {
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(Table1Catalog(), OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  const RelSet abc = RelSet::FirstN(3);
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table, abc);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->relations(), abc);
  EXPECT_EQ(plan->NumJoins(), 2);
  // Table 1: best LHS for {A,B,C} is {A,B}.
  EXPECT_EQ(plan->ToString(), "((R0 x R1) x R2)");
}

TEST(PlanTest, JoinAlgorithmNames) {
  EXPECT_STREQ(JoinAlgorithmToString(JoinAlgorithm::kHash), "hash");
  EXPECT_STREQ(JoinAlgorithmToString(JoinAlgorithm::kSortMerge),
               "sort-merge");
  EXPECT_STREQ(JoinAlgorithmToString(JoinAlgorithm::kNestedLoops),
               "nested-loops");
  EXPECT_STREQ(JoinAlgorithmToString(JoinAlgorithm::kCartesianProduct),
               "product");
  EXPECT_STREQ(JoinAlgorithmToString(JoinAlgorithm::kUnspecified), "join");
}

}  // namespace
}  // namespace blitz
