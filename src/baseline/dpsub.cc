#include "baseline/dpsub.h"

#include <bit>
#include <functional>
#include <limits>
#include <vector>

#include "common/check.h"

namespace blitz {

Result<DpSubResult> OptimizeDpSubNoProducts(const Catalog& catalog,
                                            const JoinGraph& graph,
                                            CostModelKind cost_model) {
  const int n = catalog.num_relations();
  if (graph.num_relations() != n) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  if (!graph.IsConnected(RelSet::FirstN(n))) {
    return Status::FailedPrecondition(
        "join graph is disconnected: no product-free plan exists");
  }
  const std::uint64_t table_size = std::uint64_t{1} << n;

  std::vector<double> base_cards(n);
  for (int i = 0; i < n; ++i) base_cards[i] = catalog.cardinality(i);
  std::vector<double> cards;
  ComputeAllCardinalities(graph, base_cards, &cards);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(table_size, kInf);
  std::vector<std::uint64_t> best_lhs(table_size, 0);
  std::vector<bool> connected(table_size, false);

  for (int i = 0; i < n; ++i) {
    const std::uint64_t w = std::uint64_t{1} << i;
    cost[w] = 0.0;
    connected[w] = true;
  }

  DpSubResult result;
  for (std::uint64_t s = 3; s < table_size; ++s) {
    if ((s & (s - 1)) == 0) continue;
    if (!graph.IsConnected(RelSet::FromWord(s))) continue;
    connected[s] = true;
    double best = kInf;
    std::uint64_t best_split = 0;
    for (std::uint64_t lhs = s & (~s + 1); lhs != s; lhs = s & (lhs - s)) {
      ++result.loop_iterations;
      const std::uint64_t rhs = s ^ lhs;
      // Both halves must be connected; since S is connected, a split into
      // two connected halves always has at least one spanning predicate.
      if (!connected[lhs] || !connected[rhs]) continue;
      ++result.splits_costed;
      const double candidate =
          cost[lhs] + cost[rhs] +
          EvalJoinCost(cost_model, cards[s], cards[lhs], cards[rhs]);
      if (candidate < best) {
        best = candidate;
        best_split = lhs;
      }
    }
    cost[s] = best;
    best_lhs[s] = best_split;
  }

  const std::uint64_t full = table_size - 1;
  BLITZ_CHECK(cost[full] < kInf);

  std::function<Plan(std::uint64_t)> extract = [&](std::uint64_t s) {
    if ((s & (s - 1)) == 0) return Plan::Leaf(std::countr_zero(s));
    const std::uint64_t lhs = best_lhs[s];
    return Plan::Join(extract(lhs), extract(s ^ lhs));
  };
  result.plan = extract(full);
  result.cost = cost[full];
  return result;
}

}  // namespace blitz
