#include "serve/plancache.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <tuple>
#include <utility>

#include "common/strings.h"
#include "cost/cost_model.h"
#include "governor/faultpoints.h"

namespace blitz {

namespace {

/// Default individualization-refinement node budget. Typical (stat-diverse)
/// queries resolve in one node; highly symmetric graphs (uniform cliques)
/// blow past any polynomial budget and take the documented fallback.
constexpr int kDefaultSearchBudget = 512;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvHash(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (const unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Order-sensitive 64-bit mix (splitmix-style) for color refinement.
std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

std::uint64_t DoubleBits(double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// One round of Weisfeiler-Leman refinement: each relation's new color
/// hashes its old color with the sorted multiset of (edge selectivity,
/// neighbor color) pairs. Returns the number of distinct colors.
int RefineOnce(const JoinGraph& graph, std::vector<std::uint64_t>* colors) {
  const int n = graph.num_relations();
  std::vector<std::uint64_t> next(n);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sig;
  for (int i = 0; i < n; ++i) {
    sig.clear();
    for (int j = 0; j < n; ++j) {
      if (j == i || !graph.HasEdge(i, j)) continue;
      sig.emplace_back(DoubleBits(graph.Selectivity(i, j)), (*colors)[j]);
    }
    std::sort(sig.begin(), sig.end());
    std::uint64_t h = Mix((*colors)[i], 0x5157u);  // Domain-separate rounds.
    for (const auto& [sel, color] : sig) h = Mix(Mix(h, sel), color);
    next[i] = h;
  }
  *colors = std::move(next);
  std::vector<std::uint64_t> sorted = *colors;
  std::sort(sorted.begin(), sorted.end());
  return static_cast<int>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

/// Refines to a fixed point (the partition stops splitting).
void RefineToStable(const JoinGraph& graph,
                    std::vector<std::uint64_t>* colors) {
  const int n = graph.num_relations();
  int classes = 0;
  for (int round = 0; round < n; ++round) {
    const int next_classes = RefineOnce(graph, colors);
    if (next_classes == classes || next_classes == n) return;
    classes = next_classes;
  }
}

/// Encodes the graph under `perm` (perm[original] = canonical label):
/// per-relation statistics in canonical order, then the relabeled,
/// normalized, sorted edge list. This string is what canonicalization
/// minimizes — and, with the options suffix, the exact-match cache key.
std::string EncodeGraph(const Catalog& catalog, const JoinGraph& graph,
                        const std::vector<int>& perm) {
  const int n = graph.num_relations();
  std::vector<int> inv(n);
  for (int i = 0; i < n; ++i) inv[perm[i]] = i;
  std::string out = StrFormat("n %d\n", n);
  for (int c = 0; c < n; ++c) {
    const RelationStats& rel = catalog.relation(inv[c]);
    out += StrFormat("r %d %a %d\n", c, rel.cardinality, rel.tuple_bytes);
  }
  struct Edge {
    int a;
    int b;
    double sel;
  };
  std::vector<Edge> edges;
  edges.reserve(graph.predicates().size());
  for (const Predicate& p : graph.predicates()) {
    int a = perm[p.lhs];
    int b = perm[p.rhs];
    if (a > b) std::swap(a, b);
    edges.push_back({a, b, p.selectivity});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    return std::tie(x.a, x.b, x.sel) < std::tie(y.a, y.b, y.sel);
  });
  for (const Edge& e : edges) {
    out += StrFormat("e %d %d %a\n", e.a, e.b, e.sel);
  }
  return out;
}

/// Derives perm[original] = canonical position from a discrete coloring
/// (ties broken by original index — only reached with distinct colors when
/// the coloring is discrete, so the tie-break never fires there).
std::vector<int> PermFromColors(const std::vector<std::uint64_t>& colors) {
  const int n = static_cast<int>(colors.size());
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::tie(colors[a], a) < std::tie(colors[b], b);
  });
  std::vector<int> perm(n);
  for (int c = 0; c < n; ++c) perm[order[c]] = c;
  return perm;
}

/// Budgeted individualization-refinement over the non-singleton color
/// classes, keeping the lexicographically minimal encoding.
struct CanonSearch {
  const Catalog& catalog;
  const JoinGraph& graph;
  int budget;
  bool aborted = false;
  std::string best;
  std::vector<int> best_perm;

  void Run(std::vector<std::uint64_t> colors) {
    RefineToStable(graph, &colors);
    if (--budget < 0) {
      aborted = true;
      return;
    }
    // Target class: the smallest color value with more than one member.
    const int n = static_cast<int>(colors.size());
    std::uint64_t target = 0;
    int target_count = 0;
    for (int i = 0; i < n; ++i) {
      int count = 0;
      for (int j = 0; j < n; ++j) count += colors[j] == colors[i];
      if (count > 1 && (target_count == 0 || colors[i] < target)) {
        target = colors[i];
        target_count = count;
      }
    }
    if (target_count == 0) {  // Discrete: one candidate labeling.
      const std::vector<int> perm = PermFromColors(colors);
      std::string enc = EncodeGraph(catalog, graph, perm);
      if (best.empty() || enc < best) {
        best = std::move(enc);
        best_perm = perm;
      }
      return;
    }
    for (int i = 0; i < n && !aborted; ++i) {
      if (colors[i] != target) continue;
      std::vector<std::uint64_t> child = colors;
      child[i] = Mix(child[i], 0x1d1du);  // Individualize relation i.
      Run(std::move(child));
    }
  }
};

/// The plan-affecting options suffix of the canonical encoding. Knobs that
/// provably do not change the chosen plan (parallelism, SIMD level,
/// report collection) and the per-request budget (degraded results are
/// never inserted) are deliberately excluded.
std::string EncodeOptions(const QueryOptimizerOptions& options) {
  const EstimatorKind estimator = options.estimator == nullptr
                                      ? EstimatorKind::kPaperFanout
                                      : options.estimator->kind();
  std::string out = StrFormat(
      "o cm=%s est=%s xl=%d attach=%d\n",
      CostModelKindToString(options.cost_model), EstimatorKindName(estimator),
      options.exhaustive_limit, options.attach_algorithms ? 1 : 0);
  if (options.initial_cost_threshold.has_value()) {
    out += StrFormat("o thr=%a\n",
                     static_cast<double>(*options.initial_cost_threshold));
  } else {
    out += "o thr=-\n";
  }
  const HybridOptions& h = options.hybrid;
  out += StrFormat("o hyb=%d,%d,%llu,%d,%d,%d\n", h.block_size, h.restarts,
                   static_cast<unsigned long long>(h.seed), h.polish ? 1 : 0,
                   h.polish_moves, h.seed_with_greedy ? 1 : 0);
  return out;
}

Plan RelabelPlanNode(const PlanNode& node, const std::vector<int>& relabel) {
  if (node.is_leaf()) {
    const int r = node.relation();
    Plan leaf = Plan::Leaf(relabel.empty() ? r : relabel[r]);
    leaf.mutable_root().algorithm = node.algorithm;
    leaf.mutable_root().sort_class = node.sort_class;
    return leaf;
  }
  Plan joined = Plan::Join(RelabelPlanNode(*node.left, relabel),
                           RelabelPlanNode(*node.right, relabel));
  joined.mutable_root().algorithm = node.algorithm;
  joined.mutable_root().sort_class = node.sort_class;
  return joined;
}

std::size_t PlanNodeBytes(const PlanNode& node) {
  std::size_t bytes = sizeof(PlanNode);
  if (node.left != nullptr) bytes += PlanNodeBytes(*node.left);
  if (node.right != nullptr) bytes += PlanNodeBytes(*node.right);
  return bytes;
}

std::size_t EntryBytesEstimate(const std::string& key,
                               const OptimizedQuery& result) {
  std::size_t bytes = key.size() + sizeof(OptimizedQuery) + 64;
  if (!result.plan.empty()) bytes += PlanNodeBytes(result.plan.root());
  if (result.report.has_value()) {
    bytes += sizeof(OptimizeReport);
    bytes += result.report->thresholds_tried.size() * sizeof(float);
    for (const std::string& d : result.report->degradations) bytes += d.size();
  }
  return bytes;
}

/// Insert policy: only successful, degradation-free results are cached —
/// a hit must never hand out a plan that a budget squeezed down.
bool Cacheable(const OptimizedQuery& result) {
  return !result.plan.empty() &&
         (!result.report.has_value() || result.report->degradations.empty());
}

}  // namespace

PlanFingerprint ComputePlanFingerprint(const Catalog& catalog,
                                       const JoinGraph& graph,
                                       const QueryOptimizerOptions& options,
                                       int search_budget) {
  const int n = graph.num_relations();
  std::vector<std::uint64_t> colors(n);
  for (int i = 0; i < n; ++i) {
    const RelationStats& rel = catalog.relation(i);
    colors[i] = Mix(Mix(0x626c7a63ull, DoubleBits(rel.cardinality)),
                    static_cast<std::uint64_t>(rel.tuple_bytes));
  }
  CanonSearch search{catalog, graph,
                     search_budget > 0 ? search_budget : kDefaultSearchBudget,
                     /*aborted=*/false, /*best=*/{}, /*best_perm=*/{}};
  search.Run(colors);

  PlanFingerprint fp;
  if (!search.aborted && !search.best.empty()) {
    fp.canonical = std::move(search.best);
    fp.to_canonical = std::move(search.best_perm);
    fp.exact_canonical = true;
  } else {
    // Budget exhausted: deterministic but not relabeling-invariant order
    // from the stable refinement (safe miss for isomorphs, still a hit for
    // byte-identical requests).
    RefineToStable(graph, &colors);
    fp.to_canonical = PermFromColors(colors);
    fp.canonical = EncodeGraph(catalog, graph, fp.to_canonical);
    fp.exact_canonical = false;
  }
  fp.canonical += EncodeOptions(options);
  fp.hash = FnvHash(fp.canonical);
  return fp;
}

OptimizedQuery RelabelOptimizedQuery(const OptimizedQuery& result,
                                     const std::vector<int>& relabel) {
  OptimizedQuery out;
  if (!result.plan.empty()) {
    out.plan = RelabelPlanNode(result.plan.root(), relabel);
  }
  out.cost = result.cost;
  out.tier = result.tier;
  out.passes = result.passes;
  out.report = result.report;
  out.from_cache = result.from_cache;
  return out;
}

PlanCache::PlanCache(const Options& options)
    : options_(options), shards_(std::max(1, options.shards)) {}

std::optional<OptimizedQuery> PlanCache::LookupLocked(
    Shard& shard, const PlanFingerprint& fp, bool count_miss) {
  const auto it = shard.entries.find(fp.canonical);
  if (it == shard.entries.end()) {
    if (count_miss) ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
  // Stored plans live in canonical label space; hand back the requester's.
  const int n = static_cast<int>(fp.to_canonical.size());
  std::vector<int> from_canonical(n);
  for (int i = 0; i < n; ++i) from_canonical[fp.to_canonical[i]] = i;
  OptimizedQuery result =
      RelabelOptimizedQuery(it->second.result, from_canonical);
  result.from_cache = true;
  return result;
}

std::optional<OptimizedQuery> PlanCache::Lookup(const PlanFingerprint& fp) {
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (disabled()) {
    ++shard.misses;
    return std::nullopt;
  }
  return LookupLocked(shard, fp);
}

void PlanCache::InsertLocked(Shard& shard, const PlanFingerprint& fp,
                             const OptimizedQuery& result) {
  if (disabled() || !Cacheable(result)) {
    ++shard.bypasses;
    return;
  }
  if (const std::optional<FaultSpec> fault = FaultHit(kFaultServeCacheInsert);
      fault.has_value()) {
    ++shard.bypasses;  // Any armed kind models cache-memory pressure.
    return;
  }
  if (shard.entries.count(fp.canonical) > 0) return;  // Racing leader won.
  Entry entry;
  entry.result = RelabelOptimizedQuery(result, fp.to_canonical);
  entry.result.from_cache = false;  // Stored fresh; stamped true on hits.
  entry.bytes = EntryBytesEstimate(fp.canonical, entry.result);
  shard.lru.push_front(fp.canonical);
  entry.lru = shard.lru.begin();
  shard.bytes += entry.bytes;
  shard.entries.emplace(fp.canonical, std::move(entry));
  ++shard.inserts;
  const std::size_t per_shard_entries =
      std::max<std::size_t>(1, options_.max_entries / shards_.size());
  const std::size_t per_shard_bytes =
      options_.max_bytes == 0 ? 0 : options_.max_bytes / shards_.size();
  while (shard.entries.size() > per_shard_entries ||
         (per_shard_bytes > 0 && shard.bytes > per_shard_bytes &&
          shard.entries.size() > 1)) {
    const std::string victim = shard.lru.back();
    shard.lru.pop_back();
    const auto it = shard.entries.find(victim);
    shard.bytes -= it->second.bytes;
    shard.entries.erase(it);
    ++shard.evictions;
  }
}

void PlanCache::Insert(const PlanFingerprint& fp,
                       const OptimizedQuery& result) {
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  InsertLocked(shard, fp, result);
}

Result<OptimizedQuery> PlanCache::GetOrCompute(
    const PlanFingerprint& fp,
    const std::function<Result<OptimizedQuery>()>& compute,
    const std::function<bool()>& cancelled) {
  if (disabled()) return compute();
  Shard& shard = ShardFor(fp);
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    bool first_attempt = true;
    for (;;) {
      // Re-check lookups while waiting on a leader count neither as hits
      // nor misses until they settle — stats stay per-request, not
      // per-poll-cycle.
      if (std::optional<OptimizedQuery> hit =
              LookupLocked(shard, fp, /*count_miss=*/first_attempt);
          hit.has_value()) {
        return std::move(*hit);
      }
      if (shard.inflight.count(fp.canonical) == 0) {
        shard.inflight.insert(fp.canonical);  // We are the leader.
        break;
      }
      if (first_attempt) ++shard.coalesced;
      first_attempt = false;
      // Wait for the leader to settle; wake periodically so a cancelled
      // waiter can give up without waiting out the leader's DP.
      shard.cv.wait_for(lock, std::chrono::milliseconds(10));
      if (cancelled != nullptr && cancelled()) {
        return Status::Cancelled("request cancelled while coalesced");
      }
      // Loop: either the entry appeared (hit above), the leader failed or
      // bypassed (inflight empty — become the leader ourselves), or the
      // leader is still computing.
    }
  }
  Result<OptimizedQuery> result = compute();  // Outside every cache lock.
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inflight.erase(fp.canonical);
    if (result.ok()) {
      InsertLocked(shard, fp, *result);
    } else {
      ++shard.bypasses;
    }
    shard.cv.notify_all();
  }
  return result;
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.inserts += shard.inserts;
    stats.evictions += shard.evictions;
    stats.bypasses += shard.bypasses;
    stats.coalesced += shard.coalesced;
    stats.entries += shard.entries.size();
    stats.bytes += shard.bytes;
  }
  return stats;
}

}  // namespace blitz
