// Regenerates Figure 6 of the paper: optimization times with plan-cost
// thresholds (Section 6.4) —
//   (a) kappa_0 on the chain topology with threshold 10^9: times settle to
//       a small fraction of the unthresholded cost as cardinality rises;
//   (b) kappa_dnl on cycle+3 with thresholds 10^5 and 10^14: times drop,
//       then "ripples appear where the plan-cost thresholds are exceeded,
//       forcing multiple optimization passes at higher cardinalities."
//
// For each point we print the time, the number of optimizer passes, and the
// matching unthresholded time for comparison.
//
// Environment knobs: BLITZ_BENCH_MIN_SECONDS (default 0.05),
// BLITZ_FIG6_N (default 15).

#include <cstdio>
#include <optional>

#include "benchlib/sweep.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/strings.h"

namespace blitz {
namespace {

int PrintPanel(const char* title, CostModelKind model, Topology topology,
               std::optional<float> threshold, int n, int means) {
  SweepConfig config;
  config.num_relations = n;
  config.models = {model};
  config.topologies = {topology};
  config.mean_cardinalities = MeanCardinalityGrid(means);
  config.variabilities = {0.0, 0.5, 1.0};
  config.min_seconds_per_point = BenchMinSeconds(0.05);

  Result<std::vector<SweepPoint>> base = RunSweep(config);
  config.threshold = threshold;
  Result<std::vector<SweepPoint>> with = RunSweep(config);
  if (!base.ok() || !with.ok()) {
    std::fprintf(stderr, "sweep failed\n");
    return 1;
  }

  std::printf("%s\n", title);
  TextTable out;
  out.SetHeader({"variability", "mean card", "no-thresh (ms)",
                 "thresh (ms)", "passes", "speedup"});
  for (size_t i = 0; i < with->size(); ++i) {
    const SweepPoint& b = (*base)[i];
    const SweepPoint& t = (*with)[i];
    out.AddRow({StrFormat("%.2f", t.variability),
                StrFormat("%.3g", t.mean_cardinality),
                StrFormat("%.1f", b.seconds * 1e3),
                StrFormat("%.1f", t.seconds * 1e3),
                StrFormat("%d", t.passes),
                StrFormat("%.2fx", b.seconds / t.seconds)});
  }
  std::printf("%s\n", out.ToString().c_str());
  return 0;
}

int Run() {
  const int n = BenchEnvInt("BLITZ_FIG6_N", 15);
  const int means = BenchEnvInt("BLITZ_FIG6_MEANS", 16);
  std::printf(
      "Figure 6: optimization times with plan-cost thresholds (n = %d)\n\n",
      n);
  if (PrintPanel("(a) kappa_0, chain, threshold 1e9", CostModelKind::kNaive,
                 Topology::kChain, 1e9f, n, means) != 0) {
    return 1;
  }
  if (PrintPanel("(b1) kappa_dnl, cycle+3, threshold 1e5",
                 CostModelKind::kDiskNestedLoops, Topology::kCyclePlus3,
                 1e5f, n, means) != 0) {
    return 1;
  }
  if (PrintPanel("(b2) kappa_dnl, cycle+3, threshold 1e14",
                 CostModelKind::kDiskNestedLoops, Topology::kCyclePlus3,
                 1e14f, n, means) != 0) {
    return 1;
  }
  std::printf(
      "Expected shape: large speedups once a low-cost plan exists (chain\n"
      "especially); passes > 1 marks the ripples where a threshold was\n"
      "exceeded and re-optimization was forced.\n");
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
