#ifndef BLITZ_API_OPTIMIZE_QUERY_H_
#define BLITZ_API_OPTIMIZE_QUERY_H_

#include <optional>

#include "baseline/hybrid.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "core/optimizer.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// One-call configuration for the top-level entry point.
struct QueryOptimizerOptions {
  CostModelKind cost_model = CostModelKind::kNaive;

  /// Largest n optimized exhaustively (O(3^n) time, O(2^n) space); larger
  /// queries fall back to the hybrid randomized/DP optimizer.
  int exhaustive_limit = 16;

  /// If set, exhaustive optimization runs under the Section 6.4 threshold
  /// ladder starting at this value.
  std::optional<float> initial_cost_threshold;

  /// Configuration of the fallback for n > exhaustive_limit. (cost_model
  /// and seed fields here are overridden to match this struct's.)
  HybridOptions hybrid;

  /// Attach physical join algorithms to the plan (Section 6.5 post-pass).
  bool attach_algorithms = true;
};

/// The result of OptimizeQuery.
struct OptimizedQuery {
  Plan plan;

  /// Double-precision cost of `plan` under the chosen model (re-evaluated
  /// by the independent plan evaluator, so it is comparable across the
  /// exhaustive and hybrid paths).
  double cost = 0;

  /// True if the plan is a guaranteed optimum (exhaustive path).
  bool exact = false;

  /// Optimizer passes (> 1 only when a threshold ladder re-optimized).
  int passes = 1;
};

/// The library's front door: optimizes the join of all catalog relations
/// under `graph`, choosing exhaustive blitzsplit or the hybrid fallback by
/// problem size, applying the optional threshold ladder, and attaching
/// physical algorithms. This is the call a downstream system embeds.
Result<OptimizedQuery> OptimizeQuery(const Catalog& catalog,
                                     const JoinGraph& graph,
                                     const QueryOptimizerOptions& options);

}  // namespace blitz

#endif  // BLITZ_API_OPTIMIZE_QUERY_H_
