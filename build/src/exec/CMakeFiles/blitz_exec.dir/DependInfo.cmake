
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/datagen.cc" "src/exec/CMakeFiles/blitz_exec.dir/datagen.cc.o" "gcc" "src/exec/CMakeFiles/blitz_exec.dir/datagen.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/blitz_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/blitz_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/exec/CMakeFiles/blitz_exec.dir/operators.cc.o" "gcc" "src/exec/CMakeFiles/blitz_exec.dir/operators.cc.o.d"
  "/root/repo/src/exec/relation.cc" "src/exec/CMakeFiles/blitz_exec.dir/relation.cc.o" "gcc" "src/exec/CMakeFiles/blitz_exec.dir/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/blitz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/blitz_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/blitz_query.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/blitz_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/blitz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/blitz_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
