file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_leftdeep.dir/bench_ablation_leftdeep.cc.o"
  "CMakeFiles/bench_ablation_leftdeep.dir/bench_ablation_leftdeep.cc.o.d"
  "bench_ablation_leftdeep"
  "bench_ablation_leftdeep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_leftdeep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
