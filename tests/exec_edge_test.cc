// Edge cases for the execution engine: empty inputs, empty results,
// duplicate-heavy keys, single-row tables, and selectivity-1 predicates.

#include <gtest/gtest.h>

#include "exec/datagen.h"
#include "exec/executor.h"
#include "exec/operators.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {
namespace {

/// Two tiny hand-built tables joined on predicate 0, with full control of
/// the key columns.
struct HandBuilt {
  HandBuilt(std::vector<std::uint32_t> lhs_keys,
            std::vector<std::uint32_t> rhs_keys)
      : graph(2) {
    BLITZ_CHECK(graph.AddPredicate(0, 1, 0.5).ok());
    tables.emplace_back(0, static_cast<std::uint32_t>(lhs_keys.size()));
    tables.emplace_back(1, static_cast<std::uint32_t>(rhs_keys.size()));
    BLITZ_CHECK(tables[0].AddJoinColumn(0, std::move(lhs_keys)).ok());
    BLITZ_CHECK(tables[1].AddJoinColumn(0, std::move(rhs_keys)).ok());
  }

  RowSet Join(JoinAlgorithm algorithm) {
    const RowSet lhs = ScanTable(tables[0]);
    const RowSet rhs = ScanTable(tables[1]);
    const auto predicates =
        BindSpanningPredicates(graph, lhs.relations, rhs.relations);
    return JoinRowSets(lhs, rhs, predicates, algorithm, tables);
  }

  JoinGraph graph;
  std::vector<ExecTable> tables;
};

TEST(ExecEdgeTest, EmptyJoinResult) {
  HandBuilt fx({1, 2, 3}, {4, 5, 6});  // no common keys
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kNestedLoops, JoinAlgorithm::kHash,
        JoinAlgorithm::kSortMerge}) {
    EXPECT_EQ(fx.Join(algorithm).num_rows(), 0u);
  }
}

TEST(ExecEdgeTest, AllDuplicateKeysProduceCrossProduct) {
  HandBuilt fx({7, 7, 7}, {7, 7});  // every pair matches
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kNestedLoops, JoinAlgorithm::kHash,
        JoinAlgorithm::kSortMerge}) {
    EXPECT_EQ(fx.Join(algorithm).num_rows(), 6u);
  }
}

TEST(ExecEdgeTest, MixedDuplicateRuns) {
  // lhs keys: 1,1,2,3; rhs keys: 1,2,2,9 -> matches: 2*1 + 1*2 = 4.
  HandBuilt fx({1, 1, 2, 3}, {1, 2, 2, 9});
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kNestedLoops, JoinAlgorithm::kHash,
        JoinAlgorithm::kSortMerge}) {
    const RowSet out = fx.Join(algorithm);
    EXPECT_EQ(out.num_rows(), 4u);
  }
}

TEST(ExecEdgeTest, AllAlgorithmsAgreeOnDuplicateHeavyData) {
  HandBuilt fx({0, 0, 1, 1, 1, 2}, {0, 1, 1, 3, 0});
  const auto nl = ResultFingerprint(fx.Join(JoinAlgorithm::kNestedLoops));
  EXPECT_EQ(ResultFingerprint(fx.Join(JoinAlgorithm::kHash)), nl);
  EXPECT_EQ(ResultFingerprint(fx.Join(JoinAlgorithm::kSortMerge)), nl);
}

TEST(ExecEdgeTest, SingleRowTables) {
  HandBuilt match({5}, {5});
  HandBuilt miss({5}, {6});
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kNestedLoops, JoinAlgorithm::kHash,
        JoinAlgorithm::kSortMerge}) {
    EXPECT_EQ(match.Join(algorithm).num_rows(), 1u);
    EXPECT_EQ(miss.Join(algorithm).num_rows(), 0u);
  }
}

TEST(ExecEdgeTest, RowSetSlotOf) {
  RowSet rows;
  rows.relations = RelSet::Singleton(1) | RelSet::Singleton(4) |
                   RelSet::Singleton(6);
  EXPECT_EQ(rows.SlotOf(1), 0);
  EXPECT_EQ(rows.SlotOf(4), 1);
  EXPECT_EQ(rows.SlotOf(6), 2);
}

TEST(ExecEdgeTest, SelectivityOnePredicateKeepsEverything) {
  // Selectivity 1 => key domain of size 1 => every pair matches.
  Result<Catalog> catalog = Catalog::FromCardinalities({4, 5});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(2);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 1.0).ok());
  Result<std::vector<ExecTable>> tables =
      GenerateTables(*catalog, graph, DataGenOptions{});
  ASSERT_TRUE(tables.ok());
  const Plan plan = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));
  Result<ExecutionResult> result = ExecutePlan(plan, *tables, graph);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.num_rows(), 20u);
}

TEST(ExecEdgeTest, ThreeWayPlanWithEmptyIntermediate) {
  // Force an empty intermediate result and verify the rest of the plan
  // still executes cleanly to an empty final result.
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.5).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 0.5).ok());
  std::vector<ExecTable> tables;
  tables.emplace_back(0, 2u);
  tables.emplace_back(1, 2u);
  tables.emplace_back(2, 2u);
  ASSERT_TRUE(tables[0].AddJoinColumn(0, {1, 2}).ok());
  ASSERT_TRUE(tables[1].AddJoinColumn(0, {3, 4}).ok());  // never matches
  ASSERT_TRUE(tables[1].AddJoinColumn(1, {0, 0}).ok());
  ASSERT_TRUE(tables[2].AddJoinColumn(1, {0, 0}).ok());
  const Plan plan = Plan::Join(Plan::Join(Plan::Leaf(0), Plan::Leaf(1)),
                               Plan::Leaf(2));
  Result<ExecutionResult> result = ExecutePlan(plan, tables, graph);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.num_rows(), 0u);
  ASSERT_EQ(result->node_stats.size(), 2u);
  EXPECT_EQ(result->node_stats[1].output_rows, 0u);  // the inner join
}

TEST(ExecEdgeTest, ProductOfEmptyIntermediateIsEmpty) {
  JoinGraph graph(2);  // no predicates: pure product
  std::vector<ExecTable> tables;
  tables.emplace_back(0, 0u);  // empty table
  tables.emplace_back(1, 3u);
  const Plan plan = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));
  Result<ExecutionResult> result = ExecutePlan(plan, tables, graph);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result.num_rows(), 0u);
}

}  // namespace
}  // namespace blitz
