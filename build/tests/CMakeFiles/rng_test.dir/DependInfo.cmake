
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/rng_test.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/rng_test.dir/rng_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/blitz_api.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/blitz_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/blitz_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/textio/CMakeFiles/blitz_textio.dir/DependInfo.cmake"
  "/root/repo/build/src/benchlib/CMakeFiles/blitz_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/blitz_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/blitz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/blitz_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/blitz_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/blitz_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/blitz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
