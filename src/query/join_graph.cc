#include "query/join_graph.h"

#include <cmath>

#include "card/fanout.h"
#include "common/check.h"
#include "common/strings.h"

namespace blitz {

JoinGraph::JoinGraph(int num_relations) : n_(num_relations) {
  BLITZ_CHECK(num_relations >= 1 && num_relations <= kMaxRelations);
  selectivity_.assign(static_cast<size_t>(n_) * n_, 1.0);
  neighbors_.assign(n_, RelSet());
}

Status JoinGraph::AddPredicate(int i, int j, double selectivity) {
  if (i < 0 || i >= n_ || j < 0 || j >= n_) {
    return Status::OutOfRange(
        StrFormat("predicate endpoints (%d,%d) out of range [0,%d)", i, j,
                  n_));
  }
  if (i == j) {
    return Status::InvalidArgument(
        StrFormat("self-edge on relation %d not allowed", i));
  }
  if (!(selectivity > 0.0) || selectivity > 1.0 ||
      !std::isfinite(selectivity)) {
    return Status::InvalidArgument(
        StrFormat("selectivity %g outside (0,1]", selectivity));
  }
  if (HasEdge(i, j)) {
    return Status::InvalidArgument(
        StrFormat("duplicate predicate between %d and %d", i, j));
  }
  const int lo = i < j ? i : j;
  const int hi = i < j ? j : i;
  predicates_.push_back(Predicate{lo, hi, selectivity});
  selectivity_[Slot(i, j)] = selectivity;
  selectivity_[Slot(j, i)] = selectivity;
  neighbors_[i] = neighbors_[i].With(j);
  neighbors_[j] = neighbors_[j].With(i);
  return Status::OK();
}

double JoinGraph::PiSpan(RelSet u, RelSet v) const {
  BLITZ_DCHECK(!u.Intersects(v));
  double product = 1.0;
  u.ForEach([&](int i) {
    const RelSet across = neighbors_[i] & v;
    across.ForEach([&](int j) { product *= Selectivity(i, j); });
  });
  return product;
}

double JoinGraph::PiInduced(RelSet s) const {
  double product = 1.0;
  for (const Predicate& p : predicates_) {
    if (s.Contains(p.lhs) && s.Contains(p.rhs)) product *= p.selectivity;
  }
  return product;
}

double JoinGraph::PiFan(RelSet s) const {
  BLITZ_DCHECK(!s.empty());
  const RelSet u = s.LowestSingleton();
  return PiSpan(u, s - u);
}

double JoinGraph::JoinCardinality(
    RelSet s, const std::vector<double>& base_cards) const {
  return FanoutJoinCardinality(*this, s, base_cards);
}

bool JoinGraph::IsConnected(RelSet s) const {
  if (s.empty()) return false;
  RelSet reached = s.LowestSingleton();
  RelSet frontier = reached;
  while (!frontier.empty()) {
    RelSet next;
    frontier.ForEach([&](int i) { next = next | (neighbors_[i] & s); });
    next = next - reached;
    reached = reached | next;
    frontier = next;
  }
  return reached == s;
}

bool JoinGraph::AnyEdgeSpans(RelSet u, RelSet v) const {
  bool found = false;
  u.ForEach([&](int i) {
    if (neighbors_[i].Intersects(v)) found = true;
  });
  return found;
}

std::string JoinGraph::ToString() const {
  std::string out;
  for (const Predicate& p : predicates_) {
    if (!out.empty()) out += " ";
    out += StrFormat("R%d-R%d(%g)", p.lhs, p.rhs, p.selectivity);
  }
  if (out.empty()) out = "(no predicates)";
  return out;
}

void ComputeAllCardinalities(const JoinGraph& graph,
                             const std::vector<double>& base_cards,
                             std::vector<double>* cards) {
  FanoutComputeAllCardinalities(graph, base_cards, cards);
}

}  // namespace blitz
