#ifndef BLITZ_QUERY_EQUIVALENCE_H_
#define BLITZ_QUERY_EQUIVALENCE_H_

#include <vector>

#include "common/status.h"
#include "query/join_graph.h"

namespace blitz {

/// How pairwise selectivities are derived from a column equivalence class
/// (see JoinSpecBuilder::AddEquivalenceClass).
enum class EquivalencePolicy {
  /// Every pair (i, j) in the class gets the textbook equi-join selectivity
  /// 1 / max(d_i, d_j). Each *pairwise* join estimate is exact, but because
  /// the library multiplies every induced predicate independently (the
  /// paper's uncorrelated-predicates assumption), the k-way estimate for a
  /// k-member class underestimates the true result — the classic
  /// redundant-predicate bias. This is what an optimizer that naively
  /// closes equality predicates ends up with.
  kPairwise,

  /// Members are sorted by distinct count d; each consecutive sorted pair
  /// gets 1 / max = 1 / (larger d), and the remaining (implied) edges get
  /// selectivity 1. The product of the class's edges then equals the exact
  /// k-way equi-join factor d_min / (d_0 * ... * d_{k-1}), so every
  /// cardinality that includes the whole class is exact; the implied edges
  /// still connect the join graph (unlocking product-free plans between
  /// distant members) without double-counting. Estimates for partial
  /// subsets of the class that skip a chain edge are overestimates.
  kCalibrated,
};

/// Builder that assembles a JoinGraph from raw query predicates, handling
/// the two preprocessing chores Section 5 alludes to ("similar techniques
/// can accommodate implied or redundant predicates"):
///
///  * **Implied predicates.** Equality is transitive: from R.a = S.b and
///    S.b = T.c the optimizer may also apply R.a = T.c, which can unlock
///    plans (joining R and T directly, without S) that the literal
///    predicate list would label Cartesian products. Declaring a column
///    equivalence class makes the builder emit an edge for every pair in
///    the class, with selectivities per the chosen EquivalencePolicy.
///
///  * **Redundant (parallel) predicates.** JoinGraph permits one predicate
///    per relation pair; when several independent predicates connect the
///    same pair (directly, or via overlapping equivalence classes), the
///    builder merges them by multiplying selectivities (uncorrelated-
///    predicates assumption).
class JoinSpecBuilder {
 public:
  explicit JoinSpecBuilder(
      int num_relations,
      EquivalencePolicy policy = EquivalencePolicy::kCalibrated);

  /// Adds a plain predicate; duplicates between the same pair are merged by
  /// multiplication.
  Status AddPredicate(int i, int j, double selectivity);

  /// Declares an equivalence class: one column of each listed relation,
  /// all equal in the query, with the given per-column distinct-value
  /// counts. Needs >= 2 members; a relation may appear in several classes
  /// (different columns) but only once per class.
  Status AddEquivalenceClass(std::vector<int> relations,
                             std::vector<double> distinct_counts);

  /// Emits the closed, merged JoinGraph.
  Result<JoinGraph> Build() const;

 private:
  struct EquivalenceClass {
    std::vector<int> relations;
    std::vector<double> distinct_counts;
  };

  int num_relations_;
  EquivalencePolicy policy_;
  std::vector<Predicate> plain_predicates_;
  std::vector<EquivalenceClass> classes_;
};

/// The exact k-way equi-join selectivity factor of one equivalence class
/// under containment-of-value-sets: d_min / (d_0 * d_1 * ... * d_{k-1}).
/// (For k = 2 this is the familiar 1 / max(d_0, d_1).) Exposed for tests
/// and for validating policy kCalibrated.
double EquivalenceClassJoinFactor(const std::vector<double>& distinct_counts);

}  // namespace blitz

#endif  // BLITZ_QUERY_EQUIVALENCE_H_
