#include "serve/server.h"

#include <chrono>
#include <utility>

#include "card/no_estimate.h"
#include "common/strings.h"
#include "governor/faultpoints.h"
#include "obs/metrics.h"

namespace blitz {

namespace {

void Count(std::string_view name) {
  if (MetricsRegistry* metrics = GlobalMetrics()) metrics->AddCounter(name);
}

/// The retry hint stamped on queue-full and draining sheds: long enough to
/// let a queue of optimizations drain a bit, short enough that a retrying
/// client rides out a transient spike instead of giving up.
constexpr double kShedRetryAfterMs = 50;

}  // namespace

Status ServerOptions::Validate() const {
  if (num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (max_queue < 1) {
    return Status::InvalidArgument("max_queue must be >= 1");
  }
  if (default_deadline_ms < 0) {
    return Status::InvalidArgument("default_deadline_ms must be >= 0");
  }
  if (drain_grace_ms < 0) {
    return Status::InvalidArgument("drain_grace_ms must be >= 0");
  }
  if (default_estimator == EstimatorKind::kSampleHistogram) {
    return Status::InvalidArgument(
        "estimator hist needs local base tables; the serving tier supports "
        "paper and noest");
  }
  BLITZ_RETURN_IF_ERROR(admission.Validate());
  return optimizer.Validate();
}

Result<std::unique_ptr<BlitzServer>> BlitzServer::Create(
    ServerOptions options) {
  BLITZ_RETURN_IF_ERROR(options.Validate());
  return std::unique_ptr<BlitzServer>(new BlitzServer(std::move(options)));
}

BlitzServer::BlitzServer(ServerOptions options)
    : options_(std::move(options)),
      arena_(options_.arena),
      admission_(options_.admission) {
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BlitzServer::~BlitzServer() { Shutdown(); }

Status BlitzServer::Serve(ByteStream* stream) {
  if (std::optional<FaultSpec> fault = FaultHit(kFaultServeAccept)) {
    // Connection-level failure: answer once (id 0 — no frame was read) so
    // the client sees a status instead of a silent close, then refuse.
    const Status error = fault->kind == FaultKind::kFailStatus
                             ? fault->status
                             : Status::Unavailable("injected accept failure");
    Connection conn;
    conn.stream = stream;
    Respond(&conn, ResponseFrame{0, error.code(), kShedRetryAfterMs,
                                 error.message()});
    Count("serve.accept_rejects");
    return error;
  }

  Connection conn;
  conn.stream = stream;
  FrameReader reader(stream, options_.wire);
  Status result = Status::OK();
  for (;;) {
    Result<std::optional<RequestFrame>> frame = reader.ReadRequest();
    if (!frame.ok()) {
      // The stream is no longer frame-aligned; nothing after this point
      // can be parsed, so answer with id 0 and end the connection. The
      // process — and every other connection — is unaffected.
      result = frame.status();
      Respond(&conn,
              ResponseFrame{0, result.code(), 0, result.message()});
      Count("serve.protocol_errors");
      break;
    }
    if (!frame->has_value()) break;  // Clean EOF at a frame boundary.
    HandleRequest(&conn, std::move(**frame));
  }

  // Responses for admitted requests are written by workers; hold the
  // connection open until the last one lands.
  {
    std::unique_lock<std::mutex> lock(conn.mu);
    conn.idle_cv.wait(lock, [&conn] { return conn.outstanding == 0; });
  }
  return result;
}

void BlitzServer::HandleRequest(Connection* conn, RequestFrame frame) {
  Count("serve.requests");
  const auto shed = [&](const Status& status, double retry_after_ms,
                        std::string_view counter) {
    Respond(conn, ResponseFrame{frame.id, status.code(), retry_after_ms,
                                status.message()});
    Count(counter);
  };

  bool draining;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining = draining_ || stopping_;
  }
  // Shed outside mu_: Respond re-enters it for the answered counter.
  if (draining) {
    shed(Status::Unavailable("server is draining"), kShedRetryAfterMs,
         "serve.shed.draining");
    return;
  }

  AdmissionController::Decision decision =
      admission_.Admit(frame.tenant, frame.body.size());
  if (!decision.status.ok()) {
    shed(decision.status, decision.retry_after_ms, "serve.shed.admission");
    return;
  }
  // Admitted: from here every early exit must Release the tenant slot.

  const TenantQuota& quota = admission_.quota_for(frame.tenant);
  double deadline_ms =
      frame.deadline_ms > 0 ? frame.deadline_ms : options_.default_deadline_ms;
  if (quota.max_deadline_ms > 0 &&
      (deadline_ms == 0 || deadline_ms > quota.max_deadline_ms)) {
    deadline_ms = quota.max_deadline_ms;
  }

  Job job;
  job.conn = conn;
  job.id = frame.id;
  job.tenant = frame.tenant;
  job.body = std::move(frame.body);
  job.token = std::make_shared<CancellationToken>();
  job.enqueue_time = std::chrono::steady_clock::now();
  job.budget = options_.optimizer.budget;
  if (deadline_ms > 0) job.budget.deadline_seconds = deadline_ms / 1000.0;
  if (quota.max_dp_table_bytes > 0) {
    job.budget.max_dp_table_bytes = quota.max_dp_table_bytes;
  }
  job.budget.cancellation = job.token.get();
  // Resolve the deadline at enqueue so time spent waiting in the queue
  // counts against the request's allowance, not just optimize time.
  job.budget = job.budget.Resolved();

  if (std::optional<FaultSpec> fault = FaultHit(kFaultServeEnqueue)) {
    admission_.Release(frame.tenant);
    const Status error =
        fault->kind == FaultKind::kFailStatus
            ? fault->status
            : Status::ResourceExhausted("injected enqueue failure");
    shed(error, kShedRetryAfterMs, "serve.shed.enqueue_fault");
    return;
  }

  {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    ++conn->outstanding;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (draining_ || stopping_ ||
        queue_.size() >= static_cast<std::size_t>(options_.max_queue)) {
      const bool full = !draining_ && !stopping_;
      lock.unlock();
      admission_.Release(frame.tenant);
      {
        std::lock_guard<std::mutex> conn_lock(conn->mu);
        --conn->outstanding;
      }
      shed(Status::Unavailable(full ? "request queue is full"
                                    : "server is draining"),
           kShedRetryAfterMs,
           full ? "serve.shed.queue" : "serve.shed.draining");
      return;
    }
    job.token_key = next_token_key_++;
    in_flight_[job.token_key] = job.token;
    ++in_flight_count_;
    queue_.push_back(std::move(job));
    if (MetricsRegistry* metrics = GlobalMetrics()) {
      metrics->MaxGauge("serve.queue_depth_peak",
                        static_cast<double>(queue_.size()));
    }
  }
  queue_cv_.notify_one();
}

void BlitzServer::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained.
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    ProcessJob(std::move(job));
  }
}

void BlitzServer::ProcessJob(Job job) {
  // Cancelled while queued (a drain past its grace period): answer without
  // doing any work. Cancellation never degrades.
  if (job.token->cancelled()) {
    FinishJob(job, ResponseFrame{job.id, StatusCode::kCancelled, 0,
                                 "cancelled during server drain"});
    return;
  }

  if (std::optional<FaultSpec> fault = FaultHit(kFaultServeParse)) {
    const Status error =
        fault->kind == FaultKind::kFailStatus
            ? fault->status
            : Status::ResourceExhausted("injected parse allocation failure");
    FinishJob(job, ResponseFrame{job.id, error.code(), 0, error.message()});
    return;
  }

  Result<QuerySpec> parsed = ParseBjq(job.body, options_.parse);
  if (!parsed.ok()) {
    const Status error = parsed.status();
    FinishJob(job, ResponseFrame{job.id, error.code(), 0, error.message()});
    return;
  }
  QuerySpec spec = std::move(*parsed);

  // Resolve the cardinality estimator: the request's directive wins over
  // the server default. Histograms need base tables the serving tier does
  // not have, so a hist request is a request-level error, not a crash.
  const EstimatorKind estimator_kind =
      spec.estimator.value_or(options_.default_estimator);
  if (estimator_kind == EstimatorKind::kSampleHistogram) {
    FinishJob(job,
              ResponseFrame{job.id, StatusCode::kInvalidArgument, 0,
                            "estimator hist needs local base tables; the "
                            "serving tier supports paper and noest"});
    return;
  }
  std::optional<NoEstimateEstimator> no_estimate;
  if (estimator_kind == EstimatorKind::kNoEstimate) {
    no_estimate.emplace(spec.graph);
  }

  QueryOptimizerOptions opts = options_.optimizer;
  opts.cost_model = spec.cost_model;
  opts.initial_cost_threshold = spec.threshold;
  opts.budget = job.budget;
  opts.table_arena = &arena_;
  opts.collect_report = true;  // Degradation history feeds the reply body.
  opts.estimator = no_estimate.has_value() ? &*no_estimate : nullptr;

  Result<OptimizedQuery> optimized =
      OptimizeQuery(spec.catalog, spec.graph, opts);
  if (!optimized.ok()) {
    const Status error = optimized.status();
    FinishJob(job, ResponseFrame{job.id, error.code(), 0, error.message()});
    return;
  }

  ServeReply reply;
  reply.plan = optimized->plan.ToString(&spec.catalog);
  reply.cost = optimized->cost;
  reply.tier = OptimizerTierName(optimized->tier);
  reply.passes = optimized->passes;
  reply.degradations =
      optimized->report.has_value()
          ? static_cast<int>(optimized->report->degradations.size())
          : 0;
  reply.estimator = optimized->report.has_value()
                        ? EstimatorKindName(optimized->report->estimator)
                        : EstimatorKindName(estimator_kind);
  if (reply.degradations > 0) Count("serve.degradations");
  FinishJob(job, ResponseFrame{job.id, StatusCode::kOk, 0,
                               EncodeReplyBody(reply)});
}

void BlitzServer::FinishJob(const Job& job, ResponseFrame response) {
  Respond(job.conn, response);
  admission_.Release(job.tenant);
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(job.token_key);
    if (--in_flight_count_ == 0) idle_cv_.notify_all();
  }
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter(response.code == StatusCode::kOk
                            ? "serve.responses.ok"
                            : "serve.responses.error");
    metrics->RecordLatency(
        "serve.latency",
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job.enqueue_time)
            .count());
  }
  // Last touch of the connection: once Serve's wait observes the decrement
  // it may return and destroy the Connection, so the notify must happen
  // under conn->mu — notifying after unlock races a spurious wakeup in
  // Serve and touches a dead condition_variable.
  {
    std::lock_guard<std::mutex> conn_lock(job.conn->mu);
    --job.conn->outstanding;
    job.conn->idle_cv.notify_all();
  }
}

void BlitzServer::Respond(Connection* conn, const ResponseFrame& response) {
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    Status written = conn->stream->Write(EncodeResponseFrame(response));
    if (!written.ok()) Count("serve.write_errors");
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_answered_;
}

void BlitzServer::BeginDrain() {
  bool skip_grace = false;
  if (std::optional<FaultSpec> fault = FaultHit(kFaultServeDrain)) {
    (void)fault;  // Any armed kind forces the no-grace drain path.
    skip_grace = true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  if (skip_grace) drain_skip_grace_ = true;
}

void BlitzServer::CancelInFlight() {
  for (auto& [key, token] : in_flight_) {
    (void)key;
    token->Cancel();
  }
}

void BlitzServer::Shutdown() {
  BeginDrain();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    const double grace_ms = drain_skip_grace_ ? 0 : options_.drain_grace_ms;
    idle_cv_.wait_for(
        lock,
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(grace_ms)),
        [this] { return in_flight_count_ == 0; });
    if (in_flight_count_ > 0) {
      // Grace expired: cancel the stragglers. Workers observe the tokens at
      // their next amortized governor check and answer kCancelled, so every
      // admitted request still gets a response.
      if (MetricsRegistry* metrics = GlobalMetrics()) {
        metrics->AddCounter("serve.drain.cancelled",
                            static_cast<std::uint64_t>(in_flight_count_));
      }
      CancelInFlight();
      idle_cv_.wait(lock, [this] { return in_flight_count_ == 0; });
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

bool BlitzServer::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

DpTableArena::Stats BlitzServer::arena_stats() const {
  return arena_.stats();
}

std::uint64_t BlitzServer::requests_answered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_answered_;
}

int BlitzServer::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_count_;
}

}  // namespace blitz
