#include "exec/datagen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace blitz {

Result<std::vector<ExecTable>> GenerateTables(const Catalog& catalog,
                                              const JoinGraph& graph,
                                              const DataGenOptions& options) {
  if (graph.num_relations() != catalog.num_relations()) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  Rng rng(options.seed);
  std::vector<ExecTable> tables;
  tables.reserve(catalog.num_relations());
  for (int i = 0; i < catalog.num_relations(); ++i) {
    const double card = catalog.cardinality(i);
    const std::uint32_t rows = static_cast<std::uint32_t>(std::min<double>(
        std::max<double>(1.0, static_cast<double>(std::llround(card))),
        options.max_rows_per_table));
    tables.emplace_back(i, rows);
  }
  const auto& predicates = graph.predicates();
  for (int p = 0; p < static_cast<int>(predicates.size()); ++p) {
    const Predicate& predicate = predicates[p];
    const std::uint64_t domain = static_cast<std::uint64_t>(std::max<double>(
        1.0, static_cast<double>(std::llround(1.0 / predicate.selectivity))));
    for (const int endpoint : {predicate.lhs, predicate.rhs}) {
      std::vector<std::uint32_t> values(tables[endpoint].num_rows());
      for (auto& v : values) {
        v = static_cast<std::uint32_t>(rng.NextBounded(domain));
      }
      BLITZ_RETURN_IF_ERROR(
          tables[endpoint].AddJoinColumn(p, std::move(values)));
    }
  }
  return tables;
}

}  // namespace blitz
