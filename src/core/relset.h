#ifndef BLITZ_CORE_RELSET_H_
#define BLITZ_CORE_RELSET_H_

#include <bit>
#include <cstdint>
#include <string>

#include "common/check.h"

namespace blitz {

/// Maximum number of base relations in one optimization problem. The dynamic
/// programming table has 2^n entries, so memory is the practical bound long
/// before the representation is: at n = 30 the table alone is tens of GB.
inline constexpr int kMaxRelations = 30;

/// A set of relation indexes represented as a bit-vector inside a single
/// 64-bit word, exactly as prescribed by Section 4.1 of the paper: relation
/// R_i is identified with the integer i, and a set of relations with the
/// integer whose bit i is set for each member R_i.
///
/// The integer value of a set (word()) doubles as its index into the dynamic
/// programming table, and integer order on sets guarantees that every proper
/// subset of S precedes S (Section 4.2).
class RelSet {
 public:
  using Word = std::uint64_t;

  /// The empty set.
  constexpr RelSet() = default;

  /// The set whose bit-vector is `w`.
  static constexpr RelSet FromWord(Word w) { return RelSet(w); }

  /// The singleton {R_i}.
  static constexpr RelSet Singleton(int i) {
    return RelSet(Word{1} << i);
  }

  /// The set {R_0, ..., R_{n-1}}.
  static constexpr RelSet FirstN(int n) {
    return n == 0 ? RelSet() : RelSet((Word{1} << n) - 1);
  }

  constexpr Word word() const { return word_; }

  constexpr bool empty() const { return word_ == 0; }

  /// Number of members (|S|).
  constexpr int size() const { return std::popcount(word_); }

  constexpr bool IsSingleton() const {
    return word_ != 0 && (word_ & (word_ - 1)) == 0;
  }

  constexpr bool Contains(int i) const {
    return (word_ >> i) & Word{1};
  }

  /// True if every member of `other` is a member of this set.
  constexpr bool ContainsAll(RelSet other) const {
    return (word_ & other.word_) == other.word_;
  }

  constexpr bool Intersects(RelSet other) const {
    return (word_ & other.word_) != 0;
  }

  /// True if this is a subset of `other` and not equal to it.
  constexpr bool IsProperSubsetOf(RelSet other) const {
    return other.ContainsAll(*this) && word_ != other.word_;
  }

  /// Index of the smallest member; the set must be nonempty. This is the
  /// "min S" of the paper's fan definition (Section 5.3) under the natural
  /// total order on relation names.
  constexpr int Min() const { return std::countr_zero(word_); }

  /// Index of the largest member; the set must be nonempty.
  constexpr int Max() const { return 63 - std::countl_zero(word_); }

  /// The singleton {min S}, computed as S & -S (the paper's delta_S(1)).
  constexpr RelSet LowestSingleton() const {
    return RelSet(word_ & (~word_ + 1));
  }

  /// This set minus its smallest member.
  constexpr RelSet WithoutLowest() const {
    return RelSet(word_ & (word_ - 1));
  }

  constexpr RelSet Union(RelSet other) const {
    return RelSet(word_ | other.word_);
  }
  constexpr RelSet Intersect(RelSet other) const {
    return RelSet(word_ & other.word_);
  }
  /// Set difference (this minus other).
  constexpr RelSet Minus(RelSet other) const {
    return RelSet(word_ & ~other.word_);
  }
  constexpr RelSet With(int i) const { return Union(Singleton(i)); }
  constexpr RelSet Without(int i) const { return Minus(Singleton(i)); }

  friend constexpr RelSet operator|(RelSet a, RelSet b) { return a.Union(b); }
  friend constexpr RelSet operator&(RelSet a, RelSet b) {
    return a.Intersect(b);
  }
  friend constexpr RelSet operator-(RelSet a, RelSet b) { return a.Minus(b); }
  friend constexpr RelSet operator^(RelSet a, RelSet b) {
    return RelSet(a.word_ ^ b.word_);
  }
  friend constexpr bool operator==(RelSet a, RelSet b) {
    return a.word_ == b.word_;
  }
  friend constexpr bool operator!=(RelSet a, RelSet b) {
    return a.word_ != b.word_;
  }

  /// Invokes fn(i) for each member i in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    Word w = word_;
    while (w != 0) {
      fn(std::countr_zero(w));
      w &= w - 1;
    }
  }

  /// Renders as e.g. "{R0,R3,R7}".
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    ForEach([&](int i) {
      if (!first) out += ",";
      first = false;
      out += "R" + std::to_string(i);
    });
    out += "}";
    return out;
  }

 private:
  explicit constexpr RelSet(Word w) : word_(w) {}

  Word word_ = 0;
};

}  // namespace blitz

#endif  // BLITZ_CORE_RELSET_H_
