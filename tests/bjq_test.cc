#include "textio/bjq.h"

#include "query/equivalence.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace blitz {
namespace {

constexpr char kSample[] = R"(# sample query
costmodel dnl
threshold 1e9

relation orders 15000 128
relation lineitem 60000 96
relation customer 1500   # trailing comment

predicate orders lineitem 0.0000666
predicate customer orders 0.000666
)";

TEST(BjqTest, ParsesSample) {
  Result<QuerySpec> spec = ParseBjq(kSample);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->catalog.num_relations(), 3);
  EXPECT_EQ(spec->catalog.relation(0).name, "orders");
  EXPECT_DOUBLE_EQ(spec->catalog.cardinality(1), 60000);
  EXPECT_EQ(spec->catalog.relation(0).tuple_bytes, 128);
  EXPECT_EQ(spec->catalog.relation(2).tuple_bytes, 64);  // default
  EXPECT_EQ(spec->graph.num_predicates(), 2);
  EXPECT_DOUBLE_EQ(spec->graph.Selectivity(0, 1), 0.0000666);
  EXPECT_EQ(spec->cost_model, CostModelKind::kDiskNestedLoops);
  ASSERT_TRUE(spec->threshold.has_value());
  EXPECT_FLOAT_EQ(*spec->threshold, 1e9f);
}

TEST(BjqTest, DefaultsWithoutOptionalDirectives) {
  Result<QuerySpec> spec = ParseBjq("relation a 10\nrelation b 20\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->cost_model, CostModelKind::kNaive);
  EXPECT_FALSE(spec->threshold.has_value());
  EXPECT_EQ(spec->graph.num_predicates(), 0);
}

TEST(BjqTest, ErrorsCarryLineNumbers) {
  Result<QuerySpec> bad = ParseBjq("relation a 10\nbogus directive\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status().ToString();
}

TEST(BjqTest, RejectsUnknownRelationInPredicate) {
  Result<QuerySpec> bad =
      ParseBjq("relation a 10\nrelation b 10\npredicate a zz 0.5\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("zz"), std::string::npos);
}

TEST(BjqTest, RejectsBadNumbers) {
  EXPECT_FALSE(ParseBjq("relation a ten\n").ok());
  EXPECT_FALSE(ParseBjq("relation a 10\nrelation b 10\n"
                        "predicate a b fast\n")
                   .ok());
  EXPECT_FALSE(ParseBjq("threshold -5\nrelation a 10\n").ok());
}

TEST(BjqTest, RejectsWrongArity) {
  EXPECT_FALSE(ParseBjq("relation a\n").ok());
  EXPECT_FALSE(ParseBjq("relation a 10 64 extra\n").ok());
  EXPECT_FALSE(ParseBjq("costmodel\nrelation a 1\n").ok());
}

TEST(BjqTest, RejectsEmptyDocument) {
  EXPECT_FALSE(ParseBjq("").ok());
  EXPECT_FALSE(ParseBjq("# only a comment\n").ok());
}

TEST(BjqTest, WriteRoundTrips) {
  Result<QuerySpec> spec = ParseBjq(kSample);
  ASSERT_TRUE(spec.ok());
  const std::string text = WriteBjq(*spec);
  Result<QuerySpec> reparsed = ParseBjq(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(reparsed->catalog.num_relations(), spec->catalog.num_relations());
  EXPECT_EQ(reparsed->cost_model, spec->cost_model);
  ASSERT_TRUE(reparsed->threshold.has_value());
  EXPECT_FLOAT_EQ(*reparsed->threshold, *spec->threshold);
  for (int i = 0; i < spec->catalog.num_relations(); ++i) {
    EXPECT_EQ(reparsed->catalog.relation(i).name,
              spec->catalog.relation(i).name);
    EXPECT_DOUBLE_EQ(reparsed->catalog.cardinality(i),
                     spec->catalog.cardinality(i));
  }
  ASSERT_EQ(reparsed->graph.num_predicates(), spec->graph.num_predicates());
  for (int p = 0; p < spec->graph.num_predicates(); ++p) {
    EXPECT_DOUBLE_EQ(reparsed->graph.predicates()[p].selectivity,
                     spec->graph.predicates()[p].selectivity);
  }
}

TEST(BjqTest, EquivalenceDirectiveClosesClass) {
  Result<QuerySpec> spec = ParseBjq(
      "relation a 100\nrelation b 5000\nrelation c 100\n"
      "equivalence a b c : 100 5000 100\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->graph.num_predicates(), 3);  // closed: ab, bc, ac
  EXPECT_TRUE(spec->graph.HasEdge(0, 2));
}

TEST(BjqTest, EquivalencePolicySelectable) {
  const char* base =
      "relation a 100\nrelation b 5000\nrelation c 100\n"
      "equivalence a b c : 100 5000 100\n";
  Result<QuerySpec> calibrated = ParseBjq(std::string("policy calibrated\n") +
                                          base);
  Result<QuerySpec> pairwise = ParseBjq(std::string("policy pairwise\n") +
                                        base);
  ASSERT_TRUE(calibrated.ok());
  ASSERT_TRUE(pairwise.ok());
  // Pairwise: every pair gets 1/max of its distinct counts.
  EXPECT_DOUBLE_EQ(pairwise->graph.Selectivity(0, 2), 1.0 / 100);
  EXPECT_DOUBLE_EQ(pairwise->graph.Selectivity(0, 1), 1.0 / 5000);
  // Calibrated sorts by distinct count (a, c, b): the sorted-consecutive
  // pairs carry the mass, the remaining implied edge (a-b or c-b,
  // whichever is non-consecutive) is pure connectivity. Either way the
  // class's full product equals the exact 3-way factor.
  EXPECT_NEAR(calibrated->graph.PiInduced(RelSet::FirstN(3)),
              EquivalenceClassJoinFactor({100, 5000, 100}), 1e-15);
  EXPECT_DOUBLE_EQ(calibrated->graph.Selectivity(0, 2), 1.0 / 100);
}

TEST(BjqTest, EquivalenceErrors) {
  EXPECT_FALSE(ParseBjq("relation a 1\nrelation b 1\n"
                        "equivalence a b 10 20\n")
                   .ok());  // missing ':'
  EXPECT_FALSE(ParseBjq("relation a 1\nrelation b 1\n"
                        "equivalence a b : 10\n")
                   .ok());  // count mismatch
  EXPECT_FALSE(ParseBjq("relation a 1\n"
                        "equivalence a zz : 10 20\n")
                   .ok());  // unknown relation
  EXPECT_FALSE(ParseBjq("relation a 1\nrelation b 1\n"
                        "equivalence a b : 10 frog\n")
                   .ok());  // bad count
  EXPECT_FALSE(ParseBjq("policy sideways\nrelation a 1\n").ok());
}

TEST(BjqTest, ParallelPredicatesNowMerge) {
  Result<QuerySpec> spec = ParseBjq(
      "relation a 10\nrelation b 10\n"
      "predicate a b 0.5\npredicate a b 0.1\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->graph.num_predicates(), 1);
  EXPECT_DOUBLE_EQ(spec->graph.Selectivity(0, 1), 0.05);
}

// Malformed statistics must be rejected at parse time with the offending
// line number, not allowed to poison the optimizer's Pi_fan arithmetic.
struct RejectionCase {
  const char* text;
  int line;
  const char* needle;
};

TEST(BjqTest, RejectsGarbageStatisticsWithLineNumbers) {
  const RejectionCase cases[] = {
      {"relation a nan\n", 1, "positive finite"},
      {"relation a inf\n", 1, "positive finite"},
      {"relation a -10\n", 1, "positive finite"},
      {"relation a 0\n", 1, "positive finite"},
      {"relation a 10\nrelation a 20\n", 2, "duplicate relation name"},
      {"relation a 10 0\n", 1, "tuple width must be positive"},
      {"relation a 10 -8\n", 1, "tuple width"},
      {"relation a 10\nrelation b 20\npredicate a b nan\n", 3, "(0, 1]"},
      {"relation a 10\nrelation b 20\npredicate a b 0\n", 3, "(0, 1]"},
      {"relation a 10\nrelation b 20\npredicate a b -0.5\n", 3, "(0, 1]"},
      {"relation a 10\nrelation b 20\npredicate a b 1.5\n", 3, "(0, 1]"},
      {"relation a 10\nrelation b 20\npredicate a b inf\n", 3, "(0, 1]"},
      {"relation a 10\nfilter a nan\n", 2, "(0, 1]"},
      {"relation a 10\nfilter a 2\n", 2, "(0, 1]"},
      {"relation a 10\nrelation b 20\nequivalence a b : 10 nan\n", 3,
       "positive finite"},
      {"relation a 10\nrelation b 20\nequivalence a b : 0 10\n", 3,
       "positive finite"},
      {"threshold nan\n", 1, "bad threshold"},
      {"threshold -1\n", 1, "bad threshold"},
  };
  for (const RejectionCase& c : cases) {
    Result<QuerySpec> spec = ParseBjq(c.text);
    ASSERT_FALSE(spec.ok()) << c.text;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << c.text;
    const std::string message(spec.status().message());
    const std::string line_tag = "line " + std::to_string(c.line) + ":";
    EXPECT_NE(message.find(line_tag), std::string::npos)
        << c.text << " -> " << message;
    EXPECT_NE(message.find(c.needle), std::string::npos)
        << c.text << " -> " << message;
  }
}

TEST(BjqTest, RejectsRelationCountBeyondRelSetWidth) {
  std::string text;
  for (int i = 0; i <= kMaxRelations; ++i) {
    text += "relation r" + std::to_string(i) + " 10\n";
  }
  Result<QuerySpec> spec = ParseBjq(text);
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(spec.status().message().find("too many relations"),
            std::string::npos);
  // The line number names the first relation over the cap.
  EXPECT_NE(
      spec.status().message().find("line " +
                                   std::to_string(kMaxRelations + 1)),
      std::string::npos);
}

TEST(BjqTest, BoundarySelectivityOfOneIsAccepted) {
  Result<QuerySpec> spec =
      ParseBjq("relation a 10\nrelation b 20\npredicate a b 1\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec->graph.Selectivity(0, 1), 1.0);
}

TEST(BjqTest, LoadBjqFile) {
  const std::string path = ::testing::TempDir() + "/query.bjq";
  {
    std::ofstream out(path);
    out << kSample;
  }
  Result<QuerySpec> spec = LoadBjqFile(path);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->catalog.num_relations(), 3);
  std::remove(path.c_str());
}

TEST(BjqTest, LoadMissingFileFails) {
  Result<QuerySpec> spec = LoadBjqFile("/nonexistent/nope.bjq");
  EXPECT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

TEST(BjqTest, MaxLinesCapBindsAtTheOffendingLine) {
  BjqLimits limits;
  limits.max_lines = 2;
  Result<QuerySpec> spec = ParseBjq(
      "relation a 10\nrelation b 20\npredicate a b 0.5\n", limits);
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kResourceExhausted);
  // The error names the first line past the cap, not just the cap.
  EXPECT_NE(spec.status().message().find("line 3"), std::string::npos)
      << spec.status().message();
  EXPECT_NE(spec.status().message().find("2 lines"), std::string::npos)
      << spec.status().message();
}

TEST(BjqTest, MaxBytesCapBindsAtTheOffendingLine) {
  const std::string text =
      "relation a 10\nrelation b 20\npredicate a b 0.5\n";
  BjqLimits limits;
  limits.max_bytes = 20;  // Inside line 2.
  Result<QuerySpec> spec = ParseBjq(text, limits);
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(spec.status().message().find("line 2"), std::string::npos)
      << spec.status().message();
}

TEST(BjqTest, InputsExactlyAtTheCapsParse) {
  const std::string text =
      "relation a 10\nrelation b 20\npredicate a b 0.5\n";
  BjqLimits limits;
  limits.max_bytes = text.size();
  limits.max_lines = 3;
  Result<QuerySpec> spec = ParseBjq(text, limits);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
}

TEST(BjqTest, ZeroLimitsMeanUnlimited) {
  BjqLimits limits;
  limits.max_bytes = 0;
  limits.max_lines = 0;
  Result<QuerySpec> spec = ParseBjq(
      "relation a 10\nrelation b 20\npredicate a b 0.5\n", limits);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
}

}  // namespace
}  // namespace blitz
