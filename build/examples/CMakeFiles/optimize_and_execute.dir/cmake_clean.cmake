file(REMOVE_RECURSE
  "CMakeFiles/optimize_and_execute.dir/optimize_and_execute.cpp.o"
  "CMakeFiles/optimize_and_execute.dir/optimize_and_execute.cpp.o.d"
  "optimize_and_execute"
  "optimize_and_execute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_and_execute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
