file(REMOVE_RECURSE
  "CMakeFiles/bench_interesting_orders.dir/bench_interesting_orders.cc.o"
  "CMakeFiles/bench_interesting_orders.dir/bench_interesting_orders.cc.o.d"
  "bench_interesting_orders"
  "bench_interesting_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interesting_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
