# Empty compiler generated dependencies file for blitz_catalog.
# This may be replaced when dependencies are built.
