
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dp_table.cc" "src/core/CMakeFiles/blitz_core.dir/dp_table.cc.o" "gcc" "src/core/CMakeFiles/blitz_core.dir/dp_table.cc.o.d"
  "/root/repo/src/core/instrumentation.cc" "src/core/CMakeFiles/blitz_core.dir/instrumentation.cc.o" "gcc" "src/core/CMakeFiles/blitz_core.dir/instrumentation.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/blitz_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/blitz_core.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/blitz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/blitz_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/blitz_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/blitz_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
