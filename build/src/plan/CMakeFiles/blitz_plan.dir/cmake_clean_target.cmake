file(REMOVE_RECURSE
  "libblitz_plan.a"
)
