#include "catalog/filters.h"

#include <cmath>
#include <utility>

#include "common/strings.h"

namespace blitz {

Result<Catalog> ApplyFilters(const Catalog& catalog,
                             const std::vector<FilterSpec>& filters) {
  std::vector<RelationStats> relations;
  relations.reserve(catalog.num_relations());
  for (int i = 0; i < catalog.num_relations(); ++i) {
    relations.push_back(catalog.relation(i));
  }
  for (const FilterSpec& filter : filters) {
    if (filter.relation < 0 || filter.relation >= catalog.num_relations()) {
      return Status::OutOfRange(
          StrFormat("filter on unknown relation %d", filter.relation));
    }
    if (!(filter.selectivity > 0.0) || filter.selectivity > 1.0 ||
        !std::isfinite(filter.selectivity)) {
      return Status::InvalidArgument(
          StrFormat("filter selectivity %g outside (0,1]",
                    filter.selectivity));
    }
    relations[filter.relation].cardinality *= filter.selectivity;
  }
  return Catalog::Create(std::move(relations));
}

}  // namespace blitz
