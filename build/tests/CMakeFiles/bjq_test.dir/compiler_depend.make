# Empty compiler generated dependencies file for bjq_test.
# This may be replaced when dependencies are built.
