#ifndef BLITZ_CARD_ESTIMATOR_H_
#define BLITZ_CARD_ESTIMATOR_H_

#include <optional>
#include <string_view>
#include <vector>

#include "core/relset.h"

namespace blitz {

/// The concrete estimator behind a CardinalityEstimator handle. Kinds are
/// stable wire/CLI names ("--estimator=paper"), so additions append only.
enum class EstimatorKind {
  /// The paper's Section 5.1 Pi_fan recurrence over declared selectivities.
  /// Exact on the synthetic grid: values are bit-identical to the fused
  /// derivation inside BlitzSplit, so DP tables and counters are unchanged.
  kPaperFanout = 0,
  /// Equi-depth histograms over base-table join-key columns, combined under
  /// the classical attribute-independence assumption.
  kSampleHistogram,
  /// Simpli-Squared's estimate-free signal: no cardinalities at all, only a
  /// preference for subsets that bind more join predicates.
  kNoEstimate,
};

/// Short stable name: "paper", "hist", "noest".
const char* EstimatorKindName(EstimatorKind kind);

/// Inverse of EstimatorKindName; nullopt for anything it never emits.
std::optional<EstimatorKind> EstimatorKindFromName(std::string_view name);

/// Comma-separated list of all valid names, for CLI usage strings.
const char* EstimatorKindNames();

/// The seam every consumer of per-subset cardinalities resolves through:
/// the DP drivers, the hybrid and greedy tiers, the plan evaluator, and the
/// fuzzer oracles all take a `const CardinalityEstimator*` and never touch
/// JoinGraph::JoinCardinality directly. Implementations are immutable after
/// construction and safe to share across threads. They do not own the join
/// graph they were built over; the graph must outlive the estimator.
///
/// Estimates must be positive and finite for every nonempty subset —
/// downstream code builds catalogs and DP tables out of them, and both
/// reject non-positive cardinalities. Implementations clamp to enforce it.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  virtual EstimatorKind kind() const = 0;

  /// Number of base relations the estimator was built over. Options
  /// validation checks this against the catalog before any DP runs.
  virtual int num_relations() const = 0;

  /// Estimated |R_i| — the singleton estimate.
  virtual double BaseCardinality(int i) const = 0;

  /// Estimated cardinality of joining all relations in the nonempty set S.
  virtual double EstimateCardinality(RelSet s) const = 0;

  /// Fills `cards` with the estimate for every subset (indexed by set word;
  /// size 2^num_relations; entry 0 unused). The non-exact DP path preloads
  /// its card column from this. Implementations override when they can beat
  /// the generic per-subset loop.
  virtual void EstimateAll(std::vector<double>* cards) const;

  /// True iff estimates reproduce the paper's exact derivation bit-for-bit
  /// (only PaperFanoutEstimator). Exact estimators ride the fused Pi_fan
  /// hot path unchanged; non-exact ones take the preloaded-card path.
  virtual bool exact() const { return false; }

  /// The estimator's implied selectivity of joining disjoint U and V:
  /// est(U ∪ V) / (est(U) · est(V)), clamped into (0, 1]. The hybrid tier's
  /// unit-pair fan under a non-exact estimator.
  double EstimateSpanSelectivity(RelSet u, RelSet v) const;

  /// Stable name for reports and wire responses.
  const char* name() const { return EstimatorKindName(kind()); }
};

}  // namespace blitz

#endif  // BLITZ_CARD_ESTIMATOR_H_
