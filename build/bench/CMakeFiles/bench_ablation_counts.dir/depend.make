# Empty dependencies file for bench_ablation_counts.
# This may be replaced when dependencies are built.
