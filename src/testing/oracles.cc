#include "testing/oracles.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "baseline/dpccp.h"
#include "common/strings.h"
#include "plan/evaluate.h"

namespace blitz::fuzz {
namespace {

/// Relative float-vs-double tolerance for cost comparisons. Costs are
/// non-negative sums (no cancellation); the float accumulation of a depth-n
/// plan carries at most ~n * 2^-24 relative error, so 2e-4 is generous for
/// every n the harness reaches.
constexpr double kCostTol = 2e-4;

/// Relative tolerance between the double-precision Pi_fan recurrences and a
/// direct selectivity-product scan (same precision, different association
/// order).
constexpr double kCardTol = 1e-8;

/// Reference costs at/above this are treated as float-overflow territory: a
/// DP pass (single-precision, Section 6.3) is entitled to reject them.
constexpr double kFloatOverflowBand = 3.0e38;

bool RelClose(double a, double b, double tol) {
  return std::abs(a - b) <= tol * std::max({std::abs(a), std::abs(b), 1.0});
}

}  // namespace

Result<BruteForceTable> BruteForceAllSubsets(const Catalog& catalog,
                                             const JoinGraph& graph,
                                             CostModelKind cost_model,
                                             int max_n) {
  const int n = catalog.num_relations();
  if (n != graph.num_relations()) {
    return Status::InvalidArgument(
        StrFormat("catalog has %d relations, graph %d", n,
                  graph.num_relations()));
  }
  if (n < 1 || n > max_n) {
    return Status::InvalidArgument(
        StrFormat("brute-force oracle limited to n in [1, %d], got %d", max_n,
                  n));
  }

  using Word = RelSet::Word;
  const Word rows = Word{1} << n;
  BruteForceTable ref;
  ref.num_relations = n;
  ref.card.assign(rows, 0.0);
  ref.cost.assign(rows, std::numeric_limits<double>::infinity());
  ref.best_lhs.assign(rows, 0);

  // Cardinalities straight from the Section 5.1 definition: every base
  // cardinality in S, every predicate wholly inside S.
  for (Word s = 1; s < rows; ++s) {
    double card = 1.0;
    RelSet::FromWord(s).ForEach(
        [&](int i) { card *= catalog.cardinality(i); });
    for (const Predicate& p : graph.predicates()) {
      if ((s >> p.lhs) & 1 && (s >> p.rhs) & 1) card *= p.selectivity;
    }
    ref.card[s] = card;
  }

  // Bottom-up optima over ALL ordered splits (each unordered split is
  // visited twice — deliberately naive).
  for (Word s = 1; s < rows; ++s) {
    if (RelSet::FromWord(s).IsSingleton()) {
      ref.cost[s] = 0.0;
      continue;
    }
    double best = std::numeric_limits<double>::infinity();
    Word best_lhs = 0;
    for (Word lhs = (s - 1) & s; lhs != 0; lhs = (lhs - 1) & s) {
      const Word rhs = s ^ lhs;
      const double cost =
          ref.cost[lhs] + ref.cost[rhs] +
          EvalJoinCost(cost_model, ref.card[s], ref.card[lhs], ref.card[rhs]);
      if (cost < best) {
        best = cost;
        best_lhs = lhs;
      }
    }
    ref.cost[s] = best;
    ref.best_lhs[s] = static_cast<std::uint32_t>(best_lhs);
  }
  return ref;
}

OracleVerdict CompareDpTableToBruteForce(const DpTable& table,
                                         const BruteForceTable& reference,
                                         float threshold) {
  if (table.num_relations() != reference.num_relations) {
    return OracleVerdict::Fail(
        StrFormat("table n=%d vs reference n=%d", table.num_relations(),
                  reference.num_relations));
  }
  const bool unbounded = !(threshold < kRejectedCost);
  const double th = static_cast<double>(threshold);
  for (std::uint64_t s = 1; s < table.size(); ++s) {
    const RelSet set = RelSet::FromWord(s);
    if (!RelClose(table.card(set), reference.card[s], kCardTol)) {
      return OracleVerdict::Fail(StrFormat(
          "card mismatch at %s: dp=%.17g reference=%.17g",
          set.ToString().c_str(), table.card(set), reference.card[s]));
    }
    const double ref_cost = reference.cost[s];
    if (table.rejected(set)) {
      if (unbounded) {
        if (ref_cost < kFloatOverflowBand) {
          return OracleVerdict::Fail(StrFormat(
              "dp rejected %s but reference optimum %.17g is representable",
              set.ToString().c_str(), ref_cost));
        }
      } else if (ref_cost < th * (1.0 - 1e-3)) {
        return OracleVerdict::Fail(StrFormat(
            "dp rejected %s under threshold %g but reference optimum is "
            "%.17g",
            set.ToString().c_str(), th, ref_cost));
      }
      continue;
    }
    // Skip the genuinely ambiguous band right at the threshold, where
    // float-vs-double rounding decides acceptance either way.
    if (!unbounded && std::abs(ref_cost - th) <= 1e-3 * th) continue;
    if (!RelClose(static_cast<double>(table.cost(set)), ref_cost, kCostTol)) {
      return OracleVerdict::Fail(StrFormat(
          "cost mismatch at %s: dp=%.9g reference=%.17g",
          set.ToString().c_str(), static_cast<double>(table.cost(set)),
          ref_cost));
    }
  }
  return OracleVerdict::Pass();
}

RecostResult RecostPlan(const PlanNode& node, const Catalog& catalog,
                        const JoinGraph& graph, CostModelKind cost_model) {
  if (node.is_leaf()) {
    return RecostResult{catalog.cardinality(node.relation()), 0.0};
  }
  const RecostResult lhs = RecostPlan(*node.left, catalog, graph, cost_model);
  const RecostResult rhs = RecostPlan(*node.right, catalog, graph, cost_model);
  RecostResult out;
  out.card =
      lhs.card * rhs.card * graph.PiSpan(node.left->set, node.right->set);
  out.cost = lhs.cost + rhs.cost +
             EvalJoinCost(cost_model, out.card, lhs.card, rhs.card);
  return out;
}

namespace {

/// Recursive worker for CheckPlanAgainstDpTable: validates structure,
/// recosts, and checks the table entry for every node. Returns the recost
/// result; appends the first failure to *failure (and short-circuits).
RecostResult CheckNode(const PlanNode& node, const Catalog& catalog,
                       const JoinGraph& graph, CostModelKind cost_model,
                       const DpTable& table, std::string* failure) {
  if (node.is_leaf()) {
    if (!node.set.IsSingleton() && failure->empty()) {
      *failure = StrFormat("leaf with non-singleton set %s",
                           node.set.ToString().c_str());
    }
    return RecostResult{catalog.cardinality(node.relation()), 0.0};
  }
  if ((node.left == nullptr || node.right == nullptr ||
       node.left->set.Intersects(node.right->set) ||
       node.left->set.Union(node.right->set) != node.set) &&
      failure->empty()) {
    *failure = StrFormat("inconsistent operand sets at %s",
                         node.set.ToString().c_str());
    return RecostResult{};
  }
  const RecostResult lhs =
      CheckNode(*node.left, catalog, graph, cost_model, table, failure);
  const RecostResult rhs =
      CheckNode(*node.right, catalog, graph, cost_model, table, failure);
  if (!failure->empty()) return RecostResult{};

  RecostResult out;
  out.card =
      lhs.card * rhs.card * graph.PiSpan(node.left->set, node.right->set);
  out.cost = lhs.cost + rhs.cost +
             EvalJoinCost(cost_model, out.card, lhs.card, rhs.card);

  if (table.rejected(node.set)) {
    *failure = StrFormat("plan uses rejected table entry %s",
                         node.set.ToString().c_str());
    return out;
  }
  if (!RelClose(table.card(node.set), out.card, kCardTol)) {
    *failure = StrFormat("recost card mismatch at %s: dp=%.17g recost=%.17g",
                         node.set.ToString().c_str(), table.card(node.set),
                         out.card);
    return out;
  }
  if (!RelClose(static_cast<double>(table.cost(node.set)), out.cost,
                kCostTol)) {
    *failure = StrFormat("recost cost mismatch at %s: dp=%.9g recost=%.17g",
                         node.set.ToString().c_str(),
                         static_cast<double>(table.cost(node.set)), out.cost);
    return out;
  }
  // The float re-evaluation replays the blitzsplit accumulation order, so
  // an extracted subtree must reproduce its table cost bit for bit.
  const float replayed =
      EvaluateCostFloat(node, catalog, graph, cost_model);
  const float stored = table.cost(node.set);
  if (std::memcmp(&replayed, &stored, sizeof(float)) != 0) {
    *failure = StrFormat(
        "float replay mismatch at %s: dp=%.9g replay=%.9g",
        node.set.ToString().c_str(),
        static_cast<double>(table.cost(node.set)),
        static_cast<double>(replayed));
  }
  return out;
}

}  // namespace

OracleVerdict CheckPlanAgainstDpTable(const Plan& plan, const Catalog& catalog,
                                      const JoinGraph& graph,
                                      CostModelKind cost_model,
                                      const DpTable& table) {
  if (plan.empty()) return OracleVerdict::Fail("empty plan");
  if (plan.NumLeaves() != plan.relations().size()) {
    return OracleVerdict::Fail(
        StrFormat("plan has %d leaves over %d relations", plan.NumLeaves(),
                  plan.relations().size()));
  }
  std::string failure;
  CheckNode(plan.root(), catalog, graph, cost_model, table, &failure);
  if (!failure.empty()) return OracleVerdict::Fail(failure);
  return OracleVerdict::Pass();
}

OracleVerdict CheckAgainstDpCcp(const Catalog& catalog, const JoinGraph& graph,
                                CostModelKind cost_model,
                                double blitz_root_cost,
                                int plan_cartesian_products) {
  if (!graph.IsConnected(catalog.AllRelations())) {
    return OracleVerdict::Pass();  // DPccp does not apply.
  }
  Result<DpCcpResult> dpccp = OptimizeDpCcp(catalog, graph, cost_model);
  if (!dpccp.ok()) {
    return OracleVerdict::Fail(
        StrFormat("dpccp failed on a connected graph: %s",
                  dpccp.status().ToString().c_str()));
  }
  const double slack =
      kCostTol * std::max({blitz_root_cost, dpccp->cost, 1.0});
  if (blitz_root_cost > dpccp->cost + slack) {
    return OracleVerdict::Fail(StrFormat(
        "blitzsplit optimum %.17g above the product-free optimum %.17g",
        blitz_root_cost, dpccp->cost));
  }
  if (plan_cartesian_products == 0 &&
      std::abs(blitz_root_cost - dpccp->cost) > slack) {
    return OracleVerdict::Fail(StrFormat(
        "product-free winning plan but costs differ: blitzsplit=%.17g "
        "dpccp=%.17g",
        blitz_root_cost, dpccp->cost));
  }
  return OracleVerdict::Pass();
}

OracleVerdict TablesBitIdentical(const DpTable& a, const DpTable& b) {
  if (a.num_relations() != b.num_relations() ||
      a.has_pi_fan() != b.has_pi_fan() || a.has_aux() != b.has_aux()) {
    return OracleVerdict::Fail("table shapes differ");
  }
  DpTable& ma = const_cast<DpTable&>(a);
  DpTable& mb = const_cast<DpTable&>(b);
  const std::size_t rows = static_cast<std::size_t>(a.size());
  if (std::memcmp(ma.cost_data(), mb.cost_data(), rows * sizeof(float)) != 0) {
    return OracleVerdict::Fail("cost columns differ");
  }
  if (std::memcmp(ma.card_data(), mb.card_data(), rows * sizeof(double)) !=
      0) {
    return OracleVerdict::Fail("card columns differ");
  }
  if (std::memcmp(ma.best_lhs_data(), mb.best_lhs_data(),
                  rows * sizeof(std::uint32_t)) != 0) {
    return OracleVerdict::Fail("best_lhs columns differ");
  }
  if (a.has_pi_fan() &&
      std::memcmp(ma.pi_fan_data(), mb.pi_fan_data(),
                  rows * sizeof(double)) != 0) {
    return OracleVerdict::Fail("pi_fan columns differ");
  }
  if (a.has_aux() &&
      std::memcmp(ma.aux_data(), mb.aux_data(), rows * sizeof(double)) != 0) {
    return OracleVerdict::Fail("aux columns differ");
  }
  return OracleVerdict::Pass();
}

}  // namespace blitz::fuzz
