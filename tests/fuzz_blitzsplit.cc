// fuzz_blitzsplit: deterministic workload fuzzer + cross-oracle
// differential harness (src/testing/).
//
// Usage:
//   fuzz_blitzsplit [--seed=N] [--iters=K] [--min-n=2] [--max-n=12]
//                   [--brute-max-n=12] [--time-budget-s=S]
//                   [--corpus-dir=DIR] [--no-minimize] [--no-thresholds]
//                   [--estimators=paper,hist,noest] [--no-plan-cache]
//                   [--replay=FILE.bjq] [--verbose]
//
// Samples K cases from the paper's Appendix grid (topology in {chain, star,
// clique, random(p)}, geometric cardinality/selectivity ladders) — case i
// is a pure function of (seed, i), so any run is replayable from its seed —
// and drives each through the configuration cross-product
// {cost models} x {threshold on/off} x {1, 4 threads} x {scalar, block,
// auto SIMD}, asserting bit-identical DP tables plus three independent
// oracles (naive brute force over every subset, plan re-coster, DPccp).
//
// --estimators= sweeps the cardinality-estimator seam per case: the exact
// `paper` estimator must leave the DP table and counters bit-identical to
// the estimator-less reference; non-exact kinds (`hist`, `noest`) are held
// to valid-plan invariants (full relation coverage, finite positive cost
// under the true statistics).
//
// On a mismatch the case is shrunk (drop relations / drop predicates /
// snap selectivities while it still reproduces) and written as a replayable
// .bjq under --corpus-dir; the corpus-replay test keeps it green forever.
//
// Modes: a bounded --iters run registers under CTest (label `fuzz`); CI
// runs a --time-budget-s bounded session per sanitizer.
//
// Exit codes: 0 all cases pass, 1 mismatch found, 2 usage/invalid
// configuration, 3 replay file unreadable.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "card/estimator.h"
#include "common/strings.h"
#include "testing/corpus.h"
#include "testing/differential.h"
#include "testing/fuzzer.h"
#include "testing/minimize.h"

namespace {

using blitz::fuzz::CaseVerdict;
using blitz::fuzz::DifferentialOptions;
using blitz::fuzz::FuzzCase;
using blitz::fuzz::FuzzerOptions;

constexpr int kExitOk = 0;
constexpr int kExitMismatch = 1;
constexpr int kExitUsage = 2;
constexpr int kExitReplay = 3;

int Usage() {
  std::fprintf(stderr,
               "usage: fuzz_blitzsplit [--seed=N] [--iters=K] [--min-n=2] "
               "[--max-n=12] [--brute-max-n=12] [--time-budget-s=S] "
               "[--corpus-dir=DIR] [--no-minimize] [--no-thresholds] "
               "[--estimators=paper,hist,noest] [--no-plan-cache] "
               "[--replay=FILE.bjq] [--verbose]\n");
  return kExitUsage;
}

struct Flags {
  std::uint64_t seed = 1;
  std::uint64_t iters = 100;
  int min_n = 2;
  int max_n = 12;
  int brute_max_n = 12;
  double time_budget_s = 0;  // 0 = unlimited.
  std::string corpus_dir;
  std::string replay;
  std::string estimators = "paper";
  bool minimize = true;
  bool thresholds = true;
  bool plan_cache = true;
  bool verbose = false;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

/// Reports one failing case: the verdict, the (possibly minimized) repro,
/// and — when a corpus directory is configured — the written .bjq path.
void ReportFailure(const FuzzCase& original, const CaseVerdict& verdict,
                   const FuzzCase& reduced, const Flags& flags) {
  std::fprintf(stderr, "MISMATCH in case %s\n  %s\n",
               original.label.c_str(), verdict.ToString().c_str());
  std::fprintf(stderr,
               "  reproduce: fuzz_blitzsplit --seed=%llu --iters=%llu "
               "--min-n=%d --max-n=%d\n",
               static_cast<unsigned long long>(original.spec.seed),
               static_cast<unsigned long long>(original.spec.case_index + 1),
               flags.min_n, flags.max_n);
  std::fprintf(stderr, "  minimized: n=%d, %d predicates\n",
               reduced.catalog.num_relations(),
               reduced.graph.num_predicates());
  if (!flags.corpus_dir.empty()) {
    blitz::Result<std::string> path = blitz::fuzz::WriteCorpusCase(
        flags.corpus_dir, reduced, blitz::CostModelKind::kNaive,
        "fuzz mismatch: " + verdict.ToString());
    if (path.ok()) {
      std::fprintf(stderr, "  corpus file: %s\n", path->c_str());
    } else {
      std::fprintf(stderr, "  corpus write failed: %s\n",
                   path.status().ToString().c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--seed", &value) && value != nullptr) {
      flags.seed = std::strtoull(value, nullptr, 10);
    } else if (ParseFlag(argv[i], "--iters", &value) && value != nullptr) {
      flags.iters = std::strtoull(value, nullptr, 10);
    } else if (ParseFlag(argv[i], "--min-n", &value) && value != nullptr) {
      flags.min_n = std::atoi(value);
    } else if (ParseFlag(argv[i], "--max-n", &value) && value != nullptr) {
      flags.max_n = std::atoi(value);
    } else if (ParseFlag(argv[i], "--brute-max-n", &value) &&
               value != nullptr) {
      flags.brute_max_n = std::atoi(value);
    } else if (ParseFlag(argv[i], "--time-budget-s", &value) &&
               value != nullptr) {
      flags.time_budget_s = std::atof(value);
    } else if (ParseFlag(argv[i], "--corpus-dir", &value) &&
               value != nullptr) {
      flags.corpus_dir = value;
    } else if (ParseFlag(argv[i], "--estimators", &value) &&
               value != nullptr) {
      flags.estimators = value;
    } else if (ParseFlag(argv[i], "--replay", &value) && value != nullptr) {
      flags.replay = value;
    } else if (std::strcmp(argv[i], "--no-minimize") == 0) {
      flags.minimize = false;
    } else if (std::strcmp(argv[i], "--no-thresholds") == 0) {
      flags.thresholds = false;
    } else if (std::strcmp(argv[i], "--no-plan-cache") == 0) {
      flags.plan_cache = false;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      flags.verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return Usage();
    }
  }

  DifferentialOptions diff;
  diff.brute_force_max_n = flags.brute_max_n;
  diff.with_thresholds = flags.thresholds;
  diff.with_plan_cache = flags.plan_cache;
  diff.estimators.clear();
  for (const std::string& name :
       blitz::StrSplit(flags.estimators, ',')) {
    const std::optional<blitz::EstimatorKind> kind =
        blitz::EstimatorKindFromName(name);
    if (!kind.has_value()) {
      std::fprintf(stderr, "unknown estimator %s (valid: %s)\n", name.c_str(),
                   blitz::EstimatorKindNames());
      return kExitUsage;
    }
    diff.estimators.push_back(*kind);
  }

  // Replay mode: one corpus file through the full grid.
  if (!flags.replay.empty()) {
    blitz::Result<FuzzCase> c = blitz::fuzz::LoadCorpusCase(flags.replay);
    if (!c.ok()) {
      std::fprintf(stderr, "cannot replay %s: %s\n", flags.replay.c_str(),
                   c.status().ToString().c_str());
      return kExitReplay;
    }
    const CaseVerdict verdict = RunDifferentialCase(*c, diff);
    std::printf("%s: %s\n", c->label.c_str(), verdict.ToString().c_str());
    return verdict.passed ? kExitOk : kExitMismatch;
  }

  // The harness's one n-bounds gate: a bad range is a status here, never an
  // abort downstream.
  const FuzzerOptions options{flags.seed, flags.min_n, flags.max_n};
  const blitz::Status valid = options.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 valid.ToString().c_str());
    return kExitUsage;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (flags.time_budget_s <= 0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= flags.time_budget_s;
  };

  std::printf("fuzz_blitzsplit: seed=%llu iters=%llu n=[%d, %d] "
              "(deterministic: case i is a pure function of seed and i)\n",
              static_cast<unsigned long long>(flags.seed),
              static_cast<unsigned long long>(flags.iters), flags.min_n,
              flags.max_n);

  std::uint64_t cases_run = 0;
  for (std::uint64_t i = 0; i < flags.iters && !out_of_time(); ++i) {
    blitz::Result<FuzzCase> c = blitz::fuzz::GenerateCase(options, i);
    if (!c.ok()) {
      std::fprintf(stderr, "case %llu generation failed: %s\n",
                   static_cast<unsigned long long>(i),
                   c.status().ToString().c_str());
      return kExitUsage;
    }
    if (flags.verbose) {
      std::printf("  %s (%d predicates)\n", c->label.c_str(),
                  c->graph.num_predicates());
    }
    const CaseVerdict verdict = RunDifferentialCase(*c, diff);
    ++cases_run;
    if (verdict.passed) continue;

    FuzzCase reduced = *c;
    if (flags.minimize) {
      reduced = blitz::fuzz::MinimizeCase(*c, [&](const FuzzCase& candidate) {
        return !RunDifferentialCase(candidate, diff).passed;
      });
    }
    ReportFailure(*c, verdict, reduced, flags);
    return kExitMismatch;
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  std::printf(
      "OK: %llu cases x %zu models x config grid in %.1fs, no mismatches\n",
      static_cast<unsigned long long>(cases_run), diff.cost_models.size(),
      elapsed.count());
  return kExitOk;
}
